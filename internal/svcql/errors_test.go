package svcql

// Table-driven error-path tests for the lexer and parser. The happy paths
// are covered by svcql_test.go; these pin the failure modes — message
// substance and, for the lexer, byte positions — so error reporting can't
// silently regress.

import (
	"strings"
	"testing"

	"github.com/sampleclean/svc/internal/view"
)

func TestLexerErrorTable(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantSub string
	}{
		{"unterminated string", `SELECT 'abc FROM x`, "unterminated string at 7"},
		{"unterminated string at start", `'never closed`, "unterminated string at 0"},
		{"unterminated after escape", `SELECT 'it''s FROM x`, "unterminated string at 7"},
		{"double dot number", `1.2.3`, "malformed number at 0"},
		{"double dot mid-query", `SELECT a FROM x WHERE a > 1.2.3`, "malformed number at 26"},
		{"semicolon", `a ; b`, `unexpected character ';' at 2`},
		{"bare bang", `a ! b`, `unexpected character '!' at 2`},
		{"at sign", `@foo`, `unexpected character '@' at 0`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := lex(c.src)
			if err == nil {
				t.Fatalf("lex(%q): expected error containing %q", c.src, c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("lex(%q): error %q does not contain %q", c.src, err, c.wantSub)
			}
		})
	}
	// Positive controls: the near-miss forms these cases guard.
	for _, src := range []string{
		`SELECT 'it''s fine' FROM x`,
		`SELECT a FROM x WHERE a != 1`,
		`SELECT a FROM x WHERE a > 1.25`,
		`SELECT a FROM x -- 'comment, not a string`,
	} {
		if _, err := lex(src); err != nil {
			t.Errorf("lex(%q): unexpected error %v", src, err)
		}
	}
}

func TestParserErrorTable(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantSub string
	}{
		{"create without VIEW", `CREATE visitView AS SELECT a FROM x`, "expected VIEW"},
		{"create without name", `CREATE VIEW AS SELECT a FROM x`, "expected identifier"},
		{"create without AS", `CREATE VIEW v SELECT a FROM x`, "expected AS"},
		{"select without items", `SELECT FROM x`, "unexpected token"},
		{"dangling comma", `SELECT a, FROM x`, "unexpected token"},
		{"missing FROM", `SELECT a x`, "expected FROM"},
		{"missing table", `SELECT COUNT(1) FROM`, "expected identifier"},
		{"unclosed aggregate", `SELECT SUM(a FROM x`, `expected ")"`},
		{"empty aggregate", `SELECT SUM() FROM x`, "unexpected token"},
		{"count of nothing", `SELECT COUNT() FROM x`, "unexpected token"},
		{"join without ON", `SELECT a FROM x JOIN y`, "expected ON"},
		{"join without equals", `SELECT a FROM x JOIN y ON a b`, `expected "="`},
		{"join half condition", `SELECT a FROM x JOIN y ON a =`, "expected identifier"},
		{"where without predicate", `SELECT a FROM x WHERE`, "unexpected token"},
		{"group without BY", `SELECT a FROM x GROUP videoId`, "expected BY"},
		{"group by nothing", `SELECT a FROM x GROUP BY`, "expected identifier"},
		{"trailing input", `SELECT a FROM x extra`, "trailing input"},
		{"unclosed paren", `SELECT a FROM x WHERE (a > 1`, `expected ")"`},
		{"empty input", ``, "expected SELECT"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q): expected error containing %q", c.src, c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("Parse(%q): error %q does not contain %q", c.src, err, c.wantSub)
			}
		})
	}
}

// TestPlannerErrorTable covers semantic errors past a syntactically valid
// parse: unknown columns and aggregates the estimators cannot serve.
func TestPlannerErrorTable(t *testing.T) {
	d := exampleDB(t)
	def, err := PlanView(d, visitViewSQL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	viewCases := []struct {
		name    string
		src     string
		wantSub string
	}{
		{"unknown projected column", `CREATE VIEW v AS SELECT videoId, nope FROM Video`, "nope"},
		{"unknown where column", `CREATE VIEW v AS SELECT videoId FROM Video WHERE nope > 1`, "nope"},
		{"unknown group column", `CREATE VIEW v AS SELECT nope, COUNT(1) AS c FROM Video GROUP BY nope`, "nope"},
		{"unknown aggregate input", `CREATE VIEW v AS SELECT videoId, SUM(nope) AS s FROM Video GROUP BY videoId`, "nope"},
	}
	for _, c := range viewCases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := PlanView(d, c.src); err == nil {
				t.Fatalf("PlanView(%q): expected error", c.src)
			} else if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("PlanView(%q): error %q does not mention %q", c.src, err, c.wantSub)
			}
		})
	}
	queryCases := []struct {
		name    string
		src     string
		wantSub string
	}{
		{"unknown group-by column", `SELECT nope, SUM(visitCount) FROM visitView GROUP BY nope`, "no column"},
		{"group item not grouped", `SELECT videoId, SUM(visitCount) FROM visitView GROUP BY ownerId`, "GROUP BY column"},
		{"aggregate of expression", `SELECT SUM(visitCount * 2) FROM visitView`, "must be a view column"},
	}
	for _, c := range queryCases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := PlanQuery(v, c.src); err == nil {
				t.Fatalf("PlanQuery(%q): expected error", c.src)
			} else if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("PlanQuery(%q): error %q does not mention %q", c.src, err, c.wantSub)
			}
		})
	}
}
