package svc

import (
	"sync"
	"sync/atomic"
	"time"
)

// Refresher runs periodic background maintenance+cleaning cycles for one
// StaleView: every interval, if any base table has staged deltas, it runs
// MaintainNow — the whole cycle evaluates on a pinned snapshot, so
// concurrent Query calls are never blocked by it; they simply start
// answering from the new publication once the cycle lands.
//
// Construct one with StaleView.StartBackgroundRefresh or the
// WithBackgroundRefresh option.
type Refresher struct {
	sv       *StaleView
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	cycles   atomic.Uint64
	// Skipped ticks split by cause: idle (no staged deltas — nothing to
	// do) vs deferred (the view is under a Scheduler, which owns the
	// maintenance decision). /stats epoch-lag is interpretable only with
	// the split: a deferred skip can leave real staleness behind, an idle
	// skip cannot.
	skipsIdle     atomic.Uint64
	skipsDeferred atomic.Uint64
	maxCycle      atomic.Int64 // slowest cycle, ns
	lastCycle     atomic.Int64 // most recent cycle, ns
	inCycle       atomic.Bool
	lastErr       atomic.Value // refreshErr wrapper: atomic.Value needs one concrete type
}

// refreshErr wraps cycle errors so lastErr always stores one concrete
// type (atomic.Value panics on inconsistently typed stores).
type refreshErr struct{ err error }

// StartBackgroundRefresh starts (and returns) a background refresher with
// the given interval. The interval must be positive.
//
// Overlapping calls are last-writer-wins: each call installs its new
// refresher as the view's current one (Refresher) and then stops whatever
// it displaced, waiting out any in-flight cycle, so at most one refresher
// ever drives maintenance and no running refresher is orphaned — even
// when two goroutines race the restart, the loser's refresher is stopped
// by whichever call displaced it. A displaced refresher keeps its final
// counters readable (Cycles, MaxCycleDuration, Err) but never runs
// another cycle; callers holding an old *Refresher handle should re-read
// StaleView.Refresher() after a restart, since the old handle's Err only
// reflects cycles that ran before the displacement.
func (sv *StaleView) StartBackgroundRefresh(interval time.Duration) *Refresher {
	if interval <= 0 {
		panic("svc: background refresh interval must be positive")
	}
	r := &Refresher{
		sv:       sv,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if old := sv.refresher.Swap(r); old != nil {
		old.Stop()
	}
	go r.run()
	return r
}

// Refresher returns the most recently started background refresher, or
// nil. A stopped refresher stays readable (its counters remain valid).
func (sv *StaleView) Refresher() *Refresher { return sv.refresher.Load() }

// Close stops the background refresher, if one is running. The view
// remains usable (queries, manual MaintainNow) after Close, and the
// stopped refresher's counters stay readable through Refresher.
func (sv *StaleView) Close() error {
	if r := sv.refresher.Load(); r != nil {
		r.Stop()
	}
	return nil
}

func (r *Refresher) run() {
	defer close(r.done)
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			if r.sv.Scheduled() {
				// A Scheduler owns this view's maintenance budget; running
				// our own cycle would double-spend it.
				r.skipsDeferred.Add(1)
				continue
			}
			if !r.sv.Stale() {
				r.skipsIdle.Add(1)
				continue
			}
			start := time.Now()
			r.inCycle.Store(true)
			err := r.sv.MaintainNow()
			r.inCycle.Store(false)
			if err != nil {
				r.lastErr.Store(refreshErr{err})
				continue
			}
			d := int64(time.Since(start))
			r.lastCycle.Store(d)
			if d > r.maxCycle.Load() {
				r.maxCycle.Store(d)
			}
			r.lastErr.Store(refreshErr{nil}) // recovered: Err reports the most recent cycle
			r.cycles.Add(1)
		}
	}
}

// Stop halts the refresher and waits for an in-flight cycle to finish.
// Stop is idempotent.
func (r *Refresher) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// Interval returns the configured refresh interval.
func (r *Refresher) Interval() time.Duration { return r.interval }

// Cycles reports how many maintenance cycles have completed.
func (r *Refresher) Cycles() uint64 { return r.cycles.Load() }

// Skips reports the total ticks that ran no cycle, for any reason — the
// sum of SkipsIdle and SkipsDeferred.
func (r *Refresher) Skips() uint64 { return r.skipsIdle.Load() + r.skipsDeferred.Load() }

// SkipsIdle reports ticks that found no staged deltas and did nothing.
func (r *Refresher) SkipsIdle() uint64 { return r.skipsIdle.Load() }

// SkipsDeferred reports ticks skipped because a Scheduler manages the
// view: the refresher stood down rather than double-spending the
// maintenance budget. Nonzero SkipsDeferred with growing epoch lag points
// at the scheduler's policy, not at a stuck refresher.
func (r *Refresher) SkipsDeferred() uint64 { return r.skipsDeferred.Load() }

// LastCycleDuration reports the wall-clock time of the most recently
// completed cycle (0 before the first one). Under budgeted refresh it is
// the live cost signal — MaxCycleDuration only ratchets up.
func (r *Refresher) LastCycleDuration() time.Duration {
	return time.Duration(r.lastCycle.Load())
}

// MaxCycleDuration reports the wall-clock time of the slowest completed
// cycle. Comparing it with observed query latencies shows whether readers
// ever waited out a maintenance run (under snapshot serving they do not).
func (r *Refresher) MaxCycleDuration() time.Duration {
	return time.Duration(r.maxCycle.Load())
}

// InCycle reports whether a maintenance cycle is running right now. A
// reader observing its query complete while InCycle is true has direct
// evidence it was not blocked for the duration of the maintenance run;
// the serve benchmark counts exactly that.
func (r *Refresher) InCycle() bool { return r.inCycle.Load() }

// Err returns the most recent cycle's error, or nil — a later successful
// cycle clears it. A failed cycle leaves the previous publication
// serving; the next tick retries.
//
// Err is per-refresher state: after an overlapping StartBackgroundRefresh
// displaced this refresher, its Err stays frozen at the last cycle it ran
// itself — read the view's current refresher (StaleView.Refresher) for
// live error reporting.
func (r *Refresher) Err() error {
	if e, ok := r.lastErr.Load().(refreshErr); ok {
		return e.err
	}
	return nil
}
