package estimator

import (
	"fmt"
	"math"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// SelectResult is the Appendix 12.1.2 cleaned SELECT answer: the stale
// selection with sampled corrections applied, plus count estimates for the
// three error classes so the user can judge residual inaccuracy ("three
// confidence intervals").
type SelectResult struct {
	// Rows is the corrected selection: stale matches with sampled
	// updates overwritten, sampled missing rows unioned in, and sampled
	// superfluous/non-matching rows removed.
	Rows *relation.Relation
	// Updated estimates the number of rows of the true selection whose
	// values changed.
	Updated Estimate
	// Added estimates the number of rows newly entering the selection.
	Added Estimate
	// Removed estimates the number of rows leaving the selection.
	Removed Estimate
}

// CleanSelect answers SELECT * FROM view WHERE pred on a stale view using
// the corresponding samples (Appendix 12.1.2).
func CleanSelect(staleView *relation.Relation, s *clean.Samples, pred expr.Expr, confidence float64) (*SelectResult, error) {
	boundStale, err := pred.Bind(staleView.Schema())
	if err != nil {
		return nil, fmt.Errorf("estimator: select predicate: %w", err)
	}
	boundFresh, err := pred.Bind(s.Fresh.Schema())
	if err != nil {
		return nil, fmt.Errorf("estimator: select predicate: %w", err)
	}
	keyIdx := staleView.Schema().Key()

	// Start from the stale selection (predicate evaluated vectorized —
	// the stale view is the largest relation this estimator touches).
	out := relation.New(staleView.Schema())
	staleMatch := predMatches(staleView, boundStale)
	for ri, row := range staleView.Rows() {
		if staleMatch[ri] {
			out.MustInsert(row)
		}
	}

	var updated, added, removed int
	// Walk the clean sample: overwrite updated rows, add missing rows.
	for _, fr := range s.Fresh.Rows() {
		k := fr.KeyOf(keyIdx)
		matches := boundFresh.Eval(fr).AsBool()
		stRow, inStale := s.Stale.GetByEncodedKey(k)
		switch {
		case matches && inStale:
			if !fr.Equal(stRow) {
				updated++
			}
			if _, selected := out.GetByEncodedKey(k); selected {
				out.DeleteByEncodedKey(k)
				out.MustInsert(fr)
			} else {
				// Entered the selection due to updated values.
				added++
				out.MustInsert(fr)
			}
		case matches && !inStale:
			// Missing row that satisfies the predicate.
			added++
			out.MustInsert(fr)
		case !matches && inStale:
			// Row left the selection (values changed or it never
			// matched; only count it if it was selected).
			if _, selected := out.GetByEncodedKey(k); selected {
				removed++
				out.DeleteByEncodedKey(k)
			}
		}
	}
	// Superfluous rows: sampled stale rows whose keys vanished from the
	// up-to-date view must be removed from the selection.
	for _, st := range s.Stale.Rows() {
		k := st.KeyOf(keyIdx)
		if _, inFresh := s.Fresh.GetByEncodedKey(k); inFresh {
			continue
		}
		if _, selected := out.GetByEncodedKey(k); selected {
			removed++
			out.DeleteByEncodedKey(k)
		}
	}

	scale := 1 / s.Ratio
	mk := func(n int) Estimate {
		v := float64(n) * scale
		// Binomial CLT half-width on the scaled count.
		half := 0.0
		if n > 0 {
			half = 1.96 * scale * sqrtF(float64(n))
		}
		return Estimate{Value: v, Lo: maxF(0, v-half), Hi: v + half, Confidence: confidence, Method: "svc+select", K: n}
	}
	return &SelectResult{
		Rows:    out,
		Updated: mk(updated),
		Added:   mk(added),
		Removed: mk(removed),
	}, nil
}

func sqrtF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Sqrt(x)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
