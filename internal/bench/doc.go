// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Section 7) plus the ablations called out in
// DESIGN.md. Each experiment is a named runner producing a Table whose
// rows correspond to the series in the paper's figure; cmd/svcbench prints
// them and bench_test.go wraps them in testing.B benchmarks. The serving
// experiments ("serve", "serve-http") go beyond the paper: they measure
// reader throughput while maintenance cycles run, in-process and through
// the svcd HTTP daemon respectively. "refresh-sched" gates the multi-view
// maintenance optimizer: shared group cycles must beat K independent
// cycles on rows touched, and the error-budget scheduler must beat
// fixed-interval refresh on mean CI width under a skewed query mix.
//
// Concurrency contract: each experiment builds its own database and view
// and may spawn internal writer/reader goroutines, but the harness itself
// is single-threaded — run one experiment at a time per process (several
// tune GOMAXPROCS for the duration of their run).
package bench
