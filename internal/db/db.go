package db

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/relation"
)

// InsOf returns the context binding name of table's insertion delta ΔR.
func InsOf(table string) string { return "Δ" + table }

// DelOf returns the context binding name of table's deletion delta ∇R.
func DelOf(table string) string { return "∇" + table }

// ForeignKey records that Table.Column references RefTable's primary key.
// The hash push-down's foreign-key special case consults this metadata.
type ForeignKey struct {
	Table, Column, RefTable string
}

// Table is one base relation plus its staged deltas.
//
// Mutators (Insert, StageInsert, StageUpdate, StageDelete) are safe for
// concurrent use: they serialize on the owning database's writer lock and
// invalidate its published version. Plain readers (Rows, Insertions,
// Deletions) return the live relations and are only safe when no writer is
// running; concurrent readers should pin a Database.Pin version instead.
type Table struct {
	name      string
	owner     *Database
	base      *relation.Relation
	ins       *relation.Relation // ΔR: staged insertions (keyed like base)
	del       *relation.Relation // ∇R: staged deletions (full old rows)
	indexCols [][]int            // registered secondary indexes (column sets)
	changed   bool               // mutated since the last published version (guarded by owner.mu)
	baseGen   uint64             // bumped per direct base Insert (guarded by owner.mu)
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() relation.Schema { return t.base.Schema() }

// Rows returns the current (pre-delta) contents.
func (t *Table) Rows() *relation.Relation { return t.base }

// Len reports the number of base rows (staged deltas excluded).
func (t *Table) Len() int { return t.base.Len() }

// Insertions returns the staged insertion relation ΔR.
func (t *Table) Insertions() *relation.Relation { return t.ins }

// Deletions returns the staged deletion relation ∇R.
func (t *Table) Deletions() *relation.Relation { return t.del }

// write runs a mutation under the owning database's writer lock and, when
// it succeeds, marks the published version stale. Failed staging calls
// mutate nothing (the stage* methods validate before touching state), so
// they must not invalidate the version: a spurious epoch bump would
// re-arm copy-on-write detaches and flush the serving layer's per-epoch
// caches for an identical state.
func (t *Table) write(fn func() error) error {
	t.owner.mu.Lock()
	defer t.owner.mu.Unlock()
	err := fn()
	if err == nil {
		t.owner.dirty.Store(true)
		t.changed = true
	}
	return err
}

// Insert adds a row directly to the base table (initial load, before any
// view is materialized).
func (t *Table) Insert(row relation.Row) error {
	return t.loggedWrite(OpBase, row, func() error {
		if err := t.base.Insert(row); err != nil {
			return err
		}
		// Direct base mutations are not staged, so the ApplyVersion
		// retirement protocol cannot re-base them across a maintenance
		// boundary; the generation bump makes a concurrent boundary
		// reject its (now stale) pin instead of silently dropping the
		// inserted row at the base swap.
		t.baseGen++
		return nil
	})
}

// MustInsert is Insert, panicking on error (generators).
func (t *Table) MustInsert(row relation.Row) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// StageInsert stages a new record into ΔR. The key must not exist in the
// base table (use StageUpdate for updates).
func (t *Table) StageInsert(row relation.Row) error {
	return t.loggedWrite(OpInsert, row, func() error { return t.stageInsert(row) })
}

func (t *Table) stageInsert(row relation.Row) error {
	if t.base.Schema().HasKey() {
		k := row.KeyOf(t.base.Schema().Key())
		if _, exists := t.base.GetByEncodedKey(k); exists {
			return fmt.Errorf("db: %s: staged insert of existing key; use StageUpdate", t.name)
		}
	}
	_, err := t.ins.Upsert(row)
	return err
}

// StageDelete stages the deletion of the base row with the given key. The
// full old row is recorded in ∇R so maintenance can subtract its
// contribution from aggregates.
func (t *Table) StageDelete(key ...relation.Value) error {
	return t.loggedWrite(OpDelete, relation.Row(key), func() error { return t.stageDelete(key...) })
}

func (t *Table) stageDelete(key ...relation.Value) error {
	k := relation.Row(key).KeyOf(intRange(len(key)))
	old, ok := t.base.GetByEncodedKey(k)
	if !ok {
		// Deleting a row staged for insertion just un-stages it.
		if t.ins.DeleteByEncodedKey(k) {
			return nil
		}
		return fmt.Errorf("db: %s: staged delete of unknown key", t.name)
	}
	// Keep the first recorded old row if the same key is touched twice.
	if _, exists := t.del.GetByEncodedKey(k); !exists {
		if err := t.del.Insert(old.Clone()); err != nil {
			return err
		}
	}
	// Deleting a row that also had a staged update cancels the pending
	// re-insertion.
	t.ins.DeleteByEncodedKey(k)
	return nil
}

// StageUpdate stages an update of an existing record: the paper models it
// as a deletion of the old row followed by an insertion of the new one.
func (t *Table) StageUpdate(row relation.Row) error {
	return t.loggedWrite(OpUpdate, row, func() error { return t.stageUpdate(row) })
}

func (t *Table) stageUpdate(row relation.Row) error {
	keyIdx := t.base.Schema().Key()
	k := row.KeyOf(keyIdx)
	old, ok := t.base.GetByEncodedKey(k)
	if !ok {
		return fmt.Errorf("db: %s: staged update of unknown key", t.name)
	}
	// Upsert (which validates the new row) before recording the old row:
	// an invalid update then fails without having mutated anything.
	if _, err := t.ins.Upsert(row); err != nil {
		return err
	}
	if _, exists := t.del.GetByEncodedKey(k); !exists {
		if err := t.del.Insert(old.Clone()); err != nil {
			return err
		}
	}
	return nil
}

// PendingSize reports the number of staged insertions and deletions.
func (t *Table) PendingSize() (ins, del int) {
	t.owner.mu.Lock()
	defer t.owner.mu.Unlock()
	return t.ins.Len(), t.del.Len()
}

// clearDeltas resets the staged deltas.
func (t *Table) clearDeltas() {
	t.ins = relation.New(t.base.Schema())
	t.del = relation.New(t.base.Schema())
}

// Database is a catalog of tables with foreign keys.
//
// The catalog supports snapshot-isolated serving: all mutators serialize
// on an internal writer lock, and Pin publishes an immutable Version
// (copy-on-write snapshots of every table and its deltas, plus an epoch
// counter) that any number of readers can evaluate against while writers
// keep staging updates and maintenance folds deltas in. See DESIGN.md
// ("Snapshot serving layer") for the publication protocol.
type Database struct {
	mu          sync.Mutex // serializes all mutation and version building
	tables      map[string]*Table
	order       []string
	fks         []ForeignKey
	parallelism int
	noColumnar  bool

	epoch   uint64                  // publication counter (bumped per new Version)
	applied uint64                  // maintenance-boundary counter (ApplyDeltas/ApplyVersion)
	dirty   atomic.Bool             // mutations since cur was built
	cur     atomic.Pointer[Version] // last published version
	payload map[string]any          // serving attachments carried by versions
	dlog    dlogField               // attached durable maintenance log (see log.go)
}

// New creates an empty database.
func New() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Version is an immutable published snapshot of the catalog: every base
// table and its staged deltas as of one publication epoch, plus opaque
// serving attachments (e.g. the view/sample pair the svc layer publishes
// with each maintenance cycle). Readers evaluate relational expressions
// against a Version's Context while writers mutate the live catalog.
type Version struct {
	epoch       uint64
	applied     uint64
	order       []string
	tables      map[string]versionTable
	fks         []ForeignKey
	parallelism int
	noColumnar  bool
	payload     map[string]any
	walSeq      uint64 // last durable-log sequence captured by this version
}

type versionTable struct {
	base, ins, del *relation.Relation
	baseGen        uint64
}

// Epoch identifies this publication; it increases monotonically over a
// database's lifetime.
func (v *Version) Epoch() uint64 { return v.epoch }

// AppliedSeq counts the maintenance boundaries (delta applications) that
// happened before this version was published. Two versions with the same
// AppliedSeq share identical base tables.
func (v *Version) AppliedSeq() uint64 { return v.applied }

// Tables returns the table names in creation order.
func (v *Version) Tables() []string { return append([]string(nil), v.order...) }

// Base returns the pinned base relation of the named table, or nil.
func (v *Version) Base(name string) *relation.Relation {
	if vt, ok := v.tables[name]; ok {
		return vt.base
	}
	return nil
}

// Insertions returns the pinned staged-insertion relation ΔR, or nil.
func (v *Version) Insertions(name string) *relation.Relation {
	if vt, ok := v.tables[name]; ok {
		return vt.ins
	}
	return nil
}

// Deletions returns the pinned staged-deletion relation ∇R, or nil.
func (v *Version) Deletions(name string) *relation.Relation {
	if vt, ok := v.tables[name]; ok {
		return vt.del
	}
	return nil
}

// HasPending reports whether the version carries staged deltas.
func (v *Version) HasPending() bool {
	for _, vt := range v.tables {
		if vt.ins.Len() > 0 || vt.del.Len() > 0 {
			return true
		}
	}
	return false
}

// Attachment returns the serving attachment stored under key by
// ApplyVersion/SetAttachment, or nil. Attachments ride along from version
// to version until overwritten, so a reader pinning any version sees the
// attachment published with the last maintenance cycle.
func (v *Version) Attachment(key string) any { return v.payload[key] }

// Context returns an evaluation context binding every pinned base table
// under its name and its pinned deltas under InsOf/DelOf names — the
// snapshot-isolated counterpart of Database.Context.
func (v *Version) Context() *algebra.Context {
	rels := make(map[string]*relation.Relation, 3*len(v.order))
	for _, name := range v.order {
		vt := v.tables[name]
		rels[name] = vt.base
		rels[InsOf(name)] = vt.ins
		rels[DelOf(name)] = vt.del
	}
	ctx := algebra.NewContext(rels)
	ctx.Parallelism = v.parallelism
	ctx.NoColumnar = v.noColumnar
	ctx.Epoch = v.epoch
	return ctx
}

// PendingRows counts the staged delta rows (insertions plus deletions)
// pinned by this version for the named tables — all tables when none are
// given. It is the staleness mass a maintenance cycle over those tables
// would fold in, the quantity the refresh scheduler weighs views by.
func (v *Version) PendingRows(tables ...string) int {
	total := 0
	if len(tables) == 0 {
		for _, vt := range v.tables {
			total += vt.ins.Len() + vt.del.Len()
		}
		return total
	}
	for _, name := range tables {
		if vt, ok := v.tables[name]; ok {
			total += vt.ins.Len() + vt.del.Len()
		}
	}
	return total
}

// buildVersion publishes a fresh Version from the live catalog. The caller
// must hold d.mu. Tables untouched since the previous version reuse its
// snapshots, so only relations a writer actually mutated get re-marked
// shared (and only those pay a copy-on-write detach on their next write).
func (d *Database) buildVersion() *Version {
	d.epoch++
	v := &Version{
		epoch:       d.epoch,
		applied:     d.applied,
		order:       append([]string(nil), d.order...),
		tables:      make(map[string]versionTable, len(d.order)),
		fks:         append([]ForeignKey(nil), d.fks...),
		parallelism: d.parallelism,
		noColumnar:  d.noColumnar,
		payload:     d.payload,
	}
	if lg := d.DeltaLog(); lg != nil {
		// Appends happen under d.mu, so this is a consistent cut: the
		// version captures exactly the mutations of records ≤ walSeq.
		v.walSeq = lg.SeqNow()
	}
	prev := d.cur.Load()
	for _, name := range d.order {
		t := d.tables[name]
		if !t.changed && prev != nil {
			if vt, ok := prev.tables[name]; ok {
				v.tables[name] = vt
				continue
			}
		}
		v.tables[name] = versionTable{
			base:    t.base.Snapshot(),
			ins:     t.ins.Snapshot(),
			del:     t.del.Snapshot(),
			baseGen: t.baseGen,
		}
		t.changed = false
	}
	d.cur.Store(v)
	d.dirty.Store(false)
	return v
}

// Pin returns the current published version, building one first if the
// catalog changed since the last publication. Pinning is cheap (O(#tables)
// copy-on-write marks when dirty, a single atomic load otherwise) and the
// returned version never changes: readers evaluate queries, maintenance,
// and cleaning against it while writers continue.
//
// The fast path takes no lock: when the catalog is unchanged since the
// last publication, Pin is one atomic load, so readers never wait behind a
// publication in progress (they observe the previous version, which is
// immutable and consistent).
func (d *Database) Pin() *Version {
	if v := d.cur.Load(); v != nil && !d.dirty.Load() {
		return v
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if v := d.cur.Load(); v != nil && !d.dirty.Load() {
		return v
	}
	return d.buildVersion()
}

// SetAttachment publishes a serving attachment under key: subsequent
// versions (including the one published by this call) carry it. Pass nil
// to remove.
func (d *Database) SetAttachment(key string, val any) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.attachLocked(map[string]any{key: val})
	d.buildVersion()
}

// attachLocked merges attachments into a fresh payload map (versions share
// payload maps, so the current one is never mutated in place).
func (d *Database) attachLocked(atts map[string]any) {
	merged := make(map[string]any, len(d.payload)+len(atts))
	for k, val := range d.payload {
		merged[k] = val
	}
	for k, val := range atts {
		if val == nil {
			delete(merged, k)
			continue
		}
		merged[k] = val
	}
	d.payload = merged
}

// Create adds a table with the given schema; the schema must declare a
// primary key (paper Section 3.1 assumes one, adding a synthetic sequence
// otherwise — callers can do the same with an extra column).
func (d *Database) Create(name string, schema relation.Schema) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[name]; dup {
		return nil, fmt.Errorf("db: table %q already exists", name)
	}
	if !schema.HasKey() {
		return nil, fmt.Errorf("db: table %q needs a primary key", name)
	}
	t := &Table{name: name, owner: d, base: relation.New(schema), changed: true}
	t.clearDeltas()
	d.tables[name] = t
	d.order = append(d.order, name)
	d.dirty.Store(true)
	return t, nil
}

// MustCreate is Create, panicking on error.
func (d *Database) MustCreate(name string, schema relation.Schema) *Table {
	t, err := d.Create(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// SetParallelism sets the intra-operator worker count stamped onto every
// evaluation context this database hands out (view materialization,
// maintenance, sampled cleaning). 0 and 1 mean serial; parallel
// evaluation produces identical results (see package algebra).
func (d *Database) SetParallelism(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.parallelism = n
	d.dirty.Store(true)
}

// Parallelism returns the configured intra-operator worker count.
func (d *Database) Parallelism() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.parallelism
}

// SetColumnar enables or disables the columnar batch path on every
// evaluation context this database hands out (view materialization,
// maintenance, sampled cleaning, svcql execution). Columnar is the
// default; disabling it (the svcbench -columnar=off A/B mode) falls back
// to the row-at-a-time pipeline with identical results.
func (d *Database) SetColumnar(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.noColumnar = !on
	d.dirty.Store(true)
}

// Columnar reports whether the columnar batch path is enabled.
func (d *Database) Columnar() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.noColumnar
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tables[name]
}

// Tables returns the table names in creation order.
func (d *Database) Tables() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.order...)
}

// AddForeignKey registers that table.column references refTable's key.
func (d *Database) AddForeignKey(table, column, refTable string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tables[table]
	if !ok {
		return fmt.Errorf("db: unknown table %q", table)
	}
	if !t.Schema().HasCol(column) {
		return fmt.Errorf("db: table %q has no column %q", table, column)
	}
	if _, ok := d.tables[refTable]; !ok {
		return fmt.Errorf("db: unknown referenced table %q", refTable)
	}
	d.fks = append(d.fks, ForeignKey{Table: table, Column: column, RefTable: refTable})
	d.dirty.Store(true)
	return nil
}

// ForeignKeys returns the registered constraints.
func (d *Database) ForeignKeys() []ForeignKey {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]ForeignKey(nil), d.fks...)
}

// HasPending reports whether any table has staged deltas — i.e. whether
// views over this database are stale (paper: S is stale when some delta
// relation is non-empty).
func (d *Database) HasPending() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range d.tables {
		if t.ins.Len() > 0 || t.del.Len() > 0 {
			return true
		}
	}
	return false
}

// ApplyDeltas folds all staged deltas into the base tables and clears
// them: deletions first, then insertions (an update's delete+insert pair
// lands as a replacement). It is the pin-everything-now special case of
// ApplyVersion.
func (d *Database) ApplyDeltas() error {
	return d.ApplyVersion(d.Pin(), nil)
}

// ApplyVersion folds exactly the staged deltas captured in the pinned
// version v into the base tables — the maintenance-boundary operation for
// concurrent serving. Updates staged after v was pinned survive as pending
// deltas, re-based so they remain correct relative to the new base tables:
//
//   - a delta row identical to the applied one is retired (it has landed);
//   - a pending insertion that was re-staged with a newer value after the
//     pin keeps its ΔR row, and the just-applied row is recorded in ∇R as
//     its old version, so the next maintenance subtracts the applied
//     contribution before adding the newer one;
//   - a pending deletion of a row whose applied version just landed keeps
//     its ∇R record.
//
// The attachments (if non-nil) are published atomically with the fold: a
// reader pinning the resulting version sees the new base tables, only the
// deltas staged after v, and the new attachments — never a mix.
func (d *Database) ApplyVersion(v *Version, atts map[string]any) error {
	return d.applyVersion(v, atts, nil)
}

// ApplyVersionTables is ApplyVersion restricted to a subset of tables:
// only the named tables' pinned deltas are folded and retired; every
// other table keeps its base AND its pending deltas untouched, so views
// over the excluded tables still see their full change sets at the next
// maintenance. This is what makes staleness-driven scheduling sound on a
// shared catalog — deferring a view must not let another view's boundary
// silently fold (and retire) the deferred view's deltas out from under
// it.
//
// Table names absent from the catalog are ignored. The attachments are
// published exactly as in ApplyVersion. A partial boundary does not
// advance the durable log's replay cut (excluded tables' logged records
// are not yet folded), so recovery after a crash simply re-stages the
// partially folded deltas — a recomputation, never a loss.
func (d *Database) ApplyVersionTables(v *Version, atts map[string]any, tables []string) error {
	only := make(map[string]bool, len(tables))
	for _, t := range tables {
		only[t] = true
	}
	return d.applyVersion(v, atts, only)
}

// applyVersion implements ApplyVersion; a nil `only` folds every table,
// otherwise exactly the tables in the set.
func (d *Database) applyVersion(v *Version, atts map[string]any, only map[string]bool) error {
	folds := func(name string) bool { return only == nil || only[name] }
	// The retirement protocol is only sound relative to the base tables v
	// was pinned against: re-folding a pin that predates another boundary
	// would mis-record already-applied rows as pending changes. Reject
	// superseded pins; the caller re-pins and retries (the background
	// Refresher does so on its next tick).
	superseded := func(applied uint64) error {
		return fmt.Errorf("db: apply version: pin from applied-boundary %d superseded by boundary %d; re-pin and retry",
			v.applied, applied)
	}

	// Phase 1 — no lock held: build each touched table's NEXT base off to
	// the side (clone the pinned base, fold the pinned deltas, rebuild
	// its registered secondary indexes). Base tables only change at
	// boundaries and this pin is verified un-superseded below, so the
	// pinned base snapshot IS the current base content; all the O(|base|)
	// work happens while readers pin and writers stage freely.
	d.mu.Lock()
	if v.applied != d.applied {
		d.mu.Unlock()
		return superseded(d.applied)
	}
	idxCols := make(map[string][][]int, len(v.order))
	for _, name := range v.order {
		t := d.tables[name]
		if t == nil {
			d.mu.Unlock()
			return fmt.Errorf("db: apply version: table %q no longer exists", name)
		}
		idxCols[name] = append([][]int(nil), t.indexCols...)
	}
	d.mu.Unlock()

	newBases := make(map[string]*relation.Relation)
	for _, name := range v.order {
		vt := v.tables[name]
		if !folds(name) || (vt.ins.Len() == 0 && vt.del.Len() == 0) {
			continue
		}
		nb := vt.base.Clone()
		keyIdx := nb.Schema().Key()
		for _, row := range vt.del.Rows() {
			nb.DeleteByEncodedKey(row.KeyOf(keyIdx))
		}
		for _, row := range vt.ins.Rows() {
			if _, err := nb.Upsert(row); err != nil {
				return fmt.Errorf("db: apply version to %s: %w", name, err)
			}
		}
		for _, cols := range idxCols[name] {
			nb.BuildIndex(cols)
		}
		newBases[name] = nb
	}

	// Phase 2 — short critical section: swap the new bases in, retire the
	// applied deltas from the live pending sets (O(|deltas|)), and
	// publish. Readers pinning during this section wait at most for the
	// retirement walk, never for the fold or index builds.
	d.mu.Lock()
	if v.applied != d.applied {
		d.mu.Unlock()
		return superseded(d.applied)
	}
	// Pre-validate EVERY table before mutating any: phase 2 must be
	// all-or-nothing, or an abort on a later table would leave earlier
	// tables' deltas folded-and-retired without the maintained view ever
	// seeing them.
	for _, name := range v.order {
		t := d.tables[name]
		if t == nil {
			d.mu.Unlock()
			return fmt.Errorf("db: apply version: table %q no longer exists", name)
		}
		if _, touched := newBases[name]; touched && t.baseGen != v.tables[name].baseGen {
			// Direct (unstaged) base inserts since the pin would vanish
			// in the swap; reject the pin instead — the caller re-pins
			// and retries with those rows included.
			d.mu.Unlock()
			return fmt.Errorf("db: apply version: table %q had direct base inserts since the pin; re-pin and retry", name)
		}
	}
	// Mutations start here. The only remaining error path (a ∇R Insert of
	// a row cloned from the same-schema base) is unreachable in practice;
	// should it ever fire, the boundary is still counted and published so
	// readers see a state coherent with the live catalog, and the error
	// is reported.
	var applyErr error
	for _, name := range v.order {
		t := d.tables[name]
		vt := v.tables[name]
		keyIdx := t.base.Schema().Key()
		nb, touched := newBases[name]
		if touched {
			t.base = nb
			t.changed = true
		} else {
			// Untouched by this boundary, but direct Inserts may have
			// invalidated registered indexes since the last one; restore
			// them (rare — loads normally precede serving).
			for _, cols := range t.indexCols {
				if !t.base.HasIndex(cols) {
					t.base.BuildIndex(cols)
					t.changed = true
				}
			}
		}
		if !folds(name) {
			// Excluded from this (partial) boundary: the base was not
			// folded, so the pinned deltas must stay pending verbatim for
			// the table's own next maintenance boundary.
			continue
		}
		// Retire the applied deltas from the live pending sets. ∇R rows
		// are write-once per key, so an identical row means "applied".
		for _, row := range vt.del.Rows() {
			k := row.KeyOf(keyIdx)
			if live, ok := t.del.GetByEncodedKey(k); ok && live.Equal(row) {
				t.del.DeleteByEncodedKey(k)
			}
		}
		for _, row := range vt.ins.Rows() {
			k := row.KeyOf(keyIdx)
			live, ok := t.ins.GetByEncodedKey(k)
			if ok && live.Equal(row) {
				t.ins.DeleteByEncodedKey(k)
				continue
			}
			// The key was re-staged (newer value) or un-staged (deletion)
			// after the pin: the applied row is now the pending change's
			// old version; record it in ∇R unless one is already pending.
			if _, has := t.del.GetByEncodedKey(k); !has {
				if err := t.del.Insert(row.Clone()); err != nil && applyErr == nil {
					applyErr = fmt.Errorf("db: apply version to %s: %w", name, err)
				}
			}
		}
		// Common case: everything applied and nothing re-staged — reset
		// the delta relations wholesale so their map storage does not
		// grow without bound across boundaries.
		if touched && t.ins.Len() == 0 && t.del.Len() == 0 {
			t.clearDeltas()
		}
	}
	d.applied++
	if applyErr == nil && atts != nil {
		d.attachLocked(atts)
	}
	d.dirty.Store(true)
	nv := d.buildVersion()
	// Record the maintenance boundary in the durable log: every logged
	// record with seq ≤ the pin's cut is now folded into the base tables,
	// so recovery replays only the suffix. The record is buffered under
	// the lock (keeping log order = boundary order) and synced after
	// release; the just-published version rides along so the log can
	// checkpoint it off-lock when enough segments become retirable.
	// A partial boundary skips the record: excluded tables' logged
	// records are not folded yet, so the replay cut must not move past
	// them. Recovery then re-stages the partially folded rows too — the
	// folded tables' next full boundary re-nets them (recompute, not
	// loss).
	var commit func() error
	if lg := d.DeltaLog(); lg != nil && applyErr == nil && only == nil {
		var logErr error
		commit, logErr = lg.Boundary(d.applied, v.walSeq, nv)
		if logErr != nil {
			applyErr = logErr
		}
	}
	d.mu.Unlock()
	if commit != nil {
		if err := commit(); err != nil && applyErr == nil {
			applyErr = err
		}
	}
	return applyErr
}

// Snapshot returns a deep copy of the database, including staged deltas.
// Experiments use snapshots to evaluate competing maintenance approaches
// on identical states. (For cheap read-only snapshots, use Pin.)
func (d *Database) Snapshot() *Database {
	d.mu.Lock()
	defer d.mu.Unlock()
	nd := New()
	for _, name := range d.order {
		t := d.tables[name]
		nt := &Table{name: name, owner: nd, base: t.base.Clone(), ins: t.ins.Clone(), del: t.del.Clone(), changed: true}
		nt.indexCols = append(nt.indexCols, t.indexCols...)
		nt.rebuildIndexes()
		nd.tables[name] = nt
		nd.order = append(nd.order, name)
	}
	nd.fks = append(nd.fks, d.fks...)
	nd.parallelism = d.parallelism
	nd.noColumnar = d.noColumnar
	return nd
}

// Context returns an evaluation context over the current published
// version (see Pin): every pinned base table is bound under its name and
// its pinned deltas under InsOf/DelOf names. Extra relations (e.g. the
// stale view) can be bound afterwards.
//
// Because the bindings are copy-on-write snapshots, an evaluation against
// the context is isolated from concurrent staging and maintenance.
func (d *Database) Context() *algebra.Context {
	return d.Pin().Context()
}

func intRange(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// EnsureIndex registers and builds a secondary index on the named columns
// of a base table. Joins probe it instead of scanning (package algebra);
// ApplyDeltas rebuilds registered indexes after folding updates in.
// Registering the same column set twice is a no-op.
func (d *Database) EnsureIndex(table string, cols ...string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tables[table]
	if !ok {
		return fmt.Errorf("db: unknown table %q", table)
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := t.Schema().ColIndex(c)
		if j < 0 {
			return fmt.Errorf("db: table %q has no column %q", table, c)
		}
		idx[i] = j
	}
	if t.base.HasIndex(idx) {
		sig := fmt.Sprint(idx)
		for _, have := range t.indexCols {
			if fmt.Sprint(have) == sig {
				return nil
			}
		}
	}
	t.indexCols = append(t.indexCols, idx)
	t.base.BuildIndex(idx)
	t.changed = true
	d.dirty.Store(true)
	return nil
}

// rebuildIndexes re-creates a table's registered secondary indexes (after
// mutations invalidated them).
func (t *Table) rebuildIndexes() {
	for _, cols := range t.indexCols {
		t.base.BuildIndex(cols)
	}
}
