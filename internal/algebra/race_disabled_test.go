//go:build !race

package algebra

const raceEnabled = false
