package algebra

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// AggFunc enumerates the aggregate functions supported by γ.
type AggFunc uint8

// Aggregate functions. Count counts rows (COUNT(1)); the others fold the
// Input expression, skipping NULL inputs like SQL.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
)

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string {
	return [...]string{"count", "sum", "avg", "min", "max"}[f]
}

// AggSpec is one aggregate output: a function over an input expression,
// emitted under the name As.
type AggSpec struct {
	Func  AggFunc
	Input expr.Expr // nil for Count
	As    string
}

// CountAs returns a COUNT(1) aggregate named as.
func CountAs(as string) AggSpec { return AggSpec{Func: Count, As: as} }

// SumAs returns SUM(e) named as.
func SumAs(e expr.Expr, as string) AggSpec { return AggSpec{Func: Sum, Input: e, As: as} }

// AvgAs returns AVG(e) named as.
func AvgAs(e expr.Expr, as string) AggSpec { return AggSpec{Func: Avg, Input: e, As: as} }

// MinAs returns MIN(e) named as.
func MinAs(e expr.Expr, as string) AggSpec { return AggSpec{Func: Min, Input: e, As: as} }

// MaxAs returns MAX(e) named as.
func MaxAs(e expr.Expr, as string) AggSpec { return AggSpec{Func: Max, Input: e, As: as} }

// AggregateNode evaluates γ_{f,A}: group the input by the distinct values
// of the group-by attributes and apply the aggregate functions per group.
//
// Key derivation (Definition 2): the primary key of the result is the
// group-by key. With no group-by attributes the result is the single
// all-rows group and is keyless.
type AggregateNode struct {
	child   Node
	groupBy []string
	aggs    []AggSpec

	schema relation.Schema
	gIdx   []int
	bound  []expr.Expr
}

// GroupBy builds γ over child grouped by the named attributes.
func GroupBy(child Node, groupBy []string, aggs ...AggSpec) (*AggregateNode, error) {
	cs := child.Schema()
	a := &AggregateNode{child: child, groupBy: groupBy, aggs: aggs}

	var cols []relation.Column
	for _, g := range groupBy {
		i := cs.ColIndex(g)
		if i < 0 {
			return nil, fmt.Errorf("algebra: group-by column %q not found in [%s]", g, cs)
		}
		a.gIdx = append(a.gIdx, i)
		cols = append(cols, cs.Col(i))
	}
	for _, spec := range aggs {
		if spec.As == "" {
			return nil, fmt.Errorf("algebra: aggregate %s needs an output name", spec.Func)
		}
		var typ relation.Kind
		switch spec.Func {
		case Count:
			typ = relation.KindInt
		case Sum, Avg:
			typ = relation.KindFloat
		default:
			typ = relation.KindNull // min/max keep the input's type
		}
		cols = append(cols, relation.Column{Name: spec.As, Type: typ})
		if spec.Func != Count {
			if spec.Input == nil {
				return nil, fmt.Errorf("algebra: aggregate %s(%s) needs an input expression", spec.Func, spec.As)
			}
			b, err := spec.Input.Bind(cs)
			if err != nil {
				return nil, fmt.Errorf("algebra: aggregate %s: %w", spec.As, err)
			}
			a.bound = append(a.bound, b)
		} else {
			a.bound = append(a.bound, nil)
		}
	}
	a.schema = relation.NewSchema(cols, groupBy...)
	return a, nil
}

// MustGroupBy is GroupBy, panicking on error.
func MustGroupBy(child Node, groupBy []string, aggs ...AggSpec) *AggregateNode {
	a, err := GroupBy(child, groupBy, aggs...)
	if err != nil {
		panic(err)
	}
	return a
}

// GroupKeys returns the group-by attribute names.
func (a *AggregateNode) GroupKeys() []string { return append([]string(nil), a.groupBy...) }

// Aggs returns the aggregate specifications.
func (a *AggregateNode) Aggs() []AggSpec { return append([]AggSpec(nil), a.aggs...) }

// Schema implements Node.
func (a *AggregateNode) Schema() relation.Schema { return a.schema }

// accumulator folds one aggregate for one group.
type accumulator struct {
	count int64
	sum   float64
	min   relation.Value
	max   relation.Value
	n     int64 // non-null inputs, for avg
}

func (acc *accumulator) add(f AggFunc, v relation.Value) {
	switch f {
	case Count:
		acc.count++
	case Sum, Avg:
		if !v.IsNull() {
			acc.sum += v.AsFloat()
			acc.n++
		}
	case Min:
		if !v.IsNull() && (acc.n == 0 || v.Compare(acc.min) < 0) {
			acc.min = v
			acc.n++
		}
	case Max:
		if !v.IsNull() && (acc.n == 0 || v.Compare(acc.max) > 0) {
			acc.max = v
			acc.n++
		}
	}
}

func (acc *accumulator) result(f AggFunc) relation.Value {
	switch f {
	case Count:
		return relation.Int(acc.count)
	case Sum:
		if acc.n == 0 {
			return relation.Null()
		}
		return relation.Float(acc.sum)
	case Avg:
		if acc.n == 0 {
			return relation.Null()
		}
		return relation.Float(acc.sum / float64(acc.n))
	case Min:
		if acc.n == 0 {
			return relation.Null()
		}
		return acc.min
	default:
		if acc.n == 0 {
			return relation.Null()
		}
		return acc.max
	}
}

// Eval implements Node (the pipeline shim; see pipeline.go).
func (a *AggregateNode) Eval(ctx *Context) (*relation.Relation, error) {
	return evalPipelined(ctx, a)
}

// evalMat is the materializing evaluation (see EvalMaterialized).
func (a *AggregateNode) evalMat(ctx *Context) (*relation.Relation, error) {
	in, err := EvalMaterialized(a.child, ctx)
	if err != nil {
		return nil, err
	}
	rows, err := a.aggRows(ctx, in.Rows())
	if err != nil {
		return nil, err
	}
	return output(ctx, a.schema, rows)
}

// aggInputRows drains the child pipeline into bare rows — aggregation
// needs no index or key enforcement on its input, so no intermediate
// relation is built (plain scans share the bound relation's rows).
func (a *AggregateNode) aggInputRows(ctx *Context) ([]relation.Row, error) {
	return drainRows(ctx, a.child)
}

// aggDrain produces the aggregated output rows. When the child yields
// columnar batches (a fused chain, a columnar join, or a set operator
// over either — see columnarYields) and every aggregate input is
// vectorizable, the columnar paths run: the serial stream fold
// (aggStream) when the effective worker count is 1, the partitioned
// ColSet fold (vecagg.go) otherwise. Otherwise (NoColumnar, a
// non-vectorizable expression, or a row-producing child such as a plain
// scan whose rows are shared for free) the partitioned row path runs; it
// stores group representatives as indexes into the drained input, which
// is cheaper than copying cells when input batches are not recycled
// anyway. All paths produce identical output.
func (a *AggregateNode) aggDrain(ctx *Context) ([]relation.Row, error) {
	vecOK := true
	for _, b := range a.bound {
		if b != nil && !expr.CanVec(b) {
			vecOK = false
			break
		}
	}
	if !ctx.NoColumnar && vecOK && columnarYields(a.child, ctx) {
		return a.aggColumnar(ctx)
	}
	notePath("rows")
	inRows, err := a.aggInputRows(ctx)
	if err != nil {
		return nil, err
	}
	return a.aggRows(ctx, inRows)
}

// columnarChain reports whether n is a fused streaming chain whose
// iterator will produce columnar batches under ctx: a non-plain scan at
// the bottom (plain scans share rows with zero copies — columnarizing
// them would only add work) with every operator above it vectorizable.
func columnarChain(n Node, ctx *Context) bool {
	if ctx.NoColumnar {
		return false
	}
	for {
		switch t := n.(type) {
		case *ScanNode:
			return !t.plain() && (t.bound == nil || expr.CanVec(t.bound))
		case *SelectNode:
			if !expr.CanVec(t.bound) {
				return false
			}
			n = t.child
		case *ProjectNode:
			if t.explicit && t.schema.HasKey() {
				return false // asserted-key check runs on rows
			}
			for _, e := range t.bound {
				if !expr.CanVec(e) {
					return false
				}
			}
			n = t.child
		case *AliasNode:
			n = t.child
		case *HashFilterNode:
			n = t.child
		default:
			return false
		}
	}
}

// aggStream folds the child pipeline's batches into groups as they
// arrive. Row batches fold row at a time (scalar aggregate inputs);
// columnar batches evaluate every aggregate input expression vectorized
// over the batch and fold from the dense result vectors, reconstructing
// only the group-by cells. Group identity is canonical-encoding equality
// (relation.Value.KeyEqual), exactly like aggRows, and groups emit in
// first-occurrence order, so the output is identical to the partitioned
// row path's.
func (a *AggregateNode) aggStream(ctx *Context) ([]relation.Row, error) {
	it := iterNode(a.child)
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	defer it.Close()

	na := len(a.aggs)
	gW := len(a.gIdx)
	gIdent := make([]int, gW)
	for i := range gIdent {
		gIdent[i] = i
	}
	vecOK := true
	for _, b := range a.bound {
		if b != nil && !expr.CanVec(b) {
			vecOK = false
			break
		}
	}

	t := newHashIdx(64, nil)
	var (
		repVals []relation.Value // flat group-by cells, group-major
		accs    []accumulator
		// probeRow/probeIdx describe the current input row's group cells
		// for the hash probe: the input row itself (row batches, no copy)
		// or a scratch row of reconstructed cells (columnar batches).
		probeRow relation.Row
		probeIdx []int
		groupRow relation.Row // scratch for the columnar path
		inVecs   []*relation.ColVec
	)
	if gW > 0 {
		groupRow = make(relation.Row, gW)
	}
	sameKey := func(head int32) bool {
		rep := relation.Row(repVals[int(head)*gW : int(head)*gW+gW])
		return probeRow.KeyEqualCols(probeIdx, rep, gIdent)
	}
	findOrAdd := func() int32 {
		h := keyHash(probeRow, probeIdx)
		g := t.first(h, sameKey)
		if g < 0 {
			g = int32(len(accs) / max1(na))
			if na == 0 {
				g = int32(len(repVals) / max1(gW))
			}
			for _, c := range probeIdx {
				repVals = append(repVals, probeRow[c])
			}
			for k := 0; k < na; k++ {
				accs = append(accs, accumulator{})
			}
			t.addGrow(h, g, sameKey)
		}
		return g
	}

	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		ctx.RowsTouched += int64(b.Len())
		if vecOK && b.Columnar() {
			if inVecs == nil {
				inVecs = make([]*relation.ColVec, na)
				for ai := range a.bound {
					if a.bound[ai] != nil {
						inVecs[ai] = relation.GetVec()
					}
				}
			}
			for ai, e := range a.bound {
				if e != nil {
					expr.EvalVec(e, b, b.Sel(), inVecs[ai])
				}
			}
			probeRow, probeIdx = groupRow, gIdent
			n := b.Len()
			for k := 0; k < n; k++ {
				i := b.PhysRow(k)
				for gi, c := range a.gIdx {
					groupRow[gi] = b.ValueAt(i, c)
				}
				base := int(findOrAdd()) * na
				for ai := range a.aggs {
					var v relation.Value
					if inVecs[ai] != nil {
						v = inVecs[ai].Value(k)
					}
					accs[base+ai].add(a.aggs[ai].Func, v)
				}
			}
			b.Release()
			continue
		}
		probeIdx = a.gIdx
		for _, row := range b.Rows() {
			probeRow = row
			base := int(findOrAdd()) * na
			for ai := range a.aggs {
				var v relation.Value
				if a.bound[ai] != nil {
					v = a.bound[ai].Eval(row)
				}
				accs[base+ai].add(a.aggs[ai].Func, v)
			}
		}
		b.ReleaseUnlessOwned()
	}
	for _, v := range inVecs {
		if v != nil {
			relation.PutVec(v)
		}
	}

	groups := len(accs) / max1(na)
	if na == 0 {
		groups = len(repVals) / max1(gW)
	}
	rows := make([]relation.Row, 0, groups+1)
	for g := 0; g < groups; g++ {
		out := make(relation.Row, gW+na)
		copy(out, repVals[g*gW:(g+1)*gW])
		base := g * na
		for i, spec := range a.aggs {
			out[gW+i] = accs[base+i].result(spec.Func)
		}
		rows = append(rows, out)
	}
	// A grand aggregate (no group-by) over empty input yields one row of
	// count 0 / NULL aggregates, matching SQL (and aggRows).
	if len(a.groupBy) == 0 && len(rows) == 0 {
		out := make(relation.Row, na)
		for i, spec := range a.aggs {
			var acc accumulator
			out[i] = acc.result(spec.Func)
		}
		rows = append(rows, out)
	}
	return rows, nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// aggRows folds inRows into one output row per group.
//
// Grouping hashes the group-by columns to 64 bits and finds each row's
// group in an open-addressed table, verifying candidates against the full
// key encoding (hash collisions share a chain, never a group). With
// ctx.Parallelism > 1 and enough rows, groups are partitioned by key hash
// across workers — a group's rows all land on one worker, so accumulators
// need no locks — and the partitions' outputs are merged back into
// first-occurrence order, making the parallel result identical to the
// serial one.
func (a *AggregateNode) aggRows(ctx *Context, inRows []relation.Row) ([]relation.Row, error) {
	ctx.RowsTouched += int64(len(inRows))
	n := len(inRows)
	na := len(a.aggs)

	w := ctx.workers(n)
	hashes := rowHashes(inRows, a.gIdx, false, w)

	// Per-partition group state: reps[g] is the first input row of group
	// g (its group-by values and its merge-order rank), accs is the flat
	// accumulator matrix (group-major).
	reps := make([][]int32, w)
	accs := make([][]accumulator, w)
	runWorkers(w, func(p int) {
		t := newHashIdx(64, nil)
		var rp []int32
		var ac []accumulator
		var row relation.Row
		sameKey := func(head int32) bool {
			return inRows[rp[head]].KeyEqualCols(a.gIdx, row, a.gIdx)
		}
		pw := uint64(w)
		for i := 0; i < n; i++ {
			h := hashes[i]
			if w > 1 && h%pw != uint64(p) {
				continue
			}
			row = inRows[i]
			g := t.first(h, sameKey)
			if g < 0 {
				g = int32(len(rp))
				rp = append(rp, int32(i))
				for k := 0; k < na; k++ {
					ac = append(ac, accumulator{})
				}
				t.addGrow(h, g, sameKey)
			}
			base := int(g) * na
			for ai := range a.aggs {
				var v relation.Value
				if a.bound[ai] != nil {
					v = a.bound[ai].Eval(row)
				}
				ac[base+ai].add(a.aggs[ai].Func, v)
			}
		}
		reps[p], accs[p] = rp, ac
	})

	// Merge partitions in first-occurrence order so the output matches
	// serial evaluation row for row.
	type gref struct {
		part  int
		group int32
		first int32
	}
	var all []gref
	for p := range reps {
		for g, first := range reps[p] {
			all = append(all, gref{part: p, group: int32(g), first: first})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].first < all[j].first })

	rows := make([]relation.Row, 0, len(all)+1)
	for _, gr := range all {
		rep := inRows[reps[gr.part][gr.group]]
		out := make(relation.Row, len(a.gIdx)+na)
		for i, gi := range a.gIdx {
			out[i] = rep[gi]
		}
		base := int(gr.group) * na
		for i, spec := range a.aggs {
			out[len(a.gIdx)+i] = accs[gr.part][base+i].result(spec.Func)
		}
		rows = append(rows, out)
	}
	// A grand aggregate (no group-by) over empty input yields one row of
	// count 0 / NULL aggregates, matching SQL.
	if len(a.groupBy) == 0 && len(rows) == 0 {
		out := make(relation.Row, na)
		for i, spec := range a.aggs {
			var acc accumulator
			out[i] = acc.result(spec.Func)
		}
		rows = append(rows, out)
	}
	return rows, nil
}

// Children implements Node.
func (a *AggregateNode) Children() []Node { return []Node{a.child} }

// WithChildren implements Node.
func (a *AggregateNode) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("algebra: Aggregate takes one child")
	}
	return MustGroupBy(ch[0], a.groupBy, a.aggs...)
}

// String implements Node.
func (a *AggregateNode) String() string {
	parts := make([]string, len(a.aggs))
	for i, s := range a.aggs {
		if s.Input != nil {
			parts[i] = fmt.Sprintf("%s(%s) as %s", s.Func, s.Input, s.As)
		} else {
			parts[i] = fmt.Sprintf("%s(1) as %s", s.Func, s.As)
		}
	}
	return fmt.Sprintf("GroupBy(%s | %s)", strings.Join(a.groupBy, ","), strings.Join(parts, ", "))
}
