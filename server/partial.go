package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/server/api"
)

// wirePartial converts engine partial statistics to the wire form.
func wirePartial(p svc.Partial) api.PartialEstimate {
	return api.PartialEstimate{
		Agg:    p.Agg.String(),
		Method: p.Method,
		Ratio:  p.Ratio,
		K:      p.K, Stale: p.Stale, Sum: p.Sum, SumSq: p.SumSq,
		CntK: p.CntK, CntStale: p.CntStale, CntSum: p.CntSum, CntSumSq: p.CntSumSq,
	}
}

// partialFromWire converts a shard's wire statistics back into the
// engine form the merge algebra operates on.
func partialFromWire(w api.PartialEstimate) (svc.Partial, error) {
	var agg svc.Aggregate
	switch w.Agg {
	case "sum":
		agg = svc.SumAgg
	case "count":
		agg = svc.CountAgg
	case "avg":
		agg = svc.AvgAgg
	default:
		return svc.Partial{}, fmt.Errorf("server: partial has non-mergeable aggregate %q", w.Agg)
	}
	return svc.Partial{
		Agg:    agg,
		Method: w.Method,
		Ratio:  w.Ratio,
		K:      w.K, Stale: w.Stale, Sum: w.Sum, SumSq: w.SumSq,
		CntK: w.CntK, CntStale: w.CntStale, CntSum: w.CntSum, CntSumSq: w.CntSumSq,
	}, nil
}

// executeViewPartial answers the shard-side half of scatter-gather: the
// mergeable sufficient statistics of a view aggregate instead of a
// finished estimate. Group keys go on the wire hex-encoded — the binary
// composite-key encoding is the merge identity and must survive JSON
// (which would mangle non-UTF-8 bytes).
func (s *Server) executeViewPartial(sv *svc.StaleView, sql string, grouped bool) (*api.QueryResponse, int, error) {
	resp := &api.QueryResponse{View: sv.View().Name()}
	if grouped {
		pa, err := sv.QueryGroupsPartialSQL(sql)
		if err != nil {
			return nil, partialStatus(err), err
		}
		resp.Kind = "group_partials"
		for key, p := range pa.Groups.Groups {
			resp.GroupPartials = append(resp.GroupPartials, api.GroupPartial{
				Key:             fmt.Sprintf("%x", key),
				Label:           pa.Groups.Labels[key],
				PartialEstimate: wirePartial(p),
			})
		}
		sort.Slice(resp.GroupPartials, func(i, j int) bool {
			return resp.GroupPartials[i].Key < resp.GroupPartials[j].Key
		})
		resp.AsOfEpoch = pa.AsOfEpoch
	} else {
		pa, err := sv.QueryPartialSQL(sql)
		if err != nil {
			return nil, partialStatus(err), err
		}
		resp.Kind = "partial"
		w := wirePartial(pa.Partial)
		resp.Partial = &w
		resp.AsOfEpoch = pa.AsOfEpoch
	}
	s.stampStaleness(resp)
	return resp, 0, nil
}

// partialStatus maps partial-path errors: a non-mergeable aggregate is
// the caller's problem (a router should not have scattered it), bad SQL
// likewise, anything else is the server's.
func partialStatus(err error) int {
	if errors.Is(err, svc.ErrNotMergeable) {
		return http.StatusBadRequest
	}
	return planOrRuntimeStatus(err)
}
