package wal

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

// Property: recover(log) ≡ in-memory staging. For a random interleaving
// of stage batches and maintain+apply boundaries over the paper's Fig. 4a
// join view (both maintenance strategies), crash-recovering the log into
// a freshly regenerated dataset must reproduce the live catalog exactly —
// applied counter, base tables, and pending ΔR/∇R bit for bit — and the
// recovered base must re-materialize a view equal to the incrementally
// maintained one.

func fig4aDB(t testing.TB, seed int64) (*tpcd.Generator, *db.Database) {
	t.Helper()
	g := tpcd.NewGenerator(tpcd.Config{
		Orders: 120, MaxLines: 3, Customers: 30, Suppliers: 8, Parts: 25,
		Z: 2, Days: 90, Seed: seed,
	})
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return g, d
}

// stageFig4aBatch stages a random mix of TPC-D refresh-stream inserts and
// updates plus deletes the stream does not produce.
func stageFig4aBatch(t testing.TB, g *tpcd.Generator, d *db.Database, rng *rand.Rand) {
	t.Helper()
	frac := 0.02 + 0.1*rng.Float64()
	if err := g.StageUpdates(d, frac); err != nil {
		t.Fatal(err)
	}
	lt := d.Table(tpcd.Lineitem)
	ot := d.Table(tpcd.Orders)
	for i := 0; i < rng.Intn(1+lt.Len()/30); i++ {
		row := lt.Rows().Row(rng.Intn(lt.Len()))
		_ = lt.StageDelete(row[0], row[1]) // dup delete within the batch: fine
	}
	for i := 0; i < rng.Intn(3); i++ {
		row := ot.Rows().Row(rng.Intn(ot.Len()))
		_ = ot.StageDelete(row[0])
	}
}

func walPropTrial(t *testing.T, seed int64, kind view.StrategyKind) {
	t.Helper()
	fs := NewMemFS()
	opt := Options{SyncInterval: 200 * time.Microsecond, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	g, d := fig4aDB(t, seed)
	if _, err := l.Recover(d); err != nil {
		t.Fatal(err)
	}
	l.Attach(d)

	v, err := view.Materialize(d, tpcd.JoinView())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainerWithStrategy(v, kind)
	if err != nil {
		t.Fatal(err)
	}
	maintainApply := func() {
		pin := d.Pin()
		maintained, _, err := m.MaintainAt(pin, v.Data())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ApplyVersion(pin, nil); err != nil {
			t.Fatal(err)
		}
		if err := v.Replace(maintained); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(seed*104729 + int64(kind)))
	for step := 0; step < 5; step++ {
		stageFig4aBatch(t, g, d, rng)
		if step == 2 || rng.Intn(2) == 0 {
			maintainApply()
		}
	}
	stageFig4aBatch(t, g, d, rng) // pending tail past the last boundary

	want := fingerprint(d)
	l.Kill()

	opt.FS = fs.CrashClone()
	l2, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	_, d2 := fig4aDB(t, seed) // deterministic regeneration, as svcd reloads
	if _, err := l2.Recover(d2); err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(d2); got != want {
		t.Fatalf("seed %d, %v: recovered catalog ≠ live catalog\nlive:\n%.2000s\nrecovered:\n%.2000s", seed, kind, want, got)
	}

	// View-level check: the recovered base tables re-materialize to the
	// same relation the live run maintained incrementally (float sums may
	// associate differently, hence the tolerance).
	fresh, err := view.Materialize(d2, v.Definition())
	if err != nil {
		t.Fatal(err)
	}
	live, truth := v.Data(), fresh.Data()
	if live.Len() != truth.Len() {
		t.Fatalf("seed %d, %v: recovered view has %d rows, live %d", seed, kind, truth.Len(), live.Len())
	}
	keyIdx := truth.Schema().Key()
	for _, wrow := range truth.Rows() {
		grow, ok := live.GetByEncodedKey(wrow.KeyOf(keyIdx))
		if !ok || !propRowsAlmostEq(grow, wrow) {
			t.Fatalf("seed %d, %v: recovered view row %v, live %v", seed, kind, wrow, grow)
		}
	}
}

func propRowsAlmostEq(a, b relation.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() == relation.KindFloat || b[i].Kind() == relation.KindFloat {
			x, y := a[i].AsFloat(), b[i].AsFloat()
			diff, scale := math.Abs(x-y), math.Max(math.Abs(x), math.Abs(y))
			if diff > 1e-9*math.Max(scale, 1) {
				return false
			}
			continue
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestRecoverEquivalentToStagingFig4a(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		walPropTrial(t, seed, view.ChangeTable)
		walPropTrial(t, seed, view.Recompute)
	}
}
