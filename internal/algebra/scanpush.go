package algebra

import "sort"

// PushDownScans rewrites a plan so that selections and projections sitting
// directly above base scans are fused into the scans themselves — the
// complement of the hash push-down in pushdown.go. A fused scan filters
// rows and prunes columns in its single pipelined pass, so downstream
// operators never see rows that a predicate would drop or columns nothing
// references.
//
// Rules (applied bottom-up until fixpoint over each path):
//
//   - σ(Scan)  → Scan[σ]         (predicates AND-merge into the scan)
//   - Π(Scan)  → Π(Scan[cols])   (the scan emits only the columns the
//     projection's expressions reference plus the scan's primary key;
//     the projection stays, re-bound against the narrowed schema, so
//     the plan's output is unchanged. The fused predicate needs no
//     column reservation: the scan evaluates it against the full-width
//     source row BEFORE pruning — an invariant both ScanNode.evalMat
//     and the pipelined scanIter maintain)
//
// The rewrite never changes a node's output schema or its row stream: the
// rewritten plan is row-for-row identical to the original under both the
// batched pipeline and the materialized evaluation, which the table-driven
// tests in scanpush_test.go check.
//
// Plans handed to strategy derivation (DeltaPlan, PushDownHash,
// substituteSampleScan) should stay unfused — those rewriters pattern-match
// plain operator shapes. Callers therefore apply PushDownScans to the
// final evaluation form only (view.Materialize, Maintainer.MaintainAt,
// Cleaner's cleaning expression).
func PushDownScans(n Node) Node {
	children := n.Children()
	if len(children) > 0 {
		newCh := make([]Node, len(children))
		changed := false
		for i, c := range children {
			newCh[i] = PushDownScans(c)
			if newCh[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(newCh)
		}
	}
	switch t := n.(type) {
	case *SelectNode:
		scan, ok := t.child.(*ScanNode)
		if !ok || scan.cols != nil {
			// Fusing a predicate under an already-pruned scan would need
			// the predicate re-expressed over pruned columns; keep it
			// simple — prune only ever happens above (Π over σ-scan).
			return n
		}
		fused, err := scan.withPred(t.pred)
		if err != nil {
			return n
		}
		return fused
	case *ProjectNode:
		scan, ok := t.child.(*ScanNode)
		if !ok || scan.cols != nil {
			return n
		}
		cols, ok := scanNeededCols(scan, t.outs)
		if !ok || len(cols) == len(scan.out.Cols()) {
			return n
		}
		pruned := scan.withCols(cols)
		var np Node
		var err error
		if t.explicit {
			np, err = ProjectKeyed(pruned, t.outs, t.schema.KeyNames()...)
		} else {
			np, err = Project(pruned, t.outs)
		}
		if err != nil || !np.Schema().Equal(t.schema) {
			return n
		}
		return np
	default:
		return n
	}
}

// scanNeededCols computes which columns of the scan's output the
// projection actually needs: everything its expressions reference plus the
// scan's primary-key columns (kept so the narrowed schema stays keyed and
// the projection's Definition 2 key derivation is unchanged). The fused
// predicate's columns are deliberately NOT included — the scan evaluates
// the predicate on the full source row before pruning. Returns false when
// a referenced column cannot be resolved.
func scanNeededCols(scan *ScanNode, outs []Output) ([]int, bool) {
	sch := scan.out
	need := map[int]bool{}
	var names []string
	for _, o := range outs {
		names = o.E.Columns(names[:0])
		for _, name := range names {
			i := sch.ColIndex(name)
			if i < 0 {
				return nil, false
			}
			need[i] = true
		}
	}
	for _, k := range sch.KeyNames() {
		need[sch.ColIndex(k)] = true
	}
	cols := make([]int, 0, len(need))
	for i := range need {
		cols = append(cols, i)
	}
	sort.Ints(cols)
	// Translate output-schema indexes to declared-schema indexes (they
	// coincide while the scan is unpruned, which the caller guarantees).
	return cols, true
}
