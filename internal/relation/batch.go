package relation

import "sync"

// BatchCap is the fixed row capacity of a pipeline batch. 1024 rows keeps a
// batch's row headers (and one operator's worth of output values) well
// inside the L2 cache while amortizing per-batch overhead over enough rows
// that the iterator protocol is invisible in profiles.
const BatchCap = 1024

// Batch is the unit of data flow in the batched execution pipeline
// (internal/algebra): a fixed-capacity chunk of rows pulled from operator
// to operator, in one of two layouts.
//
// The row layout carries []Row headers: producers either append headers
// that alias storage owned elsewhere (a scan aliasing its relation's
// rows) or build fresh rows inside the batch's value arena (a projection
// computing new rows). The Owned flag records which: rows of an owned
// batch live in the arena and die with it, rows of an unowned batch
// outlive the batch.
//
// The columnar layout (BeginColumnar) carries typed column vectors
// (ColVec) plus an optional selection vector: a filter shrinks the
// selection instead of moving any cell, and vectorized operators read
// and write primitive payload slices directly. Rows() remains the
// compatibility view — on a columnar batch it materializes the selected
// rows into the arena once, so row-oriented cold paths keep working
// unchanged; hot consumers use the columnar accessors (Vec, Sel,
// ValueAt, CopyRows) and Release the batch so its vectors recycle.
//
// Ownership protocol (see DESIGN.md "Batch pipeline execution" and
// "Columnar batch layer"):
//
//   - the consumer that pulled a batch owns it and must either pass it
//     downstream, Release it, or drop it;
//   - Release recycles the batch (its arena and vectors) through a pool —
//     callers must not retain any Row of an *owned* batch, nor any
//     vector payload slice, past Release;
//   - a consumer retaining row headers from an owned batch simply skips
//     Release (ReleaseUnlessOwned) and lets the GC keep the arena alive;
//   - a consumer retaining columnar cells copies them out (CopyRows) and
//     Releases the batch.
//
// A Batch is not safe for concurrent use; pipelines hand each batch to one
// goroutine at a time.
type Batch struct {
	rows   []Row
	arena  []Value
	owned  bool
	pinned bool

	// Columnar layout. cols[:ncols] are the column vectors, one per output
	// schema column; sel (nil = all) selects the live physical rows;
	// rowsBuilt records that Rows() already materialized the compat view.
	cols      []ColVec
	ncols     int
	sel       []int32
	selBuf    []int32
	columnar  bool
	rowsBuilt bool
}

// batchPool recycles released batches. Steady-state pipelines allocate no
// batches at all: every GetBatch after warm-up reuses a released one,
// including its grown rows, arena, and column-vector capacity.
var batchPool = sync.Pool{New: func() any {
	poolCounters.batchNews.Add(1)
	return new(Batch)
}}

// GetBatch returns an empty batch from the pool.
func GetBatch() *Batch {
	poolCounters.batchGets.Add(1)
	b := batchPool.Get().(*Batch)
	b.owned = false
	b.pinned = false
	b.columnar = false
	b.rowsBuilt = false
	b.sel = nil
	b.ncols = 0
	return b
}

// Release resets the batch and returns it to the pool. The caller must not
// use the batch, any arena-backed row, or any vector payload obtained from
// it afterwards. Releasing a pinned batch is a no-op: an upstream operator
// retained rows from it and the GC, not the pool, reclaims it.
func (b *Batch) Release() {
	if b.pinned {
		return
	}
	b.rows = b.rows[:0]
	b.arena = b.arena[:0]
	b.owned = false
	if b.columnar {
		for i := 0; i < b.ncols; i++ {
			b.cols[i].Reset()
		}
		b.columnar = false
		b.rowsBuilt = false
		b.sel = nil
		b.ncols = 0
	}
	batchPool.Put(b)
}

// Pin marks the batch as un-recyclable: a later Release becomes a no-op.
// An operator that retains row headers from a batch it must also pass
// downstream (the keyed union recording its left input) pins it so the
// downstream consumer's Release cannot recycle the retained rows' arena.
func (b *Batch) Pin() { b.pinned = true }

// ReleaseUnlessOwned releases the batch only when its rows alias external
// storage — the correct call for consumers that retain row headers (a
// drain collecting rows, a set operator recording its left input). Owned
// batches are dropped instead: the retained rows keep the arena alive and
// the GC reclaims it when they go.
func (b *Batch) ReleaseUnlessOwned() {
	if !b.owned {
		b.Release()
	}
}

// Owned reports whether the batch's rows are backed by its own arena.
// Columnar batches become owned when Rows() materializes the compat view.
func (b *Batch) Owned() bool { return b.owned }

// Len reports the number of live rows in the batch: the selected count
// for a columnar batch, the row-header count otherwise.
func (b *Batch) Len() int {
	if b.columnar && !b.rowsBuilt {
		if b.sel != nil {
			return len(b.sel)
		}
		return b.NumPhys()
	}
	return len(b.rows)
}

// Full reports whether the batch reached BatchCap rows.
func (b *Batch) Full() bool {
	if b.columnar {
		return b.NumPhys() >= BatchCap
	}
	return len(b.rows) >= BatchCap
}

// Rows returns the batch's row slice. Callers may reorder or truncate it
// via Truncate (in-place filtering) but must not grow it directly.
//
// On a columnar batch this is the compatibility view: the selected rows
// are materialized into the batch arena once (marking the batch owned)
// and returned. Hot columnar consumers avoid it — they read vectors
// directly or CopyRows and Release — but any row-oriented consumer that
// calls Rows()/ReleaseUnlessOwned keeps working unchanged.
func (b *Batch) Rows() []Row {
	if b.columnar && !b.rowsBuilt {
		n, width := b.Len(), b.ncols
		b.rows = b.rows[:0]
		for k := 0; k < n; k++ {
			i := b.PhysRow(k)
			row := b.Alloc(width)
			for c := 0; c < width; c++ {
				row[c] = b.cols[c].Value(i)
			}
		}
		b.rowsBuilt = true
	}
	return b.rows
}

// Row returns the i-th row.
func (b *Batch) Row(i int) Row { return b.rows[i] }

// Append adds a row header that aliases storage owned elsewhere. It must
// not be mixed with Alloc in the same batch (the batch would be partially
// arena-backed and the Owned flag could not be truthful).
func (b *Batch) Append(r Row) { b.rows = append(b.rows, r) }

// AppendRows appends a slice of row headers (see Append).
func (b *Batch) AppendRows(rows []Row) { b.rows = append(b.rows, rows...) }

// Truncate keeps the first n rows — the tail of an in-place filter pass.
func (b *Batch) Truncate(n int) { b.rows = b.rows[:n] }

// Alloc appends and returns a fresh row of the given width, backed by the
// batch arena, and marks the batch owned. The row's values are
// UNINITIALIZED (possibly stale from a previous pool cycle) — the caller
// must assign every slot.
//
// The arena grows in slabs: when the current slab is full a larger one is
// allocated WITHOUT copying, so rows already handed out keep aliasing the
// old slab (rows are append-only once returned). Slab growth doubles up to
// one BatchCap-rows slab, which the pool then reuses across batches; small
// batches that are retained rather than released only ever pay for a small
// slab.
func (b *Batch) Alloc(width int) Row {
	b.owned = true
	if len(b.arena)+width > cap(b.arena) {
		need := 2 * cap(b.arena)
		if min := 16 * width; need < min {
			need = min
		}
		if max := BatchCap * width; need > max {
			need = max
		}
		if need < width {
			need = width
		}
		b.arena = make([]Value, 0, need)
	}
	start := len(b.arena)
	b.arena = b.arena[: start+width : cap(b.arena)]
	row := Row(b.arena[start : start+width : start+width])
	b.rows = append(b.rows, row)
	return row
}

// ------------------------------------------------------- columnar layout

// BeginColumnar switches the batch to the columnar layout with width
// empty column vectors, reusing vector capacity from previous pool
// cycles. The producer appends cells to Vec(i) column by column (all
// vectors must end up the same length) and optionally installs a
// selection vector.
func (b *Batch) BeginColumnar(width int) {
	b.columnar = true
	b.rowsBuilt = false
	b.sel = nil
	b.rows = b.rows[:0]
	b.arena = b.arena[:0]
	b.owned = false
	if cap(b.cols) < width {
		b.cols = append(b.cols[:cap(b.cols)], make([]ColVec, width-cap(b.cols))...)
	}
	b.cols = b.cols[:width]
	b.ncols = width
	for i := 0; i < width; i++ {
		b.cols[i].Reset()
	}
}

// Columnar reports whether the batch is in the columnar layout.
func (b *Batch) Columnar() bool { return b.columnar && !b.rowsBuilt }

// Width reports the number of column vectors of a columnar batch.
func (b *Batch) Width() int { return b.ncols }

// Vec returns the col-th column vector (implements expr.VecSource).
func (b *Batch) Vec(col int) *ColVec { return &b.cols[col] }

// NumPhys reports the physical (pre-selection) row count of a columnar
// batch (implements expr.VecSource).
func (b *Batch) NumPhys() int {
	if b.ncols == 0 {
		return 0
	}
	return b.cols[0].Len()
}

// Sel returns the selection vector: the physical row indexes that are
// live, in order. nil means every physical row is selected.
func (b *Batch) Sel() []int32 { return b.sel }

// SetSel installs a selection vector. Filters shrink the selection (in
// place, via EnsureSel + compaction) instead of moving cells; the slice
// is typically the batch's own selection buffer.
func (b *Batch) SetSel(sel []int32) { b.sel = sel }

// EnsureSel materializes the identity selection when none is installed,
// so a filter can compact it in place, and returns the current selection.
func (b *Batch) EnsureSel() []int32 {
	if b.sel == nil {
		b.sel = b.SelIdentity(b.NumPhys())
	}
	return b.sel
}

// SelIdentity returns the batch-owned selection buffer filled with the
// identity selection [0, n). The buffer is reused across pool cycles.
func (b *Batch) SelIdentity(n int) []int32 {
	if cap(b.selBuf) < n {
		b.selBuf = make([]int32, n)
	}
	b.selBuf = b.selBuf[:n]
	for i := range b.selBuf {
		b.selBuf[i] = int32(i)
	}
	return b.selBuf
}

// PhysRow maps the k-th selected row to its physical index.
func (b *Batch) PhysRow(k int) int {
	if b.sel != nil {
		return int(b.sel[k])
	}
	return k
}

// ValueAt reconstructs the cell at physical row i, column col.
func (b *Batch) ValueAt(i, col int) Value { return b.cols[col].Value(i) }

// EncodeColsAt appends the canonical encoding of the idx columns of
// physical row i to dst — the columnar form of Row.EncodeCols, producing
// byte-identical keys.
func (b *Batch) EncodeColsAt(i int, idx []int, dst []byte) []byte {
	for _, c := range idx {
		dst = b.cols[c].appendEncoded(i, dst)
	}
	return dst
}

// CopyRows materializes the selected rows of a columnar batch into a
// freshly allocated value slab (one slab per batch, like the row
// pipeline's projection arena) and appends their headers to rows. The
// returned rows are independent of the batch, so the caller can Release
// it and let its vectors recycle.
func (b *Batch) CopyRows(rows []Row) []Row {
	n, width := b.Len(), b.ncols
	if n == 0 {
		return rows
	}
	slab := make([]Value, n*width)
	for k := 0; k < n; k++ {
		i := b.PhysRow(k)
		row := Row(slab[k*width : (k+1)*width : (k+1)*width])
		for c := 0; c < width; c++ {
			row[c] = b.cols[c].Value(i)
		}
		rows = append(rows, row)
	}
	return rows
}
