package tpcd

import (
	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/view"
)

// Revenue is the TPC-D revenue expression l_extendedprice·(1−l_discount).
func Revenue() expr.Expr {
	return expr.Mul(expr.Col("l_extendedprice"),
		expr.Sub(expr.IntLit(1), expr.Col("l_discount")))
}

// lineitemOrders joins lineitem with orders on the foreign key, merging
// the order key columns (output key: l_orderkey, l_linenumber).
func lineitemOrders() algebra.Node {
	return algebra.MustJoin(
		algebra.Scan(Lineitem, LineitemSchema()),
		algebra.Scan(Orders, OrdersSchema()),
		algebra.JoinSpec{
			Type:  algebra.Inner,
			On:    []algebra.EqPair{{Left: "l_orderkey", Right: "o_orderkey"}},
			Merge: true,
		},
	)
}

// JoinView is the Section 7.2 materialized view: the foreign-key join of
// lineitem and orders (an SPJ view — the 12 TPCD-style queries are
// group-by aggregates over it).
func JoinView() view.Definition {
	return view.Definition{Name: "joinView", Plan: lineitemOrders()}
}

// withCustomer extends lineitem⋈orders with customer (FK o_custkey).
func withCustomer(n algebra.Node) algebra.Node {
	return algebra.MustJoin(n,
		algebra.Scan(Customer, CustomerSchema()),
		algebra.JoinSpec{
			Type: algebra.Inner,
			On:   []algebra.EqPair{{Left: "o_custkey", Right: "c_custkey"}},
		},
	)
}

// withSupplier extends a lineitem-bearing tree with supplier.
func withSupplier(n algebra.Node) algebra.Node {
	return algebra.MustJoin(n,
		algebra.Scan(Supplier, SupplierSchema()),
		algebra.JoinSpec{
			Type: algebra.Inner,
			On:   []algebra.EqPair{{Left: "l_suppkey", Right: "s_suppkey"}},
		},
	)
}

// custNation joins customers to nations (c_nationkey = n_nationkey).
func custNation(n algebra.Node) algebra.Node {
	return algebra.MustJoin(n,
		algebra.Scan(Nation, NationSchema()),
		algebra.JoinSpec{
			Type: algebra.Inner,
			On:   []algebra.EqPair{{Left: "c_nationkey", Right: "n_nationkey"}},
		},
	)
}

// ComplexViews returns the paper's ten "complex" views (Section 7.3,
// Figure 7), TPCD-query-shaped aggregates over the schema. V21 (nested
// aggregate) and V22 (string transformation of a key) deliberately defeat
// hash push-down, as in the paper.
func ComplexViews() []view.Definition {
	var defs []view.Definition

	// V3: revenue per order over a date window (Q3's true output grain:
	// GROUP BY l_orderkey with order attributes functionally dependent).
	// Keyed on the fact table, so a lineitem outlier index is eligible
	// for push-up (Definition 5 base case) — the paper runs its outlier
	// experiments on this view.
	defs = append(defs, view.Definition{Name: "V3", Plan: algebra.MustGroupBy(
		algebra.MustSelect(lineitemOrders(),
			expr.Lt(expr.Col("o_orderdate"), expr.IntLit(270))),
		[]string{"l_orderkey"},
		algebra.CountAs("cnt"),
		algebra.SumAs(Revenue(), "revenue"),
	)})

	// V4: order-priority counts over a date window (Q4 shape).
	defs = append(defs, view.Definition{Name: "V4", Plan: algebra.MustGroupBy(
		algebra.MustSelect(lineitemOrders(),
			expr.Lt(expr.Col("o_orderdate"), expr.IntLit(270))),
		[]string{"o_orderpriority"},
		algebra.CountAs("cnt"),
		algebra.SumAs(expr.Col("l_quantity"), "totalQty"),
	)})

	// V5: revenue per nation and order date (Q5 shape: local supplier
	// volume per nation per period; date granularity keeps the view's
	// cardinality in sampling range — the paper excluded tiny views).
	defs = append(defs, view.Definition{Name: "V5", Plan: algebra.MustGroupBy(
		custNation(withCustomer(lineitemOrders())),
		[]string{"n_nationkey", "o_orderdate"},
		algebra.CountAs("cnt"),
		algebra.SumAs(Revenue(), "revenue"),
	)})

	// V9: profit per supplier nation and order date (Q9 shape: profit by
	// nation by period).
	defs = append(defs, view.Definition{Name: "V9", Plan: algebra.MustGroupBy(
		withSupplier(lineitemOrders()),
		[]string{"s_nationkey", "o_orderdate"},
		algebra.CountAs("cnt"),
		algebra.SumAs(Revenue(), "profit"),
	)})

	// V10: revenue per customer (Q10 shape: returned-item reporting).
	defs = append(defs, view.Definition{Name: "V10", Plan: algebra.MustGroupBy(
		algebra.MustSelect(withCustomer(lineitemOrders()),
			expr.Eq(expr.Col("l_returnflag"), expr.IntLit(1))),
		[]string{"c_custkey"},
		algebra.CountAs("cnt"),
		algebra.SumAs(Revenue(), "revenue"),
	)})

	// V13: orders per customer (the inner block of Q13's distribution).
	defs = append(defs, view.Definition{Name: "V13", Plan: algebra.MustGroupBy(
		algebra.Scan(Orders, OrdersSchema()),
		[]string{"o_custkey"},
		algebra.CountAs("orderCount"),
		algebra.SumAs(expr.Col("o_totalprice"), "totalSpend"),
	)})

	// V15i: supplier revenue over a ship-date window (Q15's inner view —
	// hence the paper's name "V15i").
	defs = append(defs, view.Definition{Name: "V15i", Plan: algebra.MustGroupBy(
		algebra.MustSelect(algebra.Scan(Lineitem, LineitemSchema()),
			expr.And(
				expr.Ge(expr.Col("l_shipdate"), expr.IntLit(90)),
				expr.Lt(expr.Col("l_shipdate"), expr.IntLit(180)),
			)),
		[]string{"l_suppkey"},
		algebra.CountAs("cnt"),
		algebra.SumAs(Revenue(), "totalRevenue"),
	)})

	// V18: per-order quantity totals (Q18 shape: large-volume customers).
	defs = append(defs, view.Definition{Name: "V18", Plan: algebra.MustGroupBy(
		algebra.Scan(Lineitem, LineitemSchema()),
		[]string{"l_orderkey"},
		algebra.CountAs("cnt"),
		algebra.SumAs(expr.Col("l_quantity"), "totalQty"),
	)})

	// V21: distribution of per-supplier order counts — a nested
	// aggregate. The inner γ's output feeds an outer γ keyed on the
	// *count*, which blocks hash push-down below the outer aggregate
	// (provably: the paper's Theorem 1 discussion reduces it to
	// SUBSET-SUM) and forces the recompute maintenance strategy.
	inner21 := algebra.MustGroupBy(
		withSupplier(lineitemOrders()),
		[]string{"s_suppkey"},
		algebra.CountAs("supplierOrders"),
	)
	defs = append(defs, view.Definition{Name: "V21", Plan: algebra.MustGroupBy(
		inner21, []string{"supplierOrders"},
		algebra.CountAs("cnt"),
	)})

	// V22: account balances grouped by phone prefix — the group key is a
	// string transformation (substr) of a customer attribute, which is
	// not a pass-through column, so η cannot push below the projection.
	prefix22 := algebra.MustProjectKeyed(
		withCustomer(lineitemOrders()),
		[]algebra.Output{
			algebra.OutCol("l_orderkey"),
			algebra.OutCol("l_linenumber"),
			algebra.Out("cntry", expr.Func("substr", expr.Col("c_phone"), expr.IntLit(0), expr.IntLit(2))),
			algebra.Out("acctbal", expr.Col("c_acctbal")),
			algebra.OutCol("o_totalprice"),
		},
		"l_orderkey", "l_linenumber",
	)
	defs = append(defs, view.Definition{Name: "V22", Plan: algebra.MustGroupBy(
		prefix22, []string{"cntry"},
		algebra.CountAs("cnt"),
		algebra.SumAs(expr.Col("acctbal"), "totalBal"),
	)})

	return defs
}

// CubeView is the Section 7.6.1 aggregate view: revenue grouped by
// (c_custkey, n_nationkey, r_regionkey, l_partkey) over the five-way join
// — the base cube whose roll-ups Figures 10–13 evaluate.
func CubeView() view.Definition {
	nationRegion := algebra.MustJoin(
		custNation(withCustomer(lineitemOrders())),
		algebra.Scan(Region, RegionSchema()),
		algebra.JoinSpec{
			Type: algebra.Inner,
			On:   []algebra.EqPair{{Left: "n_regionkey", Right: "r_regionkey"}},
		},
	)
	return view.Definition{Name: "baseCube", Plan: algebra.MustGroupBy(
		nationRegion,
		[]string{"c_custkey", "n_nationkey", "r_regionkey", "l_partkey"},
		algebra.CountAs("cnt"),
		algebra.SumAs(Revenue(), "revenue"),
	)}
}
