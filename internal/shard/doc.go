// Package shard defines the deterministic placement contract of a
// sharded svcd fleet: base tables, views, cleaned samples, and the WAL
// partition by a seeded hash of the view key (reusing the
// internal/hashing hash64 substrate), so every view key lives on
// exactly one shard and per-shard SVC estimates compose into one
// statistically-correct global answer (see internal/estimator.Partial).
//
// Placement is pure data plus pure functions — no placement state is
// stored or gossiped. Any process holding the same Placement (shard
// daemons filtering their dataset load, the stateless router fanning
// out ingest ops and pruning single-key queries) derives the same
// owner for the same key, across processes and restarts, because the
// hash seed is a package constant.
//
// Canonical hashing: HashValues (engine-side relation.Value tuples) and
// HashJSON (wire-side JSON tuples) produce identical hashes for values
// that coerce to each other — an integral JSON number routes to the
// same shard as the Int column value it becomes. Everything here is
// immutable after construction and safe for concurrent use.
//
// Paper correspondence: sharding is an engineering extension beyond the
// paper (Stale View Cleaning, VLDB 2015); its statistical soundness
// rests on the Section 4–5 estimators being sums of per-row terms over
// a Bernoulli sample keyed by view key, which hash-disjoint partitions
// preserve exactly.
package shard
