package svcql

// The execution half of the dialect: compile a bare SELECT over base
// tables and run it through the batched pipeline (package algebra). The
// planner half (plan.go) only *builds* trees — PlanView's output is handed
// to view.Materialize, PlanQuery's to the estimators; ExecAt is what makes
// a parsed statement actually produce rows, and is what the svcd network
// daemon serves for table-backed SELECTs.

import (
	"fmt"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
)

// PlanSelect compiles a bare SELECT over base tables into an algebra plan,
// resolving table schemas through the given source. The returned plan is
// in strategy-derivation form (unfused); callers that only evaluate it
// should apply algebra.PushDownScans first, as ExecAt does.
func PlanSelect(schemas SchemaSource, src string) (algebra.Node, error) {
	cv, sel, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if cv != nil {
		return nil, fmt.Errorf("svcql: expected a SELECT, got CREATE VIEW (use PlanView)")
	}
	return planSelect(schemas, sel)
}

// ExecAt parses a bare SELECT over base tables, plans it against the
// pinned catalog version, and executes the plan through the batched
// pipeline, returning the materialized result.
//
// Everything — schema resolution, predicate/projection fusing, and the
// pipelined evaluation — happens against the one immutable version, so the
// result is a consistent snapshot answer no matter what writers and
// maintenance cycles do concurrently. ExecAt is safe for concurrent use.
func ExecAt(v *db.Version, src string) (*relation.Relation, error) {
	plan, err := PlanSelect(VersionSchemas(v), src)
	if err != nil {
		return nil, err
	}
	return algebra.PushDownScans(plan).Eval(v.Context())
}

// Exec is ExecAt against the database's current published version.
func Exec(d *db.Database, src string) (*relation.Relation, error) {
	return ExecAt(d.Pin(), src)
}

// ExecAtLimit is ExecAt with a materialization cap: at most limit rows
// are retained (cloned out of their pipeline batches); the rest of the
// stream is drained and counted without being kept, so a request that
// only wants the first page never materializes the full result. It
// returns the capped relation and the total number of rows the query
// emitted. limit <= 0 means no cap.
//
// Pipeline breakers (joins, aggregates) still do their full work — the
// cap bounds the output materialization, not the query's intrinsic cost.
func ExecAtLimit(v *db.Version, src string, limit int) (*relation.Relation, int, error) {
	cv, sel, err := Parse(src)
	if err != nil {
		return nil, 0, err
	}
	if cv != nil {
		return nil, 0, fmt.Errorf("svcql: expected a SELECT, got CREATE VIEW (use PlanView)")
	}
	return ExecSelectLimit(v, sel, limit)
}

// ExecSelectLimit is ExecAtLimit for an already-parsed SELECT — callers
// that parsed once for routing (the svcd server) need not parse again.
func ExecSelectLimit(v *db.Version, sel *SelectStmt, limit int) (*relation.Relation, int, error) {
	plan, err := planSelect(VersionSchemas(v), sel)
	if err != nil {
		return nil, 0, err
	}
	if limit <= 0 {
		rel, err := algebra.PushDownScans(plan).Eval(v.Context())
		if err != nil {
			return nil, 0, err
		}
		return rel, rel.Len(), nil
	}
	fused := algebra.PushDownScans(plan)
	it := algebra.NewIterator(fused)
	if err := it.Open(v.Context()); err != nil {
		return nil, 0, err
	}
	defer it.Close()
	out := relation.New(fused.Schema())
	total := 0
	for {
		b, err := it.Next()
		if err != nil {
			return nil, 0, err
		}
		if b == nil {
			return out, total, nil
		}
		total += b.Len()
		if b.Columnar() {
			// Columnar drain: rows under the cap are reconstructed
			// cell-by-cell from the column vectors (already independent of
			// the pooled batch, so no extra clone); rows past the cap are
			// only counted.
			width := b.Width()
			for k, n := 0, b.Len(); k < n && out.Len() < limit; k++ {
				phys := b.PhysRow(k)
				row := make(relation.Row, width)
				for c := 0; c < width; c++ {
					row[c] = b.ValueAt(phys, c)
				}
				if _, err := out.Upsert(row); err != nil {
					b.Release()
					return nil, 0, err
				}
			}
			b.Release()
			continue
		}
		for _, row := range b.Rows() {
			if out.Len() >= limit {
				break
			}
			// Clone: retained rows must outlive the pooled batch.
			if _, err := out.Upsert(row.Clone()); err != nil {
				b.Release()
				return nil, 0, err
			}
		}
		b.Release()
	}
}
