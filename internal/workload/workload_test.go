package workload

import (
	"strings"
	"testing"

	"github.com/sampleclean/svc/internal/view"
)

// goldenDigests pins byte-identical generation per scenario. A change here
// is a deliberate generator change: recompute with Digest and update, and
// expect every frozen fixture under fixtures/ to need regeneration too
// (they carry the digest of their minimized spec).
var goldenDigests = map[string]string{
	"uniform-drip":      "1b42202b6c2f8eac335c72e1f5080e8d450f0bcf87fe3612c53332146f3bcf02",
	"light-drip":        "5acfe7f85811a1e16bf25568db291d38fe8c3b05f6f64f43eb496cefd751b040",
	"zipf-hot-keys":     "babd2c6959ba76950d9bc4473833711ed26ede480446220b8a565d0f1273bb22",
	"burst-churn":       "ee8d4f1272cb45690539f41591bb038bad011509b46bbb8dc1382835f061659c",
	"correlated-pairs":  "58eb30056d48699a8e7965031201deff21a4270738fb54216ec9e4bbcb8da1fa",
	"wide-groups":       "a7574635b3ed8f6e9bc5fd27717bcaad474e0a1668879f57e36c3d217f81bff2",
	"narrow-groups":     "beb7367b1fd58c3dbf856a5580038710e06cd39be211336f88982a04d1761f74",
	"heavy-tail":        "4a3cd1b703deef0f16d8ed181e734220193a8424f0a5e19c0b4cd377da79f311",
	"shifting-mix":      "d9a9cb0bc05065c0d55c24020382b99c6510242b97c9866d2f86e9e09665e326",
	"adversarial-blend": "09ec57e45cd955df9d5629b57571670a03ca17f4328010a756ca55febfa297f1",
}

// TestScenarioDigestsGolden asserts every standard scenario generates
// byte-identically run over run: the digest covers every base row and every
// staged delta of every round.
func TestScenarioDigestsGolden(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) != len(goldenDigests) {
		t.Fatalf("scenario count %d != golden count %d — update goldenDigests", len(scenarios), len(goldenDigests))
	}
	for _, spec := range scenarios {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := goldenDigests[spec.Name]
			if !ok {
				t.Fatalf("no golden digest for scenario %q — add one", spec.Name)
			}
			got, err := Digest(spec)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("digest drifted:\n got  %s\n want %s", got, want)
			}
		})
	}
}

// TestDigestStableAcrossRuns generates the same spec twice from scratch and
// once more with a fresh Generator instance staged round by round —
// all three must agree.
func TestDigestStableAcrossRuns(t *testing.T) {
	spec, ok := ScenarioByName("burst-churn")
	if !ok {
		t.Fatal("burst-churn scenario missing")
	}
	a, err := Digest(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Digest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same spec digested differently across runs: %s vs %s", a, b)
	}
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < spec.Rounds; r++ {
		if err := g.StageRound(r); err != nil {
			t.Fatal(err)
		}
	}
	if c := DigestDatabase(g.DB()); c != a {
		t.Fatalf("manual staging digested differently: %s vs %s", c, a)
	}
}

// TestDigestIndependentOfEngineConfig runs a full generate → maintain →
// fold cycle under every engine config and digests the resulting database.
// Generation is a pure function of the spec, and applying staged deltas is
// deterministic, so columnar mode, parallelism, and maintenance strategy
// must not leak into the stored rows.
func TestDigestIndependentOfEngineConfig(t *testing.T) {
	spec, ok := ScenarioByName("uniform-drip")
	if !ok {
		t.Fatal("uniform-drip scenario missing")
	}
	var want string
	var wantLabel string
	for _, cfg := range Configs() {
		g, err := NewGenerator(spec)
		if err != nil {
			t.Fatal(err)
		}
		d := g.DB()
		d.SetParallelism(cfg.Parallel)
		d.SetColumnar(cfg.Columnar)
		v, err := view.Materialize(d, spec.Definition())
		if err != nil {
			t.Fatal(err)
		}
		m, err := view.NewMaintainerWithStrategy(v, cfg.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < spec.Rounds; r++ {
			if err := g.StageRound(r); err != nil {
				t.Fatal(err)
			}
			pin := d.Pin()
			maintained, _, err := m.MaintainAt(pin, v.Data())
			if err != nil {
				t.Fatal(err)
			}
			if err := d.ApplyVersion(pin, nil); err != nil {
				t.Fatal(err)
			}
			if err := v.Replace(maintained); err != nil {
				t.Fatal(err)
			}
		}
		got := DigestDatabase(d)
		if want == "" {
			want, wantLabel = got, cfg.Label()
			continue
		}
		if got != want {
			t.Errorf("config %s digested %s, config %s digested %s — engine config leaked into generation",
				cfg.Label(), got, wantLabel, want)
		}
	}
}

// TestScenarioNamesAndSeedsUnique guards the fixture/CI keying contract:
// scenario names and seeds are identifiers.
func TestScenarioNamesAndSeedsUnique(t *testing.T) {
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for _, s := range Scenarios() {
		if names[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		if seeds[s.Seed] {
			t.Errorf("duplicate scenario seed %d (%s)", s.Seed, s.Name)
		}
		names[s.Name] = true
		seeds[s.Seed] = true
		if strings.ContainsAny(s.Name, " /\\") {
			t.Errorf("scenario name %q not filename-safe", s.Name)
		}
		if _, ok := ScenarioByName(s.Name); !ok {
			t.Errorf("ScenarioByName(%q) missed", s.Name)
		}
	}
	if len(names) < 8 {
		t.Fatalf("matrix needs ≥8 scenarios, have %d", len(names))
	}
}
