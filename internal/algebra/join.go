package algebra

import (
	"fmt"
	"strings"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// JoinType selects the join variant. The paper's ⋈ notation covers inner
// and the extended outer joins; the change-table maintenance strategy uses
// the full outer join (Example 1, step 2).
type JoinType uint8

// Join variants.
const (
	Inner JoinType = iota
	LeftOuter
	RightOuter
	FullOuter
)

// String returns the SQL-ish name of the join type.
func (t JoinType) String() string {
	return [...]string{"inner", "left", "right", "full"}[t]
}

// EqPair equates a left column with a right column in the join condition.
type EqPair struct {
	Left, Right string
}

// On is shorthand for a single equality pair.
func On(left, right string) []EqPair { return []EqPair{{Left: left, Right: right}} }

// JoinNode evaluates L ⋈ R as a hash join on column equalities, optionally
// with an extra residual predicate over the combined row.
//
// When Merge is set the right-hand join columns are dropped from the output
// and the left-named join columns carry coalesce(left, right) — SQL's
// USING/NATURAL column merging. Merging is what lets a full outer join on
// the view key keep a well-defined primary key: Definition 2 composes the
// keys of both sides, and with merged columns the two key copies collapse
// into one.
//
// Key derivation (Definition 2): the key of the result is the tuple of the
// primary keys of both inputs; with Merge, right key columns that were
// merged map to their left names, and duplicates collapse. If either side
// is keyless, the result is keyless.
type JoinNode struct {
	left, right Node
	typ         JoinType
	on          []EqPair
	merge       bool
	extra       expr.Expr

	schema     relation.Schema
	lJoin      []int // join column indexes in left schema
	rJoin      []int // join column indexes in right schema
	rKeep      []int // right column indexes kept in output
	mergedPos  []int // output positions of merged columns (parallel to on)
	boundExtra expr.Expr
}

// JoinSpec configures a join; zero value = inner join on On pairs.
type JoinSpec struct {
	Type  JoinType
	On    []EqPair
	Merge bool
	// Extra is a residual predicate over the combined row, part of the
	// join condition (ON semantics: for outer joins, rows failing Extra
	// produce outer tuples rather than being dropped).
	Extra expr.Expr
}

// Join builds a join node. On may be empty only for inner joins (cross
// join).
func Join(left, right Node, spec JoinSpec) (*JoinNode, error) {
	if len(spec.On) == 0 && spec.Type != Inner {
		return nil, fmt.Errorf("algebra: outer join requires equality columns")
	}
	ls, rs := left.Schema(), right.Schema()
	j := &JoinNode{left: left, right: right, typ: spec.Type, on: spec.On, merge: spec.Merge, extra: spec.Extra}

	rMerged := map[int]bool{}
	for _, p := range spec.On {
		li, ri := ls.ColIndex(p.Left), rs.ColIndex(p.Right)
		if li < 0 {
			return nil, fmt.Errorf("algebra: join: left column %q not found in [%s]", p.Left, ls)
		}
		if ri < 0 {
			return nil, fmt.Errorf("algebra: join: right column %q not found in [%s]", p.Right, rs)
		}
		j.lJoin = append(j.lJoin, li)
		j.rJoin = append(j.rJoin, ri)
		if spec.Merge {
			rMerged[ri] = true
		}
	}

	// Output columns: all left columns, then right columns minus merged.
	var cols []relation.Column
	cols = append(cols, ls.Cols()...)
	for i, c := range rs.Cols() {
		if rMerged[i] {
			continue
		}
		j.rKeep = append(j.rKeep, i)
		cols = append(cols, c)
	}
	for _, li := range j.lJoin {
		j.mergedPos = append(j.mergedPos, li)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("algebra: join: duplicate output column %q (use Alias to disambiguate)", c.Name)
		}
		seen[c.Name] = true
	}

	// Definition 2 key: tuple of both keys; merged right key columns map
	// to their left names.
	var keyNames []string
	if ls.HasKey() && rs.HasKey() {
		rightToLeft := map[string]string{}
		if spec.Merge {
			for _, p := range spec.On {
				rightToLeft[p.Right] = p.Left
			}
		}
		appendKey := func(n string) {
			for _, k := range keyNames {
				if k == n {
					return
				}
			}
			keyNames = append(keyNames, n)
		}
		for _, k := range ls.KeyNames() {
			appendKey(k)
		}
		for _, k := range rs.KeyNames() {
			if mapped, ok := rightToLeft[k]; ok {
				appendKey(mapped)
			} else {
				appendKey(k)
			}
		}
	}
	j.schema = relation.NewSchema(cols, keyNames...)

	if spec.Extra != nil {
		bound, err := spec.Extra.Bind(j.schema)
		if err != nil {
			return nil, fmt.Errorf("algebra: join extra predicate: %w", err)
		}
		j.boundExtra = bound
	}
	return j, nil
}

// MustJoin is Join, panicking on error.
func MustJoin(left, right Node, spec JoinSpec) *JoinNode {
	j, err := Join(left, right, spec)
	if err != nil {
		panic(err)
	}
	return j
}

// Spec returns the join's configuration.
func (j *JoinNode) Spec() JoinSpec {
	return JoinSpec{Type: j.typ, On: append([]EqPair(nil), j.on...), Merge: j.merge, Extra: j.extra}
}

// Schema implements Node.
func (j *JoinNode) Schema() relation.Schema { return j.schema }

// combine builds an output row from an optional left row and optional right
// row (nil means the outer side is absent).
func (j *JoinNode) combine(l, r relation.Row) relation.Row {
	nl := j.left.Schema().NumCols()
	out := make(relation.Row, nl+len(j.rKeep))
	if l != nil {
		copy(out, l)
	} // else left part stays NULL (zero Value)
	for i, ri := range j.rKeep {
		if r != nil {
			out[nl+i] = r[ri]
		}
	}
	if j.merge && r != nil {
		// Merged columns: coalesce(left, right); with l == nil this fills
		// the left-named column from the right side.
		for k, pos := range j.mergedPos {
			if out[pos].IsNull() {
				out[pos] = r[j.rJoin[k]]
			}
		}
	}
	return out
}

// rowHasNullKey reports whether any of row's idx columns is NULL (SQL:
// NULL never matches a join).
func rowHasNullKey(row relation.Row, idx []int) bool {
	for _, i := range idx {
		if row[i].IsNull() {
			return true
		}
	}
	return false
}

// Eval implements Node (the pipeline shim; see pipeline.go).
func (j *JoinNode) Eval(ctx *Context) (*relation.Relation, error) {
	return evalPipelined(ctx, j)
}

// evalMat is the materializing evaluation (see EvalMaterialized).
func (j *JoinNode) evalMat(ctx *Context) (*relation.Relation, error) {
	rows, err := j.run(ctx, EvalMaterialized)
	if err != nil {
		return nil, err
	}
	return output(ctx, j.schema, rows)
}

// inputResolver materializes one join input; the pipelined and the
// materialized evaluations differ only in how they resolve inputs.
type inputResolver func(n Node, ctx *Context) (*relation.Relation, error)

// run evaluates the join and returns the joined rows in deterministic
// order. Execution picks among three strategies:
//
//   - empty-side short-circuit: an inner join resolves its right child
//     first and skips the left child entirely when the right is empty
//     (and vice versa) — critical for delta-propagation plans, where most
//     tables have no staged updates;
//   - index probe: when one side carries an index on its join columns
//     (the primary key, or a secondary index registered via
//     db.EnsureIndex), the other side drives and probes — the indexed
//     side is never scanned, matching how an indexed database executes
//     delta joins;
//   - hash join: otherwise, build on the right and probe with the left.
func (j *JoinNode) run(ctx *Context, resolve inputResolver) ([]relation.Row, error) {
	// Inner joins: resolve the right child first to enable the
	// empty-side short-circuit.
	var lRel, rRel *relation.Relation
	var err error
	if j.typ == Inner {
		if rRel, err = resolve(j.right, ctx); err != nil {
			return nil, err
		}
		if rRel.Len() == 0 {
			return nil, nil
		}
		if lRel, err = resolve(j.left, ctx); err != nil {
			return nil, err
		}
		if lRel.Len() == 0 {
			return nil, nil
		}
	} else {
		if lRel, err = resolve(j.left, ctx); err != nil {
			return nil, err
		}
		if rRel, err = resolve(j.right, ctx); err != nil {
			return nil, err
		}
	}

	var rows []relation.Row

	if len(j.on) == 0 {
		// Cross join with optional residual predicate.
		ctx.RowsTouched += int64(lRel.Len()) + int64(rRel.Len())
		for _, l := range lRel.Rows() {
			for _, r := range rRel.Rows() {
				row := j.combine(l, r)
				if j.boundExtra == nil || j.boundExtra.Eval(row).AsBool() {
					rows = append(rows, row)
				}
			}
		}
		return rows, nil
	}

	// Index probe: inner joins with an index on either side avoid
	// scanning that side entirely. When both sides are indexed, the
	// smaller side drives (the usual case in delta plans: a handful of
	// delta rows probing a large indexed base table).
	if j.typ == Inner {
		rIdx, rOk := rRel.LookupIndex(j.rJoin)
		lIdx, lOk := lRel.LookupIndex(j.lJoin)
		driveLeft := rOk && (!lOk || lRel.Len() <= rRel.Len())
		driveRight := lOk && !driveLeft
		switch {
		case driveLeft:
			ctx.RowsTouched += int64(lRel.Len())
			return j.probeIndexed(ctx, lRel.Rows(), j.lJoin, rRel, rIdx, true), nil
		case driveRight:
			ctx.RowsTouched += int64(rRel.Len())
			return j.probeIndexed(ctx, rRel.Rows(), j.rJoin, lRel, lIdx, false), nil
		}
	}

	// Hash join: build on the right, probe with the left. The build table
	// hashes the join key to 64 bits (no per-row key strings); probes
	// verify candidates against the full key encoding, so hash collisions
	// cannot fabricate matches. Both phases run partitioned/chunked in
	// parallel when the context allows it.
	ctx.RowsTouched += int64(lRel.Len()) + int64(rRel.Len())
	build := buildRowTable(rRel.Rows(), j.rJoin, true, ctx.workers(rRel.Len()))

	lRows := lRel.Rows()
	needRM := j.typ == RightOuter || j.typ == FullOuter
	pw := ctx.workers(len(lRows))
	var rMatched []bool
	if pw == 1 {
		if needRM {
			rMatched = make([]bool, rRel.Len())
		}
		rows = j.probeChunk(build, lRows, 0, len(lRows), rMatched)
	} else {
		outs := make([][]relation.Row, pw)
		marks := make([][]bool, pw)
		runWorkers(pw, func(p int) {
			lo, hi := chunkRange(p, pw, len(lRows))
			var rm []bool
			if needRM {
				rm = make([]bool, rRel.Len())
			}
			outs[p] = j.probeChunk(build, lRows, lo, hi, rm)
			marks[p] = rm
		})
		total := 0
		for _, o := range outs {
			total += len(o)
		}
		rows = make([]relation.Row, 0, total)
		for _, o := range outs {
			rows = append(rows, o...)
		}
		if needRM {
			rMatched = make([]bool, rRel.Len())
			for _, rm := range marks {
				for i, m := range rm {
					if m {
						rMatched[i] = true
					}
				}
			}
		}
	}
	if needRM {
		for i, r := range rRel.Rows() {
			if !rMatched[i] {
				rows = append(rows, j.combine(nil, r))
			}
		}
	}
	return rows, nil
}

// probeChunk probes the build table with lRows[lo:hi) and returns the
// joined output rows in probe order. rMatched, when non-nil, records
// which build rows matched (right/full outer bookkeeping); parallel
// callers pass per-worker slices and merge them.
func (j *JoinNode) probeChunk(build *rowTable, lRows []relation.Row, lo, hi int, rMatched []bool) []relation.Row {
	var out []relation.Row
	leftOuter := j.typ == LeftOuter || j.typ == FullOuter
	for i := lo; i < hi; i++ {
		l := lRows[i]
		matched := false
		h := joinHash(l, j.lJoin)
		for _, id := range build.lookup(h, l, j.lJoin) {
			r := build.rows[id]
			row := j.combine(l, r)
			if j.boundExtra != nil && !j.boundExtra.Eval(row).AsBool() {
				continue
			}
			out = append(out, row)
			matched = true
			if rMatched != nil {
				rMatched[id] = true
			}
		}
		if !matched && leftOuter {
			out = append(out, j.combine(l, nil))
		}
	}
	return out
}

// probeIndexed drives an inner join from probeRows against an indexed
// relation: each probe encodes its join key into a reused buffer and hits
// the index without allocating. leftDrives says whether the probing side
// is the join's left input. Chunks run in parallel when the context
// allows; output order equals the serial probe order.
func (j *JoinNode) probeIndexed(ctx *Context, probeRows []relation.Row, probeIdx []int, indexed *relation.Relation, ix relation.Index, leftDrives bool) []relation.Row {
	w := ctx.workers(len(probeRows))
	outs := make([][]relation.Row, w)
	emitted := make([]int64, w)
	runWorkers(w, func(p int) {
		lo, hi := chunkRange(p, w, len(probeRows))
		var kb relation.KeyBuf
		var hits []int
		var out []relation.Row
		for i := lo; i < hi; i++ {
			probe := probeRows[i]
			if rowHasNullKey(probe, probeIdx) {
				continue
			}
			hits = ix.ProbeBytes(kb.Row(probe, probeIdx), hits[:0])
			for _, pos := range hits {
				l, r := probe, indexed.Row(pos)
				if !leftDrives {
					l, r = r, l
				}
				row := j.combine(l, r)
				if j.boundExtra != nil && !j.boundExtra.Eval(row).AsBool() {
					continue
				}
				out = append(out, row)
				emitted[p]++
			}
		}
		outs[p] = out
	})
	var rows []relation.Row
	for p := range outs {
		rows = append(rows, outs[p]...)
		ctx.RowsTouched += emitted[p]
	}
	return rows
}

// Children implements Node.
func (j *JoinNode) Children() []Node { return []Node{j.left, j.right} }

// WithChildren implements Node.
func (j *JoinNode) WithChildren(ch []Node) Node {
	if len(ch) != 2 {
		panic("algebra: Join takes two children")
	}
	return MustJoin(ch[0], ch[1], j.Spec())
}

// String implements Node.
func (j *JoinNode) String() string {
	conds := make([]string, len(j.on))
	for i, p := range j.on {
		conds[i] = p.Left + "=" + p.Right
	}
	s := fmt.Sprintf("Join[%s](%s)", j.typ, strings.Join(conds, ","))
	if j.merge {
		s += " merge"
	}
	if j.extra != nil {
		s += " extra:" + j.extra.String()
	}
	return s
}
