package hashing

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	for _, h := range []Hasher{FNV{}, SHA1{}, Linear{}} {
		a := h.Unit([]byte("hello"))
		b := h.Unit([]byte("hello"))
		if a != b {
			t.Errorf("%s not deterministic", h.Name())
		}
		if a < 0 || a >= 1 {
			t.Errorf("%s out of range: %v", h.Name(), a)
		}
	}
}

// uniformity measures the fraction of sequential integer keys falling
// below m.
func sampledFraction(h Hasher, m float64, n int) float64 {
	var buf [8]byte
	hits := 0
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		if h.Unit(buf[:]) < m {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// TestUniformityOnSequentialKeys: FNV (with finalizer) and SHA1 must be
// within a few standard errors of the target ratio on sequential keys —
// the structured-key regime every primary-key sample hits in practice.
func TestUniformityOnSequentialKeys(t *testing.T) {
	const n = 20000
	for _, h := range []Hasher{FNV{}, SHA1{}} {
		for _, m := range []float64{0.05, 0.1, 0.25, 0.5} {
			got := sampledFraction(h, m, n)
			se := math.Sqrt(m * (1 - m) / n)
			if math.Abs(got-m) > 5*se {
				t.Errorf("%s at m=%v: fraction %v (|Δ|=%.4f > 5se=%.4f)",
					h.Name(), m, got, math.Abs(got-m), 5*se)
			}
		}
	}
}

// TestLinearHasherIsBiased documents why the Linear hasher exists only for
// the ablation: on at least one common configuration it deviates from the
// target noticeably more than the well-mixed hashers do.
func TestLinearHasherIsBiased(t *testing.T) {
	const n = 20000
	worstLinear, worstFNV := 0.0, 0.0
	for _, m := range []float64{0.05, 0.1, 0.25, 0.5} {
		if d := math.Abs(sampledFraction(Linear{}, m, n) - m); d > worstLinear {
			worstLinear = d
		}
		if d := math.Abs(sampledFraction(FNV{}, m, n) - m); d > worstFNV {
			worstFNV = d
		}
	}
	if worstLinear <= worstFNV {
		t.Skipf("linear hash happened to look uniform here (worst %v vs fnv %v)", worstLinear, worstFNV)
	}
	t.Logf("worst absolute deviation: linear=%v fnv=%v", worstLinear, worstFNV)
}

// Property: Unit depends only on the key bytes (no hidden state).
func TestUnitPureQuick(t *testing.T) {
	f := func(key []byte) bool {
		for _, h := range []Hasher{FNV{}, SHA1{}, Linear{}, Salted{Salt: 7}, Salted{Salt: 7, Base: SHA1{}}} {
			u := h.Unit(key)
			if u != h.Unit(append([]byte(nil), key...)) {
				return false
			}
			if u < 0 || u >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaltedDiffersAcrossSalts(t *testing.T) {
	key := []byte("i42\x00")
	a := Salted{Salt: 1}.Unit(key)
	b := Salted{Salt: 2}.Unit(key)
	if a == b {
		t.Error("different salts should give different units (w.h.p.)")
	}
	if (Salted{Salt: 1}).Unit(key) != a {
		t.Error("salted hashing must stay deterministic per salt")
	}
	if got := (Salted{Salt: 1}).Name(); got != "fnv64a+salt" {
		t.Errorf("Name = %q", got)
	}
}

func BenchmarkFNVUnit(b *testing.B) {
	key := []byte("i12345\x00i99\x00")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FNV{}.Unit(key)
	}
}

func BenchmarkSHA1Unit(b *testing.B) {
	key := []byte("i12345\x00i99\x00")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SHA1{}.Unit(key)
	}
}
