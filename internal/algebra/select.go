package algebra

import (
	"fmt"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// SelectNode filters rows by a predicate (σ_φ). Per Definition 2, the
// primary key of the result is the primary key of the input.
type SelectNode struct {
	child Node
	pred  expr.Expr // unbound form, kept for String/WithChildren
	bound expr.Expr
}

// Select returns σ_pred(child). The predicate is bound against the child's
// schema at construction so that unknown columns fail fast.
func Select(child Node, pred expr.Expr) (*SelectNode, error) {
	bound, err := pred.Bind(child.Schema())
	if err != nil {
		return nil, fmt.Errorf("algebra: select: %w", err)
	}
	return &SelectNode{child: child, pred: pred, bound: bound}, nil
}

// MustSelect is Select, panicking on error; for statically known plans.
func MustSelect(child Node, pred expr.Expr) *SelectNode {
	s, err := Select(child, pred)
	if err != nil {
		panic(err)
	}
	return s
}

// Pred returns the (unbound) selection predicate.
func (s *SelectNode) Pred() expr.Expr { return s.pred }

// Schema implements Node.
func (s *SelectNode) Schema() relation.Schema { return s.child.Schema() }

// Eval implements Node (the pipeline shim; see pipeline.go).
func (s *SelectNode) Eval(ctx *Context) (*relation.Relation, error) {
	return evalPipelined(ctx, s)
}

// evalMat is the materializing evaluation (see EvalMaterialized).
func (s *SelectNode) evalMat(ctx *Context) (*relation.Relation, error) {
	in, err := EvalMaterialized(s.child, ctx)
	if err != nil {
		return nil, err
	}
	ctx.RowsTouched += int64(in.Len())
	var rows []relation.Row
	for _, row := range in.Rows() {
		if s.bound.Eval(row).AsBool() {
			rows = append(rows, row)
		}
	}
	return output(ctx, s.Schema(), rows)
}

// Children implements Node.
func (s *SelectNode) Children() []Node { return []Node{s.child} }

// WithChildren implements Node.
func (s *SelectNode) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("algebra: Select takes one child")
	}
	return MustSelect(ch[0], s.pred)
}

// String implements Node.
func (s *SelectNode) String() string { return fmt.Sprintf("Select(%s)", s.pred) }
