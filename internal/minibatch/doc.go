// Package minibatch simulates the paper's Section 7.6.2 distributed
// deployment: synchronous mini-batch view maintenance on an immutable-RDD
// cluster (Apache Spark 1.1.0 in the paper), where
//
//   - larger batches amortize per-batch overhead (Figure 14a),
//   - a concurrent SVC thread contends with IVM, hurting small batches
//     most (Figure 14b),
//   - at a fixed ingest throughput there is an optimal SVC sampling ratio
//     balancing sampling error against sample staleness (Figure 15), and
//   - SVC soaks up the idle CPU windows created by synchronous shuffle
//     barriers (Figure 16).
//
// The simulator is a deliberate, documented substitution for a Spark
// cluster (see DESIGN.md): it models batch time as
//
//	time(B) = overhead + B/(rate·workers)·(1+straggler) + shuffles·barrier
//
// and runs a discrete-time error/utilization trace on top. It exposes the
// same trade-offs the paper measures without requiring a cluster; absolute
// numbers are not comparable, shapes are.
//
// Concurrency contract: the simulator is single-threaded by design (it
// *models* concurrency rather than using it); a Sim is not safe for
// concurrent use.
package minibatch
