package algebra

import (
	"fmt"
	"strings"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// ScanNode reads a named relation from the evaluation context. It is the
// leaf of every expression tree; base tables, delta relations (ΔR, ∇R) and
// the stale view itself are all bound into the context under conventional
// names by the db and view layers.
//
// A scan may carry a fused selection predicate and a fused column
// projection, installed by the PushDownScans rewriter: the pipelined scan
// then skips non-matching rows and emits only the needed columns in its
// single pass, so no wider row is ever materialized.
type ScanNode struct {
	name   string
	schema relation.Schema // declared schema of the binding (full width)
	out    relation.Schema // output schema after column pruning (== schema when cols is nil)
	pred   expr.Expr       // fused selection over the full row; nil = none
	bound  expr.Expr       // pred bound against schema
	cols   []int           // fused projection: kept column indexes into schema; nil = all
}

// Scan returns a leaf that reads the named relation, declaring its schema.
// The declared schema (including primary key) is checked against the bound
// relation at evaluation time.
func Scan(name string, schema relation.Schema) *ScanNode {
	return &ScanNode{name: name, schema: schema, out: schema}
}

// Name returns the context binding this scan reads.
func (s *ScanNode) Name() string { return s.name }

// Pred returns the fused selection predicate (nil when none).
func (s *ScanNode) Pred() expr.Expr { return s.pred }

// PrunedCols returns the fused projection's kept column indexes into the
// declared schema, or nil when the scan emits all columns.
func (s *ScanNode) PrunedCols() []int { return append([]int(nil), s.cols...) }

// plain reports whether the scan has no fused predicate or projection —
// the case where evaluation can share the bound relation outright.
func (s *ScanNode) plain() bool { return s.pred == nil && s.cols == nil }

// withPred returns a copy of the scan with pred fused in (ANDed with any
// existing fused predicate). The predicate is bound against the declared
// (full) schema, so it may reference columns a later fused projection
// drops.
func (s *ScanNode) withPred(pred expr.Expr) (*ScanNode, error) {
	if s.pred != nil {
		pred = expr.And(s.pred, pred)
	}
	bound, err := pred.Bind(s.schema)
	if err != nil {
		return nil, fmt.Errorf("algebra: scan %q predicate: %w", s.name, err)
	}
	return &ScanNode{name: s.name, schema: s.schema, out: s.out, pred: pred, bound: bound, cols: s.cols}, nil
}

// withCols returns a copy of the scan emitting only the given columns of
// the declared schema (in the given order). Key columns of the declared
// schema must all be kept for the output to stay keyed; the caller
// (PushDownScans) guarantees that.
func (s *ScanNode) withCols(cols []int) *ScanNode {
	kept := make([]relation.Column, len(cols))
	keep := make(map[string]bool, len(cols))
	for i, c := range cols {
		kept[i] = s.schema.Col(c)
		keep[kept[i].Name] = true
	}
	var keyNames []string
	for _, k := range s.schema.KeyNames() {
		if !keep[k] {
			keyNames = nil
			break
		}
		keyNames = append(keyNames, k)
	}
	return &ScanNode{
		name:   s.name,
		schema: s.schema,
		out:    relation.NewSchema(kept, keyNames...),
		pred:   s.pred,
		bound:  s.bound,
		cols:   append([]int(nil), cols...),
	}
}

// Schema implements Node.
func (s *ScanNode) Schema() relation.Schema { return s.out }

// Eval implements Node (the pipeline shim; see pipeline.go).
func (s *ScanNode) Eval(ctx *Context) (*relation.Relation, error) {
	return evalPipelined(ctx, s)
}

// resolve returns the bound relation after the declared-schema check.
func (s *ScanNode) resolve(ctx *Context) (*relation.Relation, error) {
	rel, err := ctx.Relation(s.name)
	if err != nil {
		return nil, err
	}
	if !rel.Schema().Compatible(s.schema) {
		return nil, fmt.Errorf("algebra: scan %q: bound schema [%s] incompatible with declared [%s]",
			s.name, rel.Schema(), s.schema)
	}
	return rel, nil
}

// needsRebuild reports whether the bound relation must be re-materialized
// under the declared schema before scanning: the declaration asserts a
// key the bound relation does not enforce (Compatible schemas differ only
// in keys). The rebuild surfaces duplicate-declared-key errors identically
// in every evaluation mode, fused or not.
func (s *ScanNode) needsRebuild(rel *relation.Relation) bool {
	return s.schema.HasKey() && !rel.Schema().Equal(s.schema)
}

// rebuildDeclared materializes the bound rows under the declared schema
// (Insert: a duplicate declared key errors), charging the scan.
func (s *ScanNode) rebuildDeclared(ctx *Context, rel *relation.Relation) (*relation.Relation, error) {
	ctx.RowsTouched += int64(rel.Len())
	out := relation.NewSized(s.schema, rel.Len())
	for _, row := range rel.Rows() {
		if err := out.Insert(row); err != nil {
			return nil, fmt.Errorf("algebra: scan %q: %w", s.name, err)
		}
	}
	return out, nil
}

// evalMat is the materializing evaluation (see EvalMaterialized).
func (s *ScanNode) evalMat(ctx *Context) (*relation.Relation, error) {
	rel, err := s.resolve(ctx)
	if err != nil {
		return nil, err
	}
	if s.plain() {
		if rel.Schema().Equal(s.schema) {
			// Operators never mutate their inputs, so the bound relation can
			// be shared without copying. Reads are charged by the consuming
			// operator (an index probe may touch only a few rows).
			return rel, nil
		}
		// The declared key may deliberately differ from the stored one (e.g. a
		// keyless bag view of a keyed table); rebuild under the declared schema.
		return s.rebuildDeclared(ctx, rel)
	}
	// Fused predicate/projection: one filtered, pruned pass. A declared
	// key the bound relation does not enforce is checked first, exactly
	// like the unfused scan's rebuild.
	if s.needsRebuild(rel) {
		var err error
		if rel, err = s.rebuildDeclared(ctx, rel); err != nil {
			return nil, err
		}
	}
	ctx.RowsTouched += int64(rel.Len())
	out := relation.NewSized(s.out, rel.Len())
	for _, row := range rel.Rows() {
		if s.bound != nil && !s.bound.Eval(row).AsBool() {
			continue
		}
		emit := row
		if s.cols != nil {
			emit = make(relation.Row, len(s.cols))
			for i, c := range s.cols {
				emit[i] = row[c]
			}
		}
		if s.out.HasKey() {
			if _, err := out.Upsert(emit); err != nil {
				return nil, fmt.Errorf("algebra: scan %q: %w", s.name, err)
			}
		} else if err := out.Insert(emit); err != nil {
			return nil, fmt.Errorf("algebra: scan %q: %w", s.name, err)
		}
	}
	return out, nil
}

// Children implements Node.
func (s *ScanNode) Children() []Node { return nil }

// WithChildren implements Node.
func (s *ScanNode) WithChildren(ch []Node) Node {
	if len(ch) != 0 {
		panic("algebra: Scan takes no children")
	}
	return s
}

// String implements Node.
func (s *ScanNode) String() string {
	if s.plain() {
		return fmt.Sprintf("Scan(%s)", s.name)
	}
	var parts []string
	if s.pred != nil {
		parts = append(parts, "σ:"+s.pred.String())
	}
	if s.cols != nil {
		names := make([]string, len(s.cols))
		for i, c := range s.cols {
			names[i] = s.schema.Col(c).Name
		}
		parts = append(parts, "Π:"+strings.Join(names, ","))
	}
	return fmt.Sprintf("Scan(%s %s)", s.name, strings.Join(parts, " "))
}
