package wal

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// MemFS is the fault-injection filesystem: an in-memory FS that models
// POSIX durability precisely enough to test crash recovery. Every file
// tracks how many of its bytes have been fsynced, and the directory tracks
// which entry operations (create/rename/remove) have been made durable by
// SyncDir. CrashClone materializes "what the disk would hold if the
// process died right now": only durable entries, each truncated to its
// synced length.
//
// Failpoints: every mutating operation (Create, Write, Sync, Rename,
// Remove, SyncDir) increments an operation counter; FailAt makes the n-th
// operation return an injected error, and OnOp observes each operation
// (before it takes effect) so tests can snapshot the durable state at
// every boundary. MemFS is safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile // live directory view
	durable map[string]*memFile // entries a crash would preserve
	ops     int
	failAt  map[int]error
	onOp    func(n int, op string)
}

type memFile struct {
	data      []byte
	syncedLen int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   make(map[string]*memFile),
		durable: make(map[string]*memFile),
		failAt:  make(map[int]error),
	}
}

// FailAt injects err as the result of the n-th mutating operation
// (1-based). The operation does not take effect.
func (m *MemFS) FailAt(n int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAt[n] = err
}

// OnOp registers an observer called before each mutating operation with
// its 1-based index and a description. The observer runs without the FS
// lock held, so it may call CrashClone to snapshot the durable state as
// of just before the operation.
func (m *MemFS) OnOp(fn func(n int, op string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onOp = fn
}

// Ops reports how many mutating operations have run.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// CrashClone returns a new MemFS holding exactly the state a crash at
// this instant would leave on disk: durable directory entries only, each
// truncated to its fsynced length.
func (m *MemFS) CrashClone() *MemFS { return m.CrashCloneTorn(0) }

// CrashCloneTorn is CrashClone for a less forgiving disk: each durable
// file additionally retains up to extra bytes of its unsynced suffix,
// modeling hardware that persisted part of an in-flight write the process
// never fsynced — the tear can land mid-frame, not just on record
// boundaries. extra ≤ 0 is exactly CrashClone.
func (m *MemFS) CrashCloneTorn(extra int) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for name, f := range m.durable {
		keep := f.syncedLen
		if extra > 0 {
			keep += extra
			if keep > len(f.data) {
				keep = len(f.data)
			}
		}
		data := append([]byte(nil), f.data[:keep]...)
		nf := &memFile{data: data, syncedLen: len(data)}
		c.files[name] = nf
		c.durable[name] = nf
	}
	return c
}

// op counts a mutating operation, runs the observer, and returns any
// injected failure.
func (m *MemFS) op(desc string) error {
	m.mu.Lock()
	m.ops++
	n := m.ops
	err := m.failAt[n]
	hook := m.onOp
	m.mu.Unlock()
	if hook != nil {
		hook(n, desc)
	}
	return err
}

// MkdirAll implements FS. Directories are implicit; this is a no-op.
func (m *MemFS) MkdirAll(dir string) error { return nil }

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	if err := m.op("create " + name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, name: name, f: f, writable: true}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: no such file", name)
	}
	return &memHandle{fs: m, name: name, f: f}, nil
}

// ReadDir implements FS: names of live entries under dir, sorted.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS. The removal becomes durable at the next SyncDir.
func (m *MemFS) Remove(name string) error {
	if err := m.op("remove " + name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: no such file", name)
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS. The rename becomes durable at the next SyncDir.
func (m *MemFS) Rename(oldpath, newpath string) error {
	if err := m.op("rename " + oldpath + " -> " + newpath); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return fmt.Errorf("memfs: rename %s: no such file", oldpath)
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

// SyncDir implements FS: the live entry set under dir becomes the durable
// entry set (file contents stay gated by their own Sync).
func (m *MemFS) SyncDir(dir string) error {
	if err := m.op("syncdir " + dir); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	for name := range m.durable {
		if strings.HasPrefix(name, prefix) {
			if _, live := m.files[name]; !live {
				delete(m.durable, name)
			}
		}
	}
	for name, f := range m.files {
		if strings.HasPrefix(name, prefix) {
			m.durable[name] = f
		}
	}
	return nil
}

type memHandle struct {
	fs       *MemFS
	name     string
	f        *memFile
	pos      int
	writable bool
	closed   bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("memfs: read %s: closed", h.name)
	}
	if h.pos >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	if !h.writable {
		return 0, fmt.Errorf("memfs: write %s: read-only", h.name)
	}
	if err := h.fs.op(fmt.Sprintf("write %s (%dB)", h.name, len(p))); err != nil {
		return 0, err
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("memfs: write %s: closed", h.name)
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	if !h.writable {
		return nil
	}
	if err := h.fs.op("sync " + h.name); err != nil {
		return err
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.syncedLen = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
