// Datacube: the Section 7.6.1 aggregate-view use case — a revenue cube
// over a denormalized sales table, with roll-up queries answered from a
// stale cube plus a cleaned sample.
//
// Run with: go run ./examples/datacube
package main

import (
	"fmt"
	"log"
	"math/rand"

	svc "github.com/sampleclean/svc"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	d := svc.NewDatabase()

	// One wide fact table: sales(orderkey, line, custkey, nationkey,
	// regionkey, partkey, revenue).
	sales := d.MustCreate("sales", svc.NewSchema([]svc.Column{
		svc.Col("orderkey", svc.KindInt),
		svc.Col("line", svc.KindInt),
		svc.Col("custkey", svc.KindInt),
		svc.Col("nationkey", svc.KindInt),
		svc.Col("regionkey", svc.KindInt),
		svc.Col("partkey", svc.KindInt),
		svc.Col("revenue", svc.KindFloat),
	}, "orderkey", "line"))

	const customers, nations, regions, parts = 200, 25, 5, 150
	nationOf := make([]int64, customers)
	for i := range nationOf {
		nationOf[i] = rng.Int63n(nations)
	}
	nextOrder := int64(0)
	addOrders := func(n int, stage bool) {
		for i := 0; i < n; i++ {
			cust := rng.Int63n(customers)
			lines := 1 + rng.Intn(4)
			for l := 0; l < lines; l++ {
				row := svc.Row{
					svc.Int(nextOrder), svc.Int(int64(l)),
					svc.Int(cust), svc.Int(nationOf[cust]), svc.Int(nationOf[cust] % regions),
					svc.Int(rng.Int63n(parts)),
					svc.Float(50 + rng.Float64()*900),
				}
				var err error
				if stage {
					err = sales.StageInsert(row)
				} else {
					err = sales.Insert(row)
				}
				if err != nil {
					log.Fatal(err)
				}
			}
			nextOrder++
		}
	}
	addOrders(8000, false)

	// The base cube: revenue by (custkey, nationkey, regionkey, partkey).
	cube := svc.GroupByAgg(
		svc.Scan("sales", sales.Schema()),
		[]string{"custkey", "nationkey", "regionkey", "partkey"},
		svc.CountAs("cnt"),
		svc.SumAs(svc.ColRef("revenue"), "revenue"),
	)
	sv, err := svc.New(d, svc.ViewDefinition{Name: "cube", Plan: cube},
		svc.WithSamplingRatio(0.10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("base cube:", sv.View().Data().Len(), "cells")

	// A morning of new orders arrives; the cube goes stale.
	addOrders(900, true)

	// Roll-ups over the stale cube, corrected by the cleaned sample.
	rollups := []struct {
		name    string
		groupBy []string
	}{
		{"by region", []string{"regionkey"}},
		{"by nation", []string{"nationkey"}},
		{"by nation×region", []string{"nationkey", "regionkey"}},
	}
	for _, r := range rollups {
		groups, err := sv.QueryGroups(svc.Sum("revenue", nil), r.groupBy...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nroll-up %s (%d groups, estimates):\n", r.name, len(groups.Groups))
		shown := 0
		for k, est := range groups.Groups {
			fmt.Printf("  %-8s ≈ %12.0f  [%12.0f, %12.0f]\n",
				groups.Labels[k], est.Value, est.Lo, est.Hi)
			if shown++; shown == 4 {
				fmt.Println("  ...")
				break
			}
		}
	}

	// Grand total: stale vs estimate vs exact.
	total, err := sv.Query(svc.Sum("revenue", nil))
	if err != nil {
		log.Fatal(err)
	}
	if err := sv.MaintainNow(); err != nil {
		log.Fatal(err)
	}
	exact, _ := sv.ExactQuery(svc.Sum("revenue", nil))
	fmt.Printf("\ngrand total revenue:\n")
	fmt.Printf("  stale:    %14.0f  (%.2f%% off)\n", total.StaleValue, 100*svc.RelativeError(total.StaleValue, exact))
	fmt.Printf("  estimate: %14.0f  (%.2f%% off)\n", total.Value, 100*svc.RelativeError(total.Value, exact))
	fmt.Printf("  exact:    %14.0f\n", exact)
}
