package clean

import (
	"testing"
)

// SetParallelism must win over the pinned context's parallelism in BOTH
// directions: before this was fixed, the override only raised the worker
// count, so a cleaner explicitly set serial still ran parallel under a
// parallel pin.
func TestSetParallelismExplicitWinsBothWays(t *testing.T) {
	d, _, m := buildScenario(t, 7, 40, 400, 60)
	c, err := New(m, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		set    bool
		n      int
		pinned int
		want   int
	}{
		{name: "unset-inherits-serial", set: false, pinned: 0, want: 0},
		{name: "unset-inherits-parallel", set: false, pinned: 4, want: 4},
		{name: "explicit-raises", set: true, n: 8, pinned: 1, want: 8},
		{name: "explicit-serial-wins-under-parallel-pin", set: true, n: 1, pinned: 4, want: 1},
		{name: "explicit-zero-wins-under-parallel-pin", set: true, n: 0, pinned: 4, want: 0},
		{name: "explicit-matches-pin", set: true, n: 4, pinned: 4, want: 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c.parallel, c.parallelSet = 0, false
			if tc.set {
				c.SetParallelism(tc.n)
			}
			if got := c.effectiveParallelism(tc.pinned); got != tc.want {
				t.Errorf("effectiveParallelism(%d) = %d, want %d (set=%v n=%d)",
					tc.pinned, got, tc.want, tc.set, tc.n)
			}
		})
	}

	// End to end: an explicitly serial cleaner under a parallel database
	// produces exactly the same samples as a parallel one (determinism),
	// and both CleanAt calls succeed with the overridden setting.
	d.SetParallelism(4)
	c.SetParallelism(1)
	serial, err := c.Clean(d)
	if err != nil {
		t.Fatal(err)
	}
	c.SetParallelism(4)
	par, err := c.Clean(d)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Fresh.Equal(par.Fresh) {
		t.Fatal("explicit serial and parallel cleanings diverged")
	}
}
