package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/internal/shard"
	"github.com/sampleclean/svc/server/api"
)

// buildFleet starts one single-process reference server plus an n-shard
// fleet (each holding its hash partition of the identical dataset) with a
// router in front. Durations are integer-valued so merged answers must be
// exactly the reference answers. withWAL attaches a durable log to every
// shard so ingest acks carry durable_seq.
func buildFleet(t *testing.T, n, videos, visits int, withWAL bool, rcfg RouterConfig) (*Router, *Server, []*Server) {
	t.Helper()
	pl := shard.Videolog(n)
	build := func(shardID int) *Server { // -1 = unsharded reference
		d := svc.NewDatabase()
		video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
			svc.Col("videoId", svc.KindInt),
			svc.Col("ownerId", svc.KindInt),
			svc.Col("duration", svc.KindInt),
		}, "videoId"))
		for i := 0; i < videos; i++ {
			row := svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 7)), svc.Int(int64(1 + i%900))}
			if shardID < 0 || pl.Owns("Video", row, shardID) {
				video.MustInsert(row)
			}
		}
		logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
			svc.Col("sessionId", svc.KindInt),
			svc.Col("videoId", svc.KindInt),
		}, "sessionId"))
		for i := 0; i < visits; i++ {
			row := svc.Row{svc.Int(int64(i)), svc.Int(int64(i % videos))}
			if shardID < 0 || pl.Owns("Log", row, shardID) {
				logT.MustInsert(row)
			}
		}
		if withWAL && shardID >= 0 {
			if _, _, err := svc.AttachDurableLog(d, t.TempDir(), svc.DurableLogOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		srv := New(d, Config{Addr: "127.0.0.1:0"})
		if _, err := srv.CreateView(`CREATE VIEW visitView AS
SELECT videoId, ownerId, COUNT(1) AS visitCount, SUM(duration) AS totalDuration
FROM Log JOIN Video ON Log.videoId = Video.videoId
GROUP BY videoId, ownerId`); err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		return srv
	}
	ref := build(-1)
	var shards []*Server
	addrs := make([]string, 0, n)
	for id := 0; id < n; id++ {
		s := build(id)
		shards = append(shards, s)
		addrs = append(addrs, s.Addr())
	}
	rcfg.Addr = "127.0.0.1:0"
	rcfg.Shards = addrs
	rcfg.Placement = pl
	rt, err := NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	})
	return rt, ref, shards
}

// TestRouterScatterMergeMatchesSingleProcess: merged fleet answers must
// equal the single-process answers exactly (integral attributes).
func TestRouterScatterMergeMatchesSingleProcess(t *testing.T) {
	rt, ref, _ := buildFleet(t, 3, 30, 600, false, RouterConfig{})
	rc := client.New(rt.Addr())
	sc := client.New(ref.Addr())
	for _, sql := range []string{
		`SELECT SUM(totalDuration) FROM visitView`,
		`SELECT COUNT(1) FROM visitView`,
	} {
		got, err := rc.Query(sql)
		if err != nil {
			t.Fatalf("%s via router: %v", sql, err)
		}
		want, err := sc.Query(sql)
		if err != nil {
			t.Fatalf("%s single: %v", sql, err)
		}
		if got.Estimate == nil || want.Estimate == nil {
			t.Fatalf("%s: missing estimate (router %+v, single %+v)", sql, got, want)
		}
		if got.Estimate.Value != want.Estimate.Value {
			t.Errorf("%s: router %v != single-process %v", sql, got.Estimate.Value, want.Estimate.Value)
		}
		if len(got.Shards) != 3 {
			t.Errorf("%s: want 3 shard stamps, got %+v", sql, got.Shards)
		}
	}

	// GROUP BY merges by group key across shards: ownerId groups span
	// every shard, so each merged group must match the reference.
	gq := `SELECT ownerId, SUM(totalDuration) FROM visitView GROUP BY ownerId`
	got, err := rc.Query(gq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Query(gq)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("groups: router %d != single %d", len(got.Groups), len(want.Groups))
	}
	wantByKey := map[string]float64{}
	for _, g := range want.Groups {
		wantByKey[g.Key] = g.Estimate.Value
	}
	for _, g := range got.Groups {
		if w, ok := wantByKey[g.Key]; !ok || g.Estimate.Value != w {
			t.Errorf("group %q: router %v, single %v (found=%v)", g.Key, g.Estimate.Value, w, ok)
		}
	}
}

// TestRouterPrunedRouting: WHERE videoId = K pins the placement key, so
// the query must reach exactly the owning shard.
func TestRouterPrunedRouting(t *testing.T) {
	rt, ref, _ := buildFleet(t, 3, 30, 600, false, RouterConfig{})
	pl := shard.Videolog(3)
	rc := client.New(rt.Addr())
	sc := client.New(ref.Addr())
	for k := 0; k < 10; k++ {
		sql := fmt.Sprintf(`SELECT SUM(totalDuration) FROM visitView WHERE videoId = %d`, k)
		got, err := rc.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Shards) != 1 {
			t.Fatalf("videoId=%d: want a single shard stamp (pruned), got %+v", k, got.Shards)
		}
		h, err := shard.HashJSON([]any{float64(k)})
		if err != nil {
			t.Fatal(err)
		}
		if want := pl.ShardOf(h); got.Shards[0].Shard != want {
			t.Errorf("videoId=%d routed to shard %d, owner is %d", k, got.Shards[0].Shard, want)
		}
		want, err := sc.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if got.Estimate.Value != want.Estimate.Value {
			t.Errorf("videoId=%d: routed %v != single %v", k, got.Estimate.Value, want.Estimate.Value)
		}
	}
	// An unmergeable aggregate without a pinned key cannot be served.
	if _, err := rc.Query(`SELECT MEDIAN(totalDuration) FROM visitView`); err == nil {
		t.Fatal("MEDIAN scatter should be rejected")
	} else if ae := new(client.APIError); !errors.As(err, &ae) || ae.StatusCode != 501 {
		t.Fatalf("MEDIAN scatter: want 501, got %v", err)
	}
	// ... but routes when the key is pinned. A shard may still 500 when
	// the pinned key missed its sample (tiny fixture) — what matters is
	// that some key routes and none hit the 501 scatter rejection.
	routed := false
	for k := 0; k < 30 && !routed; k++ {
		_, err := rc.Query(fmt.Sprintf(`SELECT MEDIAN(totalDuration) FROM visitView WHERE videoId = %d`, k))
		if err == nil {
			routed = true
		} else if ae := new(client.APIError); errors.As(err, &ae) && ae.StatusCode == 501 {
			t.Fatalf("pinned MEDIAN hit the scatter rejection: %v", err)
		}
	}
	if !routed {
		t.Fatal("no pinned MEDIAN query succeeded on any key")
	}
}

// TestRouterIngestFanout: batches split by placement hash, acks name
// shards, per-shard durable_seq advances monotonically, and unroutable
// deletes are rejected with a clear 400.
func TestRouterIngestFanout(t *testing.T) {
	rt, _, _ := buildFleet(t, 3, 30, 300, true, RouterConfig{})
	pl := shard.Videolog(3)
	rc := client.New(rt.Addr())

	lastSeq := map[int]uint64{}
	nextSession := int64(1_000_000)
	for round := 0; round < 3; round++ {
		var ops []api.IngestOp
		wantPerShard := map[int]int{}
		for v := int64(0); v < 12; v++ {
			nextSession++
			ops = append(ops, client.InsertOp(nextSession, v))
			h, err := shard.HashJSON([]any{float64(v)})
			if err != nil {
				t.Fatal(err)
			}
			wantPerShard[pl.ShardOf(h)]++
		}
		resp, err := rc.Ingest("Log", ops)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Staged != len(ops) {
			t.Fatalf("round %d: staged %d of %d", round, resp.Staged, len(ops))
		}
		if !resp.Durable {
			t.Fatalf("round %d: WAL-backed fleet reported durable=false", round)
		}
		for _, ack := range resp.Shards {
			if ack.Staged != wantPerShard[ack.Shard] {
				t.Errorf("round %d shard %d: staged %d, want %d", round, ack.Shard, ack.Staged, wantPerShard[ack.Shard])
			}
			if !ack.Durable {
				t.Errorf("round %d shard %d: durable=false", round, ack.Shard)
			}
			if ack.DurableSeq <= lastSeq[ack.Shard] {
				t.Errorf("round %d shard %d: durable_seq %d did not advance past %d",
					round, ack.Shard, ack.DurableSeq, lastSeq[ack.Shard])
			}
			lastSeq[ack.Shard] = ack.DurableSeq
		}
	}

	// Log deletes carry only sessionId, which does not determine
	// placement — the router must reject rather than broadcast.
	_, err := rc.Ingest("Log", []api.IngestOp{client.DeleteOp(5)})
	if err == nil {
		t.Fatal("unroutable delete should be rejected")
	}
	if ae := new(client.APIError); !errors.As(err, &ae) || ae.StatusCode != 400 || !strings.Contains(ae.Message, "not routable") {
		t.Fatalf("unroutable delete: want 400 'not routable', got %v", err)
	}
	// Video deletes key on videoId (the placement column) and do route.
	if _, err := rc.Ingest("Video", []api.IngestOp{client.DeleteOp(3)}); err != nil {
		t.Fatalf("routable Video delete: %v", err)
	}
}

// TestRouterShardDownClassification: with Degrade off, a dead shard makes
// scatter queries fail 502 naming the shard, while queries pruned to
// surviving shards keep working.
func TestRouterShardDownClassification(t *testing.T) {
	rt, _, shards := buildFleet(t, 3, 30, 300, false, RouterConfig{})
	pl := shard.Videolog(3)
	rc := client.New(rt.Addr())

	down := 1
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shards[down].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	_, err := rc.Query(`SELECT SUM(totalDuration) FROM visitView`)
	if err == nil {
		t.Fatal("scatter over a dead shard should fail")
	}
	ae := new(client.APIError)
	if !errors.As(err, &ae) || ae.StatusCode != 502 {
		t.Fatalf("want 502, got %v", err)
	}
	if !strings.Contains(ae.Message, fmt.Sprintf("shard %d", down)) {
		t.Fatalf("502 must name the dead shard: %q", ae.Message)
	}

	// Keys owned by surviving shards still answer.
	served := 0
	for k := 0; k < 20 && served < 3; k++ {
		h, _ := shard.HashJSON([]any{float64(k)})
		if pl.ShardOf(h) == down {
			continue
		}
		if _, err := rc.Query(fmt.Sprintf(`SELECT SUM(totalDuration) FROM visitView WHERE videoId = %d`, k)); err != nil {
			t.Fatalf("videoId=%d on a healthy shard failed: %v", k, err)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no keys owned by surviving shards in range")
	}

	// The fleet stats keep serving and report the outage.
	var cs api.ClusterStatsResponse
	if err := getJSON(t, "http://"+rt.Addr()+"/stats", &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Shards != 3 || cs.Healthy != 2 {
		t.Fatalf("stats: want 2/3 healthy, got %d/%d", cs.Healthy, cs.Shards)
	}
	found := false
	for _, ps := range cs.PerShard {
		if ps.Shard == down && ps.Error != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("per-shard stats must carry the dead shard's error: %+v", cs.PerShard)
	}
}

// TestRouterDegrade: with Degrade on, scatter answers come from the
// survivors, extrapolated and marked degraded.
func TestRouterDegrade(t *testing.T) {
	rt, _, shards := buildFleet(t, 3, 30, 600, false, RouterConfig{Degrade: true})
	rc := client.New(rt.Addr())

	// Stage pending deltas across every view key so the sampled keys see
	// corrections and the merged interval has nonzero width.
	var ops []api.IngestOp
	for i := int64(0); i < 200; i++ {
		ops = append(ops, client.InsertOp(2_000_000+i, i%30))
	}
	if _, err := rc.Ingest("Log", ops); err != nil {
		t.Fatal(err)
	}

	healthyResp, err := rc.Query(`SELECT SUM(totalDuration) FROM visitView`)
	if err != nil {
		t.Fatal(err)
	}
	if healthyResp.Degraded {
		t.Fatal("healthy fleet answered degraded")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shards[2].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := rc.Query(`SELECT SUM(totalDuration) FROM visitView`)
	if err != nil {
		t.Fatalf("degrade mode should still answer: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("answer from a partial fleet must be marked degraded")
	}
	if len(resp.Shards) != 2 {
		t.Fatalf("want 2 survivor stamps, got %+v", resp.Shards)
	}
	// The extrapolated value should be in the neighborhood of the full
	// answer (exact only if shards were perfectly balanced).
	if resp.Estimate.Value <= 0 || resp.Estimate.Value > 3*healthyResp.Estimate.Value {
		t.Fatalf("extrapolated value %v implausible vs healthy %v", resp.Estimate.Value, healthyResp.Estimate.Value)
	}
	// A degraded answer must still carry real uncertainty.
	if dw := resp.Estimate.Hi - resp.Estimate.Lo; dw <= 0 {
		t.Fatalf("degraded CI has zero width")
	}
}

// TestExtrapolatePartial pins the degrade algebra: point statistics scale
// by fleet/healthy, variance moments by its square (so the interval
// widens linearly in the extrapolation factor).
func TestExtrapolatePartial(t *testing.T) {
	p := svc.Partial{Agg: svc.AvgAgg, Method: "svc+corr", Ratio: 0.25,
		K: 10, Stale: 100, Sum: 8, SumSq: 16,
		CntK: 10, CntStale: 50, CntSum: 4, CntSumSq: 4}
	got := extrapolatePartial(p, 4, 2)
	want := svc.Partial{Agg: svc.AvgAgg, Method: "svc+corr", Ratio: 0.25,
		K: 10, Stale: 200, Sum: 16, SumSq: 64,
		CntK: 10, CntStale: 100, CntSum: 8, CntSumSq: 16}
	if got != want {
		t.Fatalf("extrapolate ×2: got %+v want %+v", got, want)
	}
	if p2 := extrapolatePartial(p, 3, 3); p2 != p {
		t.Fatal("full fleet must not extrapolate")
	}
	if p2 := extrapolatePartial(p, 3, 0); p2 != p {
		t.Fatal("zero healthy must not divide by zero")
	}
}

// TestRouterBaseTableConcat: partitioned base-table SELECTs concatenate
// per-shard rows with per-shard row counts stamped.
func TestRouterBaseTableConcat(t *testing.T) {
	rt, ref, _ := buildFleet(t, 3, 30, 300, false, RouterConfig{})
	rc := client.New(rt.Addr())
	sc := client.New(ref.Addr())
	sql := `SELECT videoId, duration FROM Video WHERE duration > 100`
	got, err := rc.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "rows" || len(got.Rows) != len(want.Rows) {
		t.Fatalf("concat: router %d rows, single %d", len(got.Rows), len(want.Rows))
	}
	sum := 0
	for _, st := range got.Shards {
		sum += st.Rows
	}
	if sum != len(got.Rows) {
		t.Fatalf("per-shard row stamps sum to %d, body has %d rows", sum, len(got.Rows))
	}
}

// TestHedgedRetries: the hedge races a second attempt after the delay
// (slow first call) and immediately on failure; first success wins.
func TestHedgedRetries(t *testing.T) {
	t.Run("slow-first-call", func(t *testing.T) {
		var calls atomic.Int32
		v, err := hedged(5*time.Millisecond, func() (int, error) {
			if calls.Add(1) == 1 {
				time.Sleep(300 * time.Millisecond)
				return 1, nil
			}
			return 2, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v != 2 {
			t.Fatalf("hedge should have won with the second attempt, got %d", v)
		}
	})
	t.Run("failed-first-call", func(t *testing.T) {
		var calls atomic.Int32
		start := time.Now()
		v, err := hedged(time.Second, func() (int, error) {
			if calls.Add(1) == 1 {
				return 0, fmt.Errorf("transient")
			}
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Fatalf("retry after failure: v=%d err=%v", v, err)
		}
		if time.Since(start) > 500*time.Millisecond {
			t.Fatal("failure retry waited for the hedge timer instead of firing immediately")
		}
	})
	t.Run("both-fail", func(t *testing.T) {
		var calls atomic.Int32
		_, err := hedged(time.Millisecond, func() (int, error) {
			if calls.Add(1) == 1 {
				return 0, fmt.Errorf("first")
			}
			return 0, fmt.Errorf("second")
		})
		if err == nil || err.Error() != "first" {
			t.Fatalf("want the first error surfaced, got %v", err)
		}
	})
}

// getJSON fetches a JSON document (the router's /stats is
// ClusterStatsResponse-shaped, which the svcd client has no method for).
func getJSON(t *testing.T, url string, out any) error {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	return json.NewDecoder(res.Body).Decode(out)
}
