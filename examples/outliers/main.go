// Outliers: Section 6 on a heavy-tailed workload — a few sessions
// transfer thousands of times more bytes than typical ones, which makes
// plain sampling noisy. An outlier index keeps the tail exact and the
// estimator merges the two strata.
//
// Run with: go run ./examples/outliers
package main

import (
	"fmt"
	"log"
	"math/rand"

	svc "github.com/sampleclean/svc"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	build := func(withIndex bool) (*svc.Database, *svc.StaleView) {
		// Regenerate identically for a controlled comparison.
		r := rand.New(rand.NewSource(99))
		d := svc.NewDatabase()
		logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
			svc.Col("sessionId", svc.KindInt),
			svc.Col("videoId", svc.KindInt),
			svc.Col("bytes", svc.KindFloat),
		}, "sessionId"))
		gen := func() float64 {
			b := 8 + r.Float64()*4
			if r.Float64() < 0.02 {
				b *= 800 + 600*r.Float64() // the heavy tail
			}
			return b
		}
		for i := 0; i < 20000; i++ {
			logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(r.Int63n(400)), svc.Float(gen())})
		}
		plan := svc.GroupByAgg(svc.Scan("Log", logT.Schema()),
			[]string{"videoId"},
			svc.CountAs("visits"),
			svc.SumAs(svc.ColRef("bytes"), "totalBytes"))
		opts := []svc.Option{svc.WithSamplingRatio(0.08), svc.WithMode(svc.AQP)}
		if withIndex {
			opts = append(opts, svc.WithOutlierIndex("Log", "bytes", 150))
		}
		sv, err := svc.New(d, svc.ViewDefinition{Name: "traffic", Plan: plan}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		// The same staged update stream in both worlds.
		for i := 0; i < 2500; i++ {
			b := 8 + r.Float64()*4
			if r.Float64() < 0.02 {
				b *= 800 + 600*r.Float64()
			}
			if err := logT.StageInsert(svc.Row{svc.Int(int64(20000 + i)), svc.Int(r.Int63n(400)), svc.Float(b)}); err != nil {
				log.Fatal(err)
			}
		}
		return d, sv
	}

	// Ground truth from the no-index world.
	d, plain := build(false)
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		log.Fatal(err)
	}
	truthView, err := svc.Materialize(snap, plain.View().Definition())
	if err != nil {
		log.Fatal(err)
	}
	truth := 0.0
	for _, row := range truthView.Data().Rows() {
		truth += row[2].AsFloat()
	}

	_, indexed := build(true)

	q := svc.Sum("totalBytes", nil)
	fmt.Println("total bytes, heavy-tailed workload (truth:", fmt.Sprintf("%.3e", truth), ")")
	fmt.Println("\ntrial  plain_est      plain_err%  indexed_est    indexed_err%")
	var plainErr, idxErr float64
	const trials = 5
	for i := 0; i < trials; i++ {
		// Each trial re-queries; the deterministic sample is fixed, so we
		// perturb via different random query predicates covering most rows.
		lo := rng.Int63n(40)
		pred := svc.Ge(svc.ColRef("videoId"), svc.IntLit(lo))
		qq := svc.Sum("totalBytes", pred)
		tv := 0.0
		bound := lo
		for _, row := range truthView.Data().Rows() {
			if row[0].AsInt() >= bound {
				tv += row[2].AsFloat()
			}
		}
		a1, err := plain.Query(qq)
		if err != nil {
			log.Fatal(err)
		}
		a2, err := indexed.Query(qq)
		if err != nil {
			log.Fatal(err)
		}
		e1 := 100 * svc.RelativeError(a1.Value, tv)
		e2 := 100 * svc.RelativeError(a2.Value, tv)
		plainErr += e1
		idxErr += e2
		fmt.Printf("  %d    %.4e   %8.2f   %.4e   %9.2f\n", i+1, a1.Value, e1, a2.Value, e2)
		_ = q
	}
	fmt.Printf("\nmean error: plain %.2f%%, with outlier index %.2f%%\n",
		plainErr/trials, idxErr/trials)
	fmt.Println("\nthe index pins the top records exactly (sampling ratio 1 stratum),")
	fmt.Println("so the sampled stratum's variance collapses — the paper's Figure 8a.")
}
