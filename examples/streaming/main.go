// Streaming: periodic deferred maintenance with SVC between batches —
// the deployment pattern of the paper's Section 7.6.2 (run on a Conviva-
// style activity log).
//
// Updates arrive continuously; the full view is maintained only at period
// boundaries. Between boundaries, queries run three ways: against the
// stale view, via SVC, and against the ground truth. The output shows the
// stale error growing within each period while SVC stays accurate, then
// both resetting at the maintenance boundary.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	svc "github.com/sampleclean/svc"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	d := svc.NewDatabase()

	activity := d.MustCreate("activity", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("userId", svc.KindInt),
		svc.Col("resource", svc.KindInt),
		svc.Col("bytes", svc.KindFloat),
		svc.Col("day", svc.KindInt),
	}, "sessionId"))

	const users, resources = 300, 120
	nextID, day := int64(0), int64(0)
	addRecords := func(n int, stage bool) {
		for i := 0; i < n; i++ {
			row := svc.Row{
				svc.Int(nextID),
				svc.Int(rng.Int63n(users)),
				svc.Int(rng.Int63n(resources)),
				svc.Float(1e5 * (1 + rng.Float64())),
				svc.Int(day),
			}
			nextID++
			var err error
			if stage {
				err = activity.StageInsert(row)
			} else {
				err = activity.Insert(row)
			}
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	addRecords(30000, false)

	// V2 of the paper's Conviva views: bytes transferred by resource/day.
	plan := svc.GroupByAgg(
		svc.Scan("activity", activity.Schema()),
		[]string{"resource", "day"},
		svc.CountAs("visits"),
		svc.SumAs(svc.ColRef("bytes"), "totalBytes"),
	)
	sv, err := svc.New(d, svc.ViewDefinition{Name: "trafficView", Plan: plan},
		svc.WithSamplingRatio(0.06))
	if err != nil {
		log.Fatal(err)
	}

	q := svc.Sum("totalBytes", nil)
	fmt.Println("period  arrivals  stale_err%  svc_err%  method")
	for period := 1; period <= 3; period++ {
		day++
		for step := 1; step <= 3; step++ {
			addRecords(2500, true) // micro-batch arrives
			ans, err := sv.Query(q)
			if err != nil {
				log.Fatal(err)
			}
			// Ground truth from a snapshot with the deltas applied.
			snap := d.Snapshot()
			if err := snap.ApplyDeltas(); err != nil {
				log.Fatal(err)
			}
			truthView, err := svc.Materialize(snap, sv.View().Definition())
			if err != nil {
				log.Fatal(err)
			}
			exact := 0.0
			for _, row := range truthView.Data().Rows() {
				exact += row[3].AsFloat()
			}
			fmt.Printf("  %d.%d    %7d   %8.3f   %7.3f   %s\n",
				period, step, (period-1)*7500+step*2500,
				100*svc.RelativeError(ans.StaleValue, exact),
				100*svc.RelativeError(ans.Value, exact),
				ans.Method)
		}
		// Period boundary: full maintenance, deltas applied, sample
		// rolls forward.
		if err := sv.MaintainNow(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -- period %d maintenance: view refreshed (%d rows) --\n",
			period, sv.View().Data().Len())
	}
}
