package estimator

import (
	"fmt"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
)

// GroupResult holds per-group answers keyed by the encoded group values.
// Group-by queries are what the paper's evaluation runs (it folds group-by
// into the predicate, footnote 1); partitioning the samples once per query
// is equivalent and faster than one predicate scan per group.
type GroupResult struct {
	// Groups maps the encoded group key to its estimate.
	Groups map[string]Estimate
	// Labels maps the encoded group key to a printable form.
	Labels map[string]string
}

// groupPartition splits a relation's rows by group columns.
func groupPartition(rel *relation.Relation, groupBy []string) (map[string][]relation.Row, map[string]string, error) {
	idx := make([]int, len(groupBy))
	for i, g := range groupBy {
		j := rel.Schema().ColIndex(g)
		if j < 0 {
			return nil, nil, fmt.Errorf("estimator: group column %q not in schema [%s]", g, rel.Schema())
		}
		idx[i] = j
	}
	parts := map[string][]relation.Row{}
	labels := map[string]string{}
	for _, row := range rel.Rows() {
		k := row.KeyOf(idx)
		parts[k] = append(parts[k], row)
		if _, ok := labels[k]; !ok {
			label := ""
			for n, j := range idx {
				if n > 0 {
					label += ","
				}
				label += row[j].String()
			}
			labels[k] = label
		}
	}
	return parts, labels, nil
}

// subRelation builds a keyed relation from a subset of rows of rel.
func subRelation(rel *relation.Relation, rows []relation.Row) *relation.Relation {
	out := relation.New(rel.Schema())
	for _, r := range rows {
		out.MustInsert(r)
	}
	return out
}

// GroupAQP runs SVC+AQP per group of the clean sample. Groups absent from
// the sample produce no entry (the scaled estimate would be zero).
func GroupAQP(s *clean.Samples, q Query, groupBy []string, confidence float64) (GroupResult, error) {
	parts, labels, err := groupPartition(s.Fresh, groupBy)
	if err != nil {
		return GroupResult{}, err
	}
	res := GroupResult{Groups: map[string]Estimate{}, Labels: labels}
	for k, rows := range parts {
		sub := &clean.Samples{Fresh: subRelation(s.Fresh, rows), Stale: s.Stale, Ratio: s.Ratio}
		est, err := AQP(sub, q, confidence)
		if err != nil {
			continue // group with no usable rows
		}
		res.Groups[k] = est
	}
	return res, nil
}

// GroupCorr runs SVC+CORR per group: the stale view and both samples are
// partitioned by the group columns, then each group is corrected
// independently.
func GroupCorr(staleView *relation.Relation, s *clean.Samples, q Query, groupBy []string, confidence float64) (GroupResult, error) {
	staleParts, staleLabels, err := groupPartition(staleView, groupBy)
	if err != nil {
		return GroupResult{}, err
	}
	freshParts, freshLabels, err := groupPartition(s.Fresh, groupBy)
	if err != nil {
		return GroupResult{}, err
	}
	sampleStaleParts, _, err := groupPartition(s.Stale, groupBy)
	if err != nil {
		return GroupResult{}, err
	}
	keys := map[string]bool{}
	labels := map[string]string{}
	for k := range staleParts {
		keys[k] = true
		labels[k] = staleLabels[k]
	}
	for k := range freshParts {
		keys[k] = true
		if _, ok := labels[k]; !ok {
			labels[k] = freshLabels[k]
		}
	}
	res := GroupResult{Groups: map[string]Estimate{}, Labels: labels}
	for k := range keys {
		sub := &clean.Samples{
			Fresh: subRelation(s.Fresh, freshParts[k]),
			Stale: subRelation(s.Stale, sampleStaleParts[k]),
			Ratio: s.Ratio,
		}
		est, err := Corr(subRelation(staleView, staleParts[k]), sub, q, confidence)
		if err != nil {
			continue
		}
		res.Groups[k] = est
	}
	return res, nil
}

// GroupExact evaluates the group query exactly (truth / stale baselines).
func GroupExact(rel *relation.Relation, q Query, groupBy []string) (map[string]float64, map[string]string, error) {
	parts, labels, err := groupPartition(rel, groupBy)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]float64, len(parts))
	for k, rows := range parts {
		v, err := RunExact(subRelation(rel, rows), q)
		if err != nil {
			return nil, nil, err
		}
		out[k] = v
	}
	return out, labels, nil
}

// GroupErrorStats compares per-group estimates against exact answers and
// returns the paper's accuracy metrics: median and max relative error over
// groups. Groups present in truth but absent from est count as 100%
// error, and every per-group error saturates at 100% ("completely wrong")
// so near-zero truth denominators cannot produce unbounded ratios; the
// comparison runs over the union of group keys.
func GroupErrorStats(est map[string]Estimate, truth map[string]float64) (median, max float64) {
	var errs []float64
	for k, tv := range truth {
		if e, ok := est[k]; ok {
			errs = append(errs, capErr(RelativeError(e.Value, tv)))
		} else {
			errs = append(errs, 1)
		}
	}
	for k, e := range est {
		if _, ok := truth[k]; !ok {
			errs = append(errs, capErr(RelativeError(e.Value, 0)))
		}
	}
	if len(errs) == 0 {
		return 0, 0
	}
	max = errs[0]
	for _, e := range errs {
		if e > max {
			max = e
		}
	}
	return stats.Median(errs), max
}

// GroupCoverage counts per-group CI hits over the union of group keys: a
// truth group is covered when its estimate's interval contains the exact
// answer; estimated groups with no true counterpart count as misses. The
// workload matrix reports covered/total as informational per-group
// coverage (the guarantee is conditional — an unsampled changed group is
// legitimately uncovered).
func GroupCoverage(est map[string]Estimate, truth map[string]float64) (covered, total int) {
	for k, tv := range truth {
		total++
		if e, ok := est[k]; ok && e.Covers(tv) {
			covered++
		}
	}
	for k := range est {
		if _, ok := truth[k]; !ok {
			total++
		}
	}
	return covered, total
}

// capErr saturates a relative error at 100%.
func capErr(e float64) float64 {
	if e > 1 {
		return 1
	}
	return e
}

// GroupStaleErrorStats compares the stale exact answers against the truth
// (the "No Maintenance" baseline), with the same 100% saturation as
// GroupErrorStats.
func GroupStaleErrorStats(stale, truth map[string]float64) (median, max float64) {
	var errs []float64
	for k, tv := range truth {
		if sv, ok := stale[k]; ok {
			errs = append(errs, capErr(RelativeError(sv, tv)))
		} else {
			errs = append(errs, 1)
		}
	}
	for k, sv := range stale {
		if _, ok := truth[k]; !ok {
			errs = append(errs, capErr(RelativeError(sv, 0)))
		}
	}
	if len(errs) == 0 {
		return 0, 0
	}
	max = errs[0]
	for _, e := range errs {
		if e > max {
			max = e
		}
	}
	return stats.Median(errs), max
}
