package algebra

import (
	"strings"
	"testing"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// Table-driven rewrite tests for PushDownScans: each case states the
// input plan, a fragment the rewritten plan must (or must not) contain,
// and is additionally checked for row-for-row result equivalence against
// the unrewritten plan under both evaluation modes.
func TestPushDownScansRewrites(t *testing.T) {
	pred1 := expr.Eq(expr.Col("ownerId"), expr.IntLit(10))
	pred2 := expr.Gt(expr.Col("duration"), expr.FloatLit(0.9))
	cases := []struct {
		name    string
		plan    func() Node
		want    string // substring of Format(rewritten)
		wantNot string // substring that must be gone
	}{
		{
			name:    "select-fuses-into-scan",
			plan:    func() Node { return MustSelect(Scan("Video", videoSchema()), pred1) },
			want:    "Scan(Video σ:",
			wantNot: "Select(",
		},
		{
			name: "stacked-selects-merge",
			plan: func() Node {
				return MustSelect(MustSelect(Scan("Video", videoSchema()), pred1), pred2)
			},
			want:    "and (duration > 0.9)",
			wantNot: "Select(",
		},
		{
			name: "project-prunes-scan-columns",
			plan: func() Node {
				// ownerId is unreferenced and not the key: it is pruned.
				return MustProject(Scan("Video", videoSchema()),
					[]Output{OutCol("videoId"), Out("halfDur", expr.Div(expr.Col("duration"), expr.IntLit(2)))})
			},
			want: "Π:videoId,duration",
		},
		{
			name: "project-keeps-key-columns",
			plan: func() Node {
				// The projection references only duration, but videoId is
				// Video's key and must survive pruning (and be projected,
				// per Definition 2).
				return MustProject(Scan("Video", videoSchema()),
					[]Output{OutCol("videoId"), OutCol("duration")})
			},
			want: "Π:videoId,duration",
		},
		{
			name: "select-then-project-fuse-both",
			plan: func() Node {
				return MustProject(MustSelect(Scan("Video", videoSchema()), pred1),
					[]Output{OutCol("videoId"), OutCol("ownerId")})
			},
			want:    "Scan(Video σ:",
			wantNot: "Select(",
		},
		{
			name: "projection-referencing-everything-stays",
			plan: func() Node {
				return MustProject(Scan("Video", videoSchema()),
					[]Output{OutCol("videoId"), OutCol("ownerId"), OutCol("duration")})
			},
			wantNot: "Π:",
		},
		{
			name: "select-over-join-untouched",
			plan: func() Node {
				j := MustJoin(Scan("Log", logSchema()), Alias(Scan("Video", videoSchema()), "v"),
					JoinSpec{On: []EqPair{{Left: "videoId", Right: "v.videoId"}}})
				return MustSelect(j, expr.Gt(expr.Col("v.duration"), expr.FloatLit(0.5)))
			},
			want: "Select(",
		},
		{
			name: "fusion-under-a-join",
			plan: func() Node {
				right := MustSelect(Scan("Video", videoSchema()), pred1)
				return MustJoin(Scan("Log", logSchema()), Alias(right, "v"),
					JoinSpec{On: []EqPair{{Left: "videoId", Right: "v.videoId"}}})
			},
			want:    "Scan(Video σ:",
			wantNot: "Select(",
		},
		{
			name: "fusion-under-aggregate",
			plan: func() Node {
				return MustGroupBy(MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(1))),
					[]string{"videoId"}, CountAs("n"))
			},
			want:    "Scan(Log σ:",
			wantNot: "Select(",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := tc.plan()
			rewritten := PushDownScans(plan)
			got := Format(rewritten)
			if tc.want != "" && !strings.Contains(got, tc.want) {
				t.Errorf("rewritten plan lacks %q:\n%s", tc.want, got)
			}
			if tc.wantNot != "" && strings.Contains(got, tc.wantNot) {
				t.Errorf("rewritten plan still contains %q:\n%s", tc.wantNot, got)
			}
			if !rewritten.Schema().Equal(plan.Schema()) {
				t.Fatalf("rewrite changed the schema: [%s] vs [%s]", rewritten.Schema(), plan.Schema())
			}
			ref, err := EvalMaterialized(plan, fixtureCtx())
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []string{"pipelined", "materialized"} {
				var out *relation.Relation
				if mode == "pipelined" {
					out, err = rewritten.Eval(fixtureCtx())
				} else {
					out, err = EvalMaterialized(rewritten, fixtureCtx())
				}
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if out.Len() != ref.Len() {
					t.Fatalf("%s: %d rows, want %d", mode, out.Len(), ref.Len())
				}
				for i := 0; i < ref.Len(); i++ {
					if !out.Row(i).Equal(ref.Row(i)) {
						t.Fatalf("%s: row %d = %v, want %v", mode, i, out.Row(i), ref.Row(i))
					}
				}
			}
		})
	}
}

// A fused scan's predicate binds against the full declared schema, so it
// may test columns the fused projection drops — but the rewriter only
// prunes above the projection, which always references what it needs.
func TestPushDownScansPredicateOverPrunedColumn(t *testing.T) {
	// σ(ownerId=10) then project away ownerId — the predicate fuses first,
	// and pruning keeps predicate columns out of the narrowed OUTPUT while
	// the scan still evaluates the predicate on the full row.
	plan := MustProject(
		MustSelect(Scan("Video", videoSchema()), expr.Eq(expr.Col("ownerId"), expr.IntLit(10))),
		[]Output{OutCol("videoId"), OutCol("duration")})
	rewritten := PushDownScans(plan)
	ref, err := EvalMaterialized(plan, fixtureCtx())
	if err != nil {
		t.Fatal(err)
	}
	out := mustEval(t, rewritten, fixtureCtx())
	if !out.Equal(ref) {
		t.Fatalf("pruning a predicate column changed the result:\n%v\nvs\n%v", out, ref)
	}
}
