// Package relation implements the tuple and relation substrate used by the
// SVC engine (the data model of the paper's Section 3.1): typed scalar
// values, schemas with primary-key metadata, rows, and in-memory
// primary-key-indexed relations, plus the pooled fixed-capacity Batch
// chunks the execution pipeline streams (DESIGN.md "Batch pipeline
// execution") and the zero-allocation encoded-key machinery (KeyBuf,
// ProbeBytes) behind hash joins and sampling.
//
// Batches carry one of two layouts. The row layout streams []Row headers
// (aliasing storage owned elsewhere, or built in the batch's value
// arena). The columnar layout (DESIGN.md "Columnar batch layer") stores
// typed column vectors — ColVec: one flat int64/float64/string payload
// slice per attribute with a NULL bitmap, demoting to per-cell Values
// only for mixed-kind columns — plus a selection vector, so filters
// shrink the selection instead of moving cells and vectorized operators
// (expr.EvalVec) run tight loops over primitive slices. Rows() remains
// the row-compatibility view of a columnar batch, and the Value↔vector
// cell codec is exact for every kind including NULL (fuzzed by
// FuzzValueColVecRoundTrip). ReadPoolCounters exposes batch/vector pool
// hit rates for the serving layer's /stats gauges.
//
// String vectors may be dictionary-encoded (Dict): distinct strings are
// interned once, cells store int64 codes, and same-dictionary equality
// is an integer compare. ColSet is the breaker-side columnar row store —
// a growable set of vectors (one pooled dictionary per string column)
// that accumulates a whole pipeline input for the columnar join and the
// parallel aggregation fold, exposing the same canonical-key surface as
// Row (HashCols/EncodeCols/KeyEqualCols, bit- and byte-identical).
// Dictionaries and sets recycle through pools like batches;
// SetPoisonRecycled overwrites recycled string storage with a sentinel
// so any consumer retaining a reference past Release fails
// deterministically in tests.
//
// The terminology follows the paper: tuples of base relations are "records"
// and tuples of derived relations are "rows"; both are represented by Row.
//
// Concurrency contract: a Relation is single-writer — mutators (Insert,
// Upsert, Delete*, BuildIndex, Sort) must not race with anything. Sharing
// with concurrent readers goes through Snapshot(), which marks the
// relation copy-on-write and returns an immutable alias: readers use the
// snapshot freely while the owner's next mutation detaches onto private
// storage (see DESIGN.md "Snapshot serving layer"). Batches come from a
// global pool and follow a strict ownership protocol (the consumer that
// pulled a batch owns it; Release/ReleaseUnlessOwned/Pin) documented on
// the Batch type; a batch is owned by one goroutine at a time, and its
// column vectors and selection buffer are recycled with it.
package relation
