package view

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// The running example: Log(sessionId, videoId), Video(videoId, ownerId,
// duration), visitView = per-video visit counts with owner attributes.

func logSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
	}, "sessionId")
}

func videoSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "videoId", Type: relation.KindInt},
		{Name: "ownerId", Type: relation.KindInt},
		{Name: "duration", Type: relation.KindFloat},
	}, "videoId")
}

func newDB(t testing.TB, videos int, visits []int64) *db.Database {
	t.Helper()
	d := db.New()
	vt := d.MustCreate("Video", videoSchema())
	for i := 0; i < videos; i++ {
		vt.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(int64(i % 3)), relation.Float(float64(i) / 2)})
	}
	lt := d.MustCreate("Log", logSchema())
	for i, v := range visits {
		lt.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(v)})
	}
	if err := d.AddForeignKey("Log", "videoId", "Video"); err != nil {
		t.Fatal(err)
	}
	return d
}

// visitViewDef is the paper's running-example view:
// SELECT videoId, ownerId, duration, count(1) FROM Log ⋈ Video GROUP BY videoId.
func visitViewDef() Definition {
	j := algebra.MustJoin(
		algebra.Scan("Log", logSchema()),
		algebra.Scan("Video", videoSchema()),
		algebra.JoinSpec{Type: algebra.Inner, On: algebra.On("videoId", "videoId"), Merge: true},
	)
	g := algebra.MustGroupBy(j, []string{"videoId"},
		algebra.CountAs("visitCount"),
		algebra.SumAs(expr.Col("duration"), "totalDuration"),
	)
	return Definition{Name: "visitView", Plan: g}
}

// spjViewDef is a plain join view (no aggregate), like the paper's TPCD
// join view.
func spjViewDef() Definition {
	j := algebra.MustJoin(
		algebra.Scan("Log", logSchema()),
		algebra.Scan("Video", videoSchema()),
		algebra.JoinSpec{Type: algebra.Inner, On: algebra.On("videoId", "videoId"), Merge: true},
	)
	return Definition{Name: "joinView", Plan: j}
}

// groundTruth applies the staged deltas on a snapshot and re-materializes.
func groundTruth(t testing.TB, d *db.Database, def Definition) *relation.Relation {
	t.Helper()
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	fresh, err := Materialize(snap, def)
	if err != nil {
		t.Fatal(err)
	}
	return fresh.Data()
}

// rowsAlmostEqual compares rows with a relative tolerance on floats:
// incremental maintenance legitimately accumulates float sums in a
// different order than recomputation.
func rowsAlmostEqual(a, b relation.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() == relation.KindFloat || b[i].Kind() == relation.KindFloat {
			x, y := a[i].AsFloat(), b[i].AsFloat()
			diff := math.Abs(x - y)
			scale := math.Max(math.Abs(x), math.Abs(y))
			if diff > 1e-9*math.Max(scale, 1) {
				return false
			}
			continue
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func requireViewEquals(t testing.TB, got, want *relation.Relation) {
	t.Helper()
	got.SortByKey()
	want.SortByKey()
	if got.Len() != want.Len() {
		t.Fatalf("view size %d, want %d\ngot: %s\nwant: %s", got.Len(), want.Len(), got, want)
	}
	for _, wrow := range want.Rows() {
		grow, ok := got.GetByEncodedKey(wrow.KeyOf(want.Schema().Key()))
		if !ok {
			t.Fatalf("missing row %v", wrow)
		}
		if !rowsAlmostEqual(grow, wrow) {
			t.Fatalf("row mismatch: got %v want %v", grow, wrow)
		}
	}
}

func TestMaterializeVisitView(t *testing.T) {
	d := newDB(t, 3, []int64{0, 0, 1, 2, 2, 2})
	v, err := Materialize(d, visitViewDef())
	if err != nil {
		t.Fatal(err)
	}
	if v.Data().Len() != 3 {
		t.Fatalf("view rows = %d", v.Data().Len())
	}
	row, _ := v.Data().Get(relation.Int(2))
	if row[1].AsInt() != 3 {
		t.Errorf("visitCount(2) = %v", row[1])
	}
	if got := v.KeyNames(); len(got) != 1 || got[0] != "videoId" {
		t.Errorf("view key = %v", got)
	}
}

func TestMaintainerChoosesChangeTable(t *testing.T) {
	d := newDB(t, 3, []int64{0, 1})
	v, err := Materialize(d, visitViewDef())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != ChangeTable {
		t.Errorf("kind = %v, want change-table", m.Kind())
	}
}

func TestMaintainerFallsBackToRecompute(t *testing.T) {
	d := newDB(t, 3, []int64{0, 1})
	// Nested aggregate (V21-style): distribution of visit counts.
	inner := algebra.MustGroupBy(algebra.Scan("Log", logSchema()), []string{"videoId"}, algebra.CountAs("c"))
	outer := algebra.MustGroupBy(inner, []string{"c"}, algebra.CountAs("n"))
	v, err := Materialize(d, Definition{Name: "nested", Plan: outer})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != Recompute {
		t.Errorf("kind = %v, want recompute", m.Kind())
	}
}

// TestChangeTableMaintainsInsertions covers the three error classes of
// Section 3.1 in one scenario: incorrect rows (existing groups with new
// visits), missing rows (a brand-new video group).
func TestChangeTableMaintainsInsertions(t *testing.T) {
	d := newDB(t, 4, []int64{0, 0, 1})
	def := visitViewDef()
	v, err := Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	lt := d.Table("Log")
	// More visits to video 0 (incorrect row) and first visits to video 3
	// (missing row).
	for i, vid := range []int64{0, 3, 3} {
		if err := lt.StageInsert(relation.Row{relation.Int(int64(100 + i)), relation.Int(vid)}); err != nil {
			t.Fatal(err)
		}
	}
	want := groundTruth(t, d, def)
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	requireViewEquals(t, v.Data(), want)
	row, _ := v.Data().Get(relation.Int(3))
	if row[1].AsInt() != 2 {
		t.Errorf("new group count = %v", row[1])
	}
}

// TestChangeTableMaintainsDeletions covers superfluous rows: all log
// records of a video disappear and the group must vanish.
func TestChangeTableMaintainsDeletions(t *testing.T) {
	d := newDB(t, 3, []int64{0, 1, 1, 2})
	def := visitViewDef()
	v, _ := Materialize(d, def)
	m, err := NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	lt := d.Table("Log")
	if err := lt.StageDelete(relation.Int(0)); err != nil { // video 0's only visit
		t.Fatal(err)
	}
	if err := lt.StageDelete(relation.Int(1)); err != nil { // one of video 1's visits
		t.Fatal(err)
	}
	want := groundTruth(t, d, def)
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	requireViewEquals(t, v.Data(), want)
	if _, ok := v.Data().Get(relation.Int(0)); ok {
		t.Error("superfluous group 0 should be gone")
	}
	row, _ := v.Data().Get(relation.Int(1))
	if row[1].AsInt() != 1 {
		t.Errorf("group 1 count = %v", row[1])
	}
}

func TestChangeTableMaintainsDimensionUpdates(t *testing.T) {
	d := newDB(t, 3, []int64{0, 1, 1, 2})
	def := visitViewDef()
	v, _ := Materialize(d, def)
	m, err := NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	// Update a dimension row: video 1 changes owner and duration.
	if err := d.Table("Video").StageUpdate(relation.Row{relation.Int(1), relation.Int(9), relation.Float(7)}); err != nil {
		t.Fatal(err)
	}
	want := groundTruth(t, d, def)
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	requireViewEquals(t, v.Data(), want)
}

func TestSPJChangeTable(t *testing.T) {
	d := newDB(t, 3, []int64{0, 1, 2})
	def := spjViewDef()
	v, _ := Materialize(d, def)
	m, err := NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != ChangeTable {
		t.Fatalf("kind = %v", m.Kind())
	}
	lt := d.Table("Log")
	if err := lt.StageInsert(relation.Row{relation.Int(50), relation.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if err := lt.StageDelete(relation.Int(0)); err != nil {
		t.Fatal(err)
	}
	want := groundTruth(t, d, def)
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	requireViewEquals(t, v.Data(), want)
}

func TestRecomputeStrategyMatchesGroundTruth(t *testing.T) {
	d := newDB(t, 3, []int64{0, 1, 1, 2})
	inner := algebra.MustGroupBy(algebra.Scan("Log", logSchema()), []string{"videoId"}, algebra.CountAs("c"))
	outer := algebra.MustGroupBy(inner, []string{"c"}, algebra.CountAs("n"))
	def := Definition{Name: "nested", Plan: outer}
	v, _ := Materialize(d, def)
	m, _ := NewMaintainer(v)
	lt := d.Table("Log")
	for i, vid := range []int64{0, 0, 2} {
		if err := lt.StageInsert(relation.Row{relation.Int(int64(200 + i)), relation.Int(vid)}); err != nil {
			t.Fatal(err)
		}
	}
	want := groundTruth(t, d, def)
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	requireViewEquals(t, v.Data(), want)
}

func TestMaintainNoDeltasIsIdentity(t *testing.T) {
	d := newDB(t, 3, []int64{0, 1, 2, 2})
	def := visitViewDef()
	v, _ := Materialize(d, def)
	before := v.Data().Clone()
	m, _ := NewMaintainer(v)
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	requireViewEquals(t, v.Data(), before)
}

// Property test: random update batches — change-table maintenance equals
// recompute ground truth for both the aggregate and SPJ view.
func TestMaintenanceEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVideos := 2 + rng.Intn(6)
		visits := make([]int64, 5+rng.Intn(40))
		for i := range visits {
			visits[i] = rng.Int63n(int64(nVideos))
		}
		for _, def := range []Definition{visitViewDef(), spjViewDef()} {
			d := newDB(t, nVideos, visits)
			v, err := Materialize(d, def)
			if err != nil {
				t.Log(err)
				return false
			}
			m, err := NewMaintainer(v)
			if err != nil {
				t.Log(err)
				return false
			}
			if m.Kind() != ChangeTable {
				t.Logf("%s: expected change-table", def.Name)
				return false
			}
			// Random batch: inserts, deletes, updates on both tables.
			lt, vt := d.Table("Log"), d.Table("Video")
			for op := 0; op < 10+rng.Intn(20); op++ {
				switch rng.Intn(4) {
				case 0: // insert visit
					lt.StageInsert(relation.Row{
						relation.Int(int64(1000 + op)),
						relation.Int(rng.Int63n(int64(nVideos))),
					})
				case 1: // delete an existing visit (if any)
					if k := rng.Intn(len(visits)); true {
						_ = lt.StageDelete(relation.Int(int64(k)))
					}
				case 2: // update a visit's video
					k := rng.Intn(len(visits))
					if _, ok := lt.Rows().Get(relation.Int(int64(k))); ok {
						lt.StageUpdate(relation.Row{
							relation.Int(int64(k)),
							relation.Int(rng.Int63n(int64(nVideos))),
						})
					}
				case 3: // update a video's attributes
					vid := rng.Int63n(int64(nVideos))
					vt.StageUpdate(relation.Row{
						relation.Int(vid),
						relation.Int(rng.Int63n(5)),
						relation.Float(rng.Float64() * 4),
					})
				}
			}
			want := groundTruth(t, d, def)
			if _, err := m.Maintain(d); err != nil {
				t.Log(err)
				return false
			}
			got := v.Data()
			got.SortByKey()
			want.SortByKey()
			if got.Len() != want.Len() {
				t.Logf("%s seed %d: %d rows vs %d", def.Name, seed, got.Len(), want.Len())
				return false
			}
			for _, wrow := range want.Rows() {
				grow, ok := got.GetByEncodedKey(wrow.KeyOf(want.Schema().Key()))
				if !ok || !rowsAlmostEqual(grow, wrow) {
					t.Logf("%s seed %d: row %v vs %v", def.Name, seed, grow, wrow)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Maintenance must also be repeatable: maintaining twice without new
// deltas leaves the view unchanged (M is a function of S, D, ∂D).
func TestMaintainIdempotentAfterApply(t *testing.T) {
	d := newDB(t, 3, []int64{0, 1, 2})
	def := visitViewDef()
	v, _ := Materialize(d, def)
	m, _ := NewMaintainer(v)
	lt := d.Table("Log")
	if err := lt.StageInsert(relation.Row{relation.Int(77), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	after := v.Data().Clone()
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	requireViewEquals(t, v.Data(), after)
}
