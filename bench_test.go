// Benchmarks: one testing.B benchmark per paper table/figure, wrapping the
// experiment runners in internal/bench, plus micro-benchmarks for the
// engine's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports how long regenerating that figure takes at
// a reduced scale; `go run ./cmd/svcbench -run all -scale 1` produces the
// full-size tables.
package svc_test

import (
	"math/rand"
	"testing"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/internal/bench"
)

// benchScale keeps figure regeneration fast enough for -bench cycles.
const benchScale = bench.Scale(0.12)

func figBenchmark(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(id, benchScale); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Figure 4: join view maintenance cost.
func BenchmarkFig4aJoinViewMaintenance(b *testing.B) { figBenchmark(b, "fig4a") }
func BenchmarkFig4bSpeedupVsUpdates(b *testing.B)    { figBenchmark(b, "fig4b") }

// Figure 5: join view query accuracy.
func BenchmarkFig5JoinViewAccuracy(b *testing.B) { figBenchmark(b, "fig5") }

// Figure 6: total time and the CORR/AQP break-even.
func BenchmarkFig6aTotalTime(b *testing.B) { figBenchmark(b, "fig6a") }
func BenchmarkFig6bBreakEven(b *testing.B) { figBenchmark(b, "fig6b") }

// Figure 7: complex views.
func BenchmarkFig7aComplexViewMaintenance(b *testing.B) { figBenchmark(b, "fig7a") }
func BenchmarkFig7bComplexViewAccuracy(b *testing.B)    { figBenchmark(b, "fig7b") }

// Figure 8: outlier indexing.
func BenchmarkFig8aOutlierAccuracy(b *testing.B) { figBenchmark(b, "fig8a") }
func BenchmarkFig8bOutlierOverhead(b *testing.B) { figBenchmark(b, "fig8b") }

// Figure 9: Conviva-style workload.
func BenchmarkFig9aConvivaMaintenance(b *testing.B) { figBenchmark(b, "fig9a") }
func BenchmarkFig9bConvivaAccuracy(b *testing.B)    { figBenchmark(b, "fig9b") }

// Figures 10–13: the data cube.
func BenchmarkFig10aCubeMaintenance(b *testing.B)   { figBenchmark(b, "fig10a") }
func BenchmarkFig10bCubeSpeedup(b *testing.B)       { figBenchmark(b, "fig10b") }
func BenchmarkFig11CubeRollupAccuracy(b *testing.B) { figBenchmark(b, "fig11") }
func BenchmarkFig12CubeMaxGroupError(b *testing.B)  { figBenchmark(b, "fig12") }
func BenchmarkFig13CubeMedianRollups(b *testing.B)  { figBenchmark(b, "fig13") }

// Figures 14–16: the mini-batch cluster simulation.
func BenchmarkFig14aThroughput(b *testing.B)    { figBenchmark(b, "fig14a") }
func BenchmarkFig14bTwoThreads(b *testing.B)    { figBenchmark(b, "fig14b") }
func BenchmarkFig15OptimalRatio(b *testing.B)   { figBenchmark(b, "fig15") }
func BenchmarkFig16CPUUtilization(b *testing.B) { figBenchmark(b, "fig16") }

// Ablations.
func BenchmarkAblateHash(b *testing.B)      { figBenchmark(b, "ablate-hash") }
func BenchmarkAblatePushdown(b *testing.B)  { figBenchmark(b, "ablate-pushdown") }
func BenchmarkAblateAdvisor(b *testing.B)   { figBenchmark(b, "ablate-advisor") }
func BenchmarkAblateNonUnique(b *testing.B) { figBenchmark(b, "ablate-nonunique") }

// ------------------------------------------------------ micro-benchmarks

// benchSetup builds the running-example scenario once per benchmark.
func benchSetup(b *testing.B, visits, updates int, ratio float64) (*svc.Database, *svc.StaleView) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
	}, "videoId"))
	const videos = 400
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(20))})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(videos))})
	}
	plan := svc.GroupByAgg(
		svc.Join(svc.Scan("Log", logT.Schema()), svc.Scan("Video", video.Schema()),
			svc.JoinSpec{Type: svc.Inner, On: svc.On("videoId", "videoId"), Merge: true}),
		[]string{"videoId", "ownerId"},
		svc.CountAs("visitCount"),
	)
	sv, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: plan},
		svc.WithSamplingRatio(ratio))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < updates; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(visits + i)), svc.Int(rng.Int63n(videos))}); err != nil {
			b.Fatal(err)
		}
	}
	return d, sv
}

// BenchmarkCleanSample measures one sampled cleaning round (the paper's
// per-query maintenance cost).
func BenchmarkCleanSample(b *testing.B) {
	_, sv := benchSetup(b, 20000, 2000, 0.10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Clean(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullIVM measures full incremental maintenance on the same
// scenario, for comparison with BenchmarkCleanSample.
func BenchmarkFullIVM(b *testing.B) {
	d, sv := benchSetup(b, 20000, 2000, 0.10)
	stale := sv.View().Data().Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := sv.View().Replace(stale.Clone()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sv.Maintainer().Maintain(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryEstimate measures end-to-end query answering (clean +
// correct + bound).
func BenchmarkQueryEstimate(b *testing.B) {
	_, sv := benchSetup(b, 20000, 2000, 0.10)
	q := svc.Sum("visitCount", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
