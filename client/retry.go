package client

import (
	"math/rand"
	"time"
)

// retryPolicy shapes the client's reaction to 503 shed responses:
// capped exponential backoff with jitter, honoring the server's
// Retry-After hint. Zero attempts disables retrying (the default).
type retryPolicy struct {
	attempts int           // total tries including the first
	base     time.Duration // first backoff step
	max      time.Duration // backoff cap
	sleep    func(time.Duration)
	rng      func(int64) int64 // test seam for the jitter draw
}

// WithRetry makes the client retry 503 (overload / ingest backpressure)
// responses up to attempts total tries, sleeping between tries with
// capped exponential backoff plus jitter. The server's Retry-After hint
// raises the backoff floor when it exceeds the computed step; the cap
// still bounds every sleep. Only 503s are retried: the server sheds them
// before doing any work, so a retry never duplicates effects.
func WithRetry(attempts int) Option {
	return WithRetryPolicy(attempts, 50*time.Millisecond, 2*time.Second)
}

// WithRetryPolicy is WithRetry with explicit backoff shape.
func WithRetryPolicy(attempts int, base, max time.Duration) Option {
	return func(c *Client) {
		if base <= 0 {
			base = 50 * time.Millisecond
		}
		if max < base {
			max = base
		}
		c.retry = retryPolicy{
			attempts: attempts,
			base:     base,
			max:      max,
			sleep:    time.Sleep,
			rng:      rand.Int63n,
		}
	}
}

// backoff computes the sleep before retry number i (0-based): the
// exponential step, floored by the server's Retry-After hint, capped,
// then jittered to d/2 + uniform(0, d/2] so a thundering herd of shed
// clients decorrelates.
func (p retryPolicy) backoff(i int, err error) time.Duration {
	d := p.base << uint(i)
	if d <= 0 || d > p.max { // shift overflow or past the cap
		d = p.max
	}
	if ae, ok := err.(*APIError); ok && ae.RetryAfter > d {
		d = ae.RetryAfter
		if d > p.max {
			d = p.max
		}
	}
	return d/2 + time.Duration(p.rng(int64(d/2)+1))
}

// withRetry runs fn under the policy, retrying overload rejections.
func (c *Client) withRetry(fn func() error) error {
	if c.retry.attempts <= 1 {
		return fn()
	}
	var err error
	for i := 0; i < c.retry.attempts; i++ {
		err = fn()
		if err == nil || !IsOverloaded(err) {
			return err
		}
		if i == c.retry.attempts-1 {
			break
		}
		c.retry.sleep(c.retry.backoff(i, err))
	}
	return err
}
