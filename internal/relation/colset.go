package relation

import (
	"sync"

	"github.com/sampleclean/svc/internal/hashing"
)

// ColSet is a growable columnar row store — the breaker-side counterpart
// of a []Row drain. Where a fixed-capacity Batch carries one morsel
// between operators, a ColSet accumulates an entire pipeline input (a
// hash-join build side, the rows under an aggregation) column-major, so
// breaker algorithms hash, compare, and gather from typed payload slices
// instead of materializing row slabs.
//
// String columns are dictionary-encoded on first contact: the set owns
// one pooled Dict per string column and interns every appended cell, so
// repeated strings are stored once and same-column equality compares
// int64 codes. Release returns the set's vectors and dictionaries to
// their pools — the caller must be done with every cell (values handed
// downstream are decoded copies, never dictionary aliases).
//
// A ColSet is single-writer; concurrent readers of a set that is no
// longer growing are safe (the parallel fold and probe paths rely on
// this).
type ColSet struct {
	cols  []ColVec
	dicts []*Dict // per-column owned dictionary, nil until first string
	n     int
}

// colSetPool recycles ColSets (and their vectors' capacity) across
// pipeline drains, like batchPool.
var colSetPool = sync.Pool{New: func() any {
	poolCounters.setNews.Add(1)
	return new(ColSet)
}}

// GetColSet returns an empty set of the given width from the pool.
func GetColSet(width int) *ColSet {
	poolCounters.setGets.Add(1)
	s := colSetPool.Get().(*ColSet)
	if cap(s.cols) < width {
		s.cols = append(s.cols[:cap(s.cols)], make([]ColVec, width-cap(s.cols))...)
	}
	s.cols = s.cols[:width]
	for i := range s.cols {
		s.cols[i].Reset()
	}
	if cap(s.dicts) < width {
		s.dicts = make([]*Dict, width)
	}
	s.dicts = s.dicts[:width]
	s.n = 0
	return s
}

// Release returns the set's dictionaries and the set itself to their
// pools. No cell, vector, or dictionary of the set may be used afterwards.
func (s *ColSet) Release() {
	for i := range s.cols {
		s.cols[i].Reset() // drops dict references (and poisons when enabled)
	}
	for i, d := range s.dicts {
		if d != nil {
			PutDict(d)
			s.dicts[i] = nil
		}
	}
	s.n = 0
	colSetPool.Put(s)
}

// Len reports the number of rows in the set.
func (s *ColSet) Len() int { return s.n }

// Width reports the number of columns.
func (s *ColSet) Width() int { return len(s.cols) }

// Vec returns column c (implements expr.VecSource).
func (s *ColSet) Vec(c int) *ColVec { return &s.cols[c] }

// NumPhys reports the row count (implements expr.VecSource; a ColSet is
// always dense — no selection vector).
func (s *ColSet) NumPhys() int { return s.n }

// ensureDict switches column c to dictionary encoding when it is about to
// receive its first string cell.
func (s *ColSet) ensureDict(c int) {
	v := &s.cols[c]
	if v.dict != nil || v.mixed || v.kind != KindNull {
		return
	}
	if s.dicts[c] == nil {
		s.dicts[c] = GetDict()
	}
	v.EnableDict(s.dicts[c])
}

// AppendRow appends one row cell-wise (row batches, oracle inputs).
func (s *ColSet) AppendRow(r Row) {
	for c := range s.cols {
		if r[c].kind == KindString {
			s.ensureDict(c)
		}
		s.cols[c].AppendValue(r[c])
	}
	s.n++
}

// AppendRows appends a row slice.
func (s *ColSet) AppendRows(rows []Row) {
	for _, r := range rows {
		s.AppendRow(r)
	}
}

// AppendBatch appends the selected rows of a batch. Columnar batches copy
// column-at-a-time with typed bulk appends (string columns intern into
// the set's dictionaries); row batches append cell-wise. The caller still
// owns (and releases) the batch.
func (s *ColSet) AppendBatch(b *Batch) {
	if !b.Columnar() {
		s.AppendRows(b.Rows())
		return
	}
	sel := b.Sel()
	count := b.Len()
	if count == 0 {
		return
	}
	for c := range s.cols {
		src := b.Vec(c)
		if !src.Mixed() && src.Kind() == KindString {
			s.ensureDict(c)
		}
		s.cols[c].AppendGather(src, sel)
	}
	s.n += count
}

// ValueAt reconstructs the cell at row i, column c.
func (s *ColSet) ValueAt(i, c int) Value { return s.cols[c].Value(i) }

// IsNullAt reports whether the cell at row i, column c is NULL.
func (s *ColSet) IsNullAt(i, c int) bool { return s.cols[c].IsNull(i) }

// HashCols returns the seeded 64-bit key hash of row i's idx columns —
// bit-identical to Row.HashCols on the reconstructed row.
func (s *ColSet) HashCols(i int, idx []int, seed uint64) uint64 {
	h := hashing.Init64(seed)
	for _, c := range idx {
		h = s.cols[c].AddHash64At(i, h)
	}
	return hashing.Finish64(h)
}

// HasNullAt reports whether any of row i's idx columns is NULL (SQL join
// key semantics).
func (s *ColSet) HasNullAt(i int, idx []int) bool {
	for _, c := range idx {
		if s.cols[c].IsNull(i) {
			return true
		}
	}
	return false
}

// KeyEqualCols reports encoding equality of s's row i and o's row j over
// the respective column index lists (len(idx) == len(oidx)). Columns
// sharing a dictionary (always true when s == o) compare codes.
func (s *ColSet) KeyEqualCols(i int, idx []int, o *ColSet, j int, oidx []int) bool {
	for k := range idx {
		if !s.cols[idx[k]].KeyEqualAt(i, &o.cols[oidx[k]], j) {
			return false
		}
	}
	return true
}

// KeyEqualRow reports encoding equality of s's row i (idx columns)
// against a Row's ridx columns.
func (s *ColSet) KeyEqualRow(i int, idx []int, r Row, ridx []int) bool {
	for k := range idx {
		if !s.cols[idx[k]].Value(i).KeyEqual(r[ridx[k]]) {
			return false
		}
	}
	return true
}

// EncodeCols appends the canonical encoding of row i's idx columns to dst
// — byte-identical to Row.EncodeCols on the reconstructed row, so index
// probes from a ColSet hit exactly like row probes.
func (s *ColSet) EncodeCols(i int, idx []int, dst []byte) []byte {
	for _, c := range idx {
		dst = s.cols[c].appendEncoded(i, dst)
	}
	return dst
}

// CopyRowTo reconstructs row i into dst (len(dst) == Width).
func (s *ColSet) CopyRowTo(i int, dst Row) {
	for c := range s.cols {
		dst[c] = s.cols[c].Value(i)
	}
}
