package expr

import (
	"fmt"
	"sync"

	"github.com/sampleclean/svc/internal/relation"
)

// Vectorized expression evaluation. EvalVec is the column-at-a-time
// counterpart of Expr.Eval: instead of walking the expression tree once
// per row (an interface dispatch per node per row), it walks the tree
// once per batch and runs tight loops over typed column payloads. The
// semantics are exactly the scalar interpreter's — for every expression
// e, input row set, and selection, EvalVec produces cell i equal to
// e.Eval(row_i); the vectorized fast paths replicate the scalar kind
// rules (NULL comparisons are false, numeric promotion is per the
// operand kinds, cross-kind comparison orders by kind) and anything
// outside them falls back to per-cell Value operations, so the
// equivalence holds for mixed-kind and NULL-laden columns too. The
// columnar≡row property tests in internal/algebra pin this down against
// EvalMaterialized for whole plans.

// VecSource supplies columnar input to EvalVec: the column vector for a
// bound column index and the physical row count. relation.Batch
// implements it; row-major producers (scans, the estimator transforms)
// use a GatherSource.
type VecSource interface {
	Vec(col int) *relation.ColVec
	NumPhys() int
}

// GatherSource adapts row-major input to VecSource for one expression:
// it discovers which schema columns the expression reads and gathers
// just those columns of a row chunk into pooled scratch vectors. The
// fused columnar scan and the estimator's vectorized predicates share
// it. Release returns the scratch vectors to the pool; a GatherSource
// is single-goroutine, like the vectors it holds.
type GatherSource struct {
	idx  []int // gathered schema column indexes
	vecs []*relation.ColVec
	n    int
}

// NewGatherSource prepares a gather of the columns e references,
// resolved against schema. e is the unbound or bound expression —
// either way Columns reports the referenced names.
func NewGatherSource(schema relation.Schema, e Expr) *GatherSource {
	g := &GatherSource{}
	seen := map[int]bool{}
	for _, name := range e.Columns(nil) {
		if c := schema.ColIndex(name); c >= 0 && !seen[c] {
			seen[c] = true
			g.idx = append(g.idx, c)
		}
	}
	g.vecs = make([]*relation.ColVec, schema.NumCols())
	for _, c := range g.idx {
		g.vecs[c] = relation.GetVec()
	}
	return g
}

// Gather loads rows[lo:hi)'s referenced columns into the scratch
// vectors, replacing the previous chunk.
func (g *GatherSource) Gather(rows []relation.Row, lo, hi int) {
	for _, c := range g.idx {
		vec := g.vecs[c]
		vec.Reset()
		for i := lo; i < hi; i++ {
			vec.AppendValue(rows[i][c])
		}
	}
	g.n = hi - lo
}

// Release returns the scratch vectors to the pool.
func (g *GatherSource) Release() {
	for _, c := range g.idx {
		if g.vecs[c] != nil {
			relation.PutVec(g.vecs[c])
			g.vecs[c] = nil
		}
	}
}

// Vec implements VecSource.
func (g *GatherSource) Vec(col int) *relation.ColVec { return g.vecs[col] }

// NumPhys implements VecSource.
func (g *GatherSource) NumPhys() int { return g.n }

// CanVec reports whether e consists solely of operators the vectorized
// evaluator understands. Operators receiving an expression for which
// CanVec is false keep the row-at-a-time path.
func CanVec(e Expr) bool {
	switch t := e.(type) {
	case *colRef, constant:
		return true
	case *binary:
		return CanVec(t.l) && CanVec(t.r)
	case *compare:
		return CanVec(t.l) && CanVec(t.r)
	case *nary:
		for _, a := range t.args {
			if !CanVec(a) {
				return false
			}
		}
		return true
	case *not:
		return CanVec(t.e)
	case *coalesce:
		for _, a := range t.args {
			if !CanVec(a) {
				return false
			}
		}
		return true
	case *isNull:
		return CanVec(t.e)
	case *ifExpr:
		return CanVec(t.cond) && CanVec(t.then) && CanVec(t.els)
	case *fn:
		for _, a := range t.args {
			if !CanVec(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// EvalVec evaluates the bound expression e over src's selected rows (sel
// nil = all physical rows), appending one dense result cell per selected
// row to out. out is reset first. Like Expr.Eval, it panics on unbound
// columns; binding errors belong to plan-build time.
func EvalVec(e Expr, src VecSource, sel []int32, out *relation.ColVec) {
	out.Reset()
	evalVec(e, src, sel, out)
}

// FilterVec evaluates pred over src at sel and compacts sel in place to
// the rows where the predicate is truthy (Value.AsBool semantics, so a
// NULL result drops the row) — selection-vector filtering without moving
// a single cell. sel must be non-nil; the returned slice aliases it.
func FilterVec(pred Expr, src VecSource, sel []int32) []int32 {
	tmp := relation.GetVec()
	evalVec(pred, src, sel, tmp)
	kept := sel[:0]
	for k, i := range sel {
		if tmp.Truthy(k) {
			kept = append(kept, i)
		}
	}
	relation.PutVec(tmp)
	return kept
}

func selCount(src VecSource, sel []int32) int {
	if sel != nil {
		return len(sel)
	}
	return src.NumPhys()
}

func evalVec(e Expr, src VecSource, sel []int32, out *relation.ColVec) {
	switch t := e.(type) {
	case *colRef:
		if t.idx < 0 {
			panic(fmt.Sprintf("expr: evaluating unbound column %q", t.name))
		}
		v := src.Vec(t.idx)
		if sel == nil {
			out.CopyFrom(v)
		} else {
			out.GatherFrom(v, sel)
		}
	case constant:
		n := selCount(src, sel)
		for i := 0; i < n; i++ {
			out.AppendValue(t.v)
		}
	case *binary:
		l, r := relation.GetVec(), relation.GetVec()
		evalVec(t.l, src, sel, l)
		evalVec(t.r, src, sel, r)
		evalBinaryVec(t.op, l, r, out)
		relation.PutVec(l)
		relation.PutVec(r)
	case *compare:
		l, r := relation.GetVec(), relation.GetVec()
		evalVec(t.l, src, sel, l)
		evalVec(t.r, src, sel, r)
		evalCompareVec(t.op, l, r, out)
		relation.PutVec(l)
		relation.PutVec(r)
	case *nary:
		evalNaryVec(t, src, sel, out)
	case *not:
		tmp := relation.GetVec()
		evalVec(t.e, src, sel, tmp)
		for i, n := 0, tmp.Len(); i < n; i++ {
			out.AppendBool(!tmp.Truthy(i))
		}
		relation.PutVec(tmp)
	case *isNull:
		tmp := relation.GetVec()
		evalVec(t.e, src, sel, tmp)
		for i, n := 0, tmp.Len(); i < n; i++ {
			out.AppendBool(tmp.IsNull(i))
		}
		relation.PutVec(tmp)
	case *coalesce:
		args := make([]*relation.ColVec, len(t.args))
		for i, a := range t.args {
			args[i] = relation.GetVec()
			evalVec(a, src, sel, args[i])
		}
		n := selCount(src, sel)
		for i := 0; i < n; i++ {
			emitted := false
			for _, av := range args {
				if !av.IsNull(i) {
					out.AppendValue(av.Value(i))
					emitted = true
					break
				}
			}
			if !emitted {
				out.AppendNull()
			}
		}
		for _, av := range args {
			relation.PutVec(av)
		}
	case *ifExpr:
		cond, then, els := relation.GetVec(), relation.GetVec(), relation.GetVec()
		evalVec(t.cond, src, sel, cond)
		evalVec(t.then, src, sel, then)
		evalVec(t.els, src, sel, els)
		for i, n := 0, cond.Len(); i < n; i++ {
			if cond.Truthy(i) {
				out.AppendValue(then.Value(i))
			} else {
				out.AppendValue(els.Value(i))
			}
		}
		relation.PutVec(cond)
		relation.PutVec(then)
		relation.PutVec(els)
	case *fn:
		args := make([]*relation.ColVec, len(t.args))
		for i, a := range t.args {
			args[i] = relation.GetVec()
			evalVec(a, src, sel, args[i])
		}
		argBuf := make([]relation.Value, len(t.args))
		n := selCount(src, sel)
		for i := 0; i < n; i++ {
			for j, av := range args {
				argBuf[j] = av.Value(i)
			}
			out.AppendValue(t.impl(argBuf))
		}
		for _, av := range args {
			relation.PutVec(av)
		}
	default:
		panic(fmt.Sprintf("expr: EvalVec on unsupported expression %T (check CanVec first)", e))
	}
}

// evalNaryVec folds and/or over the argument vectors. Arguments are pure,
// so evaluating all of them (no short-circuit) is observationally
// identical to the scalar interpreter.
func evalNaryVec(t *nary, src VecSource, sel []int32, out *relation.ColVec) {
	n := selCount(src, sel)
	if len(t.args) == 0 {
		// And() is true, Or() is false, as in the scalar evaluator.
		for i := 0; i < n; i++ {
			out.AppendBool(t.op == "and")
		}
		return
	}
	acc := getBools(n)
	tmp := relation.GetVec()
	for ai, a := range t.args {
		tmp.Reset()
		evalVec(a, src, sel, tmp)
		if ai == 0 {
			for i := 0; i < n; i++ {
				acc[i] = tmp.Truthy(i)
			}
		} else if t.op == "and" {
			for i := 0; i < n; i++ {
				acc[i] = acc[i] && tmp.Truthy(i)
			}
		} else {
			for i := 0; i < n; i++ {
				acc[i] = acc[i] || tmp.Truthy(i)
			}
		}
	}
	relation.PutVec(tmp)
	for i := 0; i < n; i++ {
		out.AppendBool(acc[i])
	}
	putBools(acc)
}

func numericKind(k relation.Kind) bool {
	return k == relation.KindInt || k == relation.KindFloat || k == relation.KindBool
}

// evalCompareVec appends the boolean results of l op r. Fast paths cover
// uniform numeric×numeric (the scalar Compare's numeric branch: both
// sides promoted to float64, which is exact for the same int64s the
// scalar path would promote) and string×string; everything else goes
// through Value.Compare per cell.
func evalCompareVec(op CmpOp, l, r *relation.ColVec, out *relation.ColVec) {
	n := l.Len()
	lk, rk := l.Kind(), r.Kind()
	switch {
	case !l.Mixed() && !r.Mixed() && numericKind(lk) && numericKind(rk):
		lNull, rNull := l.HasNulls(), r.HasNulls()
		li, lf, lIsF := l.Int64s(), l.Float64s(), lk == relation.KindFloat
		ri, rf, rIsF := r.Int64s(), r.Float64s(), rk == relation.KindFloat
		for i := 0; i < n; i++ {
			if (lNull && l.IsNull(i)) || (rNull && r.IsNull(i)) {
				out.AppendBool(false)
				continue
			}
			var a, b float64
			if lIsF {
				a = lf[i]
			} else {
				a = float64(li[i])
			}
			if rIsF {
				b = rf[i]
			} else {
				b = float64(ri[i])
			}
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			out.AppendBool(cmpHolds(op, cmp))
		}
	case !l.Mixed() && !r.Mixed() && lk == relation.KindString && rk == relation.KindString &&
		l.IsDict() && l.Dict() == r.Dict() && (op == OpEq || op == OpNe):
		// Shared dictionary: interning is injective, so string equality is
		// code equality — one integer comparison per cell.
		lNull, rNull := l.HasNulls(), r.HasNulls()
		lc, rc := l.DictCodes(), r.DictCodes()
		for i := 0; i < n; i++ {
			if (lNull && l.IsNull(i)) || (rNull && r.IsNull(i)) {
				out.AppendBool(false)
				continue
			}
			out.AppendBool((lc[i] == rc[i]) == (op == OpEq))
		}
	case !l.Mixed() && !r.Mixed() && lk == relation.KindString && rk == relation.KindString:
		lNull, rNull := l.HasNulls(), r.HasNulls()
		if l.IsDict() || r.IsDict() {
			// Mismatched or one-sided dictionaries: decode per cell.
			for i := 0; i < n; i++ {
				if (lNull && l.IsNull(i)) || (rNull && r.IsNull(i)) {
					out.AppendBool(false)
					continue
				}
				a, b := l.StringAt(i), r.StringAt(i)
				cmp := 0
				if a < b {
					cmp = -1
				} else if a > b {
					cmp = 1
				}
				out.AppendBool(cmpHolds(op, cmp))
			}
			break
		}
		ls, rs := l.Strings(), r.Strings()
		for i := 0; i < n; i++ {
			if (lNull && l.IsNull(i)) || (rNull && r.IsNull(i)) {
				out.AppendBool(false)
				continue
			}
			cmp := 0
			if ls[i] < rs[i] {
				cmp = -1
			} else if ls[i] > rs[i] {
				cmp = 1
			}
			out.AppendBool(cmpHolds(op, cmp))
		}
	default:
		for i := 0; i < n; i++ {
			va, vb := l.Value(i), r.Value(i)
			if va.IsNull() || vb.IsNull() {
				out.AppendBool(false)
				continue
			}
			out.AppendBool(cmpHolds(op, va.Compare(vb)))
		}
	}
}

func cmpHolds(op CmpOp, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// evalBinaryVec appends l op r with the scalar numericOp promotion rules:
// NULL operands yield NULL, a float on either side promotes to float,
// division is always float and NULL on a zero divisor. Uniform numeric
// vectors run typed loops; anything else falls back to Value arithmetic.
func evalBinaryVec(op BinOp, l, r *relation.ColVec, out *relation.ColVec) {
	n := l.Len()
	lk, rk := l.Kind(), r.Kind()
	if !l.Mixed() && !r.Mixed() && numericKind(lk) && numericKind(rk) {
		lNull, rNull := l.HasNulls(), r.HasNulls()
		li, lf, lIsF := l.Int64s(), l.Float64s(), lk == relation.KindFloat
		ri, rf, rIsF := r.Int64s(), r.Float64s(), rk == relation.KindFloat
		fAt := func(p []int64, f []float64, isF bool, i int) float64 {
			if isF {
				return f[i]
			}
			return float64(p[i])
		}
		switch {
		case op == OpDiv:
			for i := 0; i < n; i++ {
				if (lNull && l.IsNull(i)) || (rNull && r.IsNull(i)) {
					out.AppendNull()
					continue
				}
				b := fAt(ri, rf, rIsF, i)
				if b == 0 {
					out.AppendNull()
					continue
				}
				out.AppendFloat64(fAt(li, lf, lIsF, i) / b)
			}
		case lIsF || rIsF:
			for i := 0; i < n; i++ {
				if (lNull && l.IsNull(i)) || (rNull && r.IsNull(i)) {
					out.AppendNull()
					continue
				}
				a, b := fAt(li, lf, lIsF, i), fAt(ri, rf, rIsF, i)
				switch op {
				case OpAdd:
					out.AppendFloat64(a + b)
				case OpSub:
					out.AppendFloat64(a - b)
				default:
					out.AppendFloat64(a * b)
				}
			}
		default: // int×int (bools count as ints, as in Value.AsInt)
			for i := 0; i < n; i++ {
				if (lNull && l.IsNull(i)) || (rNull && r.IsNull(i)) {
					out.AppendNull()
					continue
				}
				a, b := li[i], ri[i]
				switch op {
				case OpAdd:
					out.AppendInt64(a + b)
				case OpSub:
					out.AppendInt64(a - b)
				default:
					out.AppendInt64(a * b)
				}
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		va, vb := l.Value(i), r.Value(i)
		switch op {
		case OpAdd:
			out.AppendValue(va.Add(vb))
		case OpSub:
			out.AppendValue(va.Sub(vb))
		case OpMul:
			out.AppendValue(va.Mul(vb))
		default:
			out.AppendValue(va.Div(vb))
		}
	}
}

// boolPool recycles the and/or accumulator slices.
var boolPool = sync.Pool{New: func() any {
	s := make([]bool, 0, relation.BatchCap)
	return &s
}}

func getBools(n int) []bool {
	p := boolPool.Get().(*[]bool)
	s := *p
	if cap(s) < n {
		s = make([]bool, n)
	}
	return s[:n]
}

func putBools(s []bool) {
	s = s[:0]
	boolPool.Put(&s)
}
