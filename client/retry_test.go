package client

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffShape: exponential steps, Retry-After floor, cap, and the
// d/2 + (0, d/2] jitter band.
func TestBackoffShape(t *testing.T) {
	p := retryPolicy{base: 50 * time.Millisecond, max: 2 * time.Second, rng: func(n int64) int64 { return 0 }}
	// rng=0 makes the jitter draw its minimum: backoff == d/2.
	cases := []struct {
		i    int
		want time.Duration // expected un-jittered step d
	}{
		{0, 50 * time.Millisecond},
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{5, 1600 * time.Millisecond},
		{6, 2 * time.Second},  // capped
		{40, 2 * time.Second}, // shift overflow → cap
	}
	for _, c := range cases {
		if got := p.backoff(c.i, nil); got != c.want/2 {
			t.Errorf("backoff(%d) = %v, want %v (d=%v at min jitter)", c.i, got, c.want/2, c.want)
		}
	}
	// Max jitter draw lands at d/2 + d/2 = d.
	p.rng = func(n int64) int64 { return n - 1 }
	if got := p.backoff(0, nil); got != 50*time.Millisecond {
		t.Errorf("max jitter backoff(0) = %v, want 50ms", got)
	}
	// The server's Retry-After raises the floor past the computed step...
	p.rng = func(n int64) int64 { return 0 }
	err := &APIError{StatusCode: 503, RetryAfter: time.Second}
	if got := p.backoff(0, err); got != 500*time.Millisecond {
		t.Errorf("Retry-After floor: got %v, want 500ms (d=1s at min jitter)", got)
	}
	// ...but never past the cap.
	err.RetryAfter = time.Minute
	if got := p.backoff(0, err); got != time.Second {
		t.Errorf("Retry-After cap: got %v, want 1s (d=2s cap at min jitter)", got)
	}
}

// TestRetryOn503: the client retries overload sheds (honoring
// Retry-After) until the server admits the request, and surfaces the
// final error when attempts run out.
func TestRetryOn503(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"kind": "estimate"})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := New(srv.URL, WithRetry(5))
	c.retry.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.retry.rng = func(n int64) int64 { return 0 }

	resp, err := c.Query("SELECT COUNT(1) FROM v")
	if err != nil {
		t.Fatalf("should succeed on attempt 3: %v", err)
	}
	if resp.Kind != "estimate" {
		t.Fatalf("unexpected response %+v", resp)
	}
	if hits.Load() != 3 {
		t.Fatalf("want 3 attempts, got %d", hits.Load())
	}
	if len(slept) != 2 {
		t.Fatalf("want 2 backoff sleeps, got %v", slept)
	}
	// Retry-After (7s) floors every step but the 2s cap bounds it: both
	// sleeps are cap/2 at the minimum jitter draw.
	for i, d := range slept {
		if d != time.Second {
			t.Errorf("sleep %d = %v, want 1s (2s cap at min jitter)", i, d)
		}
	}
}

// TestRetryGivesUp: attempts exhausted → the last 503 surfaces, with its
// Retry-After parsed for the caller.
func TestRetryGivesUp(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "overloaded"})
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetryPolicy(3, 10*time.Millisecond, 50*time.Millisecond))
	c.retry.sleep = func(time.Duration) {}
	_, err := c.Query("SELECT COUNT(1) FROM v")
	if !IsOverloaded(err) {
		t.Fatalf("want the final 503, got %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("want exactly 3 attempts, got %d", hits.Load())
	}
	ae := err.(*APIError)
	if ae.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After not parsed: %+v", ae)
	}
}

// TestNoRetryOnOtherErrors: only 503 sheds are retried — a 400 is the
// caller's fault and a 504 may have done work server-side.
func TestNoRetryOnOtherErrors(t *testing.T) {
	for _, code := range []int{400, 404, 500, 504} {
		var hits atomic.Int32
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]string{"error": "nope"})
		}))
		c := New(srv.URL, WithRetry(5))
		c.retry.sleep = func(time.Duration) {}
		_, err := c.Query("SELECT COUNT(1) FROM v")
		srv.Close()
		if err == nil {
			t.Fatalf("code %d: want error", code)
		}
		if hits.Load() != 1 {
			t.Fatalf("code %d: %d attempts, want 1 (no retry)", code, hits.Load())
		}
	}
}

// TestRetryDisabledByDefault: a client without WithRetry sends exactly
// one request.
func TestRetryDisabledByDefault(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := New(srv.URL)
	if _, err := c.Query("SELECT COUNT(1) FROM v"); !IsOverloaded(err) {
		t.Fatalf("want 503, got %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("default client retried: %d attempts", hits.Load())
	}
}
