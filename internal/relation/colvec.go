package relation

import (
	"sync"
	"sync/atomic"
)

// ColVec is a typed column vector: the cells of one attribute across the
// rows of a columnar Batch, stored kind-major instead of row-major. A
// vector adopts the kind of its first non-NULL cell and keeps that kind's
// payloads in a flat typed slice (int64 for ints and bools, float64 for
// floats, string headers for strings) with NULLs recorded in a bitmap, so
// vectorized operators (expr.EvalVec) run tight loops over primitive
// slices instead of switching on a 40-byte Value per cell.
//
// Cells of a second kind demote the vector to the mixed representation —
// a plain []Value — which every accessor honors; typed fast paths check
// Mixed() first. The zero ColVec is an empty vector; Reset empties a
// vector while keeping every payload's capacity, which is what lets the
// batch pool recycle vectors across pipeline drains with no per-cycle
// allocations.
//
// A ColVec is not safe for concurrent mutation; pipelines hand each
// batch (and its vectors) to one goroutine at a time.
type ColVec struct {
	kind    Kind // kind of non-null cells; KindNull until the first one
	n       int
	hasNull bool
	nulls   []uint64 // bitmap (1 = NULL); tracked only once hasNull
	ints    []int64  // KindInt / KindBool payloads
	floats  []float64
	strs    []string
	mixed   bool
	vals    []Value // mixed fallback; authoritative when mixed
}

// Reset empties the vector, keeping payload capacity for reuse.
func (v *ColVec) Reset() {
	v.kind = KindNull
	v.n = 0
	v.hasNull = false
	v.mixed = false
	v.nulls = v.nulls[:0]
	v.ints = v.ints[:0]
	v.floats = v.floats[:0]
	v.strs = v.strs[:0]
	v.vals = v.vals[:0]
}

// Len reports the number of cells.
func (v *ColVec) Len() int { return v.n }

// Kind reports the adopted cell kind: KindNull while the vector is empty
// or all-NULL, otherwise the kind of its non-null cells. Meaningless when
// Mixed.
func (v *ColVec) Kind() Kind { return v.kind }

// Mixed reports whether the vector fell back to per-cell Values because
// it holds more than one non-null kind.
func (v *ColVec) Mixed() bool { return v.mixed }

// HasNulls reports whether any cell is NULL.
func (v *ColVec) HasNulls() bool {
	if v.mixed {
		for _, val := range v.vals {
			if val.IsNull() {
				return true
			}
		}
		return false
	}
	return v.hasNull || (v.kind == KindNull && v.n > 0)
}

// IsNull reports whether cell i is NULL.
func (v *ColVec) IsNull(i int) bool {
	if v.mixed {
		return v.vals[i].IsNull()
	}
	if v.kind == KindNull {
		return true
	}
	return v.hasNull && v.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// Int64s returns the int64 payload slice, valid when Kind is KindInt or
// KindBool and not Mixed; NULL slots hold zeroes (check IsNull).
func (v *ColVec) Int64s() []int64 { return v.ints }

// Float64s returns the float64 payload slice (Kind == KindFloat, not
// Mixed); NULL slots hold zeroes.
func (v *ColVec) Float64s() []float64 { return v.floats }

// Strings returns the string payload slice (Kind == KindString, not
// Mixed); NULL slots hold empty strings.
func (v *ColVec) Strings() []string { return v.strs }

// Value reconstructs cell i as a scalar Value — the codec between the
// columnar and the row representation. Round-tripping any Value through
// AppendValue and Value(i) is exact for every kind including NULL (the
// codec property test fuzzes this).
func (v *ColVec) Value(i int) Value {
	if v.mixed {
		return v.vals[i]
	}
	if v.kind == KindNull || (v.hasNull && v.nulls[i>>6]&(1<<(uint(i)&63)) != 0) {
		return Value{}
	}
	switch v.kind {
	case KindInt, KindBool:
		return Value{kind: v.kind, i: v.ints[i]}
	case KindFloat:
		return Value{kind: KindFloat, f: v.floats[i]}
	default: // KindString
		return Value{kind: KindString, s: v.strs[i]}
	}
}

// AppendValue appends one cell, adopting the vector's kind from the first
// non-null cell and demoting to mixed when kinds disagree.
func (v *ColVec) AppendValue(val Value) {
	if v.mixed {
		v.vals = append(v.vals, val)
		v.n++
		return
	}
	k := val.kind
	if k == KindNull {
		if v.kind == KindNull {
			v.n++ // still the all-NULL prefix: no payload storage yet
			return
		}
		v.appendTypedNull()
		return
	}
	if v.kind == KindNull {
		v.adoptKind(k)
	} else if k != v.kind {
		v.demoteMixed()
		v.vals = append(v.vals, val)
		v.n++
		return
	}
	switch k {
	case KindInt, KindBool:
		v.ints = append(v.ints, val.i)
	case KindFloat:
		v.floats = append(v.floats, val.f)
	default: // KindString
		v.strs = append(v.strs, val.s)
	}
	if v.hasNull {
		v.growNulls()
	}
	v.n++
}

// AppendNull appends a NULL cell.
func (v *ColVec) AppendNull() { v.AppendValue(Value{}) }

// AppendInt64 appends a non-null KindInt cell. The vector must be empty,
// all-NULL, or already of kind KindInt (vectorized producers guarantee
// this; AppendValue handles the general case).
func (v *ColVec) AppendInt64(x int64) {
	if v.mixed || (v.kind != KindNull && v.kind != KindInt) {
		v.AppendValue(Value{kind: KindInt, i: x})
		return
	}
	if v.kind == KindNull {
		v.adoptKind(KindInt)
	}
	v.ints = append(v.ints, x)
	if v.hasNull {
		v.growNulls()
	}
	v.n++
}

// AppendFloat64 appends a non-null KindFloat cell (see AppendInt64).
func (v *ColVec) AppendFloat64(x float64) {
	if v.mixed || (v.kind != KindNull && v.kind != KindFloat) {
		v.AppendValue(Value{kind: KindFloat, f: x})
		return
	}
	if v.kind == KindNull {
		v.adoptKind(KindFloat)
	}
	v.floats = append(v.floats, x)
	if v.hasNull {
		v.growNulls()
	}
	v.n++
}

// AppendBool appends a non-null KindBool cell (see AppendInt64).
func (v *ColVec) AppendBool(b bool) {
	var i int64
	if b {
		i = 1
	}
	if v.mixed || (v.kind != KindNull && v.kind != KindBool) {
		v.AppendValue(Value{kind: KindBool, i: i})
		return
	}
	if v.kind == KindNull {
		v.adoptKind(KindBool)
	}
	v.ints = append(v.ints, i)
	if v.hasNull {
		v.growNulls()
	}
	v.n++
}

// Truthy reports cell i's truthiness with Value.AsBool semantics (NULL is
// false) — the predicate-result read used by selection-vector filtering.
func (v *ColVec) Truthy(i int) bool {
	if v.mixed {
		return v.vals[i].AsBool()
	}
	if v.kind == KindNull || (v.hasNull && v.nulls[i>>6]&(1<<(uint(i)&63)) != 0) {
		return false
	}
	switch v.kind {
	case KindInt, KindBool:
		return v.ints[i] != 0
	case KindFloat:
		return v.floats[i] != 0
	default:
		return false
	}
}

// CopyFrom resets v and copies all of src's cells with typed bulk copies.
func (v *ColVec) CopyFrom(src *ColVec) {
	v.Reset()
	if src.mixed {
		v.mixed = true
		v.vals = append(v.vals, src.vals...)
		v.n = src.n
		return
	}
	v.kind = src.kind
	v.n = src.n
	v.hasNull = src.hasNull
	v.nulls = append(v.nulls, src.nulls...)
	v.ints = append(v.ints, src.ints...)
	v.floats = append(v.floats, src.floats...)
	v.strs = append(v.strs, src.strs...)
}

// GatherFrom resets v and copies src's cells at the selected physical
// positions, producing a dense vector of len(sel) cells.
func (v *ColVec) GatherFrom(src *ColVec, sel []int32) {
	v.Reset()
	if src.mixed {
		v.mixed = true
		for _, i := range sel {
			v.vals = append(v.vals, src.vals[int(i)])
		}
		v.n = len(sel)
		return
	}
	if src.kind == KindNull {
		v.n = len(sel)
		return
	}
	if !src.hasNull {
		v.kind = src.kind
		switch src.kind {
		case KindInt, KindBool:
			for _, i := range sel {
				v.ints = append(v.ints, src.ints[int(i)])
			}
		case KindFloat:
			for _, i := range sel {
				v.floats = append(v.floats, src.floats[int(i)])
			}
		default:
			for _, i := range sel {
				v.strs = append(v.strs, src.strs[int(i)])
			}
		}
		v.n = len(sel)
		return
	}
	for _, i := range sel {
		v.AppendValue(src.Value(int(i)))
	}
}

// appendEncoded appends the canonical encoding of cell i to dst (the same
// injective codec as Value.appendEncoded, so columnar key construction is
// byte-identical to the row pipeline's).
func (v *ColVec) appendEncoded(i int, dst []byte) []byte {
	return v.Value(i).appendEncoded(dst)
}

// appendTypedNull appends a NULL to a typed (non-empty-kind) vector.
func (v *ColVec) appendTypedNull() {
	if !v.hasNull {
		v.hasNull = true
		v.nulls = v.nulls[:0]
		for w := 0; w*64 < v.n; w++ {
			v.nulls = append(v.nulls, 0)
		}
	}
	switch v.kind {
	case KindInt, KindBool:
		v.ints = append(v.ints, 0)
	case KindFloat:
		v.floats = append(v.floats, 0)
	default:
		v.strs = append(v.strs, "")
	}
	v.growNulls()
	v.nulls[v.n>>6] |= 1 << (uint(v.n) & 63)
	v.n++
}

// adoptKind turns an empty or all-NULL vector into a typed one of kind k,
// backfilling payload zeroes and NULL bits for the existing prefix.
func (v *ColVec) adoptKind(k Kind) {
	v.kind = k
	for i := 0; i < v.n; i++ {
		switch k {
		case KindInt, KindBool:
			v.ints = append(v.ints, 0)
		case KindFloat:
			v.floats = append(v.floats, 0)
		default:
			v.strs = append(v.strs, "")
		}
	}
	if v.n > 0 {
		v.hasNull = true
		v.nulls = v.nulls[:0]
		for w := 0; w*64 < v.n; w++ {
			v.nulls = append(v.nulls, 0)
		}
		for i := 0; i < v.n; i++ {
			v.nulls[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// demoteMixed converts the vector to the per-cell Value representation.
func (v *ColVec) demoteMixed() {
	v.vals = v.vals[:0]
	for i := 0; i < v.n; i++ {
		v.vals = append(v.vals, v.Value(i))
	}
	v.mixed = true
}

// growNulls keeps the bitmap covering n+1 cells (call before n++).
func (v *ColVec) growNulls() {
	if len(v.nulls)*64 < v.n+1 {
		v.nulls = append(v.nulls, 0)
	}
}

// ----------------------------------------------------------- scratch pool

// vecPool recycles scratch vectors used by vectorized expression
// evaluation (expr.EvalVec intermediates). Batch-owned vectors are pooled
// with their batch instead.
var vecPool = sync.Pool{New: func() any {
	poolCounters.vecNews.Add(1)
	return new(ColVec)
}}

// GetVec returns an empty scratch vector from the pool.
func GetVec() *ColVec {
	poolCounters.vecGets.Add(1)
	v := vecPool.Get().(*ColVec)
	v.Reset()
	return v
}

// PutVec returns a scratch vector to the pool. The caller must not use it
// afterwards.
func PutVec(v *ColVec) { vecPool.Put(v) }

// ----------------------------------------------------------- pool gauges

// poolCounters tracks pooling effectiveness for the serving /stats
// endpoint: a hit rate that decays means steady-state drains started
// allocating again (a pooling regression).
var poolCounters struct {
	batchGets atomic.Uint64
	batchNews atomic.Uint64
	vecGets   atomic.Uint64
	vecNews   atomic.Uint64
}

// PoolCounters is a snapshot of the batch/vector pool counters.
type PoolCounters struct {
	// BatchGets counts GetBatch calls; BatchNews counts the subset that
	// had to allocate a fresh Batch (pool miss). Hit rate = 1 - News/Gets.
	BatchGets, BatchNews uint64
	// VecGets/VecNews are the same for scratch column vectors (GetVec).
	VecGets, VecNews uint64
}

// BatchHitRate returns the batch pool hit rate in [0, 1] (1 when idle).
func (p PoolCounters) BatchHitRate() float64 { return hitRate(p.BatchGets, p.BatchNews) }

// VecHitRate returns the scratch-vector pool hit rate in [0, 1].
func (p PoolCounters) VecHitRate() float64 { return hitRate(p.VecGets, p.VecNews) }

func hitRate(gets, news uint64) float64 {
	if gets == 0 {
		return 1
	}
	if news > gets {
		news = gets
	}
	return 1 - float64(news)/float64(gets)
}

// ReadPoolCounters returns a snapshot of the pool counters.
func ReadPoolCounters() PoolCounters {
	return PoolCounters{
		BatchGets: poolCounters.batchGets.Load(),
		BatchNews: poolCounters.batchNews.Load(),
		VecGets:   poolCounters.vecGets.Load(),
		VecNews:   poolCounters.vecNews.Load(),
	}
}
