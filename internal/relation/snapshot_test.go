package relation

import (
	"fmt"
	"sync"
	"testing"
)

func snapSchema() Schema {
	return NewSchema([]Column{
		{Name: "id", Type: KindInt},
		{Name: "x", Type: KindFloat},
	}, "id")
}

func snapRow(id int, x float64) Row { return Row{Int(int64(id)), Float(x)} }

// TestSnapshotIsolation: mutations after Snapshot must not be visible
// through the snapshot, across every mutating operation.
func TestSnapshotIsolation(t *testing.T) {
	r := New(snapSchema())
	for i := 0; i < 10; i++ {
		r.MustInsert(snapRow(i, float64(i)))
	}
	snap := r.Snapshot()
	if snap.Len() != 10 {
		t.Fatalf("snapshot has %d rows, want 10", snap.Len())
	}

	// Insert, upsert (in-place replace!), delete, delete-where, sort.
	r.MustInsert(snapRow(100, 100))
	if _, err := r.Upsert(snapRow(3, -3)); err != nil {
		t.Fatal(err)
	}
	if !r.DeleteByEncodedKey(snapRow(7, 0).KeyOf([]int{0})) {
		t.Fatal("delete failed")
	}
	r.DeleteWhere(func(row Row) bool { return row[0].AsInt() == 5 })
	r.SortByKey()

	if snap.Len() != 10 {
		t.Fatalf("snapshot length changed to %d", snap.Len())
	}
	for i := 0; i < 10; i++ {
		row, ok := snap.Get(Int(int64(i)))
		if !ok {
			t.Fatalf("snapshot lost key %d", i)
		}
		if row[1].AsFloat() != float64(i) {
			t.Fatalf("snapshot row %d mutated: %v", i, row)
		}
	}
	if _, ok := snap.Get(Int(100)); ok {
		t.Fatal("snapshot sees post-snapshot insert")
	}

	// The live relation has all the mutations.
	if _, ok := r.Get(Int(7)); ok {
		t.Fatal("live relation still has deleted key")
	}
	if row, _ := r.Get(Int(3)); row[1].AsFloat() != -3 {
		t.Fatal("live relation missed the upsert")
	}
}

// TestSnapshotVersioning: versions are shared until detach, then diverge.
func TestSnapshotVersioning(t *testing.T) {
	r := New(snapSchema())
	r.MustInsert(snapRow(1, 1))
	v0 := r.Version()
	snap := r.Snapshot()
	if snap.Version() != v0 || r.Version() != v0 {
		t.Fatalf("snapshot should share version %d, got snap=%d live=%d", v0, snap.Version(), r.Version())
	}
	r.MustInsert(snapRow(2, 2))
	if r.Version() == v0 {
		t.Fatal("mutation after snapshot should bump the live version")
	}
	if snap.Version() != v0 {
		t.Fatal("snapshot version must not move")
	}
	// Second mutation with no intervening snapshot: no second detach.
	v1 := r.Version()
	r.MustInsert(snapRow(3, 3))
	if r.Version() != v1 {
		t.Fatal("mutation without a shared snapshot should not detach again")
	}
}

// TestSnapshotOfSnapshot: snapshots chain; all observe the same state.
func TestSnapshotOfSnapshot(t *testing.T) {
	r := New(snapSchema())
	r.MustInsert(snapRow(1, 1))
	s1 := r.Snapshot()
	s2 := s1.Snapshot()
	r.MustInsert(snapRow(2, 2))
	if s1.Len() != 1 || s2.Len() != 1 {
		t.Fatalf("chained snapshots see %d/%d rows, want 1/1", s1.Len(), s2.Len())
	}
}

// TestSnapshotSecondaryIndexes: a snapshot keeps probing its secondary
// indexes even while the live side rebuilds or adds indexes.
func TestSnapshotSecondaryIndexes(t *testing.T) {
	r := New(snapSchema())
	for i := 0; i < 20; i++ {
		r.MustInsert(Row{Int(int64(i)), Float(float64(i % 4))})
	}
	r.BuildIndex([]int{1})
	snap := r.Snapshot()
	if !snap.HasIndex([]int{1}) {
		t.Fatal("snapshot should inherit the secondary index")
	}
	// Live side: build another index (must not disturb the snapshot's map)
	// and then mutate (which drops live secondaries but not the snapshot's).
	r.BuildIndex([]int{0, 1})
	r.MustInsert(Row{Int(99), Float(0)})
	if !snap.HasIndex([]int{1}) {
		t.Fatal("snapshot lost its index after live-side changes")
	}
	if snap.HasIndex([]int{0, 1}) {
		t.Fatal("snapshot sees an index built after it was taken")
	}
	var kb KeyBuf
	key := kb.Row(Row{Float(1)}, []int{0})
	got := snap.ProbeBytes([]int{1}, key, nil)
	if len(got) != 5 {
		t.Fatalf("snapshot probe returned %d rows, want 5", len(got))
	}
}

// TestSnapshotConcurrentReaders: many goroutines scan and probe snapshots
// while a single writer keeps mutating and re-snapshotting. Run under
// -race, this is the relation-level half of the serving guarantee.
func TestSnapshotConcurrentReaders(t *testing.T) {
	r := New(snapSchema())
	for i := 0; i < 50; i++ {
		r.MustInsert(snapRow(i, float64(i)))
	}
	var mu sync.Mutex // writer lock: Snapshot must be serialized with writers
	published := make(chan *Relation, 64)
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(published)
		for i := 50; i < 250; i++ {
			mu.Lock()
			r.MustInsert(snapRow(i, float64(i)))
			if i%3 == 0 {
				r.DeleteByEncodedKey(snapRow(i-25, 0).KeyOf([]int{0}))
			}
			snap := r.Snapshot()
			mu.Unlock()
			select {
			case published <- snap:
			default:
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for snap := range published {
				n := 0
				for _, row := range snap.Rows() {
					if len(row) != 2 {
						panic(fmt.Sprintf("torn row %v", row))
					}
					n++
				}
				if n != snap.Len() {
					panic("row count mismatch")
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
}
