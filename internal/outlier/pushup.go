package outlier

import (
	"fmt"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

// outlierBinding is the context name under which the indexed records are
// bound during push-up evaluation.
func outlierBinding(table string) string { return "⊙" + table }

// Eligible implements the Definition 5 base case: an outlier index on a
// base relation propagates upward only if that relation is being sampled,
// i.e. the cleaner's push-down reached a scan of the table or one of its
// delta relations.
func Eligible(c *clean.Cleaner, ix *Index) bool {
	found := false
	algebra.Walk(c.Expression(), func(n algebra.Node) {
		h, ok := n.(*algebra.HashFilterNode)
		if !ok {
			return
		}
		s, ok := h.Children()[0].(*algebra.ScanNode)
		if !ok {
			return
		}
		switch s.Name() {
		case ix.table, db.InsOf(ix.table), db.DelOf(ix.table):
			found = true
		}
	})
	return found
}

// Materializer propagates a base-relation outlier index up a view
// definition (Definition 5) to materialize the outlier partition O ⊆ S′.
type Materializer struct {
	v       *view.View
	ix      *Index
	agg     *algebra.AggregateNode // nil for SPJ views
	inner   algebra.Node           // the SPJ body (below γ when agg != nil)
	ctPlan  algebra.Node           // change table over the delta stream (agg only)
	ctAggs  []algebra.AggSpec
	upPlan  algebra.Node // inner with outlier scan substituted, other scans updated
	touches bool         // plan actually references the indexed table
}

// NewMaterializer validates that the view's shape supports push-up
// (σ/Π/⋈ body, optionally under a single count/sum γ) and prepares the
// substituted plans.
func NewMaterializer(v *view.View, ix *Index) (*Materializer, error) {
	mz := &Materializer{v: v, ix: ix}
	plan := v.Definition().Plan
	if agg, ok := plan.(*algebra.AggregateNode); ok {
		mz.agg = agg
		mz.inner = agg.Children()[0]
		for _, s := range agg.Aggs() {
			switch s.Func {
			case algebra.Count:
				mz.ctAggs = append(mz.ctAggs, algebra.SumAs(expr.Col(view.MultCol), s.As))
			case algebra.Sum:
				mz.ctAggs = append(mz.ctAggs, algebra.SumAs(expr.Mul(expr.Col(view.MultCol), s.Input), s.As))
			default:
				return nil, fmt.Errorf("outlier: %s aggregate not supported by push-up", s.Func)
			}
		}
		delta, err := view.DeltaPlan(mz.inner)
		if err != nil {
			return nil, fmt.Errorf("outlier: %w", err)
		}
		ct, err := algebra.GroupBy(delta, agg.GroupKeys(), mz.ctAggs...)
		if err != nil {
			return nil, err
		}
		mz.ctPlan = ct
	} else {
		mz.inner = plan
	}
	up, err := mz.substitute(mz.inner)
	if err != nil {
		return nil, err
	}
	mz.upPlan = up
	if !mz.touches {
		return nil, fmt.Errorf("outlier: view %s does not read table %s", v.Name(), ix.table)
	}
	return mz, nil
}

// substitute replaces the indexed table's scan with the outlier binding
// and all other scans with their updated forms (R − ∇R) ∪ ΔR.
func (mz *Materializer) substitute(n algebra.Node) (algebra.Node, error) {
	if s, ok := n.(*algebra.ScanNode); ok {
		if s.Name() == mz.ix.table {
			mz.touches = true
			return algebra.Scan(outlierBinding(s.Name()), s.Schema()), nil
		}
		base := algebra.Scan(s.Name(), s.Schema())
		del := algebra.Scan(db.DelOf(s.Name()), s.Schema())
		ins := algebra.Scan(db.InsOf(s.Name()), s.Schema())
		minus, err := algebra.Difference(base, del)
		if err != nil {
			return nil, err
		}
		return algebra.Union(minus, ins)
	}
	children := n.Children()
	if len(children) == 0 {
		return n, nil
	}
	newCh := make([]algebra.Node, len(children))
	for i, c := range children {
		nc, err := mz.substitute(c)
		if err != nil {
			return nil, err
		}
		newCh[i] = nc
	}
	return n.WithChildren(newCh), nil
}

// Materialize evaluates the push-up against the current staged deltas and
// returns the outlier partition for the estimators: up-to-date rows of S′
// whose provenance includes an indexed record, plus the stale view's rows
// under the same keys.
func (mz *Materializer) Materialize(d *db.Database) (*estimator.OutlierSet, error) {
	return mz.MaterializeAt(d.Pin(), mz.v.Data())
}

// MaterializeAt is Materialize against a pinned catalog version and an
// explicit stale-view relation — the snapshot-serving form. The caller is
// responsible for having built the index from the same version
// (Index.BuildFromVersion) and for serializing index mutations.
func (mz *Materializer) MaterializeAt(pin *db.Version, viewData *relation.Relation) (*estimator.OutlierSet, error) {
	return mz.MaterializeRecords(pin, viewData, mz.ix.Records())
}

// MaterializeRecords is MaterializeAt with the indexed records supplied
// explicitly, decoupling the evaluation from the Materializer's own Index
// instance. Because the Materializer's plans are immutable after
// construction, any number of MaterializeRecords evaluations (each with
// its own records relation, e.g. built from different pinned versions)
// run concurrently.
func (mz *Materializer) MaterializeRecords(pin *db.Version, viewData, records *relation.Relation) (*estimator.OutlierSet, error) {
	ctx := pin.Context()
	ctx.Bind(view.StaleName(mz.v.Name()), viewData)
	ctx.Bind(outlierBinding(mz.ix.table), records)

	contrib, err := mz.upPlan.Eval(ctx)
	if err != nil {
		return nil, fmt.Errorf("outlier: push-up for %s: %w", mz.v.Name(), err)
	}

	o := &estimator.OutlierSet{
		Fresh: relation.New(mz.v.Schema()),
		Stale: relation.New(mz.v.Schema()),
	}
	keyIdx := mz.v.Schema().Key()

	if mz.agg == nil {
		// SPJ view: the contributing rows are exactly the outlier view
		// rows.
		for _, row := range contrib.Rows() {
			if _, err := o.Fresh.Upsert(row); err != nil {
				return nil, err
			}
		}
		mz.fillStale(o, keyIdx, viewData)
		mz.fillRetired(pin, o, viewData)
		return o, nil
	}

	// Aggregate view (Definition 5 γ rule): the groups touched by outlier
	// records, with their FULL up-to-date aggregates — stale row merged
	// with the change table for that group.
	groupIdxInner := make([]int, 0, len(mz.agg.GroupKeys()))
	for _, g := range mz.agg.GroupKeys() {
		j := contrib.Schema().ColIndex(g)
		if j < 0 {
			return nil, fmt.Errorf("outlier: group key %q missing from push-up output", g)
		}
		groupIdxInner = append(groupIdxInner, j)
	}
	ct, err := mz.ctPlan.Eval(ctx)
	if err != nil {
		return nil, fmt.Errorf("outlier: change table: %w", err)
	}

	nGroup := len(mz.agg.GroupKeys())
	specs := mz.agg.Aggs()
	seen := map[string]bool{}
	for _, row := range contrib.Rows() {
		gk := row.KeyOf(groupIdxInner)
		if seen[gk] {
			continue
		}
		seen[gk] = true
		staleRow, hasStale := viewData.GetByEncodedKey(gk)
		ctRow, hasCT := ct.GetByEncodedKey(gk)

		out := make(relation.Row, mz.v.Schema().NumCols())
		for i, j := range groupIdxInner {
			out[i] = row[j]
		}
		// A group is dropped only when a count column proves it empty;
		// without a count there is no superfluous-row evidence.
		alive := true
		for _, spec := range specs {
			if spec.Func == algebra.Count {
				alive = false
				break
			}
		}
		for i, spec := range specs {
			cur := 0.0
			if hasStale && !staleRow[nGroup+i].IsNull() {
				cur = staleRow[nGroup+i].AsFloat()
			}
			if hasCT && !ctRow[nGroup+i].IsNull() {
				cur += ctRow[nGroup+i].AsFloat()
			}
			if spec.Func == algebra.Count {
				out[nGroup+i] = relation.Int(int64(cur + 0.5))
				if cur > 0 {
					alive = true
				}
			} else {
				out[nGroup+i] = relation.Float(cur)
			}
		}
		if !alive {
			continue // group vanished (superfluous)
		}
		if _, err := o.Fresh.Upsert(out); err != nil {
			return nil, err
		}
	}
	mz.fillStale(o, keyIdx, viewData)
	return o, nil
}

// fillStale copies the stale view's rows for every outlier key.
func (mz *Materializer) fillStale(o *estimator.OutlierSet, keyIdx []int, viewData *relation.Relation) {
	for _, row := range o.Fresh.Rows() {
		if st, ok := viewData.GetByEncodedKey(row.KeyOf(keyIdx)); ok {
			_, _ = o.Stale.Upsert(st)
		}
	}
}

// fillRetired adds the stale view's rows for indexed-grade records that
// left S′ entirely: staged deletions whose indexed attribute exceeds the
// threshold (a retired outlier). Their removal is exactly the kind of
// extreme correction the index exists to take out of the sample — left
// unhandled, it re-enters the sampled remainder and breaks the Section 6
// variance-reduction guarantee. Keys that a staged update re-inserts are
// skipped (their fresh half is not in the partition, so they must stay
// on the sampled path). Provenance is traced by column name, so this
// applies only when the view's key columns survive unrenamed from the
// indexed table — the eligible-SPJ case; aggregate views route retired
// deltas through the change table instead.
func (mz *Materializer) fillRetired(pin *db.Version, o *estimator.OutlierSet, viewData *relation.Relation) {
	del := pin.Deletions(mz.ix.table)
	if del == nil || del.Len() == 0 {
		return
	}
	tblSchema := del.Schema()
	attrIdx := tblSchema.ColIndex(mz.ix.attr)
	if attrIdx < 0 {
		return
	}
	viewKeyNames := mz.v.Schema().KeyNames()
	tblKeyIdx := make([]int, len(viewKeyNames))
	for i, name := range viewKeyNames {
		j := tblSchema.ColIndex(name)
		if j < 0 {
			return
		}
		tblKeyIdx[i] = j
	}
	ins := pin.Insertions(mz.ix.table)
	tblKey := tblSchema.Key()
	for _, row := range del.Rows() {
		v := row[attrIdx]
		if v.IsNull() || v.AsFloat() <= mz.ix.Threshold() {
			continue
		}
		if ins != nil {
			if _, reinserted := ins.GetByEncodedKey(row.KeyOf(tblKey)); reinserted {
				continue
			}
		}
		k := row.KeyOf(tblKeyIdx)
		if _, ok := o.Fresh.GetByEncodedKey(k); ok {
			continue
		}
		if st, ok := viewData.GetByEncodedKey(k); ok {
			_, _ = o.Stale.Upsert(st)
		}
	}
}
