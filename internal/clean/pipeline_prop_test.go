package clean_test

// Property/fuzz test for the batched execution pipeline: over the Fig. 4a
// join-view workload (random staged delta batches, both maintenance
// strategies), the pipelined Node.Eval must be row-for-row identical to
// the materialized evaluation (algebra.EvalMaterialized) — for the real
// maintenance and cleaning expressions AND for randomly composed plans
// over the same bound relations, serially and with 4 workers.

import (
	"math/rand"
	"testing"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

// planGen composes random plans over a set of named relations, tracking
// schemas so every generated plan is well formed.
type planGen struct {
	rng   *rand.Rand
	rels  map[string]relation.Schema
	names []string
	uniq  int
}

func newPlanGen(rng *rand.Rand, pin *db.Version) *planGen {
	g := &planGen{rng: rng, rels: map[string]relation.Schema{}}
	for _, name := range pin.Tables() {
		g.add(name, pin.Base(name).Schema())
		g.add(db.InsOf(name), pin.Insertions(name).Schema())
		g.add(db.DelOf(name), pin.Deletions(name).Schema())
	}
	return g
}

func (g *planGen) add(name string, sch relation.Schema) {
	g.rels[name] = sch
	g.names = append(g.names, name)
}

// numericCols returns the indexes of int/float columns.
func numericCols(sch relation.Schema) []int {
	var out []int
	for i := 0; i < sch.NumCols(); i++ {
		k := sch.Col(i).Type
		if k == relation.KindInt || k == relation.KindFloat {
			out = append(out, i)
		}
	}
	return out
}

func (g *planGen) scan() algebra.Node {
	name := g.names[g.rng.Intn(len(g.names))]
	return algebra.Scan(name, g.rels[name])
}

func (g *planGen) gen(depth int) algebra.Node {
	if depth <= 0 {
		return g.scan()
	}
	child := g.gen(depth - 1)
	sch := child.Schema()
	switch g.rng.Intn(7) {
	case 0: // select on a random numeric column
		nums := numericCols(sch)
		if len(nums) == 0 {
			return child
		}
		col := sch.Col(nums[g.rng.Intn(len(nums))]).Name
		lit := expr.IntLit(int64(g.rng.Intn(2000)))
		preds := []expr.Expr{
			expr.Gt(expr.Col(col), lit), expr.Lt(expr.Col(col), lit), expr.Ne(expr.Col(col), lit),
		}
		return algebra.MustSelect(child, preds[g.rng.Intn(len(preds))])
	case 1: // project a random subset including the key
		keep := map[string]bool{}
		for _, k := range sch.KeyNames() {
			keep[k] = true
		}
		var names []string
		for i := 0; i < sch.NumCols(); i++ {
			n := sch.Col(i).Name
			if keep[n] || g.rng.Intn(2) == 0 {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			names = append(names, sch.Col(0).Name)
		}
		return algebra.MustProject(child, algebra.OutCols(names...))
	case 2: // hash filter on the key (or first column when keyless)
		attrs := sch.KeyNames()
		if len(attrs) == 0 {
			attrs = []string{sch.Col(0).Name}
		}
		ratio := 0.2 + 0.6*g.rng.Float64()
		return algebra.MustHashFilter(child, attrs, ratio, nil)
	case 3: // set op over two selections of the same subtree
		nums := numericCols(sch)
		if len(nums) == 0 {
			return child
		}
		col := sch.Col(nums[g.rng.Intn(len(nums))]).Name
		l := algebra.MustSelect(child, expr.Gt(expr.Col(col), expr.IntLit(int64(g.rng.Intn(1000)))))
		r := algebra.MustSelect(child, expr.Lt(expr.Col(col), expr.IntLit(int64(g.rng.Intn(3000)))))
		var n algebra.Node
		var err error
		switch g.rng.Intn(3) {
		case 0:
			n, err = algebra.Union(l, r)
		case 1:
			n, err = algebra.Intersect(l, r)
		default:
			n, err = algebra.Difference(l, r)
		}
		if err != nil {
			return child
		}
		return n
	case 4: // hash join with a random base relation (columnar join path)
		name := g.names[g.rng.Intn(len(g.names))]
		rsch := g.rels[name]
		// Skip shapes the algebra rejects (duplicate output columns) and
		// key-less equality candidates.
		for i := 0; i < rsch.NumCols(); i++ {
			if sch.ColIndex(rsch.Col(i).Name) >= 0 {
				return child
			}
		}
		lNums, rNums := numericCols(sch), numericCols(rsch)
		if len(lNums) == 0 || len(rNums) == 0 {
			return child
		}
		var right algebra.Node = algebra.Scan(name, rsch)
		if g.rng.Intn(2) == 0 { // derived right side half the time
			col := rsch.Col(rNums[g.rng.Intn(len(rNums))]).Name
			right = algebra.MustSelect(right, expr.Ne(expr.Col(col), expr.IntLit(-1)))
		}
		spec := algebra.JoinSpec{
			Type: []algebra.JoinType{
				algebra.Inner, algebra.LeftOuter, algebra.RightOuter, algebra.FullOuter,
			}[g.rng.Intn(4)],
			On: []algebra.EqPair{{
				Left:  sch.Col(lNums[g.rng.Intn(len(lNums))]).Name,
				Right: rsch.Col(rNums[g.rng.Intn(len(rNums))]).Name,
			}},
		}
		n, err := algebra.Join(child, right, spec)
		if err != nil {
			return child
		}
		return n
	case 5: // group-by over one column, uniquely named aggregates
		if sch.NumCols() < 2 {
			return child
		}
		g.uniq++
		suffix := string(rune('0' + g.uniq%10))
		gcol := sch.Col(g.rng.Intn(sch.NumCols())).Name
		aggs := []algebra.AggSpec{algebra.CountAs("n·" + suffix)}
		if nums := numericCols(sch); len(nums) > 0 {
			aggs = append(aggs, algebra.SumAs(expr.Col(sch.Col(nums[g.rng.Intn(len(nums))]).Name), "s·"+suffix))
		}
		a, err := algebra.GroupBy(child, []string{gcol}, aggs...)
		if err != nil {
			return child
		}
		return a
	default:
		return child
	}
}

// requireSameRows checks row-for-row identity.
func requireSameRows(t *testing.T, label string, ref, got *relation.Relation) {
	t.Helper()
	if !got.Schema().Equal(ref.Schema()) {
		t.Fatalf("%s: schema [%s] != [%s]", label, got.Schema(), ref.Schema())
	}
	if got.Len() != ref.Len() {
		t.Fatalf("%s: %d rows != %d rows", label, got.Len(), ref.Len())
	}
	for i := 0; i < ref.Len(); i++ {
		if !got.Row(i).Equal(ref.Row(i)) {
			t.Fatalf("%s: row %d differs:\n got %v\nwant %v", label, i, got.Row(i), ref.Row(i))
		}
	}
}

// pipeTrial builds the Fig. 4a scenario under one maintenance strategy,
// stages a random delta batch, and checks pipelined ≡ materialized for
// the maintenance expression, the cleaning expression, and a handful of
// random plans — serial and 4-way parallel.
func pipeTrial(t *testing.T, seed int64, kind view.StrategyKind) {
	t.Helper()
	g := tpcd.NewGenerator(tpcd.Config{
		Orders: 120, MaxLines: 3, Customers: 30, Suppliers: 8, Parts: 25,
		Z: 2, Days: 90, Seed: seed,
	})
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.Materialize(d, tpcd.JoinView())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainerWithStrategy(v, kind)
	if err != nil {
		t.Fatal(err)
	}
	c, err := clean.New(m, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	stageRandomBatch(t, g, d, seed)
	pin := d.Pin()

	mkCtx := func(par int) *algebra.Context {
		ctx := pin.Context()
		ctx.Parallelism = par
		ctx.Bind(view.StaleName(v.Name()), v.Data())
		ctx.Bind(clean.SampleName(v.Name()), c.StaleSample())
		return ctx
	}

	rng := rand.New(rand.NewSource(seed*31 + int64(kind)))
	pg := newPlanGen(rng, pin)
	pg.add(view.StaleName(v.Name()), v.Data().Schema())
	pg.add(clean.SampleName(v.Name()), c.StaleSample().Schema())

	plans := map[string]algebra.Node{
		"maintenance":       m.Expression(),
		"maintenance-fused": algebra.PushDownScans(m.Expression()),
		"cleaning":          c.Expression(),
		"cleaning-fused":    algebra.PushDownScans(c.Expression()),
	}
	for i := 0; i < 8; i++ {
		plans[string(rune('a'+i))] = pg.gen(1 + rng.Intn(3))
	}

	for name, plan := range plans {
		ref, err := algebra.EvalMaterialized(plan, mkCtx(0))
		if err != nil {
			t.Fatalf("seed %d %v %s: materialized eval: %v\n%s", seed, kind, name, err, algebra.Format(plan))
		}
		for _, par := range []int{0, 4} {
			// Both batch layouts: columnar (typed vectors + selection
			// vectors, the default) and the row-at-a-time fallback must
			// produce the materialized engine's rows exactly.
			for _, noCol := range []bool{false, true} {
				ctx := mkCtx(par)
				ctx.NoColumnar = noCol
				got, err := plan.Eval(ctx)
				if err != nil {
					t.Fatalf("seed %d %v %s par=%d noCol=%v: pipelined eval: %v\n%s",
						seed, kind, name, par, noCol, err, algebra.Format(plan))
				}
				requireSameRows(t, name, ref, got)
			}
		}
	}
}

// TestPipelineEquivalenceProperty runs the property over a spread of
// seeds for both maintenance strategies.
func TestPipelineEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		pipeTrial(t, seed, view.ChangeTable)
		pipeTrial(t, seed, view.Recompute)
	}
}

// FuzzPipelineEquivalence lets the fuzzer search for a delta batch and
// plan shape where the pipeline diverges from the materialized engine.
func FuzzPipelineEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 9, 77, 4242} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		pipeTrial(t, seed, view.ChangeTable)
		pipeTrial(t, seed, view.Recompute)
	})
}
