package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/sampleclean/svc/internal/relation"
)

// Record types. Stage records mirror the db mutators one-to-one; boundary
// records mark a completed ApplyVersion (maintenance boundary) and carry
// the sequence cut it retired.
const (
	recInsert   uint8 = iota + 1 // StageInsert: full new row
	recUpdate                    // StageUpdate: full new row
	recDelete                    // StageDelete: key values only
	recBase                      // direct base Insert (load-time rows after attach)
	recBoundary                  // ApplyVersion: {cut, applied}
)

// record is one decoded log entry.
type record struct {
	typ     uint8
	seq     uint64
	table   string       // stage/base records
	row     relation.Row // stage/base records; delete records hold key values
	cut     uint64       // boundary: highest stage seq folded into the base tables
	applied uint64       // boundary: the catalog's applied counter after the fold
}

// Framing: u32 body length | u32 CRC-32C of body | body. The body starts
// with the record type and sequence number; a torn tail (short frame or
// CRC mismatch) is detected, never mis-decoded.
const frameHeader = 8

// maxBody guards decoding against absurd lengths from corrupt frames.
const maxBody = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete or corrupt record at the end of a segment —
// the expected shape of a crash mid-write, tolerated at the log tail.
var errTorn = errors.New("wal: torn record")

// Value wire kinds (independent of relation.Kind numbering so the on-disk
// format is stable even if the in-memory enum changes).
const (
	wireNull uint8 = iota
	wireInt
	wireFloat
	wireString
	wireBool
)

// appendValue appends the exact binary encoding of v. Floats are encoded
// by bit pattern, so NaN payloads and -0.0 round-trip unchanged.
func appendValue(dst []byte, v relation.Value) []byte {
	switch v.Kind() {
	case relation.KindNull:
		return append(dst, wireNull)
	case relation.KindInt:
		dst = append(dst, wireInt)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.AsInt()))
	case relation.KindFloat:
		dst = append(dst, wireFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
	case relation.KindString:
		s := v.AsString()
		dst = append(dst, wireString)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
		return append(dst, s...)
	case relation.KindBool:
		b := byte(0)
		if v.AsBool() {
			b = 1
		}
		return append(dst, wireBool, b)
	default:
		// Unreachable for values built through the relation constructors;
		// encode as NULL rather than corrupting the frame.
		return append(dst, wireNull)
	}
}

// decodeValue decodes one value from b, returning the value and the bytes
// consumed, or errTorn when b is too short to hold it.
func decodeValue(b []byte) (relation.Value, int, error) {
	if len(b) < 1 {
		return relation.Value{}, 0, errTorn
	}
	switch b[0] {
	case wireNull:
		return relation.Null(), 1, nil
	case wireInt:
		if len(b) < 9 {
			return relation.Value{}, 0, errTorn
		}
		return relation.Int(int64(binary.LittleEndian.Uint64(b[1:]))), 9, nil
	case wireFloat:
		if len(b) < 9 {
			return relation.Value{}, 0, errTorn
		}
		return relation.Float(math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))), 9, nil
	case wireString:
		if len(b) < 5 {
			return relation.Value{}, 0, errTorn
		}
		n := int(binary.LittleEndian.Uint32(b[1:]))
		if n < 0 || len(b) < 5+n {
			return relation.Value{}, 0, errTorn
		}
		return relation.String(string(b[5 : 5+n])), 5 + n, nil
	case wireBool:
		if len(b) < 2 {
			return relation.Value{}, 0, errTorn
		}
		return relation.Bool(b[1] != 0), 2, nil
	default:
		return relation.Value{}, 0, fmt.Errorf("wal: unknown value kind %d", b[0])
	}
}

// appendBody appends the record body (without framing).
func appendBody(dst []byte, r *record) []byte {
	dst = append(dst, r.typ)
	dst = binary.LittleEndian.AppendUint64(dst, r.seq)
	switch r.typ {
	case recBoundary:
		dst = binary.LittleEndian.AppendUint64(dst, r.cut)
		dst = binary.LittleEndian.AppendUint64(dst, r.applied)
	default:
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.table)))
		dst = append(dst, r.table...)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.row)))
		for _, v := range r.row {
			dst = appendValue(dst, v)
		}
	}
	return dst
}

// appendRecord appends the framed, checksummed encoding of r.
func appendRecord(dst []byte, r *record) []byte {
	start := len(dst)
	// Reserve the frame header, then encode the body in place.
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = appendBody(dst, r)
	body := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, crcTable))
	return dst
}

// decodeBody decodes a verified record body.
func decodeBody(body []byte) (record, error) {
	var r record
	if len(body) < 9 {
		return r, errTorn
	}
	r.typ = body[0]
	r.seq = binary.LittleEndian.Uint64(body[1:])
	rest := body[9:]
	switch r.typ {
	case recBoundary:
		if len(rest) < 16 {
			return r, errTorn
		}
		r.cut = binary.LittleEndian.Uint64(rest)
		r.applied = binary.LittleEndian.Uint64(rest[8:])
		return r, nil
	case recInsert, recUpdate, recDelete, recBase:
		if len(rest) < 2 {
			return r, errTorn
		}
		tn := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < tn {
			return r, errTorn
		}
		r.table = string(rest[:tn])
		rest = rest[tn:]
		if len(rest) < 2 {
			return r, errTorn
		}
		nv := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		r.row = make(relation.Row, 0, nv)
		for i := 0; i < nv; i++ {
			v, n, err := decodeValue(rest)
			if err != nil {
				return r, err
			}
			r.row = append(r.row, v)
			rest = rest[n:]
		}
		if len(rest) != 0 {
			return r, fmt.Errorf("wal: %d trailing bytes in record body", len(rest))
		}
		return r, nil
	default:
		return r, fmt.Errorf("wal: unknown record type %d", r.typ)
	}
}

// decodeRecord decodes one framed record from the front of b, returning
// the record and the bytes consumed. A short or checksum-mismatched frame
// returns errTorn: the caller treats it as the log tail.
func decodeRecord(b []byte) (record, int, error) {
	if len(b) < frameHeader {
		return record{}, 0, errTorn
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 9 || n > maxBody {
		return record{}, 0, errTorn
	}
	if len(b) < frameHeader+n {
		return record{}, 0, errTorn
	}
	body := b[frameHeader : frameHeader+n]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return record{}, 0, errTorn
	}
	r, err := decodeBody(body)
	if err != nil {
		// A body that passed its checksum but fails structural decoding is
		// real corruption, not a torn tail — but for tail-tolerance both
		// stop the scan; keep the distinction in the error.
		return record{}, 0, err
	}
	return r, frameHeader + n, nil
}
