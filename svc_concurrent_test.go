package svc_test

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	svc "github.com/sampleclean/svc"
)

// TestConcurrentServing is the serving-layer stress test: ≥8 reader
// goroutines issue Query against the view while writers continuously
// stage inserts/updates/deletes and a background refresher runs
// maintenance+cleaning cycles. Run under -race it proves the snapshot
// publication protocol; the assertions prove every answer is internally
// consistent (CI brackets the point estimate, epochs never go backwards)
// and that no update is lost across concurrent maintenance boundaries.
func TestConcurrentServing(t *testing.T) {
	const (
		videos    = 100
		visits    = 2000
		readers   = 8
		writers   = 2
		writerOps = 400
	)
	d, sv := buildExample(t, 42, videos, visits)
	defer sv.Close()
	sv.StartBackgroundRefresh(2 * time.Millisecond)

	logT := d.Table("Log")
	var inserted, deleted atomic.Int64

	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Disjoint key ranges per writer so ops never collide.
			base := int64(visits + 100_000*(w+1))
			var mine []int64
			for i := 0; i < writerOps; i++ {
				if i%8 == 7 {
					// Pace the writers so staging, refresh cycles, and
					// queries genuinely overlap.
					time.Sleep(500 * time.Microsecond)
				}
				k := base + int64(i)
				switch {
				case i%10 == 9 && len(mine) > 0:
					// Delete one of our own rows; it may sit in any of
					// base/ΔR depending on maintenance timing.
					victim := mine[0]
					mine = mine[1:]
					if err := logT.StageDelete(svc.Int(victim)); err != nil {
						t.Errorf("writer %d: delete %d: %v", w, victim, err)
						return
					}
					deleted.Add(1)
				case i%10 == 5 && len(mine) > 0:
					// Re-point one of our own visits at another video. The
					// row may still be a pending insert (StageUpdate
					// errors) or get folded into the base by a concurrent
					// maintenance boundary between attempts (StageInsert
					// errors) — alternate until one lands.
					row := svc.Row{svc.Int(mine[0]), svc.Int(int64(i % videos))}
					ok := false
					for attempt := 0; attempt < 10 && !ok; attempt++ {
						if attempt%2 == 0 {
							ok = logT.StageUpdate(row) == nil
						} else {
							ok = logT.StageInsert(row) == nil
						}
					}
					if !ok {
						t.Errorf("writer %d: update of %d never landed", w, mine[0])
						return
					}
				default:
					if err := logT.StageInsert(svc.Row{svc.Int(k), svc.Int(int64(i % videos))}); err != nil {
						t.Errorf("writer %d: insert %d: %v", w, k, err)
						return
					}
					mine = append(mine, k)
					inserted.Add(1)
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(writersDone)
	}()

	var queries atomic.Int64
	var rg sync.WaitGroup
	for g := 0; g < readers; g++ {
		rg.Add(1)
		go func(g int) {
			defer rg.Done()
			var lastEpoch uint64
			for done := false; !done; {
				select {
				case <-writersDone:
					done = true // one final query after writers stop
				default:
				}
				// Exercise the sibling read paths too: they share the
				// cached sample pair with Query, so racing them catches
				// any mutation of the shared relations.
				switch g % 4 {
				case 2:
					if _, err := sv.QueryGroups(svc.Sum("visitCount", nil), "ownerId"); err != nil {
						t.Errorf("reader %d: groups: %v", g, err)
						return
					}
				case 3:
					if _, err := sv.CleanSelect(svc.Gt(svc.ColRef("visitCount"), svc.IntLit(5))); err != nil {
						t.Errorf("reader %d: clean-select: %v", g, err)
						return
					}
				}
				q := svc.Sum("visitCount", nil)
				if g%2 == 1 {
					q = svc.Count(nil)
				}
				ans, err := sv.Query(q)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if math.IsNaN(ans.Value) || math.IsNaN(ans.Lo) || math.IsNaN(ans.Hi) {
					t.Errorf("reader %d: NaN in estimate %+v", g, ans.Estimate)
					return
				}
				// Internal consistency: the CI must bracket the value.
				if ans.Lo > ans.Value || ans.Value > ans.Hi {
					t.Errorf("reader %d: CI [%v, %v] does not bracket %v", g, ans.Lo, ans.Hi, ans.Value)
					return
				}
				// Epochs never go backwards for a single reader.
				if ans.AsOfEpoch == 0 {
					t.Errorf("reader %d: missing AsOfEpoch", g)
					return
				}
				if ans.AsOfEpoch < lastEpoch {
					t.Errorf("reader %d: epoch went backwards %d -> %d", g, lastEpoch, ans.AsOfEpoch)
					return
				}
				lastEpoch = ans.AsOfEpoch
				// Sanity band: the truth moves between visits and
				// visits+writers·writerOps; a consistent snapshot answer
				// can never be far outside it.
				if g%2 == 0 { // Sum(visitCount) == number of log rows
					lo, hi := 0.5*float64(visits), 1.5*float64(visits+writers*writerOps)
					if ans.Value < lo || ans.Value > hi {
						t.Errorf("reader %d: estimate %v outside plausible band [%v, %v]", g, ans.Value, lo, hi)
						return
					}
				}
				queries.Add(1)
			}
		}(g)
	}
	rg.Wait()
	<-writersDone
	if t.Failed() {
		return
	}

	// Drain: stop the refresher, run one final cycle, and check that not a
	// single staged operation was lost across all the concurrent
	// maintenance boundaries.
	sv.Close()
	if err := sv.MaintainNow(); err != nil {
		t.Fatal(err)
	}
	if sv.Stale() {
		t.Fatal("all deltas should be applied after the final cycle")
	}
	want := float64(int64(visits) + inserted.Load() - deleted.Load())
	got, err := sv.ExactQuery(svc.Sum("visitCount", nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("final visit total = %v, want %v (lost or duplicated updates)", got, want)
	}
	if r := sv.Refresher(); r != nil && r.Err() != nil {
		t.Fatalf("refresher recorded error: %v", r.Err())
	}
	t.Logf("served %d queries during %d writer ops and %d refresh cycles",
		queries.Load(), writers*writerOps, sv.Refresher().Cycles())
}

// TestBackgroundRefreshOption exercises the WithBackgroundRefresh option:
// staged updates are folded in without any explicit MaintainNow call, and
// queries served during the whole time stay consistent.
func TestBackgroundRefreshOption(t *testing.T) {
	d, _ := buildExample(t, 7, 50, 800)
	logT := d.Table("Log")
	plan := svc.GroupByAgg(
		svc.Scan("Log", logT.Schema()),
		[]string{"videoId"},
		svc.CountAs("n"),
	)
	sv, err := svc.New(d, svc.ViewDefinition{Name: "perVideo", Plan: plan},
		svc.WithSamplingRatio(0.3), svc.WithBackgroundRefresh(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if sv.Refresher() == nil {
		t.Fatal("option should start a refresher")
	}
	for i := 0; i < 300; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(10_000 + i)), svc.Int(int64(i % 50))}); err != nil {
			t.Fatal(err)
		}
		if i%25 == 0 {
			if _, err := sv.Query(svc.Count(nil)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The refresher must eventually fold everything in.
	deadline := time.Now().Add(5 * time.Second)
	for sv.Stale() {
		if time.Now().After(deadline) {
			t.Fatal("refresher did not catch up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	exact, err := sv.ExactQuery(svc.Count(nil))
	if err != nil {
		t.Fatal(err)
	}
	if exact != 50 {
		t.Fatalf("view should have 50 groups, got %v", exact)
	}
	total, err := sv.ExactQuery(svc.Sum("n", nil))
	if err != nil {
		t.Fatal(err)
	}
	if total != 800+300 {
		t.Fatalf("total visits = %v, want 1100", total)
	}
	if sv.Refresher().Cycles() == 0 {
		t.Fatal("no refresh cycles ran")
	}
	if err := sv.Refresher().Err(); err != nil {
		t.Fatal(err)
	}
}
