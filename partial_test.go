package svc_test

// The sharded merge property: per-shard partials composed with
// MergePartials must reproduce the single-process answer. With
// integer-valued attributes and a power-of-two sampling ratio every
// per-row term (trans value v/m, correspondence diff d/m, stale baseline)
// is exactly representable, so floating-point addition is exact and the
// merged mean must be BIT-IDENTICAL to the single-process one — over any
// partition of the view keys, in any merge order, including empty shards,
// single-row shards, and groups living on one shard. The variance moments
// are sums of exact squares and must match within 1 ulp (bit-identical in
// practice; avg recombines in quadrature and is allowed the ulp).
//
// The key-hash sampler is what makes this strong property testable end to
// end: a view key's sample membership depends only on its key, so each
// shard's sample is exactly the restriction of the single-process sample
// to its partition — even with pending deltas staged (the corrections are
// live, not zero).

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/internal/shard"
	"github.com/sampleclean/svc/internal/tpcd"
)

// intVideolog builds the running example with integer durations on the
// tables whose videoIds pass keep (nil = all), then stages `updates`
// pending log inserts plus a few deletes the same way on every database
// that owns them. All moments stay integral.
type shardedScenario struct {
	full   *svc.StaleView
	shards []*svc.StaleView
}

func buildSharded(t *testing.T, seed int64, nShards, videos, visits, updates int, mode svc.Mode, assign func(videoID int64) int) *shardedScenario {
	t.Helper()
	type op struct {
		kind    byte // 'L' log insert, 'V' video insert (with a log row), 'D' log delete
		session int64
		video   int64
		owner   int64
		dur     int64
	}
	rng := rand.New(rand.NewSource(seed))
	owners := make([]int64, videos)
	durs := make([]int64, videos)
	for i := range owners {
		owners[i] = rng.Int63n(7)
		durs[i] = 1 + rng.Int63n(900)
	}
	sessions := make([]int64, visits) // session i watched video sessions[i]
	for i := range sessions {
		sessions[i] = rng.Int63n(int64(videos))
	}
	var ops []op
	nextVideo := int64(videos)
	for i := 0; i < updates; i++ {
		switch rng.Intn(10) {
		case 0:
			ops = append(ops, op{kind: 'V', session: int64(visits + i), video: nextVideo,
				owner: rng.Int63n(7), dur: 1 + rng.Int63n(900)})
			nextVideo++
		case 1:
			ops = append(ops, op{kind: 'D', session: rng.Int63n(int64(visits))})
		default:
			ops = append(ops, op{kind: 'L', session: int64(visits + i), video: rng.Int63n(int64(videos))})
		}
	}

	build := func(keep func(videoID int64) bool) *svc.StaleView {
		d := svc.NewDatabase()
		video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
			svc.Col("videoId", svc.KindInt),
			svc.Col("ownerId", svc.KindInt),
			svc.Col("duration", svc.KindInt),
		}, "videoId"))
		for i := 0; i < videos; i++ {
			if keep == nil || keep(int64(i)) {
				video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(owners[i]), svc.Int(durs[i])})
			}
		}
		logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
			svc.Col("sessionId", svc.KindInt),
			svc.Col("videoId", svc.KindInt),
		}, "sessionId"))
		for i, vid := range sessions {
			if keep == nil || keep(vid) {
				logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(vid)})
			}
		}
		sv, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: svc.GroupByAgg(
			svc.Join(svc.Scan("Log", logT.Schema()), svc.Scan("Video", video.Schema()),
				svc.JoinSpec{Type: svc.Inner, On: svc.On("videoId", "videoId"), Merge: true}),
			[]string{"videoId", "ownerId"},
			svc.CountAs("visitCount"),
			svc.SumAs(svc.ColRef("duration"), "totalDuration"),
		)}, svc.WithSamplingRatio(0.25), svc.WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		// Pending deltas, staged identically on every owner.
		for _, o := range ops {
			switch o.kind {
			case 'V':
				if keep == nil || keep(o.video) {
					if err := video.StageInsert(svc.Row{svc.Int(o.video), svc.Int(o.owner), svc.Int(o.dur)}); err != nil {
						t.Fatal(err)
					}
					if err := logT.StageInsert(svc.Row{svc.Int(o.session), svc.Int(o.video)}); err != nil {
						t.Fatal(err)
					}
				}
			case 'D':
				if keep == nil || keep(sessions[o.session]) {
					if err := logT.StageDelete(svc.Int(o.session)); err != nil {
						t.Fatal(err)
					}
				}
			default:
				if keep == nil || keep(o.video) {
					if err := logT.StageInsert(svc.Row{svc.Int(o.session), svc.Int(o.video)}); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return sv
	}

	sc := &shardedScenario{full: build(nil)}
	for s := 0; s < nShards; s++ {
		s := s
		sc.shards = append(sc.shards, build(func(v int64) bool { return assign(v) == s }))
	}
	return sc
}

// mergeShards computes each shard's partial and merges them in a
// shuffled order (the algebra must be order-independent).
func mergeShards(t *testing.T, sc *shardedScenario, rng *rand.Rand, q svc.Query) svc.Partial {
	t.Helper()
	parts := make([]svc.Partial, 0, len(sc.shards))
	for _, sv := range sc.shards {
		pa, err := sv.QueryPartial(q)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, pa.Partial)
	}
	rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	merged, err := svc.MergePartials(parts...)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

func ulpsApart(a, b float64) int {
	if a == b {
		return 0
	}
	ia, ib := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	d := ia - ib
	if d < 0 {
		d = -d
	}
	if d > 1<<20 {
		return 1 << 20
	}
	return int(d)
}

func checkMergedEstimate(t *testing.T, name string, merged, full svc.Partial, conf float64) {
	t.Helper()
	if merged != full {
		t.Fatalf("%s: merged partial %+v differs from single-process %+v", name, merged, full)
	}
	me, err := merged.Finalize(conf)
	if err != nil {
		t.Fatalf("%s: finalize merged: %v", name, err)
	}
	fe, err := full.Finalize(conf)
	if err != nil {
		t.Fatalf("%s: finalize full: %v", name, err)
	}
	if me.Value != fe.Value {
		t.Fatalf("%s: merged mean %v not bit-identical to single-process %v", name, me.Value, fe.Value)
	}
	if u := ulpsApart(me.Hi-me.Value, fe.Hi-fe.Value); u > 1 {
		t.Fatalf("%s: merged half-width %v vs %v: %d ulps apart", name, me.Hi-me.Value, fe.Hi-fe.Value, u)
	}
}

func TestPartialMergeMatchesSingleProcess(t *testing.T) {
	queries := []struct {
		name string
		q    svc.Query
	}{
		{"sum", svc.Sum("totalDuration", nil)},
		{"count", svc.Count(nil)},
		{"avg", svc.Avg("totalDuration", nil)},
	}
	for _, mode := range []svc.Mode{svc.Corr, svc.AQP, svc.Auto} {
		for seed := int64(0); seed < 4; seed++ {
			nShards := 2 + int(seed)%4 // 2..5
			rng := rand.New(rand.NewSource(1000 + seed))
			// Random partition of videoIds across the shards; some shards
			// may own nothing at small sizes.
			assignment := map[int64]int{}
			assign := func(v int64) int {
				s, ok := assignment[v]
				if !ok {
					s = rng.Intn(nShards)
					assignment[v] = s
				}
				return s
			}
			sc := buildSharded(t, seed, nShards, 40, 600, 120, mode, assign)
			for _, q := range queries {
				merged := mergeShards(t, sc, rng, q.q)
				fullP, err := sc.full.QueryPartial(q.q)
				if err != nil {
					t.Fatal(err)
				}
				checkMergedEstimate(t, q.name, merged, fullP.Partial, 0.95)
				// For sum/count the partial path must also agree with the
				// production non-partial estimate on the mean (same exact
				// arithmetic, different code path). avg is excluded: the
				// single-process estimators (difference of sample means for
				// corr, mean of trans values for aqp) are different
				// consistent estimators than the partial ratio-of-HT-sums.
				if mode != svc.Auto && q.q.Agg != svc.AvgAgg { // Auto may Advise differently per query
					ans, err := sc.full.Query(q.q)
					if err != nil {
						t.Fatal(err)
					}
					me, _ := merged.Finalize(0.95)
					if me.Value != ans.Value {
						t.Fatalf("%s mode %v: merged value %v != single-process Query value %v",
							q.name, mode, me.Value, ans.Value)
					}
				}
			}
		}
	}
}

// TestPartialMergeDegenerateShards pins the edge shapes: every key on one
// shard (all others empty) and a single-row shard alone with one view key.
func TestPartialMergeDegenerateShards(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	t.Run("all-on-one-shard", func(t *testing.T) {
		sc := buildSharded(t, 5, 4, 30, 400, 80, svc.Corr, func(v int64) int { return 0 })
		for _, q := range []svc.Query{svc.Sum("totalDuration", nil), svc.Count(nil), svc.Avg("totalDuration", nil)} {
			merged := mergeShards(t, sc, rng, q)
			fullP, err := sc.full.QueryPartial(q)
			if err != nil {
				t.Fatal(err)
			}
			checkMergedEstimate(t, "all-on-one", merged, fullP.Partial, 0.95)
		}
	})
	t.Run("single-key-shard", func(t *testing.T) {
		// Video 0 is alone on shard 1; everything else on shard 0.
		sc := buildSharded(t, 6, 3, 30, 400, 80, svc.Corr, func(v int64) int {
			if v == 0 {
				return 1
			}
			return 0
		})
		merged := mergeShards(t, sc, rng, svc.Sum("totalDuration", nil))
		fullP, err := sc.full.QueryPartial(svc.Sum("totalDuration", nil))
		if err != nil {
			t.Fatal(err)
		}
		checkMergedEstimate(t, "single-key", merged, fullP.Partial, 0.95)
	})
}

// TestGroupPartialMerge checks the group-by union-merge: grouping by
// ownerId makes most groups span shards; grouping by videoId puts every
// group on exactly one shard. Both must reproduce the single-process
// per-group partials exactly.
func TestGroupPartialMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	assignment := map[int64]int{}
	assign := func(v int64) int {
		s, ok := assignment[v]
		if !ok {
			s = rng.Intn(3)
			assignment[v] = s
		}
		return s
	}
	sc := buildSharded(t, 11, 3, 40, 600, 120, svc.Corr, assign)
	for _, groupBy := range [][]string{{"ownerId"}, {"videoId"}} {
		q := svc.Sum("totalDuration", nil)
		var parts []svc.GroupPartials
		for _, sv := range sc.shards {
			ga, err := sv.QueryGroupsPartial(q, groupBy...)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, ga.Groups)
		}
		rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		merged, err := svc.MergeGroupPartials(parts...)
		if err != nil {
			t.Fatal(err)
		}
		fullG, err := sc.full.QueryGroupsPartial(q, groupBy...)
		if err != nil {
			t.Fatal(err)
		}
		if len(merged.Groups) != len(fullG.Groups.Groups) {
			t.Fatalf("group by %v: merged has %d groups, single-process %d",
				groupBy, len(merged.Groups), len(fullG.Groups.Groups))
		}
		for k, fp := range fullG.Groups.Groups {
			mp, ok := merged.Groups[k]
			if !ok {
				t.Fatalf("group by %v: merged lost group %q (%s)", groupBy, k, fullG.Groups.Labels[k])
			}
			checkMergedEstimate(t, "group "+fullG.Groups.Labels[k], mp, fp, 0.95)
		}
	}
}

// TestPartialMergeTPCD runs the merge property over the TPC-D substrate
// partitioned by the production placement (hash of l_orderkey/o_orderkey).
// Counts are integral and must merge bit-identically; extended-price sums
// are floats whose addition order differs between the partitioned and
// single-process runs, so they get a relative tolerance instead.
func TestPartialMergeTPCD(t *testing.T) {
	const nShards = 3
	pl := shard.TPCD(nShards)
	build := func(shardID int) *svc.StaleView {
		cfg := tpcd.DefaultConfig()
		cfg.Orders = 300
		cfg.Customers = 60
		cfg.Suppliers = 20
		cfg.Parts = 50
		g := tpcd.NewGenerator(cfg)
		d, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if shardID >= 0 {
			for name := range pl.Tables {
				tb := d.Table(name)
				if tb == nil {
					continue
				}
				tb.Rows().DeleteWhere(func(row svc.Row) bool {
					return !pl.Owns(name, row, shardID)
				})
			}
		}
		def, err := svc.ViewFromSQL(d, tpcd.JoinViewSQL)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := svc.New(d, def, svc.WithSamplingRatio(0.25), svc.WithMode(svc.Corr))
		if err != nil {
			t.Fatal(err)
		}
		return sv
	}
	full := build(-1)
	var shards []*svc.StaleView
	for s := 0; s < nShards; s++ {
		shards = append(shards, build(s))
	}
	sc := &shardedScenario{full: full, shards: shards}
	rng := rand.New(rand.NewSource(3))

	mergedCnt := mergeShards(t, sc, rng, svc.Count(nil))
	fullCnt, err := full.QueryPartial(svc.Count(nil))
	if err != nil {
		t.Fatal(err)
	}
	checkMergedEstimate(t, "tpcd count", mergedCnt, fullCnt.Partial, 0.95)

	mergedSum := mergeShards(t, sc, rng, svc.Sum("l_extendedprice", nil))
	fullSum, err := full.QueryPartial(svc.Sum("l_extendedprice", nil))
	if err != nil {
		t.Fatal(err)
	}
	me, err := mergedSum.Finalize(0.95)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := fullSum.Partial.Finalize(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(me.Value-fe.Value) / math.Abs(fe.Value); rel > 1e-12 {
		t.Fatalf("tpcd sum: merged %v vs single-process %v (rel err %g)", me.Value, fe.Value, rel)
	}
}

// TestPartialRejectsNonMergeable: extremes and quantiles have no partial
// form and must fail with the sentinel, not a garbage merge.
func TestPartialRejectsNonMergeable(t *testing.T) {
	sc := buildSharded(t, 21, 2, 10, 100, 0, svc.Corr, func(v int64) int { return int(v) % 2 })
	for _, q := range []svc.Query{svc.MinQ("totalDuration", nil), svc.MaxQ("totalDuration", nil), svc.MedianQ("totalDuration", nil)} {
		if _, err := sc.full.QueryPartial(q); err == nil {
			t.Fatalf("QueryPartial(%v) should reject non-mergeable aggregate", q.Agg)
		} else if !errors.Is(err, svc.ErrNotMergeable) {
			t.Fatalf("QueryPartial(%v): want ErrNotMergeable, got %v", q.Agg, err)
		}
	}
}
