package view

import (
	"fmt"
	"sync/atomic"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
)

// StaleName returns the context binding name under which a view's stale
// contents are made available to maintenance expressions.
func StaleName(view string) string { return "§" + view }

// Definition is a named view definition over base tables.
type Definition struct {
	Name string
	Plan algebra.Node
}

// View is a materialized view: its definition plus the materialized rows.
//
// The materialized contents are published through an atomic pointer:
// Data() returns an immutable relation that maintenance never mutates in
// place, and Replace swaps in a freshly built one. Readers holding a
// previous Data() result keep a consistent (if stale) view while
// maintenance publishes the next version — the view-level half of the
// snapshot serving protocol.
type View struct {
	def    Definition
	schema relation.Schema
	data   atomic.Pointer[relation.Relation]
}

// Materialize evaluates the definition against the database's current base
// tables (staged deltas are not visible) and returns the view. It also
// registers secondary indexes on the join columns of every base-table side
// of the plan's joins, so that delta-propagation joins probe instead of
// scanning — the "index on the join columns" every practical IVM setup
// assumes.
func Materialize(d *db.Database, def Definition) (*View, error) {
	if def.Name == "" {
		return nil, fmt.Errorf("view: definition needs a name")
	}
	if !def.Plan.Schema().HasKey() {
		return nil, fmt.Errorf("view: %s: definition has no derivable primary key (Definition 2)", def.Name)
	}
	if err := registerJoinIndexes(d, def.Plan); err != nil {
		return nil, fmt.Errorf("view: %s: %w", def.Name, err)
	}
	// Evaluate a scan-fused copy of the plan; def.Plan itself stays
	// unfused for the strategy and push-down rewriters.
	out, err := algebra.PushDownScans(def.Plan).Eval(d.Context())
	if err != nil {
		return nil, fmt.Errorf("view: materialize %s: %w", def.Name, err)
	}
	v := &View{def: def, schema: out.Schema()}
	v.data.Store(out)
	return v, nil
}

// registerJoinIndexes walks the plan and ensures a secondary index exists
// for every join side that is a direct base-table scan.
func registerJoinIndexes(d *db.Database, plan algebra.Node) error {
	var firstErr error
	algebra.Walk(plan, func(n algebra.Node) {
		j, ok := n.(*algebra.JoinNode)
		if !ok || firstErr != nil {
			return
		}
		spec := j.Spec()
		if len(spec.On) == 0 {
			return
		}
		sides := []struct {
			child algebra.Node
			cols  []string
		}{
			{j.Children()[0], nil},
			{j.Children()[1], nil},
		}
		for _, p := range spec.On {
			sides[0].cols = append(sides[0].cols, p.Left)
			sides[1].cols = append(sides[1].cols, p.Right)
		}
		for _, side := range sides {
			scan, ok := side.child.(*algebra.ScanNode)
			if !ok {
				continue
			}
			if d.Table(scan.Name()) == nil {
				continue // not a base table (e.g. the stale view)
			}
			if err := d.EnsureIndex(scan.Name(), side.cols...); err != nil {
				firstErr = err
			}
		}
	})
	return firstErr
}

// Name returns the view's name.
func (v *View) Name() string { return v.def.Name }

// Definition returns the view's definition.
func (v *View) Definition() Definition { return v.def }

// Schema returns the view's schema (with the Definition 2 primary key).
func (v *View) Schema() relation.Schema { return v.schema }

// Data returns the materialized rows (the possibly stale S). The returned
// relation is immutable — maintenance publishes a replacement instead of
// mutating it — so it is safe to keep reading across a concurrent Replace.
func (v *View) Data() *relation.Relation { return v.data.Load() }

// KeyNames returns the view's primary-key attribute names.
func (v *View) KeyNames() []string { return v.schema.KeyNames() }

// Replace atomically swaps in newly maintained contents. The new relation
// must have a schema compatible with the view definition.
func (v *View) Replace(data *relation.Relation) error {
	if !data.Schema().Compatible(v.schema) {
		return fmt.Errorf("view: %s: replacement schema [%s] incompatible with [%s]",
			v.def.Name, data.Schema(), v.schema)
	}
	v.data.Store(data)
	return nil
}

// BindInto binds the view's stale contents into an evaluation context
// under StaleName.
func (v *View) BindInto(ctx *algebra.Context) { ctx.Bind(StaleName(v.def.Name), v.Data()) }

// coerceValue promotes a value's numeric kind where the target schema
// demands it. Maintenance expressions produce untyped computed columns;
// the view's declared schema restores the types (MaintainAt applies this
// per value as rows stream out of the pipeline).
func coerceValue(want relation.Kind, v relation.Value) relation.Value {
	if v.IsNull() {
		return v
	}
	switch want {
	case relation.KindInt:
		if v.Kind() != relation.KindInt {
			return relation.Int(v.AsInt())
		}
	case relation.KindFloat:
		if v.Kind() != relation.KindFloat {
			return relation.Float(v.AsFloat())
		}
	}
	return v
}
