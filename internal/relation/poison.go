package relation

import "sync/atomic"

// Recycled-storage poisoning, a test hook for the batch/vector/dictionary
// pools. Pool recycling is only safe if no consumer retains a reference
// into pooled storage past Release: a row copied out of a columnar batch
// (Batch.CopyRows) must hold its own string headers, never the batch
// vector's payload slice, and nothing may read a pooled dictionary after
// its owning ColSet is released.
//
// With poisoning enabled, every Reset of a string payload or dictionary
// overwrites the dead slots with PoisonString before truncating. A
// consumer that (incorrectly) kept the slice or the vector alive then
// observes PoisonString instead of its data, which the retention tests
// assert never happens on any pipeline output. Go strings are immutable,
// so a correctly copied header keeps pointing at the original bytes and
// is unaffected.

// PoisonString is the sentinel written into recycled string and
// dictionary slots while poisoning is enabled.
const PoisonString = "\x00☠poisoned-recycled-storage☠\x00"

var poisonRecycled atomic.Bool

// SetPoisonRecycled toggles recycled-storage poisoning (test hook).
// Returns the previous setting.
func SetPoisonRecycled(on bool) bool { return poisonRecycled.Swap(on) }
