// Package expr implements the scalar expression language used by selection
// predicates and generalized projections in the SVC relational algebra
// (the paper's Section 3.1 operators): column references, constants,
// arithmetic, comparisons, boolean logic, and the NULL-handling helpers
// (COALESCE, IS NULL, IF) that the change-table maintenance strategy's
// merge projection (Example 1) needs.
//
// Expressions are built unbound (columns referenced by name) and must be
// bound against a schema before evaluation; Bind resolves names to column
// indexes and returns a new, bound expression tree.
//
// Bound expressions evaluate two ways: Expr.Eval interprets the tree once
// per row, and EvalVec/FilterVec (vec.go) evaluate column-at-a-time over
// a relation.Batch's typed vectors — one tree walk per batch with tight
// typed loops per node, falling back to per-cell Value operations for
// mixed-kind or NULL-laden vectors. The two are exactly equivalent (the
// scalar interpreter is the specification; TestEvalVecMatchesScalar and
// FuzzEvalVecEquivalence pin the property down), and CanVec reports
// whether an expression is covered by the vectorizer. FilterVec applies a
// predicate by shrinking a selection vector — selection-vector filtering
// ≡ row compaction — without touching any cell.
//
// Concurrency contract: expression trees are immutable — Bind returns a
// new tree, Eval reads the row and the tree without mutating either — so
// one bound expression is safely shared by concurrent evaluations (the
// batch pipeline's morsel workers rely on this). EvalVec's scratch
// vectors come from an internal pool and never escape a single call.
package expr
