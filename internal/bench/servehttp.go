package bench

// The "serve-http" experiment: the serve experiment's workload pushed
// through the network front door. N client goroutines POST svcql text to
// an svcd server over loopback HTTP while a writer stages updates and the
// background refresher folds them in; the table reports end-to-end
// queries/sec — parse, plan, estimate, JSON, and TCP included — next to
// the refresh cycle count, plus the count of queries that completed while
// a maintenance cycle was provably mid-run.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/server"
)

func init() {
	register("serve-http",
		"svcd over loopback HTTP: queries/sec with N client goroutines during continuous staged updates + background refresh",
		serveHTTP)
}

func serveHTTP(s Scale) (*Table, error) {
	t := &Table{
		ID:    "serve-http",
		Title: "svcd HTTP serving: client throughput during continuous updates + background maintenance",
		Header: []string{"clients", "queries", "qps", "rejected", "staged",
			"cycles", "maxQuery", "qDuringMaint"},
	}
	window := time.Duration(float64(400*time.Millisecond) * float64(s))
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	// Same rationale as the in-process serve experiment: with fewer Ps
	// than goroutines, a CPU-bound cycle can run to completion before any
	// reader is scheduled, hiding the overlap this experiment measures.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	const sql = `SELECT SUM(visitCount) FROM visitView`
	for _, clients := range []int{1, 2, 4, 8} {
		d, sv, logT, videos, err := serveScenario(s, int64(clients))
		if err != nil {
			return nil, err
		}
		srv := server.New(d, server.Config{Addr: "127.0.0.1:0"})
		if err := srv.Register(sv); err != nil {
			return nil, err
		}
		if err := srv.Start(); err != nil {
			return nil, err
		}
		sv.StartBackgroundRefresh(5 * time.Millisecond)

		stop := make(chan struct{})
		var staged atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // writer: continuous staged inserts with light pacing
			defer wg.Done()
			next := int64(1_000_000)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := logT.StageInsert(svc.Row{svc.Int(next), svc.Int(next % int64(videos))}); err != nil {
					panic(err)
				}
				next++
				staged.Add(1)
				if i%64 == 63 {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()

		var queries, rejected, duringMaint atomic.Int64
		maxQuery := make([]time.Duration, clients)
		errs := make([]error, clients)
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				c := client.New(srv.Addr())
				for {
					select {
					case <-stop:
						return
					default:
					}
					r := sv.Refresher()
					inBefore, cyclesBefore := r.InCycle(), r.Cycles()
					qStart := time.Now()
					resp, err := c.Query(sql)
					if err != nil {
						if client.IsOverloaded(err) {
							rejected.Add(1)
							continue
						}
						errs[g] = err
						return
					}
					if d := time.Since(qStart); d > maxQuery[g] {
						maxQuery[g] = d
					}
					if resp.AsOfEpoch == 0 {
						errs[g] = fmt.Errorf("missing AsOfEpoch in %+v", resp)
						return
					}
					if inBefore && r.InCycle() && r.Cycles() == cyclesBefore {
						// Same cycle in flight before the HTTP round trip and
						// after: the query ran start-to-finish inside a
						// maintenance run without blocking on it.
						duringMaint.Add(1)
					}
					queries.Add(1)
				}
			}(g)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("serve-http: shutdown: %w", err)
		}
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("serve-http: client: %w", err)
			}
		}
		if err := sv.Refresher().Err(); err != nil {
			return nil, fmt.Errorf("serve-http: refresh cycle failed: %w", err)
		}

		var worstQuery time.Duration
		for _, d := range maxQuery {
			if d > worstQuery {
				worstQuery = d
			}
		}
		qps := float64(queries.Load()) / window.Seconds()
		t.AddRow(clients, queries.Load(), qps, rejected.Load(), staged.Load(),
			sv.Refresher().Cycles(), worstQuery, duringMaint.Load())
	}
	t.Notes = append(t.Notes,
		"end-to-end over loopback HTTP: parse → plan → pinned estimate → JSON per request",
		"qDuringMaint = queries that COMPLETED while a maintenance cycle was mid-run (snapshot serving never blocks readers)")
	return t, nil
}
