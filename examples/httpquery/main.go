// HTTP serving: the running example behind the svcd network front door.
//
// We build the Log/Video database, start an svcd server on a loopback
// port, create the visitView from svcql text over the wire, stage new
// visits, and query — all through the HTTP/JSON protocol a production
// deployment would use. The response carries the estimate, its confidence
// interval, and the staleness metadata (AsOfEpoch, Pending).
//
// Run with: go run ./examples/httpquery
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/server"
)

func main() {
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	const videos = 100
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 10)), svc.Float(1.5)})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	const visits = 10_000
	for i := 0; i < visits; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % videos))})
	}

	// Start the daemon on a random loopback port; refresh every 25ms.
	srv := server.New(d, server.Config{Addr: "127.0.0.1:0", Refresh: 25 * time.Millisecond})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	c := client.New(srv.Addr())

	// Materialize the view over the wire.
	created, err := c.CreateView(`
		CREATE VIEW visitView AS
		SELECT videoId, ownerId, COUNT(1) AS visitCount
		FROM Log JOIN Video ON Log.videoId = Video.videoId
		GROUP BY videoId, ownerId`, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s: %d rows, %s maintenance\n", created.View, created.Rows, created.Strategy)

	// 2000 new visits arrive after materialization: the view is stale.
	for i := 0; i < 2000; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(visits + i)), svc.Int(int64(i % videos))}); err != nil {
			log.Fatal(err)
		}
	}

	resp, err := c.Query(`SELECT SUM(visitCount) FROM visitView`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stale answer:  %.0f\n", *resp.StaleValue)
	fmt.Printf("SVC estimate:  %.0f  (95%% CI [%.0f, %.0f], method %s, epoch %d)\n",
		resp.Estimate.Value, resp.Estimate.Lo, resp.Estimate.Hi, resp.Estimate.Method, resp.AsOfEpoch)

	// A base-table SELECT runs through the batched pipeline instead.
	rows, err := c.Query(`SELECT videoId, ownerId FROM Video WHERE videoId < 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline rows: %v (of %d)\n", rows.Rows, rows.RowCount)

	// Wait for the background refresher to fold the staged visits in,
	// then ask again: the answer is exact and Pending clears.
	deadline := time.Now().Add(5 * time.Second)
	for d.HasPending() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fresh, err := c.Query(`SELECT SUM(visitCount) FROM visitView`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after refresh: %.0f (pending=%v, epoch %d)\n",
		fresh.Estimate.Value, fresh.Pending, fresh.AsOfEpoch)

	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d queries; view %s at %d cycles\n",
		st.Served, st.Views[0].Name, st.Views[0].Cycles)
}
