package bench

import (
	"math/rand"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/conviva"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/stats"
	"github.com/sampleclean/svc/internal/view"
)

func init() {
	register("fig9a", "Conviva-style views: maintenance time IVM vs SVC-10%", fig9a)
	register("fig9b", "Conviva-style views: query accuracy — Stale vs SVC+AQP vs SVC+CORR", fig9b)
}

func convivaConfig(s Scale, seed int64) conviva.Config {
	f := float64(s)
	clamp := func(v, lo int) int {
		if v < lo {
			return lo
		}
		return v
	}
	return conviva.Config{
		Records:   clamp(int(20000*f), 2000),
		Users:     clamp(int(500*f), 80),
		Resources: clamp(int(200*f), 40),
		Providers: 20,
		Days:      30,
		Z:         1.2,
		Seed:      seed,
	}
}

// fig9a: maintenance time across the eight views with 10% appended
// updates.
func fig9a(s Scale) (*Table, error) {
	t := &Table{ID: "fig9a", Title: "Conviva-style views: maintenance time for 10% appended updates",
		Header: []string{"view", "strategy", "ivm_time", "svc_time", "speedup"}}
	for _, def := range conviva.Views() {
		g := conviva.NewGenerator(convivaConfig(s, 31))
		d, err := g.Generate()
		if err != nil {
			return nil, err
		}
		d.SetParallelism(defaultParallelism)
		d.SetColumnar(defaultColumnar)
		v, err := view.Materialize(d, def)
		if err != nil {
			return nil, err
		}
		m, err := view.NewMaintainer(v)
		if err != nil {
			return nil, err
		}
		c, err := clean.New(m, 0.10, nil)
		if err != nil {
			return nil, err
		}
		if err := g.StageAppend(d, 0.10); err != nil {
			return nil, err
		}
		svcDur, err := timeIt(func() error {
			_, err := c.Clean(d)
			return err
		})
		if err != nil {
			return nil, err
		}
		stale := v.Data().Clone()
		ivmDur, err := timeIt(func() error {
			_, err := m.Maintain(d)
			return err
		})
		if err != nil {
			return nil, err
		}
		if err := v.Replace(stale); err != nil {
			return nil, err
		}
		t.AddRow(def.Name, m.Kind().String(), ivmDur, svcDur, float64(ivmDur)/float64(svcDur))
	}
	t.Notes = append(t.Notes, "paper Figure 9a: SVC-10% gives ≈7.5x average speedup on the Conviva views")
	return t, nil
}

// fig9b: accuracy across the eight views with random range/subset
// queries.
func fig9b(s Scale) (*Table, error) {
	t := &Table{ID: "fig9b", Title: "Conviva-style views: query accuracy (10% sample, 10% appended)",
		Header: []string{"view", "stale_err", "aqp_err", "corr_err", "queries"}}
	rng := rand.New(rand.NewSource(33))
	cfg := convivaConfig(s, 32)
	for _, def := range conviva.Views() {
		g := conviva.NewGenerator(cfg)
		d, err := g.Generate()
		if err != nil {
			return nil, err
		}
		d.SetParallelism(defaultParallelism)
		d.SetColumnar(defaultColumnar)
		v, err := view.Materialize(d, def)
		if err != nil {
			return nil, err
		}
		m, err := view.NewMaintainer(v)
		if err != nil {
			return nil, err
		}
		c, err := clean.New(m, 0.10, nil)
		if err != nil {
			return nil, err
		}
		if err := g.StageAppend(d, 0.10); err != nil {
			return nil, err
		}
		samples, err := c.Clean(d)
		if err != nil {
			return nil, err
		}
		snap := d.Snapshot()
		if err := snap.ApplyDeltas(); err != nil {
			return nil, err
		}
		truthV, err := view.Materialize(snap, def)
		if err != nil {
			return nil, err
		}
		var staleErrs, aqpErrs, corrErrs []float64
		for _, gq := range conviva.GenerateQueries(rng, def.Name, cfg, 25) {
			truth, err := estimator.RunExact(truthV.Data(), gq.Query)
			if err != nil || truth == 0 || truth != truth {
				continue
			}
			staleAns, err := estimator.RunExact(v.Data(), gq.Query)
			if err != nil {
				continue
			}
			aqp, err1 := estimator.AQP(samples, gq.Query, 0.95)
			corr, err2 := estimator.Corr(v.Data(), samples, gq.Query, 0.95)
			if err1 != nil || err2 != nil {
				continue
			}
			staleErrs = append(staleErrs, estimator.RelativeError(staleAns, truth))
			aqpErrs = append(aqpErrs, estimator.RelativeError(aqp.Value, truth))
			corrErrs = append(corrErrs, estimator.RelativeError(corr.Value, truth))
		}
		if len(staleErrs) == 0 {
			continue
		}
		t.AddRow(def.Name, stats.Median(staleErrs), stats.Median(aqpErrs), stats.Median(corrErrs), len(staleErrs))
	}
	t.Notes = append(t.Notes, "paper Figure 9b: SVC answers within ≈1% on the Conviva workload")
	return t, nil
}
