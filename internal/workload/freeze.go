package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/sampleclean/svc/internal/view"
)

// Fixture is a frozen regression: the minimized scenario spec, the engine
// config and estimator that tripped the trigger, what was observed, and
// the generator digest that makes the replay byte-identical. Fixtures are
// committed under internal/workload/fixtures/ and replayed by the fixture
// test on every CI run.
type Fixture struct {
	Name       string  `json:"name"`
	Trigger    string  `json:"trigger"`
	Detail     string  `json:"detail"`
	Estimator  string  `json:"estimator"`
	Strategy   string  `json:"strategy"`
	Columnar   bool    `json:"columnar"`
	Parallel   int     `json:"parallel"`
	Confidence float64 `json:"confidence"`
	Trials     int     `json:"trials"`
	Observed   float64 `json:"observed"`
	Bound      float64 `json:"bound"`
	Spec       Spec    `json:"spec"`
	Digest     string  `json:"digest"`
}

// strategyByName resolves a fixture's recorded strategy string.
func strategyByName(name string) (view.StrategyKind, error) {
	for _, k := range []view.StrategyKind{view.ChangeTable, view.Recompute} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown strategy %q", name)
}

// Config resolves the fixture's engine config.
func (f Fixture) Config() (Config, error) {
	k, err := strategyByName(f.Strategy)
	if err != nil {
		return Config{}, err
	}
	return Config{Strategy: k, Columnar: f.Columnar, Parallel: f.Parallel}, nil
}

// stillFails re-runs one cell for the candidate spec and reports whether
// the same (estimator, trigger) pair fires. The salted trial schedule is a
// pure function of the spec, so this is deterministic.
func stillFails(spec Spec, cfg Config, estimatorName, trigger string, opts Options) bool {
	cr, err := runCell(spec, cfg, opts)
	if err != nil {
		return false
	}
	a, ok := cr.accs[estimatorName]
	if !ok {
		return false
	}
	for _, f := range cellFailures(spec, cfg, estimatorName, a, opts) {
		if f.Trigger == trigger {
			return true
		}
	}
	return false
}

// Minimize shrinks a failing spec by greedy halving of BaseRows, DimRows,
// and Rounds (respecting the generator floors) while the failure keeps
// reproducing. Smaller fixtures replay faster in CI and localize the
// regression.
func Minimize(spec Spec, cfg Config, estimatorName, trigger string, opts Options) Spec {
	type shrink struct {
		get func(*Spec) *int
		min int
	}
	knobs := []shrink{
		{func(s *Spec) *int { return &s.BaseRows }, 600},
		{func(s *Spec) *int { return &s.DimRows }, 60},
		{func(s *Spec) *int { return &s.Rounds }, 1},
	}
	cur := spec
	for progress := true; progress; {
		progress = false
		for _, k := range knobs {
			cand := cur
			p := k.get(&cand)
			next := *p / 2
			if next < k.min {
				next = k.min
			}
			if next == *p {
				continue
			}
			*p = next
			if cand.Groups > cand.DimRows {
				cand.Groups = cand.DimRows
			}
			if stillFails(cand, cfg, estimatorName, trigger, opts) {
				cur = cand
				progress = true
			}
		}
	}
	return cur
}

// fixtureFileName derives the deterministic on-disk name.
func fixtureFileName(f Fixture) string {
	est := strings.ReplaceAll(f.Estimator, "+", "-")
	cfg := strings.NewReplacer("/", "_").Replace(strings.ReplaceAll(f.Strategy, "-", ""))
	col := "row"
	if f.Columnar {
		col = "col"
	}
	return fmt.Sprintf("%s_%s_%s_p%d_%s_%s.json", f.Scenario(), cfg, col, f.Parallel, est, f.Trigger)
}

// Scenario returns the frozen spec's scenario name.
func (f Fixture) Scenario() string { return f.Spec.Name }

// FreezeFailures minimizes and writes up to MaxFixtures failures as
// fixture files under opts.FixtureDir, returning the written paths. One
// fixture per (scenario, estimator, trigger) — extra configs tripping the
// same regression add no replay value.
func FreezeFailures(failures []Failure, scaled []Spec, opts Options) ([]string, error) {
	if err := os.MkdirAll(opts.FixtureDir, 0o755); err != nil {
		return nil, err
	}
	specOf := map[string]Spec{}
	for _, s := range scaled {
		specOf[s.Name] = s
	}
	seen := map[string]bool{}
	var written []string
	for _, f := range failures {
		if len(written) >= opts.MaxFixtures {
			break
		}
		dedup := f.Scenario + "|" + f.Estimator + "|" + f.Trigger
		if seen[dedup] {
			continue
		}
		seen[dedup] = true
		spec, ok := specOf[f.Scenario]
		if !ok {
			continue
		}
		cfg := Config{Columnar: f.Columnar, Parallel: f.Parallel}
		var err error
		if cfg.Strategy, err = strategyByName(f.Strategy); err != nil {
			return nil, err
		}
		minimized := Minimize(spec, cfg, f.Estimator, f.Trigger, opts)
		digest, err := Digest(minimized)
		if err != nil {
			return nil, err
		}
		fx := Fixture{
			Name:       f.Scenario + "/" + f.Estimator + "/" + f.Trigger,
			Trigger:    f.Trigger,
			Detail:     f.Detail,
			Estimator:  f.Estimator,
			Strategy:   f.Strategy,
			Columnar:   f.Columnar,
			Parallel:   f.Parallel,
			Confidence: opts.Confidence,
			Trials:     opts.Trials,
			Observed:   f.Observed,
			Bound:      f.Bound,
			Spec:       minimized,
			Digest:     digest,
		}
		path := filepath.Join(opts.FixtureDir, fixtureFileName(fx))
		if err := WriteFixture(path, fx); err != nil {
			return nil, err
		}
		written = append(written, path)
	}
	sort.Strings(written)
	return written, nil
}

// WriteFixture writes one fixture as pretty-printed JSON.
func WriteFixture(path string, f Fixture) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadFixtures reads every *.json fixture under dir, sorted by file name.
// A missing directory is an empty set, not an error.
func LoadFixtures(dir string) ([]Fixture, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]Fixture, 0, len(names))
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		var f Fixture
		if err := json.Unmarshal(b, &f); err != nil {
			return nil, fmt.Errorf("workload: fixture %s: %w", n, err)
		}
		out = append(out, f)
	}
	return out, nil
}
