package wal

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
)

// seedDB builds the deterministic pre-attach state every test reopens
// from, mirroring how svcd reloads its dataset before recovery.
func seedDB(t testing.TB) *db.Database {
	t.Helper()
	d := db.New()
	tb := d.MustCreate("kv", relation.NewSchema([]relation.Column{
		{Name: "id", Type: relation.KindInt},
		{Name: "val", Type: relation.KindString},
		{Name: "score", Type: relation.KindFloat},
	}, "id"))
	for i := 0; i < 8; i++ {
		tb.MustInsert(relation.Row{relation.Int(int64(i)), relation.String(fmt.Sprintf("v%d", i)), relation.Float(float64(i) / 3)})
	}
	return d
}

// fingerprint renders the exact catalog state — applied counter plus the
// (base, ΔR, ∇R) triple of every table, rows binary-encoded and sorted —
// so recovered-vs-live comparison catches double-applies that effective-
// content checks would miss.
func fingerprint(d *db.Database) string {
	v := d.Pin()
	var sb strings.Builder
	fmt.Fprintf(&sb, "applied=%d\n", v.AppliedSeq())
	names := v.Tables()
	sort.Strings(names)
	for _, name := range names {
		parts := []struct {
			tag string
			rel *relation.Relation
		}{{"base", v.Base(name)}, {"ins", v.Insertions(name)}, {"del", v.Deletions(name)}}
		for _, p := range parts {
			rows := make([]string, 0, p.rel.Len())
			for _, row := range p.rel.Rows() {
				var enc []byte
				for _, val := range row {
					enc = append(enc, val.Encode()...)
				}
				rows = append(rows, fmt.Sprintf("%x", enc))
			}
			sort.Strings(rows)
			fmt.Fprintf(&sb, "%s/%s:%s\n", name, p.tag, strings.Join(rows, ","))
		}
	}
	return sb.String()
}

func kvRow(id int64, val string, score float64) relation.Row {
	return relation.Row{relation.Int(id), relation.String(val), relation.Float(score)}
}

func mustStage(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// crashReopen crash-clones the filesystem, reopens the log on the clone,
// and recovers into a fresh seed catalog.
func crashReopen(t *testing.T, fs *MemFS, opt Options) (*db.Database, *Log, RecoveryStats) {
	t.Helper()
	opt.FS = fs.CrashClone()
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	d := seedDB(t)
	st, err := l.Recover(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, l, st
}

func TestAckedDurableAcrossCrash(t *testing.T) {
	fs := NewMemFS()
	opt := Options{SyncInterval: SyncEachCommit, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	d := seedDB(t)
	if st, err := l.Recover(d); err != nil || st.Records != 0 || st.Boundaries != 0 {
		t.Fatalf("empty-log recovery: %+v, %v", st, err)
	}
	l.Attach(d)
	kv := d.Table("kv")

	mustStage(t, kv.StageInsert(kvRow(100, "new", 1.5)))
	mustStage(t, kv.StageUpdate(kvRow(1, "upd", 2.5)))
	mustStage(t, kv.StageDelete(relation.Int(2)))
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	mustStage(t, kv.StageInsert(kvRow(101, "pending", 0)))
	mustStage(t, kv.StageUpdate(kvRow(3, "pending-upd", -1)))
	mustStage(t, kv.StageDelete(relation.Int(4)))
	// Exact-codec values: NaN and -0.0 must survive the round trip.
	mustStage(t, kv.StageInsert(kvRow(102, "nan", math.NaN())))
	mustStage(t, kv.StageInsert(kvRow(103, "negzero", math.Copysign(0, -1))))

	want := fingerprint(d)
	l.Kill()

	d2, l2, st := crashReopen(t, fs, opt)
	defer l2.Close()
	if st.Boundaries != 1 {
		t.Fatalf("recovered %d boundaries, want 1", st.Boundaries)
	}
	if st.PendingRecords != 5 {
		t.Fatalf("recovered %d pending records, want 5", st.PendingRecords)
	}
	if got := fingerprint(d2); got != want {
		t.Fatalf("recovered state diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
}

// TestGroupCommitConcurrentWriters exercises the group-commit path (real
// sync interval, many writers) and checks every acknowledged record
// survives a crash. Run with -race.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	fs := NewMemFS()
	opt := Options{SyncInterval: 500 * time.Microsecond, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	d := seedDB(t)
	if _, err := l.Recover(d); err != nil {
		t.Fatal(err)
	}
	l.Attach(d)
	kv := d.Table("kv")

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(1000 + w*perWriter + i)
				if err := kv.StageInsert(kvRow(id, "c", float64(w))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(d)
	if s := l.Stats(); s.Appends != writers*perWriter || s.Boundaries != 1 {
		t.Fatalf("stats %+v: want %d appends, 1 boundary", s, writers*perWriter)
	}
	l.Kill()

	d2, l2, _ := crashReopen(t, fs, opt)
	defer l2.Close()
	if got := fingerprint(d2); got != want {
		t.Fatalf("recovered state diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
}

func TestRotationCheckpointCompaction(t *testing.T) {
	fs := NewMemFS()
	opt := Options{SyncInterval: SyncEachCommit, SegmentBytes: 256, CheckpointBytes: 1, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	d := seedDB(t)
	if _, err := l.Recover(d); err != nil {
		t.Fatal(err)
	}
	l.Attach(d)
	kv := d.Table("kv")
	for i := 0; i < 20; i++ {
		mustStage(t, kv.StageUpdate(kvRow(int64(i%8), fmt.Sprintf("cycle%d", i), float64(i))))
		if err := d.ApplyDeltas(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	var s Stats
	for {
		s = l.Stats()
		if s.Checkpoints >= 1 && s.Compactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint/compaction: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	if s.Segments > 10 {
		t.Fatalf("compaction left %d segments", s.Segments)
	}
	want := fingerprint(d)
	l.Kill()

	d2, l2, st := crashReopen(t, fs, opt)
	defer l2.Close()
	if st.CheckpointSeq == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", st)
	}
	if got := fingerprint(d2); got != want {
		t.Fatalf("recovered state diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
}

func TestBackpressureAdmitAndShed(t *testing.T) {
	fs := NewMemFS()
	opt := Options{SyncInterval: SyncEachCommit, MaxUnappliedBytes: 1, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	d := seedDB(t)
	if _, err := l.Recover(d); err != nil {
		t.Fatal(err)
	}
	l.Attach(d)
	kv := d.Table("kv")

	mustStage(t, kv.StageInsert(kvRow(100, "first", 0)))
	if !l.Shed() {
		t.Fatal("Shed() = false with unapplied depth over the bound")
	}
	done := make(chan error, 1)
	go func() { done <- kv.StageInsert(kvRow(101, "blocked", 0)) }()
	select {
	case err := <-done:
		t.Fatalf("writer was admitted over the depth bound (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	// The maintenance boundary retires the logged depth and unblocks the
	// writer.
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer still blocked after the boundary retired the log")
	}
	if s := l.Stats(); s.Stalls < 1 {
		t.Fatalf("stats %+v: want ≥1 backpressure stall", s)
	}
}

func TestSyncFailurePoisonsLog(t *testing.T) {
	fs := NewMemFS()
	injected := errors.New("injected disk failure")
	opt := Options{SyncInterval: SyncEachCommit, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	d := seedDB(t)
	l.Attach(d)
	kv := d.Table("kv")

	// Ops for the first flush: create segment, write header, syncdir,
	// write chunk, sync. Fail the fsync.
	fs.FailAt(5, injected)
	if err := kv.StageInsert(kvRow(100, "x", 0)); !errors.Is(err, injected) {
		t.Fatalf("StageInsert err = %v, want injected sync failure", err)
	}
	// Sticky: later writes refuse instead of pretending durability.
	if err := kv.StageInsert(kvRow(101, "y", 0)); !errors.Is(err, injected) {
		t.Fatalf("post-failure StageInsert err = %v, want sticky failure", err)
	}
	if s := l.Stats(); s.LastError == "" {
		t.Fatal("stats hide the sticky failure")
	}
}

func TestTornTailToleratedCorruptMiddleRejected(t *testing.T) {
	fs := NewMemFS()
	opt := Options{SyncInterval: SyncEachCommit, SegmentBytes: 64, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	d := seedDB(t)
	if _, err := l.Recover(d); err != nil {
		t.Fatal(err)
	}
	l.Attach(d)
	kv := d.Table("kv")
	for i := 0; i < 10; i++ {
		mustStage(t, kv.StageInsert(kvRow(int64(100+i), "r", 0)))
	}
	want := fingerprint(d)
	l.Kill()

	// A torn tail — garbage appended past the last fsynced record — must
	// read as a clean end of log.
	clone := fs.CrashClone()
	names, err := clone.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	var segNames []string
	for _, name := range names {
		if strings.HasSuffix(name, segSuffix) {
			segNames = append(segNames, name)
		}
	}
	sort.Strings(segNames)
	if len(segNames) < 2 {
		t.Fatalf("rotation produced %d segments, want ≥2", len(segNames))
	}
	tail := clone.files["wal/"+segNames[len(segNames)-1]]
	tail.data = append(tail.data, 0xde, 0xad, 0xbe, 0xef)
	tail.syncedLen = len(tail.data)

	l2, err := Open("wal", Options{SyncInterval: SyncEachCommit, FS: clone})
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	d2 := seedDB(t)
	if _, err := l2.Recover(d2); err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(d2); got != want {
		t.Fatalf("recovered state diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
	l2.Close()

	// Damage before the log tail is corruption, not a crash shape: refuse
	// to open rather than silently dropping acknowledged records.
	clone2 := fs.CrashClone()
	first := clone2.files["wal/"+segNames[0]]
	first.data[segHeaderLen+frameHeader+2] ^= 0xff
	if _, err := Open("wal", Options{SyncInterval: SyncEachCommit, FS: clone2}); err == nil {
		t.Fatal("corrupt middle segment opened without error")
	}
}

func TestReopenAppendReopen(t *testing.T) {
	fs := NewMemFS()
	opt := Options{SyncInterval: SyncEachCommit, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	d := seedDB(t)
	l.Attach(d)
	kv := d.Table("kv")
	mustStage(t, kv.StageInsert(kvRow(100, "a", 0)))
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean close, reopen the same filesystem, keep writing: the sequence
	// must resume past everything on disk and recovery must see both
	// generations.
	l2, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	d2 := seedDB(t)
	if _, err := l2.Recover(d2); err != nil {
		t.Fatal(err)
	}
	l2.Attach(d2)
	kv2 := d2.Table("kv")
	mustStage(t, kv2.StageInsert(kvRow(200, "b", 0)))
	want := fingerprint(d2)
	l2.Kill()

	d3, l3, _ := crashReopen(t, fs, opt)
	defer l3.Close()
	if got := fingerprint(d3); got != want {
		t.Fatalf("recovered state diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
}
