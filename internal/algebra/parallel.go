package algebra

import "sync"

// Partitioned parallel execution. Operators with partitionable work —
// hash-join build and probe, aggregation, hash sampling — fork up to
// Context.Parallelism goroutines when the input is large enough to
// amortize the fork. Parallel plans produce byte-identical results to
// serial ones: build partitioning is by key hash (a key's rows never
// split across partitions), probe and filter chunking is contiguous with
// in-order concatenation, and group output is merged in first-occurrence
// order.

// parallelMinRows is the smallest operator input worth forking for;
// below it goroutine startup dominates the work.
const parallelMinRows = 2048

// parallelMinChunk bounds the worker count so each worker gets a
// meaningful slice of rows.
const parallelMinChunk = 512

// workers returns the effective worker count for an operator processing
// n rows under this context: 1 when parallelism is off or n is small,
// otherwise Parallelism clamped so chunks stay at least parallelMinChunk
// rows.
func (c *Context) workers(n int) int {
	p := c.Parallelism
	if p <= 1 || n < parallelMinRows {
		return 1
	}
	if p > 256 {
		p = 256
	}
	if p > n/parallelMinChunk {
		p = n / parallelMinChunk
	}
	if p < 2 {
		return 1
	}
	return p
}

// runWorkers runs f(0), …, f(w-1), concurrently when w > 1.
func runWorkers(w int, f func(p int)) {
	if w <= 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for p := 0; p < w; p++ {
		go func(p int) {
			defer wg.Done()
			f(p)
		}(p)
	}
	wg.Wait()
}

// eachChunk splits [0, n) into w contiguous ranges and runs f on each,
// concurrently when w > 1.
func eachChunk(w, n int, f func(lo, hi int)) {
	if w <= 1 {
		f(0, n)
		return
	}
	runWorkers(w, func(p int) {
		f(n*p/w, n*(p+1)/w)
	})
}

// chunkRange returns worker p's contiguous slice bounds of [0, n) among w
// workers.
func chunkRange(p, w, n int) (lo, hi int) {
	return n * p / w, n * (p + 1) / w
}
