package svc_test

import (
	"math"
	"sync"
	"testing"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/internal/view"
)

// Multi-view group maintenance: one cycle over K views must produce
// exactly what K independent cycles produce, at lower total cost, and the
// shared-subplan cache must never leak results across catalog versions —
// the concurrent test drives staging, querying, and group cycles together
// under -race.

// buildPair creates two aggregate views over the same Log⋈Video join on
// one database; their maintenance plans share the whole delta-propagation
// subtree, so a group cycle evaluates it once.
func buildPair(t testing.TB) (*svc.Database, *svc.Table, *svc.StaleView, *svc.StaleView) {
	t.Helper()
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	for i := 0; i < 50; i++ {
		video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 7)), svc.Float(float64(i) / 10)})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < 2000; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 50))})
	}
	join := func() svc.Node {
		return svc.Join(
			svc.Scan("Log", logT.Schema()),
			svc.Scan("Video", video.Schema()),
			svc.JoinSpec{Type: svc.Inner, On: svc.On("videoId", "videoId"), Merge: true},
		)
	}
	a, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: svc.GroupByAgg(
		join(), []string{"videoId", "ownerId"},
		svc.CountAs("visitCount"),
		svc.SumAs(svc.ColRef("duration"), "totalDuration"),
	)}, svc.WithSamplingRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.New(d, svc.ViewDefinition{Name: "ownerView", Plan: svc.GroupByAgg(
		join(), []string{"ownerId"},
		svc.CountAs("visits"),
		svc.SumAs(svc.ColRef("duration"), "watched"),
	)}, svc.WithSamplingRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	return d, logT, a, b
}

// truthCheck rematerializes the view's definition against the (folded)
// base tables and compares with the served contents.
func truthCheck(t *testing.T, d *svc.Database, sv *svc.StaleView) {
	t.Helper()
	def := sv.View().Definition()
	truth, err := view.Materialize(d, view.Definition{Name: def.Name + "·truth", Plan: def.Plan})
	if err != nil {
		t.Fatal(err)
	}
	got := sv.View().Data().Clone()
	want := truth.Data().Clone()
	got.SortByKey()
	want.SortByKey()
	if got.Len() != want.Len() {
		t.Fatalf("%s: served %d rows, truth %d", def.Name, got.Len(), want.Len())
	}
	for i, row := range got.Rows() {
		wrow := want.Rows()[i]
		for j := range row {
			if row[j].Equal(wrow[j]) {
				continue
			}
			// Incremental maintenance sums floats in a different order than
			// recomputation; allow ulp-scale drift on numeric cells.
			g, w := row[j].AsFloat(), wrow[j].AsFloat()
			if math.Abs(g-w) > 1e-9*math.Max(1, math.Abs(w)) {
				t.Fatalf("%s: row %d col %d: served %v, truth %v", def.Name, i, j, row, wrow)
			}
		}
	}
}

func TestMaintainViewsSharedEquivalence(t *testing.T) {
	d, logT, a, b := buildPair(t)
	for i := 0; i < 600; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(10_000 + i)), svc.Int(int64(i % 50))}); err != nil {
			t.Fatal(err)
		}
	}

	// Independent control: the same cycle view-by-view on the same pin,
	// without publishing.
	pin := d.Pin()
	var indepRows int64
	for _, sv := range []*svc.StaleView{a, b} {
		_, stats, err := sv.Maintainer().MaintainAt(pin, sv.View().Data())
		if err != nil {
			t.Fatal(err)
		}
		indepRows += stats.RowsTouched
	}

	stats, err := svc.MaintainViews(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Views != 2 {
		t.Fatalf("group stats views=%d, want 2", stats.Views)
	}
	if stats.SharedHits == 0 || stats.Subplans == 0 {
		t.Fatalf("no sharing in group cycle: %+v", stats)
	}
	if stats.RowsSaved <= 0 {
		t.Fatalf("rowsSaved=%d, want > 0", stats.RowsSaved)
	}
	if stats.RowsTouched >= indepRows {
		t.Fatalf("group cycle touched %d rows, independent cycles %d — sharing saved nothing",
			stats.RowsTouched, indepRows)
	}
	// Both views cover every table with deltas, so the fold was full and
	// rematerializing from the bases gives ground truth.
	if d.HasPending() {
		t.Fatal("group cycle over all views should fold all deltas")
	}
	truthCheck(t, d, a)
	truthCheck(t, d, b)

	// Duplicate views and cross-database groups are rejected.
	if _, err := svc.MaintainViews(a, a); err == nil {
		t.Fatal("duplicate view in group should error")
	}
}

// TestMaintainViewsConcurrent churns staged inserts and queries while
// group cycles run: every cycle must stay consistent (the shared cache is
// epoch-keyed, so a cached subtree never crosses a catalog version), and
// after quiescing the served contents must equal a fresh materialization.
func TestMaintainViewsConcurrent(t *testing.T) {
	d, logT, a, b := buildPair(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	// Churn: keep staging fresh log rows.
	go func() {
		defer wg.Done()
		// Bounded churn keeps the race-instrumented run fast while still
		// overlapping staging with every group cycle below.
		for next := int64(100_000); next < 112_000; next++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = logT.StageInsert(svc.Row{svc.Int(next), svc.Int(next % 50)})
		}
	}()
	// Queries against both views while cycles publish.
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sv := range []*svc.StaleView{a, b} {
				if _, err := sv.Query(svc.Count(nil)); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}
	}()

	for i := 0; i < 12; i++ {
		if _, err := svc.MaintainViews(a, b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("concurrent query failed: %v", err)
	default:
	}

	// Quiesce: one final cycle folds everything staged before it.
	if _, err := svc.MaintainViews(a, b); err != nil {
		t.Fatal(err)
	}
	truthCheck(t, d, a)
	truthCheck(t, d, b)
}
