// Command svctool operates a sharded svcd fleet: it brings up N svcd
// child processes holding hash partitions of one dataset, fronts them
// with the stateless scatter-gather router, and benchmarks the tier.
//
// Usage:
//
//	svctool up -shards 2                    # 2-shard fleet + router on 127.0.0.1:7780
//	svctool up -shards 4 -dataset tpcd -scale 0.5 -compose compose.yml
//	svctool route -shards http://h0:7781,http://h1:7781 -dataset videolog
//	svctool bench                            # cluster experiment → BENCH_cluster.json
//
// `up` spawns the shards (svcd -shard-id i -shard-count N), waits for
// every health check, starts the router in-process, and emits a
// docker-compose manifest describing the equivalent containerized fleet
// (shard services run svcd; the router service runs `svctool route`).
// Shard processes are supervised loosely on purpose: a shard that dies
// is left dead so the router's failure semantics (502 naming the shard,
// or degraded answers with -degrade) stay observable; svctool itself
// keeps serving through the survivors.
//
// `route` runs only the router over an existing fleet — the container
// entrypoint for the manifest `up` emits.
//
// `bench` runs the in-process cluster scaling experiment (router qps at
// 1, 2, 4 shards) and writes the machine-readable report.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/internal/bench"
	"github.com/sampleclean/svc/internal/shard"
	"github.com/sampleclean/svc/server"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "up":
		err = cmdUp(os.Args[2:])
	case "route":
		err = cmdRoute(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "svctool: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("svctool %s: %v", os.Args[1], err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `svctool — operate a sharded svcd fleet

commands:
  up     spawn N svcd shard processes + the scatter-gather router
  route  run only the router over an existing fleet
  bench  run the cluster scaling experiment, write BENCH_cluster.json

run "svctool <command> -h" for flags.
`)
}

// cmdUp spawns the shard fleet as svcd child processes, fronts it with
// an in-process router, and blocks until SIGINT/SIGTERM.
func cmdUp(args []string) error {
	fs := flag.NewFlagSet("up", flag.ExitOnError)
	var (
		shards   = fs.Int("shards", 2, "fleet size")
		dataset  = fs.String("dataset", "videolog", "dataset every shard loads its partition of: videolog | tpcd")
		scale    = fs.Float64("scale", 1.0, "dataset scale factor passed to each shard")
		addr     = fs.String("addr", "127.0.0.1:7780", "router listen address")
		basePort = fs.Int("base-port", 7791, "first shard port; shard i listens on base-port+i")
		svcdBin  = fs.String("svcd", "", "path to the svcd binary (default: svcd on PATH, else go run ./cmd/svcd)")
		degrade  = fs.Bool("degrade", false, "answer view queries from surviving shards (wider CIs) instead of 502 when a shard is down")
		deadline = fs.Duration("shard-deadline", 5*time.Second, "per-shard call deadline")
		compose  = fs.String("compose", "docker-compose.cluster.yml", "path the docker-compose manifest is written to (empty = skip)")
		healthT  = fs.Duration("health-timeout", 60*time.Second, "how long to wait for every shard's health check")
		walRoot  = fs.String("wal-root", "", "directory for per-shard durable logs (shard i logs to wal-root/shard-i; empty = no durability)")
		refresh  = fs.Duration("refresh", 0, "per-shard background refresh interval (0 = svcd default)")
	)
	fs.Parse(args)
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	pl, err := shard.ByDataset(*dataset, *shards)
	if err != nil {
		return err
	}

	peers := make([]string, *shards)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://127.0.0.1:%d", *basePort+i)
	}
	peerList := strings.Join(peers, ",")

	if *compose != "" {
		manifest := composeManifest(*shards, *dataset, *scale, *degrade)
		if err := os.WriteFile(*compose, []byte(manifest), 0o644); err != nil {
			return fmt.Errorf("write compose manifest: %w", err)
		}
		log.Printf("wrote %s (containerized equivalent of this fleet)", *compose)
	}

	cmds := make([]*exec.Cmd, *shards)
	defer func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				cmd.Wait()
			}
		}
	}()
	for i := 0; i < *shards; i++ {
		shardArgs := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", *basePort+i),
			"-dataset", *dataset,
			"-scale", fmt.Sprintf("%g", *scale),
			"-shard-id", fmt.Sprint(i),
			"-shard-count", fmt.Sprint(*shards),
			"-peers", peerList,
		}
		if *walRoot != "" {
			shardArgs = append(shardArgs, "-wal-dir", fmt.Sprintf("%s/shard-%d", *walRoot, i))
		}
		if *refresh > 0 {
			shardArgs = append(shardArgs, "-refresh", refresh.String())
		}
		cmd := svcdCommand(*svcdBin, shardArgs)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start shard %d: %w", i, err)
		}
		cmds[i] = cmd
		log.Printf("shard %d/%d: pid %d on %s", i, *shards, cmd.Process.Pid, peers[i])
	}

	if err := waitHealthy(peers, *healthT); err != nil {
		return err
	}
	log.Printf("all %d shards healthy", *shards)

	rt, err := server.NewRouter(server.RouterConfig{
		Addr:          *addr,
		Shards:        peers,
		Placement:     pl,
		Degrade:       *degrade,
		ShardDeadline: *deadline,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	log.Printf("router listening on http://%s (shards=%d dataset=%s degrade=%v)", rt.Addr(), *shards, *dataset, *degrade)
	log.Printf("  try: curl -s %s/query -d '{\"sql\":\"SELECT SUM(visitCount) FROM visitView\"}'", rt.Addr())
	log.Printf("  try: curl -s %s/stats", rt.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: router first, then the fleet")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		log.Printf("router shutdown: %v", err)
	}
	return nil // deferred cleanup TERMs and reaps the shard processes
}

// svcdCommand builds the shard child-process invocation: an explicit
// -svcd path, else svcd on PATH, else `go run ./cmd/svcd` so a source
// checkout works with no build step.
func svcdCommand(bin string, args []string) *exec.Cmd {
	if bin == "" {
		if found, err := exec.LookPath("svcd"); err == nil {
			bin = found
		}
	}
	if bin != "" {
		return exec.Command(bin, args...)
	}
	return exec.Command("go", append([]string{"run", "./cmd/svcd"}, args...)...)
}

// waitHealthy polls every shard's /healthz until all answer or the
// deadline expires.
func waitHealthy(peers []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, p := range peers {
		cl := client.New(p)
		for {
			if err := cl.Healthy(); err == nil {
				break
			} else if time.Now().After(deadline) {
				return fmt.Errorf("shard at %s not healthy after %v: %w", p, timeout, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// cmdRoute runs only the router over an already-running fleet.
func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	var (
		shardList = fs.String("shards", "", "comma-separated shard base URLs in shard-id order (required)")
		dataset   = fs.String("dataset", "videolog", "dataset the fleet serves (fixes the placement): videolog | tpcd")
		addr      = fs.String("addr", "127.0.0.1:7780", "router listen address")
		degrade   = fs.Bool("degrade", false, "answer view queries from surviving shards (wider CIs) instead of 502 when a shard is down")
		deadline  = fs.Duration("shard-deadline", 5*time.Second, "per-shard call deadline")
	)
	fs.Parse(args)
	if *shardList == "" {
		return fmt.Errorf("-shards is required (comma-separated shard URLs in shard-id order)")
	}
	peers := strings.Split(*shardList, ",")
	pl, err := shard.ByDataset(*dataset, len(peers))
	if err != nil {
		return err
	}
	rt, err := server.NewRouter(server.RouterConfig{
		Addr:          *addr,
		Shards:        peers,
		Placement:     pl,
		Degrade:       *degrade,
		ShardDeadline: *deadline,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	log.Printf("router listening on http://%s (shards=%d dataset=%s degrade=%v)", rt.Addr(), len(peers), *dataset, *degrade)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return rt.Shutdown(ctx)
}

// cmdBench runs the cluster scaling experiment and writes the report.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		scale = fs.Float64("scale", 1.0, "workload scale factor")
		out   = fs.String("out", "BENCH_cluster.json", "machine-readable report path")
	)
	fs.Parse(args)
	start := time.Now()
	table, err := bench.Run("cluster", bench.Scale(*scale))
	if err != nil {
		return err
	}
	fmt.Println(table.Render())
	report := &bench.JSONReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       *scale,
	}
	report.Experiments = append(report.Experiments, bench.JSONResultOf(table, time.Since(start)))
	if err := bench.WriteJSON(*out, report); err != nil {
		return err
	}
	log.Printf("wrote %s", *out)
	return nil
}

// composeManifest renders the docker-compose equivalent of the fleet:
// one service per shard running svcd, plus the router running
// `svctool route` against the shard services by DNS name. The image is a
// placeholder — any image with the two binaries on PATH works.
func composeManifest(shards int, dataset string, scale float64, degrade bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Generated by `svctool up -shards %d -dataset %s -scale %g`.\n", shards, dataset, scale)
	b.WriteString("# One service per hash partition plus the stateless router; placement is\n")
	b.WriteString("# pure data derived from (dataset, shard count), so no coordinator exists.\n")
	b.WriteString("services:\n")
	peers := make([]string, shards)
	for i := 0; i < shards; i++ {
		peers[i] = fmt.Sprintf("http://svcd-%d:7781", i)
	}
	peerList := strings.Join(peers, ",")
	for i := 0; i < shards; i++ {
		fmt.Fprintf(&b, "  svcd-%d:\n", i)
		b.WriteString("    image: svc:latest\n")
		fmt.Fprintf(&b, "    command: [\"svcd\", \"-addr\", \":7781\", \"-dataset\", %q, \"-scale\", \"%g\", \"-shard-id\", \"%d\", \"-shard-count\", \"%d\", \"-peers\", %q]\n",
			dataset, scale, i, shards, peerList)
	}
	b.WriteString("  router:\n")
	b.WriteString("    image: svc:latest\n")
	fmt.Fprintf(&b, "    command: [\"svctool\", \"route\", \"-addr\", \":7780\", \"-dataset\", %q, \"-shards\", %q, \"-degrade=%v\"]\n",
		dataset, peerList, degrade)
	b.WriteString("    ports:\n")
	b.WriteString("      - \"7780:7780\"\n")
	b.WriteString("    depends_on:\n")
	for i := 0; i < shards; i++ {
		fmt.Fprintf(&b, "      - svcd-%d\n", i)
	}
	return b.String()
}
