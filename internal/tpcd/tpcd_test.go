package tpcd

import (
	"math/rand"
	"testing"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
	"github.com/sampleclean/svc/internal/view"
)

func smallConfig(seed int64) Config {
	return Config{Orders: 400, MaxLines: 3, Customers: 60, Suppliers: 15, Parts: 40, Z: 2, Days: 365, Seed: seed}
}

func TestGenerateShapes(t *testing.T) {
	g := NewGenerator(smallConfig(1))
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Table(Region).Len(); got != 5 {
		t.Errorf("regions = %d", got)
	}
	if got := d.Table(Nation).Len(); got != 25 {
		t.Errorf("nations = %d", got)
	}
	if got := d.Table(Orders).Len(); got != 400 {
		t.Errorf("orders = %d", got)
	}
	li := d.Table(Lineitem).Len()
	if li < 400 || li > 1200 {
		t.Errorf("lineitems = %d, want 400..1200", li)
	}
	if len(d.ForeignKeys()) != 7 {
		t.Errorf("foreign keys = %d", len(d.ForeignKeys()))
	}
	// Orders' totalprice should be consistent with its lineitems.
	ot := d.Table(Orders)
	row, ok := ot.Rows().Get(relation.Int(0))
	if !ok || row[3].AsFloat() <= 0 {
		t.Errorf("order 0 = %v", row)
	}
}

func TestSkewAffectsPopularity(t *testing.T) {
	count := func(z float64) int {
		g := NewGenerator(Config{Orders: 800, Customers: 100, Z: z, Seed: 7})
		d, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		// how many orders belong to the most popular customer
		counts := map[int64]int{}
		for _, row := range d.Table(Orders).Rows().Rows() {
			counts[row[1].AsInt()]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return best
	}
	if !(count(4) > count(1)) {
		t.Error("higher z should concentrate orders on the top customer")
	}
}

func TestStageUpdatesFraction(t *testing.T) {
	g := NewGenerator(smallConfig(2))
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	base := d.Table(Lineitem).Len()
	if err := g.StageUpdates(d, 0.10); err != nil {
		t.Fatal(err)
	}
	ins, del := d.Table(Lineitem).PendingSize()
	staged := ins // updates appear in both ins and del
	if staged < base/20 || staged > base/4 {
		t.Errorf("staged %d (del %d) for base %d at 10%%", ins, del, base)
	}
	oins, _ := d.Table(Orders).PendingSize()
	if oins == 0 {
		t.Error("no new orders staged")
	}
}

// All views must materialize, and every view except V21 (nested) must get
// change-table maintenance; V21 falls back to recompute.
func TestViewsMaterializeAndChooseStrategies(t *testing.T) {
	g := NewGenerator(smallConfig(3))
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	defs := append([]view.Definition{JoinView(), CubeView()}, ComplexViews()...)
	for _, def := range defs {
		v, err := view.Materialize(d, def)
		if err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		if v.Data().Len() == 0 {
			t.Errorf("%s: empty view", def.Name)
		}
		m, err := view.NewMaintainer(v)
		if err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		wantKind := view.ChangeTable
		if def.Name == "V21" {
			wantKind = view.Recompute
		}
		if m.Kind() != wantKind {
			t.Errorf("%s: strategy %v, want %v", def.Name, m.Kind(), wantKind)
		}
	}
}

// Maintenance correctness on the TPCD workload: change-table == recompute
// ground truth for every view.
func TestViewMaintenanceMatchesGroundTruth(t *testing.T) {
	g := NewGenerator(smallConfig(4))
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	defs := append([]view.Definition{JoinView(), CubeView()}, ComplexViews()...)
	views := make([]*view.View, len(defs))
	maints := make([]*view.Maintainer, len(defs))
	for i, def := range defs {
		v, err := view.Materialize(d, def)
		if err != nil {
			t.Fatal(err)
		}
		m, err := view.NewMaintainer(v)
		if err != nil {
			t.Fatal(err)
		}
		views[i], maints[i] = v, m
	}
	if err := g.StageUpdates(d, 0.10); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	for i, def := range defs {
		truth, err := view.Materialize(snap, def)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := maints[i].Maintain(d); err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		got, want := views[i].Data(), truth.Data()
		if got.Len() != want.Len() {
			t.Errorf("%s: %d rows, want %d", def.Name, got.Len(), want.Len())
			continue
		}
		keyIdx := want.Schema().Key()
		for _, wrow := range want.Rows() {
			grow, ok := got.GetByEncodedKey(wrow.KeyOf(keyIdx))
			if !ok {
				t.Errorf("%s: missing row %v", def.Name, wrow)
				break
			}
			for c := range wrow {
				dv := grow[c].AsFloat() - wrow[c].AsFloat()
				if dv > 1e-6 || dv < -1e-6 {
					t.Errorf("%s: row %v vs %v", def.Name, grow, wrow)
					break
				}
			}
		}
	}
}

// SVC end-to-end on the join view: cleaning at 10% touches far fewer rows
// than IVM, and CORR beats the stale baseline on the Figure 5 queries.
func TestJoinViewSVCEndToEnd(t *testing.T) {
	g := NewGenerator(Config{Orders: 2000, Customers: 150, Suppliers: 30, Parts: 120, Z: 2, Seed: 5})
	d, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	def := JoinView()
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	c, err := clean.New(m, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.StageUpdates(d, 0.10); err != nil {
		t.Fatal(err)
	}
	samples, err := c.Clean(d)
	if err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	truthView, err := view.Materialize(snap, def)
	if err != nil {
		t.Fatal(err)
	}
	staleData := v.Data().Clone() // Maintain below replaces the view contents
	full, err := m.Maintain(d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if samples.Stats.RowsTouched >= full.RowsTouched {
		t.Errorf("SVC-10%% touched %d rows vs IVM %d", samples.Stats.RowsTouched, full.RowsTouched)
	}
	var staleErr, corrErr float64
	n := 0
	for _, jq := range JoinViewQueries() {
		truth, _, err := estimator.GroupExact(truthView.Data(), jq.Query, jq.GroupBy)
		if err != nil {
			t.Fatalf("%s: %v", jq.Name, err)
		}
		staleAns, _, err := estimator.GroupExact(staleData, jq.Query, jq.GroupBy)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := estimator.GroupCorr(staleData, samples, jq.Query, jq.GroupBy, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		sMed, _ := estimator.GroupStaleErrorStats(staleAns, truth)
		cMed, _ := estimator.GroupErrorStats(corr.Groups, truth)
		staleErr += sMed
		corrErr += cMed
		n++
	}
	t.Logf("median rel err over %d queries: stale %.4f, corr %.4f", n, staleErr/float64(n), corrErr/float64(n))
	if corrErr >= staleErr {
		t.Errorf("SVC+CORR (%.4f) should beat stale (%.4f)", corrErr/float64(n), staleErr/float64(n))
	}
}

func TestGenerateQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	space := ViewQuerySpace(smallConfig(1))["V3"]
	qs := GenerateQueries(rng, 50, space.Preds, space.Aggs)
	if len(qs) != 50 {
		t.Fatalf("generated %d queries", len(qs))
	}
	aggs := map[estimator.Agg]bool{}
	for _, q := range qs {
		aggs[q.Query.Agg] = true
		if q.Query.Pred == nil {
			t.Fatal("query without predicate")
		}
	}
	if len(aggs) < 2 {
		t.Errorf("expected a mix of aggregate types, got %v", aggs)
	}
	if GenerateQueries(rng, 5, nil, space.Aggs) != nil {
		t.Error("no predicate attrs should give no queries")
	}
}

func TestCubeRollupsShape(t *testing.T) {
	rolls := CubeRollups()
	if len(rolls) != 13 {
		t.Fatalf("rollups = %d", len(rolls))
	}
	if rolls[0].GroupBy != nil {
		t.Error("Q1 should be the grand total")
	}
}

func TestPriceSkew(t *testing.T) {
	// The Zipfian price distribution must be long-tailed: the max far
	// exceeds the median for z=2.
	g := NewGenerator(smallConfig(9))
	var prices []float64
	for i := 0; i < 5000; i++ {
		prices = append(prices, g.price())
	}
	med := stats.Median(prices)
	max := prices[0]
	for _, p := range prices {
		if p > max {
			max = p
		}
	}
	if max < 10*med {
		t.Errorf("price distribution not long-tailed: median %v max %v", med, max)
	}
}

func TestDenormGenerator(t *testing.T) {
	dg := NewDenormGenerator(smallConfig(31))
	d, err := dg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tab := d.Table(Sales)
	if tab.Len() < 400 {
		t.Fatalf("sales rows = %d", tab.Len())
	}
	// Functional dependencies of the denormalized layout: custkey
	// determines nationkey determines regionkey.
	nationOf := map[int64]int64{}
	regionOf := map[int64]int64{}
	ci := tab.Schema().ColIndex("c_custkey")
	ni := tab.Schema().ColIndex("n_nationkey")
	ri := tab.Schema().ColIndex("r_regionkey")
	for _, row := range tab.Rows().Rows() {
		c, n, r := row[ci].AsInt(), row[ni].AsInt(), row[ri].AsInt()
		if have, ok := nationOf[c]; ok && have != n {
			t.Fatalf("custkey %d maps to nations %d and %d", c, have, n)
		}
		nationOf[c] = n
		if have, ok := regionOf[n]; ok && have != r {
			t.Fatalf("nation %d maps to regions %d and %d", n, have, r)
		}
		regionOf[n] = r
	}
	// Updates stage and the cube maintains correctly.
	def := DenormCubeView()
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != view.ChangeTable {
		t.Fatalf("cube strategy = %v", m.Kind())
	}
	if err := dg.StageUpdates(d, 0.10); err != nil {
		t.Fatal(err)
	}
	ins, del := tab.PendingSize()
	if ins == 0 {
		t.Fatal("no staged inserts")
	}
	_ = del
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	truth, err := view.Materialize(snap, def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Maintain(d); err != nil {
		t.Fatal(err)
	}
	if v.Data().Len() != truth.Data().Len() {
		t.Fatalf("maintained cube %d cells, truth %d", v.Data().Len(), truth.Data().Len())
	}
	keyIdx := truth.Data().Schema().Key()
	for _, wrow := range truth.Data().Rows() {
		grow, ok := v.Data().GetByEncodedKey(wrow.KeyOf(keyIdx))
		if !ok {
			t.Fatalf("missing cube cell %v", wrow)
		}
		for c := range wrow {
			dv := grow[c].AsFloat() - wrow[c].AsFloat()
			if dv > 1e-6 || dv < -1e-6 {
				t.Fatalf("cube cell mismatch %v vs %v", grow, wrow)
			}
		}
	}
}

func TestDenormRollupQueryRand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dg := NewDenormGenerator(smallConfig(32))
	d, err := dg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.Materialize(d, DenormCubeView())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pred := DenormRollupQueryRand(rng, dg.Config())
		if _, err := estimator.RunExact(v.Data(), estimator.Sum("revenue", pred)); err != nil {
			t.Fatalf("random predicate failed: %v", err)
		}
	}
}
