package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
	"github.com/sampleclean/svc/internal/view"
)

// ChurnShape selects how a scenario's update volume is spread across
// staging rounds.
type ChurnShape uint8

// Churn schedules.
const (
	// Drip spreads the scenario's churn evenly over all rounds.
	Drip ChurnShape = iota
	// Burst front-loads ~70% of the churn into round 0, modeling a bulk
	// load or upstream backfill that lands between maintenance cycles.
	Burst
)

// String names the shape for dashboards.
func (c ChurnShape) String() string {
	if c == Burst {
		return "burst"
	}
	return "drip"
}

// ViewShape selects the materialized view a scenario serves.
type ViewShape uint8

// View shapes.
const (
	// Grouped is γ_grp(Fact ⋈ Dim): one view row per group, the shape
	// whose cardinality the Groups knob controls.
	Grouped ViewShape = iota
	// Flat is Π_{id,grp,val}(Fact ⋈ Dim): one view row per fact, keyed by
	// fact id — the shape outlier indexes are eligible on (Definition 5:
	// the cleaner's pushed-down sample covers the Fact relation).
	Flat
)

// String names the shape for dashboards.
func (v ViewShape) String() string {
	if v == Flat {
		return "flat"
	}
	return "grouped"
}

// Spec is one generated adversarial scenario: a seeded, fully
// deterministic description of base data, churn, value distribution, and
// query mix. Two generators built from equal Specs produce byte-identical
// databases and delta streams regardless of engine settings (parallelism,
// columnar mode) — that is what makes frozen fixtures replayable.
type Spec struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`

	// Base data.
	BaseRows int `json:"base_rows"` // Fact rows at Build time
	DimRows  int `json:"dim_rows"`  // Dim rows (join fan-in)
	Groups   int `json:"groups"`    // group-key cardinality (wide vs narrow)

	// Churn.
	Rounds     int        `json:"rounds"`      // staging rounds
	ChurnRate  float64    `json:"churn_rate"`  // total ops ≈ ChurnRate·BaseRows
	Shape      ChurnShape `json:"shape"`       // drip vs burst
	DeleteFrac float64    `json:"delete_frac"` // fraction of ops that delete
	UpdateFrac float64    `json:"update_frac"` // fraction of ops that update in place
	Skew       float64    `json:"skew"`        // Zipf z over update/delete keys (0 = uniform)
	Correlated bool       `json:"correlated"`  // pair each update with a delete of a hot sibling

	// Value distribution.
	OutlierRate  float64 `json:"outlier_rate"`  // heavy-tail injection probability per value
	OutlierScale float64 `json:"outlier_scale"` // tail magnitude multiplier

	// Serving.
	View        ViewShape `json:"view"`         // grouped vs flat
	SampleRatio float64   `json:"sample_ratio"` // cleaner ratio m
	MixShift    bool      `json:"mix_shift"`    // query mix changes phase round to round
	OutlierK    int       `json:"outlier_k"`    // outlier-index capacity (0 = no index)
}

// ViewName is the name every scenario's materialized view is created
// under.
const ViewName = "wkView"

// AggAttr returns the view attribute aggregate queries run over.
func (s Spec) AggAttr() string {
	if s.View == Flat {
		return "val"
	}
	return "total"
}

// ScaleTo returns a copy with row counts multiplied by f (floors keep the
// CLT estimators in their working regime at bench smoke scales).
func (s Spec) ScaleTo(f float64) Spec {
	out := s
	clamp := func(v, lo int) int {
		if v < lo {
			return lo
		}
		return v
	}
	out.BaseRows = clamp(int(float64(s.BaseRows)*f), 600)
	out.DimRows = clamp(int(float64(s.DimRows)*f), 60)
	if out.Groups > out.DimRows {
		out.Groups = out.DimRows
	}
	return out
}

// Definition returns the scenario's view definition over the generated
// schema.
func (s Spec) Definition() view.Definition {
	join := algebra.MustJoin(
		algebra.Scan("Fact", factSchema()),
		algebra.Scan("Dim", dimSchema()),
		algebra.JoinSpec{Type: algebra.Inner, On: algebra.On("dimId", "dimKey")},
	)
	if s.View == Flat {
		return view.Definition{Name: ViewName, Plan: algebra.MustProjectKeyed(join, algebra.OutCols("id", "grp", "val"), "id")}
	}
	return view.Definition{Name: ViewName, Plan: algebra.MustGroupBy(join,
		[]string{"grp"},
		algebra.CountAs("cnt"),
		algebra.SumAs(expr.Col("val"), "total"),
	)}
}

func factSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "id", Type: relation.KindInt},
		{Name: "dimId", Type: relation.KindInt},
		{Name: "val", Type: relation.KindFloat},
	}, "id")
}

func dimSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "dimKey", Type: relation.KindInt},
		{Name: "grp", Type: relation.KindInt},
	}, "dimKey")
}

// Generator stages a Spec's delta stream into a database. Its op stream is
// a pure function of (Spec, round sequence): it never reads database or
// engine state, so staging is identical whether or not maintenance folds
// run between rounds and under any Parallelism/Columnar setting.
type Generator struct {
	spec Spec
	d    *db.Database
	fact *db.Table
	dim  *db.Table

	// live tracks Fact ids that existed at Build time and have not been
	// staged for deletion; updates and deletes target only these, so the
	// stream cannot depend on whether earlier rounds were folded.
	live   []int64
	nextID int64
	zipfU  *stats.Zipf // update/delete key skew (nil until first use)
	zipfD  *stats.Zipf // dim skew for inserted rows
}

// NewGenerator builds the base database for the scenario. The returned
// generator is positioned before round 0.
func NewGenerator(spec Spec) (*Generator, error) {
	if spec.BaseRows <= 0 || spec.DimRows <= 0 || spec.Groups <= 0 || spec.Rounds <= 0 {
		return nil, fmt.Errorf("workload: spec %q needs positive BaseRows/DimRows/Groups/Rounds", spec.Name)
	}
	g := &Generator{spec: spec, d: db.New(), nextID: int64(spec.BaseRows)}
	rng := rand.New(rand.NewSource(spec.Seed))
	g.zipfD = stats.NewZipf(spec.DimRows, spec.Skew)
	var err error
	if g.dim, err = g.d.Create("Dim", dimSchema()); err != nil {
		return nil, err
	}
	for i := 0; i < spec.DimRows; i++ {
		if err := g.dim.Insert(relation.Row{relation.Int(int64(i)), relation.Int(int64(i % spec.Groups))}); err != nil {
			return nil, err
		}
	}
	if g.fact, err = g.d.Create("Fact", factSchema()); err != nil {
		return nil, err
	}
	g.live = make([]int64, 0, spec.BaseRows)
	for i := 0; i < spec.BaseRows; i++ {
		// Base facts spread uniformly over dims: the scenario Skew knob
		// shapes the CHURN (update/delete key choice and inserted rows'
		// dims), not the starting population — per the matrix's charter of
		// Zipf-skewed update keys hammering hot rows of an evenly built
		// view.
		id := int64(i)
		row := relation.Row{relation.Int(id), relation.Int(int64(rng.Intn(spec.DimRows))), relation.Float(g.value(rng))}
		if err := g.fact.Insert(row); err != nil {
			return nil, err
		}
		g.live = append(g.live, id)
	}
	return g, nil
}

// DB returns the generated database.
func (g *Generator) DB() *db.Database { return g.d }

// Spec returns the generating spec.
func (g *Generator) Spec() Spec { return g.spec }

// value draws one measure value; with probability OutlierRate it lands in
// the injected heavy tail (exponential excess scaled by OutlierScale).
func (g *Generator) value(rng *rand.Rand) float64 {
	v := 1 + 99*rng.Float64()
	if g.spec.OutlierRate > 0 && rng.Float64() < g.spec.OutlierRate {
		scale := g.spec.OutlierScale
		if scale <= 0 {
			scale = 20
		}
		v *= scale * (1 + rng.ExpFloat64())
	}
	return v
}

// opsForRound returns how many staged operations round r receives under
// the churn schedule.
func (g *Generator) opsForRound(r int) int {
	total := int(g.spec.ChurnRate * float64(g.spec.BaseRows))
	if total <= 0 || r < 0 || r >= g.spec.Rounds {
		return 0
	}
	if g.spec.Shape == Burst {
		head := total * 7 / 10
		if r == 0 {
			return head
		}
		if g.spec.Rounds == 1 {
			return total
		}
		return (total - head) / (g.spec.Rounds - 1)
	}
	return total / g.spec.Rounds
}

// pickLive draws a live Fact id by Zipf rank (rank 0 = hottest) and
// removes it from the live set when remove is set. The live ordering is
// part of the deterministic generator state: swap-removal keeps every
// subsequent draw reproducible.
func (g *Generator) pickLive(rng *rand.Rand, remove bool) (int64, bool) {
	n := len(g.live)
	if n == 0 {
		return 0, false
	}
	if g.zipfU == nil || g.zipfU.N() != n {
		g.zipfU = stats.NewZipf(n, g.spec.Skew)
	}
	i := g.zipfU.Rank(rng)
	id := g.live[i]
	if remove {
		g.live[i] = g.live[n-1]
		g.live = g.live[:n-1]
		g.zipfU = nil
	}
	return id, true
}

// StageRound stages round r's delta batch. Rounds must be staged in
// order (0, 1, …, Rounds−1); each call reseeds its own rng so the batch
// depends only on the spec, the round number, and the deletes staged by
// earlier rounds.
func (g *Generator) StageRound(r int) error {
	rng := rand.New(rand.NewSource(g.spec.Seed ^ int64(uint64(r+1)*0x9E3779B97F4A7C15)))
	ops := g.opsForRound(r)
	for i := 0; i < ops; i++ {
		u := rng.Float64()
		switch {
		case u < g.spec.DeleteFrac:
			id, ok := g.pickLive(rng, true)
			if !ok {
				continue
			}
			if err := g.fact.StageDelete(relation.Int(id)); err != nil {
				return fmt.Errorf("workload: %s round %d delete: %w", g.spec.Name, r, err)
			}
		case u < g.spec.DeleteFrac+g.spec.UpdateFrac:
			id, ok := g.pickLive(rng, false)
			if !ok {
				continue
			}
			row := relation.Row{relation.Int(id), relation.Int(int64(g.zipfD.Rank(rng))), relation.Float(g.value(rng))}
			if err := g.fact.StageUpdate(row); err != nil {
				return fmt.Errorf("workload: %s round %d update: %w", g.spec.Name, r, err)
			}
			if g.spec.Correlated {
				// Correlated churn: the update's hot key drags a sibling
				// deletion with it (paired write-then-retire traffic).
				if did, ok := g.pickLive(rng, true); ok {
					if err := g.fact.StageDelete(relation.Int(did)); err != nil {
						return fmt.Errorf("workload: %s round %d paired delete: %w", g.spec.Name, r, err)
					}
				}
			}
		default:
			id := g.nextID
			g.nextID++
			row := relation.Row{relation.Int(id), relation.Int(int64(g.zipfD.Rank(rng))), relation.Float(g.value(rng))}
			if err := g.fact.StageInsert(row); err != nil {
				return fmt.Errorf("workload: %s round %d insert: %w", g.spec.Name, r, err)
			}
		}
	}
	return nil
}

// QueryMix returns round r's aggregate queries over the scenario view.
// With MixShift set the mix rotates phase: sums, then counts/avg, then
// predicated slices — so the hot query keeps moving, which is what
// stresses hit-probability scheduling.
func (s Spec) QueryMix(r int) []estimator.Query {
	attr := s.AggAttr()
	half := expr.Gt(expr.Col("grp"), expr.IntLit(int64(s.Groups/2)))
	low := expr.Le(expr.Col("grp"), expr.IntLit(int64(s.Groups/2)))
	full := []estimator.Query{
		estimator.Sum(attr, nil),
		estimator.Count(nil),
		estimator.Avg(attr, nil),
		estimator.Sum(attr, half),
		estimator.Count(low),
	}
	if !s.MixShift {
		return full
	}
	switch r % 3 {
	case 0:
		return []estimator.Query{estimator.Sum(attr, nil), estimator.Sum(attr, half)}
	case 1:
		return []estimator.Query{estimator.Count(nil), estimator.Avg(attr, nil)}
	default:
		return []estimator.Query{estimator.Count(low), estimator.Avg(attr, nil), estimator.Sum(attr, low)}
	}
}

// SelectPred returns the scenario's CleanSelect predicate (a value slice
// of the view, so staged updates move rows across the boundary).
func (s Spec) SelectPred() expr.Expr {
	if s.View == Flat {
		return expr.Gt(expr.Col("val"), expr.FloatLit(60))
	}
	return expr.Gt(expr.Col("total"), expr.FloatLit(120))
}

// ShiftingMix returns a query schedule for driving a multi-view scheduler:
// phase p of `phases` sends perPhase queries to view (p mod views) and one
// query to every other view. It is the cross-view analogue of MixShift —
// the hot view keeps moving, so a scheduler ranking on a stale mix model
// keeps maintaining yesterday's hot view.
func ShiftingMix(phases, views, perPhase int) [][]int {
	out := make([][]int, phases)
	for p := range out {
		row := make([]int, views)
		for v := range row {
			row[v] = 1
		}
		row[p%views] = perPhase
		out[p] = row
	}
	return out
}

// Digest generates the scenario end to end — base build plus every
// round's staged deltas, with no maintenance in between — and returns a
// SHA-256 over the canonical row stream. Equal digests mean byte-identical
// generation; the seed-stability tests pin these as goldens and the frozen
// fixtures carry them so replayability breaks loudly.
func Digest(spec Spec) (string, error) {
	g, err := NewGenerator(spec)
	if err != nil {
		return "", err
	}
	for r := 0; r < spec.Rounds; r++ {
		if err := g.StageRound(r); err != nil {
			return "", err
		}
	}
	return DigestDatabase(g.d), nil
}

// DigestDatabase hashes every base table's rows plus its staged delta
// relations in catalog order.
func DigestDatabase(d *db.Database) string {
	h := sha256.New()
	pin := d.Pin()
	for _, name := range pin.Tables() {
		for _, rel := range []*relation.Relation{pin.Base(name), pin.Insertions(name), pin.Deletions(name)} {
			fmt.Fprintf(h, "#%s/%d\n", name, rel.Len())
			for i := 0; i < rel.Len(); i++ {
				fmt.Fprintln(h, rel.Row(i))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Scenarios returns the standard adversarial matrix: every estimator in
// the suite is cross-validated against every one of these the way the
// paper's evaluation runs videolog/tpcd/conviva. Names are stable — CI
// gates and frozen fixtures key on them.
func Scenarios() []Spec {
	base := Spec{
		BaseRows: 4000, DimRows: 200, Groups: 100,
		Rounds: 3, ChurnRate: 0.25, DeleteFrac: 0.15, UpdateFrac: 0.25,
		View: Grouped, SampleRatio: 0.3,
	}
	mk := func(name string, seed int64, mut func(*Spec)) Spec {
		s := base
		s.Name, s.Seed = name, seed
		if mut != nil {
			mut(&s)
		}
		return s
	}
	return []Spec{
		mk("uniform-drip", 101, nil),
		mk("light-drip", 102, func(s *Spec) {
			// Near-fresh regime: churn so small that sampling noise can
			// rival staleness — the adversarial case for the paper's
			// "always clean" claim and the usual svc-vs-stale fixture.
			s.ChurnRate = 0.02
		}),
		// Higher sample ratio: skewed churn concentrates corrections on a
		// few hot keys, so the correction distribution is heavy-tailed and
		// needs a larger k for the CLT intervals to hold their level.
		mk("zipf-hot-keys", 103, func(s *Spec) { s.Skew = 2; s.SampleRatio = 0.45 }),
		mk("burst-churn", 104, func(s *Spec) { s.Shape = Burst; s.ChurnRate = 0.4 }),
		mk("correlated-pairs", 105, func(s *Spec) { s.Correlated = true; s.Skew = 1.2 }),
		mk("wide-groups", 106, func(s *Spec) { s.Groups = 200; s.DimRows = 400; s.SampleRatio = 0.4 }),
		mk("narrow-groups", 107, func(s *Spec) { s.Groups = 60; s.DimRows = 120; s.SampleRatio = 0.5 }),
		mk("heavy-tail", 108, func(s *Spec) {
			// Append-heavy telemetry with retention deletes: heavy values
			// arrive by insert and leave by delete, so every extreme delta
			// carries its extreme value and the outlier index can absorb
			// it. (In-place shrink-updates would hide a huge delta behind a
			// small current value — outside any value-threshold index, by
			// construction; see the svc+corr rows of this scenario for how
			// badly plain CLT fares even on the indexable stream.)
			s.View = Flat
			s.UpdateFrac = 0
			s.DeleteFrac = 0.2
			s.OutlierRate = 0.02
			s.OutlierScale = 50
			s.OutlierK = 100
			s.SampleRatio = 0.2
		}),
		mk("shifting-mix", 109, func(s *Spec) { s.MixShift = true; s.Rounds = 6; s.ChurnRate = 0.3 }),
		mk("adversarial-blend", 110, func(s *Spec) {
			// Everything at once except heavy tails (heavy-tail isolates
			// those): extreme key skew, bursty arrival, correlated
			// delete/update pairs, high churn, thin sampling.
			s.View = Flat
			s.Skew = 3
			s.Shape = Burst
			s.Correlated = true
			s.ChurnRate = 0.35
			s.SampleRatio = 0.2
		}),
	}
}

// ScenarioByName finds a standard scenario.
func ScenarioByName(name string) (Spec, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
