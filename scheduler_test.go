package svc_test

import (
	"fmt"
	"testing"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/internal/workload"
)

// Error-budget scheduler tests: a skewed query mix must keep the hot
// view's staleness bounded while the cold view is deferred, and the
// MaxAge starvation bound must force the cold view through anyway. The
// clock is a test-owned variable, so every staleness age is exact and the
// ticks are fully deterministic (TickNow, never the background goroutine).

type schedScenario struct {
	d          *svc.Database
	hotT, cold *svc.Table
	hot, cld   *svc.StaleView
	s          *svc.Scheduler
	now        time.Time
}

func newSchedScenario(t *testing.T, cfg svc.SchedulerConfig) *schedScenario {
	t.Helper()
	sc := &schedScenario{now: time.Unix(1_000_000, 0)}
	sc.d = svc.NewDatabase()
	mk := func(name string, rows int) *svc.Table {
		tb := sc.d.MustCreate(name, svc.NewSchema([]svc.Column{
			svc.Col("id", svc.KindInt),
			svc.Col("grp", svc.KindInt),
			svc.Col("val", svc.KindFloat),
		}, "id"))
		for i := 0; i < rows; i++ {
			tb.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 8)), svc.Float(float64(i))})
		}
		return tb
	}
	sc.hotT = mk("Hot", 800)
	sc.cold = mk("Cold", 200)
	cfg.Now = func() time.Time { return sc.now }
	sc.s = svc.NewScheduler(sc.d, cfg)
	view := func(name, table string, tb *svc.Table) *svc.StaleView {
		sv, err := svc.New(sc.d, svc.ViewDefinition{Name: name, Plan: svc.GroupByAgg(
			svc.Scan(table, tb.Schema()),
			[]string{"grp"},
			svc.CountAs("cnt"),
			svc.SumAs(svc.ColRef("val"), "total"),
		)}, svc.WithSamplingRatio(0.5), svc.WithScheduler(sc.s))
		if err != nil {
			t.Fatal(err)
		}
		return sv
	}
	sc.hot = view("hotView", "Hot", sc.hotT)
	sc.cld = view("coldView", "Cold", sc.cold)
	return sc
}

// stage puts n fresh rows into a table (keys advance monotonically).
func (sc *schedScenario) stage(t *testing.T, tb *svc.Table, base *int64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		*base++
		if err := tb.StageInsert(svc.Row{svc.Int(*base), svc.Int(*base % 8), svc.Float(1)}); err != nil {
			t.Fatal(err)
		}
	}
}

// skewedQueries drives the query mix: 50 hot queries for each cold one.
func (sc *schedScenario) skewedQueries(t *testing.T) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if _, err := sc.hot.Query(svc.Count(nil)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sc.cld.Query(svc.Count(nil)); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerSkewedMixDefersCold(t *testing.T) {
	sc := newSchedScenario(t, svc.SchedulerConfig{Budget: 1})
	if !sc.hot.Scheduled() || sc.hot.Scheduler() != sc.s {
		t.Fatal("WithScheduler should register the view")
	}
	hotKey, coldKey := int64(10_000), int64(50_000)
	sc.skewedQueries(t)
	const ticks = 5
	for tick := 1; tick <= ticks; tick++ {
		sc.stage(t, sc.hotT, &hotKey, 500)
		sc.stage(t, sc.cold, &coldKey, 1)
		sc.now = sc.now.Add(time.Second)
		stats, err := sc.s.TickNow()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Views != 1 {
			t.Fatalf("tick %d: maintained %d views, want 1 (budget)", tick, stats.Views)
		}
		pin := sc.d.Pin()
		if p := pin.PendingRows("Hot"); p != 0 {
			t.Fatalf("tick %d: hot view left %d pending rows — staleness not bounded", tick, p)
		}
		if p := pin.PendingRows("Cold"); p != tick {
			t.Fatalf("tick %d: cold pending %d rows, want %d (deferred with deltas intact)", tick, p, tick)
		}
		sc.skewedQueries(t)
	}
	st := sc.s.Stats()
	if st.Ticks != ticks || st.GroupCycles != ticks {
		t.Fatalf("ticks=%d cycles=%d, want %d each", st.Ticks, st.GroupCycles, ticks)
	}
	byName := map[string]svc.SchedulerViewStat{}
	for _, v := range st.Views {
		byName[v.Name] = v
	}
	if c := byName["hotView"].Cycles; c != ticks {
		t.Fatalf("hot view maintained %d times, want every tick (%d)", c, ticks)
	}
	if d := byName["coldView"].Deferred; d != ticks {
		t.Fatalf("cold view deferred %d times, want %d", d, ticks)
	}
	if byName["hotView"].HitProb <= byName["coldView"].HitProb {
		t.Fatalf("query-mix model inverted: hot %v, cold %v",
			byName["hotView"].HitProb, byName["coldView"].HitProb)
	}
}

func TestSchedulerStarvationBound(t *testing.T) {
	maxAge := 3 * time.Second
	sc := newSchedScenario(t, svc.SchedulerConfig{Budget: 1, MaxAge: maxAge})
	hotKey, coldKey := int64(10_000), int64(50_000)
	sc.skewedQueries(t)
	const ticks = 12
	for tick := 1; tick <= ticks; tick++ {
		sc.stage(t, sc.hotT, &hotKey, 500)
		sc.stage(t, sc.cold, &coldKey, 1)
		sc.now = sc.now.Add(time.Second)
		if _, err := sc.s.TickNow(); err != nil {
			t.Fatal(err)
		}
		// The starvation guard: after any tick, no stale view's age may
		// reach MaxAge — a view that old was forced into this very cycle.
		for _, v := range sc.s.Stats().Views {
			if v.PendingRows > 0 && v.AgeMillis >= maxAge.Milliseconds() {
				t.Fatalf("tick %d: %s stale for %dms, starvation bound %v violated",
					tick, v.Name, v.AgeMillis, maxAge)
			}
		}
		sc.skewedQueries(t)
	}
	st := sc.s.Stats()
	byName := map[string]svc.SchedulerViewStat{}
	for _, v := range st.Views {
		byName[v.Name] = v
	}
	// Forced cycles ride along without consuming the budget, so the hot
	// view still lands every tick while cold is maintained every MaxAge.
	if c := byName["hotView"].Cycles; c != ticks {
		t.Fatalf("hot view maintained %d times, want %d", c, ticks)
	}
	if c := byName["coldView"].Cycles; c < ticks/4 || c >= ticks {
		t.Fatalf("cold view maintained %d times, want ~every %v (≥%d, <%d)",
			c, maxAge, ticks/4, ticks)
	}
}

// TestSchedulerSharedTableClosure: two views reading the SAME table can
// never be split by the budget — folding the table for one view would
// retire the other's deltas unseen, so the scheduler must pull the
// sibling into the same group cycle.
func TestSchedulerSharedTableClosure(t *testing.T) {
	sc := newSchedScenario(t, svc.SchedulerConfig{Budget: 1})
	sibling, err := svc.New(sc.d, svc.ViewDefinition{Name: "hotTwin", Plan: svc.GroupByAgg(
		svc.Scan("Hot", sc.hotT.Schema()),
		[]string{"grp"},
		svc.CountAs("n"),
	)}, svc.WithSamplingRatio(0.5), svc.WithScheduler(sc.s))
	if err != nil {
		t.Fatal(err)
	}
	hotKey := int64(10_000)
	sc.skewedQueries(t)
	sc.stage(t, sc.hotT, &hotKey, 300)
	sc.now = sc.now.Add(time.Second)
	stats, err := sc.s.TickNow()
	if err != nil {
		t.Fatal(err)
	}
	// Budget is 1, but the twin shares table Hot: both must be in the
	// group (and the cold view, on its own table, must not be).
	if stats.Views != 2 {
		t.Fatalf("group maintained %d views, want 2 (budget seed + shared-table sibling)", stats.Views)
	}
	for _, v := range sc.s.Stats().Views {
		if (v.Name == "hotView" || v.Name == "hotTwin") && v.Cycles != 1 {
			t.Fatalf("%s: cycles=%d, want 1", v.Name, v.Cycles)
		}
	}
	// The twin serves the folded rows: its contents match a direct count.
	exact, err := sibling.ExactQuery(svc.Sum("n", nil))
	if err != nil {
		t.Fatal(err)
	}
	if int(exact) != 800+300 {
		t.Fatalf("twin serves %v rows counted, want %d", exact, 800+300)
	}
}

// TestRefresherDefersToScheduler: a background refresher on a scheduled
// view stands down (SkipsDeferred) instead of running its own cycles.
func TestRefresherDefersToScheduler(t *testing.T) {
	sc := newSchedScenario(t, svc.SchedulerConfig{Budget: 1})
	r := sc.hot.StartBackgroundRefresh(time.Millisecond)
	defer sc.hot.Close()
	key := int64(10_000)
	sc.stage(t, sc.hotT, &key, 10)
	deadline := time.Now().Add(5 * time.Second)
	for r.SkipsDeferred() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("refresher never deferred: skips=%d (idle %d, deferred %d)",
				r.Skips(), r.SkipsIdle(), r.SkipsDeferred())
		}
		time.Sleep(time.Millisecond)
	}
	if r.Cycles() != 0 {
		t.Fatalf("deferred refresher ran %d cycles, want 0", r.Cycles())
	}
	if r.Skips() != r.SkipsIdle()+r.SkipsDeferred() {
		t.Fatal("Skips() must be the sum of the idle and deferred splits")
	}
	if r.LastCycleDuration() != 0 {
		t.Fatal("no cycle ran; LastCycleDuration should be zero")
	}
}

// TestRefresherLastCycleDuration: the live cost signal reports the most
// recent cycle and never exceeds the max.
func TestRefresherLastCycleDuration(t *testing.T) {
	_, logT, sv := refreshScenario(t)
	r := sv.StartBackgroundRefresh(time.Millisecond)
	if err := logT.StageInsert(svc.Row{svc.Int(10_000), svc.Int(1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Cycles() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no refresh cycle completed")
		}
		time.Sleep(time.Millisecond)
	}
	if r.LastCycleDuration() <= 0 {
		t.Fatalf("LastCycleDuration=%v after a completed cycle", r.LastCycleDuration())
	}
	if r.LastCycleDuration() > r.MaxCycleDuration() {
		t.Fatalf("last cycle %v exceeds max %v", r.LastCycleDuration(), r.MaxCycleDuration())
	}
}

// Scheduler-under-shift: the workload package's ShiftingMix schedule moves
// the hot view every phase. The scheduler's query-mix model must re-rank —
// each phase's budgeted maintenance slot should follow the newly hot view —
// and the starvation bound must keep every cold view's staleness capped
// while the mix churns. The fake clock makes every age exact.

type shiftScenario struct {
	d      *svc.Database
	tables []*svc.Table
	views  []*svc.StaleView
	s      *svc.Scheduler
	now    time.Time
	nextID []int64
}

func newShiftScenario(t *testing.T, n int, cfg svc.SchedulerConfig) *shiftScenario {
	t.Helper()
	sc := &shiftScenario{now: time.Unix(2_000_000, 0), nextID: make([]int64, n)}
	sc.d = svc.NewDatabase()
	cfg.Now = func() time.Time { return sc.now }
	sc.s = svc.NewScheduler(sc.d, cfg)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("T%d", i)
		tb := sc.d.MustCreate(name, svc.NewSchema([]svc.Column{
			svc.Col("id", svc.KindInt),
			svc.Col("grp", svc.KindInt),
			svc.Col("val", svc.KindFloat),
		}, "id"))
		for r := 0; r < 300; r++ {
			sc.nextID[i]++
			tb.MustInsert(svc.Row{svc.Int(sc.nextID[i]), svc.Int(sc.nextID[i] % 8), svc.Float(1)})
		}
		sv, err := svc.New(sc.d, svc.ViewDefinition{Name: fmt.Sprintf("view%d", i), Plan: svc.GroupByAgg(
			svc.Scan(name, tb.Schema()),
			[]string{"grp"},
			svc.CountAs("cnt"),
			svc.SumAs(svc.ColRef("val"), "total"),
		)}, svc.WithSamplingRatio(0.5), svc.WithScheduler(sc.s))
		if err != nil {
			t.Fatal(err)
		}
		sc.tables = append(sc.tables, tb)
		sc.views = append(sc.views, sv)
	}
	return sc
}

func (sc *shiftScenario) stageAll(t *testing.T, n int) {
	t.Helper()
	for i, tb := range sc.tables {
		for r := 0; r < n; r++ {
			sc.nextID[i]++
			if err := tb.StageInsert(svc.Row{svc.Int(sc.nextID[i]), svc.Int(sc.nextID[i] % 8), svc.Float(1)}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func (sc *shiftScenario) cyclesByView(t *testing.T) []uint64 {
	t.Helper()
	st := sc.s.Stats()
	out := make([]uint64, len(sc.views))
	for _, v := range st.Views {
		var i int
		if _, err := fmt.Sscanf(v.Name, "view%d", &i); err != nil {
			t.Fatalf("unexpected view name %q", v.Name)
		}
		out[i] = v.Cycles
	}
	return out
}

// TestSchedulerFollowsShiftingMix drives workload.ShiftingMix phase by
// phase. Query volume grows geometrically per phase so each newly hot view
// dominates the cumulative mix model — exactly the regime where a
// frequency- or Markov-ranked scheduler must re-rank. With equal pending
// deltas and a budget of one, the maintenance slot must land on the
// phase's hot view every phase.
func TestSchedulerFollowsShiftingMix(t *testing.T) {
	const nViews, phases = 3, 6
	sc := newShiftScenario(t, nViews, svc.SchedulerConfig{Budget: 1, MaxAge: time.Hour})
	mix := workload.ShiftingMix(phases, nViews, 40)
	reps := 1
	for p, row := range mix {
		hot := p % nViews
		for rep := 0; rep < reps; rep++ {
			for vi, q := range row {
				for k := 0; k < q; k++ {
					if _, err := sc.views[vi].Query(svc.Count(nil)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		reps *= 3 // each phase outweighs the sum of all earlier ones

		before := sc.cyclesByView(t)
		sc.stageAll(t, 50)
		sc.now = sc.now.Add(time.Second)
		stats, err := sc.s.TickNow()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Views != 1 {
			t.Fatalf("phase %d: maintained %d views, want 1 (budget)", p, stats.Views)
		}
		after := sc.cyclesByView(t)
		for vi := range after {
			got := after[vi] - before[vi]
			want := uint64(0)
			if vi == hot {
				want = 1
			}
			if got != want {
				t.Fatalf("phase %d (hot=view%d): view%d maintained %d times this tick, want %d — re-ranking did not follow the shift",
					p, hot, vi, got, want)
			}
		}
	}
}

// TestSchedulerShiftStarvationBound keeps the shifting mix running with a
// tight MaxAge: however hard the hot view hogs the budget, no stale view
// may ever be observed older than the bound after a tick.
func TestSchedulerShiftStarvationBound(t *testing.T) {
	const nViews = 3
	maxAge := 3 * time.Second
	sc := newShiftScenario(t, nViews, svc.SchedulerConfig{Budget: 1, MaxAge: maxAge})
	mix := workload.ShiftingMix(12, nViews, 40)
	for p, row := range mix {
		for vi, q := range row {
			for k := 0; k < q; k++ {
				if _, err := sc.views[vi].Query(svc.Count(nil)); err != nil {
					t.Fatal(err)
				}
			}
		}
		sc.stageAll(t, 20)
		sc.now = sc.now.Add(time.Second)
		if _, err := sc.s.TickNow(); err != nil {
			t.Fatal(err)
		}
		for _, v := range sc.s.Stats().Views {
			if v.PendingRows > 0 && v.AgeMillis >= maxAge.Milliseconds() {
				t.Fatalf("phase %d: %s stale for %dms under shifting mix, starvation bound %v violated",
					p, v.Name, v.AgeMillis, maxAge)
			}
		}
	}
	for vi, c := range sc.cyclesByView(t) {
		if c == 0 {
			t.Fatalf("view%d never maintained across 12 shifting phases", vi)
		}
	}
}
