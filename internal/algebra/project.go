package algebra

import (
	"fmt"
	"strings"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// Output is one column of a generalized projection: a name and the scalar
// expression that computes it.
type Output struct {
	Name string
	E    expr.Expr
}

// Out is shorthand for Output{name, e}.
func Out(name string, e expr.Expr) Output { return Output{Name: name, E: e} }

// OutCol is shorthand for a pass-through column (same name in and out).
func OutCol(name string) Output { return Output{Name: name, E: expr.Col(name)} }

// OutCols builds pass-through outputs for each named column.
func OutCols(names ...string) []Output {
	outs := make([]Output, len(names))
	for i, n := range names {
		outs[i] = OutCol(n)
	}
	return outs
}

// ProjectNode is the generalized projection Π: it selects attributes and
// may add new attributes that are arithmetic transformations of old ones
// (paper Section 3.1).
//
// Key derivation (Definition 2): the primary key of the result is the
// primary key of the input, and "the primary key must always be included in
// the projection" — every key attribute of the child must appear as a
// pass-through column. Its output name may differ (a rename); the derived
// key uses the output names.
//
// ProjectKeyed relaxes this for plan builders that can prove a different
// key (e.g. the change-table merge, where coalesce(old.key, delta.key) is
// unique because the join is a full outer join on exactly that key).
type ProjectNode struct {
	child    Node
	outs     []Output
	bound    []expr.Expr
	schema   relation.Schema
	explicit bool // key was asserted by the caller (ProjectKeyed)
}

// Project returns Π_outs(child), deriving the key by Definition 2.
func Project(child Node, outs []Output) (*ProjectNode, error) {
	return project(child, outs, nil)
}

// MustProject is Project, panicking on error.
func MustProject(child Node, outs []Output) *ProjectNode {
	p, err := Project(child, outs)
	if err != nil {
		panic(err)
	}
	return p
}

// ProjectKeyed returns Π_outs(child) with an explicitly asserted output
// key. The caller is responsible for the uniqueness of the asserted key;
// evaluation enforces it (duplicate keys collapse via upsert, which would
// break the row count and is caught by tests).
func ProjectKeyed(child Node, outs []Output, key ...string) (*ProjectNode, error) {
	return project(child, outs, key)
}

// MustProjectKeyed is ProjectKeyed, panicking on error.
func MustProjectKeyed(child Node, outs []Output, key ...string) *ProjectNode {
	p, err := ProjectKeyed(child, outs, key...)
	if err != nil {
		panic(err)
	}
	return p
}

func project(child Node, outs []Output, explicitKey []string) (*ProjectNode, error) {
	cs := child.Schema()
	bound := make([]expr.Expr, len(outs))
	cols := make([]relation.Column, len(outs))
	// passThrough maps child column name -> output name for outputs that
	// are plain column references (renames allowed).
	passThrough := map[string]string{}
	for i, o := range outs {
		b, err := o.E.Bind(cs)
		if err != nil {
			return nil, fmt.Errorf("algebra: project %q: %w", o.Name, err)
		}
		bound[i] = b
		typ := relation.KindNull // untyped unless a direct pass-through
		if ref, ok := expr.ColumnName(o.E); ok {
			// Direct column reference: keep the child's type and record
			// the pass-through for key derivation.
			typ = cs.Col(cs.ColIndex(ref)).Type
			if _, dup := passThrough[ref]; !dup {
				passThrough[ref] = o.Name
			}
		}
		cols[i] = relation.Column{Name: o.Name, Type: typ}
	}

	var keyNames []string
	if explicitKey != nil {
		keyNames = explicitKey
	} else if cs.HasKey() {
		for _, k := range cs.KeyNames() {
			outName, ok := passThrough[k]
			if !ok {
				return nil, fmt.Errorf("algebra: project drops key attribute %q (Definition 2 requires the key in the projection; use ProjectKeyed to assert a different key)", k)
			}
			keyNames = append(keyNames, outName)
		}
	}
	schema := relation.NewSchema(cols, keyNames...)
	return &ProjectNode{child: child, outs: outs, bound: bound, schema: schema, explicit: explicitKey != nil}, nil
}

// Outputs returns the projection's output definitions.
func (p *ProjectNode) Outputs() []Output { return p.outs }

// Schema implements Node.
func (p *ProjectNode) Schema() relation.Schema { return p.schema }

// Eval implements Node (the pipeline shim; see pipeline.go).
func (p *ProjectNode) Eval(ctx *Context) (*relation.Relation, error) {
	return evalPipelined(ctx, p)
}

// evalMat is the materializing evaluation (see EvalMaterialized).
func (p *ProjectNode) evalMat(ctx *Context) (*relation.Relation, error) {
	in, err := EvalMaterialized(p.child, ctx)
	if err != nil {
		return nil, err
	}
	ctx.RowsTouched += int64(in.Len())
	rows := make([]relation.Row, 0, in.Len())
	for _, row := range in.Rows() {
		out := make(relation.Row, len(p.bound))
		for i, e := range p.bound {
			out[i] = e.Eval(row)
		}
		rows = append(rows, out)
	}
	res, err := output(ctx, p.schema, rows)
	if err != nil {
		return nil, err
	}
	if p.schema.HasKey() && res.Len() != len(rows) {
		return nil, fmt.Errorf("algebra: project: asserted key %v is not unique (%d rows collapsed to %d)",
			p.schema.KeyNames(), len(rows), res.Len())
	}
	return res, nil
}

// Children implements Node.
func (p *ProjectNode) Children() []Node { return []Node{p.child} }

// WithChildren implements Node.
func (p *ProjectNode) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("algebra: Project takes one child")
	}
	var np *ProjectNode
	var err error
	if p.explicit {
		np, err = ProjectKeyed(ch[0], p.outs, p.schema.KeyNames()...)
	} else {
		np, err = Project(ch[0], p.outs)
	}
	if err != nil {
		panic(err)
	}
	return np
}

// String implements Node.
func (p *ProjectNode) String() string {
	parts := make([]string, len(p.outs))
	for i, o := range p.outs {
		if o.E.String() == o.Name {
			parts[i] = o.Name
		} else {
			parts[i] = fmt.Sprintf("%s as %s", o.E, o.Name)
		}
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// AliasNode renames every column of its input to prefix+"."+name, keeping
// the key structure. It exists to disambiguate column names before a join
// of relations sharing attribute names.
type AliasNode struct {
	child  Node
	prefix string
	schema relation.Schema
}

// Alias prefixes all of child's column names with prefix+".".
func Alias(child Node, prefix string) *AliasNode {
	return &AliasNode{
		child:  child,
		prefix: prefix,
		schema: child.Schema().Rename(func(n string) string { return prefix + "." + n }),
	}
}

// Prefix returns the alias prefix.
func (a *AliasNode) Prefix() string { return a.prefix }

// Schema implements Node.
func (a *AliasNode) Schema() relation.Schema { return a.schema }

// Eval implements Node (the pipeline shim; see pipeline.go).
func (a *AliasNode) Eval(ctx *Context) (*relation.Relation, error) {
	return evalPipelined(ctx, a)
}

// evalMat is the materializing evaluation (see EvalMaterialized).
func (a *AliasNode) evalMat(ctx *Context) (*relation.Relation, error) {
	in, err := EvalMaterialized(a.child, ctx)
	if err != nil {
		return nil, err
	}
	// Rows are positional; only the schema changes.
	out := relation.New(a.schema)
	for _, row := range in.Rows() {
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	ctx.RowsTouched += int64(in.Len())
	return out, nil
}

// Children implements Node.
func (a *AliasNode) Children() []Node { return []Node{a.child} }

// WithChildren implements Node.
func (a *AliasNode) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("algebra: Alias takes one child")
	}
	return Alias(ch[0], a.prefix)
}

// String implements Node.
func (a *AliasNode) String() string { return fmt.Sprintf("Alias(%s)", a.prefix) }
