package algebra

import (
	"fmt"
	"sync"

	"github.com/sampleclean/svc/internal/relation"
)

// SubplanCache holds the materialized outputs of shared maintenance
// subplans for exactly one catalog epoch. The group maintenance cycle
// creates one cache per cycle, pinned to the epoch of the catalog version
// being maintained; every CachedNode evaluated under a context carrying
// the cache first checks that the context's epoch matches, so a cache can
// never serve rows computed against one catalog version to an evaluation
// of another (a stale cache silently degrades to pass-through). Results
// are stored as pooled columnar ColSets and returned to their pools by
// Release at the end of the cycle.
type SubplanCache struct {
	epoch uint64

	mu      sync.Mutex
	entries map[uint64]*subplanEntry

	hits      uint64
	misses    uint64
	rowsSaved int64 // rows the hit evaluations did not have to touch
}

type subplanEntry struct {
	canon string
	set   *relation.ColSet
	cost  int64 // RowsTouched by the evaluation that filled the entry
}

// NewSubplanCache creates an empty cache pinned to the given catalog
// epoch. Epoch 0 means "unversioned" and never matches (see usable).
func NewSubplanCache(epoch uint64) *SubplanCache {
	return &SubplanCache{epoch: epoch, entries: make(map[uint64]*subplanEntry)}
}

// Epoch returns the catalog epoch this cache is pinned to.
func (c *SubplanCache) Epoch() uint64 { return c.epoch }

// usable reports whether the cache may serve ctx: the context must be
// evaluating the exact catalog version the cache was built for.
func (c *SubplanCache) usable(ctx *Context) bool {
	return c != nil && ctx.Epoch != 0 && c.epoch == ctx.Epoch
}

// lookup returns the entry for (fp, canon), verifying the canonical
// encoding so a fingerprint collision reads as a miss.
func (c *SubplanCache) lookup(fp uint64, canon string) *subplanEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[fp]
	if e == nil || e.canon != canon {
		c.misses++
		return nil
	}
	c.hits++
	c.rowsSaved += e.cost
	return e
}

// store publishes a computed entry. When two evaluations race on the same
// miss the first store wins and the loser's set is released — both sets
// hold identical rows, so either is valid.
func (c *SubplanCache) store(fp uint64, canon string, set *relation.ColSet, cost int64) *relation.ColSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[fp]; e != nil && e.canon == canon {
		set.Release()
		return e.set
	}
	c.entries[fp] = &subplanEntry{canon: canon, set: set, cost: cost}
	return set
}

// Stats returns the cache counters: hits, misses, and the total rows the
// hit evaluations avoided touching.
func (c *SubplanCache) Stats() (hits, misses uint64, rowsSaved int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.rowsSaved
}

// Entries returns the number of distinct subplans cached.
func (c *SubplanCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Release returns every cached ColSet to its pool and empties the cache.
// Callers must not use the cache (or batches gathered from it) afterwards.
func (c *SubplanCache) Release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for fp, e := range c.entries {
		e.set.Release()
		delete(c.entries, fp)
	}
}

// CachedNode marks a subtree whose output may be shared across the
// maintenance plans of several views within one cycle. Evaluation is
// transparent: under a context carrying a usable SubplanCache the node
// serves the cached columnar result (computing and publishing it on first
// use); otherwise it passes its child's stream through untouched. The
// CacheSubplans rewriter inserts these nodes; plans without them are
// unaffected.
type CachedNode struct {
	child Node
	fp    uint64
	canon string
}

// Cached wraps child in a CachedNode, fingerprinting its subtree.
func Cached(child Node) *CachedNode {
	canon := CanonicalString(child)
	return &CachedNode{child: child, fp: FingerprintString(canon), canon: canon}
}

// Fingerprint returns the 64-bit fingerprint of the wrapped subtree.
func (n *CachedNode) Fingerprint() uint64 { return n.fp }

// Schema implements Node.
func (n *CachedNode) Schema() relation.Schema { return n.child.Schema() }

// Eval implements Node (the pipeline shim; see pipeline.go).
func (n *CachedNode) Eval(ctx *Context) (*relation.Relation, error) {
	return evalPipelined(ctx, n)
}

// Children implements Node.
func (n *CachedNode) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *CachedNode) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("algebra: Cached takes one child")
	}
	return Cached(ch[0])
}

// String implements Node.
func (n *CachedNode) String() string { return fmt.Sprintf("Cached(%016x)", n.fp) }

// cachedIter evaluates a CachedNode. With a usable cache it serves the
// subtree's materialized ColSet — filling it on the first evaluation of
// the fingerprint this cycle — as dense columnar batches (ValueAt decodes
// dictionary cells, so emitted batches never alias pooled storage).
// Without one it is a transparent pass-through over the child's iterator.
type cachedIter struct {
	node  *CachedNode
	ctx   *Context
	inner Iterator // pass-through mode; nil when serving the cache
	set   *relation.ColSet
	pos   int
	// hit marks that set came from another consumer's evaluation: emitted
	// rows are then charged to RowsTouched (reading cached rows is work,
	// like a scan). A miss charges nothing on emission — the child's own
	// evaluation already paid, exactly as in the uncached pipeline.
	hit bool
}

func (ci *cachedIter) Open(ctx *Context) error {
	ci.ctx = ctx
	cache := ctx.Subplans
	if !cache.usable(ctx) {
		ci.inner = iterNode(ci.node.child)
		return ci.inner.Open(ctx)
	}
	if e := cache.lookup(ci.node.fp, ci.node.canon); e != nil {
		ci.set = e.set
		ci.hit = true
		return nil
	}
	// First evaluation of this subplan in the cycle: drain the child into
	// a fresh ColSet and publish it. Nested CachedNodes inside the child
	// consult the same cache, so sharing composes at every granularity.
	before := ctx.RowsTouched
	set, err := drainColSet(ctx, ci.node.child)
	if err != nil {
		return err
	}
	cost := ctx.RowsTouched - before
	ci.set = cache.store(ci.node.fp, ci.node.canon, set, cost)
	return nil
}

func (ci *cachedIter) Next() (*relation.Batch, error) {
	if ci.inner != nil {
		return ci.inner.Next()
	}
	if ci.pos >= ci.set.Len() {
		return nil, nil
	}
	m := ci.set.Len() - ci.pos
	if m > relation.BatchCap {
		m = relation.BatchCap
	}
	w := ci.set.Width()
	b := relation.GetBatch()
	b.BeginColumnar(w)
	for j := 0; j < w; j++ {
		vec := b.Vec(j)
		for i := ci.pos; i < ci.pos+m; i++ {
			vec.AppendValue(ci.set.ValueAt(i, j))
		}
	}
	ci.pos += m
	if ci.hit {
		ci.ctx.RowsTouched += int64(m)
	}
	return b, nil
}

func (ci *cachedIter) Close() {
	if ci.inner != nil {
		ci.inner.Close()
	}
	ci.set = nil // owned by the cache; released by SubplanCache.Release
}

// CachePolicy tells CacheSubplans which scans make a subtree shareable.
// Both predicates see the binding name a ScanNode reads.
type CachePolicy struct {
	// Stable reports that the binding is immutable for the whole cycle —
	// base tables and delta relations pinned by a catalog version qualify;
	// the per-view stale-view binding does not.
	Stable func(name string) bool
	// Delta reports that the binding is a delta relation. Only subtrees
	// reading at least one delta are worth caching: those are the inputs
	// every view's maintenance plan re-scans.
	Delta func(name string) bool
}

// CacheSubplans rewrites n for shared-subplan maintenance: every pipeline
// breaker (join, aggregate, set operator) whose subtree reads only stable
// bindings, at least one of them a delta, is wrapped in a CachedNode.
// Wrapping is bottom-up, so sharing is available at every granularity —
// e.g. a delta-scan union is cached even when the join above it differs
// between views. Streaming chain operators are never wrapped: they fuse
// with their scan, and caching them would break that fusion for no saved
// work. The rewrite is semantics-preserving whether or not a cache is
// present at evaluation time.
func CacheSubplans(n Node, pol CachePolicy) Node {
	ch := n.Children()
	if len(ch) > 0 {
		nch := make([]Node, len(ch))
		changed := false
		for i, c := range ch {
			nch[i] = CacheSubplans(c, pol)
			changed = changed || nch[i] != c
		}
		if changed {
			n = n.WithChildren(nch)
		}
	}
	switch n.(type) {
	case *JoinNode, *AggregateNode, *SetOpNode:
		if cacheable(n, pol) {
			return Cached(n)
		}
	}
	return n
}

// cacheable reports whether the subtree under n reads only stable
// bindings, touches at least one delta, and contains only operators whose
// canonical encoding fully determines their output (fingerprint safety).
func cacheable(n Node, pol CachePolicy) bool {
	if pol.Stable == nil || pol.Delta == nil {
		return false
	}
	ok, hasDelta := true, false
	Walk(n, func(c Node) {
		switch t := c.(type) {
		case *ScanNode:
			if !pol.Stable(t.name) {
				ok = false
			}
			if pol.Delta(t.name) {
				hasDelta = true
			}
		case *SelectNode, *ProjectNode, *AliasNode, *JoinNode, *AggregateNode, *SetOpNode, *CachedNode:
			// Canonically encodable operators.
		default:
			// HashFilter (its hasher is not part of the encoding) and any
			// future operator are conservatively uncacheable.
			ok = false
		}
	})
	return ok && hasDelta
}
