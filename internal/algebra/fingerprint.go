package algebra

import (
	"strings"

	"github.com/sampleclean/svc/internal/hashing"
)

// Plan fingerprinting for the multi-view maintenance optimizer.
//
// Two maintenance plans that scan, filter, and project the same delta
// relations the same way contain structurally identical subtrees. The
// optimizer detects them by a canonical encoding of the subtree — every
// operator's one-line description plus its full output schema (the schema
// carries the key assertion, which String alone omits for Project and the
// set operators) composed over the children in order — and keys the
// shared-subplan cache by the encoding's 64-bit hash. The hash is the fast
// path; cache lookups always verify the canonical string too, so a hash
// collision degrades to a miss, never to wrong rows (the same
// hash-then-verify convention as the key substrate in internal/hashing).

// subplanSeed salts plan fingerprints away from the row-key hash domain.
const subplanSeed = 0x9e3779b97f4a7c15

// CanonicalString renders n's subtree as a canonical encoding: operator
// descriptions and output schemas composed in child order. Equal encodings
// mean equal output relations for any binding of the referenced names.
func CanonicalString(n Node) string {
	var b strings.Builder
	writeCanonical(&b, n)
	return b.String()
}

func writeCanonical(b *strings.Builder, n Node) {
	b.WriteString(n.String())
	b.WriteByte('#')
	b.WriteString(n.Schema().String())
	ch := n.Children()
	if len(ch) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range ch {
		if i > 0 {
			b.WriteByte(';')
		}
		writeCanonical(b, c)
	}
	b.WriteByte(')')
}

// Fingerprint returns the 64-bit hash of n's canonical encoding.
func Fingerprint(n Node) uint64 {
	return FingerprintString(CanonicalString(n))
}

// FingerprintString hashes an already-rendered canonical encoding.
func FingerprintString(canon string) uint64 {
	return hashing.Finish64(hashing.AddString64(hashing.Init64(subplanSeed), canon))
}
