package db

import (
	"sync"
	"testing"

	"github.com/sampleclean/svc/internal/relation"
)

func vSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "id", Type: relation.KindInt},
		{Name: "x", Type: relation.KindInt},
	}, "id")
}

func vRow(id, x int) relation.Row {
	return relation.Row{relation.Int(int64(id)), relation.Int(int64(x))}
}

func buildVDB(t *testing.T, n int) (*Database, *Table) {
	t.Helper()
	d := New()
	tbl := d.MustCreate("T", vSchema())
	for i := 0; i < n; i++ {
		tbl.MustInsert(vRow(i, i))
	}
	return d, tbl
}

// sumX computes the sum of x over a relation (tiny aggregate for checks).
func sumX(r *relation.Relation) int64 {
	var s int64
	for _, row := range r.Rows() {
		s += row[1].AsInt()
	}
	return s
}

func TestPinIsolatesStagedUpdates(t *testing.T) {
	d, tbl := buildVDB(t, 10)
	pin := d.Pin()
	if pin.HasPending() {
		t.Fatal("fresh pin should have no pending deltas")
	}
	if err := tbl.StageInsert(vRow(100, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.StageUpdate(vRow(3, -3)); err != nil {
		t.Fatal(err)
	}
	// The old pin must not see the new deltas.
	if pin.Insertions("T").Len() != 0 || pin.Deletions("T").Len() != 0 {
		t.Fatal("pinned version sees post-pin staging")
	}
	// A fresh pin does, at a later epoch.
	pin2 := d.Pin()
	if pin2.Epoch() <= pin.Epoch() {
		t.Fatalf("epoch must advance: %d -> %d", pin.Epoch(), pin2.Epoch())
	}
	if pin2.Insertions("T").Len() != 2 || pin2.Deletions("T").Len() != 1 {
		t.Fatalf("new pin deltas: ins=%d del=%d, want 2/1",
			pin2.Insertions("T").Len(), pin2.Deletions("T").Len())
	}
	// Pinning twice with no writes returns the identical version.
	if d.Pin() != pin2 {
		t.Fatal("clean re-pin should be the same version")
	}
}

func TestApplyVersionRetiresExactlyPinnedDeltas(t *testing.T) {
	d, tbl := buildVDB(t, 5)
	if err := tbl.StageInsert(vRow(10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.StageDelete(relation.Int(0)); err != nil {
		t.Fatal(err)
	}
	pin := d.Pin()

	// Post-pin activity: another insert.
	if err := tbl.StageInsert(vRow(11, 11)); err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyVersion(pin, nil); err != nil {
		t.Fatal(err)
	}
	// Base: 5 - 1 deleted + 1 applied insert = 5 rows.
	if tbl.Len() != 5 {
		t.Fatalf("base has %d rows, want 5", tbl.Len())
	}
	if _, ok := tbl.Rows().Get(relation.Int(10)); !ok {
		t.Fatal("applied insert missing from base")
	}
	if _, ok := tbl.Rows().Get(relation.Int(0)); ok {
		t.Fatal("applied delete still in base")
	}
	// Pending: only the post-pin insert.
	ins, del := tbl.PendingSize()
	if ins != 1 || del != 0 {
		t.Fatalf("pending ins=%d del=%d, want 1/0", ins, del)
	}
	if _, ok := tbl.Insertions().Get(relation.Int(11)); !ok {
		t.Fatal("post-pin insert lost")
	}
	// The published version reflects all of it atomically.
	pin2 := d.Pin()
	if pin2.AppliedSeq() != pin.AppliedSeq()+1 {
		t.Fatalf("applied seq %d, want %d", pin2.AppliedSeq(), pin.AppliedSeq()+1)
	}
	if pin2.Base("T").Len() != 5 || pin2.Insertions("T").Len() != 1 {
		t.Fatal("published version inconsistent with live state")
	}
}

// TestApplyVersionRebasesStraddlingUpdate is the hard case: a key updated
// before the pin and updated AGAIN between pin and apply. The applied
// (older) value must land in the base, and the pending (newer) update must
// keep both its ΔR row and a ∇R record of the just-applied row, so the
// next maintenance cycle subtracts the applied contribution.
func TestApplyVersionRebasesStraddlingUpdate(t *testing.T) {
	d, tbl := buildVDB(t, 5)
	if err := tbl.StageUpdate(vRow(2, 20)); err != nil {
		t.Fatal(err)
	}
	pin := d.Pin()
	if err := tbl.StageUpdate(vRow(2, 200)); err != nil { // straddles the apply
		t.Fatal(err)
	}
	if err := d.ApplyVersion(pin, nil); err != nil {
		t.Fatal(err)
	}
	// Base holds the applied (pre-pin) value.
	row, ok := tbl.Rows().Get(relation.Int(2))
	if !ok || row[1].AsInt() != 20 {
		t.Fatalf("base row = %v, want x=20", row)
	}
	// Pending: the newer update with the applied row as its old version.
	insRow, ok := tbl.Insertions().Get(relation.Int(2))
	if !ok || insRow[1].AsInt() != 200 {
		t.Fatalf("pending ΔR row = %v, want x=200", insRow)
	}
	delRow, ok := tbl.Deletions().Get(relation.Int(2))
	if !ok || delRow[1].AsInt() != 20 {
		t.Fatalf("pending ∇R row = %v, want the applied x=20", delRow)
	}
	// Fold the rest: the final state is the newest value, deltas empty.
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	row, _ = tbl.Rows().Get(relation.Int(2))
	if row[1].AsInt() != 200 {
		t.Fatalf("final row = %v, want x=200", row)
	}
	if d.HasPending() {
		t.Fatal("deltas should be empty")
	}
	if sumX(tbl.Rows()) != 0+1+200+3+4 {
		t.Fatalf("final sum = %d", sumX(tbl.Rows()))
	}
}

// TestApplyVersionRebasesStraddlingDelete: an insert applied at the
// boundary that was un-staged (deleted) after the pin must come back out
// at the next maintenance cycle.
func TestApplyVersionRebasesStraddlingDelete(t *testing.T) {
	d, tbl := buildVDB(t, 3)
	if err := tbl.StageInsert(vRow(9, 9)); err != nil {
		t.Fatal(err)
	}
	pin := d.Pin()
	if err := tbl.StageDelete(relation.Int(9)); err != nil { // un-stages the pending insert
		t.Fatal(err)
	}
	if err := d.ApplyVersion(pin, nil); err != nil {
		t.Fatal(err)
	}
	// The applied insert is in the base, with a pending deletion recorded.
	if _, ok := tbl.Rows().Get(relation.Int(9)); !ok {
		t.Fatal("applied insert missing")
	}
	delRow, ok := tbl.Deletions().Get(relation.Int(9))
	if !ok || delRow[1].AsInt() != 9 {
		t.Fatalf("pending ∇R row = %v, want the applied row", delRow)
	}
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Rows().Get(relation.Int(9)); ok {
		t.Fatal("row should be deleted after the second boundary")
	}
}

func TestAttachmentsRideAlong(t *testing.T) {
	d, tbl := buildVDB(t, 3)
	d.SetAttachment("k", "v1")
	if got := d.Pin().Attachment("k"); got != "v1" {
		t.Fatalf("attachment = %v", got)
	}
	// Staging republishes; the attachment persists.
	if err := tbl.StageInsert(vRow(7, 7)); err != nil {
		t.Fatal(err)
	}
	if got := d.Pin().Attachment("k"); got != "v1" {
		t.Fatalf("attachment after staging = %v", got)
	}
	// ApplyVersion swaps attachments atomically with the fold.
	pin := d.Pin()
	if err := d.ApplyVersion(pin, map[string]any{"k": "v2"}); err != nil {
		t.Fatal(err)
	}
	after := d.Pin()
	if got := after.Attachment("k"); got != "v2" {
		t.Fatalf("attachment after apply = %v", got)
	}
	// The old pinned version still carries the old attachment.
	if got := pin.Attachment("k"); got != "v1" {
		t.Fatalf("old version attachment = %v", got)
	}
	// Removal.
	d.SetAttachment("k", nil)
	if got := d.Pin().Attachment("k"); got != nil {
		t.Fatalf("removed attachment = %v", got)
	}
}

// TestConcurrentPinAndStage hammers Pin from readers while writers stage
// and apply; run under -race. Readers assert version-internal consistency:
// the pinned base plus pinned deltas always describe a state whose sum
// matches one of the states the writer actually published.
func TestConcurrentPinAndStage(t *testing.T) {
	d, tbl := buildVDB(t, 50)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: stage updates, periodically apply
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 400; i++ {
			if i%2 == 0 {
				_ = tbl.StageInsert(vRow(1000+i, 1))
			} else {
				_ = tbl.StageUpdate(vRow(i%50, 0))
			}
			if i%50 == 49 {
				pin := d.Pin()
				if err := d.ApplyVersion(pin, nil); err != nil {
					panic(err)
				}
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				pin := d.Pin()
				if pin.Epoch() < lastEpoch {
					panic("epoch went backwards")
				}
				lastEpoch = pin.Epoch()
				// Consistency: every ∇R row names a key present in base;
				// scanning the pinned relations must never tear.
				keyIdx := pin.Base("T").Schema().Key()
				for _, row := range pin.Deletions("T").Rows() {
					if _, ok := pin.Base("T").GetByEncodedKey(row.KeyOf(keyIdx)); !ok {
						panic("pinned ∇R row missing from pinned base")
					}
				}
				_ = sumX(pin.Base("T"))
			}
		}()
	}
	wg.Wait()
}

// TestApplyVersionAbortIsAtomic: a direct base Insert after the pin must
// make ApplyVersion fail WITHOUT mutating anything — not even tables
// earlier in creation order than the conflicting one — so the caller can
// re-pin and retry with no deltas lost.
func TestApplyVersionAbortIsAtomic(t *testing.T) {
	d := New()
	ta := d.MustCreate("A", vSchema())
	tb := d.MustCreate("B", vSchema())
	for i := 0; i < 4; i++ {
		ta.MustInsert(vRow(i, i))
		tb.MustInsert(vRow(i, i))
	}
	if err := ta.StageInsert(vRow(10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tb.StageInsert(vRow(20, 20)); err != nil {
		t.Fatal(err)
	}
	pin := d.Pin()
	// Direct (unstaged) insert into B after the pin: the B swap must be
	// rejected, and A must NOT have been swapped/retired first.
	tb.MustInsert(vRow(99, 99))
	if err := d.ApplyVersion(pin, nil); err == nil {
		t.Fatal("apply over a direct-insert conflict should fail")
	}
	if ta.Len() != 4 {
		t.Fatalf("A base has %d rows; the aborted apply mutated it", ta.Len())
	}
	ins, _ := ta.PendingSize()
	if ins != 1 {
		t.Fatalf("A pending ins=%d; the aborted apply retired its deltas", ins)
	}
	// Retry with a fresh pin: everything lands, nothing lost.
	if err := d.ApplyVersion(d.Pin(), nil); err != nil {
		t.Fatal(err)
	}
	if ta.Len() != 5 || tb.Len() != 6 {
		t.Fatalf("after retry: A=%d B=%d rows, want 5/6", ta.Len(), tb.Len())
	}
	if d.HasPending() {
		t.Fatal("retry should have applied all deltas")
	}
}

// TestApplyVersionStalePinRejected: a pin from before another maintenance
// boundary must be rejected instead of re-based (re-folding it would
// mis-record already-applied rows as pending deletions).
func TestApplyVersionStalePinRejected(t *testing.T) {
	d, tbl := buildVDB(t, 4)
	if err := tbl.StageInsert(vRow(7, 7)); err != nil {
		t.Fatal(err)
	}
	stale := d.Pin()
	if err := d.ApplyDeltas(); err != nil { // intervening boundary
		t.Fatal(err)
	}
	if err := d.ApplyVersion(stale, nil); err == nil {
		t.Fatal("superseded pin should be rejected")
	}
	// The applied insert must still be alive after the next boundary.
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Rows().Get(relation.Int(7)); !ok {
		t.Fatal("applied insert was deleted by a stale re-base")
	}
}

// TestApplyVersionTablesPartialFold: a partial boundary folds only the
// named tables; every other table keeps its base AND its pending deltas,
// so a view deferred by a refresh scheduler never has its change set
// retired out from under it.
func TestApplyVersionTablesPartialFold(t *testing.T) {
	d := New()
	ta := d.MustCreate("A", vSchema())
	tb := d.MustCreate("B", vSchema())
	for i := 0; i < 4; i++ {
		ta.MustInsert(vRow(i, i))
		tb.MustInsert(vRow(i, 10*i))
	}
	if err := ta.StageInsert(vRow(100, 100)); err != nil {
		t.Fatal(err)
	}
	if err := ta.StageDelete(relation.Int(0)); err != nil {
		t.Fatal(err)
	}
	if err := tb.StageInsert(vRow(200, 200)); err != nil {
		t.Fatal(err)
	}
	if err := tb.StageUpdate(vRow(1, -1)); err != nil {
		t.Fatal(err)
	}
	pin := d.Pin()

	if err := d.ApplyVersionTables(pin, nil, []string{"A"}); err != nil {
		t.Fatal(err)
	}
	// A folded: base updated, deltas retired.
	if ta.Len() != 4 {
		t.Fatalf("A has %d rows, want 4", ta.Len())
	}
	if _, ok := ta.Rows().Get(relation.Int(100)); !ok {
		t.Fatal("A's applied insert missing from base")
	}
	if ins, del := ta.PendingSize(); ins != 0 || del != 0 {
		t.Fatalf("A pending ins=%d del=%d, want 0/0", ins, del)
	}
	// B untouched: base as loaded, deltas still pending verbatim.
	if tb.Len() != 4 {
		t.Fatalf("B has %d rows, want 4", tb.Len())
	}
	if _, ok := tb.Rows().Get(relation.Int(200)); ok {
		t.Fatal("B's pending insert leaked into base")
	}
	if ins, del := tb.PendingSize(); ins != 2 || del != 1 {
		t.Fatalf("B pending ins=%d del=%d, want 2/1", ins, del)
	}
	// The partial boundary is a real boundary: old pins are superseded.
	if err := d.ApplyVersion(pin, nil); err == nil {
		t.Fatal("pin from before the partial boundary should be superseded")
	}
	// B's own boundary still lands its full change set.
	if err := d.ApplyVersion(d.Pin(), nil); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 5 {
		t.Fatalf("after B's fold: %d rows, want 5", tb.Len())
	}
	if got, ok := tb.Rows().Get(relation.Int(1)); !ok || got[1].AsInt() != -1 {
		t.Fatalf("B's staged update lost: got %v ok=%v", got, ok)
	}
	if d.HasPending() {
		t.Fatal("all deltas should be folded now")
	}
}
