// Package view implements materialized views and their maintenance
// strategies (paper Sections 3.1–3.2).
//
// A view is defined by a relational expression over base tables (package
// algebra) and materialized by evaluating it. Between maintenance periods
// the base tables accumulate staged deltas (package db) and the view is
// stale — it has incorrect, missing, and superfluous rows in the paper's
// terminology (Section 3.1).
//
// A maintenance strategy M(S, D, ∂D) is itself a relational expression
// whose evaluation returns the up-to-date view S′. Two strategies are
// provided:
//
//   - Change-table incremental maintenance (Gupta/Mumick style, the
//     paper's Example 1): propagate signed-multiplicity deltas through the
//     view's SPJ body, aggregate them into a change table, and merge it
//     into the stale view with a full outer join and a coalescing
//     projection. Applies to SPJ views and single-level aggregate views
//     with count/sum aggregates.
//   - Recompute: substitute (R − ∇R) ∪ ΔR for every base scan in the view
//     definition. Fully general; used as the fallback for views the
//     change-table rules cannot handle (outer joins, nested aggregates,
//     avg/min/max) and as the ground truth in tests.
//
// Because both strategies are plain relational expressions, SVC's hash
// push-down applies to them directly — that is the paper's central trick.
// And because they are plain expressions, they compose with the subplan
// cache too: MaintainAtShared evaluates a cycle with the delta-reading
// frontier of the strategy routed through an algebra.SubplanCache, so
// views sharing base tables evaluate each shared delta subtree once per
// group cycle (BaseTables reports which tables a view's strategy reads;
// SharedExpression is the cache-wrapped strategy body).
//
// Concurrency contract: a View's data pointer is atomic — Data() is safe
// from any goroutine and returns whatever relation was last published.
// Replace and the Maintainer's strategy derivation are owner-side,
// single-writer operations (the svc serving layer serializes them under
// its maintenance lock). MaintainAt evaluates a maintenance cycle against
// a pinned db.Version and passed-in view data without touching live
// state, so it runs concurrently with readers; its result is published
// with a single Replace/ApplyVersion swap.
package view
