package bench

import (
	"time"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

// cubeScenario runs the Section 7.6.1 experiments on the denormalized
// sales table, matching the paper's Section 7.1 setup (the cube's
// dimensions all live in one wide fact table).
type cubeScenario struct {
	gen *tpcd.DenormGenerator
	d   *db.Database
	v   *view.View
	m   *view.Maintainer
}

func newCubeScenario(cfg tpcd.Config) (*cubeScenario, error) {
	// The cube needs cells that aggregate multiple rows and groups that
	// span multiple cells (the paper's cube sits on millions of rows);
	// shrink the dimension domains relative to the fact count so
	// roll-ups are not point lookups.
	cfg.Customers = cfg.Customers / 5
	if cfg.Customers < 20 {
		cfg.Customers = 20
	}
	cfg.Parts = cfg.Parts / 5
	if cfg.Parts < 15 {
		cfg.Parts = 15
	}
	gen := tpcd.NewDenormGenerator(cfg)
	d, err := gen.Generate()
	if err != nil {
		return nil, err
	}
	d.SetParallelism(defaultParallelism)
	d.SetColumnar(defaultColumnar)
	v, err := view.Materialize(d, tpcd.DenormCubeView())
	if err != nil {
		return nil, err
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		return nil, err
	}
	return &cubeScenario{gen: gen, d: d, v: v, m: m}, nil
}

func (sc *cubeScenario) truth() (*view.View, error) {
	snap := sc.d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		return nil, err
	}
	return view.Materialize(snap, sc.v.Definition())
}

func (sc *cubeScenario) timeIVM() (time.Duration, error) {
	stale := sc.v.Data().Clone()
	dur, err := timeIt(func() error {
		_, err := sc.m.Maintain(sc.d)
		return err
	})
	if err != nil {
		return 0, err
	}
	return dur, sc.v.Replace(stale)
}

func init() {
	register("fig10a", "data cube: maintenance time vs sampling ratio (z=1)", fig10a)
	register("fig10b", "data cube: SVC-10% speedup vs update size", fig10b)
	register("fig11", "data cube: roll-up query accuracy — Stale vs SVC+AQP vs SVC+Corr", fig11)
	register("fig12", "data cube: max group error per roll-up", fig12)
	register("fig13", "data cube: roll-ups with the median aggregate", fig13)
}

// fig10a mirrors fig4a on the Section 7.6.1 base cube with z = 1.
func fig10a(s Scale) (*Table, error) {
	sc, err := newCubeScenario(tpcdConfig(s, 1, 21))
	if err != nil {
		return nil, err
	}
	if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
		return nil, err
	}
	t := &Table{ID: "fig10a", Title: "Data cube: maintenance time vs sampling ratio (10% updates, z=1)",
		Header: []string{"ratio", "svc_time", "ivm_time", "speedup"}}
	ivmDur, err := sc.timeIVM()
	if err != nil {
		return nil, err
	}
	for _, ratio := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		c, err := clean.New(sc.m, ratio, nil)
		if err != nil {
			return nil, err
		}
		dur, err := timeIt(func() error {
			_, err := c.Clean(sc.d)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(ratio, dur, ivmDur, float64(ivmDur)/float64(dur))
	}
	t.Notes = append(t.Notes, "paper Figure 10a: sampling cuts cube maintenance time roughly linearly in the ratio")
	return t, nil
}

// fig10b mirrors fig4b on the cube.
func fig10b(s Scale) (*Table, error) {
	t := &Table{ID: "fig10b", Title: "Data cube: SVC-10% speedup vs update size (z=1)",
		Header: []string{"updates_pct", "svc_time", "ivm_time", "speedup"}}
	for _, frac := range []float64{0.03, 0.05, 0.08, 0.10, 0.13, 0.15, 0.18, 0.20} {
		sc, err := newCubeScenario(tpcdConfig(s, 1, 22))
		if err != nil {
			return nil, err
		}
		if err := sc.gen.StageUpdates(sc.d, frac); err != nil {
			return nil, err
		}
		c, err := clean.New(sc.m, 0.10, nil)
		if err != nil {
			return nil, err
		}
		svcDur, err := timeIt(func() error {
			_, err := c.Clean(sc.d)
			return err
		})
		if err != nil {
			return nil, err
		}
		ivmDur, err := sc.timeIVM()
		if err != nil {
			return nil, err
		}
		t.AddRow(100*frac, svcDur, ivmDur, float64(ivmDur)/float64(svcDur))
	}
	t.Notes = append(t.Notes, "paper Figure 10b: speedup approaches the ideal 10x as updates grow (8.7x at 20%)")
	return t, nil
}

// cubeAccuracy runs the 13 roll-ups and reports an error statistic per
// roll-up for the three methods. statFn selects median or max group error.
func cubeAccuracy(s Scale, id, title string, useMax bool) (*Table, error) {
	sc, err := newCubeScenario(tpcdConfig(s, 1, 23))
	if err != nil {
		return nil, err
	}
	if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
		return nil, err
	}
	c, err := clean.New(sc.m, 0.10, nil)
	if err != nil {
		return nil, err
	}
	samples, err := c.Clean(sc.d)
	if err != nil {
		return nil, err
	}
	truthV, err := sc.truth()
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title,
		Header: []string{"rollup", "stale", "aqp", "corr"}}
	q := estimator.Sum("revenue", nil)
	for _, roll := range tpcd.CubeRollups() {
		var truth, staleAns map[string]float64
		if roll.GroupBy == nil {
			tv, err := estimator.RunExact(truthV.Data(), q)
			if err != nil {
				return nil, err
			}
			sv, err := estimator.RunExact(sc.v.Data(), q)
			if err != nil {
				return nil, err
			}
			truth = map[string]float64{"": tv}
			staleAns = map[string]float64{"": sv}
			aqp, err := estimator.AQP(samples, q, 0.95)
			if err != nil {
				return nil, err
			}
			corr, err := estimator.Corr(sc.v.Data(), samples, q, 0.95)
			if err != nil {
				return nil, err
			}
			t.AddRow(roll.Name,
				estimator.RelativeError(sv, tv),
				estimator.RelativeError(aqp.Value, tv),
				estimator.RelativeError(corr.Value, tv))
			continue
		}
		truth, _, err = estimator.GroupExact(truthV.Data(), q, roll.GroupBy)
		if err != nil {
			return nil, err
		}
		staleAns, _, err = estimator.GroupExact(sc.v.Data(), q, roll.GroupBy)
		if err != nil {
			return nil, err
		}
		aqp, err := estimator.GroupAQP(samples, q, roll.GroupBy, 0.95)
		if err != nil {
			return nil, err
		}
		corr, err := estimator.GroupCorr(sc.v.Data(), samples, q, roll.GroupBy, 0.95)
		if err != nil {
			return nil, err
		}
		staleMed, staleMax := estimator.GroupStaleErrorStats(staleAns, truth)
		aqpMed, aqpMax := estimator.GroupErrorStats(aqp.Groups, truth)
		corrMed, corrMax := estimator.GroupErrorStats(corr.Groups, truth)
		if useMax {
			t.AddRow(roll.Name, staleMax, aqpMax, corrMax)
		} else {
			t.AddRow(roll.Name, staleMed, aqpMed, corrMed)
		}
	}
	return t, nil
}

func fig11(s Scale) (*Table, error) {
	t, err := cubeAccuracy(s, "fig11", "Data cube: median roll-up error (10% sample, 10% updates)", false)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper Figure 11: SVC+Corr ≈12.9x more accurate than stale, ≈3.6x more than SVC+AQP")
	return t, nil
}

func fig12(s Scale) (*Table, error) {
	t, err := cubeAccuracy(s, "fig12", "Data cube: MAX group error per roll-up (10% sample, 10% updates)", true)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper Figure 12: stale max errors reach ~80%; SVC holds all queries under ~12%")
	return t, nil
}

// fig13 replaces the sum with a median aggregate, estimated per group
// directly from the sample values (quantiles need no 1/m scaling).
func fig13(s Scale) (*Table, error) {
	sc, err := newCubeScenario(tpcdConfig(s, 1, 24))
	if err != nil {
		return nil, err
	}
	if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
		return nil, err
	}
	c, err := clean.New(sc.m, 0.10, nil)
	if err != nil {
		return nil, err
	}
	samples, err := c.Clean(sc.d)
	if err != nil {
		return nil, err
	}
	truthV, err := sc.truth()
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig13", Title: "Data cube: roll-ups with median(revenue) (10% sample, 10% updates)",
		Header: []string{"rollup", "stale", "aqp", "corr"}}
	for _, roll := range tpcd.CubeRollups() {
		truthMed := groupMedians(truthV.Data(), "revenue", roll.GroupBy)
		staleMed := groupMedians(sc.v.Data(), "revenue", roll.GroupBy)
		freshMed := groupMedians(samples.Fresh, "revenue", roll.GroupBy)
		sampleStaleMed := groupMedians(samples.Stale, "revenue", roll.GroupBy)
		var staleErrs, aqpErrs, corrErrs []float64
		for g, tv := range truthMed {
			if sv, ok := staleMed[g]; ok {
				staleErrs = append(staleErrs, estimator.RelativeError(sv, tv))
			} else {
				staleErrs = append(staleErrs, 1)
			}
			if fv, ok := freshMed[g]; ok {
				aqpErrs = append(aqpErrs, estimator.RelativeError(fv, tv))
				// CORR: stale exact + sampled difference.
				corrV := fv
				if sv, ok := staleMed[g]; ok {
					if ssv, ok2 := sampleStaleMed[g]; ok2 {
						corrV = sv + (fv - ssv)
					}
				}
				corrErrs = append(corrErrs, estimator.RelativeError(corrV, tv))
			}
		}
		if len(aqpErrs) == 0 {
			continue
		}
		t.AddRow(roll.Name, stats.Median(staleErrs), stats.Median(aqpErrs), stats.Median(corrErrs))
	}
	t.Notes = append(t.Notes, "paper Figure 13: medians are less variance-sensitive, so both SVC estimators do even better")
	return t, nil
}

// groupMedians computes median(attr) per group of rel (nil groupBy = one
// global group under key "").
func groupMedians(rel *relation.Relation, attr string, groupBy []string) map[string]float64 {
	attrIdx := rel.Schema().ColIndex(attr)
	if attrIdx < 0 {
		return nil
	}
	gIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		gIdx[i] = rel.Schema().ColIndex(g)
		if gIdx[i] < 0 {
			return nil
		}
	}
	vals := map[string][]float64{}
	for _, row := range rel.Rows() {
		k := ""
		if len(gIdx) > 0 {
			k = row.KeyOf(gIdx)
		}
		if !row[attrIdx].IsNull() {
			vals[k] = append(vals[k], row[attrIdx].AsFloat())
		}
	}
	out := make(map[string]float64, len(vals))
	for k, xs := range vals {
		out[k] = stats.Median(xs)
	}
	return out
}
