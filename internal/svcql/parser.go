package svcql

import (
	"fmt"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------- AST

// SelectStmt is a parsed SELECT block.
type SelectStmt struct {
	Items   []SelectItem
	From    string
	Joins   []JoinClause
	Where   *ExprNode
	GroupBy []string
}

// CreateViewStmt is CREATE VIEW name AS select.
type CreateViewStmt struct {
	Name   string
	Select SelectStmt
}

// SelectItem is one output of a SELECT: either a scalar expression or an
// aggregate application.
type SelectItem struct {
	// Agg is "" for scalar items, else COUNT/SUM/AVG/MIN/MAX/MEDIAN.
	Agg string
	// Expr is the scalar (or aggregate input) expression; nil for
	// COUNT(*) / COUNT(1).
	Expr *ExprNode
	// As is the output name ("" lets the planner derive one).
	As string
}

// JoinClause is JOIN table ON left = right.
type JoinClause struct {
	Table string
	Left  string
	Right string
}

// ExprNode is a parsed scalar expression.
type ExprNode struct {
	// Kind is one of "binary", "unary", "ident", "number", "string",
	// "null".
	Kind string
	// Op holds the operator for binary/unary nodes (e.g. "+", "AND",
	// "NOT", "=", "IS NULL").
	Op string
	// L and R are operands.
	L, R *ExprNode
	// Text holds identifier names and literal texts.
	Text string
}

// ---------------------------------------------------------------- parser

type parser struct {
	toks []token
	pos  int
}

// Parse parses a statement: CREATE VIEW or a bare SELECT. Exactly one of
// the returns is non-nil.
func Parse(src string) (*CreateViewStmt, *SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks}
	if p.peekKeyword("CREATE") {
		cv, err := p.parseCreateView()
		if err != nil {
			return nil, nil, err
		}
		return cv, nil, p.expectEOF()
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, nil, err
	}
	return nil, sel, p.expectEOF()
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("svcql: expected %s at position %d, got %q", kw, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("svcql: expected %q at position %d, got %q", s, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("svcql: expected identifier at position %d, got %q", t.pos, t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) expectEOF() error {
	if p.cur().kind != tokEOF {
		return fmt.Errorf("svcql: trailing input at position %d: %q", p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) parseCreateView() (*CreateViewStmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateViewStmt{Name: name, Select: *sel}, nil
}

// aggKeywords recognized in select items.
var aggKeywords = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true, "MEDIAN": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var stmt SelectStmt
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, *item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for p.acceptKeyword("JOIN") {
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		left, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		right, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: table, Left: stripQual(left), Right: stripQual(right)})
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, stripQual(g))
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	return &stmt, nil
}

// stripQual removes a table qualifier ("Log.videoId" → "videoId"); column
// names are globally unique in this dialect, matching the engine.
func stripQual(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func (p *parser) parseSelectItem() (*SelectItem, error) {
	t := p.cur()
	if t.kind == tokKeyword && aggKeywords[t.text] {
		agg := t.text
		p.pos++
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		item := &SelectItem{Agg: agg}
		if agg == "COUNT" {
			// COUNT(*) or COUNT(1) — the argument is ignored.
			if !p.acceptSymbol("*") {
				if _, err := p.parseExpr(); err != nil {
					return nil, err
				}
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.Expr = e
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if p.acceptKeyword("AS") {
			as, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			item.As = as
		}
		return item, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		as, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		item.As = as
	}
	return item, nil
}

// Expression grammar: or → and → not → comparison → additive →
// multiplicative → primary.

func (p *parser) parseExpr() (*ExprNode, error) { return p.parseOr() }

func (p *parser) parseOr() (*ExprNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ExprNode{Kind: "binary", Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (*ExprNode, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ExprNode{Kind: "binary", Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (*ExprNode, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ExprNode{Kind: "unary", Op: "NOT", L: e}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]bool{"=": true, "<>": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseComparison() (*ExprNode, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// BETWEEN lo AND hi
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &ExprNode{Kind: "binary", Op: "AND",
			L: &ExprNode{Kind: "binary", Op: ">=", L: l, R: lo},
			R: &ExprNode{Kind: "binary", Op: "<=", L: l, R: hi},
		}, nil
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		negated := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		node := &ExprNode{Kind: "unary", Op: "IS NULL", L: l}
		if negated {
			node = &ExprNode{Kind: "unary", Op: "NOT", L: node}
		}
		return node, nil
	}
	t := p.cur()
	if t.kind == tokSymbol && cmpOps[t.text] {
		p.pos++
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		op := t.text
		if op == "!=" {
			op = "<>"
		}
		return &ExprNode{Kind: "binary", Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (*ExprNode, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &ExprNode{Kind: "binary", Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (*ExprNode, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			l = &ExprNode{Kind: "binary", Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parsePrimary() (*ExprNode, error) {
	t := p.cur()
	switch {
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokSymbol && t.text == "-":
		p.pos++
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &ExprNode{Kind: "binary", Op: "-",
			L: &ExprNode{Kind: "number", Text: "0"}, R: e}, nil
	case t.kind == tokNumber:
		p.pos++
		if _, err := strconv.ParseFloat(t.text, 64); err != nil {
			return nil, fmt.Errorf("svcql: bad number %q at %d", t.text, t.pos)
		}
		return &ExprNode{Kind: "number", Text: t.text}, nil
	case t.kind == tokString:
		p.pos++
		return &ExprNode{Kind: "string", Text: t.text}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.pos++
		return &ExprNode{Kind: "null"}, nil
	case t.kind == tokIdent:
		p.pos++
		return &ExprNode{Kind: "ident", Text: stripQual(t.text)}, nil
	default:
		return nil, fmt.Errorf("svcql: unexpected token %q at %d", t.text, t.pos)
	}
}
