package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/svcql"
	"github.com/sampleclean/svc/server/api"
)

// Config tunes a Server. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// Addr is the listen address for Start (default "127.0.0.1:7781").
	Addr string
	// MaxInFlight bounds concurrently executing queries; requests beyond
	// it are rejected immediately with 503 (default 64).
	MaxInFlight int
	// DefaultDeadline is the per-query deadline when the request does not
	// set one (default 5s). MaxDeadline caps what a request may ask for
	// (default 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxRows caps the rows a base-table SELECT returns when the request
	// does not set a smaller cap (default 1000).
	MaxRows int
	// SamplingRatio is the SVC sample ratio for views created through
	// POST /views when the request does not set one (default 0.10).
	SamplingRatio float64
	// Refresh is the background refresh interval for views created
	// through POST /views; 0 leaves them without a refresher (the owner
	// maintains them explicitly).
	Refresh time.Duration
	// SchedInterval, when positive, runs the error-budget refresh
	// scheduler: views created through POST /views are registered with
	// one svc.Scheduler that ranks stale views by expected-error
	// reduction per unit maintenance cost and maintains the top ones in
	// shared group cycles. Per-view refreshers (Refresh) then defer to
	// it. SchedBudget caps views maintained per tick (default 1).
	SchedInterval time.Duration
	SchedBudget   int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7781"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 1000
	}
	if c.SamplingRatio <= 0 {
		c.SamplingRatio = 0.10
	}
	return c
}

// Server is the svcd serving core: it owns a database, a registry of
// served StaleViews, and the HTTP front door that answers svcql text.
//
// Every request pins one published catalog version and answers entirely
// from it (the estimator paths inside StaleView.Query do the pinning; the
// base-table path pins explicitly), so an answer is always internally
// consistent no matter what writers and background refresh cycles do
// concurrently. Handlers, Register, CreateView, and Shutdown are safe for
// concurrent use.
type Server struct {
	cfg Config
	d   *svc.Database

	mu    sync.RWMutex // guards views
	views map[string]*svc.StaleView

	sem  chan struct{}  // admission: one slot per executing query
	work sync.WaitGroup // tracks executing queries past handler return

	// sched is the error-budget refresh scheduler (nil unless
	// Config.SchedInterval is set). Views created via CreateView are
	// registered with it.
	sched *svc.Scheduler

	served, rejected, timedOut, canceled, errs atomic.Uint64
	ingested, ingestShed                       atomic.Uint64
	maxServedEpoch                             atomic.Uint64

	httpSrv *http.Server
	ln      net.Listener

	// holdQuery, when set, runs inside each query's worker goroutine
	// while its admission slot is held — a test seam for saturating
	// admission control and exercising shutdown draining deterministically.
	holdQuery atomic.Pointer[func()]
}

// New creates a server over the database. Views must be registered
// (Register) or created (CreateView, POST /views) before queries can
// target them; base-table SELECTs work immediately.
func New(d *svc.Database, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		d:     d,
		views: make(map[string]*svc.StaleView),
		sem:   make(chan struct{}, cfg.MaxInFlight),
	}
	if cfg.SchedInterval > 0 {
		s.sched = svc.NewScheduler(d, svc.SchedulerConfig{
			Interval: cfg.SchedInterval,
			Budget:   cfg.SchedBudget,
		})
		s.sched.Start()
	}
	return s
}

// Scheduler returns the server's error-budget refresh scheduler, or nil
// when Config.SchedInterval is unset.
func (s *Server) Scheduler() *svc.Scheduler { return s.sched }

// Register serves an existing StaleView under its view name.
func (s *Server) Register(sv *svc.StaleView) error {
	name := sv.View().Name()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.views[name]; dup {
		return fmt.Errorf("server: view %q already registered", name)
	}
	s.views[name] = sv
	return nil
}

// CreateView compiles a svcql CREATE VIEW statement, materializes it over
// the live database, registers it, and (when the server is configured
// with a refresh interval) starts its background refresher. Extra options
// are passed through to svc.New after the server defaults, so they win.
func (s *Server) CreateView(sql string, opts ...svc.Option) (*svc.StaleView, error) {
	def, err := svc.ViewFromSQL(s.d, sql)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	_, dup := s.views[def.Name]
	s.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("server: view %q already registered", def.Name)
	}
	all := []svc.Option{svc.WithSamplingRatio(s.cfg.SamplingRatio)}
	if s.cfg.Refresh > 0 {
		all = append(all, svc.WithBackgroundRefresh(s.cfg.Refresh))
	}
	if s.sched != nil {
		all = append(all, svc.WithScheduler(s.sched))
	}
	all = append(all, opts...)
	sv, err := svc.New(s.d, def, all...)
	if err != nil {
		return nil, err
	}
	if err := s.Register(sv); err != nil {
		// Raced with a concurrent CreateView of the same name.
		sv.Close()
		return nil, err
	}
	return sv, nil
}

// View returns the served view with the given name, or nil.
func (s *Server) View(name string) *svc.StaleView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.views[name]
}

// Handler returns the HTTP front door:
//
//	POST /query   {"sql": ...}            → api.QueryResponse
//	POST /views   {"sql": "CREATE VIEW"}  → api.CreateViewResponse
//	POST /ingest  {"table", "ops": [...]} → api.IngestResponse
//	GET  /stats                           → api.StatsResponse
//	GET  /healthz                         → 200 "ok"
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/views", s.handleCreateView)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Start binds the configured address and serves in the background. It
// returns once the listener is bound, so Addr is immediately usable.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		// ErrServerClosed is the normal Shutdown signal; anything else
		// would have surfaced to clients as failed requests already.
		_ = s.httpSrv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address (host:port) after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains and stops the server in the order a serving daemon
// needs: stop accepting connections, wait for every in-flight query to
// finish (including queries whose HTTP request already timed out — they
// keep running to completion in the background), and only then stop the
// background refreshers of every served view. The context bounds the
// wait; on expiry the refreshers are still stopped before returning.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	drained := make(chan struct{})
	go func() {
		s.work.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	s.mu.RLock()
	views := make([]*svc.StaleView, 0, len(s.views))
	for _, sv := range s.views {
		views = append(views, sv)
	}
	s.mu.RUnlock()
	for _, sv := range views {
		sv.Close()
	}
	if s.sched != nil {
		s.sched.Stop()
	}
	return err
}

// ------------------------------------------------------------- handlers

type queryOutcome struct {
	resp *api.QueryResponse
	code int
	err  error
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body to /query")
		return
	}
	var req api.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, "empty sql")
		return
	}

	// Admission control: reject immediately when MaxInFlight queries are
	// already executing — under overload a fast 503 beats a slow queue.
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"overloaded: %d queries in flight", cap(s.sem))
		return
	}

	start := time.Now()
	done := make(chan queryOutcome, 1)
	s.work.Add(1)
	go func() {
		defer func() { <-s.sem; s.work.Done() }()
		if hold := s.holdQuery.Load(); hold != nil {
			(*hold)()
		}
		resp, code, err := s.execute(&req)
		done <- queryOutcome{resp: resp, code: code, err: err}
	}()

	deadline := s.deadlineFor(req.DeadlineMillis)
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case out := <-done:
		if out.err != nil {
			s.errs.Add(1)
			writeError(w, out.code, "%v", out.err)
			return
		}
		out.resp.ElapsedMillis = float64(time.Since(start)) / float64(time.Millisecond)
		s.served.Add(1)
		s.noteServedEpoch(out.resp.AsOfEpoch)
		writeJSON(w, http.StatusOK, out.resp)
	case <-timer.C:
		// The query keeps its admission slot until it actually finishes,
		// so a pile-up of slow queries degrades into 503s instead of
		// unbounded goroutine growth.
		s.timedOut.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %v", deadline)
	case <-r.Context().Done():
		// The client went away (closed connection, aborted request) —
		// not a deadline expiry, so it gets its own counter.
		s.canceled.Add(1)
	}
}

func (s *Server) deadlineFor(reqMillis int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if reqMillis > 0 {
		// Compare in milliseconds before converting: a huge request value
		// would overflow the ms→ns conversion into a negative duration
		// and slip past the cap as an instant expiry.
		if reqMillis >= s.cfg.MaxDeadline.Milliseconds() {
			return s.cfg.MaxDeadline
		}
		d = time.Duration(reqMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// execute routes one parsed statement: aggregate SELECTs whose FROM names
// a served view go to the SVC estimators; SELECTs over base tables run
// through the batched pipeline against an explicitly pinned version.
func (s *Server) execute(req *api.QueryRequest) (*api.QueryResponse, int, error) {
	cv, sel, err := svcql.Parse(req.SQL)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if cv != nil {
		return nil, http.StatusBadRequest,
			fmt.Errorf("CREATE VIEW goes to POST /views, not /query")
	}
	if sv := s.View(sel.From); sv != nil {
		if req.Partial {
			return s.executeViewPartial(sv, req.SQL, len(sel.GroupBy) > 0)
		}
		return s.executeViewQuery(sv, req.SQL, len(sel.GroupBy) > 0)
	}
	return s.executeTableSelect(req, sel)
}

func (s *Server) executeViewQuery(sv *svc.StaleView, sql string, grouped bool) (*api.QueryResponse, int, error) {
	resp := &api.QueryResponse{View: sv.View().Name()}
	if grouped {
		res, err := sv.QueryGroupsSQL(sql)
		if err != nil {
			return nil, planOrRuntimeStatus(err), err
		}
		resp.Kind = "groups"
		for key, est := range res.Groups {
			g := api.Group{Key: res.Labels[key], Estimate: wireEstimate(est)}
			resp.Groups = append(resp.Groups, g)
			if est.AsOfEpoch > resp.AsOfEpoch {
				resp.AsOfEpoch = est.AsOfEpoch
			}
		}
		sort.Slice(resp.Groups, func(i, j int) bool { return resp.Groups[i].Key < resp.Groups[j].Key })
	} else {
		ans, err := sv.QuerySQL(sql)
		if err != nil {
			return nil, planOrRuntimeStatus(err), err
		}
		resp.Kind = "estimate"
		e := wireEstimate(ans.Estimate)
		resp.Estimate = &e
		stale := ans.StaleValue
		resp.StaleValue = &stale
		resp.AsOfEpoch = ans.AsOfEpoch
	}
	s.stampStaleness(resp)
	return resp, 0, nil
}

func (s *Server) executeTableSelect(req *api.QueryRequest, sel *svcql.SelectStmt) (*api.QueryResponse, int, error) {
	pin := s.d.Pin()
	if pin.Base(sel.From) == nil {
		return nil, http.StatusNotFound,
			fmt.Errorf("unknown relation %q: not a served view and not a base table", sel.From)
	}
	maxRows := s.cfg.MaxRows
	if req.MaxRows > 0 && req.MaxRows < maxRows {
		maxRows = req.MaxRows
	}
	// The cap is pushed into the pipeline drain: at most maxRows rows are
	// ever materialized; the rest of the stream is only counted.
	rel, total, err := svcql.ExecSelectLimit(pin, sel, maxRows)
	if err != nil {
		return nil, planOrRuntimeStatus(err), err
	}
	resp := &api.QueryResponse{
		Kind:       "rows",
		Columns:    rel.Schema().Names(),
		RowCount:   total,
		Truncated:  total > rel.Len(),
		AsOfEpoch:  pin.Epoch(),
		AppliedSeq: pin.AppliedSeq(),
		Pending:    pin.HasPending(),
	}
	rows := rel.Rows()
	resp.Rows = make([][]any, len(rows))
	for i, row := range rows {
		out := make([]any, len(row))
		for j, v := range row {
			out[j] = jsonValue(v)
		}
		resp.Rows[i] = out
	}
	return resp, 0, nil
}

// stampStaleness fills the advisory staleness fields of a view answer.
// AsOfEpoch is authoritative (stamped by the estimator from its pinned
// version); AppliedSeq and Pending describe the current publication, which
// can be at most one publication newer than the answer's.
func (s *Server) stampStaleness(resp *api.QueryResponse) {
	pin := s.d.Pin()
	resp.AppliedSeq = pin.AppliedSeq()
	resp.Pending = pin.HasPending()
	if resp.AsOfEpoch == 0 {
		// A group query over an empty view carries no per-group epochs;
		// stamp the current publication so every answer is epoch-stamped
		// (and per-client monotonicity still holds: the current epoch is
		// ≥ any epoch previously served).
		resp.AsOfEpoch = pin.Epoch()
	}
}

func (s *Server) handleCreateView(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body to /views")
		return
	}
	var req api.CreateViewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var opts []svc.Option
	if req.SamplingRatio > 0 {
		opts = append(opts, svc.WithSamplingRatio(req.SamplingRatio))
	}
	sv, err := s.CreateView(req.SQL, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, &api.CreateViewResponse{
		View:     sv.View().Name(),
		Rows:     sv.View().Data().Len(),
		Strategy: sv.Maintainer().Kind().String(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	pin := s.d.Pin()
	resp := &api.StatsResponse{
		Epoch:          pin.Epoch(),
		AppliedSeq:     pin.AppliedSeq(),
		Pending:        pin.HasPending(),
		MaxServedEpoch: s.maxServedEpoch.Load(),
		InFlight:       len(s.sem),
		MaxInFlight:    cap(s.sem),
		Served:         s.served.Load(),
		Rejected:       s.rejected.Load(),
		TimedOut:       s.timedOut.Load(),
		Canceled:       s.canceled.Load(),
		Errors:         s.errs.Load(),
		Ingested:       s.ingested.Load(),
		IngestShed:     s.ingestShed.Load(),
		Pools:          poolStats(),
	}
	if lg := svc.DurableLogOf(s.d); lg != nil {
		resp.WAL = wireWALStats(lg.Stats())
	}
	if s.sched != nil {
		resp.Sched = wireSchedStats(s.sched.Stats())
	}
	if resp.MaxServedEpoch > 0 && resp.Epoch > resp.MaxServedEpoch {
		resp.EpochLag = resp.Epoch - resp.MaxServedEpoch
	}
	s.mu.RLock()
	for name, sv := range s.views {
		vs := api.ViewStats{
			Name:       name,
			Rows:       sv.View().Data().Len(),
			SampleRows: sv.Cleaner().StaleSample().Len(),
			AppliedSeq: sv.AppliedSeq(),
			Queries:    sv.Queries(),
			Scheduled:  sv.Scheduled(),
		}
		if ref := sv.Refresher(); ref != nil {
			vs.RefreshIntervalMillis = float64(ref.Interval()) / float64(time.Millisecond)
			vs.Cycles = ref.Cycles()
			vs.Skips = ref.Skips()
			vs.SkipsIdle = ref.SkipsIdle()
			vs.SkipsDeferred = ref.SkipsDeferred()
			vs.MaxCycleMillis = float64(ref.MaxCycleDuration()) / float64(time.Millisecond)
			vs.LastCycleMillis = float64(ref.LastCycleDuration()) / float64(time.Millisecond)
			vs.InCycle = ref.InCycle()
			if err := ref.Err(); err != nil {
				vs.LastError = err.Error()
			}
		}
		resp.Views = append(resp.Views, vs)
	}
	s.mu.RUnlock()
	sort.Slice(resp.Views, func(i, j int) bool { return resp.Views[i].Name < resp.Views[j].Name })
	writeJSON(w, http.StatusOK, resp)
}

// wireSchedStats converts the scheduler's snapshot to the wire gauge.
func wireSchedStats(st svc.SchedulerStats) *api.SchedStats {
	out := &api.SchedStats{
		Ticks:        st.Ticks,
		GroupCycles:  st.GroupCycles,
		Maintained:   st.Maintained,
		Deferred:     st.Deferred,
		SharedHits:   st.SharedHits,
		SharedMisses: st.SharedMiss,
		RowsSaved:    st.RowsSaved,
	}
	for _, v := range st.Views {
		out.Views = append(out.Views, api.SchedViewStats{
			Name:        v.Name,
			HitProb:     v.HitProb,
			PendingRows: v.PendingRows,
			AgeMillis:   v.AgeMillis,
			Cycles:      v.Cycles,
			Deferred:    v.Deferred,
		})
	}
	return out
}

// poolStats snapshots the engine's batch/vector pool counters into the
// wire gauge (see api.PoolStats).
func poolStats() api.PoolStats {
	pc := relation.ReadPoolCounters()
	return api.PoolStats{
		BatchGets:    pc.BatchGets,
		BatchNews:    pc.BatchNews,
		BatchHitRate: pc.BatchHitRate(),
		VecGets:      pc.VecGets,
		VecNews:      pc.VecNews,
		VecHitRate:   pc.VecHitRate(),
	}
}

// ------------------------------------------------------------- plumbing

func (s *Server) noteServedEpoch(epoch uint64) {
	for {
		cur := s.maxServedEpoch.Load()
		if epoch <= cur || s.maxServedEpoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// planOrRuntimeStatus maps an execution error to an HTTP status: planner
// and binder errors (bad SQL against a fine catalog) are the client's
// fault, everything else is the server's.
func planOrRuntimeStatus(err error) int {
	if strings.Contains(err.Error(), "svcql:") {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func wireEstimate(e svc.Estimate) api.Estimate {
	return api.Estimate{
		Value:      e.Value,
		Lo:         e.Lo,
		Hi:         e.Hi,
		Confidence: e.Confidence,
		TailProb:   e.TailProb,
		Method:     e.Method,
		K:          e.K,
	}
}

func jsonValue(v relation.Value) any {
	switch v.Kind() {
	case relation.KindNull:
		return nil
	case relation.KindInt:
		return v.AsInt()
	case relation.KindFloat:
		return v.AsFloat()
	case relation.KindBool:
		return v.AsBool()
	default:
		return v.AsString()
	}
}

func writeJSON(w http.ResponseWriter, code int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(payload)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
