package minibatch

import (
	"math"
)

// ClusterConfig describes the simulated cluster and workload.
type ClusterConfig struct {
	// Workers is the number of parallel workers.
	Workers int
	// RecordRate is records/second/worker during compute phases.
	RecordRate float64
	// BatchOverhead is the fixed per-batch cost in seconds (scheduling,
	// serialization, RDD bookkeeping).
	BatchOverhead float64
	// ShufflePhases is the number of synchronous barriers per batch.
	ShufflePhases int
	// BarrierTime is the seconds per barrier during which workers idle.
	BarrierTime float64
	// Straggler is the extra fraction of compute time the slowest worker
	// adds (the others idle meanwhile).
	Straggler float64
}

// DefaultCluster matches a small 10-node deployment shape.
func DefaultCluster() ClusterConfig {
	return ClusterConfig{
		Workers:       10,
		RecordRate:    120_000,
		BatchOverhead: 8,
		ShufflePhases: 3,
		BarrierTime:   4,
		Straggler:     0.25,
	}
}

// BatchTime returns the wall-clock seconds to maintain a batch of n
// records.
func (c ClusterConfig) BatchTime(n float64) float64 {
	compute := n / (c.RecordRate * float64(c.Workers))
	return c.BatchOverhead + compute*(1+c.Straggler) + float64(c.ShufflePhases)*c.BarrierTime
}

// IdleTime returns the worker-idle seconds within one batch: barrier
// windows plus straggler tails — the capacity an SVC thread can use
// without impacting IVM (Figure 16's insight).
func (c ClusterConfig) IdleTime(n float64) float64 {
	compute := n / (c.RecordRate * float64(c.Workers))
	return float64(c.ShufflePhases)*c.BarrierTime + compute*c.Straggler
}

// Throughput returns records/second of IVM alone at batch size n
// (Figure 14a).
func (c ClusterConfig) Throughput(n float64) float64 {
	return n / c.BatchTime(n)
}

// ThroughputTwoThreads returns records/second when an SVC maintenance
// thread with sampling ratio m runs concurrently (Figure 14b). The SVC
// job's fixed structure — scheduling overhead and its own synchronization
// barriers — serializes with the IVM batch (the driver runs one job at a
// time), so small batches pay it in full (≈2× slowdown, as the paper
// measures); only the SVC *compute* can hide inside the IVM batch's idle
// windows, so large batches are barely affected.
func (c ClusterConfig) ThroughputTwoThreads(n, m float64) float64 {
	compute := n / (c.RecordRate * float64(c.Workers))
	svcFixed := c.BatchOverhead + float64(c.ShufflePhases)*c.BarrierTime
	spill := m*compute - c.IdleTime(n)
	if spill < 0 {
		spill = 0
	}
	return n / (c.BatchTime(n) + svcFixed + spill)
}

// SmallestBatchFor returns the smallest batch size whose throughput meets
// target records/second (the paper's "choosing a batch size" procedure),
// searching the given candidates. ok is false when none qualifies.
func (c ClusterConfig) SmallestBatchFor(target float64, twoThreads bool, m float64, candidates []float64) (batch float64, ok bool) {
	for _, b := range candidates {
		var thr float64
		if twoThreads {
			thr = c.ThroughputTwoThreads(b, m)
		} else {
			thr = c.Throughput(b)
		}
		if thr >= target {
			return b, true
		}
	}
	return 0, false
}

// ViewProfile captures how a view's query error responds to staleness and
// sampling — the knobs that differ between the paper's V2 and V5.
type ViewProfile struct {
	// Name labels the profile ("V2", "V5").
	Name string
	// SampleNoise is the coefficient of the 1/√(m·Rows) sampling error.
	SampleNoise float64
	// Rows is the view cardinality.
	Rows float64
	// StaleScale is the number of unapplied update records that produce
	// one unit of relative query error (smaller ⇒ more
	// staleness-sensitive).
	StaleScale float64
	// CleanParallelism is the share of aggregate cluster compute this
	// view's SVC cleaning can claim from idle windows: views whose
	// cleaning shards well (many independent groups) soak up more of the
	// scattered barrier/straggler capacity.
	CleanParallelism float64
}

// V2Profile mirrors the paper's V2 (bytes-transferred sums): compact
// per-group values, low estimator noise.
func V2Profile() ViewProfile {
	return ViewProfile{Name: "V2", SampleNoise: 1.0, Rows: 2e5, StaleScale: 2e8, CleanParallelism: 0.15}
}

// V5Profile mirrors the paper's V5 (nested error statistics): noisier
// estimates and more staleness-sensitive, so its optimum sampling ratio
// sits higher (paper: 6% vs V2's 3%).
func V5Profile() ViewProfile {
	return ViewProfile{Name: "V5", SampleNoise: 3.5, Rows: 2e5, StaleScale: 1.2e8, CleanParallelism: 0.30}
}

// samplingError is the steady-state estimation error of an SVC sample at
// ratio m.
func (p ViewProfile) samplingError(m float64) float64 {
	if m <= 0 {
		return math.Inf(1)
	}
	return p.SampleNoise / math.Sqrt(m*p.Rows)
}

// stalenessError is the query error after `records` unapplied updates.
func (p ViewProfile) stalenessError(records float64) float64 {
	return records / p.StaleScale
}

// MaxError simulates a maintenance regime at fixed ingest throughput and
// returns the maximum query error observed within a maintenance period
// (Figure 15's metric).
//
// Regime: the full view is IVM-maintained every ivmBatch records. With SVC
// (m > 0), the sample view is additionally cleaned every svcBatch records;
// between cleanings the *sample* is stale too. The error at any time is
// the best available answer: min(stale full view, SVC estimate).
func MaxError(p ViewProfile, ivmBatch float64, m float64, svcBatch float64) float64 {
	if m <= 0 {
		// IVM alone: the error peaks just before the batch lands.
		return p.stalenessError(ivmBatch)
	}
	// With SVC, the error at time t (in accumulated records) is the best
	// available answer, min(staleFull(t), sampErr + staleSample(t mod
	// svcBatch)). Both components are increasing between refresh points,
	// so the period maximum is attained just before a cleaning (sample
	// staleness ≈ svcBatch) or at the period end, whichever binds:
	peakSVC := p.samplingError(m) + p.stalenessError(math.Min(svcBatch, ivmBatch))
	peakFull := p.stalenessError(ivmBatch)
	return math.Min(peakSVC, peakFull)
}

// svcOverheadSec is the fixed cost of one SVC cleaning job.
const svcOverheadSec = 1.0

// SVCBatchFor sizes the SVC cleaning batch so the cleaning work (ratio m
// of the update volume plus a small fixed cost) fits the cluster capacity
// left over at the target ingest rate — the feedback that makes large m
// refresh *less* often and creates Figure 15's interior optimum.
func (c ClusterConfig) SVCBatchFor(p ViewProfile, target, m float64) float64 {
	// Spare wall-time fraction at the operating batch size: barriers and
	// straggler tails (one minute of updates as the reference window).
	b := target * 60
	spareRate := c.IdleTime(b) / c.BatchTime(b)
	// Cleaning s records costs svcOverheadSec + m·s/(svcFraction·rate·W)
	// seconds and must fit in spareRate·(s/target) wall seconds:
	//   s = overhead / (spare/target − m/(svcFraction·rW))
	rW := p.CleanParallelism * c.RecordRate * float64(c.Workers)
	den := spareRate/target - m/rW
	if den <= 0 {
		return math.Inf(1) // cleaning can never keep up at this ratio
	}
	s := svcOverheadSec / den
	if s < target { // at least one second of updates per cleaning
		s = target
	}
	return s
}

// UtilizationTrace returns per-second cluster CPU utilization over one IVM
// batch, without and with a concurrent SVC thread (Figure 16): IVM alone
// shows deep idle dips at shuffle barriers; SVC fills them.
func (c ClusterConfig) UtilizationTrace(n float64, withSVC bool, m float64) []float64 {
	total := c.BatchTime(n)
	compute := n / (c.RecordRate * float64(c.Workers))
	seconds := int(math.Ceil(total))
	trace := make([]float64, seconds)

	// Lay out the batch: overhead, then alternating compute slices and
	// barriers.
	type phase struct {
		dur  float64
		util float64
	}
	var phases []phase
	phases = append(phases, phase{c.BatchOverhead, 0.30})
	slices := c.ShufflePhases + 1
	for i := 0; i < slices; i++ {
		phases = append(phases, phase{compute * (1 + c.Straggler) / float64(slices), 0.85})
		if i < c.ShufflePhases {
			phases = append(phases, phase{c.BarrierTime, 0.15})
		}
	}
	svcBudget := 0.0
	if withSVC {
		svcBudget = c.BatchOverhead/2 + m*compute // worker-seconds of SVC work
	}
	t := 0.0
	pi := 0
	rem := phases[0].dur
	for s := 0; s < seconds; s++ {
		// find utilization of the phase covering second s
		for rem <= 0 && pi < len(phases)-1 {
			pi++
			rem = phases[pi].dur
		}
		u := phases[pi].util
		if withSVC && u < 0.80 && svcBudget > 0 {
			// SVC soaks idle capacity up to ~92% total utilization.
			take := math.Min(svcBudget, (0.92-u)*1.0)
			u += take
			svcBudget -= take
		}
		trace[s] = u
		rem -= 1
		t += 1
	}
	_ = t
	return trace
}
