package algebra

import (
	"fmt"

	"github.com/sampleclean/svc/internal/relation"
)

// setOpKind distinguishes the three binary set operators.
type setOpKind uint8

const (
	opUnion setOpKind = iota
	opIntersect
	opDifference
)

func (k setOpKind) String() string {
	return [...]string{"Union", "Intersect", "Difference"}[k]
}

// SetOpNode implements Union, Intersection and Difference over
// union-compatible inputs.
//
// Semantics follow the paper's set-oriented algebra when the inputs are
// keyed: rows are identified by primary key (Definition 2 gives Union and
// Intersection the combined key, Difference the left key). With keyless
// (bag) inputs, Union concatenates and Intersection/Difference match on
// whole-row equality — the bag behaviour the delta-propagation rules use.
type SetOpNode struct {
	kind   setOpKind
	l, r   Node
	schema relation.Schema
}

func newSetOp(kind setOpKind, l, r Node) (*SetOpNode, error) {
	ls, rs := l.Schema(), r.Schema()
	if !ls.Compatible(rs) {
		return nil, fmt.Errorf("algebra: %s: schemas incompatible: [%s] vs [%s]", kind, ls, rs)
	}
	// Definition 2: Union/Intersect take the union/intersection of the two
	// keys; with identical column sets on both sides this is the left key
	// when both sides are keyed, and keyless otherwise. Difference keeps
	// the left key.
	schema := ls
	if kind != opDifference && (!ls.HasKey() || !rs.HasKey()) {
		schema = relation.NewSchema(ls.Cols()) // keyless
	}
	return &SetOpNode{kind: kind, l: l, r: r, schema: schema}, nil
}

// Union returns l ∪ r. Keyed inputs deduplicate by primary key (left
// precedence); keyless inputs concatenate (bag union).
func Union(l, r Node) (*SetOpNode, error) { return newSetOp(opUnion, l, r) }

// Intersect returns l ∩ r.
func Intersect(l, r Node) (*SetOpNode, error) { return newSetOp(opIntersect, l, r) }

// Difference returns l − r.
func Difference(l, r Node) (*SetOpNode, error) { return newSetOp(opDifference, l, r) }

// MustUnion is Union, panicking on error.
func MustUnion(l, r Node) *SetOpNode {
	n, err := Union(l, r)
	if err != nil {
		panic(err)
	}
	return n
}

// MustIntersect is Intersect, panicking on error.
func MustIntersect(l, r Node) *SetOpNode {
	n, err := Intersect(l, r)
	if err != nil {
		panic(err)
	}
	return n
}

// MustDifference is Difference, panicking on error.
func MustDifference(l, r Node) *SetOpNode {
	n, err := Difference(l, r)
	if err != nil {
		panic(err)
	}
	return n
}

// Kind returns "Union", "Intersect" or "Difference".
func (s *SetOpNode) Kind() string { return s.kind.String() }

// Schema implements Node.
func (s *SetOpNode) Schema() relation.Schema { return s.schema }

// identIdx returns the column indexes identifying a row for set matching:
// the primary key when sch is keyed, the whole row otherwise.
func identIdx(sch relation.Schema) []int {
	if sch.HasKey() {
		return sch.Key()
	}
	return allIdx(sch.NumCols())
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Eval implements Node (the pipeline shim; see pipeline.go).
func (s *SetOpNode) Eval(ctx *Context) (*relation.Relation, error) {
	return evalPipelined(ctx, s)
}

// evalMat is the materializing evaluation (see EvalMaterialized).
//
// Membership testing hashes the identity columns to 64 bits and probes an
// open-addressed table with full-key verification — no per-row key
// strings (NULL identity values participate, matching the canonical
// encoding, so this is not a join).
func (s *SetOpNode) evalMat(ctx *Context) (*relation.Relation, error) {
	lRel, err := EvalMaterialized(s.l, ctx)
	if err != nil {
		return nil, err
	}
	rRel, err := EvalMaterialized(s.r, ctx)
	if err != nil {
		return nil, err
	}
	ctx.RowsTouched += int64(lRel.Len()) + int64(rRel.Len())
	idx := identIdx(s.schema)
	var rows []relation.Row
	switch s.kind {
	case opUnion:
		if !s.schema.HasKey() {
			rows = append(rows, lRel.Rows()...)
			rows = append(rows, rRel.Rows()...)
		} else {
			seen := buildRowTable(lRel.Rows(), idx, false, ctx.workers(lRel.Len()))
			rows = append(rows, lRel.Rows()...)
			for _, row := range rRel.Rows() {
				if !seen.contains(keyHash(row, idx), row, idx) {
					rows = append(rows, row)
				}
			}
		}
	case opIntersect:
		present := buildRowTable(rRel.Rows(), idx, false, ctx.workers(rRel.Len()))
		for _, row := range lRel.Rows() {
			if present.contains(keyHash(row, idx), row, idx) {
				rows = append(rows, row)
			}
		}
	case opDifference:
		present := buildRowTable(rRel.Rows(), idx, false, ctx.workers(rRel.Len()))
		for _, row := range lRel.Rows() {
			if !present.contains(keyHash(row, idx), row, idx) {
				rows = append(rows, row)
			}
		}
	}
	return output(ctx, s.schema, rows)
}

// Children implements Node.
func (s *SetOpNode) Children() []Node { return []Node{s.l, s.r} }

// WithChildren implements Node.
func (s *SetOpNode) WithChildren(ch []Node) Node {
	if len(ch) != 2 {
		panic("algebra: set operator takes two children")
	}
	n, err := newSetOp(s.kind, ch[0], ch[1])
	if err != nil {
		panic(err)
	}
	return n
}

// String implements Node.
func (s *SetOpNode) String() string { return s.kind.String() }

// ----------------------------------------------------- streaming evaluation

// setOpIter is the batched set operator. It streams its (usually large)
// left input through instead of materializing it:
//
//   - Difference / Intersect: the right side is drained into a membership
//     table at Open, then left batches are filtered in place — one pass,
//     no intermediate relation for either side.
//   - Union (keyed): left batches pass through while their rows' keys are
//     recorded in an incrementally grown table; right batches are then
//     filtered against it. Row order equals the materialized evaluation's
//     (all left rows, then right rows not matched by key).
//   - Union (bag): plain concatenation, nothing retained.
//
// The keyed union retains left row headers, so it pins owned left batches
// before passing them downstream (see relation.Batch).
type setOpIter struct {
	node  *SetOpNode
	ctx   *Context
	idx   []int
	left  Iterator
	right Iterator
	// rightPhase is true once the left stream is exhausted.
	rightPhase bool
	// Difference/Intersect membership (built from the right input).
	build *rowTable
	// Keyed-union left recording.
	lRows []relation.Row
	seen  *hashIdx
	// probe is the scratch row for membership tests against columnar
	// batches: only the idx cells are filled (the hash and key encoding
	// read nothing else), so the batch's rows are never materialized.
	probe relation.Row
}

func (s *setOpIter) Open(ctx *Context) error {
	s.ctx = ctx
	s.idx = identIdx(s.node.schema)
	s.probe = make(relation.Row, s.node.schema.NumCols())
	if s.node.kind != opUnion {
		rRows, err := drainRows(ctx, s.node.r)
		if err != nil {
			return err
		}
		ctx.RowsTouched += int64(len(rRows))
		s.build = buildRowTable(rRows, s.idx, false, ctx.workers(len(rRows)))
	} else if s.node.schema.HasKey() {
		s.seen = newHashIdx(64, nil)
	}
	s.left = iterNode(s.node.l)
	return s.left.Open(ctx)
}

func (s *setOpIter) Next() (*relation.Batch, error) {
	for !s.rightPhase {
		b, err := s.left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			s.rightPhase = true
			if s.node.kind != opUnion {
				return nil, nil // difference/intersect emit the left side only
			}
			s.right = iterNode(s.node.r)
			if err := s.right.Open(s.ctx); err != nil {
				return nil, err
			}
			break
		}
		s.ctx.RowsTouched += int64(b.Len())
		switch s.node.kind {
		case opUnion:
			if s.seen != nil {
				var row relation.Row
				sameKey := func(head int32) bool {
					return s.lRows[head].KeyEqualCols(s.idx, row, s.idx)
				}
				for _, r := range b.Rows() {
					row = r
					id := int32(len(s.lRows))
					s.lRows = append(s.lRows, r)
					s.seen.addGrow(keyHash(r, s.idx), id, sameKey)
				}
				if b.Owned() {
					b.Pin()
				}
			}
			return b, nil
		case opIntersect, opDifference:
			keep := s.node.kind == opIntersect
			if b.Columnar() {
				// Filter in place by shrinking the selection vector; the
				// scratch probe row carries only the identity cells.
				sel := b.EnsureSel()
				kept := sel[:0]
				for _, i := range sel {
					for _, c := range s.idx {
						s.probe[c] = b.ValueAt(int(i), c)
					}
					if s.build.contains(keyHash(s.probe, s.idx), s.probe, s.idx) == keep {
						kept = append(kept, i)
					}
				}
				b.SetSel(kept)
				if b.Len() > 0 {
					return b, nil
				}
				b.Release()
				continue
			}
			rows := b.Rows()
			kept := 0
			for _, row := range rows {
				if s.build.contains(keyHash(row, s.idx), row, s.idx) == keep {
					rows[kept] = row
					kept++
				}
			}
			b.Truncate(kept)
			if kept > 0 {
				return b, nil
			}
			b.Release()
		}
	}
	// Right phase: only the union reaches here.
	for {
		b, err := s.right.Next()
		if err != nil || b == nil {
			return nil, err
		}
		s.ctx.RowsTouched += int64(b.Len())
		if s.seen == nil {
			return b, nil // bag union concatenates
		}
		var row relation.Row
		sameKey := func(head int32) bool {
			return s.lRows[head].KeyEqualCols(s.idx, row, s.idx)
		}
		if b.Columnar() {
			row = s.probe
			sel := b.EnsureSel()
			kept := sel[:0]
			for _, i := range sel {
				for _, c := range s.idx {
					s.probe[c] = b.ValueAt(int(i), c)
				}
				if s.seen.first(keyHash(s.probe, s.idx), sameKey) < 0 {
					kept = append(kept, i)
				}
			}
			b.SetSel(kept)
			if b.Len() > 0 {
				return b, nil
			}
			b.Release()
			continue
		}
		rows := b.Rows()
		kept := 0
		for _, r := range rows {
			row = r
			if s.seen.first(keyHash(r, s.idx), sameKey) < 0 {
				rows[kept] = r
				kept++
			}
		}
		b.Truncate(kept)
		if kept > 0 {
			return b, nil
		}
		b.Release()
	}
}

func (s *setOpIter) Close() {
	if s.left != nil {
		s.left.Close()
	}
	if s.right != nil {
		s.right.Close()
	}
}
