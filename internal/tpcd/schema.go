package tpcd

import (
	"github.com/sampleclean/svc/internal/relation"
)

// Table names.
const (
	Region   = "region"
	Nation   = "nation"
	Customer = "customer"
	Supplier = "supplier"
	Part     = "part"
	Orders   = "orders"
	Lineitem = "lineitem"
)

// RegionSchema: r_regionkey, r_name.
func RegionSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "r_regionkey", Type: relation.KindInt},
		{Name: "r_name", Type: relation.KindString},
	}, "r_regionkey")
}

// NationSchema: n_nationkey, n_name, n_regionkey.
func NationSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "n_nationkey", Type: relation.KindInt},
		{Name: "n_name", Type: relation.KindString},
		{Name: "n_regionkey", Type: relation.KindInt},
	}, "n_nationkey")
}

// CustomerSchema: c_custkey, c_nationkey, c_acctbal, c_mktsegment, c_phone.
func CustomerSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "c_custkey", Type: relation.KindInt},
		{Name: "c_nationkey", Type: relation.KindInt},
		{Name: "c_acctbal", Type: relation.KindFloat},
		{Name: "c_mktsegment", Type: relation.KindInt},
		{Name: "c_phone", Type: relation.KindString},
	}, "c_custkey")
}

// SupplierSchema: s_suppkey, s_nationkey, s_acctbal.
func SupplierSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "s_suppkey", Type: relation.KindInt},
		{Name: "s_nationkey", Type: relation.KindInt},
		{Name: "s_acctbal", Type: relation.KindFloat},
	}, "s_suppkey")
}

// PartSchema: p_partkey, p_brand, p_retailprice.
func PartSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "p_partkey", Type: relation.KindInt},
		{Name: "p_brand", Type: relation.KindInt},
		{Name: "p_retailprice", Type: relation.KindFloat},
	}, "p_partkey")
}

// OrdersSchema: o_orderkey, o_custkey, o_orderstatus, o_totalprice,
// o_orderdate (day number), o_orderpriority (1..5).
func OrdersSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "o_orderkey", Type: relation.KindInt},
		{Name: "o_custkey", Type: relation.KindInt},
		{Name: "o_orderstatus", Type: relation.KindInt},
		{Name: "o_totalprice", Type: relation.KindFloat},
		{Name: "o_orderdate", Type: relation.KindInt},
		{Name: "o_orderpriority", Type: relation.KindInt},
	}, "o_orderkey")
}

// LineitemSchema: composite key (l_orderkey, l_linenumber); foreign keys to
// orders, part, supplier.
func LineitemSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "l_orderkey", Type: relation.KindInt},
		{Name: "l_linenumber", Type: relation.KindInt},
		{Name: "l_partkey", Type: relation.KindInt},
		{Name: "l_suppkey", Type: relation.KindInt},
		{Name: "l_quantity", Type: relation.KindFloat},
		{Name: "l_extendedprice", Type: relation.KindFloat},
		{Name: "l_discount", Type: relation.KindFloat},
		{Name: "l_returnflag", Type: relation.KindInt},
		{Name: "l_shipdate", Type: relation.KindInt},
	}, "l_orderkey", "l_linenumber")
}
