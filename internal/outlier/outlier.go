package outlier

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
)

// Index is a bounded outlier index on one attribute of one base relation.
type Index struct {
	table     string
	attr      string
	attrIdx   int
	threshold float64
	limit     int
	schema    relation.Schema
	h         recHeap // min-heap by attribute value for eviction
}

// NewIndex creates an index on table.attr keeping at most limit records
// with attr > threshold. The schema is the base table's schema.
func NewIndex(table, attr string, schema relation.Schema, threshold float64, limit int) (*Index, error) {
	idx := schema.ColIndex(attr)
	if idx < 0 {
		return nil, fmt.Errorf("outlier: attribute %q not in schema of %s", attr, table)
	}
	if limit <= 0 {
		return nil, fmt.Errorf("outlier: index needs a positive size limit")
	}
	return &Index{table: table, attr: attr, attrIdx: idx, threshold: threshold, limit: limit, schema: schema}, nil
}

// Table returns the indexed base table's name.
func (ix *Index) Table() string { return ix.table }

// Attr returns the indexed attribute.
func (ix *Index) Attr() string { return ix.attr }

// Threshold returns the current threshold t.
func (ix *Index) Threshold() float64 { return ix.threshold }

// Len returns the number of indexed records.
func (ix *Index) Len() int { return len(ix.h.rows) }

// Observe offers one record to the index (the paper's single pass over
// updates). Records at or below the threshold are ignored; when full, the
// incoming record evicts the smallest indexed record if it is greater.
func (ix *Index) Observe(row relation.Row) {
	v := row[ix.attrIdx]
	if v.IsNull() {
		return
	}
	x := v.AsFloat()
	if x <= ix.threshold {
		return
	}
	if len(ix.h.rows) < ix.limit {
		heap.Push(&ix.h, rec{val: x, row: row})
		return
	}
	if x > ix.h.rows[0].val {
		ix.h.rows[0] = rec{val: x, row: row}
		heap.Fix(&ix.h, 0)
	}
}

// BuildFromTable populates the index in one pass over the table's current
// base rows and staged insertions, skipping staged deletions — i.e. the
// up-to-date contents, without maintaining any view.
func (ix *Index) BuildFromTable(t *db.Table) error {
	if t.Name() != ix.table {
		return fmt.Errorf("outlier: index on %s fed from table %s", ix.table, t.Name())
	}
	return ix.buildFrom(t.Rows(), t.Insertions(), t.Deletions())
}

// BuildFromVersion is BuildFromTable over a pinned catalog version: the
// index observes the version's base rows and staged insertions, skipping
// staged deletions, without reading any live (mutable) relation.
func (ix *Index) BuildFromVersion(v *db.Version) error {
	base := v.Base(ix.table)
	if base == nil {
		return fmt.Errorf("outlier: index on %s: table missing from version", ix.table)
	}
	return ix.buildFrom(base, v.Insertions(ix.table), v.Deletions(ix.table))
}

func (ix *Index) buildFrom(base, ins, del *relation.Relation) error {
	keyIdx := base.Schema().Key()
	deleted := func(row relation.Row) bool {
		_, gone := del.GetByEncodedKey(row.KeyOf(keyIdx))
		return gone
	}
	for _, row := range base.Rows() {
		if !deleted(row) {
			ix.Observe(row)
		}
	}
	for _, row := range ins.Rows() {
		ix.Observe(row)
	}
	return nil
}

// Records returns the indexed records as a keyed relation (base schema).
func (ix *Index) Records() *relation.Relation {
	out := relation.New(ix.schema)
	for _, r := range ix.h.rows {
		// Upsert: an updated record may have been observed twice (old
		// base row and staged insertion); keep whichever survived the
		// heap, newest wins on ties.
		_, _ = out.Upsert(r.row)
	}
	return out
}

// Reset clears the indexed records, keeping the configuration.
func (ix *Index) Reset() { ix.h.rows = nil }

// SetThreshold updates the threshold (adaptive re-tuning between
// maintenance periods, Section 6.1). Existing entries below the new
// threshold are dropped.
func (ix *Index) SetThreshold(t float64) {
	ix.threshold = t
	kept := ix.h.rows[:0]
	for _, r := range ix.h.rows {
		if r.val > t {
			kept = append(kept, r)
		}
	}
	ix.h.rows = kept
	heap.Init(&ix.h)
}

// rec is one indexed record.
type rec struct {
	val float64
	row relation.Row
}

// recHeap is a min-heap of records by attribute value.
type recHeap struct{ rows []rec }

func (h recHeap) Len() int            { return len(h.rows) }
func (h recHeap) Less(i, j int) bool  { return h.rows[i].val < h.rows[j].val }
func (h recHeap) Swap(i, j int)       { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *recHeap) Push(x interface{}) { h.rows = append(h.rows, x.(rec)) }
func (h *recHeap) Pop() interface{} {
	old := h.rows
	n := len(old)
	x := old[n-1]
	h.rows = old[:n-1]
	return x
}

// TopKThreshold returns the threshold that admits roughly the top k values
// of attr in the table's current contents — the paper's top-k strategy:
// the attribute value of the lowest top-k record becomes t.
func TopKThreshold(t *db.Table, attr string, k int) (float64, error) {
	idx := t.Schema().ColIndex(attr)
	if idx < 0 {
		return 0, fmt.Errorf("outlier: attribute %q not in %s", attr, t.Name())
	}
	var vals []float64
	for _, row := range t.Rows().Rows() {
		if !row[idx].IsNull() {
			vals = append(vals, row[idx].AsFloat())
		}
	}
	if len(vals) == 0 {
		return 0, nil
	}
	if k >= len(vals) {
		lo := vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
		}
		return math.Nextafter(lo, math.Inf(-1)), nil
	}
	p := 1 - float64(k)/float64(len(vals))
	return stats.Quantile(vals, p), nil
}

// SigmaThreshold returns mean + c·stdev of attr over the table's current
// contents — the paper's alternative c-standard-deviations strategy.
func SigmaThreshold(t *db.Table, attr string, c float64) (float64, error) {
	idx := t.Schema().ColIndex(attr)
	if idx < 0 {
		return 0, fmt.Errorf("outlier: attribute %q not in %s", attr, t.Name())
	}
	var vals []float64
	for _, row := range t.Rows().Rows() {
		if !row[idx].IsNull() {
			vals = append(vals, row[idx].AsFloat())
		}
	}
	return stats.Mean(vals) + c*stats.Stdev(vals), nil
}
