package wal

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/sampleclean/svc/internal/relation"
)

// recordFromScript deterministically builds a record from fuzzer bytes,
// exercising every value kind the codec supports — including NULL, NaN
// (arbitrary payload bits), and negative zero.
func recordFromScript(data []byte) record {
	take := func(n int) []byte {
		if len(data) < n {
			pad := make([]byte, n)
			copy(pad, data)
			data = nil
			return pad
		}
		b := data[:n]
		data = data[n:]
		return b
	}
	r := record{typ: recInsert + take(1)[0]%3, seq: binary.LittleEndian.Uint64(take(8))}
	if take(1)[0]%5 == 0 {
		r.typ = recBoundary
		r.cut = binary.LittleEndian.Uint64(take(8))
		r.applied = binary.LittleEndian.Uint64(take(8))
		return r
	}
	nameLen := int(take(1)[0]) % 64
	r.table = string(take(nameLen))
	nvals := int(take(1)[0]) % 16
	for i := 0; i < nvals; i++ {
		switch take(1)[0] % 7 {
		case 0:
			r.row = append(r.row, relation.Null())
		case 1:
			r.row = append(r.row, relation.Int(int64(binary.LittleEndian.Uint64(take(8)))))
		case 2:
			r.row = append(r.row, relation.Float(math.Float64frombits(binary.LittleEndian.Uint64(take(8)))))
		case 3:
			r.row = append(r.row, relation.Float(math.NaN()))
		case 4:
			r.row = append(r.row, relation.Float(math.Copysign(0, -1)))
		case 5:
			r.row = append(r.row, relation.String(string(take(int(take(1)[0])))))
		case 6:
			r.row = append(r.row, relation.Bool(take(1)[0]%2 == 0))
		}
	}
	return r
}

func sameValueBits(a, b relation.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == relation.KindFloat {
		// Bitwise, not ==: NaN payloads and −0.0 must survive the trip.
		return math.Float64bits(a.AsFloat()) == math.Float64bits(b.AsFloat())
	}
	return a.Equal(b)
}

// FuzzRecordRoundTrip fuzzes the WAL record codec three ways: decoding
// arbitrary bytes must never panic and only ever yield whole records;
// a record built from the input must round-trip bit for bit; and every
// proper prefix of its encoding must read as a torn tail, never as a
// record and never as garbage.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte("SVCWAL01 some trailing junk"))
	{
		r := record{typ: recUpdate, seq: 7, table: "kv", row: relation.Row{
			relation.Int(-1), relation.Null(), relation.Float(math.NaN()),
			relation.Float(math.Copysign(0, -1)), relation.String("x"), relation.Bool(true),
		}}
		f.Add(appendRecord(nil, &r))
	}
	{
		r := record{typ: recBoundary, seq: 12, cut: 9, applied: 3}
		f.Add(append(appendRecord(nil, &r), 0xde, 0xad))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// (1) Arbitrary bytes: no panics, forward progress, whole records only.
		rest := data
		for {
			_, n, err := decodeRecord(rest)
			if err != nil {
				break
			}
			if n <= frameHeader || n > len(rest) {
				t.Fatalf("decodeRecord claimed %d bytes of %d", n, len(rest))
			}
			rest = rest[n:]
		}

		// (2) Exact round trip of a scripted record.
		r := recordFromScript(data)
		enc := appendRecord(nil, &r)
		got, n, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("round trip consumed %d of %d bytes", n, len(enc))
		}
		if got.typ != r.typ || got.seq != r.seq || got.table != r.table ||
			got.cut != r.cut || got.applied != r.applied || len(got.row) != len(r.row) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, r)
		}
		for i := range r.row {
			if !sameValueBits(got.row[i], r.row[i]) {
				t.Fatalf("value %d mismatch: %v != %v", i, got.row[i], r.row[i])
			}
		}

		// (3) Every truncation of a valid frame is a torn tail, not a record.
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := decodeRecord(enc[:cut]); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) decoded as a record", cut, len(enc))
			}
		}
	})
}
