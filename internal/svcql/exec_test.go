package svcql

// End-to-end tests for the execution half: every tpcd svcql text runs
// through parse → plan → batched pipeline and must match the materialized
// reference engine (algebra.EvalMaterialized) exactly, and the Figure 5
// query texts must be semantically identical to the hand-built estimator
// queries in tpcd/queries.go.

import (
	"strings"
	"testing"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

func tpcdDB(t *testing.T) *db.Database {
	t.Helper()
	cfg := tpcd.DefaultConfig()
	cfg.Orders = 400
	cfg.Customers = 60
	cfg.Suppliers = 20
	cfg.Parts = 50
	d, err := tpcd.NewGenerator(cfg).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestTPCDViewSQLThroughPipeline plans every tpcd CREATE VIEW text and
// evaluates the plan both ways: through the batched pipeline (Node.Eval,
// the production path) and through the fully materialized reference
// engine. The two engines must produce identical relations, serial and
// parallel, fused and unfused.
func TestTPCDViewSQLThroughPipeline(t *testing.T) {
	d := tpcdDB(t)
	sqls := tpcd.ViewSQL()
	sqls["joinView"] = tpcd.JoinViewSQL
	for name, sql := range sqls {
		def, err := PlanView(d, sql)
		if err != nil {
			t.Fatalf("%s: plan: %v", name, err)
		}
		if def.Name != name {
			t.Fatalf("%s: planned name %q", name, def.Name)
		}
		ref, err := algebra.EvalMaterialized(def.Plan, d.Context())
		if err != nil {
			t.Fatalf("%s: materialized eval: %v", name, err)
		}
		if ref.Len() == 0 {
			t.Fatalf("%s: empty reference result (workload too small?)", name)
		}
		for _, par := range []int{0, 4} {
			for _, fuse := range []bool{false, true} {
				plan := def.Plan
				if fuse {
					plan = algebra.PushDownScans(plan)
				}
				ctx := d.Context()
				ctx.Parallelism = par
				got, err := plan.Eval(ctx)
				if err != nil {
					t.Fatalf("%s (par=%d fuse=%v): pipeline eval: %v", name, par, fuse, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("%s (par=%d fuse=%v): pipeline != materialized\npipeline: %v\nmaterialized: %v",
						name, par, fuse, got, ref)
				}
			}
		}
	}
}

// TestExecAtMatchesMaterialized runs bare SELECTs over base tables through
// ExecAt (the svcd serving path: pin → plan → fuse → pipeline) and checks
// them against the materialized engine on the same pinned version.
func TestExecAtMatchesMaterialized(t *testing.T) {
	d := tpcdDB(t)
	queries := []string{
		`SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem WHERE l_quantity > 20`,
		`SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderdate < 100 AND o_orderpriority >= 3`,
		`SELECT l_orderkey, l_linenumber, l_extendedprice * (1 - l_discount) AS revenue FROM lineitem`,
		`SELECT o_orderpriority, COUNT(1) AS cnt, SUM(o_totalprice) AS total FROM orders GROUP BY o_orderpriority`,
		`SELECT l_returnflag, AVG(l_quantity) AS avgQty FROM lineitem JOIN orders ON l_orderkey = o_orderkey WHERE o_orderdate < 200 GROUP BY l_returnflag`,
	}
	pin := d.Pin()
	for _, sql := range queries {
		got, err := ExecAt(pin, sql)
		if err != nil {
			t.Fatalf("%s: exec: %v", sql, err)
		}
		plan, err := PlanSelect(VersionSchemas(pin), sql)
		if err != nil {
			t.Fatalf("%s: plan: %v", sql, err)
		}
		ref, err := algebra.EvalMaterialized(plan, pin.Context())
		if err != nil {
			t.Fatalf("%s: materialized eval: %v", sql, err)
		}
		if got.Len() == 0 {
			t.Fatalf("%s: empty result", sql)
		}
		if !got.Equal(ref) {
			t.Fatalf("%s: pipeline != materialized\npipeline: %v\nmaterialized: %v", sql, got, ref)
		}
	}
}

// TestExecAtLimit checks the capped drain: the retained prefix matches
// the uncapped result row for row, the total counts the whole stream,
// and limit <= 0 means no cap.
func TestExecAtLimit(t *testing.T) {
	d := tpcdDB(t)
	pin := d.Pin()
	const sql = `SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderdate < 200`
	full, err := ExecAt(pin, sql)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() < 10 {
		t.Fatalf("workload too small: %d rows", full.Len())
	}
	for _, limit := range []int{1, 7, full.Len(), full.Len() + 50} {
		capped, total, err := ExecAtLimit(pin, sql, limit)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if total != full.Len() {
			t.Fatalf("limit %d: total %d != %d", limit, total, full.Len())
		}
		want := limit
		if want > full.Len() {
			want = full.Len()
		}
		if capped.Len() != want {
			t.Fatalf("limit %d: retained %d rows, want %d", limit, capped.Len(), want)
		}
		for i, row := range capped.Rows() {
			if !row.Equal(full.Rows()[i]) {
				t.Fatalf("limit %d: row %d differs: %v != %v", limit, i, row, full.Rows()[i])
			}
		}
	}
	uncapped, total, err := ExecAtLimit(pin, sql, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != full.Len() || !uncapped.Equal(full) {
		t.Fatalf("limit 0 should be uncapped: total %d, equal %v", total, uncapped.Equal(full))
	}
}

// TestExecAtErrors pins the execution half's error paths.
func TestExecAtErrors(t *testing.T) {
	d := tpcdDB(t)
	pin := d.Pin()
	for _, tc := range []struct{ sql, want string }{
		{`CREATE VIEW x AS SELECT o_orderkey FROM orders`, "CREATE VIEW"},
		{`SELECT o_orderkey FROM nope`, "unknown table"},
		{`SELECT nosuchcol FROM orders`, ""}, // planner or binder error, wording varies
	} {
		if _, err := ExecAt(pin, tc.sql); err == nil {
			t.Errorf("%s: expected error", tc.sql)
		} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.sql, err, tc.want)
		}
	}
}

// TestJoinViewQuerySQLMatchesHandBuilt parses each Figure 5 query text
// against the SQL-planned join view and checks it is the same query as
// the hand-built tpcd.JoinViewQueries entry: same group-by, and the same
// exact answer on the materialized view (which exercises aggregate,
// attribute, and predicate equivalence at once).
func TestJoinViewQuerySQLMatchesHandBuilt(t *testing.T) {
	d := tpcdDB(t)
	def, err := PlanView(d, tpcd.JoinViewSQL)
	if err != nil {
		t.Fatal(err)
	}
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	hand := tpcd.JoinViewQueries()
	sqls := tpcd.JoinViewQuerySQL()
	if len(hand) != len(sqls) {
		t.Fatalf("%d hand-built queries vs %d SQL texts", len(hand), len(sqls))
	}
	for i, sql := range sqls {
		aq, err := PlanQuery(v, sql)
		if err != nil {
			t.Fatalf("%s (%s): %v", hand[i].Name, sql, err)
		}
		if len(aq.GroupBy) != len(hand[i].GroupBy) {
			t.Fatalf("%s: group-by %v != %v", hand[i].Name, aq.GroupBy, hand[i].GroupBy)
		}
		for j := range aq.GroupBy {
			if aq.GroupBy[j] != hand[i].GroupBy[j] {
				t.Fatalf("%s: group-by %v != %v", hand[i].Name, aq.GroupBy, hand[i].GroupBy)
			}
		}
		got, err := estimator.RunExact(v.Data(), aq.Query)
		if err != nil {
			t.Fatalf("%s: run parsed: %v", hand[i].Name, err)
		}
		want, err := estimator.RunExact(v.Data(), hand[i].Query)
		if err != nil {
			t.Fatalf("%s: run hand-built: %v", hand[i].Name, err)
		}
		if got != want {
			t.Fatalf("%s: parsed answer %v != hand-built %v", hand[i].Name, got, want)
		}
	}
}
