package conviva

import (
	"math/rand"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
	"github.com/sampleclean/svc/internal/view"
)

// LogTable is the denormalized user-activity log's table name.
const LogTable = "activity"

// LogSchema: one record per session event.
//
//	sessionId  primary key
//	userId     Zipf-popular user
//	resource   Zipf-popular resource (video/asset)
//	provider   the user's region/ISP group
//	errorType  0 = ok; 1..5 error classes
//	bytes      long-tailed transfer size
//	latencyMs  startup latency
//	day        arrival day (monotone over the stream)
func LogSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "userId", Type: relation.KindInt},
		{Name: "resource", Type: relation.KindInt},
		{Name: "provider", Type: relation.KindInt},
		{Name: "errorType", Type: relation.KindInt},
		{Name: "bytes", Type: relation.KindFloat},
		{Name: "latencyMs", Type: relation.KindFloat},
		{Name: "day", Type: relation.KindInt},
	}, "sessionId")
}

// Config scales the synthetic log.
type Config struct {
	// Records is the number of base log records.
	Records int
	// Users, Resources, Providers size the entity domains.
	Users     int
	Resources int
	Providers int
	// Days is the base stream's time span.
	Days int
	// Z is the popularity skew.
	Z float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig is a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Records: 20000, Users: 500, Resources: 200, Providers: 20, Days: 30, Z: 1.2, Seed: 1}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Records == 0 {
		c.Records = d.Records
	}
	if c.Users == 0 {
		c.Users = d.Users
	}
	if c.Resources == 0 {
		c.Resources = d.Resources
	}
	if c.Providers == 0 {
		c.Providers = d.Providers
	}
	if c.Days == 0 {
		c.Days = d.Days
	}
	if c.Z == 0 {
		c.Z = d.Z
	}
	return c
}

// Generator produces the base log and the appended update stream.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	userZ  *stats.Zipf
	resZ   *stats.Zipf
	nextID int64
	day    int64
}

// NewGenerator prepares a generator.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		userZ: stats.NewZipf(cfg.Users, cfg.Z),
		resZ:  stats.NewZipf(cfg.Resources, cfg.Z),
	}
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

func (g *Generator) record() relation.Row {
	id := g.nextID
	g.nextID++
	user := int64(g.userZ.Rank(g.rng))
	errType := int64(0)
	if g.rng.Float64() < 0.06 {
		errType = 1 + g.rng.Int63n(5)
	}
	bytes := 1e5 * (1 + g.rng.Float64())
	if g.rng.Float64() < 0.02 {
		bytes *= 50 + 100*g.rng.Float64() // long tail
	}
	return relation.Row{
		relation.Int(id),
		relation.Int(user),
		relation.Int(int64(g.resZ.Rank(g.rng))),
		relation.Int(user % int64(g.cfg.Providers)),
		relation.Int(errType),
		relation.Float(bytes),
		relation.Float(20 + g.rng.Float64()*500),
		relation.Int(g.day),
	}
}

// Generate creates the database and loads the base log (Records rows over
// Days days).
func (g *Generator) Generate() (*db.Database, error) {
	d := db.New()
	t, err := d.Create(LogTable, LogSchema())
	if err != nil {
		return nil, err
	}
	perDay := g.cfg.Records / g.cfg.Days
	if perDay == 0 {
		perDay = 1
	}
	for i := 0; i < g.cfg.Records; i++ {
		if i > 0 && i%perDay == 0 {
			g.day++
		}
		if err := t.Insert(g.record()); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// StageAppend stages frac·|base| new log records (the Conviva updates are
// pure appends, in arrival order).
func (g *Generator) StageAppend(d *db.Database, frac float64) error {
	t := d.Table(LogTable)
	n := int(frac * float64(t.Len()))
	g.day++
	perDay := g.cfg.Records / g.cfg.Days
	if perDay == 0 {
		perDay = 1
	}
	for i := 0; i < n; i++ {
		if i > 0 && i%perDay == 0 {
			g.day++
		}
		if err := t.StageInsert(g.record()); err != nil {
			return err
		}
	}
	return nil
}

// Views returns the eight summary-statistics view shapes of Appendix
// 12.6.2 over the synthetic log.
func Views() []view.Definition {
	scan := func() algebra.Node { return algebra.Scan(LogTable, LogSchema()) }
	var defs []view.Definition

	// V1: counts of error types grouped by resource and day.
	defs = append(defs, view.Definition{Name: "V1", Plan: algebra.MustGroupBy(
		algebra.MustSelect(scan(), expr.Gt(expr.Col("errorType"), expr.IntLit(0))),
		[]string{"resource", "errorType", "day"},
		algebra.CountAs("errors"),
	)})

	// V2: sum of bytes transferred grouped by resource and day.
	defs = append(defs, view.Definition{Name: "V2", Plan: algebra.MustGroupBy(
		scan(),
		[]string{"resource", "day"},
		algebra.CountAs("visits"),
		algebra.SumAs(expr.Col("bytes"), "totalBytes"),
	)})

	// V3: visit counts grouped by an *expression* of resource tags (a
	// transformation, not a pass-through — the push-down blocker noted
	// for such views).
	tagged := algebra.MustProjectKeyed(scan(),
		[]algebra.Output{
			algebra.OutCol("sessionId"),
			algebra.Out("tagGroup", expr.Func("mod", expr.Col("resource"), expr.IntLit(16))),
			algebra.OutCol("userId"),
			algebra.OutCol("day"),
			algebra.OutCol("bytes"),
		}, "sessionId")
	defs = append(defs, view.Definition{Name: "V3", Plan: algebra.MustGroupBy(
		tagged,
		[]string{"tagGroup", "day"},
		algebra.CountAs("visits"),
	)})

	// V4: nested — group users by provider region, then aggregate
	// per-user visit statistics (nested aggregate ⇒ recompute
	// maintenance, as in the paper's discussion of such views).
	perUser4 := algebra.MustGroupBy(scan(),
		[]string{"userId", "provider"},
		algebra.CountAs("userVisits"),
		algebra.SumAs(expr.Col("bytes"), "userBytes"),
	)
	defs = append(defs, view.Definition{Name: "V4", Plan: algebra.MustGroupBy(
		perUser4,
		[]string{"provider"},
		algebra.CountAs("users"),
		algebra.SumAs(expr.Col("userVisits"), "visits"),
		algebra.SumAs(expr.Col("userBytes"), "bytes"),
	)})

	// V5: nested — per-provider error statistics.
	perUser5 := algebra.MustGroupBy(
		algebra.MustSelect(scan(), expr.Gt(expr.Col("errorType"), expr.IntLit(0))),
		[]string{"userId", "provider"},
		algebra.CountAs("userErrors"),
	)
	defs = append(defs, view.Definition{Name: "V5", Plan: algebra.MustGroupBy(
		perUser5,
		[]string{"provider"},
		algebra.CountAs("usersWithErrors"),
		algebra.SumAs(expr.Col("userErrors"), "errors"),
	)})

	// V6: union of two resource subsets, aggregating visits and bytes.
	lowRes := algebra.MustSelect(scan(), expr.Lt(expr.Col("resource"), expr.IntLit(40)))
	hotRes := algebra.MustSelect(scan(), expr.And(
		expr.Ge(expr.Col("resource"), expr.IntLit(60)),
		expr.Lt(expr.Col("resource"), expr.IntLit(120))))
	defs = append(defs, view.Definition{Name: "V6", Plan: algebra.MustGroupBy(
		algebra.MustUnion(lowRes, hotRes),
		[]string{"resource", "day"},
		algebra.CountAs("visits"),
		algebra.SumAs(expr.Col("bytes"), "totalBytes"),
	)})

	// V7: network statistics by resource and day, many aggregates.
	defs = append(defs, view.Definition{Name: "V7", Plan: algebra.MustGroupBy(
		scan(),
		[]string{"resource", "day"},
		algebra.CountAs("sessions"),
		algebra.SumAs(expr.Col("bytes"), "totalBytes"),
		algebra.SumAs(expr.Col("latencyMs"), "totalLatency"),
	)})

	// V8: visit statistics by user and day, many aggregates.
	defs = append(defs, view.Definition{Name: "V8", Plan: algebra.MustGroupBy(
		scan(),
		[]string{"userId", "day"},
		algebra.CountAs("visits"),
		algebra.SumAs(expr.Col("bytes"), "totalBytes"),
		algebra.SumAs(expr.Col("latencyMs"), "totalLatency"),
	)})

	return defs
}

// GeneratedQuery is a random query over a Conviva view: a time-range or
// user/resource-subset aggregate, matching the paper's query workload
// ("random time ranges or random subsets of customers").
type GeneratedQuery struct {
	Desc  string
	Query estimator.Query
}

// GenerateQueries builds n random queries for the named view.
func GenerateQueries(rng *rand.Rand, viewName string, cfg Config, n int) []GeneratedQuery {
	cfg = cfg.withDefaults()
	type space struct {
		timeCol string
		entCol  string
		entMax  int64
		aggs    []string
	}
	spaces := map[string]space{
		"V1": {timeCol: "day", entCol: "resource", entMax: int64(cfg.Resources), aggs: []string{"errors"}},
		"V2": {timeCol: "day", entCol: "resource", entMax: int64(cfg.Resources), aggs: []string{"totalBytes", "visits"}},
		"V3": {timeCol: "day", entCol: "tagGroup", entMax: 16, aggs: []string{"visits"}},
		"V4": {entCol: "provider", entMax: int64(cfg.Providers), aggs: []string{"visits", "bytes", "users"}},
		"V5": {entCol: "provider", entMax: int64(cfg.Providers), aggs: []string{"errors", "usersWithErrors"}},
		"V6": {entCol: "resource", entMax: int64(cfg.Resources), aggs: []string{"visits", "totalBytes"}},
		"V7": {timeCol: "day", entCol: "resource", entMax: int64(cfg.Resources), aggs: []string{"sessions", "totalBytes", "totalLatency"}},
		"V8": {timeCol: "day", entCol: "userId", entMax: int64(cfg.Users), aggs: []string{"visits", "totalBytes", "totalLatency"}},
	}
	sp, ok := spaces[viewName]
	if !ok {
		return nil
	}
	out := make([]GeneratedQuery, 0, n)
	for i := 0; i < n; i++ {
		var pred expr.Expr
		var desc string
		if sp.timeCol != "" && rng.Intn(2) == 0 {
			lo := rng.Int63n(int64(cfg.Days))
			hi := lo + 1 + rng.Int63n(int64(cfg.Days))
			pred = expr.And(
				expr.Ge(expr.Col(sp.timeCol), expr.IntLit(lo)),
				expr.Le(expr.Col(sp.timeCol), expr.IntLit(hi)))
			desc = "time range"
		} else {
			lo := rng.Int63n(sp.entMax)
			hi := lo + 1 + rng.Int63n(sp.entMax-lo)
			pred = expr.And(
				expr.Ge(expr.Col(sp.entCol), expr.IntLit(lo)),
				expr.Le(expr.Col(sp.entCol), expr.IntLit(hi)))
			desc = "entity subset"
		}
		agg := sp.aggs[rng.Intn(len(sp.aggs))]
		var q estimator.Query
		switch rng.Intn(3) {
		case 0:
			q = estimator.Sum(agg, pred)
		case 1:
			q = estimator.Avg(agg, pred)
		default:
			q = estimator.Count(pred)
		}
		out = append(out, GeneratedQuery{Desc: desc, Query: q})
	}
	return out
}
