// Command svcbench regenerates the tables and figures of the SVC paper's
// evaluation (Section 7) on the synthetic substrate, plus the ablations in
// DESIGN.md.
//
// Usage:
//
//	svcbench -list                          # or: svcbench -run list
//	svcbench -run fig4a,fig5
//	svcbench -run all -scale 1.0
//	svcbench -run fig9b -csv
//	svcbench -run fig4a-par -scale 2 -parallel 4
//	svcbench -run pipeline -json            # machine-readable, to BENCH_pipeline.json
//	svcbench -run pipeline -columnar=off    # row-at-a-time A/B baseline
//	svcbench -run matrix                    # adversarial workload grid → WORKLOADS.md + BENCH_matrix.json
//
// The pipeline experiment always records both columnar=on and
// columnar=off rows (the row-vs-columnar A/B); -columnar sets the mode
// every OTHER experiment's database runs with.
//
// Absolute numbers are machine- and substrate-dependent; the shapes (who
// wins, by what factor, where crossovers fall) are what reproduce the
// paper. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/sampleclean/svc/internal/bench"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs, or \"all\"")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = default size)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list     = flag.Bool("list", false, "list available experiments")
		parallel = flag.Int("parallel", 0, "intra-operator workers for experiment databases (0 = serial)")
		columnar = flag.String("columnar", "on", "columnar batch path for experiment databases: on|off (the pipeline experiment A/Bs both regardless)")
		jsonOut  = flag.Bool("json", false, "also write machine-readable results (ns/op, allocs/op, rows) to -json-file")
		jsonFile = flag.String("json-file", "BENCH_pipeline.json", "path the -json report is written to")
	)
	flag.Parse()
	bench.SetDefaultParallelism(*parallel)
	switch *columnar {
	case "on":
		bench.SetDefaultColumnar(true)
	case "off":
		bench.SetDefaultColumnar(false)
	default:
		fmt.Fprintf(os.Stderr, "-columnar must be on or off, got %q\n", *columnar)
		os.Exit(2)
	}

	if *list || *run == "" || *run == "list" {
		printExperiments(os.Stdout)
		if *run == "" {
			fmt.Println("\nrun with: svcbench -run <id>[,<id>...] [-scale 1.0] [-csv]")
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = bench.List()
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	// Reject unknown IDs up front — a typo should fail loudly with the
	// menu, not run half the list and bury one error line in the output.
	unknown := false
	for _, id := range ids {
		if !bench.Known(id) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			unknown = true
		}
	}
	if unknown {
		printExperiments(os.Stderr)
		os.Exit(2)
	}

	report := &bench.JSONReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       *scale,
		Parallel:    *parallel,
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		table, err := bench.Run(id, bench.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		report.Experiments = append(report.Experiments, bench.JSONResultOf(table, time.Since(start)))
		if *csv {
			fmt.Printf("# %s\n%s\n", table.Title, table.CSV())
		} else {
			fmt.Println(table.Render())
			fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if *jsonOut {
		if err := bench.WriteJSON(*jsonFile, report); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonFile, err)
			failed++
		} else {
			fmt.Printf("wrote %s\n", *jsonFile)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func printExperiments(w io.Writer) {
	fmt.Fprintln(w, "available experiments:")
	for _, id := range bench.List() {
		fmt.Fprintf(w, "  %-16s %s\n", id, bench.Describe(id))
	}
}
