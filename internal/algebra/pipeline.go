// Batched pull-based execution pipeline.
//
// Every Node can be evaluated two ways:
//
//   - Node.Eval — the compatibility shim: it drains the pipeline below the
//     node into a materialized relation. Callers that need a *relation.
//     Relation (the db/view/clean layers, tests) keep working unchanged.
//   - NewIterator — the pipeline proper: Open(ctx) / Next() / Close()
//     pulling fixed-capacity relation.Batch chunks. Scan, Select, Project,
//     Alias, and HashFilter fuse into a single pass over the source rows
//     with zero intermediate relations; Join, Aggregate, and the keyed set
//     operators are pipeline breakers that consume and emit batches.
//
// Batch ownership follows relation.Batch's protocol: the consumer that
// pulled a batch owns it; transient consumers Release it back to the pool,
// consumers that retain row headers call ReleaseUnlessOwned (and breakers
// that must hand rows downstream while retaining them Pin the batch).
//
// Morsel-style parallelism: when a fused chain is drained (at the root or
// at a pipeline breaker's input) and the context allows parallelism, the
// source rows are split into contiguous morsels, one chain instance runs
// per worker, and the outputs are concatenated in order — byte-identical
// to the serial pipeline.

package algebra

import (
	"fmt"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// Iterator is the pull-based batched execution interface. Open binds the
// iterator to an evaluation context (and, for pipeline breakers, runs the
// blocking phase); Next returns the next batch of rows or nil at end of
// stream; Close releases iterator resources. The batch returned by Next is
// owned by the caller (see relation.Batch).
type Iterator interface {
	Open(ctx *Context) error
	Next() (*relation.Batch, error)
	Close()
}

// NewIterator returns an unopened iterator over n's output. The caller
// must Open it before Next and Close it when done.
func NewIterator(n Node) Iterator { return iterNode(n) }

func iterNode(n Node) Iterator {
	switch t := n.(type) {
	case *ScanNode:
		return &scanIter{node: t, lo: 0, hi: -1}
	case *SelectNode:
		return &selectIter{node: t, child: iterNode(t.child)}
	case *ProjectNode:
		return &projectIter{node: t, child: iterNode(t.child)}
	case *AliasNode:
		return &aliasIter{child: iterNode(t.child)}
	case *HashFilterNode:
		return &hashFilterIter{node: t, child: iterNode(t.child)}
	case *JoinNode:
		return &joinIter{node: t}
	case *AggregateNode:
		return &aggIter{node: t}
	case *SetOpNode:
		return &setOpIter{node: t}
	case *CachedNode:
		return &cachedIter{node: t}
	default:
		// Unknown operators evaluate the old way and emit the result.
		return &evalIter{node: n}
	}
}

// iterRange builds the iterator for a fused streaming chain whose bottom
// scan is restricted to source rows [lo, hi) — one morsel of a parallel
// chain drain. Only chain node types may appear (see chainScan).
func iterRange(n Node, lo, hi int) Iterator {
	switch t := n.(type) {
	case *ScanNode:
		return &scanIter{node: t, lo: lo, hi: hi}
	case *SelectNode:
		return &selectIter{node: t, child: iterRange(t.child, lo, hi)}
	case *ProjectNode:
		return &projectIter{node: t, child: iterRange(t.child, lo, hi)}
	case *AliasNode:
		return &aliasIter{child: iterRange(t.child, lo, hi)}
	case *HashFilterNode:
		return &hashFilterIter{node: t, child: iterRange(t.child, lo, hi)}
	default:
		panic("algebra: iterRange on non-chain operator " + n.String())
	}
}

// chainScan returns the scan at the bottom of a fused streaming chain —
// a path of Select/Project/Alias/HashFilter operators over one Scan — or
// nil when n is not such a chain.
func chainScan(n Node) *ScanNode {
	for {
		switch t := n.(type) {
		case *ScanNode:
			return t
		case *SelectNode:
			n = t.child
		case *ProjectNode:
			n = t.child
		case *AliasNode:
			n = t.child
		case *HashFilterNode:
			n = t.child
		default:
			return nil
		}
	}
}

// evalPipelined is the Node.Eval compatibility shim: drain the pipeline
// below n into a materialized relation with the node's schema (upserting
// when keyed, like every materialization point before the pipeline).
func evalPipelined(ctx *Context, n Node) (*relation.Relation, error) {
	if s, ok := n.(*ScanNode); ok && s.plain() {
		// Bare plain scans keep their passthrough semantics: the bound
		// relation (including its indexes) is shared, not copied.
		return s.evalMat(ctx)
	}
	rows, err := drainRows(ctx, n)
	if err != nil {
		return nil, err
	}
	// Asserted (ProjectKeyed) key uniqueness is enforced inside
	// projectIter as rows stream, so no re-check is needed here.
	return output(ctx, n.Schema(), rows)
}

// drainRows pulls every row out of the pipeline below n. Plain scans share
// the bound relation's row slice (callers treat drained rows as read-only);
// breakers hand their precomputed output over directly; fused chains drain
// in parallel morsels when the context allows it.
func drainRows(ctx *Context, n Node) ([]relation.Row, error) {
	switch t := n.(type) {
	case *ScanNode:
		if t.plain() {
			rel, err := t.evalMat(ctx)
			if err != nil {
				return nil, err
			}
			return rel.Rows(), nil
		}
	case *JoinNode:
		return t.run(ctx, resolvePipelined)
	case *AggregateNode:
		return t.aggDrain(ctx)
	}
	if rows, ok, err := drainChainParallel(ctx, n); ok || err != nil {
		return rows, err
	}
	it := iterNode(n)
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	defer it.Close()
	var rows []relation.Row
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		if b.Columnar() {
			// Materialize once into a per-batch slab and recycle the
			// batch so its vectors return to the pool.
			rows = b.CopyRows(rows)
			b.Release()
		} else {
			rows = append(rows, b.Rows()...)
			b.ReleaseUnlessOwned()
		}
	}
}

// drainChainParallel drains a fused streaming chain with morsel-style
// parallelism: the source relation's rows are split into contiguous
// chunks, one chain instance runs per worker against a shadow context, and
// outputs are concatenated in order. Returns ok == false when n is not a
// parallelizable chain (callers fall back to the serial drain).
func drainChainParallel(ctx *Context, n Node) ([]relation.Row, bool, error) {
	if s, ok := n.(*ScanNode); ok && s.plain() {
		return nil, false, nil // a bare plain scan has nothing to fuse
	}
	scan := chainScan(n)
	if scan == nil {
		return nil, false, nil
	}
	// Chains whose correctness depends on whole-stream state stay serial:
	// an explicit keyed projection checks key uniqueness across ALL rows,
	// and a plain scan with a rebuilt (Compatible-but-not-Equal) schema
	// materializes once rather than per worker.
	for c := n; c != scan; c = c.Children()[0] {
		if p, ok := c.(*ProjectNode); ok && p.explicit && p.schema.HasKey() {
			return nil, false, nil
		}
	}
	rel, err := ctx.Relation(scan.name)
	if err != nil || !rel.Schema().Compatible(scan.schema) {
		return nil, false, nil // let the serial path surface the error
	}
	if scan.needsRebuild(rel) {
		return nil, false, nil
	}
	w := ctx.workers(rel.Len())
	if w <= 1 {
		return nil, false, nil
	}
	outs := make([][]relation.Row, w)
	errs := make([]error, w)
	touched := make([]int64, w)
	runWorkers(w, func(p int) {
		lo, hi := chunkRange(p, w, rel.Len())
		wctx := ctx.workerCtx()
		it := iterRange(n, lo, hi)
		if err := it.Open(wctx); err != nil {
			errs[p] = err
			return
		}
		defer it.Close()
		var rows []relation.Row
		for {
			b, err := it.Next()
			if err != nil {
				errs[p] = err
				return
			}
			if b == nil {
				break
			}
			if b.Columnar() {
				rows = b.CopyRows(rows)
				b.Release()
			} else {
				rows = append(rows, b.Rows()...)
				b.ReleaseUnlessOwned()
			}
		}
		outs[p] = rows
		touched[p] = wctx.RowsTouched
	})
	for _, err := range errs {
		if err != nil {
			return nil, true, err
		}
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	rows := make([]relation.Row, 0, total)
	for _, o := range outs {
		rows = append(rows, o...)
	}
	for _, tch := range touched {
		ctx.RowsTouched += tch
	}
	return rows, true, nil
}

// resolvePipelined materializes a pipeline breaker's input: plain scans
// pass the bound relation through (sharing its indexes, exactly like the
// pre-pipeline child evaluation); everything else drains its pipeline and
// materializes once at the breaker boundary.
func resolvePipelined(n Node, ctx *Context) (*relation.Relation, error) {
	if s, ok := n.(*ScanNode); ok && s.plain() {
		return s.evalMat(ctx)
	}
	rows, err := drainRows(ctx, n)
	if err != nil {
		return nil, err
	}
	return output(ctx, n.Schema(), rows)
}

// EvalMaterialized evaluates n the pre-pipeline way: every operator fully
// materializes its output relation before its parent starts. It is the
// executable specification the pipeline property tests compare Node.Eval
// against; production paths use Node.Eval (the pipeline shim).
func EvalMaterialized(n Node, ctx *Context) (*relation.Relation, error) {
	switch t := n.(type) {
	case *ScanNode:
		return t.evalMat(ctx)
	case *SelectNode:
		return t.evalMat(ctx)
	case *ProjectNode:
		return t.evalMat(ctx)
	case *AliasNode:
		return t.evalMat(ctx)
	case *HashFilterNode:
		return t.evalMat(ctx)
	case *JoinNode:
		return t.evalMat(ctx)
	case *AggregateNode:
		return t.evalMat(ctx)
	case *SetOpNode:
		return t.evalMat(ctx)
	default:
		return n.Eval(ctx)
	}
}

// ------------------------------------------------------- streaming operators

// scanIter emits the bound relation's rows as batches. Plain scans emit
// row headers (no copies). A fused predicate/projection normally runs
// column-at-a-time: each morsel's predicate columns are gathered into
// scratch vectors, the predicate evaluates vectorized into a selection
// vector, and only the surviving rows' output columns are gathered into
// a dense columnar batch. With ctx.NoColumnar (or a predicate the
// vectorizer cannot handle) the row-at-a-time filter/prune pass runs
// instead; both paths produce the identical stream. lo/hi restrict the
// scan to one morsel ([0, -1) means all rows).
type scanIter struct {
	node   *ScanNode
	lo, hi int
	ctx    *Context
	rel    *relation.Relation
	pos    int
	end    int

	// Columnar fused-scan state (columnar == true). Selection buffers
	// are owned by the batches (Batch.SelIdentity), not the iterator.
	columnar bool
	outIdx   []int              // declared-schema column indexes emitted
	predSrc  *expr.GatherSource // predicate columns gathered per morsel
}

func (s *scanIter) Open(ctx *Context) error {
	rel, err := s.node.resolve(ctx)
	if err != nil {
		return err
	}
	if s.node.needsRebuild(rel) {
		// The declared key deliberately differs from the stored one
		// (Compatible schemas differ only in keys): rebuild under the
		// declared schema exactly like the materialized evaluation,
		// surfacing duplicate-key errors, then stream (and filter/prune)
		// the rebuilt rows. A keyless declaration needs no rebuild — the
		// row stream is identical and nothing can fail.
		// drainChainParallel keeps rebuilding scans serial so the
		// rebuild happens once.
		rel, err = s.node.rebuildDeclared(ctx, rel)
		if err != nil {
			return err
		}
	}
	s.ctx, s.rel = ctx, rel
	s.pos = s.lo
	s.end = rel.Len()
	if s.hi >= 0 && s.hi < s.end {
		s.end = s.hi
	}
	s.columnar = !s.node.plain() && !ctx.NoColumnar &&
		(s.node.bound == nil || expr.CanVec(s.node.bound))
	if s.columnar {
		s.outIdx = s.node.cols
		if s.outIdx == nil {
			s.outIdx = identCols(s.node.schema.NumCols())
		}
		if s.node.bound != nil {
			s.predSrc = expr.NewGatherSource(s.node.schema, s.node.bound)
		}
	}
	return nil
}

func (s *scanIter) Next() (*relation.Batch, error) {
	if s.pos >= s.end {
		return nil, nil
	}
	b := relation.GetBatch()
	rows := s.rel.Rows()
	n := s.node
	if n.plain() {
		hi := s.pos + relation.BatchCap
		if hi > s.end {
			hi = s.end
		}
		b.AppendRows(rows[s.pos:hi])
		s.pos = hi
		return b, nil
	}
	if s.columnar {
		for s.pos < s.end {
			base := s.pos
			m := s.end - base
			if m > relation.BatchCap {
				m = relation.BatchCap
			}
			s.pos += m
			s.ctx.RowsTouched += int64(m)
			sel := b.SelIdentity(m)
			if n.bound != nil {
				s.predSrc.Gather(rows, base, base+m)
				sel = expr.FilterVec(n.bound, s.predSrc, sel)
				if len(sel) == 0 {
					continue
				}
			}
			// Gather only the surviving rows' output columns: the batch
			// leaves the scan dense, and downstream filters shrink its
			// selection vector from there.
			b.BeginColumnar(len(s.outIdx))
			for j, c := range s.outIdx {
				vec := b.Vec(j)
				for _, k := range sel {
					vec.AppendValue(rows[base+int(k)][c])
				}
			}
			return b, nil
		}
		b.Release()
		return nil, nil
	}
	for s.pos < s.end {
		var scanned int64
		for s.pos < s.end && !b.Full() {
			row := rows[s.pos]
			s.pos++
			scanned++
			if n.bound != nil && !n.bound.Eval(row).AsBool() {
				continue
			}
			if n.cols == nil {
				b.Append(row)
			} else {
				out := b.Alloc(len(n.cols))
				for i, c := range n.cols {
					out[i] = row[c]
				}
			}
		}
		s.ctx.RowsTouched += scanned
		if b.Len() > 0 {
			return b, nil
		}
	}
	b.Release()
	return nil, nil
}

func (s *scanIter) Close() {
	if s.predSrc != nil {
		s.predSrc.Release()
		s.predSrc = nil
	}
}

// identCols returns [0, n) as column indexes.
func identCols(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// selectIter filters batches. A columnar batch keeps every cell in place
// — the predicate evaluates vectorized and the selection vector shrinks.
// A row batch is compacted in place: surviving rows move to the front.
type selectIter struct {
	node  *SelectNode
	child Iterator
	ctx   *Context
	vec   bool
}

func (s *selectIter) Open(ctx *Context) error {
	s.ctx = ctx
	s.vec = !ctx.NoColumnar && expr.CanVec(s.node.bound)
	return s.child.Open(ctx)
}

func (s *selectIter) Next() (*relation.Batch, error) {
	for {
		b, err := s.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		s.ctx.RowsTouched += int64(b.Len())
		if s.vec && b.Columnar() {
			b.SetSel(expr.FilterVec(s.node.bound, b, b.EnsureSel()))
			if b.Len() > 0 {
				return b, nil
			}
			b.Release()
			continue
		}
		rows := b.Rows()
		kept := 0
		for _, row := range rows {
			if s.node.bound.Eval(row).AsBool() {
				rows[kept] = row
				kept++
			}
		}
		b.Truncate(kept)
		if kept > 0 {
			return b, nil
		}
		b.Release()
	}
}

func (s *selectIter) Close() { s.child.Close() }

// projectIter computes output rows into a fresh arena-backed batch and
// recycles the input batch (only scalar values are copied out of it).
//
// For an explicit keyed projection (ProjectKeyed) the asserted key's
// uniqueness is enforced as rows stream, preserving the materialized
// engine's error on a collapsing assertion. The check retains emitted row
// headers, so those output batches are pinned (GC-reclaimed, not pooled).
type projectIter struct {
	node  *ProjectNode
	child Iterator
	ctx   *Context
	vec   bool // vectorize columnar input batches
	// uniq/uniqRows implement the asserted-key check (nil when unneeded).
	uniq     *hashIdx
	uniqRows []relation.Row
	keyIdx   []int
}

func (p *projectIter) Open(ctx *Context) error {
	p.ctx = ctx
	if p.node.explicit && p.node.schema.HasKey() {
		p.uniq = newHashIdx(64, nil)
		p.keyIdx = p.node.schema.Key()
	}
	p.vec = !ctx.NoColumnar && p.uniq == nil
	if p.vec {
		for _, e := range p.node.bound {
			if !expr.CanVec(e) {
				p.vec = false
				break
			}
		}
	}
	return p.child.Open(ctx)
}

func (p *projectIter) Next() (*relation.Batch, error) {
	for {
		in, err := p.child.Next()
		if err != nil || in == nil {
			return nil, err
		}
		p.ctx.RowsTouched += int64(in.Len())
		if p.vec && in.Columnar() {
			// Column-at-a-time projection: every output expression
			// evaluates vectorized over the input's selected rows into a
			// dense output vector; no row is ever formed.
			out := relation.GetBatch()
			out.BeginColumnar(len(p.node.bound))
			for i, e := range p.node.bound {
				expr.EvalVec(e, in, in.Sel(), out.Vec(i))
			}
			in.Release()
			if out.Len() > 0 {
				return out, nil
			}
			out.Release()
			continue
		}
		out := relation.GetBatch()
		width := len(p.node.bound)
		for _, row := range in.Rows() {
			dst := out.Alloc(width)
			for i, e := range p.node.bound {
				dst[i] = e.Eval(row)
			}
		}
		in.Release()
		if p.uniq != nil && out.Len() > 0 {
			var probe relation.Row
			sameKey := func(head int32) bool {
				return p.uniqRows[head].KeyEqualCols(p.keyIdx, probe, p.keyIdx)
			}
			for _, row := range out.Rows() {
				probe = row
				h := keyHash(row, p.keyIdx)
				if p.uniq.first(h, sameKey) >= 0 {
					// No Release: earlier rows of this batch are already
					// retained in uniqRows; let the GC reclaim both.
					return nil, fmt.Errorf("algebra: project: asserted key %v is not unique (row %v collides)",
						p.node.schema.KeyNames(), row)
				}
				p.uniq.addGrow(h, int32(len(p.uniqRows)), sameKey)
				p.uniqRows = append(p.uniqRows, row)
			}
			out.Pin()
		}
		if out.Len() > 0 {
			return out, nil
		}
		out.Release()
	}
}

func (p *projectIter) Close() { p.child.Close() }

// aliasIter renames columns — a schema-only change, so batches pass
// through untouched.
type aliasIter struct {
	child Iterator
	ctx   *Context
}

func (a *aliasIter) Open(ctx *Context) error { a.ctx = ctx; return a.child.Open(ctx) }

func (a *aliasIter) Next() (*relation.Batch, error) {
	b, err := a.child.Next()
	if b != nil {
		a.ctx.RowsTouched += int64(b.Len())
	}
	return b, err
}

func (a *aliasIter) Close() { a.child.Close() }

// hashFilterIter applies η in place, like selectIter, encoding each key
// into a reused buffer (no per-row allocation). Columnar batches encode
// keys straight from the column vectors (byte-identical to the row
// encoding) and shrink the selection vector.
type hashFilterIter struct {
	node  *HashFilterNode
	child Iterator
	ctx   *Context
	kb    relation.KeyBuf
	buf   []byte
}

func (h *hashFilterIter) Open(ctx *Context) error { h.ctx = ctx; return h.child.Open(ctx) }

func (h *hashFilterIter) Next() (*relation.Batch, error) {
	for {
		b, err := h.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		h.ctx.RowsTouched += int64(b.Len())
		if b.Columnar() {
			sel := b.EnsureSel()
			kept := sel[:0]
			for _, i := range sel {
				h.buf = b.EncodeColsAt(int(i), h.node.idx, h.buf[:0])
				if h.node.hasher.Unit(h.buf) < h.node.ratio {
					kept = append(kept, i)
				}
			}
			b.SetSel(kept)
			if b.Len() > 0 {
				return b, nil
			}
			b.Release()
			continue
		}
		rows := b.Rows()
		kept := 0
		for _, row := range rows {
			if h.node.hasher.Unit(h.kb.Row(row, h.node.idx)) < h.node.ratio {
				rows[kept] = row
				kept++
			}
		}
		b.Truncate(kept)
		if kept > 0 {
			return b, nil
		}
		b.Release()
	}
}

func (h *hashFilterIter) Close() { h.child.Close() }

// -------------------------------------------------------- pipeline breakers

// rowsIter emits a precomputed row slice as batches of row headers.
type rowsIter struct {
	rows []relation.Row
	pos  int
}

func (r *rowsIter) next() (*relation.Batch, error) {
	if r.pos >= len(r.rows) {
		return nil, nil
	}
	b := relation.GetBatch()
	hi := r.pos + relation.BatchCap
	if hi > len(r.rows) {
		hi = len(r.rows)
	}
	b.AppendRows(r.rows[r.pos:hi])
	r.pos = hi
	return b, nil
}

// joinIter runs the join (build and probe) at Open and emits the output
// as batches. Equality joins without a residual predicate run the
// columnar path (vecjoin.go): keyless derived inputs drain into ColSets,
// the build/probe work straight off column vectors, and the output is
// emitted as columnar batches gathered column-at-a-time — no output Row
// is allocated. Cross joins, residual-predicate joins, and NoColumnar
// contexts run the row path. Children are materialized at this breaker
// boundary either way: plain scans share the bound relation (keeping
// index probes working), keyed derived inputs materialize through
// resolvePipelined.
type joinIter struct {
	node     *JoinNode
	out      rowsIter
	columnar bool
	batches  []*relation.Batch
	pos      int
}

func (j *joinIter) Open(ctx *Context) error {
	if j.node.columnarJoinOK(ctx) {
		batches, err := j.node.runColumnar(ctx)
		if err != nil {
			return err
		}
		j.columnar = true
		j.batches = batches
		return nil
	}
	rows, err := j.node.run(ctx, resolvePipelined)
	if err != nil {
		return err
	}
	j.out = rowsIter{rows: rows}
	return nil
}

func (j *joinIter) Next() (*relation.Batch, error) {
	if j.columnar {
		if j.pos >= len(j.batches) {
			return nil, nil
		}
		b := j.batches[j.pos]
		j.batches[j.pos] = nil
		j.pos++
		return b, nil
	}
	return j.out.next()
}

func (j *joinIter) Close() {
	for _, b := range j.batches[j.pos:] {
		if b != nil {
			b.Release()
		}
	}
	j.batches = nil
}

// aggIter drains its input (as bare rows — aggregation needs no index) at
// Open, folds it with the partitioned aggregation core, and emits the
// result groups as batches.
type aggIter struct {
	node *AggregateNode
	out  rowsIter
}

func (a *aggIter) Open(ctx *Context) error {
	rows, err := a.node.aggDrain(ctx)
	if err != nil {
		return err
	}
	a.out = rowsIter{rows: rows}
	return nil
}

func (a *aggIter) Next() (*relation.Batch, error) { return a.out.next() }
func (a *aggIter) Close()                         {}

// evalIter wraps an unknown operator: evaluate it the materialized way and
// emit its rows.
type evalIter struct {
	node Node
	out  rowsIter
}

func (e *evalIter) Open(ctx *Context) error {
	rel, err := e.node.Eval(ctx)
	if err != nil {
		return err
	}
	e.out = rowsIter{rows: rel.Rows()}
	return nil
}

func (e *evalIter) Next() (*relation.Batch, error) { return e.out.next() }
func (e *evalIter) Close()                         {}
