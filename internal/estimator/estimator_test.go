package estimator

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
	"github.com/sampleclean/svc/internal/view"
)

// ---------------------------------------------------------------- fixture

func logSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
		{Name: "bytes", Type: relation.KindFloat},
	}, "sessionId")
}

func videoSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "videoId", Type: relation.KindInt},
		{Name: "ownerId", Type: relation.KindInt},
	}, "videoId")
}

func viewDef() view.Definition {
	j := algebra.MustJoin(
		algebra.Scan("Log", logSchema()),
		algebra.Scan("Video", videoSchema()),
		algebra.JoinSpec{Type: algebra.Inner, On: algebra.On("videoId", "videoId"), Merge: true},
	)
	g := algebra.MustGroupBy(j, []string{"videoId", "ownerId"},
		algebra.CountAs("visitCount"),
		algebra.SumAs(expr.Col("bytes"), "totalBytes"),
	)
	return view.Definition{Name: "trafficView", Plan: g}
}

// scenario is a ready-made stale-view setup with samples and ground truth.
type scenario struct {
	d       *db.Database
	v       *view.View
	samples *clean.Samples
	truth   *relation.Relation // S′
}

// buildScenario: `videos` videos, `visits` base log records, `updates`
// staged new log records (some to new videos, a few deletions), with a
// tail exponent controlling bytes skew (0 = light tail).
func buildScenario(t testing.TB, seed int64, videos, visits, updates int, ratio, tail float64) *scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := db.New()
	vt := d.MustCreate("Video", videoSchema())
	for i := 0; i < videos; i++ {
		vt.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(rng.Int63n(8))})
	}
	lt := d.MustCreate("Log", logSchema())
	bytesFor := func() float64 {
		b := 100 + rng.Float64()*50
		if tail > 0 && rng.Float64() < 0.02 {
			b *= 1 + tail*rng.Float64()*100 // long tail
		}
		return b
	}
	for i := 0; i < visits; i++ {
		lt.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(rng.Int63n(int64(videos))), relation.Float(bytesFor())})
	}
	v, err := view.Materialize(d, viewDef())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	nextVideo := int64(videos)
	for i := 0; i < updates; i++ {
		switch rng.Intn(12) {
		case 0:
			vt.StageInsert(relation.Row{relation.Int(nextVideo), relation.Int(rng.Int63n(8))})
			lt.StageInsert(relation.Row{relation.Int(int64(visits + i)), relation.Int(nextVideo), relation.Float(bytesFor())})
			nextVideo++
		case 1:
			_ = lt.StageDelete(relation.Int(rng.Int63n(int64(visits))))
		default:
			lt.StageInsert(relation.Row{relation.Int(int64(visits + i)), relation.Int(rng.Int63n(int64(videos))), relation.Float(bytesFor())})
		}
	}
	c, err := clean.New(m, ratio, nil)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := c.Clean(d)
	if err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	fresh, err := view.Materialize(snap, viewDef())
	if err != nil {
		t.Fatal(err)
	}
	return &scenario{d: d, v: v, samples: samples, truth: fresh.Data()}
}

// ---------------------------------------------------------------- RunExact

func TestRunExactAggregates(t *testing.T) {
	rel := relation.New(relation.NewSchema([]relation.Column{
		{Name: "k", Type: relation.KindInt},
		{Name: "x", Type: relation.KindFloat},
	}, "k"))
	for i, x := range []float64{1, 2, 3, 4, 100} {
		rel.MustInsert(relation.Row{relation.Int(int64(i)), relation.Float(x)})
	}
	cases := []struct {
		q    Query
		want float64
	}{
		{Count(nil), 5},
		{Sum("x", nil), 110},
		{Avg("x", nil), 22},
		{Median("x", nil), 3},
		{Min("x", nil), 1},
		{Max("x", nil), 100},
		{Percentile("x", 1.0, nil), 100},
		{Count(expr.Gt(expr.Col("x"), expr.FloatLit(2.5))), 3},
		{Sum("x", expr.Lt(expr.Col("x"), expr.FloatLit(10))), 10},
	}
	for _, c := range cases {
		got, err := RunExact(rel, c.q)
		if err != nil {
			t.Fatalf("%v: %v", c.q, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%v(%s) = %v, want %v", c.q.Agg, c.q.Attr, got, c.want)
		}
	}
	if _, err := RunExact(rel, Sum("nope", nil)); err == nil {
		t.Error("unknown attribute should fail")
	}
	if v, _ := RunExact(relation.New(rel.Schema()), Avg("x", nil)); !math.IsNaN(v) {
		t.Error("avg of empty should be NaN")
	}
}

// ------------------------------------------------------- full-ratio sanity

// At m = 1 the samples ARE the views, so both estimators must be exact.
func TestEstimatorsExactAtFullRatio(t *testing.T) {
	sc := buildScenario(t, 1, 40, 800, 200, 1.0, 0)
	queries := []Query{
		Count(nil),
		Sum("totalBytes", nil),
		Avg("totalBytes", nil),
		Count(expr.Gt(expr.Col("visitCount"), expr.IntLit(10))),
		Sum("totalBytes", expr.Gt(expr.Col("visitCount"), expr.IntLit(5))),
	}
	for _, q := range queries {
		truth, err := RunExact(sc.truth, q)
		if err != nil {
			t.Fatal(err)
		}
		aqp, err := AQP(sc.samples, q, 0.95)
		if err != nil {
			t.Fatalf("AQP %v: %v", q.Agg, err)
		}
		if RelativeError(aqp.Value, truth) > 1e-9 {
			t.Errorf("AQP at m=1 not exact: %v vs %v", aqp.Value, truth)
		}
		corr, err := Corr(sc.v.Data(), sc.samples, q, 0.95)
		if err != nil {
			t.Fatalf("Corr %v: %v", q.Agg, err)
		}
		if RelativeError(corr.Value, truth) > 1e-9 {
			t.Errorf("Corr at m=1 not exact: %v vs %v", corr.Value, truth)
		}
	}
}

// -------------------------------------------------------- accuracy vs stale

// Both estimators must beat the no-maintenance baseline on count/sum, and
// their intervals should usually cover the truth.
func TestEstimatorsBeatStaleBaseline(t *testing.T) {
	queries := []Query{
		Count(nil),
		Sum("totalBytes", nil),
	}
	type agg struct{ stale, aqp, corr float64 }
	sums := map[Agg]*agg{CountQ: {}, SumQ: {}}
	covered, total := 0, 0
	for seed := int64(0); seed < 15; seed++ {
		sc := buildScenario(t, seed, 400, 6000, 2500, 0.15, 0)
		for _, q := range queries {
			truth, _ := RunExact(sc.truth, q)
			staleV, _ := RunExact(sc.v.Data(), q)
			aqp, err := AQP(sc.samples, q, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			corr, err := Corr(sc.v.Data(), sc.samples, q, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			a := sums[q.Agg]
			a.stale += RelativeError(staleV, truth)
			a.aqp += RelativeError(aqp.Value, truth)
			a.corr += RelativeError(corr.Value, truth)
			for _, e := range []Estimate{aqp, corr} {
				total++
				if e.Covers(truth) {
					covered++
				}
			}
		}
	}
	for f, a := range sums {
		t.Logf("%v: stale %.4f, aqp %.4f, corr %.4f (mean rel err)", f, a.stale/15, a.aqp/15, a.corr/15)
		if a.corr >= a.stale {
			t.Errorf("%v: SVC+CORR (%.4f) should beat stale (%.4f)", f, a.corr/15, a.stale/15)
		}
		if a.aqp >= a.stale {
			t.Errorf("%v: SVC+AQP (%.4f) should beat stale (%.4f)", f, a.aqp/15, a.stale/15)
		}
	}
	coverage := float64(covered) / float64(total)
	if coverage < 0.80 {
		t.Errorf("95%% intervals covered truth only %.0f%% of the time", coverage*100)
	}
}

// Section 5.2.2: with small update fractions, CORR is more accurate than
// AQP (the correspondence correlation dominates).
func TestCorrBeatsAQPWhenFresh(t *testing.T) {
	var aqpErr, corrErr float64
	q := Sum("totalBytes", nil)
	for seed := int64(0); seed < 12; seed++ {
		sc := buildScenario(t, seed, 80, 3000, 120, 0.1, 0) // 4% updates
		truth, _ := RunExact(sc.truth, q)
		aqp, err := AQP(sc.samples, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := Corr(sc.v.Data(), sc.samples, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		aqpErr += RelativeError(aqp.Value, truth)
		corrErr += RelativeError(corr.Value, truth)
	}
	t.Logf("mean rel err: aqp %.4f corr %.4f", aqpErr/12, corrErr/12)
	if corrErr >= aqpErr {
		t.Errorf("CORR (%.4f) should beat AQP (%.4f) at low staleness", corrErr/12, aqpErr/12)
	}
}

func TestAdvisePrefersCorrWhenFresh(t *testing.T) {
	sc := buildScenario(t, 3, 80, 3000, 100, 0.2, 0)
	choice, err := Advise(sc.samples, Sum("totalBytes", nil))
	if err != nil {
		t.Fatal(err)
	}
	if choice != "svc+corr" {
		t.Errorf("Advise = %q at 3%% staleness, want svc+corr", choice)
	}
}

// ----------------------------------------------------------- selectivity

// Section 5.2.3: interval width grows like 1/sqrt(selectivity).
func TestSelectivityWidensIntervals(t *testing.T) {
	// Section 5.2.3: the RELATIVE interval width scales like 1/sqrt(p).
	var wideRel, narrowRel float64
	for seed := int64(0); seed < 6; seed++ {
		sc := buildScenario(t, 5+seed, 200, 8000, 500, 0.2, 0)
		wide, err := AQP(sc.samples, Sum("totalBytes", nil), 0.95)
		if err != nil {
			t.Fatal(err)
		}
		wideTruth, _ := RunExact(sc.truth, Sum("totalBytes", nil))
		// Predicate selecting roughly a tenth of the videos.
		narrowQ := Sum("totalBytes", expr.Lt(expr.Col("videoId"), expr.IntLit(20)))
		narrow, err := AQP(sc.samples, narrowQ, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		narrowTruth, _ := RunExact(sc.truth, narrowQ)
		wideRel += wide.HalfWidth() / wideTruth
		narrowRel += narrow.HalfWidth() / narrowTruth
	}
	t.Logf("relative CI half-width: full %.4f, selective %.4f", wideRel/6, narrowRel/6)
	if narrowRel <= wideRel {
		t.Errorf("selective query relative CI (%.4f) should exceed full-relation CI (%.4f)",
			narrowRel/6, wideRel/6)
	}
}

// -------------------------------------------------------------- median &c

func TestMedianEstimates(t *testing.T) {
	sc := buildScenario(t, 7, 150, 4000, 800, 0.3, 0)
	q := Median("totalBytes", nil)
	truth, _ := RunExact(sc.truth, q)
	staleV, _ := RunExact(sc.v.Data(), q)
	aqp, err := AQP(sc.samples, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := Corr(sc.v.Data(), sc.samples, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if aqp.Lo > aqp.Hi || corr.Lo > corr.Hi {
		t.Fatal("degenerate bootstrap intervals")
	}
	// Both should be in the right ballpark (medians are robust).
	for _, e := range []Estimate{aqp, corr} {
		if RelativeError(e.Value, truth) > 0.5 {
			t.Errorf("%s median estimate %v far from truth %v (stale %v)", e.Method, e.Value, truth, staleV)
		}
	}
}

func TestMinMaxCorrection(t *testing.T) {
	// Appendix 12.1.1: the max correction adds the largest row-by-row
	// growth to the stale max — deliberately conservative (the paper
	// claims a probability bound, not a tighter point estimate). Under an
	// insert-heavy workload it must (a) never fall below the stale max,
	// (b) never fall below any sampled up-to-date value, and (c) come
	// with a well-formed Cantelli tail bound.
	for seed := int64(0); seed < 8; seed++ {
		sc := buildScenario(t, 9+seed, 100, 3000, 900, 0.3, 0)
		q := Max("totalBytes", nil)
		est, err := Corr(sc.v.Data(), sc.samples, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if est.TailProb < 0 || est.TailProb > 1 {
			t.Errorf("tail probability %v outside [0,1]", est.TailProb)
		}
		staleV, _ := RunExact(sc.v.Data(), q)
		if est.Value < staleV-1e-9 {
			t.Errorf("corrected max %v below stale max %v under inserts", est.Value, staleV)
		}
		sampleMax, _ := RunExact(sc.samples.Fresh, q)
		if est.Value < sampleMax-1e-9 {
			t.Errorf("corrected max %v below sampled evidence %v", est.Value, sampleMax)
		}
	}
	// Min: sanity only (a new global minimum is invisible unless
	// sampled); the bound fields must still be well-formed.
	sc := buildScenario(t, 29, 100, 3000, 600, 0.3, 0)
	est, err := Corr(sc.v.Data(), sc.samples, Min("totalBytes", nil), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.TailProb < 0 || est.TailProb > 1 {
		t.Errorf("min tail probability %v outside [0,1]", est.TailProb)
	}
	if !math.IsInf(est.Hi, 1) || est.Lo != est.Value {
		t.Errorf("min bound shape wrong: [%v,%v] value %v", est.Lo, est.Hi, est.Value)
	}
}

// ---------------------------------------------------------------- groups

func TestGroupEstimates(t *testing.T) {
	sc := buildScenario(t, 11, 60, 2000, 800, 0.25, 0)
	q := Sum("totalBytes", nil)
	groupBy := []string{"ownerId"}
	truth, _, err := GroupExact(sc.truth, q, groupBy)
	if err != nil {
		t.Fatal(err)
	}
	staleExact, _, err := GroupExact(sc.v.Data(), q, groupBy)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := GroupCorr(sc.v.Data(), sc.samples, q, groupBy, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	aqp, err := GroupAQP(sc.samples, q, groupBy, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(corr.Groups) == 0 || len(aqp.Groups) == 0 {
		t.Fatal("no group estimates")
	}
	corrMed, _ := GroupErrorStats(corr.Groups, truth)
	staleMed, _ := GroupStaleErrorStats(staleExact, truth)
	t.Logf("median group error: stale %.4f corr %.4f", staleMed, corrMed)
	if corrMed >= staleMed {
		t.Errorf("per-group CORR (%.4f) should beat stale (%.4f)", corrMed, staleMed)
	}
}

// ---------------------------------------------------------------- outliers

func buildOutlierSet(t *testing.T, sc *scenario, attr string, k int) *OutlierSet {
	t.Helper()
	type kv struct {
		key string
		val float64
	}
	idx := sc.truth.Schema().ColIndex(attr)
	var all []kv
	keyIdx := sc.truth.Schema().Key()
	for _, row := range sc.truth.Rows() {
		all = append(all, kv{row.KeyOf(keyIdx), row[idx].AsFloat()})
	}
	// top-k by value
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].val > all[i].val {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if k > len(all) {
		k = len(all)
	}
	o := &OutlierSet{Fresh: relation.New(sc.truth.Schema()), Stale: relation.New(sc.v.Schema())}
	for _, e := range all[:k] {
		row, _ := sc.truth.GetByEncodedKey(e.key)
		o.Fresh.MustInsert(row)
		if st, ok := sc.v.Data().GetByEncodedKey(e.key); ok {
			o.Stale.MustInsert(st)
		}
	}
	return o
}

func TestOutlierMergeImprovesSkewedEstimates(t *testing.T) {
	q := Sum("totalBytes", nil)
	var plain, merged float64
	for seed := int64(0); seed < 10; seed++ {
		sc := buildScenario(t, seed, 150, 4000, 800, 0.1, 5) // heavy tail
		truth, _ := RunExact(sc.truth, q)
		o := buildOutlierSet(t, sc, "totalBytes", 20)
		a1, err := AQP(sc.samples, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := AQPWithOutliers(sc.samples, o, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		plain += RelativeError(a1.Value, truth)
		merged += RelativeError(a2.Value, truth)
	}
	t.Logf("mean rel err: plain %.4f, with outlier index %.4f", plain/10, merged/10)
	if merged >= plain {
		t.Errorf("outlier merge (%.4f) should reduce error on skewed data (plain %.4f)", merged/10, plain/10)
	}
}

func TestOutlierMergeExactAtFullRatio(t *testing.T) {
	sc := buildScenario(t, 21, 40, 800, 200, 1.0, 3)
	o := buildOutlierSet(t, sc, "totalBytes", 5)
	for _, q := range []Query{Sum("totalBytes", nil), Count(nil), Avg("totalBytes", nil)} {
		truth, _ := RunExact(sc.truth, q)
		est, err := AQPWithOutliers(sc.samples, o, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if RelativeError(est.Value, truth) > 1e-9 {
			t.Errorf("%v with outliers at m=1: %v vs %v", q.Agg, est.Value, truth)
		}
		cEst, err := CorrWithOutliers(sc.v.Data(), sc.samples, o, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if RelativeError(cEst.Value, truth) > 1e-9 {
			t.Errorf("corr %v with outliers at m=1: %v vs %v", q.Agg, cEst.Value, truth)
		}
	}
}

func TestVarianceReduction(t *testing.T) {
	sc := buildScenario(t, 23, 150, 4000, 400, 0.5, 5)
	o := buildOutlierSet(t, sc, "totalBytes", 15)
	vr, err := VarianceReduction(sc.samples, o, "totalBytes")
	if err != nil {
		t.Fatal(err)
	}
	if vr <= 0 || vr > 1 {
		t.Errorf("variance reduction %v should be in (0,1] on skewed data", vr)
	}
}

// ---------------------------------------------------------------- select

func TestCleanSelectAtFullRatio(t *testing.T) {
	sc := buildScenario(t, 31, 50, 1000, 300, 1.0, 0)
	pred := expr.Gt(expr.Col("visitCount"), expr.IntLit(5))
	res, err := CleanSelect(sc.v.Data(), sc.samples, pred, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// At m=1 the cleaned selection equals the exact selection on S′.
	boundTruth, _ := pred.Bind(sc.truth.Schema())
	want := relation.New(sc.truth.Schema())
	for _, row := range sc.truth.Rows() {
		if boundTruth.Eval(row).AsBool() {
			want.MustInsert(row)
		}
	}
	if res.Rows.Len() != want.Len() {
		t.Fatalf("cleaned selection has %d rows, want %d", res.Rows.Len(), want.Len())
	}
	keyIdx := want.Schema().Key()
	for _, row := range want.Rows() {
		got, ok := res.Rows.GetByEncodedKey(row.KeyOf(keyIdx))
		if !ok {
			t.Fatalf("row %v missing", row)
		}
		for i := range row {
			if math.Abs(got[i].AsFloat()-row[i].AsFloat()) > 1e-6 {
				t.Fatalf("row %v wrong: %v", row, got)
			}
		}
	}
}

func TestCleanSelectEstimatesClasses(t *testing.T) {
	sc := buildScenario(t, 33, 60, 1500, 600, 0.5, 0)
	pred := expr.Gt(expr.Col("visitCount"), expr.IntLit(2))
	res, err := CleanSelect(sc.v.Data(), sc.samples, pred, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updated.Value < 0 || res.Added.Value < 0 || res.Removed.Value < 0 {
		t.Error("negative class estimates")
	}
	// With many inserts, some updated or added rows must be detected.
	if res.Updated.Value+res.Added.Value == 0 {
		t.Error("expected non-zero updated/added estimates under heavy updates")
	}
}

// ------------------------------------------------------------- CI scaling

// Interval width shrinks like 1/sqrt(m) as the sampling ratio grows.
func TestIntervalShrinksWithSampleSize(t *testing.T) {
	q := Sum("totalBytes", nil)
	var prev float64 = math.Inf(1)
	for _, ratio := range []float64{0.05, 0.2, 0.8} {
		var width float64
		for seed := int64(0); seed < 5; seed++ {
			sc := buildScenario(t, 41+seed, 100, 3000, 600, ratio, 0)
			est, err := AQP(sc.samples, q, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			width += est.HalfWidth()
		}
		width /= 5
		if width >= prev {
			t.Errorf("CI width should shrink with ratio: %v at %v (prev %v)", width, ratio, prev)
		}
		prev = width
	}
}

// Estimator variance sanity via stats helpers: the diff variance of
// corresponding samples is far below the fresh-sample variance when
// staleness is low — the quantitative heart of Section 5.2.2.
func TestCorrespondenceVarianceAdvantage(t *testing.T) {
	sc := buildScenario(t, 51, 100, 4000, 150, 0.3, 0)
	q := Sum("totalBytes", nil)
	freshT, err := transTable(sc.samples.Fresh, q, sc.samples.Ratio)
	if err != nil {
		t.Fatal(err)
	}
	staleT, err := transTable(sc.samples.Stale, q, sc.samples.Ratio)
	if err != nil {
		t.Fatal(err)
	}
	diffs := correspondenceSubtract(freshT, staleT)
	vDiff := stats.Variance(diffs)
	vFresh := stats.Variance(values(freshT))
	if vDiff >= vFresh/2 {
		t.Errorf("diff variance %v should be far below sample variance %v at low staleness", vDiff, vFresh)
	}
}
