package tpcd

import (
	"fmt"
	"math/rand"

	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// JoinViewQuery is one of the 12 TPCD-style group-by aggregates the paper
// runs against the join view (Figure 5): a name, a group-by attribute and
// an aggregate.
type JoinViewQuery struct {
	Name    string
	GroupBy []string
	Query   estimator.Query
}

// JoinViewQueries returns the 12 queries of Figure 5. They are the TPCD
// queries' aggregate shapes restricted to the join view's attributes (the
// paper uses qgen-parameterized originals; the shapes — grouping column,
// aggregate, selective predicate — are preserved).
func JoinViewQueries() []JoinViewQuery {
	rev := "l_extendedprice" // revenue basis available on the view
	qs := []JoinViewQuery{
		{Name: "Q3", GroupBy: []string{"o_orderdate"},
			Query: estimator.Sum(rev, expr.Lt(expr.Col("o_orderdate"), expr.IntLit(180)))},
		{Name: "Q4", GroupBy: []string{"o_orderpriority"},
			Query: estimator.Count(expr.Lt(expr.Col("o_orderdate"), expr.IntLit(270)))},
		{Name: "Q5", GroupBy: []string{"o_orderstatus"},
			Query: estimator.Sum(rev, nil)},
		{Name: "Q7", GroupBy: []string{"l_returnflag"},
			Query: estimator.Sum(rev, expr.Ge(expr.Col("l_shipdate"), expr.IntLit(90)))},
		{Name: "Q8", GroupBy: []string{"o_orderpriority"},
			Query: estimator.Avg(rev, nil)},
		{Name: "Q9", GroupBy: []string{"l_suppkey"},
			Query: estimator.Sum(rev, nil)},
		{Name: "Q10", GroupBy: []string{"l_returnflag"},
			Query: estimator.Sum(rev, expr.Eq(expr.Col("l_returnflag"), expr.IntLit(1)))},
		{Name: "Q12", GroupBy: []string{"o_orderpriority"},
			Query: estimator.Count(expr.Ge(expr.Col("l_shipdate"), expr.IntLit(180)))},
		{Name: "Q14", GroupBy: []string{"l_returnflag"},
			Query: estimator.Sum(rev, expr.And(
				expr.Ge(expr.Col("l_shipdate"), expr.IntLit(120)),
				expr.Lt(expr.Col("l_shipdate"), expr.IntLit(150))))},
		{Name: "Q18", GroupBy: []string{"o_custkey"},
			Query: estimator.Sum("l_quantity", nil)},
		{Name: "Q19", GroupBy: []string{"l_returnflag"},
			Query: estimator.Sum(rev, expr.And(
				expr.Ge(expr.Col("l_quantity"), expr.IntLit(10)),
				expr.Le(expr.Col("l_quantity"), expr.IntLit(30))))},
		{Name: "Q21", GroupBy: []string{"o_orderstatus"},
			Query: estimator.Count(expr.Gt(expr.Col("l_quantity"), expr.IntLit(25)))},
	}
	return qs
}

// GeneratedQuery is one Section 7.1 random query instance against a
// complex view: a random sum/avg/count over a random aggregation column,
// with a random range predicate over a group-by attribute.
type GeneratedQuery struct {
	Desc  string
	Query estimator.Query
}

// GenerateQueries builds n random queries for a view with the given
// group-by (predicate) attribute domains and numeric aggregate columns,
// mirroring the paper's generator: pick a ∈ groupBy for the predicate
// ("a > lo and a < hi" over a random sub-range of its domain) and b from
// the aggregates.
func GenerateQueries(rng *rand.Rand, n int, predAttrs []PredAttr, aggCols []string) []GeneratedQuery {
	if len(predAttrs) == 0 || len(aggCols) == 0 {
		return nil
	}
	out := make([]GeneratedQuery, 0, n)
	for i := 0; i < n; i++ {
		pa := predAttrs[rng.Intn(len(predAttrs))]
		lo := pa.Lo + rng.Int63n(pa.Hi-pa.Lo)
		span := 1 + rng.Int63n(pa.Hi-lo+1)
		pred := expr.And(
			expr.Ge(expr.Col(pa.Name), expr.Lit(relation.Int(lo))),
			expr.Le(expr.Col(pa.Name), expr.Lit(relation.Int(lo+span))),
		)
		b := aggCols[rng.Intn(len(aggCols))]
		var q estimator.Query
		switch rng.Intn(3) {
		case 0:
			q = estimator.Sum(b, pred)
		case 1:
			q = estimator.Avg(b, pred)
		default:
			q = estimator.Count(pred)
		}
		out = append(out, GeneratedQuery{
			Desc:  fmt.Sprintf("%s(%s) where %s in [%d,%d]", q.Agg, b, pa.Name, lo, lo+span),
			Query: q,
		})
	}
	return out
}

// PredAttr describes the integer domain of a predicate attribute.
type PredAttr struct {
	Name   string
	Lo, Hi int64
}

// ViewQuerySpace returns the predicate attributes and aggregate columns
// usable for random query generation against each complex view, keyed by
// view name.
func ViewQuerySpace(cfg Config) map[string]struct {
	Preds []PredAttr
	Aggs  []string
} {
	cfg = cfg.withDefaults()
	days := int64(cfg.Days)
	return map[string]struct {
		Preds []PredAttr
		Aggs  []string
	}{
		"V3":   {Preds: []PredAttr{{"l_orderkey", 0, int64(cfg.Orders)}}, Aggs: []string{"revenue", "cnt"}},
		"V4":   {Preds: []PredAttr{{"o_orderpriority", 1, 5}}, Aggs: []string{"cnt", "totalQty"}},
		"V5":   {Preds: []PredAttr{{"n_nationkey", 0, 24}, {"o_orderdate", 0, days}}, Aggs: []string{"revenue", "cnt"}},
		"V9":   {Preds: []PredAttr{{"s_nationkey", 0, 24}, {"o_orderdate", 0, days}}, Aggs: []string{"profit", "cnt"}},
		"V10":  {Preds: []PredAttr{{"c_custkey", 0, int64(cfg.Customers)}}, Aggs: []string{"revenue", "cnt"}},
		"V13":  {Preds: []PredAttr{{"o_custkey", 0, int64(cfg.Customers)}}, Aggs: []string{"orderCount", "totalSpend"}},
		"V15i": {Preds: []PredAttr{{"l_suppkey", 0, int64(cfg.Suppliers)}}, Aggs: []string{"totalRevenue", "cnt"}},
		"V18":  {Preds: []PredAttr{{"l_orderkey", 0, int64(cfg.Orders)}}, Aggs: []string{"totalQty", "cnt"}},
		"V21":  {Preds: []PredAttr{{"supplierOrders", 0, 1000}}, Aggs: []string{"cnt"}},
		"V22":  {Preds: nil, Aggs: []string{"totalBal", "cnt"}}, // string key: predicate on cnt instead
	}
}

// CubeRollups returns the 13 roll-up queries of Appendix 12.6.3: sums of
// revenue over every listed dimension subset (Q1 = grand total).
func CubeRollups() []struct {
	Name    string
	GroupBy []string
} {
	return []struct {
		Name    string
		GroupBy []string
	}{
		{"Q1", nil},
		{"Q2", []string{"c_custkey"}},
		{"Q3", []string{"n_nationkey"}},
		{"Q4", []string{"r_regionkey"}},
		{"Q5", []string{"l_partkey"}},
		{"Q6", []string{"c_custkey", "n_nationkey"}},
		{"Q7", []string{"c_custkey", "r_regionkey"}},
		{"Q8", []string{"c_custkey", "l_partkey"}},
		{"Q9", []string{"n_nationkey", "r_regionkey"}},
		{"Q10", []string{"n_nationkey", "l_partkey"}},
		{"Q11", []string{"c_custkey", "n_nationkey", "r_regionkey"}},
		{"Q12", []string{"c_custkey", "n_nationkey", "l_partkey"}},
		{"Q13", []string{"n_nationkey", "r_regionkey", "l_partkey"}},
	}
}
