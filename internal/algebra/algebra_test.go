package algebra

import (
	"strings"
	"testing"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// Test fixtures model the paper's running example: Log(sessionId, videoId)
// and Video(videoId, ownerId, duration).

func logSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
	}, "sessionId")
}

func videoSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "videoId", Type: relation.KindInt},
		{Name: "ownerId", Type: relation.KindInt},
		{Name: "duration", Type: relation.KindFloat},
	}, "videoId")
}

// fixtureCtx returns a context with a small Log/Video database:
// videos 1..3 owned by 10/10/20, log sessions visiting them.
func fixtureCtx() *Context {
	video := relation.New(videoSchema())
	video.MustInsert(relation.Row{relation.Int(1), relation.Int(10), relation.Float(1.0)})
	video.MustInsert(relation.Row{relation.Int(2), relation.Int(10), relation.Float(2.0)})
	video.MustInsert(relation.Row{relation.Int(3), relation.Int(20), relation.Float(0.5)})

	log := relation.New(logSchema())
	visits := []int64{1, 1, 1, 2, 2, 3} // video visit pattern
	for i, v := range visits {
		log.MustInsert(relation.Row{relation.Int(int64(100 + i)), relation.Int(v)})
	}
	return NewContext(map[string]*relation.Relation{
		"Log":   log,
		"Video": video,
	})
}

func mustEval(t *testing.T, n Node, ctx *Context) *relation.Relation {
	t.Helper()
	out, err := n.Eval(ctx)
	if err != nil {
		t.Fatalf("eval %s: %v", n, err)
	}
	return out
}

func TestScan(t *testing.T) {
	ctx := fixtureCtx()
	out := mustEval(t, Scan("Log", logSchema()), ctx)
	if out.Len() != 6 {
		t.Fatalf("scan len = %d", out.Len())
	}
	if _, err := Scan("Nope", logSchema()).Eval(ctx); err == nil {
		t.Fatal("scan of unbound name should fail")
	}
	// Schema mismatch is detected.
	if _, err := Scan("Log", videoSchema()).Eval(ctx); err == nil {
		t.Fatal("scan with wrong schema should fail")
	}
	// Bare scans of shared relations are free; consuming operators charge
	// the reads (an index probe may touch only a few rows).
	sel := MustSelect(Scan("Log", logSchema()), expr.True())
	if _, err := sel.Eval(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.RowsTouched == 0 {
		t.Error("RowsTouched should be accounted by consuming operators")
	}
}

func TestSelect(t *testing.T) {
	ctx := fixtureCtx()
	sel := MustSelect(Scan("Log", logSchema()), expr.Eq(expr.Col("videoId"), expr.IntLit(1)))
	out := mustEval(t, sel, ctx)
	if out.Len() != 3 {
		t.Fatalf("select len = %d", out.Len())
	}
	// Key preserved (Definition 2).
	if got := out.Schema().KeyNames(); len(got) != 1 || got[0] != "sessionId" {
		t.Errorf("select key = %v", got)
	}
	if _, err := Select(Scan("Log", logSchema()), expr.Col("nope")); err == nil {
		t.Fatal("select with unknown column should fail")
	}
}

func TestProjectKeyDerivation(t *testing.T) {
	base := Scan("Video", videoSchema())
	// Pass-through with rename keeps the key under the new name.
	p := MustProject(base, []Output{
		Out("vid", expr.Col("videoId")),
		Out("hours", expr.Div(expr.Col("duration"), expr.IntLit(1))),
	})
	if got := p.Schema().KeyNames(); len(got) != 1 || got[0] != "vid" {
		t.Fatalf("project key = %v", got)
	}
	out := mustEval(t, p, fixtureCtx())
	if out.Len() != 3 {
		t.Fatalf("project len = %d", out.Len())
	}
	// Dropping the key is a Definition 2 violation.
	if _, err := Project(base, []Output{OutCol("ownerId")}); err == nil {
		t.Fatal("projection dropping the key should fail")
	}
	// A non-pass-through transformation of the key does not count.
	if _, err := Project(base, []Output{
		Out("videoId", expr.Add(expr.Col("videoId"), expr.IntLit(1))),
		OutCol("ownerId"),
	}); err == nil {
		t.Fatal("transformed key should not satisfy Definition 2")
	}
}

func TestProjectKeyedAssertion(t *testing.T) {
	base := Scan("Video", videoSchema())
	p := MustProjectKeyed(base, []Output{
		Out("k", expr.Col("videoId")),
		Out("double", expr.Mul(expr.Col("ownerId"), expr.IntLit(2))),
	}, "k")
	out := mustEval(t, p, fixtureCtx())
	if out.Len() != 3 {
		t.Fatalf("len = %d", out.Len())
	}
	// Asserting a non-unique key is caught at evaluation.
	bad := MustProjectKeyed(base, []Output{
		Out("k", expr.Col("ownerId")),
	}, "k")
	if _, err := bad.Eval(fixtureCtx()); err == nil {
		t.Fatal("non-unique asserted key should fail at eval")
	}
}

func TestAlias(t *testing.T) {
	a := Alias(Scan("Video", videoSchema()), "v")
	if got := a.Schema().KeyNames(); got[0] != "v.videoId" {
		t.Fatalf("alias key = %v", got)
	}
	out := mustEval(t, a, fixtureCtx())
	if out.Len() != 3 || out.Schema().ColIndex("v.ownerId") != 1 {
		t.Fatalf("alias output wrong: %v", out.Schema())
	}
}

func TestInnerJoinFK(t *testing.T) {
	ctx := fixtureCtx()
	// Log ⋈ Video on videoId (FK join), merged columns.
	j := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
		JoinSpec{Type: Inner, On: On("videoId", "videoId"), Merge: true})
	out := mustEval(t, j, ctx)
	if out.Len() != 6 {
		t.Fatalf("join len = %d", out.Len())
	}
	// Merged key: (sessionId, videoId) with the dimension key collapsing
	// into the fact's foreign key.
	if got := strings.Join(out.Schema().KeyNames(), ","); got != "sessionId,videoId" {
		t.Fatalf("join key = %v", got)
	}
	// The right join column is dropped.
	if out.Schema().NumCols() != 4 {
		t.Fatalf("join cols = %v", out.Schema())
	}
}

func TestInnerJoinNoMergeCompositeKey(t *testing.T) {
	l := Alias(Scan("Log", logSchema()), "l")
	v := Alias(Scan("Video", videoSchema()), "v")
	j := MustJoin(l, v, JoinSpec{Type: Inner, On: On("l.videoId", "v.videoId")})
	if got := strings.Join(j.Schema().KeyNames(), ","); got != "l.sessionId,v.videoId" {
		t.Fatalf("composite key = %q", got)
	}
	out := mustEval(t, j, fixtureCtx())
	if out.Len() != 6 {
		t.Fatalf("join len = %d", out.Len())
	}
}

func TestJoinDuplicateColumnsRejected(t *testing.T) {
	if _, err := Join(Scan("Video", videoSchema()), Scan("Video", videoSchema()),
		JoinSpec{Type: Inner, On: On("videoId", "videoId")}); err == nil {
		t.Fatal("duplicate output columns should be rejected")
	}
}

func TestOuterJoins(t *testing.T) {
	// delta view counts per video, but only for videos 1 and 99 (99 is a
	// "new" video not in the stale side).
	stale := relation.New(relation.NewSchema([]relation.Column{
		{Name: "videoId", Type: relation.KindInt},
		{Name: "cnt", Type: relation.KindInt},
	}, "videoId"))
	stale.MustInsert(relation.Row{relation.Int(1), relation.Int(3)})
	stale.MustInsert(relation.Row{relation.Int(2), relation.Int(2)})

	delta := relation.New(relation.NewSchema([]relation.Column{
		{Name: "dVideoId", Type: relation.KindInt},
		{Name: "dCnt", Type: relation.KindInt},
	}, "dVideoId"))
	delta.MustInsert(relation.Row{relation.Int(1), relation.Int(5)})
	delta.MustInsert(relation.Row{relation.Int(99), relation.Int(7)})

	ctx := NewContext(map[string]*relation.Relation{"S": stale, "D": delta})
	sScan := Scan("S", stale.Schema())
	dScan := Scan("D", delta.Schema())

	full := MustJoin(sScan, dScan, JoinSpec{Type: FullOuter, On: On("videoId", "dVideoId"), Merge: true})
	out := mustEval(t, full, ctx)
	if out.Len() != 3 {
		t.Fatalf("full outer len = %d\n%s", out.Len(), out)
	}
	// Merged key present on right-only row.
	row, ok := out.Get(relation.Int(99))
	if !ok {
		t.Fatalf("row 99 missing: %s", out)
	}
	if !row[1].IsNull() || row[2].AsInt() != 7 {
		t.Errorf("right-only row = %v", row)
	}
	row, _ = out.Get(relation.Int(2))
	if row[1].AsInt() != 2 || !row[2].IsNull() {
		t.Errorf("left-only row = %v", row)
	}

	left := MustJoin(sScan, dScan, JoinSpec{Type: LeftOuter, On: On("videoId", "dVideoId"), Merge: true})
	if got := mustEval(t, left, ctx).Len(); got != 2 {
		t.Fatalf("left outer len = %d", got)
	}
	right := MustJoin(sScan, dScan, JoinSpec{Type: RightOuter, On: On("videoId", "dVideoId"), Merge: true})
	if got := mustEval(t, right, ctx).Len(); got != 2 {
		t.Fatalf("right outer len = %d", got)
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	a := relation.New(relation.NewSchema([]relation.Column{
		{Name: "k", Type: relation.KindInt}, {Name: "x", Type: relation.KindInt},
	}))
	a.MustInsert(relation.Row{relation.Null(), relation.Int(1)})
	b := relation.New(relation.NewSchema([]relation.Column{
		{Name: "j", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt},
	}))
	b.MustInsert(relation.Row{relation.Null(), relation.Int(2)})
	ctx := NewContext(map[string]*relation.Relation{"A": a, "B": b})
	j := MustJoin(Scan("A", a.Schema()), Scan("B", b.Schema()),
		JoinSpec{Type: Inner, On: On("k", "j")})
	if got := mustEval(t, j, ctx).Len(); got != 0 {
		t.Fatalf("NULL keys matched: %d rows", got)
	}
}

func TestJoinExtraPredicate(t *testing.T) {
	ctx := fixtureCtx()
	j := MustJoin(Scan("Log", logSchema()), Scan("Video", videoSchema()),
		JoinSpec{Type: Inner, On: On("videoId", "videoId"), Merge: true,
			Extra: expr.Gt(expr.Col("duration"), expr.FloatLit(0.9))})
	out := mustEval(t, j, ctx)
	// Videos 1 (3 visits) and 2 (2 visits) have duration > 0.9.
	if out.Len() != 5 {
		t.Fatalf("extra predicate join len = %d", out.Len())
	}
}

func TestCrossJoin(t *testing.T) {
	ctx := fixtureCtx()
	j := MustJoin(Alias(Scan("Video", videoSchema()), "a"), Alias(Scan("Video", videoSchema()), "b"),
		JoinSpec{Type: Inner})
	if got := mustEval(t, j, ctx).Len(); got != 9 {
		t.Fatalf("cross join len = %d", got)
	}
}

func TestGroupByVisitCount(t *testing.T) {
	ctx := fixtureCtx()
	// The paper's visitView inner aggregate: visits per video.
	g := MustGroupBy(Scan("Log", logSchema()), []string{"videoId"}, CountAs("visitCount"))
	out := mustEval(t, g, ctx)
	if out.Len() != 3 {
		t.Fatalf("groups = %d", out.Len())
	}
	if got := out.Schema().KeyNames(); got[0] != "videoId" {
		t.Fatalf("agg key = %v", got)
	}
	row, _ := out.Get(relation.Int(1))
	if row[1].AsInt() != 3 {
		t.Errorf("visitCount(1) = %v", row[1])
	}
}

func TestAggregateFunctions(t *testing.T) {
	ctx := fixtureCtx()
	g := MustGroupBy(Scan("Video", videoSchema()), []string{"ownerId"},
		CountAs("n"),
		SumAs(expr.Col("duration"), "total"),
		AvgAs(expr.Col("duration"), "mean"),
		MinAs(expr.Col("duration"), "lo"),
		MaxAs(expr.Col("duration"), "hi"),
	)
	out := mustEval(t, g, ctx)
	row, ok := out.Get(relation.Int(10))
	if !ok {
		t.Fatalf("owner 10 missing")
	}
	if row[1].AsInt() != 2 || row[2].AsFloat() != 3.0 || row[3].AsFloat() != 1.5 ||
		row[4].AsFloat() != 1.0 || row[5].AsFloat() != 2.0 {
		t.Errorf("agg row = %v", row)
	}
}

func TestGrandAggregateEmptyInput(t *testing.T) {
	empty := relation.New(videoSchema())
	ctx := NewContext(map[string]*relation.Relation{"Video": empty})
	g := MustGroupBy(Scan("Video", videoSchema()), nil, CountAs("n"), SumAs(expr.Col("duration"), "s"))
	out := mustEval(t, g, ctx)
	if out.Len() != 1 {
		t.Fatalf("grand aggregate rows = %d", out.Len())
	}
	if out.Row(0)[0].AsInt() != 0 || !out.Row(0)[1].IsNull() {
		t.Errorf("grand aggregate over empty = %v", out.Row(0))
	}
	if out.Schema().HasKey() {
		t.Error("grand aggregate should be keyless")
	}
}

func TestAggregateNullsSkipped(t *testing.T) {
	rel := relation.New(relation.NewSchema([]relation.Column{
		{Name: "k", Type: relation.KindInt}, {Name: "x", Type: relation.KindFloat},
	}, "k"))
	rel.MustInsert(relation.Row{relation.Int(1), relation.Float(10)})
	rel.MustInsert(relation.Row{relation.Int(2), relation.Null()})
	ctx := NewContext(map[string]*relation.Relation{"R": rel})
	g := MustGroupBy(Scan("R", rel.Schema()), nil, CountAs("n"), SumAs(expr.Col("x"), "s"), AvgAs(expr.Col("x"), "a"))
	out := mustEval(t, g, ctx)
	row := out.Row(0)
	if row[0].AsInt() != 2 || row[1].AsFloat() != 10 || row[2].AsFloat() != 10 {
		t.Errorf("null-skipping aggregates = %v", row)
	}
}

func TestSetOpsKeyed(t *testing.T) {
	mk := func(ids ...int64) *relation.Relation {
		r := relation.New(relation.NewSchema([]relation.Column{
			{Name: "k", Type: relation.KindInt}, {Name: "v", Type: relation.KindInt},
		}, "k"))
		for _, id := range ids {
			r.MustInsert(relation.Row{relation.Int(id), relation.Int(id * 10)})
		}
		return r
	}
	a, b := mk(1, 2, 3), mk(2, 3, 4)
	ctx := NewContext(map[string]*relation.Relation{"A": a, "B": b})
	sa, sb := Scan("A", a.Schema()), Scan("B", b.Schema())

	if got := mustEval(t, MustUnion(sa, sb), ctx).Len(); got != 4 {
		t.Errorf("union len = %d", got)
	}
	if got := mustEval(t, MustIntersect(sa, sb), ctx).Len(); got != 2 {
		t.Errorf("intersect len = %d", got)
	}
	if got := mustEval(t, MustDifference(sa, sb), ctx).Len(); got != 1 {
		t.Errorf("difference len = %d", got)
	}
	out := mustEval(t, MustDifference(sa, sb), ctx)
	if out.Row(0)[0].AsInt() != 1 {
		t.Errorf("difference kept %v", out.Row(0))
	}
	// Incompatible schemas rejected.
	if _, err := Union(sa, Scan("Log", logSchema())); err == nil {
		t.Error("incompatible union should fail")
	}
}

func TestBagUnionConcatenates(t *testing.T) {
	sch := relation.NewSchema([]relation.Column{{Name: "x", Type: relation.KindInt}})
	a, b := relation.New(sch), relation.New(sch)
	a.MustInsert(relation.Row{relation.Int(1)})
	b.MustInsert(relation.Row{relation.Int(1)})
	ctx := NewContext(map[string]*relation.Relation{"A": a, "B": b})
	u := MustUnion(Scan("A", sch), Scan("B", sch))
	if got := mustEval(t, u, ctx).Len(); got != 2 {
		t.Fatalf("bag union len = %d (want duplicate kept)", got)
	}
	if u.Schema().HasKey() {
		t.Error("bag union should be keyless")
	}
}

func TestHashFilterBasics(t *testing.T) {
	ctx := fixtureCtx()
	h := MustHashFilter(Scan("Log", logSchema()), []string{"sessionId"}, 1.0, nil)
	if got := mustEval(t, h, ctx).Len(); got != 6 {
		t.Fatalf("ratio 1.0 kept %d of 6", got)
	}
	h0 := MustHashFilter(Scan("Log", logSchema()), []string{"sessionId"}, 0.0, nil)
	if got := mustEval(t, h0, ctx).Len(); got != 0 {
		t.Fatalf("ratio 0.0 kept %d", got)
	}
	// Determinism: same sample twice.
	h5 := MustHashFilter(Scan("Log", logSchema()), []string{"sessionId"}, 0.5, nil)
	a := mustEval(t, h5, ctx)
	b := mustEval(t, h5, fixtureCtx())
	if !a.Equal(b) {
		t.Fatal("hash filter not deterministic")
	}
	if _, err := HashFilter(Scan("Log", logSchema()), []string{"zzz"}, 0.5, nil); err == nil {
		t.Error("unknown attr should fail")
	}
	if _, err := HashFilter(Scan("Log", logSchema()), []string{"sessionId"}, 1.5, nil); err == nil {
		t.Error("ratio > 1 should fail")
	}
}

func TestFormatAndWalk(t *testing.T) {
	g := MustGroupBy(MustSelect(Scan("Log", logSchema()), expr.True()), []string{"videoId"}, CountAs("c"))
	s := Format(g)
	if !strings.Contains(s, "GroupBy") || !strings.Contains(s, "Scan(Log)") {
		t.Errorf("Format = %q", s)
	}
	if got := CountNodes(g); got != 3 {
		t.Errorf("CountNodes = %d", got)
	}
}

// Index-probe joins must produce exactly the hash join's output (they are
// an execution strategy, not a semantic change), while touching fewer
// rows.
func TestIndexProbeJoinEquivalence(t *testing.T) {
	mkCtx := func(withIndex bool) *Context {
		video := relation.New(videoSchema())
		for i := int64(0); i < 50; i++ {
			video.MustInsert(relation.Row{relation.Int(i), relation.Int(i % 7), relation.Float(float64(i))})
		}
		log := relation.New(logSchema())
		for i := int64(0); i < 500; i++ {
			log.MustInsert(relation.Row{relation.Int(i), relation.Int(i % 50)})
		}
		if withIndex {
			log.BuildIndex([]int{logSchema().ColIndex("videoId")})
		}
		return NewContext(map[string]*relation.Relation{"Log": log, "Video": video})
	}
	// Small delta probing the indexed Log side.
	delta := relation.New(relation.NewSchema([]relation.Column{
		{Name: "dVideoId", Type: relation.KindInt},
	}, "dVideoId"))
	for _, v := range []int64{3, 17, 42} {
		delta.MustInsert(relation.Row{relation.Int(v)})
	}
	join := MustJoin(
		Scan("Log", logSchema()),
		Scan("D", delta.Schema()),
		JoinSpec{Type: Inner, On: On("videoId", "dVideoId"), Merge: true},
	)
	var outs [2]*relation.Relation
	var costs [2]int64
	for i, withIndex := range []bool{false, true} {
		ctx := mkCtx(withIndex)
		ctx.Bind("D", delta)
		out, err := join.Eval(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out.SortByKey()
		outs[i] = out
		costs[i] = ctx.RowsTouched
	}
	if !outs[0].Equal(outs[1]) {
		t.Fatalf("index probe changed the join result: %d vs %d rows", outs[0].Len(), outs[1].Len())
	}
	if costs[1] >= costs[0] {
		t.Errorf("index probe should touch fewer rows: %d vs %d", costs[1], costs[0])
	}
	if outs[0].Len() != 30 { // 3 videos × 10 visits each
		t.Errorf("join rows = %d", outs[0].Len())
	}
}

// An inner join with an empty delta side must not evaluate the other side
// at all (the delta-plan short-circuit).
func TestInnerJoinEmptySideShortCircuit(t *testing.T) {
	empty := relation.New(relation.NewSchema([]relation.Column{
		{Name: "dVideoId", Type: relation.KindInt},
	}, "dVideoId"))
	ctx := fixtureCtx()
	ctx.Bind("D", empty)
	join := MustJoin(
		Scan("Log", logSchema()),
		Scan("D", empty.Schema()),
		JoinSpec{Type: Inner, On: On("videoId", "dVideoId"), Merge: true},
	)
	before := ctx.RowsTouched
	out, err := join.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("join of empty side = %d rows", out.Len())
	}
	if ctx.RowsTouched != before {
		t.Errorf("empty-side join should touch no rows, touched %d", ctx.RowsTouched-before)
	}
}
