package clean_test

// Recycled-storage retention test. The columnar pipeline recycles batch
// vectors, string payload slabs, and dictionaries through pools; any
// consumer that keeps a reference into pooled storage past Release (a row
// header aliasing a payload slab, a cell read from a dictionary after its
// ColSet went back to the pool) silently reads someone else's data on the
// next cycle. With relation.SetPoisonRecycled on, every recycled string
// slot is overwritten with relation.PoisonString first — so a retained
// reference becomes a loud, deterministic failure here instead of a
// heisenbug in production.

import (
	"strings"
	"testing"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

// requireNoPoison scans every cell of rel for the poison sentinel.
func requireNoPoison(t *testing.T, label string, rel *relation.Relation) {
	t.Helper()
	sch := rel.Schema()
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		for c, v := range row {
			if v.Kind() != relation.KindString {
				continue
			}
			if strings.Contains(v.AsString(), relation.PoisonString) {
				t.Fatalf("%s: row %d col %s retained recycled pooled storage (poison sentinel)",
					label, i, sch.Col(c).Name)
			}
		}
	}
}

// TestNoPooledStorageRetention runs repeated maintain+clean cycles over a
// string-bearing join view (lineitem⋈orders⋈customer carries c_phone
// through the join, exercising dictionary-encoded vectors) with poisoning
// enabled, serially and with 4 workers. No view, sample, or cleaned
// output cell may ever observe the sentinel.
func TestNoPooledStorageRetention(t *testing.T) {
	prev := relation.SetPoisonRecycled(true)
	defer relation.SetPoisonRecycled(prev)

	for _, par := range []int{0, 4} {
		g := tpcd.NewGenerator(tpcd.Config{
			Orders: 200, MaxLines: 3, Customers: 40, Suppliers: 10, Parts: 30,
			Z: 2, Days: 90, Seed: 11,
		})
		d, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		d.SetParallelism(par)
		// lineitem⋈orders⋈customer: the customer side contributes c_phone,
		// so string vectors (dictionary-encoded in ColSets) flow through
		// the columnar join and into every downstream consumer.
		plan := algebra.MustJoin(
			algebra.MustJoin(
				algebra.Scan(tpcd.Lineitem, tpcd.LineitemSchema()),
				algebra.Scan(tpcd.Orders, tpcd.OrdersSchema()),
				algebra.JoinSpec{Type: algebra.Inner,
					On: []algebra.EqPair{{Left: "l_orderkey", Right: "o_orderkey"}}},
			),
			algebra.Scan(tpcd.Customer, tpcd.CustomerSchema()),
			algebra.JoinSpec{Type: algebra.Inner,
				On: []algebra.EqPair{{Left: "o_custkey", Right: "c_custkey"}}},
		)
		v, err := view.Materialize(d, view.Definition{Name: "phoneView", Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		m, err := view.NewMaintainer(v)
		if err != nil {
			t.Fatal(err)
		}
		c, err := clean.New(m, 0.3, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireNoPoison(t, "initial view", v.Data())
		requireNoPoison(t, "initial sample", c.StaleSample())

		for cycle := int64(0); cycle < 3; cycle++ {
			stageRandomBatch(t, g, d, 11+cycle)
			samples, err := c.Clean(d)
			if err != nil {
				t.Fatal(err)
			}
			requireNoPoison(t, "cleaned sample", samples.Fresh)
			if _, err := m.Maintain(d); err != nil {
				t.Fatal(err)
			}
			if err := d.ApplyDeltas(); err != nil {
				t.Fatal(err)
			}
			if err := c.Adopt(samples); err != nil {
				t.Fatal(err)
			}
			requireNoPoison(t, "maintained view", v.Data())
			requireNoPoison(t, "adopted sample", c.StaleSample())
		}
	}
}
