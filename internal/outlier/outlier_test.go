package outlier

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

func logSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
		{Name: "bytes", Type: relation.KindFloat},
	}, "sessionId")
}

func trafficDef() view.Definition {
	g := algebra.MustGroupBy(
		algebra.Scan("Log", logSchema()),
		[]string{"videoId"},
		algebra.CountAs("visits"),
		algebra.SumAs(expr.Col("bytes"), "totalBytes"),
	)
	return view.Definition{Name: "traffic", Plan: g}
}

// buildDB: heavy-tailed bytes; a fraction of sessions are huge.
func buildDB(t testing.TB, seed int64, visits, updates int) *db.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := db.New()
	lt := d.MustCreate("Log", logSchema())
	gen := func() float64 {
		b := 10 + rng.Float64()*5
		if rng.Float64() < 0.03 {
			b *= 500 + rng.Float64()*500 // outliers
		}
		return b
	}
	for i := 0; i < visits; i++ {
		lt.MustInsert(relation.Row{relation.Int(int64(i)), relation.Int(rng.Int63n(150)), relation.Float(gen())})
	}
	return d
}

func stageUpdates(t testing.TB, d *db.Database, seed int64, visits, updates int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed * 31))
	lt := d.Table("Log")
	for i := 0; i < updates; i++ {
		b := 10 + rng.Float64()*5
		if rng.Float64() < 0.03 {
			b *= 500 + rng.Float64()*500
		}
		if err := lt.StageInsert(relation.Row{
			relation.Int(int64(visits + i)),
			relation.Int(rng.Int63n(150)),
			relation.Float(b),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIndexThresholdAndEviction(t *testing.T) {
	sch := logSchema()
	ix, err := NewIndex("Log", "bytes", sch, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range []float64{50, 150, 200, 120, 300, 90, 500} {
		ix.Observe(relation.Row{relation.Int(int64(i)), relation.Int(0), relation.Float(b)})
	}
	if ix.Len() != 3 {
		t.Fatalf("index size = %d, want 3", ix.Len())
	}
	recs := ix.Records()
	// Should hold the top-3 above threshold: 200, 300, 500.
	want := map[int64]bool{2: true, 4: true, 6: true}
	for _, row := range recs.Rows() {
		if !want[row[0].AsInt()] {
			t.Errorf("unexpected record %v", row)
		}
	}
	if ix.Threshold() != 100 {
		t.Errorf("threshold = %v", ix.Threshold())
	}
}

func TestIndexValidation(t *testing.T) {
	sch := logSchema()
	if _, err := NewIndex("Log", "nope", sch, 0, 5); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := NewIndex("Log", "bytes", sch, 0, 0); err == nil {
		t.Error("zero limit should fail")
	}
}

func TestIndexIgnoresNullAndBelowThreshold(t *testing.T) {
	ix, _ := NewIndex("Log", "bytes", logSchema(), 100, 10)
	ix.Observe(relation.Row{relation.Int(1), relation.Int(0), relation.Null()})
	ix.Observe(relation.Row{relation.Int(2), relation.Int(0), relation.Float(99)})
	ix.Observe(relation.Row{relation.Int(3), relation.Int(0), relation.Float(100)})
	if ix.Len() != 0 {
		t.Fatalf("index should be empty, has %d", ix.Len())
	}
}

func TestSetThresholdDropsEntries(t *testing.T) {
	ix, _ := NewIndex("Log", "bytes", logSchema(), 0, 10)
	for i, b := range []float64{10, 20, 30} {
		ix.Observe(relation.Row{relation.Int(int64(i)), relation.Int(0), relation.Float(b)})
	}
	ix.SetThreshold(15)
	if ix.Len() != 2 {
		t.Fatalf("after raising threshold: %d entries", ix.Len())
	}
}

func TestBuildFromTableHandlesUpdates(t *testing.T) {
	d := buildDB(t, 1, 100, 0)
	lt := d.Table("Log")
	// Make session 0 a known outlier via a staged update.
	if err := lt.StageUpdate(relation.Row{relation.Int(0), relation.Int(5), relation.Float(99999)}); err != nil {
		t.Fatal(err)
	}
	ix, _ := NewIndex("Log", "bytes", logSchema(), 50000, 10)
	if err := ix.BuildFromTable(lt); err != nil {
		t.Fatal(err)
	}
	row, ok := ix.Records().Get(relation.Int(0))
	if !ok {
		t.Fatal("updated outlier record missing from index")
	}
	if row[2].AsFloat() != 99999 {
		t.Errorf("index holds stale value %v", row[2])
	}
}

func TestThresholdHelpers(t *testing.T) {
	d := buildDB(t, 2, 1000, 0)
	lt := d.Table("Log")
	tk, err := TopKThreshold(lt, "bytes", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Roughly 10 records should clear the top-10 threshold.
	n := 0
	idx := lt.Schema().ColIndex("bytes")
	for _, row := range lt.Rows().Rows() {
		if row[idx].AsFloat() > tk {
			n++
		}
	}
	if n < 5 || n > 20 {
		t.Errorf("top-10 threshold %v admits %d records", tk, n)
	}
	sg, err := SigmaThreshold(lt, "bytes", 3)
	if err != nil {
		t.Fatal(err)
	}
	if sg <= 0 {
		t.Errorf("sigma threshold = %v", sg)
	}
	if _, err := TopKThreshold(lt, "zzz", 5); err == nil {
		t.Error("unknown attr should fail")
	}
}

// Push-up ground truth: O must be a subset of S′, and must contain every
// group holding an indexed record.
func TestPushUpAggView(t *testing.T) {
	d := buildDB(t, 3, 2000, 0)
	v, err := view.Materialize(d, trafficDef())
	if err != nil {
		t.Fatal(err)
	}
	stageUpdates(t, d, 3, 2000, 500)
	lt := d.Table("Log")
	thr, _ := TopKThreshold(lt, "bytes", 40)
	ix, _ := NewIndex("Log", "bytes", logSchema(), thr, 40)
	if err := ix.BuildFromTable(lt); err != nil {
		t.Fatal(err)
	}
	mz, err := NewMaterializer(v, ix)
	if err != nil {
		t.Fatal(err)
	}
	o, err := mz.Materialize(d)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() == 0 {
		t.Fatal("no outlier groups materialized")
	}
	// Ground truth S′.
	snap := d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	fresh, err := view.Materialize(snap, trafficDef())
	if err != nil {
		t.Fatal(err)
	}
	truth := fresh.Data()
	keyIdx := truth.Schema().Key()
	for _, row := range o.Fresh.Rows() {
		want, ok := truth.GetByEncodedKey(row.KeyOf(keyIdx))
		if !ok {
			t.Fatalf("outlier row %v not in S′", row)
		}
		if row[1].AsInt() != want[1].AsInt() {
			t.Errorf("outlier group %v count %v, truth %v", row[0], row[1], want[1])
		}
		if estRel := (row[2].AsFloat() - want[2].AsFloat()) / want[2].AsFloat(); estRel > 1e-9 || estRel < -1e-9 {
			t.Errorf("outlier group %v sum %v, truth %v", row[0], row[2], want[2])
		}
	}
	// Every group containing an indexed record must appear.
	vidIdx := logSchema().ColIndex("videoId")
	for _, rec := range ix.Records().Rows() {
		vid := rec[vidIdx]
		if _, ok := o.Fresh.Get(vid); !ok {
			t.Errorf("group %v holds an indexed record but is missing from O", vid)
		}
	}
}

func TestPushUpSPJView(t *testing.T) {
	d := buildDB(t, 5, 1000, 0)
	def := view.Definition{
		Name: "rawLog",
		Plan: algebra.MustSelect(algebra.Scan("Log", logSchema()),
			expr.Gt(expr.Col("bytes"), expr.FloatLit(0))),
	}
	v, err := view.Materialize(d, def)
	if err != nil {
		t.Fatal(err)
	}
	stageUpdates(t, d, 5, 1000, 200)
	lt := d.Table("Log")
	ix, _ := NewIndex("Log", "bytes", logSchema(), 1000, 20)
	if err := ix.BuildFromTable(lt); err != nil {
		t.Fatal(err)
	}
	mz, err := NewMaterializer(v, ix)
	if err != nil {
		t.Fatal(err)
	}
	o, err := mz.Materialize(d)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != ix.Len() {
		t.Fatalf("SPJ push-up: %d rows, index has %d", o.Len(), ix.Len())
	}
}

func TestEligibility(t *testing.T) {
	d := buildDB(t, 7, 500, 0)
	v, err := view.Materialize(d, trafficDef())
	if err != nil {
		t.Fatal(err)
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		t.Fatal(err)
	}
	c, err := clean.New(m, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, _ := NewIndex("Log", "bytes", logSchema(), 1000, 10)
	if !Eligible(c, ix) {
		t.Error("Log is sampled by the cleaner; index should be eligible")
	}
	ixOther, _ := NewIndex("Other", "bytes", logSchema(), 1000, 10)
	if Eligible(c, ixOther) {
		t.Error("unreferenced table should not be eligible")
	}
}

func TestMaterializerRejectsUnrelatedTable(t *testing.T) {
	d := buildDB(t, 9, 200, 0)
	v, err := view.Materialize(d, trafficDef())
	if err != nil {
		t.Fatal(err)
	}
	ix, _ := NewIndex("Other", "bytes", logSchema(), 0, 5)
	if _, err := NewMaterializer(v, ix); err == nil {
		t.Error("materializer over unrelated table should fail")
	}
}

// Integration: the outlier-merged estimator beats the plain sampled
// estimator on this heavy-tailed workload (Figure 8a's mechanism), using
// the real index + push-up rather than a fabricated outlier set.
func TestOutlierPipelineImprovesAccuracy(t *testing.T) {
	var plain, merged float64
	q := estimator.Sum("totalBytes", nil)
	for seed := int64(0); seed < 8; seed++ {
		d := buildDB(t, 100+seed, 3000, 0)
		v, err := view.Materialize(d, trafficDef())
		if err != nil {
			t.Fatal(err)
		}
		m, err := view.NewMaintainer(v)
		if err != nil {
			t.Fatal(err)
		}
		stageUpdates(t, d, 100+seed, 3000, 600)
		c, err := clean.New(m, 0.15, nil)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := c.Clean(d)
		if err != nil {
			t.Fatal(err)
		}
		lt := d.Table("Log")
		thr, _ := TopKThreshold(lt, "bytes", 60)
		ix, _ := NewIndex("Log", "bytes", logSchema(), thr, 60)
		if err := ix.BuildFromTable(lt); err != nil {
			t.Fatal(err)
		}
		if !Eligible(c, ix) {
			t.Fatal("index should be eligible")
		}
		mz, err := NewMaterializer(v, ix)
		if err != nil {
			t.Fatal(err)
		}
		o, err := mz.Materialize(d)
		if err != nil {
			t.Fatal(err)
		}
		snap := d.Snapshot()
		if err := snap.ApplyDeltas(); err != nil {
			t.Fatal(err)
		}
		freshV, err := view.Materialize(snap, trafficDef())
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := estimator.RunExact(freshV.Data(), q)
		p, err := estimator.AQP(samples, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		g, err := estimator.AQPWithOutliers(samples, o, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		plain += estimator.RelativeError(p.Value, truth)
		merged += estimator.RelativeError(g.Value, truth)
	}
	t.Logf("mean rel err over 8 seeds: plain %.4f, outlier-merged %.4f", plain/8, merged/8)
	if merged >= plain {
		t.Errorf("outlier pipeline (%.4f) should beat plain sampling (%.4f)", merged/8, plain/8)
	}
}

// Property: the index never exceeds its limit and always holds the
// largest observed values above the threshold.
func TestIndexInvariantQuick(t *testing.T) {
	f := func(vals []float64, limitRaw uint8) bool {
		limit := 1 + int(limitRaw%16)
		ix, err := NewIndex("Log", "bytes", logSchema(), 50, limit)
		if err != nil {
			return false
		}
		var above []float64
		for i, v := range vals {
			if v != v || v > 1e300 || v < -1e300 { // NaN/Inf guard
				continue
			}
			ix.Observe(relation.Row{relation.Int(int64(i)), relation.Int(0), relation.Float(v)})
			if v > 50 {
				above = append(above, v)
			}
		}
		if ix.Len() > limit {
			return false
		}
		want := len(above)
		if want > limit {
			want = limit
		}
		return ix.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
