package svc

import (
	"errors"
	"fmt"

	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/svcql"
)

// Aggregate identifies a query's aggregate function.
type Aggregate = estimator.Agg

// Aggregate constants with a partial (mergeable) form. The full set of
// aggregates is built through the query constructors (Sum, Count, ...);
// these constants exist so callers handling Partials can switch on
// Partial.Agg without importing internals.
const (
	SumAgg   = estimator.SumQ
	CountAgg = estimator.CountQ
	AvgAgg   = estimator.AvgQ
)

// ErrNotMergeable is returned by the partial query paths for aggregates
// without a partial form (min/max/median/percentile): extremes lose
// their tail bound under composition and quantiles are not sums.
var ErrNotMergeable = errors.New("svc: aggregate is not mergeable across shards")

// MergeableAgg reports whether the aggregate has a partial form.
var MergeableAgg = estimator.Mergeable

// Partial is the mergeable sufficient-statistics form of an estimate —
// see internal/estimator.Partial. A sharded fleet exchanges Partials
// instead of finished estimates so one global CLT interval can be
// composed from per-shard moments.
type Partial = estimator.Partial

// GroupPartials is the mergeable form of a group-by answer.
type GroupPartials = estimator.GroupPartialResult

// MergePartials composes per-shard partials; see estimator.MergePartials.
var MergePartials = estimator.MergePartials

// MergeGroupPartials composes per-shard group partials by group key.
var MergeGroupPartials = estimator.MergeGroupPartials

// PartialAnswer is one shard's contribution to a fleet-wide query: the
// local sufficient statistics plus the epoch they were computed at.
type PartialAnswer struct {
	Partial Partial
	// AsOfEpoch is the pinned catalog epoch the statistics evaluate
	// against — per-shard, since shards maintain independently.
	AsOfEpoch uint64
}

// GroupPartialAnswer is the group-by form of PartialAnswer.
type GroupPartialAnswer struct {
	Groups    GroupPartials
	AsOfEpoch uint64
}

// partialMode resolves the estimator for the sharded partial path. Auto
// resolves to Corr deterministically rather than via Advise: Advise
// inspects the local sample, so shards could disagree and produce
// unmergeable partials (Method mismatch). Corr is the safe fixed choice
// — it dominates AQP whenever the stale view carries signal and equals
// it when the view is empty.
func (sv *StaleView) partialMode() Mode {
	if sv.mode == AQP {
		return AQP
	}
	return Corr
}

// QueryPartial computes this shard's mergeable statistics for an
// aggregate query: the local trans/diff moments and stale baseline,
// evaluated against one pinned catalog version like Query. Only
// sum/count/avg have a partial form; outlier indexes are not folded in
// (the sharded path serves the fleet datasets, which do not attach one).
func (sv *StaleView) QueryPartial(q Query) (PartialAnswer, error) {
	if !estimator.Mergeable(q.Agg) {
		return PartialAnswer{}, fmt.Errorf("%w (got %v)", ErrNotMergeable, q.Agg)
	}
	sv.noteQuery()
	pin, st := sv.pinServing()
	samples, err := sv.cleanPinned(pin, st)
	if err != nil {
		return PartialAnswer{}, err
	}
	var p Partial
	if sv.partialMode() == Corr {
		p, err = estimator.PartialCorr(st.view, samples, q)
	} else {
		p, err = estimator.PartialAQP(samples, q)
	}
	if err != nil {
		return PartialAnswer{}, err
	}
	return PartialAnswer{Partial: p, AsOfEpoch: pin.Epoch()}, nil
}

// QueryGroupsPartial computes per-group mergeable statistics. Groups
// absent from this shard produce no entry; the merge unions group keys.
func (sv *StaleView) QueryGroupsPartial(q Query, groupBy ...string) (GroupPartialAnswer, error) {
	if !estimator.Mergeable(q.Agg) {
		return GroupPartialAnswer{}, fmt.Errorf("%w (got %v)", ErrNotMergeable, q.Agg)
	}
	sv.noteQuery()
	pin, st := sv.pinServing()
	samples, err := sv.cleanPinned(pin, st)
	if err != nil {
		return GroupPartialAnswer{}, err
	}
	var g GroupPartials
	if sv.partialMode() == Corr {
		g, err = estimator.GroupPartialCorr(st.view, samples, q, groupBy)
	} else {
		g, err = estimator.GroupPartialAQP(samples, q, groupBy)
	}
	if err != nil {
		return GroupPartialAnswer{}, err
	}
	return GroupPartialAnswer{Groups: g, AsOfEpoch: pin.Epoch()}, nil
}

// QueryPartialSQL is QueryPartial over the paper's SQL dialect.
func (sv *StaleView) QueryPartialSQL(sql string) (PartialAnswer, error) {
	aq, err := svcql.PlanQuery(sv.view, sql)
	if err != nil {
		return PartialAnswer{}, err
	}
	if len(aq.GroupBy) > 0 {
		return PartialAnswer{}, fmt.Errorf("svc: query has GROUP BY; use QueryGroupsPartialSQL")
	}
	return sv.QueryPartial(aq.Query)
}

// QueryGroupsPartialSQL is QueryGroupsPartial over SQL.
func (sv *StaleView) QueryGroupsPartialSQL(sql string) (GroupPartialAnswer, error) {
	aq, err := svcql.PlanQuery(sv.view, sql)
	if err != nil {
		return GroupPartialAnswer{}, err
	}
	return sv.QueryGroupsPartial(aq.Query, aq.GroupBy...)
}
