package shard

import (
	"math"
	"testing"

	"github.com/sampleclean/svc/internal/relation"
)

// TestHashJSONCanonicalEquality is the wire contract: a JSON-decoded key
// tuple must hash identically to the engine-side values it coerces to,
// or routers and shards would disagree on ownership.
func TestHashJSONCanonicalEquality(t *testing.T) {
	cases := []struct {
		name   string
		engine []relation.Value
		json   []any
	}{
		{"int", []relation.Value{relation.Int(5)}, []any{float64(5)}},
		{"negative int", []relation.Value{relation.Int(-17)}, []any{float64(-17)}},
		{"zero", []relation.Value{relation.Int(0)}, []any{float64(0)}},
		{"large int", []relation.Value{relation.Int(1 << 40)}, []any{float64(1 << 40)}},
		{"fractional float", []relation.Value{relation.Float(2.5)}, []any{2.5}},
		{"string", []relation.Value{relation.String("abc")}, []any{"abc"}},
		{"bool", []relation.Value{relation.Bool(true)}, []any{true}},
		{"null", []relation.Value{relation.Null()}, []any{nil}},
		{"composite", []relation.Value{relation.Int(7), relation.String("x"), relation.Float(1.25)},
			[]any{float64(7), "x", 1.25}},
	}
	for _, c := range cases {
		hv := HashValues(c.engine...)
		hj, err := HashJSON(c.json)
		if err != nil {
			t.Fatalf("%s: HashJSON: %v", c.name, err)
		}
		if hv != hj {
			t.Errorf("%s: HashValues=%#x HashJSON=%#x", c.name, hv, hj)
		}
	}
	// An integral engine-side float must land where the integer lives
	// too (both may appear in staged rows for the same column).
	if HashValues(relation.Float(5)) != HashValues(relation.Int(5)) {
		t.Error("integral Float(5) does not hash like Int(5)")
	}
	if _, err := HashJSON([]any{map[string]any{}}); err == nil {
		t.Error("HashJSON accepted an unhashable value")
	}
}

// TestHashDiscriminates: distinct keys should hash apart (not a
// collision-freedom proof, a sanity check that the kind tags and
// encodings actually feed the hash).
func TestHashDiscriminates(t *testing.T) {
	pairs := [][2][]relation.Value{
		{{relation.Int(1)}, {relation.Int(2)}},
		{{relation.Int(1)}, {relation.String("1")}},
		{{relation.Bool(false)}, {relation.Int(0)}},
		{{relation.Null()}, {relation.String("")}},
		{{relation.Float(2.5)}, {relation.Float(2.25)}},
		{{relation.Int(1), relation.Int(2)}, {relation.Int(2), relation.Int(1)}},
	}
	for _, p := range pairs {
		if HashValues(p[0]...) == HashValues(p[1]...) {
			t.Errorf("HashValues(%v) == HashValues(%v)", p[0], p[1])
		}
	}
	// Non-integral floats keep their own encoding (no truncation to int).
	if HashValues(relation.Float(5.5)) == HashValues(relation.Int(5)) {
		t.Error("Float(5.5) collided with Int(5)")
	}
	if HashValues(relation.Float(math.NaN())) == HashValues(relation.Int(0)) {
		t.Error("NaN collided with Int(0)")
	}
}

// TestSeedStability pins the placement hash for a few keys. The seed and
// encoding are the fleet's wire contract: a change re-partitions every
// deployed cluster, so it must show up as a test diff, not silently.
func TestSeedStability(t *testing.T) {
	if Seed != 0x5ca1ab1e0ddba11 {
		t.Fatalf("placement seed changed: %#x", Seed)
	}
	pl := Videolog(4)
	// Golden assignment of videoIds 0..7 at count=4 under the fixed seed,
	// captured from the shipped implementation. A mismatch means the hash
	// or encoding changed and every deployed fleet would re-partition.
	want := []int{0, 1, 3, 2, 2, 0, 2, 1}
	for i, w := range want {
		if got := pl.ShardOf(HashValues(relation.Int(int64(i)))); got != w {
			t.Fatalf("ShardOf(videoId %d) = %d, golden %d — placement hash changed", i, got, w)
		}
	}
	if got := HashValues(relation.Int(0), relation.String("x")); got != 0xa3abace2b2a098c7 {
		t.Fatalf("composite hash changed: %#x", got)
	}
}

// TestOwnsPartitionIsExact: every row of a partitioned table is owned by
// exactly one shard; replicated tables are owned by all.
func TestOwnsPartitionIsExact(t *testing.T) {
	for _, count := range []int{1, 2, 3, 5, 8} {
		pl := Videolog(count)
		for i := int64(0); i < 200; i++ {
			row := relation.Row{relation.Int(i * 31), relation.Int(i)} // Log(sessionId, videoId)
			owned := 0
			for id := 0; id < count; id++ {
				if pl.Owns("Log", row, id) {
					owned++
				}
			}
			if owned != 1 {
				t.Fatalf("count=%d: Log row with videoId %d owned by %d shards", count, i, owned)
			}
		}
		// Replicated table: everyone owns it.
		for id := 0; id < count; id++ {
			if !pl.Owns("customer", relation.Row{relation.Int(1)}, id) {
				t.Fatalf("count=%d: replicated table not owned by shard %d", count, id)
			}
		}
	}
}

// TestCoPartitioning: Log and Video rows for the same videoId land on
// the same shard — the invariant that keeps every view key whole on one
// shard (and the same for lineitem/orders by order key).
func TestCoPartitioning(t *testing.T) {
	pl := Videolog(5)
	for v := int64(0); v < 300; v++ {
		logRow := relation.Row{relation.Int(v * 997), relation.Int(v)}
		videoRow := relation.Row{relation.Int(v), relation.Int(3), relation.Float(1.5)}
		ls, _ := pl.RowShard("Log", logRow)
		vs, _ := pl.RowShard("Video", videoRow)
		if ls != vs {
			t.Fatalf("videoId %d: Log on shard %d, Video on shard %d", v, ls, vs)
		}
	}
	tp := TPCD(5)
	for o := int64(0); o < 300; o++ {
		li := relation.Row{relation.Int(o), relation.Int(1)}
		or := relation.Row{relation.Int(o), relation.Int(2)}
		ls, _ := tp.RowShard("lineitem", li)
		os, _ := tp.RowShard("orders", or)
		if ls != os {
			t.Fatalf("orderkey %d: lineitem on shard %d, orders on shard %d", o, ls, os)
		}
	}
}

func TestByDataset(t *testing.T) {
	for _, name := range []string{"videolog", "tpcd"} {
		pl, err := ByDataset(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Count != 3 || len(pl.Tables) == 0 || len(pl.Views) == 0 {
			t.Fatalf("%s placement incomplete: %+v", name, pl)
		}
	}
	if _, err := ByDataset("nope", 3); err == nil {
		t.Fatal("ByDataset accepted an unknown dataset")
	}
	// Single-shard and zero-shard placements degenerate to shard 0.
	pl := Videolog(1)
	if pl.ShardOf(12345) != 0 {
		t.Fatal("count=1 placement must map everything to shard 0")
	}
}
