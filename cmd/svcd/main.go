// Command svcd is the SVC serving daemon: it loads a synthetic dataset,
// materializes views from svcql text, and serves svcql over HTTP/JSON
// while a background refresher keeps folding staged updates in.
//
// Usage:
//
//	svcd                                # videolog dataset on 127.0.0.1:7781
//	svcd -dataset tpcd -scale 0.5
//	svcd -addr :8080 -churn 500        # stage ~500 updates/sec while serving
//
// Then:
//
//	curl -s localhost:7781/query -d '{"sql":"SELECT SUM(visitCount) FROM visitView"}'
//	curl -s localhost:7781/stats
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight queries
// drain before the background refreshers stop.
package main

import (
	"context"
	"flag"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7781", "listen address")
		dataset  = flag.String("dataset", "videolog", "dataset to load and serve: videolog | tpcd")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		refresh  = flag.Duration("refresh", 50*time.Millisecond, "background refresh interval")
		inflight = flag.Int("max-inflight", 64, "admission control: max concurrently executing queries")
		deadline = flag.Duration("deadline", 5*time.Second, "default per-query deadline")
		maxRows  = flag.Int("max-rows", 1000, "row cap for base-table SELECT responses")
		parallel = flag.Int("parallel", 0, "intra-operator workers (0 = serial)")
		ratio    = flag.Float64("ratio", 0.1, "SVC sampling ratio for served views")
		churn    = flag.Int("churn", 0, "staged updates per second while serving (0 = none)")
	)
	flag.Parse()

	cfg := server.Config{
		Addr:            *addr,
		MaxInFlight:     *inflight,
		DefaultDeadline: *deadline,
		MaxRows:         *maxRows,
		SamplingRatio:   *ratio,
		Refresh:         *refresh,
	}

	var (
		d        *svc.Database
		viewSQL  []string
		churnFn  func() error
		examples []string
	)
	switch *dataset {
	case "videolog":
		d, viewSQL, churnFn = videolog(*scale)
		examples = []string{
			`{"sql":"SELECT SUM(visitCount) FROM visitView"}`,
			`{"sql":"SELECT ownerId, SUM(visitCount) FROM visitView GROUP BY ownerId"}`,
			`{"sql":"SELECT videoId, duration FROM Video WHERE duration > 2.5"}`,
		}
	case "tpcd":
		d, viewSQL, churnFn = tpcdDataset(*scale)
		examples = []string{
			`{"sql":"SELECT SUM(l_extendedprice) FROM joinView WHERE o_orderdate < 180"}`,
			`{"sql":"SELECT o_orderpriority, COUNT(1) FROM joinView GROUP BY o_orderpriority"}`,
		}
	default:
		log.Fatalf("unknown -dataset %q (want videolog or tpcd)", *dataset)
	}
	if *parallel > 0 {
		d.SetParallelism(*parallel)
	}

	srv := server.New(d, cfg)
	for _, sql := range viewSQL {
		sv, err := srv.CreateView(sql)
		if err != nil {
			log.Fatalf("create view: %v", err)
		}
		log.Printf("serving view %s (%d rows, %s maintenance)",
			sv.View().Name(), sv.View().Data().Len(), sv.Maintainer().Kind())
	}
	if err := srv.Start(); err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("svcd listening on http://%s (dataset=%s scale=%g refresh=%v)",
		srv.Addr(), *dataset, *scale, *refresh)
	for _, ex := range examples {
		log.Printf("  try: curl -s %s/query -d '%s'", srv.Addr(), ex)
	}

	stopChurn := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		if *churn <= 0 || churnFn == nil {
			return
		}
		tick := time.NewTicker(time.Second / time.Duration(*churn))
		defer tick.Stop()
		for {
			select {
			case <-stopChurn:
				return
			case <-tick.C:
				if err := churnFn(); err != nil {
					log.Printf("churn: %v", err)
					return
				}
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: draining in-flight queries, then stopping refreshers")
	close(stopChurn)
	<-churnDone
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("bye")
}

// videolog builds the paper's running example: a Video catalog, a visit
// Log, and the visit-count view — defined in svcql, so the whole serving
// path exercises the dialect.
func videolog(scale float64) (*svc.Database, []string, func() error) {
	videos := scaled(scale, 400)
	visits := scaled(scale, 30_000)
	rng := rand.New(rand.NewSource(1))
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(50)), svc.Float(rng.Float64() * 3)})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(int64(videos)))})
	}
	next := int64(visits + 1_000_000)
	churn := func() error {
		next++
		return logT.StageInsert(svc.Row{svc.Int(next), svc.Int(next % int64(videos))})
	}
	viewSQL := `CREATE VIEW visitView AS
SELECT videoId, ownerId, COUNT(1) AS visitCount, SUM(duration) AS totalDuration
FROM Log JOIN Video ON Log.videoId = Video.videoId
GROUP BY videoId, ownerId`
	return d, []string{viewSQL}, churn
}

// tpcdDataset generates the scaled TPC-D-like substrate and serves the
// Section 7.2 join view from its svcql text.
func tpcdDataset(scale float64) (*svc.Database, []string, func() error) {
	cfg := tpcd.DefaultConfig()
	cfg.Orders = scaled(scale, cfg.Orders)
	cfg.Customers = scaled(scale, cfg.Customers)
	cfg.Suppliers = scaled(scale, cfg.Suppliers)
	cfg.Parts = scaled(scale, cfg.Parts)
	g := tpcd.NewGenerator(cfg)
	d, err := g.Generate()
	if err != nil {
		log.Fatalf("tpcd generate: %v", err)
	}
	churn := func() error {
		// Stage a small refresh batch (TPC-D refresh model: new orders
		// plus lineitem updates).
		return g.StageUpdates(d, 0.0005)
	}
	return d, []string{tpcd.JoinViewSQL}, churn
}

func scaled(s float64, n int) int {
	v := int(float64(n) * s)
	if v < 20 {
		v = 20
	}
	return v
}
