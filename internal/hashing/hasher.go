package hashing

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Hasher maps an encoded key to a deterministic point in [0,1).
type Hasher interface {
	// Unit returns a value in [0,1) that depends only on key.
	Unit(key []byte) float64
	// Name identifies the hasher in benchmark output.
	Name() string
}

// unitFromUint64 maps a 64-bit hash to [0,1) using the top 53 bits so the
// conversion to float64 is exact.
func unitFromUint64(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// FNV is a fast non-cryptographic hasher: FNV-1a (64-bit) followed by a
// SplitMix64 avalanche finalizer (Mix64) for uniform high bits. Without
// the finalizer, FNV-1a over sequential integer keys deviates from
// uniformity by several percent — enough to bias every 1/m-scaled
// estimate (see the uniformity test and the hashing ablation benchmark).
type FNV struct{}

// Unit implements Hasher.
func (FNV) Unit(key []byte) float64 {
	h := fnv.New64a()
	h.Write(key)
	return unitFromUint64(Mix64(h.Sum64()))
}

// Name implements Hasher.
func (FNV) Name() string { return "fnv64a" }

// Linear is a deliberately simple multiplicative hash without avalanche
// finalization — the "linear hash" end of the paper's Appendix 12.3
// trade-off. It is fast but measurably non-uniform on structured keys; it
// exists for the uniformity/speed ablation and should not be used for
// estimation.
type Linear struct{}

// Unit implements Hasher.
func (Linear) Unit(key []byte) float64 {
	var h uint64 = 0xcbf29ce484222325
	for _, b := range key {
		h = h*31 + uint64(b)
	}
	return unitFromUint64(h)
}

// Name implements Hasher.
func (Linear) Name() string { return "linear" }

// SHA1 is a cryptographic hasher; slower but closest to ideal uniformity.
type SHA1 struct{}

// Unit implements Hasher.
func (SHA1) Unit(key []byte) float64 {
	sum := sha1.Sum(key)
	return unitFromUint64(binary.BigEndian.Uint64(sum[:8]))
}

// Name implements Hasher.
func (SHA1) Name() string { return "sha1" }

// Default is the hasher used when none is specified.
var Default Hasher = FNV{}

// Salted wraps a hasher with a salt, modeling an independent draw from the
// hash family: different salts give statistically independent samples of
// the same data. SVC itself wants determinism (the Correspondence property
// needs the same hash on both sides of a cleaning), but variance studies —
// like the Appendix 12.5 sample-size analysis — need replications.
type Salted struct {
	// Salt distinguishes the draw.
	Salt uint64
	// Base is the underlying hasher (nil means Default).
	Base Hasher
}

// Unit implements Hasher.
func (s Salted) Unit(key []byte) float64 {
	base := s.Base
	if base == nil {
		base = Default
	}
	salted := make([]byte, 8+len(key))
	binary.BigEndian.PutUint64(salted, s.Salt)
	copy(salted[8:], key)
	return base.Unit(salted)
}

// Name implements Hasher.
func (s Salted) Name() string {
	base := s.Base
	if base == nil {
		base = Default
	}
	return fmt.Sprintf("%s+salt", base.Name())
}
