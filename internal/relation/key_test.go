package relation

import (
	"math"
	"math/rand"
	"testing"
)

// keyTestValues is a corpus of values chosen to attack the encoding's
// injectivity: cross-kind numeric equality, float bit patterns, strings
// containing the escape bytes and encodings of other values.
func keyTestValues() []Value {
	return []Value{
		Null(),
		Int(0), Int(1), Int(-1), Int(2), Int(10), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(math.Copysign(0, -1)), Float(1), Float(2), Float(-1),
		Float(math.NaN()), Float(math.Inf(1)), Float(math.Inf(-1)), Float(0.1),
		Bool(true), Bool(false),
		String(""), String("a"), String("ab"), String("b"),
		String("i2"), String("n"), String("b1"), // encodings of other values
		String("a\x00b"), String("a\x01b"), String("\x00"), String("\x01\x01"),
		String("f3ff0000000000000"),
	}
}

// TestKeyEqualMatchesEncoding checks the core invariant of the
// zero-allocation pipeline: KeyEqual agrees exactly with equality of the
// canonical encodings, for every pair of corpus values.
func TestKeyEqualMatchesEncoding(t *testing.T) {
	vals := keyTestValues()
	for i, a := range vals {
		for j, b := range vals {
			encEq := string(a.Encode()) == string(b.Encode())
			if got := a.KeyEqual(b); got != encEq {
				t.Errorf("vals[%d].KeyEqual(vals[%d]) = %v, encoding equality = %v (%v vs %v)",
					i, j, got, encEq, a, b)
			}
		}
	}
}

// TestKeyEqualStricterThanEqual pins the deliberate difference between
// row identity (KeyEqual) and SQL value equality (Equal): cross-kind
// numerics are Equal but never KeyEqual.
func TestKeyEqualStricterThanEqual(t *testing.T) {
	if !Int(2).Equal(Float(2)) {
		t.Fatal("Int(2).Equal(Float(2)) should hold (cross-numeric Equal)")
	}
	if Int(2).KeyEqual(Float(2)) {
		t.Error("Int(2).KeyEqual(Float(2)) must be false: their encodings differ")
	}
	if Float(0).KeyEqual(Float(math.Copysign(0, -1))) {
		t.Error("0.0 and -0.0 must stay distinct keys")
	}
	if !Float(math.NaN()).KeyEqual(Float(math.NaN())) {
		t.Error("NaN must equal NaN as a key (bit-pattern identity)")
	}
}

// TestHashColsConsistentWithEncoding checks, over every pair of corpus
// rows: equal encodings imply equal hashes under several seeds, and
// KeyEqualCols agrees with encoded-key equality at the row level.
func TestHashColsConsistentWithEncoding(t *testing.T) {
	vals := keyTestValues()
	var rows []Row
	for _, a := range vals {
		for _, b := range vals {
			rows = append(rows, Row{a, b})
		}
	}
	idx := []int{0, 1}
	seeds := []uint64{0, 1, 0x53564331, ^uint64(0)}
	for i, ra := range rows {
		for j, rb := range rows {
			encEq := ra.KeyOf(idx) == rb.KeyOf(idx)
			if got := ra.KeyEqualCols(idx, rb, idx); got != encEq {
				t.Fatalf("rows[%d].KeyEqualCols(rows[%d]) = %v, want %v", i, j, got, encEq)
			}
			if encEq {
				for _, s := range seeds {
					if ra.HashCols(idx, s) != rb.HashCols(idx, s) {
						t.Fatalf("equal-encoded rows %d,%d hash differently under seed %#x", i, j, s)
					}
				}
			}
		}
	}
}

// TestKeyInjectivityRandomized drives the same invariants with random
// rows: distinct encodings never collide in KeyEqualCols, and the
// boundary-confusion classics (("ab","c") vs ("a","bc")) stay distinct.
func TestKeyInjectivityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randVal := func() Value {
		switch rng.Intn(5) {
		case 0:
			return Null()
		case 1:
			return Int(rng.Int63n(64) - 32)
		case 2:
			return Float(float64(rng.Intn(8)) / 2)
		case 3:
			return Bool(rng.Intn(2) == 0)
		default:
			letters := []byte("ab\x00\x01")
			n := rng.Intn(4)
			s := make([]byte, n)
			for i := range s {
				s[i] = letters[rng.Intn(len(letters))]
			}
			return String(string(s))
		}
	}
	idx := []int{0, 1, 2}
	byEncoding := map[string]Row{}
	for trial := 0; trial < 5000; trial++ {
		row := Row{randVal(), randVal(), randVal()}
		enc := row.KeyOf(idx)
		if prev, ok := byEncoding[enc]; ok {
			if !prev.KeyEqualCols(idx, row, idx) {
				t.Fatalf("encoding collision without key equality: %v vs %v", prev, row)
			}
			if prev.HashCols(idx, 42) != row.HashCols(idx, 42) {
				t.Fatalf("equal-encoded rows hash differently: %v vs %v", prev, row)
			}
		} else {
			byEncoding[enc] = row.Clone()
		}
	}
	// Sanity: the corpus actually produced distinct keys.
	if len(byEncoding) < 100 {
		t.Fatalf("corpus too degenerate: %d distinct keys", len(byEncoding))
	}
	// Boundary confusion between adjacent string columns.
	a := Row{String("ab"), String("c"), Null()}
	b := Row{String("a"), String("bc"), Null()}
	if a.KeyEqualCols(idx, b, idx) || a.KeyOf(idx) == b.KeyOf(idx) {
		t.Error(`("ab","c") and ("a","bc") must be distinct composite keys`)
	}
}

// FuzzValueEncoding fuzzes string payloads through the full invariant
// chain: encode, compare, hash.
func FuzzValueEncoding(f *testing.F) {
	f.Add("", "")
	f.Add("a", "a")
	f.Add("a\x00b", "a\x01b")
	f.Add("ab", "a")
	f.Fuzz(func(t *testing.T, s1, s2 string) {
		a, b := Row{String(s1)}, Row{String(s2)}
		idx := []int{0}
		encEq := a.KeyOf(idx) == b.KeyOf(idx)
		if encEq != (s1 == s2) {
			t.Fatalf("encoding of %q and %q: equality %v, want %v", s1, s2, encEq, s1 == s2)
		}
		if a.KeyEqualCols(idx, b, idx) != encEq {
			t.Fatalf("KeyEqualCols disagrees with encoding for %q vs %q", s1, s2)
		}
		if encEq && a.HashCols(idx, 3) != b.HashCols(idx, 3) {
			t.Fatalf("equal strings hash differently: %q", s1)
		}
	})
}

// BenchmarkKeyOf contrasts the allocating string key with the reusable
// KeyBuf encoding and the 64-bit no-encoding fast path.
func BenchmarkKeyOf(b *testing.B) {
	row := Row{Int(123456), String("benchmark-key-payload"), Float(3.25)}
	idx := []int{0, 1, 2}
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = row.KeyOf(idx)
		}
	})
	b.Run("keybuf", func(b *testing.B) {
		b.ReportAllocs()
		var kb KeyBuf
		for i := 0; i < b.N; i++ {
			_ = kb.Row(row, idx)
		}
	})
	b.Run("hash64", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= row.HashCols(idx, 42)
		}
		_ = sink
	})
}
