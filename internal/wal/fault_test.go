package wal

import (
	"fmt"
	"sync"
	"testing"

	"github.com/sampleclean/svc/internal/relation"
)

// TestCrashMatrixRecovery is the fault-injection harness: it runs one
// scripted workload (stages, maintenance boundaries, segment rotations,
// a checkpoint + compaction) over the failpoint filesystem, snapshotting
// the durable disk image immediately BEFORE every mutating FS operation —
// i.e. simulating a SIGKILL at every write/fsync/rename/remove/dirsync
// boundary the log crosses. Each snapshot is then opened and recovered
// into a fresh seed catalog, which must equal the exact catalog state
// after some whole acknowledged prefix of the workload: k acknowledged
// actions, or k+1 when the crash fell between an action's fsync and its
// acknowledgment. Anything else is a lost acknowledged record, a torn
// record surfacing, or a double-apply.
func TestCrashMatrixRecovery(t *testing.T) {
	fs := NewMemFS()
	var snapMu sync.Mutex
	var snaps []*MemFS // snaps[n-1] = durable state before op n
	fs.OnOp(func(n int, op string) {
		snapMu.Lock()
		defer snapMu.Unlock()
		snaps = append(snaps, fs.CrashClone())
	})
	// Tiny segments and a 1-byte checkpoint threshold force rotation,
	// checkpointing, and compaction inside a short workload.
	opt := Options{SyncInterval: SyncEachCommit, SegmentBytes: 200, CheckpointBytes: 1, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	d := seedDB(t)
	if _, err := l.Recover(d); err != nil {
		t.Fatal(err)
	}
	l.Attach(d)
	kv := d.Table("kv")

	// states[i] = exact catalog fingerprint after i acknowledged actions;
	// ackedAt[i-1] = FS op counter when action i was acknowledged.
	states := []string{fingerprint(d)}
	var ackedAt []int
	act := func(fn func() error) {
		t.Helper()
		if err := fn(); err != nil {
			t.Fatal(err)
		}
		ackedAt = append(ackedAt, fs.Ops())
		states = append(states, fingerprint(d))
	}

	for i := 0; i < 6; i++ {
		i := i
		act(func() error { return kv.StageInsert(kvRow(int64(100+i), fmt.Sprintf("a%d", i), float64(i))) })
	}
	act(d.ApplyDeltas)
	act(func() error { return kv.StageUpdate(kvRow(1, "round2", -1)) })
	act(func() error { return kv.StageDelete(relation.Int(2)) })
	act(func() error { return kv.StageInsert(kvRow(110, "round2b", 2.5)) })
	act(func() error { return kv.StageDelete(relation.Int(103)) })
	act(d.ApplyDeltas)
	act(func() error { return kv.StageUpdate(kvRow(110, "round3", 3.5)) })
	act(func() error { return kv.StageInsert(kvRow(120, "round3b", 0)) })
	act(d.ApplyDeltas)
	// Trailing pending records that no boundary ever folds.
	act(func() error { return kv.StageInsert(kvRow(130, "tail", 9)) })
	act(func() error { return kv.StageUpdate(kvRow(5, "tail-upd", 9)) })
	act(func() error { return kv.StageDelete(relation.Int(6)) })

	l.Kill()
	fs.OnOp(nil)
	snapMu.Lock()
	crashes := snaps
	snapMu.Unlock()
	if len(crashes) < 40 {
		t.Fatalf("workload crossed only %d FS boundaries; expected a richer matrix", len(crashes))
	}
	if s := l.Stats(); s.Checkpoints < 1 {
		t.Fatalf("workload never checkpointed (stats %+v); matrix misses those boundaries", s)
	}

	for p := 1; p <= len(crashes); p++ {
		clone := crashes[p-1]
		k := 0
		for k < len(ackedAt) && ackedAt[k] < p {
			k++
		}
		l2, err := Open("wal", Options{SyncInterval: SyncEachCommit, FS: clone})
		if err != nil {
			t.Fatalf("crash before op %d: reopen: %v", p, err)
		}
		d2 := seedDB(t)
		if _, err := l2.Recover(d2); err != nil {
			t.Fatalf("crash before op %d: recover: %v", p, err)
		}
		got := fingerprint(d2)
		switch {
		case got == states[k]:
		case k+1 < len(states) && got == states[k+1]:
			// The in-flight action's record hit the disk before the crash
			// but its acknowledgment never returned: durable-but-unacked
			// is allowed, the converse is not.
		default:
			t.Fatalf("crash before op %d: recovered state matches neither %d nor %d acked actions\nrecovered:\n%s\nacked k:\n%s",
				p, k, k+1, got, states[k])
		}
		l2.Close()
	}
}

// TestCrashMatrixTornTailDoubleRestart re-runs crash snapshots on a disk
// that persisted part of the unsynced tail (CrashCloneTorn: the tear lands
// mid-frame, not on a record boundary), then takes every snapshot through
// a full second generation: recover, append, crash again, recover again.
// The first Open must tolerate — and truncate — the torn bytes; the second
// must still succeed (torn bytes left in place would sit before the new
// generation's segment and read as mid-log corruption) with the appended
// record intact. Recovered state may run AHEAD of the acked count (the
// disk persisted frames the process never saw fsync'd: durable-but-unacked
// is allowed) but never behind it, and always lands on a whole-action
// boundary.
func TestCrashMatrixTornTailDoubleRestart(t *testing.T) {
	fs := NewMemFS()
	var snapMu sync.Mutex
	type tornSnap struct {
		fs *MemFS
		op int // FS op counter the crash precedes
	}
	var snaps []tornSnap
	fs.OnOp(func(n int, op string) {
		snapMu.Lock()
		defer snapMu.Unlock()
		for _, extra := range []int{1, 7, 16} {
			snaps = append(snaps, tornSnap{fs: fs.CrashCloneTorn(extra), op: n})
		}
	})
	opt := Options{SyncInterval: SyncEachCommit, SegmentBytes: 200, FS: fs}
	l, err := Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	d := seedDB(t)
	if _, err := l.Recover(d); err != nil {
		t.Fatal(err)
	}
	l.Attach(d)
	kv := d.Table("kv")

	states := []string{fingerprint(d)}
	var ackedAt []int
	act := func(fn func() error) {
		t.Helper()
		if err := fn(); err != nil {
			t.Fatal(err)
		}
		ackedAt = append(ackedAt, fs.Ops())
		states = append(states, fingerprint(d))
	}
	for i := 0; i < 3; i++ {
		i := i
		act(func() error { return kv.StageInsert(kvRow(int64(200+i), fmt.Sprintf("t%d", i), float64(i))) })
	}
	act(d.ApplyDeltas)
	act(func() error { return kv.StageUpdate(kvRow(1, "torn2", -1)) })
	act(func() error { return kv.StageDelete(relation.Int(2)) })
	act(func() error { return kv.StageInsert(kvRow(210, "torn2b", 2.5)) })
	act(d.ApplyDeltas)
	act(func() error { return kv.StageInsert(kvRow(220, "tail", 9)) })

	l.Kill()
	fs.OnOp(nil)
	snapMu.Lock()
	crashes := snaps
	snapMu.Unlock()

	for _, sn := range crashes {
		k := 0
		for k < len(ackedAt) && ackedAt[k] < sn.op {
			k++
		}
		l2, err := Open("wal", Options{SyncInterval: SyncEachCommit, FS: sn.fs})
		if err != nil {
			t.Fatalf("crash before op %d: torn reopen: %v", sn.op, err)
		}
		d2 := seedDB(t)
		if _, err := l2.Recover(d2); err != nil {
			t.Fatalf("crash before op %d: recover: %v", sn.op, err)
		}
		got := fingerprint(d2)
		idx := -1
		for j, s := range states {
			if s == got {
				idx = j
				break
			}
		}
		if idx < k {
			t.Fatalf("crash before op %d: recovered state matches %d acked actions, want ≥ %d\nrecovered:\n%s",
				sn.op, idx, k, got)
		}
		// Second generation: append past the (truncated) tear, crash, and
		// reopen — the regression shape that used to brick the log.
		l2.Attach(d2)
		if err := d2.Table("kv").StageInsert(kvRow(990, "second-gen", 1)); err != nil {
			t.Fatalf("crash before op %d: second-generation append: %v", sn.op, err)
		}
		want := fingerprint(d2)
		l2.Kill()
		l3, err := Open("wal", Options{SyncInterval: SyncEachCommit, FS: sn.fs.CrashClone()})
		if err != nil {
			t.Fatalf("crash before op %d: reopen after second generation: %v", sn.op, err)
		}
		d3 := seedDB(t)
		if _, err := l3.Recover(d3); err != nil {
			t.Fatalf("crash before op %d: second recover: %v", sn.op, err)
		}
		if got := fingerprint(d3); got != want {
			t.Fatalf("crash before op %d: second recovery diverged\nlive:\n%s\nrecovered:\n%s", sn.op, want, got)
		}
		l3.Close()
	}
}

// TestFailpointErrorsSurface walks injected I/O failures across each
// distinct operation kind and checks the failure always surfaces to the
// writer (no silent ack) and poisons the log.
func TestFailpointErrorsSurface(t *testing.T) {
	// Op 1 is the segment create, 2 the header write, 3 the directory
	// sync, 4 the record write, 5 the fsync.
	for failOp := 1; failOp <= 5; failOp++ {
		fs := NewMemFS()
		inj := fmt.Errorf("injected failure at op %d", failOp)
		fs.FailAt(failOp, inj)
		l, err := Open("wal", Options{SyncInterval: SyncEachCommit, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		d := seedDB(t)
		l.Attach(d)
		kv := d.Table("kv")
		if err := kv.StageInsert(kvRow(100, "x", 0)); err == nil {
			t.Fatalf("failpoint %d: staging acked despite injected I/O failure", failOp)
		}
		if err := kv.StageInsert(kvRow(101, "y", 0)); err == nil {
			t.Fatalf("failpoint %d: log not poisoned after I/O failure", failOp)
		}
		l.Close()
	}
}
