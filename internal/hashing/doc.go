// Package hashing provides the deterministic hash functions behind the
// paper's sampling operator η (Section 4.4): a function mapping a tuple of
// key values to [0,1) so that "hash(key) < m" selects an approximately
// uniform m-fraction of rows, deterministically.
//
// Determinism is what buys the Correspondence property (paper Section 4.6
// and Proposition 2): hashing the same primary key in the stale view and in
// the up-to-date view selects the same rows, so the two samples are
// positively correlated and SVC+CORR can estimate the *change* with low
// variance.
//
// Two hashers are provided, mirroring the paper's discussion (Appendix
// 12.3) of the latency/uniformity trade-off: a fast FNV-64 hasher (the
// "linear hash" end of the spectrum) and a SHA-1 hasher (the cryptographic
// end). Both satisfy the Simple Uniform Hashing Assumption well enough for
// the estimators; the benchmark suite includes the uniformity/speed
// ablation.
//
// Concurrency contract: hashers are stateless (or hold only immutable
// seed material) and safe for unrestricted concurrent use.
package hashing
