package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/server/api"
)

// handleIngest is POST /ingest: stream staged mutations into a base
// table. Each op goes through the same staging calls the embedded API
// uses, so when the database has a durable log attached the op is on disk
// (group-committed and fsynced) before the response acknowledges it.
//
// Backpressure: when the durable log's unsynced/unapplied depth exceeds
// its bound, the whole batch is shed with 503 + Retry-After before any op
// is staged — a fast retryable rejection instead of a stalled connection.
// A batch admitted past that check may still block briefly inside a
// staging call (the log's Admit gate); that is the intended throttle for
// moderate overload.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body to /ingest")
		return
	}
	var req api.IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	t := s.d.Table(req.Table)
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown table %q", req.Table)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "empty ops")
		return
	}
	lg := svc.DurableLogOf(s.d)
	if lg != nil && lg.Shed() {
		s.ingestShed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"durable log over its depth bound; retry after maintenance catches up")
		return
	}

	schema := t.Schema()
	staged := 0
	for i, op := range req.Ops {
		if err := stageOne(t, schema, op); err != nil {
			s.ingested.Add(uint64(staged))
			writeError(w, ingestStatus(err), "op %d: %v (%d earlier ops staged)", i, err, staged)
			return
		}
		staged++
	}
	s.ingested.Add(uint64(staged))
	resp := &api.IngestResponse{Staged: staged}
	if lg != nil {
		resp.Durable = true
		resp.DurableSeq = lg.Stats().SyncedSeq
	}
	writeJSON(w, http.StatusOK, resp)
}

// stageOne validates, coerces, and stages one mutation.
func stageOne(t *svc.Table, schema relation.Schema, op api.IngestOp) error {
	switch op.Op {
	case "insert", "update":
		row, err := coerceRow(schema.Cols(), op.Row)
		if err != nil {
			return err
		}
		if op.Op == "insert" {
			return t.StageInsert(row)
		}
		return t.StageUpdate(row)
	case "delete":
		keyIdx := schema.Key()
		if len(op.Key) != len(keyIdx) {
			return fmt.Errorf("key has %d values, primary key has %d columns", len(op.Key), len(keyIdx))
		}
		key := make([]relation.Value, len(keyIdx))
		for i, idx := range keyIdx {
			v, err := coerceValue(schema.Cols()[idx], op.Key[i])
			if err != nil {
				return err
			}
			key[i] = v
		}
		return t.StageDelete(key...)
	default:
		return fmt.Errorf("unknown op %q (want insert, update, or delete)", op.Op)
	}
}

func coerceRow(cols []relation.Column, vals []any) (relation.Row, error) {
	if len(vals) != len(cols) {
		return nil, fmt.Errorf("row has %d values, schema has %d columns", len(vals), len(cols))
	}
	row := make(relation.Row, len(cols))
	for i, c := range cols {
		v, err := coerceValue(c, vals[i])
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// coerceValue maps a decoded JSON value (float64, string, bool, nil) to
// the column's kind. Integer columns accept any integral JSON number.
func coerceValue(col relation.Column, v any) (relation.Value, error) {
	if v == nil {
		return relation.Null(), nil
	}
	switch col.Type {
	case relation.KindInt:
		f, ok := v.(float64)
		if !ok || f != math.Trunc(f) || math.Abs(f) >= 1<<53 {
			return relation.Value{}, fmt.Errorf("column %q wants an integer, got %v", col.Name, v)
		}
		return relation.Int(int64(f)), nil
	case relation.KindFloat:
		f, ok := v.(float64)
		if !ok {
			return relation.Value{}, fmt.Errorf("column %q wants a number, got %v", col.Name, v)
		}
		return relation.Float(f), nil
	case relation.KindString:
		s, ok := v.(string)
		if !ok {
			return relation.Value{}, fmt.Errorf("column %q wants a string, got %v", col.Name, v)
		}
		return relation.String(s), nil
	case relation.KindBool:
		b, ok := v.(bool)
		if !ok {
			return relation.Value{}, fmt.Errorf("column %q wants a boolean, got %v", col.Name, v)
		}
		return relation.Bool(b), nil
	default:
		return relation.Value{}, fmt.Errorf("column %q has unsupported kind", col.Name)
	}
}

// wireWALStats converts the durable log's snapshot to the wire gauge.
func wireWALStats(s svc.DurableLogStats) *api.WALStats {
	return &api.WALStats{
		Dir:              s.Dir,
		LastSeq:          s.LastSeq,
		SyncedSeq:        s.SyncedSeq,
		RetiredCut:       s.RetiredCut,
		CheckpointSeq:    s.CheckpointSeq,
		UnsyncedBytes:    s.UnsyncedBytes,
		UnappliedRecords: s.UnappliedRecords,
		UnappliedBytes:   s.UnappliedBytes,
		Segments:         s.Segments,
		DiskBytes:        s.DiskBytes,
		Appends:          s.Appends,
		Boundaries:       s.Boundaries,
		Syncs:            s.Syncs,
		Checkpoints:      s.Checkpoints,
		Compactions:      s.Compactions,
		Stalls:           s.Stalls,
		MeanSyncMillis:   s.MeanSyncMillis,
		MaxSyncMillis:    s.MaxSyncMillis,
		P99SyncMillis:    s.P99SyncMillis,
		LastError:        s.LastError,
	}
}

// ingestStatus maps a staging error to HTTP: validation problems (arity,
// type, unknown op — anything raised before the write-ahead append) are
// the client's fault; a durable-log failure (closed, crash-stopped, or
// poisoned by an I/O error) is the server's. Classification is by the
// exported wal sentinels, not message text, so a validation message that
// happens to mention "wal:" stays a 400 and renamed prefixes cannot
// silently downgrade real log failures.
func ingestStatus(err error) int {
	if svc.IsDurabilityError(err) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}
