package workload

import (
	"testing"

	"github.com/sampleclean/svc/internal/view"
)

// TestMaintainedViewEqualsRecomputeTruth is the workload-level oracle
// property (same pattern as the pipeline property tests): for every
// standard scenario and both maintenance strategies, the incrementally
// maintained view must equal a from-scratch recompute after every round,
// every SVC estimate must be internally sane, and a clean sample of the
// freshly maintained view must carry zero correction (SVC+CORR == exact).
// Runs under -race in CI.
func TestMaintainedViewEqualsRecomputeTruth(t *testing.T) {
	scale := 0.5
	if testing.Short() {
		scale = 0.25
	}
	for _, spec := range Scenarios() {
		spec := spec.ScaleTo(scale)
		for _, strat := range []view.StrategyKind{view.ChangeTable, view.Recompute} {
			strat := strat
			t.Run(spec.Name+"/"+string(strat), func(t *testing.T) {
				t.Parallel()
				cfg := Config{Strategy: strat}
				if err := CheckInvariants(spec, cfg, 0.95); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestInvariantsUnderColumnarParallel spot-checks the other engine axes on
// a representative subset so the full grid stays in the matrix benchmark
// rather than the unit suite.
func TestInvariantsUnderColumnarParallel(t *testing.T) {
	for _, name := range []string{"uniform-drip", "heavy-tail", "wide-groups"} {
		spec, ok := ScenarioByName(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		spec = spec.ScaleTo(0.5)
		for _, cfg := range []Config{
			{Strategy: view.ChangeTable, Columnar: true, Parallel: 0},
			{Strategy: view.ChangeTable, Columnar: true, Parallel: 4},
			{Strategy: view.Recompute, Columnar: false, Parallel: 4},
		} {
			spec, cfg := spec, cfg
			t.Run(spec.Name+"/"+cfg.Label(), func(t *testing.T) {
				t.Parallel()
				if err := CheckInvariants(spec, cfg, 0.95); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
