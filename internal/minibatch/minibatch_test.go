package minibatch

import (
	"math"
	"testing"
)

func batchSizes() []float64 {
	return []float64{1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8}
}

func TestThroughputRisesWithBatchSize(t *testing.T) {
	c := DefaultCluster()
	prev := 0.0
	for _, b := range batchSizes() {
		thr := c.Throughput(b)
		if thr <= prev {
			t.Errorf("throughput should rise with batch size: %v at %v (prev %v)", thr, b, prev)
		}
		prev = thr
	}
	// Saturation: never exceeds aggregate worker rate.
	cap := c.RecordRate * float64(c.Workers)
	if c.Throughput(1e10) > cap {
		t.Errorf("throughput exceeds capacity")
	}
	// Small batches are much slower than large ones (paper: ~10x).
	ratio := c.Throughput(2e8) / c.Throughput(1e6)
	if ratio < 5 {
		t.Errorf("small-batch penalty only %.1fx, expected >5x", ratio)
	}
}

func TestTwoThreadsReduceThroughputMostForSmallBatches(t *testing.T) {
	c := DefaultCluster()
	smallLoss := c.Throughput(1e6) / c.ThroughputTwoThreads(1e6, 0.1)
	largeLoss := c.Throughput(2e8) / c.ThroughputTwoThreads(2e8, 0.1)
	if smallLoss <= largeLoss {
		t.Errorf("contention should hit small batches harder: small %.2fx vs large %.2fx", smallLoss, largeLoss)
	}
	if largeLoss > 1.5 {
		t.Errorf("large batches should be mildly affected, got %.2fx", largeLoss)
	}
	if smallLoss < 1.2 {
		t.Errorf("small batches should be clearly affected, got %.2fx", smallLoss)
	}
}

func TestSmallestBatchFor(t *testing.T) {
	c := DefaultCluster()
	target := 0.6 * c.RecordRate * float64(c.Workers)
	b1, ok := c.SmallestBatchFor(target, false, 0, batchSizes())
	if !ok {
		t.Fatal("no single-thread batch meets target")
	}
	b2, ok := c.SmallestBatchFor(target, true, 0.05, batchSizes())
	if !ok {
		t.Fatal("no two-thread batch meets target")
	}
	if b2 < b1 {
		t.Errorf("two threads should need a larger (or equal) batch: %v vs %v", b2, b1)
	}
	if _, ok := c.SmallestBatchFor(1e12, false, 0, batchSizes()); ok {
		t.Error("unreachable target should fail")
	}
}

// Figure 15's shape: IVM+SVC beats IVM alone at a fixed throughput, and
// the error curve over m has an interior minimum.
func TestMaxErrorInteriorOptimum(t *testing.T) {
	c := DefaultCluster()
	for _, p := range []ViewProfile{V2Profile(), V5Profile()} {
		target := 0.55 * c.RecordRate * float64(c.Workers)
		bIVM, ok := c.SmallestBatchFor(target, false, 0, batchSizes())
		if !ok {
			t.Fatal("no IVM batch")
		}
		ivmOnly := MaxError(p, bIVM, 0, 0)

		ratios := []float64{0.01, 0.02, 0.03, 0.04, 0.06, 0.08, 0.12, 0.16, 0.20}
		errs := make([]float64, len(ratios))
		best, bestIdx := math.Inf(1), -1
		for i, m := range ratios {
			bTwo, ok := c.SmallestBatchFor(target, true, m, batchSizes())
			if !ok {
				errs[i] = math.Inf(1)
				continue
			}
			svcBatch := c.SVCBatchFor(p, target, m)
			errs[i] = MaxError(p, bTwo, m, svcBatch)
			if errs[i] < best {
				best, bestIdx = errs[i], i
			}
		}
		if bestIdx <= 0 || bestIdx >= len(ratios)-1 {
			t.Errorf("%s: optimum at boundary (idx %d, errs %v)", p.Name, bestIdx, errs)
		}
		if best >= ivmOnly {
			t.Errorf("%s: best IVM+SVC error %.4f should beat IVM-only %.4f", p.Name, best, ivmOnly)
		}
		t.Logf("%s: IVM-only max err %.4f; best IVM+SVC %.4f at m=%v", p.Name, ivmOnly, best, ratios[bestIdx])
	}
}

// V5 is noisier, so its optimal sampling ratio is larger than V2's
// (paper: 3% vs 6%).
func TestOptimalRatioOrdering(t *testing.T) {
	c := DefaultCluster()
	target := 0.55 * c.RecordRate * float64(c.Workers)
	ratios := []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10, 0.14, 0.18}
	argmin := func(p ViewProfile) float64 {
		best, bestM := math.Inf(1), 0.0
		for _, m := range ratios {
			b, ok := c.SmallestBatchFor(target, true, m, batchSizes())
			if !ok {
				continue
			}
			e := MaxError(p, b, m, c.SVCBatchFor(p, target, m))
			if e < best {
				best, bestM = e, m
			}
		}
		return bestM
	}
	m2, m5 := argmin(V2Profile()), argmin(V5Profile())
	t.Logf("optimal m: V2=%v V5=%v", m2, m5)
	if m5 <= m2 {
		t.Errorf("V5's optimum (%v) should exceed V2's (%v)", m5, m2)
	}
}

func TestUtilizationTraceShapes(t *testing.T) {
	c := DefaultCluster()
	n := 5e7
	plain := c.UtilizationTrace(n, false, 0)
	svc := c.UtilizationTrace(n, true, 0.10)
	if len(plain) != len(svc) || len(plain) == 0 {
		t.Fatalf("trace lengths: %d vs %d", len(plain), len(svc))
	}
	meanPlain, meanSVC, minPlain := 0.0, 0.0, 1.0
	for i := range plain {
		meanPlain += plain[i]
		meanSVC += svc[i]
		if plain[i] < minPlain {
			minPlain = plain[i]
		}
		if svc[i] < plain[i]-1e-9 {
			t.Fatalf("SVC trace dips below plain at %d: %v < %v", i, svc[i], plain[i])
		}
		if svc[i] > 1.0 {
			t.Fatalf("utilization above 1: %v", svc[i])
		}
	}
	meanPlain /= float64(len(plain))
	meanSVC /= float64(len(svc))
	if minPlain > 0.3 {
		t.Errorf("plain trace should show idle dips, min %v", minPlain)
	}
	if meanSVC <= meanPlain {
		t.Errorf("SVC should raise mean utilization: %.2f vs %.2f", meanSVC, meanPlain)
	}
}

func TestIdleTimeGrowsWithBatch(t *testing.T) {
	c := DefaultCluster()
	if c.IdleTime(1e8) <= c.IdleTime(1e6) {
		t.Error("straggler idle should grow with batch size")
	}
}

func TestSVCBatchForInfeasibleRatio(t *testing.T) {
	c := DefaultCluster()
	// An absurd ratio cannot keep up with the spare capacity.
	if !math.IsInf(c.SVCBatchFor(V2Profile(), 0.9*c.RecordRate*float64(c.Workers), 0.99), 1) {
		t.Error("near-full sampling at near-capacity ingest should be infeasible")
	}
}
