// Quickstart: the paper's running example end to end.
//
// We build the Log/Video database from Section 2.1, materialize the
// visitView, let the Log table grow (staged insertions = the LogIns delta
// relation), and compare three answers to the same aggregate query:
//
//	stale     — query the materialized view as-is (no maintenance)
//	SVC       — clean a 10% sample and correct the stale answer
//	exact     — full incremental maintenance, then query
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	svc "github.com/sampleclean/svc"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	d := svc.NewDatabase()

	// Video(videoId, ownerId, duration) — the dimension table.
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	const videos = 500
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{
			svc.Int(int64(i)),
			svc.Int(rng.Int63n(50)),
			svc.Float(0.5 + rng.Float64()*2),
		})
	}

	// Log(sessionId, videoId) — the fact table; one row per visit.
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	const visits = 20000
	for i := 0; i < visits; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(videos))})
	}

	// The paper's view definition, in its SQL dialect (the plan-builder
	// API in package svc expresses the same thing programmatically).
	def, err := svc.ViewFromSQL(d, `
		CREATE VIEW visitView AS
		SELECT videoId, ownerId, COUNT(1) AS visitCount
		FROM Log JOIN Video ON Log.videoId = Video.videoId
		GROUP BY videoId, ownerId`)
	if err != nil {
		log.Fatal(err)
	}
	sv, err := svc.New(d, def, svc.WithSamplingRatio(0.10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("materialized visitView with", sv.View().Data().Len(), "rows")
	fmt.Println("maintenance strategy:", sv.Maintainer().Kind())

	// New visits arrive — the LogIns delta relation of the paper's
	// Example 1. The view is now stale.
	const newVisits = 4000
	for i := 0; i < newVisits; i++ {
		if err := logT.StageInsert(svc.Row{
			svc.Int(int64(visits + i)),
			svc.Int(rng.Int63n(videos)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nstaged %d new log records; view stale: %v\n", newVisits, sv.Stale())

	// The paper's Example 2: how many videos have more than N views?
	ans, err := sv.QuerySQL(`SELECT COUNT(1) FROM visitView WHERE visitCount > 45`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSELECT COUNT(1) FROM visitView WHERE visitCount > 45\n")
	fmt.Printf("  stale answer:     %.0f\n", ans.StaleValue)
	fmt.Printf("  SVC estimate:     %.1f  (95%% CI [%.1f, %.1f], %s)\n",
		ans.Value, ans.Lo, ans.Hi, ans.Method)

	// Ground truth via full maintenance.
	if err := sv.MaintainNow(); err != nil {
		log.Fatal(err)
	}
	truth, err := sv.ExactQuery(svc.Count(svc.Gt(svc.ColRef("visitCount"), svc.IntLit(45))))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  exact (after full IVM): %.0f\n", truth)
	fmt.Printf("\nrelative error: stale %.1f%%, SVC %.1f%%\n",
		100*svc.RelativeError(ans.StaleValue, truth),
		100*svc.RelativeError(ans.Value, truth))

	// Peek at the optimized cleaning plan (the paper's Figure 3): the
	// sampling operator η has been pushed through the maintenance
	// strategy down to the sample view and the delta relations.
	fmt.Println("\noptimized cleaning expression:")
	fmt.Println(svc.FormatPlan(sv.Cleaner().Expression()))
}
