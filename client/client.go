package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/sampleclean/svc/server/api"
)

// Client talks to one svcd server. It is a thin wrapper over net/http and
// the api wire types; methods are safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry retryPolicy
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:7781"; a bare host:port is accepted too).
func New(baseURL string, opts ...Option) *Client {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx server response.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint (zero when absent) —
	// set on 503 shed responses; WithRetry honors it as a backoff floor.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("svcd: %d: %s", e.StatusCode, e.Message)
}

// IsOverloaded reports whether err is the admission-control rejection
// (HTTP 503): the server had MaxInFlight queries running. Retry later.
func IsOverloaded(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusServiceUnavailable
}

// IsDeadlineExceeded reports whether err is the per-query deadline expiry
// (HTTP 504). The query kept running server-side; only the response was
// abandoned.
func IsDeadlineExceeded(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusGatewayTimeout
}

// Query sends one svcql statement and returns the server's answer: an
// estimate with confidence interval and staleness metadata for aggregate
// SELECTs against a served view, or rows for base-table SELECTs.
func (c *Client) Query(sql string) (*api.QueryResponse, error) {
	return c.QueryRequest(&api.QueryRequest{SQL: sql})
}

// QueryDeadline is Query with an explicit per-query deadline (the server
// caps it at its configured maximum).
func (c *Client) QueryDeadline(sql string, deadline time.Duration) (*api.QueryResponse, error) {
	return c.QueryRequest(&api.QueryRequest{SQL: sql, DeadlineMillis: deadline.Milliseconds()})
}

// QueryRequest sends a fully specified query request.
func (c *Client) QueryRequest(req *api.QueryRequest) (*api.QueryResponse, error) {
	var resp api.QueryResponse
	if err := c.post("/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CreateView asks the server to materialize and serve a svcql CREATE VIEW
// statement. ratio ≤ 0 uses the server's default sampling ratio.
func (c *Client) CreateView(sql string, ratio float64) (*api.CreateViewResponse, error) {
	var resp api.CreateViewResponse
	if err := c.post("/views", &api.CreateViewRequest{SQL: sql, SamplingRatio: ratio}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ingest streams a batch of staged mutations into a base table. Ops are
// applied in order; when the server runs with a durable log (svcd
// -wal-dir), every op is on disk before the call returns, and the
// response carries the log's synced frontier. A 503 (IsOverloaded) means
// the log's backpressure bound was hit and nothing was staged — retry
// after a pause. Other errors name the failing op's index; ops before it
// remain staged.
func (c *Client) Ingest(table string, ops []api.IngestOp) (*api.IngestResponse, error) {
	var resp api.IngestResponse
	if err := c.post("/ingest", &api.IngestRequest{Table: table, Ops: ops}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// InsertOp / UpdateOp / DeleteOp build one ingest mutation.
func InsertOp(row ...any) api.IngestOp { return api.IngestOp{Op: "insert", Row: row} }

// UpdateOp stages an upsert of the full row.
func UpdateOp(row ...any) api.IngestOp { return api.IngestOp{Op: "update", Row: row} }

// DeleteOp stages a delete by primary-key values.
func DeleteOp(key ...any) api.IngestOp { return api.IngestOp{Op: "delete", Key: key} }

// Stats fetches the server's serving and refresh counters.
func (c *Client) Stats() (*api.StatsResponse, error) {
	var resp api.StatsResponse
	if err := c.get("/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthy reports nil when the server answers its health check.
func (c *Client) Healthy() error {
	res, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return &APIError{StatusCode: res.StatusCode, Message: "health check failed"}
	}
	return nil
}

func (c *Client) post(path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.withRetry(func() error {
		res, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		return decode(res, out)
	})
}

func (c *Client) get(path string, out any) error {
	return c.withRetry(func() error {
		res, err := c.hc.Get(c.base + path)
		if err != nil {
			return err
		}
		return decode(res, out)
	})
}

func decode(res *http.Response, out any) error {
	defer res.Body.Close()
	if res.StatusCode/100 != 2 {
		var apiErr api.ErrorResponse
		raw, _ := io.ReadAll(io.LimitReader(res.Body, 1<<16))
		if json.Unmarshal(raw, &apiErr) != nil || apiErr.Error == "" {
			apiErr.Error = strings.TrimSpace(string(raw))
		}
		e := &APIError{StatusCode: res.StatusCode, Message: apiErr.Error}
		if secs, err := strconv.Atoi(strings.TrimSpace(res.Header.Get("Retry-After"))); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
		return e
	}
	return json.NewDecoder(res.Body).Decode(out)
}
