// Command svcd is the SVC serving daemon: it loads a synthetic dataset,
// materializes views from svcql text, and serves svcql over HTTP/JSON
// while a background refresher keeps folding staged updates in.
//
// Usage:
//
//	svcd                                # videolog dataset on 127.0.0.1:7781
//	svcd -dataset tpcd -scale 0.5
//	svcd -addr :8080 -churn 500        # stage ~500 updates/sec while serving
//	svcd -wal-dir /var/lib/svcd/wal    # durable ingest: crash-safe staging
//
// Then:
//
//	curl -s localhost:7781/query -d '{"sql":"SELECT SUM(visitCount) FROM visitView"}'
//	curl -s localhost:7781/ingest -d '{"table":"Log","ops":[{"op":"insert","row":[99000001,5]}]}'
//	curl -s localhost:7781/stats
//
// With -wal-dir, every staged mutation (HTTP /ingest and the -churn
// writer alike) is written ahead and fsynced before it acknowledges; a
// crashed daemon replays the un-retired log suffix at startup, so
// acknowledged-but-unmaintained deltas survive kill -9.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the churn writer
// stops, in-flight queries drain, the background refreshers stop, and
// the durable log closes last.
package main

import (
	"context"
	"flag"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/internal/shard"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/server"
	"github.com/sampleclean/svc/server/api"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7781", "listen address")
		dataset  = flag.String("dataset", "videolog", "dataset to load and serve: videolog | tpcd")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		refresh  = flag.Duration("refresh", 50*time.Millisecond, "background refresh interval")
		inflight = flag.Int("max-inflight", 64, "admission control: max concurrently executing queries")
		deadline = flag.Duration("deadline", 5*time.Second, "default per-query deadline")
		maxRows  = flag.Int("max-rows", 1000, "row cap for base-table SELECT responses")
		parallel = flag.Int("parallel", 0, "intra-operator workers (0 = serial)")
		ratio    = flag.Float64("ratio", 0.1, "SVC sampling ratio for served views")
		churn    = flag.Int("churn", 0, "staged updates per second while serving (0 = none)")
		walDir   = flag.String("wal-dir", "", "directory for the durable maintenance log (empty = no durability)")
		walSync  = flag.Duration("wal-sync", 0, "group-commit sync interval (0 = default 2ms; negative = fsync every commit)")
		schedInt = flag.Duration("sched-interval", 0, "error-budget refresh scheduler tick (0 = per-view refreshers only)")
		schedBud = flag.Int("sched-budget", 1, "views maintained per scheduler tick (starvation-forced views ride free)")
		shardID  = flag.Int("shard-id", 0, "this process's shard id in a sharded fleet (with -shard-count)")
		shardCnt = flag.Int("shard-count", 0, "fleet size; >1 loads only this shard's hash partition of the dataset (0/1 = unsharded)")
		peers    = flag.String("peers", "", "comma-separated base URLs of the fleet in shard-id order (informational; the router owns topology)")
	)
	flag.Parse()

	// Sharded mode: this daemon is one member of a hash-partitioned fleet.
	// The placement contract is pure data derived from (dataset, count), so
	// every shard and every router independently agree on who owns what.
	var pl *shard.Placement
	if *shardCnt > 1 {
		if *shardID < 0 || *shardID >= *shardCnt {
			log.Fatalf("-shard-id %d out of range for -shard-count %d", *shardID, *shardCnt)
		}
		p, err := shard.ByDataset(*dataset, *shardCnt)
		if err != nil {
			log.Fatalf("%v", err)
		}
		pl = &p
	}

	cfg := server.Config{
		Addr:            *addr,
		MaxInFlight:     *inflight,
		DefaultDeadline: *deadline,
		MaxRows:         *maxRows,
		SamplingRatio:   *ratio,
		Refresh:         *refresh,
		SchedInterval:   *schedInt,
		SchedBudget:     *schedBud,
	}

	var (
		d        *svc.Database
		viewSQL  []string
		churnFn  func(cl *client.Client) error
		examples []string
	)
	switch *dataset {
	case "videolog":
		d, viewSQL, churnFn = videolog(*scale, pl, *shardID)
		examples = []string{
			`{"sql":"SELECT SUM(visitCount) FROM visitView"}`,
			`{"sql":"SELECT ownerId, SUM(visitCount) FROM visitView GROUP BY ownerId"}`,
			`{"sql":"SELECT videoId, duration FROM Video WHERE duration > 2.5"}`,
		}
	case "tpcd":
		d, viewSQL, churnFn = tpcdDataset(*scale, pl, *shardID)
		examples = []string{
			`{"sql":"SELECT SUM(l_extendedprice) FROM joinView WHERE o_orderdate < 180"}`,
			`{"sql":"SELECT o_orderpriority, COUNT(1) FROM joinView GROUP BY o_orderpriority"}`,
		}
	default:
		log.Fatalf("unknown -dataset %q (want videolog or tpcd)", *dataset)
	}
	if *parallel > 0 {
		d.SetParallelism(*parallel)
	}

	// The durable log attaches after the dataset load (loads are recreated
	// deterministically, not logged) and before views materialize, so a
	// previous run's acknowledged-but-unmaintained deltas are already
	// staged when the views and their samples come up.
	var durable *svc.DurableLog
	if *walDir != "" {
		opt := svc.DurableLogOptions{SyncInterval: *walSync}
		if *walSync < 0 {
			opt.SyncInterval = svc.SyncEachCommit
		}
		lg, rs, err := svc.AttachDurableLog(d, *walDir, opt)
		if err != nil {
			log.Fatalf("durable log: %v", err)
		}
		durable = lg
		log.Printf("durable log %s: recovered %d records across %d boundaries (%d re-staged as pending, applied_seq=%d, checkpoint=%d)",
			*walDir, rs.Records, rs.Boundaries, rs.PendingRecords, rs.AppliedSeq, rs.CheckpointSeq)
	}

	srv := server.New(d, cfg)
	for _, sql := range viewSQL {
		sv, err := srv.CreateView(sql)
		if err != nil {
			log.Fatalf("create view: %v", err)
		}
		log.Printf("serving view %s (%d rows, %s maintenance)",
			sv.View().Name(), sv.View().Data().Len(), sv.Maintainer().Kind())
	}
	if err := srv.Start(); err != nil {
		log.Fatalf("listen: %v", err)
	}
	if pl != nil {
		log.Printf("svcd shard %d/%d listening on http://%s (dataset=%s scale=%g refresh=%v durable=%v peers=%s)",
			*shardID, *shardCnt, srv.Addr(), *dataset, *scale, *refresh, durable != nil, *peers)
	} else {
		log.Printf("svcd listening on http://%s (dataset=%s scale=%g refresh=%v durable=%v)",
			srv.Addr(), *dataset, *scale, *refresh, durable != nil)
	}
	for _, ex := range examples {
		log.Printf("  try: curl -s %s/query -d '%s'", srv.Addr(), ex)
	}

	// The churn writer is a first-class ingest client: it stops on
	// shutdown, and every staging error is surfaced (logged with a
	// sampled rate, counted, and reported at exit) instead of silently
	// dropped. Videolog churn goes through POST /ingest on the daemon's
	// own front door, so with -wal-dir it is durable end to end.
	stopChurn := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		if *churn <= 0 || churnFn == nil {
			return
		}
		cl := client.New("http://" + srv.Addr())
		tick := time.NewTicker(time.Second / time.Duration(*churn))
		defer tick.Stop()
		var sent, failed uint64
		for {
			select {
			case <-stopChurn:
				if failed > 0 {
					log.Printf("churn: stopped after %d staged, %d FAILED", sent, failed)
				} else {
					log.Printf("churn: stopped after %d staged", sent)
				}
				return
			case <-tick.C:
				if err := churnFn(cl); err != nil {
					failed++
					// First failure and every 100th after it: enough to
					// surface a poisoned log without drowning the console.
					if failed == 1 || failed%100 == 0 {
						log.Printf("churn: %d failures, latest: %v", failed, err)
					}
					continue
				}
				sent++
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: stopping churn, draining in-flight queries, then stopping refreshers")
	close(stopChurn)
	<-churnDone
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if durable != nil {
		// Writers are quiesced (churn stopped, HTTP drained); a clean
		// close flushes the tail so the next start replays nothing torn.
		if err := durable.Close(); err != nil {
			log.Printf("durable log close: %v", err)
		}
	}
	log.Printf("bye")
}

// videolog builds the paper's running example: a Video catalog, a visit
// Log, and the visit-count view — defined in svcql, so the whole serving
// path exercises the dialect. Churn streams new visits through the
// daemon's own POST /ingest.
//
// In sharded mode (pl non-nil), the same deterministic generation runs on
// every shard but only the rows this shard owns are loaded: the fleet
// holds exactly the unsharded dataset, hash-partitioned by videoId, with
// no placement state stored anywhere. Churn stages only owned rows.
func videolog(scale float64, pl *shard.Placement, shardID int) (*svc.Database, []string, func(cl *client.Client) error) {
	videos := scaled(scale, 400)
	visits := scaled(scale, 30_000)
	owns := func(table string, row svc.Row) bool {
		return pl == nil || pl.Owns(table, row, shardID)
	}
	rng := rand.New(rand.NewSource(1))
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	for i := 0; i < videos; i++ {
		row := svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(50)), svc.Float(rng.Float64() * 3)}
		if owns("Video", row) {
			video.MustInsert(row)
		}
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		row := svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(int64(videos)))}
		if owns("Log", row) {
			logT.MustInsert(row)
		}
	}
	next := int64(visits + 1_000_000)
	churn := func(cl *client.Client) error {
		next++
		for !owns("Log", svc.Row{svc.Int(next), svc.Int(next % int64(videos))}) {
			next++
		}
		_, err := cl.Ingest("Log", []api.IngestOp{
			client.InsertOp(next, next%int64(videos)),
		})
		return err
	}
	viewSQL := `CREATE VIEW visitView AS
SELECT videoId, ownerId, COUNT(1) AS visitCount, SUM(duration) AS totalDuration
FROM Log JOIN Video ON Log.videoId = Video.videoId
GROUP BY videoId, ownerId`
	return d, []string{viewSQL}, churn
}

// tpcdDataset generates the scaled TPC-D-like substrate and serves the
// Section 7.2 join view from its svcql text. Churn stages refresh batches
// directly through the generator (it owns the refresh-stream state); with
// -wal-dir those stagings are still durable, since the write-ahead hook
// sits in the database layer under every transport.
func tpcdDataset(scale float64, pl *shard.Placement, shardID int) (*svc.Database, []string, func(cl *client.Client) error) {
	cfg := tpcd.DefaultConfig()
	cfg.Orders = scaled(scale, cfg.Orders)
	cfg.Customers = scaled(scale, cfg.Customers)
	cfg.Suppliers = scaled(scale, cfg.Suppliers)
	cfg.Parts = scaled(scale, cfg.Parts)
	g := tpcd.NewGenerator(cfg)
	d, err := g.Generate()
	if err != nil {
		log.Fatalf("tpcd generate: %v", err)
	}
	churn := func(*client.Client) error {
		// Stage a small refresh batch (TPC-D refresh model: new orders
		// plus lineitem updates).
		return g.StageUpdates(d, 0.0005)
	}
	if pl != nil {
		// Shave the full deterministic generation down to this shard's
		// partition before anything snapshots it (no log, no views yet).
		// Dimension tables stay replicated; lineitem/orders keep only the
		// order keys this shard owns.
		for name := range pl.Tables {
			t := d.Table(name)
			if t == nil {
				continue
			}
			t.Rows().DeleteWhere(func(row svc.Row) bool {
				return !pl.Owns(name, row, shardID)
			})
		}
		// The generator's refresh stream spans all shards; per-shard churn
		// would stage rows this shard does not own. Fleet churn goes
		// through the router instead.
		churn = nil
	}
	return d, []string{tpcd.JoinViewSQL}, churn
}

func scaled(s float64, n int) int {
	v := int(float64(n) * s)
	if v < 20 {
		v = 20
	}
	return v
}
