package svc_test

import (
	"math"
	"math/rand"
	"testing"

	svc "github.com/sampleclean/svc"
)

// The paper's running example as a public-API integration test:
// Log(sessionId, videoId), Video(videoId, ownerId, duration),
// visitView = per-video visit counts.

func buildExample(t testing.TB, seed int64, videos, visits int) (*svc.Database, *svc.StaleView) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(10)), svc.Float(rng.Float64() * 3)})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(int64(videos)))})
	}

	plan := svc.GroupByAgg(
		svc.Join(
			svc.Scan("Log", logT.Schema()),
			svc.Scan("Video", video.Schema()),
			svc.JoinSpec{Type: svc.Inner, On: svc.On("videoId", "videoId"), Merge: true},
		),
		[]string{"videoId", "ownerId"},
		svc.CountAs("visitCount"),
		svc.SumAs(svc.ColRef("duration"), "totalDuration"),
	)
	sv, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: plan},
		svc.WithSamplingRatio(0.2))
	if err != nil {
		t.Fatal(err)
	}
	return d, sv
}

func stageVisits(t testing.TB, d *svc.Database, seed int64, videos, from, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed * 131))
	logT := d.Table("Log")
	for i := 0; i < n; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(from + i)), svc.Int(rng.Int63n(int64(videos)))}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuickstartFlow(t *testing.T) {
	d, sv := buildExample(t, 1, 200, 5000)
	if sv.Stale() {
		t.Fatal("fresh view should not be stale")
	}
	// Exact answer before updates.
	exact, err := sv.ExactQuery(svc.Count(nil))
	if err != nil {
		t.Fatal(err)
	}
	if exact == 0 {
		t.Fatal("view should have rows")
	}
	stageVisits(t, d, 1, 200, 5000, 1500)
	if !sv.Stale() {
		t.Fatal("view should report stale after staged updates")
	}
	ans, err := sv.Query(svc.Sum("visitCount", nil))
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: total visits = 6500.
	truth := 6500.0
	if svc.RelativeError(ans.Value, truth) > 0.10 {
		t.Errorf("estimate %v too far from truth %v", ans.Value, truth)
	}
	if svc.RelativeError(ans.StaleValue, truth) < svc.RelativeError(ans.Value, truth)/2 {
		t.Errorf("stale %v should be worse than estimate %v (truth %v)", ans.StaleValue, ans.Value, truth)
	}
	if !ans.Covers(truth) {
		t.Logf("note: CI [%v, %v] missed truth %v (can happen at 95%%)", ans.Lo, ans.Hi, truth)
	}
}

func TestModesAndGroups(t *testing.T) {
	d, sv := buildExample(t, 2, 150, 4000)
	stageVisits(t, d, 2, 150, 4000, 800)

	for _, mode := range []svc.Mode{svc.Auto, svc.Corr, svc.AQP} {
		_ = mode // modes are fixed at construction; exercise via options below
	}
	// Per-owner group estimates.
	groups, err := sv.QueryGroups(svc.Sum("visitCount", nil), "ownerId")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups.Groups) == 0 {
		t.Fatal("no group estimates")
	}
	for k, est := range groups.Groups {
		if est.Value < 0 {
			t.Errorf("group %s: negative estimate %v", groups.Labels[k], est.Value)
		}
	}
}

func TestFixedModeOptions(t *testing.T) {
	for _, mode := range []svc.Mode{svc.Corr, svc.AQP} {
		d, _ := buildExample(t, 3, 100, 2000)
		video := d.Table("Video")
		plan := svc.GroupByAgg(
			svc.Scan("Video", video.Schema()),
			[]string{"ownerId"},
			svc.CountAs("videos"),
		)
		sv, err := svc.New(d, svc.ViewDefinition{Name: "byOwner", Plan: plan},
			svc.WithSamplingRatio(0.5), svc.WithMode(mode), svc.WithConfidence(0.99),
			svc.WithHasher(svc.SHA1Hasher))
		if err != nil {
			t.Fatal(err)
		}
		if err := video.StageInsert(svc.Row{svc.Int(10_000), svc.Int(3), svc.Float(1)}); err != nil {
			t.Fatal(err)
		}
		ans, err := sv.Query(svc.Count(nil))
		if err != nil {
			t.Fatal(err)
		}
		if ans.Value <= 0 {
			t.Errorf("mode %v: estimate %v", mode, ans.Value)
		}
	}
}

func TestCleanSelectPublicAPI(t *testing.T) {
	d, sv := buildExample(t, 4, 120, 3000)
	stageVisits(t, d, 4, 120, 3000, 900)
	res, err := sv.CleanSelect(svc.Gt(svc.ColRef("visitCount"), svc.IntLit(20)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() == 0 {
		t.Fatal("cleaned selection empty")
	}
	if res.Added.Value < 0 || res.Updated.Value < 0 || res.Removed.Value < 0 {
		t.Error("negative class estimates")
	}
}

func TestMaintainNowRollsForward(t *testing.T) {
	d, sv := buildExample(t, 5, 100, 2500)
	stageVisits(t, d, 5, 100, 2500, 600)
	if err := sv.MaintainNow(); err != nil {
		t.Fatal(err)
	}
	if sv.Stale() {
		t.Fatal("deltas should be applied")
	}
	exact, err := sv.ExactQuery(svc.Sum("visitCount", nil))
	if err != nil {
		t.Fatal(err)
	}
	if exact != 3100 {
		t.Fatalf("maintained view total visits = %v, want 3100", exact)
	}
	// After maintenance the estimators agree with the exact answer.
	ans, err := sv.Query(svc.Sum("visitCount", nil))
	if err != nil {
		t.Fatal(err)
	}
	if svc.RelativeError(ans.Value, exact) > 0.15 {
		t.Errorf("post-maintenance estimate %v vs exact %v", ans.Value, exact)
	}
	// A second round of updates keeps working with the adopted sample.
	stageVisits(t, d, 55, 100, 4000, 400)
	ans2, err := sv.Query(svc.Sum("visitCount", nil))
	if err != nil {
		t.Fatal(err)
	}
	if svc.RelativeError(ans2.Value, 3500) > 0.15 {
		t.Errorf("second-epoch estimate %v, want ≈3500", ans2.Value)
	}
}

func TestOutlierIndexOption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := svc.NewDatabase()
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
		svc.Col("bytes", svc.KindFloat),
	}, "sessionId"))
	for i := 0; i < 6000; i++ {
		b := 10 + rng.Float64()*5
		if rng.Float64() < 0.02 {
			b *= 1000
		}
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(200)), svc.Float(b)})
	}
	plan := svc.GroupByAgg(svc.Scan("Log", logT.Schema()),
		[]string{"videoId"},
		svc.CountAs("visits"),
		svc.SumAs(svc.ColRef("bytes"), "totalBytes"))
	sv, err := svc.New(d, svc.ViewDefinition{Name: "traffic", Plan: plan},
		svc.WithSamplingRatio(0.1),
		svc.WithOutlierIndex("Log", "bytes", 80),
		svc.WithMode(svc.AQP))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		b := 10 + rng.Float64()*5
		if rng.Float64() < 0.02 {
			b *= 1000
		}
		if err := logT.StageInsert(svc.Row{svc.Int(int64(6000 + i)), svc.Int(rng.Int63n(200)), svc.Float(b)}); err != nil {
			t.Fatal(err)
		}
	}
	ans, err := sv.Query(svc.Sum("totalBytes", nil))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ans.Value) || ans.Value <= 0 {
		t.Fatalf("estimate = %v", ans.Value)
	}
	// Sigma-threshold variant builds too.
	_, err = svc.New(d, svc.ViewDefinition{Name: "traffic2", Plan: plan},
		svc.WithOutlierSigmaThreshold("Log", "bytes", 80, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Index on a table the cleaner does not sample must be rejected.
	d2, _ := buildExample(t, 10, 50, 500)
	videoPlan := svc.GroupByAgg(
		svc.Join(
			svc.Scan("Log", d2.Table("Log").Schema()),
			svc.Scan("Video", d2.Table("Video").Schema()),
			svc.JoinSpec{Type: svc.Inner, On: svc.On("videoId", "videoId"), Merge: true},
		),
		[]string{"ownerId"}, // group key lives on the dimension side
		svc.CountAs("visits"),
	)
	_, err = svc.New(d2, svc.ViewDefinition{Name: "byOwner2", Plan: videoPlan},
		svc.WithOutlierIndex("Log", "sessionId", 10))
	if err == nil {
		t.Error("ineligible outlier index should be rejected (Definition 5)")
	}
}

func TestErrorPaths(t *testing.T) {
	d, _ := buildExample(t, 11, 30, 300)
	// Keyless view definitions are rejected.
	grand := svc.GroupByAgg(svc.Scan("Log", d.Table("Log").Schema()), nil, svc.CountAs("n"))
	if _, err := svc.New(d, svc.ViewDefinition{Name: "grand", Plan: grand}); err == nil {
		t.Error("keyless view should be rejected")
	}
	// Bad ratio.
	plan := svc.GroupByAgg(svc.Scan("Log", d.Table("Log").Schema()),
		[]string{"videoId"}, svc.CountAs("n"))
	if _, err := svc.New(d, svc.ViewDefinition{Name: "x", Plan: plan}, svc.WithSamplingRatio(2)); err == nil {
		t.Error("ratio > 1 should be rejected")
	}
	// Unknown outlier table.
	if _, err := svc.New(d, svc.ViewDefinition{Name: "y", Plan: plan},
		svc.WithOutlierIndex("Nope", "x", 5)); err == nil {
		t.Error("unknown outlier table should be rejected")
	}
}

func TestSQLFacade(t *testing.T) {
	d, _ := buildExample(t, 20, 100, 2000)
	def, err := svc.ViewFromSQL(d, `
		CREATE VIEW trafficView AS
		SELECT videoId, ownerId, COUNT(1) AS visits
		FROM Log JOIN Video ON Log.videoId = Video.videoId
		GROUP BY videoId, ownerId`)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := svc.New(d, def, svc.WithSamplingRatio(0.25))
	if err != nil {
		t.Fatal(err)
	}
	stageVisits(t, d, 20, 100, 2000, 400)
	ans, err := sv.QuerySQL(`SELECT SUM(visits) FROM trafficView`)
	if err != nil {
		t.Fatal(err)
	}
	if svc.RelativeError(ans.Value, 2400) > 0.15 {
		t.Errorf("SQL query estimate %v, want ≈2400", ans.Value)
	}
	groups, err := sv.QueryGroupsSQL(`SELECT ownerId, SUM(visits) FROM trafficView GROUP BY ownerId`)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups.Groups) == 0 {
		t.Fatal("no SQL group estimates")
	}
	if _, err := sv.QuerySQL(`SELECT ownerId, SUM(visits) FROM trafficView GROUP BY ownerId`); err == nil {
		t.Error("group-by through QuerySQL should error")
	}
	if _, err := sv.QuerySQL(`SELECT garbage !!`); err == nil {
		t.Error("bad SQL should error")
	}
}

// TestWithParallelismMatchesSerial checks the public parallel mode: the
// same workload queried serially and with 4 workers must produce
// identical estimates — parallel partitioned operators are an execution
// detail, not a semantics change.
func TestWithParallelismMatchesSerial(t *testing.T) {
	answers := make([]svc.Answer, 2)
	for i, par := range []int{0, 4} {
		d, sv := buildExample(t, 9, 300, 6000)
		if par > 0 {
			d.SetParallelism(par)
			sv.Cleaner().SetParallelism(par)
		}
		stageVisits(t, d, 9, 300, 6000, 2500)
		ans, err := sv.Query(svc.Sum("visitCount", nil))
		if err != nil {
			t.Fatal(err)
		}
		answers[i] = ans
	}
	if answers[0].Value != answers[1].Value || answers[0].Lo != answers[1].Lo || answers[0].Hi != answers[1].Hi {
		t.Fatalf("parallel answer differs from serial: %+v vs %+v", answers[0], answers[1])
	}
	if answers[0].StaleValue != answers[1].StaleValue {
		t.Fatalf("stale baseline differs: %v vs %v", answers[0].StaleValue, answers[1].StaleValue)
	}

	// The option form wires the same knob through New.
	d := svc.NewDatabase()
	tbl := d.MustCreate("T", svc.NewSchema([]svc.Column{
		svc.Col("id", svc.KindInt), svc.Col("x", svc.KindFloat)}, "id"))
	for i := 0; i < 100; i++ {
		tbl.MustInsert(svc.Row{svc.Int(int64(i)), svc.Float(float64(i))})
	}
	plan := svc.GroupByAgg(svc.Scan("T", tbl.Schema()), []string{"id"}, svc.SumAs(svc.ColRef("x"), "sx"))
	if _, err := svc.New(d, svc.ViewDefinition{Name: "v", Plan: plan}, svc.WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	if d.Parallelism() != 4 {
		t.Fatalf("WithParallelism should configure the database engine, got %d", d.Parallelism())
	}
}

// TestLegacyMaintenanceFlowStaysServable drives maintenance through the
// lower-level Maintainer/Cleaner handles (the pre-serving workflow)
// instead of MaintainNow, and checks Query still answers from the
// maintained state: the serving layer detects that the live view/sample
// moved and republishes them.
func TestLegacyMaintenanceFlowStaysServable(t *testing.T) {
	d, sv := buildExample(t, 31, 100, 2500)
	stageVisits(t, d, 31, 100, 2500, 600)

	samples, err := sv.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Maintainer().Maintain(d); err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if err := sv.Cleaner().Adopt(samples); err != nil {
		t.Fatal(err)
	}

	exact, err := sv.ExactQuery(svc.Sum("visitCount", nil))
	if err != nil {
		t.Fatal(err)
	}
	if exact != 3100 {
		t.Fatalf("maintained view total = %v, want 3100", exact)
	}
	ans, err := sv.Query(svc.Sum("visitCount", nil))
	if err != nil {
		t.Fatal(err)
	}
	if svc.RelativeError(ans.Value, exact) > 0.15 {
		t.Errorf("post-legacy-maintenance estimate %v vs exact %v (serving state not republished?)", ans.Value, exact)
	}
	if ans.StaleValue != exact {
		t.Errorf("stale baseline %v should equal the maintained exact %v", ans.StaleValue, exact)
	}
}
