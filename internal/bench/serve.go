package bench

// This file implements the "serve" experiment: sustained queries/sec with
// N concurrent reader goroutines while writers continuously stage updates
// and a background Refresher runs maintenance+cleaning cycles. The paper
// never serves concurrently — its premise (answer from the stale view
// plus a cheaply cleaned sample instead of waiting for maintenance) only
// pays off in production if queries are NOT blocked while maintenance
// runs; this experiment demonstrates exactly that, reporting the slowest
// observed query next to the slowest maintenance cycle.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	svc "github.com/sampleclean/svc"
)

func init() {
	register("serve",
		"snapshot serving: queries/sec with N readers during continuous staged updates + background refresh",
		serve)
}

// serveScenario builds the running-example database and view at scale.
func serveScenario(s Scale, seed int64) (*svc.Database, *svc.StaleView, *svc.Table, int, error) {
	videos := scaled(s, 400)
	visits := scaled(s, 30_000)
	rng := rand.New(rand.NewSource(seed))
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(50)), svc.Float(rng.Float64() * 3)})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(int64(videos)))})
	}
	plan := svc.GroupByAgg(
		svc.Join(
			svc.Scan("Log", logT.Schema()),
			svc.Scan("Video", video.Schema()),
			svc.JoinSpec{Type: svc.Inner, On: svc.On("videoId", "videoId"), Merge: true},
		),
		[]string{"videoId", "ownerId"},
		svc.CountAs("visitCount"),
		svc.SumAs(svc.ColRef("duration"), "totalDuration"),
	)
	sv, err := svc.New(d, svc.ViewDefinition{Name: "visitView", Plan: plan},
		svc.WithSamplingRatio(0.1), svc.WithParallelism(DefaultParallelism()),
		svc.WithColumnar(DefaultColumnar()))
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return d, sv, logT, videos, nil
}

func scaled(s Scale, n int) int {
	v := int(float64(n) * float64(s))
	if v < 20 {
		v = 20
	}
	return v
}

// serve runs the experiment: for each reader count, a fresh scenario, a
// writer staging updates, a background refresher, and N readers hammering
// Query for a fixed window.
func serve(s Scale) (*Table, error) {
	t := &Table{
		ID:    "serve",
		Title: "Snapshot serving: reader throughput during continuous updates + background maintenance",
		Header: []string{"readers", "queries", "qps", "staged", "cycles",
			"maxQuery", "maxCycle", "qDuringMaint"},
	}
	window := time.Duration(float64(400*time.Millisecond) * float64(s))
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	// This experiment measures concurrency behavior, not raw speed: on a
	// box with fewer cores than goroutines, Go's cooperative scheduling
	// can let a CPU-bound maintenance cycle run to completion before any
	// reader gets a slice, which would misreport architectural
	// non-blocking as blocking. Running with extra Ps makes the OS
	// timeslice the threads so overlap (or its absence) is observable.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	for _, readers := range []int{1, 2, 4, 8} {
		_, sv, logT, videos, err := serveScenario(s, int64(readers))
		if err != nil {
			return nil, err
		}
		sv.StartBackgroundRefresh(5 * time.Millisecond)

		stop := make(chan struct{})
		var staged atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // writer: continuous staged inserts with light pacing
			defer wg.Done()
			next := int64(1_000_000)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := logT.StageInsert(svc.Row{svc.Int(next), svc.Int(next % int64(videos))}); err != nil {
					panic(err)
				}
				next++
				staged.Add(1)
				if i%64 == 63 {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()

		var queries, duringMaint atomic.Int64
		maxQuery := make([]time.Duration, readers)
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					r := sv.Refresher()
					inBefore, cyclesBefore := r.InCycle(), r.Cycles()
					qStart := time.Now()
					if _, err := sv.Query(svc.Sum("visitCount", nil)); err != nil {
						panic(err)
					}
					if d := time.Since(qStart); d > maxQuery[g] {
						maxQuery[g] = d
					}
					if inBefore && r.InCycle() && r.Cycles() == cyclesBefore {
						// The SAME maintenance cycle was in flight before
						// the query was issued and after it completed: the
						// query provably ran start-to-finish inside the
						// cycle, so the reader was not blocked for the
						// duration of the run. (A blocking design would
						// hold the query until the cycle ended, making the
						// after-check fail.)
						duringMaint.Add(1)
					}
					queries.Add(1)
				}
			}(g)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		sv.Close()
		if err := sv.Refresher().Err(); err != nil {
			return nil, fmt.Errorf("serve: refresh cycle failed: %w", err)
		}

		var worstQuery time.Duration
		for _, d := range maxQuery {
			if d > worstQuery {
				worstQuery = d
			}
		}
		maxCycle := sv.Refresher().MaxCycleDuration()
		qps := float64(queries.Load()) / window.Seconds()
		t.AddRow(readers, queries.Load(), qps, staged.Load(),
			sv.Refresher().Cycles(), worstQuery, maxCycle, duringMaint.Load())
	}
	t.Notes = append(t.Notes,
		"every query answers from a pinned snapshot while the refresher publishes the next version",
		"qDuringMaint = queries that COMPLETED while a maintenance cycle was mid-run; a design that blocked readers for the duration of maintenance would pin it at 0")
	return t, nil
}
