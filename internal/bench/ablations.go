package bench

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

func init() {
	register("ablate-hash", "hash functions: speed vs uniformity (linear vs fnv vs sha1)", ablateHash)
	register("ablate-pushdown", "push-down on vs off: cleaning cost with η at the root", ablatePushdown)
	register("ablate-advisor", "Section 5.2.2 advisor: how often the advised estimator wins", ablateAdvisor)
	register("ablate-nonunique", "Appendix 12.5: sample-size variance when hashing non-unique attributes", ablateNonUnique)
}

// ablateHash quantifies the Appendix 12.3 trade-off: a fast linear hash is
// measurably non-uniform (breaking the 1/m scaling), FNV+finalizer is fast
// and uniform, SHA-1 is the most uniform and slowest.
func ablateHash(Scale) (*Table, error) {
	t := &Table{ID: "ablate-hash", Title: "Hash functions: ns/op and worst sampled-fraction deviation",
		Header: []string{"hasher", "ns_per_hash", "worst_abs_deviation"}}
	const n = 50000
	for _, h := range []hashing.Hasher{hashing.Linear{}, hashing.FNV{}, hashing.SHA1{}} {
		var buf [8]byte
		start := time.Now()
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(buf[:], uint64(i))
			h.Unit(buf[:])
		}
		nsPer := float64(time.Since(start).Nanoseconds()) / n
		worst := 0.0
		for _, m := range []float64{0.05, 0.1, 0.25, 0.5} {
			hits := 0
			for i := 0; i < n; i++ {
				binary.BigEndian.PutUint64(buf[:], uint64(i))
				if h.Unit(buf[:]) < m {
					hits++
				}
			}
			if d := math.Abs(float64(hits)/n - m); d > worst {
				worst = d
			}
		}
		t.AddRow(h.Name(), nsPer, worst)
	}
	t.Notes = append(t.Notes, "paper Appendix 12.3: linear hashes are fast but non-uniform; SVC defaults to finalized FNV")
	return t, nil
}

// ablatePushdown isolates Theorem 1's benefit: the same sample computed
// with push-down versus materializing the full maintenance result and
// filtering at the root.
func ablatePushdown(s Scale) (*Table, error) {
	sc, err := newTPCDScenario(tpcdConfig(s, 2, 41), tpcd.JoinView())
	if err != nil {
		return nil, err
	}
	if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
		return nil, err
	}
	t := &Table{ID: "ablate-pushdown", Title: "Push-down on vs off (join view, 10% updates)",
		Header: []string{"ratio", "pushdown_time", "pushdown_rows", "root_time", "root_rows"}}
	for _, ratio := range []float64{0.05, 0.10, 0.25} {
		c, err := clean.New(sc.m, ratio, nil)
		if err != nil {
			return nil, err
		}
		var pd *clean.Samples
		pdDur, err := timeIt(func() error {
			var err error
			pd, err = c.Clean(sc.d)
			return err
		})
		if err != nil {
			return nil, err
		}
		// η at the root: evaluate M fully, then filter.
		rootExpr := algebra.MustHashFilter(sc.m.Expression(), sc.v.KeyNames(), ratio, nil)
		ctx := sc.d.Context()
		sc.v.BindInto(ctx)
		var rootRows int64
		rootDur, err := timeIt(func() error {
			_, err := rootExpr.Eval(ctx)
			rootRows = ctx.RowsTouched
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(ratio, pdDur, pd.Stats.RowsTouched, rootDur, rootRows)
	}
	t.Notes = append(t.Notes, "Theorem 1: both plans produce the identical sample; push-down avoids materializing unsampled rows")
	return t, nil
}

// ablateAdvisor replays scenarios across the staleness range and scores
// how often Advise picks the estimator that was actually more accurate.
func ablateAdvisor(s Scale) (*Table, error) {
	t := &Table{ID: "ablate-advisor", Title: "AQP/CORR advisor accuracy across staleness",
		Header: []string{"updates_pct", "advised", "corr_err", "aqp_err", "advice_correct"}}
	q := estimator.Sum("l_extendedprice", nil)
	correct, total := 0, 0
	for _, frac := range []float64{0.05, 0.15, 0.25, 0.35, 0.45} {
		sc, err := newTPCDScenario(tpcdConfig(s, 2, 43), tpcd.JoinView())
		if err != nil {
			return nil, err
		}
		if err := sc.gen.StageUpdates(sc.d, frac); err != nil {
			return nil, err
		}
		c, err := clean.New(sc.m, 0.10, nil)
		if err != nil {
			return nil, err
		}
		samples, err := c.Clean(sc.d)
		if err != nil {
			return nil, err
		}
		snap := sc.d.Snapshot()
		if err := snap.ApplyDeltas(); err != nil {
			return nil, err
		}
		truthV, err := view.Materialize(snap, sc.v.Definition())
		if err != nil {
			return nil, err
		}
		truth, err := estimator.RunExact(truthV.Data(), q)
		if err != nil {
			return nil, err
		}
		corr, err := estimator.Corr(sc.v.Data(), samples, q, 0.95)
		if err != nil {
			return nil, err
		}
		aqp, err := estimator.AQP(samples, q, 0.95)
		if err != nil {
			return nil, err
		}
		advised, err := estimator.Advise(samples, q)
		if err != nil {
			return nil, err
		}
		corrErr := estimator.RelativeError(corr.Value, truth)
		aqpErr := estimator.RelativeError(aqp.Value, truth)
		winner := "svc+corr"
		if aqpErr < corrErr {
			winner = "svc+aqp"
		}
		ok := advised == winner
		if ok {
			correct++
		}
		total++
		t.AddRow(100*frac, advised, corrErr, aqpErr, ok)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("advice matched the winner in %d/%d scenarios", correct, total))
	return t, nil
}

// ablateNonUnique quantifies Appendix 12.5: hashing a non-unique attribute
// keeps per-row inclusion at m but adds sample-size variance
// m(1−m)µ² + (1−m)σ² per distinct value, where µ and σ² are the mean and
// variance of the duplication counts. We measure the empirical variance
// across datasets and compare against the formula's prediction, for the
// unique key and a non-unique attribute.
func ablateNonUnique(s Scale) (*Table, error) {
	t := &Table{ID: "ablate-nonunique", Title: "Sampling on unique vs non-unique keys: sample-size spread (m=0.25)",
		Header: []string{"attrs", "mean_size", "stddev_size", "predicted_stddev"}}
	const m = 0.25
	const trials = 30
	type cfg struct {
		name  string
		attrs []string
	}
	for _, c := range []cfg{
		{"o_custkey (unique)", nil}, // nil = view key
		{"visitCount (non-unique)", []string{"visitCount"}},
	} {
		var sizes []float64
		var predictedVar float64
		for trial := int64(0); trial < trials; trial++ {
			d, v, mnt, err := visitScenario(s, 1000+trial)
			if err != nil {
				return nil, err
			}
			_ = d
			attrs := c.attrs
			if attrs == nil {
				attrs = v.KeyNames()
			}
			// A fresh salt per trial draws an independent hash from the
			// family, so the trials measure real sampling variance
			// (SVC's production hash is deliberately unsalted).
			cl, err := clean.NewOnAttrs(mnt, attrs, m, hashing.Salted{Salt: uint64(trial)})
			if err != nil {
				return nil, err
			}
			sizes = append(sizes, float64(cl.StaleSample().Len()))
			if trial == 0 {
				predictedVar = predictSizeVariance(v.Data(), attrs, m)
			}
		}
		t.AddRow(c.name, stats.Mean(sizes), stats.Stdev(sizes), math.Sqrt(predictedVar))
	}
	t.Notes = append(t.Notes,
		"paper Appendix 12.5: per-value variance m(1−m)µ² + (1−m)σ²; duplication widens the size spread",
		"per-row inclusion stays m in both cases, so estimates remain unbiased")
	return t, nil
}

// visitScenario builds a small visit-count view for the non-unique
// ablation.
func visitScenario(s Scale, seed int64) (*db.Database, *view.View, *view.Maintainer, error) {
	g := tpcd.NewGenerator(tpcdConfig(s, 1, seed))
	d, err := g.Generate()
	if err != nil {
		return nil, nil, nil, err
	}
	d.SetParallelism(defaultParallelism)
	d.SetColumnar(defaultColumnar)
	def := view.Definition{Name: "visitView", Plan: algebra.MustGroupBy(
		algebra.Scan(tpcd.Orders, tpcd.OrdersSchema()),
		[]string{"o_custkey"},
		algebra.CountAs("visitCount"),
	)}
	v, err := view.Materialize(d, def)
	if err != nil {
		return nil, nil, nil, err
	}
	mnt, err := view.NewMaintainer(v)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, v, mnt, nil
}

// predictSizeVariance evaluates the Appendix 12.5 formula over the actual
// duplication distribution of attrs in rel: summing per-distinct-value
// contributions m(1−m)·k² where k is the value's duplication count (the
// per-value size is k·Bernoulli(m)).
func predictSizeVariance(rel *relation.Relation, attrs []string, m float64) float64 {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = rel.Schema().ColIndex(a)
	}
	counts := map[string]float64{}
	for _, row := range rel.Rows() {
		counts[row.KeyOf(idx)]++
	}
	variance := 0.0
	for _, k := range counts {
		variance += m * (1 - m) * k * k
	}
	return variance
}
