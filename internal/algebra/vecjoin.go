package algebra

import (
	"github.com/sampleclean/svc/internal/relation"
)

// Columnar join execution. The row-path JoinNode.run materializes both
// inputs as relations and allocates one Row per output tuple (combine).
// The columnar path keeps non-plain keyless inputs in ColSets (typed
// column vectors, dictionary-encoded strings), builds and probes the hash
// table directly over those vectors, and emits columnar output batches —
// so a delta join's output flows into the downstream fused projections
// and the aggregation fold without a single row ever being formed.
//
// Strategy parity: the columnar path resolves exactly the inputs the row
// path would index (plain scans and keyed derived inputs become
// relations, preserving index probes, upsert dedup, and the empty-side
// short-circuit) and replicates the drive-side decisions, so its output
// row order is identical to run()'s. The equivalence property tests
// (vecjoin_test.go, pipeline_prop_test.go) pin this against
// EvalMaterialized.

// columnarJoinOK reports whether this join can run the columnar path
// under ctx: an equality join (cross joins have no key to build on) with
// no residual predicate (extra predicates evaluate over combined rows).
func (j *JoinNode) columnarJoinOK(ctx *Context) bool {
	return !ctx.NoColumnar && len(j.on) > 0 && j.boundExtra == nil
}

// joinSide is one resolved columnar-join input: a relation (plain scans
// and keyed derived inputs — index probes and key dedup keep working) or
// a ColSet (keyless derived inputs, drained without materializing rows).
type joinSide struct {
	rel  *relation.Relation
	rows []relation.Row
	set  *relation.ColSet
}

func (s *joinSide) length() int {
	if s.set != nil {
		return s.set.Len()
	}
	return len(s.rows)
}

// hashJoin returns the 64-bit join hash of row i's idx columns: 0 when
// any key column is NULL (SQL join semantics), never 0 otherwise —
// bit-identical to the row path's joinHash.
func (s *joinSide) hashJoin(i int, idx []int) uint64 {
	if s.set != nil {
		if s.set.HasNullAt(i, idx) {
			return 0
		}
		h := s.set.HashCols(i, idx, tableSeed)
		if h == 0 {
			h = 1
		}
		return h
	}
	return joinHash(s.rows[i], idx)
}

// keyEqual reports encoding equality of s's row i (idx columns) and o's
// row j (oidx columns), across any representation pair.
func (s *joinSide) keyEqual(i int, idx []int, o *joinSide, j int, oidx []int) bool {
	switch {
	case s.set != nil && o.set != nil:
		return s.set.KeyEqualCols(i, idx, o.set, j, oidx)
	case s.set != nil:
		return s.set.KeyEqualRow(i, idx, o.rows[j], oidx)
	case o.set != nil:
		return o.set.KeyEqualRow(j, oidx, s.rows[i], idx)
	default:
		return s.rows[i].KeyEqualCols(idx, o.rows[j], oidx)
	}
}

// value reconstructs the cell at row i, column c.
func (s *joinSide) value(i, c int) relation.Value {
	if s.set != nil {
		return s.set.ValueAt(i, c)
	}
	return s.rows[i][c]
}

// encode appends the canonical key encoding of row i's idx columns.
func (s *joinSide) encode(i int, idx []int, dst []byte) []byte {
	if s.set != nil {
		return s.set.EncodeCols(i, idx, dst)
	}
	return s.rows[i].EncodeCols(idx, dst)
}

// hasNullKey reports whether any of row i's idx columns is NULL.
func (s *joinSide) hasNullKey(i int, idx []int) bool {
	if s.set != nil {
		return s.set.HasNullAt(i, idx)
	}
	return rowHasNullKey(s.rows[i], idx)
}

func (s *joinSide) release() {
	if s != nil && s.set != nil {
		s.set.Release()
		s.set = nil
	}
}

// resolveSide materializes one join input for the columnar path. Plain
// scans share the bound relation (index probes keep working); keyed
// derived inputs materialize through resolvePipelined (identical upsert
// dedup and ordering to the row path); keyless derived inputs drain into
// a ColSet — the case the row path paid a full row materialization for.
func resolveSide(ctx *Context, n Node) (*joinSide, error) {
	if s, ok := n.(*ScanNode); ok && s.plain() {
		rel, err := s.evalMat(ctx)
		if err != nil {
			return nil, err
		}
		return &joinSide{rel: rel, rows: rel.Rows()}, nil
	}
	if n.Schema().HasKey() {
		rel, err := resolvePipelined(n, ctx)
		if err != nil {
			return nil, err
		}
		return &joinSide{rel: rel, rows: rel.Rows()}, nil
	}
	set, err := drainColSet(ctx, n)
	if err != nil {
		return nil, err
	}
	// Parity with the row path's materialization charge (output()).
	ctx.RowsTouched += int64(set.Len())
	return &joinSide{set: set}, nil
}

// drainColSet drains the pipeline below n into a pooled ColSet.
func drainColSet(ctx *Context, n Node) (*relation.ColSet, error) {
	set := relation.GetColSet(n.Schema().NumCols())
	it := iterNode(n)
	if err := it.Open(ctx); err != nil {
		set.Release()
		return nil, err
	}
	defer it.Close()
	for {
		b, err := it.Next()
		if err != nil {
			set.Release()
			return nil, err
		}
		if b == nil {
			return set, nil
		}
		set.AppendBatch(b)
		b.Release()
	}
}

// sideTable is the columnar build table: the rowTable layout (partitioned
// open-addressed slots, CSR-packed chains) keyed straight off a
// joinSide's storage — no Row is ever formed on the build side.
type sideTable struct {
	side   *joinSide
	idx    []int
	hashes []uint64 // 0 = excluded (NULL join key)
	parts  []*hashIdx
	next   []int32
	packed [][]int32
}

// buildSideTable hashes and places every build-side row, partitioned by
// hash like buildRowTable (identical chains and in-key row order).
func buildSideTable(side *joinSide, idx []int, workers int) *sideTable {
	n := side.length()
	t := &sideTable{
		side:   side,
		idx:    idx,
		hashes: make([]uint64, n),
		next:   make([]int32, n),
		parts:  make([]*hashIdx, workers),
		packed: make([][]int32, workers),
	}
	eachChunk(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.hashes[i] = side.hashJoin(i, idx)
		}
	})
	parts := uint64(workers)
	runWorkers(workers, func(p int) {
		ht := newHashIdx(n/workers+1, t.next)
		var id int32
		count := 0
		sameKey := func(head int32) bool {
			return side.keyEqual(int(head), idx, side, int(id), idx)
		}
		for i, h := range t.hashes {
			if h != 0 && (workers == 1 || h%parts == uint64(p)) {
				id = int32(i)
				ht.add(h, id, sameKey)
				count++
			}
		}
		t.parts[p] = ht
		t.packed[p] = packChains(ht, t.next, count)
	})
	return t
}

// packChains packs a built hashIdx's chains into a contiguous ids array
// (CSR layout), repurposing head/tail as span bounds — shared by the row
// and columnar build tables.
func packChains(ht *hashIdx, next []int32, count int) []int32 {
	packed := make([]int32, 0, count)
	for s, hd := range ht.head {
		if hd < 0 {
			continue
		}
		start := int32(len(packed))
		for id := hd; id >= 0; id = next[id] {
			packed = append(packed, id)
		}
		ht.head[s] = start
		ht.tail[s] = int32(len(packed))
	}
	return packed
}

// lookup returns the packed build positions matching probe row i of the
// probing side (full-key verified once), or nil.
func (t *sideTable) lookup(h uint64, probe *joinSide, i int, probeIdx []int) []int32 {
	if h == 0 {
		return nil
	}
	p := h % uint64(len(t.parts))
	part := t.parts[p]
	packed := t.packed[p]
	s := h & part.mask
	for {
		if part.head[s] < 0 {
			return nil
		}
		if part.hash[s] == h {
			span := packed[part.head[s]:part.tail[s]]
			if t.side.keyEqual(int(span[0]), t.idx, probe, i, probeIdx) {
				return span
			}
		}
		s = (s + 1) & part.mask
	}
}

// joinEmitter accumulates (left, right) match pairs (-1 = outer-null
// side) and flushes them as columnar output batches: each output column
// is gathered column-at-a-time from the owning side, so no output Row is
// allocated. Merged columns (USING semantics) coalesce exactly like
// combine(): the left cell when the left row is present, the right join
// cell otherwise.
type joinEmitter struct {
	j           *JoinNode
	left, right *joinSide
	mergedK     []int // left col index -> position in j.on, -1 when not merged
	li, ri      []int32
	out         []*relation.Batch
	pairs       int64 // total pairs emitted (all flushes)
}

func newJoinEmitter(j *JoinNode, left, right *joinSide) *joinEmitter {
	nl := j.left.Schema().NumCols()
	mergedK := make([]int, nl)
	for c := range mergedK {
		mergedK[c] = -1
	}
	if j.merge {
		for k, pos := range j.mergedPos {
			mergedK[pos] = k
		}
	}
	return &joinEmitter{j: j, left: left, right: right, mergedK: mergedK}
}

func (e *joinEmitter) add(l, r int32) {
	e.li = append(e.li, l)
	e.ri = append(e.ri, r)
	if len(e.li) >= relation.BatchCap {
		e.flush()
	}
}

func (e *joinEmitter) flush() {
	n := len(e.li)
	if n == 0 {
		return
	}
	e.pairs += int64(n)
	nl := len(e.mergedK)
	b := relation.GetBatch()
	b.BeginColumnar(nl + len(e.j.rKeep))
	lOuter, rOuter := false, false
	for _, l := range e.li {
		if l < 0 {
			lOuter = true
			break
		}
	}
	for _, r := range e.ri {
		if r < 0 {
			rOuter = true
			break
		}
	}
	for c := 0; c < nl; c++ {
		vec := b.Vec(c)
		if !lOuter && e.left.set != nil {
			// Dense typed gather straight from the side's column vector.
			vec.AppendGather(e.left.set.Vec(c), e.li)
			continue
		}
		k := e.mergedK[c]
		for p, l := range e.li {
			switch {
			case l >= 0:
				vec.AppendValue(e.left.value(int(l), c))
			case k >= 0:
				// Right-outer row of a merged join: the left-named join
				// column carries the right join cell (coalesce).
				vec.AppendValue(e.right.value(int(e.ri[p]), e.j.rJoin[k]))
			default:
				vec.AppendNull()
			}
		}
	}
	for ki, rc := range e.j.rKeep {
		vec := b.Vec(nl + ki)
		if !rOuter && e.right.set != nil {
			vec.AppendGather(e.right.set.Vec(rc), e.ri)
			continue
		}
		for _, r := range e.ri {
			if r >= 0 {
				vec.AppendValue(e.right.value(int(r), rc))
			} else {
				vec.AppendNull()
			}
		}
	}
	e.out = append(e.out, b)
	e.li = e.li[:0]
	e.ri = e.ri[:0]
}

// runColumnar evaluates the join on the columnar path, returning the
// output as columnar batches in the row path's exact output order. The
// caller owns the batches.
func (j *JoinNode) runColumnar(ctx *Context) ([]*relation.Batch, error) {
	var left, right *joinSide
	var err error
	if j.typ == Inner {
		if right, err = resolveSide(ctx, j.right); err != nil {
			return nil, err
		}
		if right.length() == 0 {
			right.release()
			return nil, nil
		}
		if left, err = resolveSide(ctx, j.left); err != nil {
			right.release()
			return nil, err
		}
		if left.length() == 0 {
			left.release()
			right.release()
			return nil, nil
		}
	} else {
		if left, err = resolveSide(ctx, j.left); err != nil {
			return nil, err
		}
		if right, err = resolveSide(ctx, j.right); err != nil {
			left.release()
			return nil, err
		}
	}
	defer left.release()
	defer right.release()

	// Index probe: mirror run()'s decision exactly — only relation-backed
	// sides can carry an index, and both keyed derived inputs and plain
	// scans are relation-backed here just as in the row path.
	if j.typ == Inner {
		var rIdx, lIdx relation.Index
		var rOk, lOk bool
		if right.rel != nil {
			rIdx, rOk = right.rel.LookupIndex(j.rJoin)
		}
		if left.rel != nil {
			lIdx, lOk = left.rel.LookupIndex(j.lJoin)
		}
		driveLeft := rOk && (!lOk || left.length() <= right.length())
		driveRight := lOk && !driveLeft
		switch {
		case driveLeft:
			ctx.RowsTouched += int64(left.length())
			return j.probeIndexedColumnar(ctx, left, j.lJoin, right, rIdx, true), nil
		case driveRight:
			ctx.RowsTouched += int64(right.length())
			return j.probeIndexedColumnar(ctx, right, j.rJoin, left, lIdx, false), nil
		}
	}

	// Hash join: build on the right, probe with the left, chunked in
	// parallel with in-order concatenation (output order == serial ==
	// row path).
	ctx.RowsTouched += int64(left.length()) + int64(right.length())
	build := buildSideTable(right, j.rJoin, ctx.workers(right.length()))
	needRM := j.typ == RightOuter || j.typ == FullOuter
	nProbe := left.length()
	pw := ctx.workers(nProbe)

	var out []*relation.Batch
	var rMatched []bool
	if pw == 1 {
		if needRM {
			rMatched = make([]bool, right.length())
		}
		em := newJoinEmitter(j, left, right)
		j.probeColumnarChunk(build, left, 0, nProbe, rMatched, em)
		em.flush()
		out = em.out
	} else {
		emitters := make([]*joinEmitter, pw)
		marks := make([][]bool, pw)
		runWorkers(pw, func(p int) {
			lo, hi := chunkRange(p, pw, nProbe)
			var rm []bool
			if needRM {
				rm = make([]bool, right.length())
			}
			em := newJoinEmitter(j, left, right)
			j.probeColumnarChunk(build, left, lo, hi, rm, em)
			em.flush()
			emitters[p] = em
			marks[p] = rm
		})
		for _, em := range emitters {
			out = append(out, em.out...)
		}
		if needRM {
			rMatched = make([]bool, right.length())
			for _, rm := range marks {
				for i, m := range rm {
					if m {
						rMatched[i] = true
					}
				}
			}
		}
	}
	if needRM {
		em := newJoinEmitter(j, left, right)
		for i := range rMatched {
			if !rMatched[i] {
				em.add(-1, int32(i))
			}
		}
		em.flush()
		out = append(out, em.out...)
	}
	return out, nil
}

// probeColumnarChunk probes the build table with left rows [lo, hi),
// emitting match pairs in probe order (the row path's probeChunk order).
func (j *JoinNode) probeColumnarChunk(build *sideTable, probe *joinSide, lo, hi int, rMatched []bool, em *joinEmitter) {
	leftOuter := j.typ == LeftOuter || j.typ == FullOuter
	for i := lo; i < hi; i++ {
		h := probe.hashJoin(i, j.lJoin)
		span := build.lookup(h, probe, i, j.lJoin)
		if len(span) == 0 {
			if leftOuter {
				em.add(int32(i), -1)
			}
			continue
		}
		for _, id := range span {
			em.add(int32(i), id)
			if rMatched != nil {
				rMatched[id] = true
			}
		}
	}
}

// probeIndexedColumnar drives an inner join from a probing side against
// an indexed relation, encoding keys from the probing side's vectors
// (byte-identical to row probes) and emitting columnar batches in probe
// order. Mirrors probeIndexed, including its parallel chunking.
func (j *JoinNode) probeIndexedColumnar(ctx *Context, probe *joinSide, probeIdx []int, indexed *joinSide, ix relation.Index, leftDrives bool) []*relation.Batch {
	n := probe.length()
	w := ctx.workers(n)
	emitters := make([]*joinEmitter, w)
	runWorkers(w, func(p int) {
		lo, hi := chunkRange(p, w, n)
		var buf []byte
		var hits []int
		var em *joinEmitter
		if leftDrives {
			em = newJoinEmitter(j, probe, indexed)
		} else {
			em = newJoinEmitter(j, indexed, probe)
		}
		for i := lo; i < hi; i++ {
			if probe.hasNullKey(i, probeIdx) {
				continue
			}
			buf = probe.encode(i, probeIdx, buf[:0])
			hits = ix.ProbeBytes(buf, hits[:0])
			for _, pos := range hits {
				if leftDrives {
					em.add(int32(i), int32(pos))
				} else {
					em.add(int32(pos), int32(i))
				}
			}
		}
		em.flush()
		emitters[p] = em
	})
	var out []*relation.Batch
	for _, em := range emitters {
		out = append(out, em.out...)
		ctx.RowsTouched += em.pairs
	}
	return out
}
