package algebra

import (
	"fmt"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/hashing"
)

// PushDownHash rewrites η_{attrs,ratio}(root) by pushing the hash-sampling
// operator toward the leaves wherever Definition 3 allows, and returns the
// rewritten plan. By Theorem 1 the rewritten plan materializes the
// *identical* sample as applying η at the root — a property the test suite
// checks with randomized plans and data.
//
// Push-down rules (paper Section 4.4):
//
//   - σ (Select): always push through.
//   - Π (Project): push through when every hashed attribute is produced by
//     a pass-through column reference (renames allowed).
//   - ⋈ (Join): blocked in general. Special cases: push to a single side
//     when every hashed attribute resolves to that side (this subsumes the
//     paper's foreign-key-join case, where the sampled key is the fact
//     table's key); push to *both* sides of an equality join when the
//     hashed attributes are equated columns; for outer joins, push only
//     through merged (coalesced) join columns, to both sides.
//   - γ (Aggregate): push through when the hashed attributes are all
//     group-by attributes.
//   - ∪, ∩, −: push to both operands (for keyed set semantics this
//     requires the hashed attributes to lie inside both operands' primary
//     keys, since rows are matched by key; bag semantics push freely).
//   - η: commutes with other η operators.
//
// When no rule applies, η materializes at that node (the sampling happens
// after the blocked operator runs at full size — exactly the behaviour the
// paper reports for views V21/V22, whose nested structures defeat
// push-down).
func PushDownHash(root Node, attrs []string, ratio float64, hasher hashing.Hasher) (Node, error) {
	cs := root.Schema()
	for _, a := range attrs {
		if !cs.HasCol(a) {
			return nil, fmt.Errorf("algebra: push-down attribute %q not in schema [%s]", a, cs)
		}
	}
	if hasher == nil {
		hasher = hashing.Default
	}
	p := pusher{ratio: ratio, hasher: hasher}
	return p.push(root, attrs), nil
}

type pusher struct {
	ratio  float64
	hasher hashing.Hasher
}

// stop materializes η at this node (no further push-down).
func (p pusher) stop(n Node, attrs []string) Node {
	return MustHashFilter(n, attrs, p.ratio, p.hasher)
}

func (p pusher) push(n Node, attrs []string) Node {
	switch t := n.(type) {
	case *SelectNode:
		return t.WithChildren([]Node{p.push(t.child, attrs)})

	case *ProjectNode:
		mapped, ok := t.mapToChild(attrs)
		if !ok {
			return p.stop(n, attrs)
		}
		return t.WithChildren([]Node{p.push(t.child, mapped)})

	case *AliasNode:
		mapped := make([]string, len(attrs))
		prefix := t.prefix + "."
		for i, a := range attrs {
			if len(a) <= len(prefix) || a[:len(prefix)] != prefix {
				return p.stop(n, attrs) // not an aliased column (cannot happen for valid schemas)
			}
			mapped[i] = a[len(prefix):]
		}
		return t.WithChildren([]Node{p.push(t.child, mapped)})

	case *AggregateNode:
		// η pushes through γ when every hashed attribute is a group-by
		// attribute: filtering the operand keeps exactly the member rows
		// of surviving groups, so each surviving group aggregates over
		// all of its rows.
		groupSet := map[string]bool{}
		for _, g := range t.groupBy {
			groupSet[g] = true
		}
		for _, a := range attrs {
			if !groupSet[a] {
				return p.stop(n, attrs)
			}
		}
		return t.WithChildren([]Node{p.push(t.child, attrs)})

	case *SetOpNode:
		if !p.setOpPushable(t, attrs) {
			return p.stop(n, attrs)
		}
		return t.WithChildren([]Node{p.push(t.l, attrs), p.push(t.r, attrs)})

	case *HashFilterNode:
		// Independent η filters commute.
		return t.WithChildren([]Node{p.push(t.child, attrs)})

	case *JoinNode:
		return p.pushJoin(t, attrs)

	default:
		// Scan and any unknown operator: materialize the sample here.
		return p.stop(n, attrs)
	}
}

// mapToChild maps output attribute names through the projection to child
// column names, requiring pass-through references.
func (t *ProjectNode) mapToChild(attrs []string) ([]string, bool) {
	byOut := map[string]string{}
	for _, o := range t.outs {
		if ref, ok := expr.ColumnName(o.E); ok {
			byOut[o.Name] = ref
		}
	}
	mapped := make([]string, len(attrs))
	for i, a := range attrs {
		ref, ok := byOut[a]
		if !ok {
			return nil, false
		}
		mapped[i] = ref
	}
	return mapped, true
}

// setOpPushable reports whether η_{attrs} commutes with the set operator.
// Bag semantics (keyless) always commute: matching is whole-row, so equal
// rows hash equally. Keyed semantics match rows by primary key, so the
// hashed attributes must be key attributes of both operands to guarantee
// that matched rows hash identically.
func (p pusher) setOpPushable(t *SetOpNode, attrs []string) bool {
	ls, rs := t.l.Schema(), t.r.Schema()
	if t.kind == opUnion && !t.schema.HasKey() {
		return true // bag union: concatenation commutes with any filter
	}
	if !ls.HasKey() || !rs.HasKey() {
		// Keyless intersect/difference match whole rows.
		return true
	}
	inKey := func(s []string, a string) bool {
		for _, k := range s {
			if k == a {
				return true
			}
		}
		return false
	}
	lk, rk := ls.KeyNames(), rs.KeyNames()
	for _, a := range attrs {
		if !inKey(lk, a) || !inKey(rk, a) {
			return false
		}
	}
	return true
}

// pushJoin applies the join push-down rules.
func (p pusher) pushJoin(j *JoinNode, attrs []string) Node {
	switch j.typ {
	case Inner:
		lMapped, lOK := j.mapAttrs(attrs, true)
		rMapped, rOK := j.mapAttrs(attrs, false)
		if !lOK && !rOK {
			return p.stop(j, attrs)
		}
		left, right := j.left, j.right
		if lOK {
			left = p.push(left, lMapped)
		}
		if rOK {
			right = p.push(right, rMapped)
		}
		return j.WithChildren([]Node{left, right})

	case LeftOuter:
		// Only the preserved side's own columns are safe: a left-only row
		// carries NULLs in right columns, so attributes that merely *map*
		// to the left via equality would hash differently at the top.
		if mapped, ok := j.ownAttrs(attrs, true); ok {
			return j.WithChildren([]Node{p.push(j.left, mapped), j.right})
		}
		return p.stop(j, attrs)

	case RightOuter:
		if mapped, ok := j.ownAttrs(attrs, false); ok {
			return j.WithChildren([]Node{j.left, p.push(j.right, mapped)})
		}
		return p.stop(j, attrs)

	default: // FullOuter
		// Only merged join columns are present (coalesced) on both sides;
		// push to both so unmatched rows of either side are filtered
		// consistently and matched pairs survive or die together.
		if !j.merge {
			return p.stop(j, attrs)
		}
		lMapped := make([]string, len(attrs))
		rMapped := make([]string, len(attrs))
		for i, a := range attrs {
			found := false
			for _, pair := range j.on {
				if pair.Left == a {
					lMapped[i], rMapped[i] = pair.Left, pair.Right
					found = true
					break
				}
			}
			if !found {
				return p.stop(j, attrs)
			}
		}
		return j.WithChildren([]Node{p.push(j.left, lMapped), p.push(j.right, rMapped)})
	}
}

// mapAttrs tries to resolve every output attribute to a column of one side
// (left when toLeft), either directly or through a join equality.
func (j *JoinNode) mapAttrs(attrs []string, toLeft bool) ([]string, bool) {
	ls, rs := j.left.Schema(), j.right.Schema()
	mapped := make([]string, len(attrs))
	for i, a := range attrs {
		if toLeft {
			if ls.HasCol(a) {
				mapped[i] = a
				continue
			}
			ok := false
			for _, pair := range j.on {
				if pair.Right == a {
					mapped[i] = pair.Left
					ok = true
					break
				}
			}
			if !ok {
				return nil, false
			}
		} else {
			if rs.HasCol(a) && !j.isMergedRightDrop(a) {
				mapped[i] = a
				continue
			}
			ok := false
			for _, pair := range j.on {
				if pair.Left == a {
					mapped[i] = pair.Right
					ok = true
					break
				}
			}
			if !ok {
				return nil, false
			}
		}
	}
	return mapped, true
}

// ownAttrs resolves attributes only to a side's own columns (no equality
// mapping) — the safe rule for that side of an outer join.
func (j *JoinNode) ownAttrs(attrs []string, left bool) ([]string, bool) {
	s := j.left.Schema()
	if !left {
		s = j.right.Schema()
	}
	mapped := make([]string, len(attrs))
	for i, a := range attrs {
		if !s.HasCol(a) {
			return nil, false
		}
		if !left && j.isMergedRightDrop(a) {
			return nil, false
		}
		if left && j.merge {
			// A merged column's output value is coalesce(left,right);
			// for LeftOuter the left side is preserved so left-only rows
			// carry the left value and matched rows carry equal values —
			// safe. (Right-only rows cannot occur under LeftOuter.)
			_ = a
		}
		mapped[i] = a
	}
	return mapped, true
}

// isMergedRightDrop reports whether the named right column was dropped by
// merging (it no longer exists in the output schema).
func (j *JoinNode) isMergedRightDrop(name string) bool {
	if !j.merge {
		return false
	}
	for _, pair := range j.on {
		if pair.Right == name {
			return true
		}
	}
	return false
}
