package api

// QueryRequest is the body of POST /query: one svcql statement.
type QueryRequest struct {
	// SQL is the svcql text: an aggregate SELECT against a served view
	// (answered by the SVC estimators, with confidence intervals) or a
	// SELECT over base tables (executed through the batched pipeline).
	SQL string `json:"sql"`
	// DeadlineMillis overrides the server's default per-query deadline.
	// It is capped by the server's configured maximum; zero means the
	// default.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// MaxRows caps the rows returned for a base-table SELECT. It is
	// capped by the server's configured maximum; zero means the default.
	MaxRows int `json:"max_rows,omitempty"`
	// Partial asks for the mergeable sufficient-statistics form of a view
	// aggregate instead of a finished estimate — the shard-side half of
	// the scatter-gather protocol. Routers set it; end clients normally
	// don't. Only sum/count/avg aggregates have a partial form.
	Partial bool `json:"partial,omitempty"`
}

// PartialEstimate is the wire form of one shard's mergeable estimate
// statistics (internal/estimator.Partial): the trans/diff moments whose
// sums compose across shards into one global CLT interval. For avg, the
// Cnt* fields carry the denominator count statistic.
type PartialEstimate struct {
	// Agg is "sum", "count", or "avg" — the only mergeable aggregates.
	Agg    string  `json:"agg"`
	Method string  `json:"method"`
	Ratio  float64 `json:"ratio"`

	K     int     `json:"k"`
	Stale float64 `json:"stale"`
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sumsq"`

	CntK     int     `json:"cnt_k,omitempty"`
	CntStale float64 `json:"cnt_stale,omitempty"`
	CntSum   float64 `json:"cnt_sum,omitempty"`
	CntSumSq float64 `json:"cnt_sumsq,omitempty"`
}

// GroupPartial is one group's partial statistics. Key is the encoded
// group key (the merge identity across shards); Label is the printable
// comma-joined form shown to clients.
type GroupPartial struct {
	Key   string `json:"group_key"`
	Label string `json:"label"`
	PartialEstimate
}

// ShardStamp is one shard's provenance on a router-merged answer: which
// shard contributed, at what epoch, and (for concatenated base-table
// SELECTs) how many rows.
type ShardStamp struct {
	Shard      int    `json:"shard"`
	AsOfEpoch  uint64 `json:"as_of_epoch"`
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	Rows       int    `json:"rows,omitempty"`
}

// Estimate is an approximate answer with its uncertainty — the wire form
// of the engine's Estimate.
type Estimate struct {
	Value      float64 `json:"value"`
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Confidence float64 `json:"confidence"`
	// TailProb is set for min/max only (Cantelli bound).
	TailProb float64 `json:"tail_prob,omitempty"`
	// Method names the estimator that produced the answer ("svc+aqp" or
	// "svc+corr").
	Method string `json:"method"`
	// K is the number of cleaned sample rows behind the estimate.
	K int `json:"k"`
}

// Group is one group of a GROUP BY estimate.
type Group struct {
	// Key is the printable group label (comma-joined group column
	// values).
	Key string `json:"key"`
	Estimate
}

// QueryResponse is the body of a successful POST /query.
type QueryResponse struct {
	// Kind says which payload fields are set: "estimate" (aggregate
	// against a view), "groups" (GROUP BY against a view), or "rows"
	// (base-table SELECT).
	Kind string `json:"kind"`
	// View is the served view the query ran against (estimate/groups).
	View string `json:"view,omitempty"`

	// Estimate and StaleValue are set for kind "estimate": the fresh
	// estimate and the uncorrected answer from the stale view.
	Estimate   *Estimate `json:"estimate,omitempty"`
	StaleValue *float64  `json:"stale_value,omitempty"`

	// Groups is set for kind "groups", sorted by Key.
	Groups []Group `json:"groups,omitempty"`

	// Partial is set for kind "partial" (QueryRequest.Partial against a
	// view aggregate); GroupPartials for kind "group_partials".
	Partial       *PartialEstimate `json:"partial,omitempty"`
	GroupPartials []GroupPartial   `json:"group_partials,omitempty"`

	// Shards carries per-shard provenance on router-merged answers (absent
	// on single-process answers). Degraded marks an answer extrapolated
	// from a partial fleet (router -degrade): the value is scaled by
	// N/healthy and the interval widened accordingly.
	Shards   []ShardStamp `json:"shards,omitempty"`
	Degraded bool         `json:"degraded,omitempty"`

	// Columns/Rows are set for kind "rows". Values are JSON natives
	// (numbers, strings, booleans, null). RowCount is the full result
	// size before the MaxRows cap; Truncated says the cap bit.
	Columns   []string `json:"columns,omitempty"`
	Rows      [][]any  `json:"rows,omitempty"`
	RowCount  int      `json:"row_count,omitempty"`
	Truncated bool     `json:"truncated,omitempty"`

	// Staleness metadata. AsOfEpoch is the publication epoch of the
	// pinned catalog version the answer was computed against; AppliedSeq
	// counts the maintenance boundaries behind it; Pending reports
	// whether staged (not yet maintained) deltas existed at that version
	// — i.e. whether the answer is an estimate over a stale view rather
	// than an exact read of a fresh one.
	AsOfEpoch  uint64 `json:"as_of_epoch"`
	AppliedSeq uint64 `json:"applied_seq"`
	Pending    bool   `json:"pending"`

	// ElapsedMillis is the server-side execution time.
	ElapsedMillis float64 `json:"elapsed_ms"`
}

// CreateViewRequest is the body of POST /views: a svcql CREATE VIEW
// statement materialized and served with background refresh.
type CreateViewRequest struct {
	SQL string `json:"sql"`
	// SamplingRatio is the SVC sample ratio m for the new view's cleaner
	// (zero means the server default).
	SamplingRatio float64 `json:"sampling_ratio,omitempty"`
}

// CreateViewResponse acknowledges a materialized view.
type CreateViewResponse struct {
	View string `json:"view"`
	// Rows is the materialized cardinality.
	Rows int `json:"rows"`
	// Strategy is the chosen maintenance strategy ("change-table" or
	// "recompute").
	Strategy string `json:"strategy"`
}

// ViewStats is one served view's slice of GET /stats.
type ViewStats struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	// SampleRows is the persistent sample's cardinality.
	SampleRows int `json:"sample_rows"`
	// AppliedSeq is the catalog's maintenance-boundary counter as of this
	// view's last maintenance publication (0 before the first cycle) —
	// paired with the catalog-level Epoch/AppliedSeq it gives per-view
	// lag, which a router aggregates into max-lag-across-shards.
	AppliedSeq uint64 `json:"applied_seq"`
	// Queries counts estimator queries answered by the view; Scheduled
	// reports that an error-budget scheduler owns its maintenance.
	Queries   uint64 `json:"queries"`
	Scheduled bool   `json:"scheduled,omitempty"`
	// Refresher counters (zero-valued when no background refresher runs).
	// Skips = SkipsIdle + SkipsDeferred: idle ticks found nothing staged,
	// deferred ticks stood down because a scheduler owns the view.
	RefreshIntervalMillis float64 `json:"refresh_interval_ms,omitempty"`
	Cycles                uint64  `json:"cycles"`
	Skips                 uint64  `json:"skips"`
	SkipsIdle             uint64  `json:"skips_idle"`
	SkipsDeferred         uint64  `json:"skips_deferred"`
	MaxCycleMillis        float64 `json:"max_cycle_ms"`
	LastCycleMillis       float64 `json:"last_cycle_ms"`
	InCycle               bool    `json:"in_cycle"`
	// LastError is the most recent failed cycle's message ("" after a
	// later successful cycle).
	LastError string `json:"last_error,omitempty"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	// Epoch is the catalog's current publication epoch; AppliedSeq counts
	// completed maintenance boundaries; Pending reports staged deltas.
	Epoch      uint64 `json:"epoch"`
	AppliedSeq uint64 `json:"applied_seq"`
	Pending    bool   `json:"pending"`
	// MaxServedEpoch is the largest AsOfEpoch stamped on any answer this
	// server returned; EpochLag = Epoch − MaxServedEpoch measures how far
	// the catalog has moved past the freshest answer served.
	MaxServedEpoch uint64 `json:"max_served_epoch"`
	EpochLag       uint64 `json:"epoch_lag"`

	// Admission-control counters. TimedOut counts per-query deadline
	// expiries (504s); Canceled counts clients that went away before
	// their answer (neither a timeout nor an error).
	InFlight    int    `json:"in_flight"`
	MaxInFlight int    `json:"max_in_flight"`
	Served      uint64 `json:"served"`
	Rejected    uint64 `json:"rejected"`
	TimedOut    uint64 `json:"timed_out"`
	Canceled    uint64 `json:"canceled"`
	Errors      uint64 `json:"errors"`

	// Pools gauges the engine's batch/vector pooling effectiveness. A hit
	// rate that decays under steady serving load means pipeline drains
	// started allocating per cycle again — a pooling regression that would
	// otherwise only show up in offline allocs/op benchmarks.
	Pools PoolStats `json:"pools"`

	// Ingest-path counters. Ingested counts staged ops acknowledged via
	// POST /ingest; IngestShed counts requests rejected with 503 because
	// the durable log's backpressure bound was exceeded.
	Ingested   uint64 `json:"ingested"`
	IngestShed uint64 `json:"ingest_shed"`

	// WAL is present when the database has a durable maintenance log
	// attached (svcd -wal-dir).
	WAL *WALStats `json:"wal,omitempty"`

	// Sched is present when the server runs the error-budget refresh
	// scheduler (svcd -sched-interval).
	Sched *SchedStats `json:"sched,omitempty"`

	Views []ViewStats `json:"views"`
}

// SchedStats is the refresh scheduler's slice of GET /stats: how the
// maintenance budget was spent (group cycles, views maintained vs
// deferred) and what the shared-subplan cache saved.
type SchedStats struct {
	Ticks       uint64 `json:"ticks"`
	GroupCycles uint64 `json:"group_cycles"`
	// Maintained counts views maintained summed over group cycles;
	// Deferred counts stale views a tick skipped as out-scored.
	Maintained uint64 `json:"maintained"`
	Deferred   uint64 `json:"deferred"`
	// Shared-subplan gauges, accumulated over all group cycles: cache
	// hits/misses and the evaluation rows the hits avoided.
	SharedHits   uint64 `json:"shared_hits"`
	SharedMisses uint64 `json:"shared_misses"`
	RowsSaved    int64  `json:"rows_saved"`

	Views []SchedViewStats `json:"views"`
}

// SchedViewStats is one scheduled view's slice of SchedStats.
type SchedViewStats struct {
	Name string `json:"name"`
	// HitProb is the modeled probability the next query hits this view
	// (stationary distribution of the query-mix Markov chain).
	HitProb float64 `json:"hit_prob"`
	// PendingRows is the view's staleness mass: staged delta rows against
	// its base tables. AgeMillis is the time since its last maintenance.
	PendingRows int   `json:"pending_rows"`
	AgeMillis   int64 `json:"age_ms"`
	// Cycles counts scheduler-run maintenance cycles for the view;
	// Deferred counts ticks it was stale but out-scored.
	Cycles   uint64 `json:"cycles"`
	Deferred uint64 `json:"deferred"`
}

// WALStats is the durable maintenance log's slice of GET /stats: depth
// gauges (how much a crash right now would replay), sync latency, and
// segment/checkpoint/backpressure counters.
type WALStats struct {
	Dir string `json:"dir"`
	// LastSeq is the last assigned record sequence; SyncedSeq is the
	// durable frontier (acknowledged ⇒ seq ≤ SyncedSeq); RetiredCut is
	// the last maintenance boundary's cut; CheckpointSeq the newest
	// checkpoint's (0 = none yet).
	LastSeq       uint64 `json:"last_seq"`
	SyncedSeq     uint64 `json:"synced_seq"`
	RetiredCut    uint64 `json:"retired_cut"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`

	// Depth gauges: bytes buffered ahead of the next fsync, and the
	// records/bytes a recovery right now would replay.
	UnsyncedBytes    int   `json:"unsynced_bytes"`
	UnappliedRecords int   `json:"unapplied_records"`
	UnappliedBytes   int   `json:"unapplied_bytes"`
	Segments         int   `json:"segments"`
	DiskBytes        int64 `json:"disk_bytes"`

	Appends     uint64 `json:"appends"`
	Boundaries  uint64 `json:"boundaries"`
	Syncs       uint64 `json:"syncs"`
	Checkpoints uint64 `json:"checkpoints"`
	Compactions uint64 `json:"compactions"`
	// Stalls counts staging calls that blocked on a backpressure bound.
	Stalls uint64 `json:"stalls"`

	MeanSyncMillis float64 `json:"mean_sync_ms"`
	MaxSyncMillis  float64 `json:"max_sync_ms"`
	P99SyncMillis  float64 `json:"p99_sync_ms"`

	// LastError is the sticky I/O failure poisoning the log ("" while
	// healthy).
	LastError string `json:"last_error,omitempty"`
}

// IngestOp is one streamed mutation of POST /ingest.
type IngestOp struct {
	// Op is "insert", "update", or "delete".
	Op string `json:"op"`
	// Row is the full row in schema column order (insert/update). JSON
	// numbers are coerced to the column's kind; null maps to NULL.
	Row []any `json:"row,omitempty"`
	// Key holds the primary-key values in key order (delete).
	Key []any `json:"key,omitempty"`
}

// IngestRequest is the body of POST /ingest: a batch of staged mutations
// against one base table. Ops are applied in order; when the database has
// a durable log, each op is fsynced (group commit) before the response.
type IngestRequest struct {
	Table string     `json:"table"`
	Ops   []IngestOp `json:"ops"`
}

// IngestResponse acknowledges a fully staged batch.
type IngestResponse struct {
	// Staged is the number of ops applied (= len(Ops) on success; an
	// error response reports the failing op's index in its message, and
	// ops before it remain staged).
	Staged int `json:"staged"`
	// Durable reports whether a write-ahead log covered the batch; when
	// true, DurableSeq is the log's synced frontier after the batch — at
	// least every op in it. On a router-merged ack, Durable is the AND
	// over shards and DurableSeq is meaningless (frontiers are per-shard —
	// see Shards).
	Durable    bool   `json:"durable"`
	DurableSeq uint64 `json:"durable_seq,omitempty"`
	// Shards carries the per-shard acks of a router fan-out: each shard's
	// staged count and durable frontier (monotone per shard across
	// batches).
	Shards []IngestShardAck `json:"shards,omitempty"`
}

// IngestShardAck is one shard's slice of a fanned-out ingest batch.
type IngestShardAck struct {
	Shard      int    `json:"shard"`
	Staged     int    `json:"staged"`
	Durable    bool   `json:"durable"`
	DurableSeq uint64 `json:"durable_seq,omitempty"`
}

// PoolStats gauges the columnar engine's batch and scratch-vector pools
// (relation.ReadPoolCounters). Gets counts pool checkouts; News counts
// the subset that had to allocate (pool miss). HitRate = 1 - News/Gets,
// and 1.0 when idle.
type PoolStats struct {
	BatchGets    uint64  `json:"batch_gets"`
	BatchNews    uint64  `json:"batch_news"`
	BatchHitRate float64 `json:"batch_hit_rate"`
	VecGets      uint64  `json:"vec_gets"`
	VecNews      uint64  `json:"vec_news"`
	VecHitRate   float64 `json:"vec_hit_rate"`
}

// ClusterStatsResponse is the body of the router's GET /stats: the
// fleet-wide envelope (epoch/lag spread across shards) plus each shard's
// key gauges. Unreachable shards appear with Error set and zero gauges.
type ClusterStatsResponse struct {
	Shards  int `json:"shards"`
	Healthy int `json:"healthy"`

	// Epoch/maintenance envelope over healthy shards. MaxEpochLag is the
	// largest per-shard EpochLag — how far any shard's catalog has moved
	// past the freshest answer it served.
	MinEpoch      uint64 `json:"min_epoch"`
	MaxEpoch      uint64 `json:"max_epoch"`
	MinAppliedSeq uint64 `json:"min_applied_seq"`
	MaxAppliedSeq uint64 `json:"max_applied_seq"`
	MinEpochLag   uint64 `json:"min_epoch_lag"`
	MaxEpochLag   uint64 `json:"max_epoch_lag"`

	// Summed serving counters across healthy shards.
	Served     uint64 `json:"served"`
	Rejected   uint64 `json:"rejected"`
	TimedOut   uint64 `json:"timed_out"`
	Errors     uint64 `json:"errors"`
	Ingested   uint64 `json:"ingested"`
	IngestShed uint64 `json:"ingest_shed"`

	// Pools is the merged pool gauge: gets/news summed, hit rates
	// recomputed over the sums.
	Pools PoolStats `json:"pools"`

	PerShard []ShardStats `json:"per_shard"`
}

// ShardStats is one shard's row in the router's cluster stats.
type ShardStats struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	// Error is set when the shard did not answer /stats; the remaining
	// fields are then zero.
	Error string `json:"error,omitempty"`

	Epoch      uint64 `json:"epoch"`
	AppliedSeq uint64 `json:"applied_seq"`
	EpochLag   uint64 `json:"epoch_lag"`
	InFlight   int    `json:"in_flight"`
	Served     uint64 `json:"served"`

	// WAL depth gauges (zero when the shard runs without a durable log):
	// what a crash right now would replay.
	WALUnappliedRecords int   `json:"wal_unapplied_records"`
	WALUnappliedBytes   int   `json:"wal_unapplied_bytes"`
	WALDiskBytes        int64 `json:"wal_disk_bytes"`
}

// ErrorResponse is the body of any non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
