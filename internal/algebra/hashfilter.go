package algebra

import (
	"fmt"
	"strings"

	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/relation"
)

// HashFilterNode is the paper's sampling operator η_{a,m} (Section 4.4):
// it applies a deterministic hash whose range is [0,1) to the attribute
// tuple a and keeps rows with hash(a) < m, selecting an approximately
// uniform m-fraction deterministically.
//
// Because the hash is a pure function of the attribute values, η commutes
// with the operators listed in Definition 3; PushDownHash exploits this to
// sample before expensive operators materialize rows (Theorem 1 guarantees
// the pushed-down plan produces the identical sample).
type HashFilterNode struct {
	child  Node
	attrs  []string
	ratio  float64
	hasher hashing.Hasher
	idx    []int
}

// HashFilter returns η_{attrs,ratio}(child) using the given hasher (nil
// means hashing.Default). The attributes must exist in the child's schema;
// they are usually the child's derived primary key but may be any attribute
// tuple (paper Appendix 12.5 discusses sampling non-unique keys).
func HashFilter(child Node, attrs []string, ratio float64, hasher hashing.Hasher) (*HashFilterNode, error) {
	if ratio < 0 || ratio > 1 {
		return nil, fmt.Errorf("algebra: hash filter ratio %v outside [0,1]", ratio)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("algebra: hash filter needs at least one attribute")
	}
	if hasher == nil {
		hasher = hashing.Default
	}
	cs := child.Schema()
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := cs.ColIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("algebra: hash filter attribute %q not in schema [%s]", a, cs)
		}
		idx[i] = j
	}
	return &HashFilterNode{child: child, attrs: append([]string(nil), attrs...), ratio: ratio, hasher: hasher, idx: idx}, nil
}

// MustHashFilter is HashFilter, panicking on error.
func MustHashFilter(child Node, attrs []string, ratio float64, hasher hashing.Hasher) *HashFilterNode {
	h, err := HashFilter(child, attrs, ratio, hasher)
	if err != nil {
		panic(err)
	}
	return h
}

// Attrs returns the hashed attribute names.
func (h *HashFilterNode) Attrs() []string { return append([]string(nil), h.attrs...) }

// Ratio returns the sampling ratio m.
func (h *HashFilterNode) Ratio() float64 { return h.ratio }

// Hasher returns the hash function in use.
func (h *HashFilterNode) Hasher() hashing.Hasher { return h.hasher }

// Schema implements Node.
func (h *HashFilterNode) Schema() relation.Schema { return h.child.Schema() }

// Eval implements Node (the pipeline shim; see pipeline.go).
func (h *HashFilterNode) Eval(ctx *Context) (*relation.Relation, error) {
	return evalPipelined(ctx, h)
}

// evalMat is the materializing evaluation (see EvalMaterialized).
//
// Each worker encodes keys into its own reused KeyBuf (no per-row
// allocation); chunk outputs are concatenated in order, so the sample and
// its row order are independent of the worker count.
func (h *HashFilterNode) evalMat(ctx *Context) (*relation.Relation, error) {
	in, err := EvalMaterialized(h.child, ctx)
	if err != nil {
		return nil, err
	}
	ctx.RowsTouched += int64(in.Len())
	inRows := in.Rows()
	w := ctx.workers(len(inRows))
	outs := make([][]relation.Row, w)
	runWorkers(w, func(p int) {
		lo, hi := chunkRange(p, w, len(inRows))
		var kb relation.KeyBuf
		var out []relation.Row
		for i := lo; i < hi; i++ {
			if h.hasher.Unit(kb.Row(inRows[i], h.idx)) < h.ratio {
				out = append(out, inRows[i])
			}
		}
		outs[p] = out
	})
	var rows []relation.Row
	for _, o := range outs {
		rows = append(rows, o...)
	}
	return output(ctx, h.Schema(), rows)
}

// Children implements Node.
func (h *HashFilterNode) Children() []Node { return []Node{h.child} }

// WithChildren implements Node.
func (h *HashFilterNode) WithChildren(ch []Node) Node {
	if len(ch) != 1 {
		panic("algebra: HashFilter takes one child")
	}
	return MustHashFilter(ch[0], h.attrs, h.ratio, h.hasher)
}

// String implements Node.
func (h *HashFilterNode) String() string {
	return fmt.Sprintf("η(%s, %.4g, %s)", strings.Join(h.attrs, ","), h.ratio, h.hasher.Name())
}
