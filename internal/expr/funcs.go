package expr

import (
	"fmt"
	"strings"

	"github.com/sampleclean/svc/internal/relation"
)

// fn is a named scalar function application.
type fn struct {
	name string
	args []Expr
	impl func(args []relation.Value) relation.Value
}

// builtins maps function names to implementations. Substr exists mainly to
// model the paper's V22 view, whose string transformation of a key blocks
// hash push-down.
var builtins = map[string]struct {
	arity int
	impl  func(args []relation.Value) relation.Value
}{
	"substr": {3, func(a []relation.Value) relation.Value {
		if a[0].IsNull() {
			return relation.Null()
		}
		s := a[0].AsString()
		from, n := int(a[1].AsInt()), int(a[2].AsInt())
		if from < 0 {
			from = 0
		}
		if from > len(s) {
			from = len(s)
		}
		end := from + n
		if n < 0 || end > len(s) {
			end = len(s)
		}
		return relation.String(s[from:end])
	}},
	"mod": {2, func(a []relation.Value) relation.Value {
		if a[0].IsNull() || a[1].IsNull() || a[1].AsInt() == 0 {
			return relation.Null()
		}
		return relation.Int(a[0].AsInt() % a[1].AsInt())
	}},
	"abs": {1, func(a []relation.Value) relation.Value {
		if a[0].IsNull() {
			return relation.Null()
		}
		if a[0].Kind() == relation.KindFloat {
			f := a[0].AsFloat()
			if f < 0 {
				f = -f
			}
			return relation.Float(f)
		}
		i := a[0].AsInt()
		if i < 0 {
			i = -i
		}
		return relation.Int(i)
	}},
	"concat": {2, func(a []relation.Value) relation.Value {
		if a[0].IsNull() || a[1].IsNull() {
			return relation.Null()
		}
		return relation.String(a[0].AsString() + a[1].AsString())
	}},
	// toint/tofloat keep maintained aggregate columns type-stable: a
	// change-table merge adds a float delta to an integer count column and
	// must store back an integer.
	"toint": {1, func(a []relation.Value) relation.Value {
		if a[0].IsNull() {
			return relation.Null()
		}
		return relation.Int(a[0].AsInt())
	}},
	"tofloat": {1, func(a []relation.Value) relation.Value {
		if a[0].IsNull() {
			return relation.Null()
		}
		return relation.Float(a[0].AsFloat())
	}},
}

// Func applies the named builtin function. It panics on unknown names or
// wrong arity (plan-construction bugs, not data errors).
func Func(name string, args ...Expr) Expr {
	b, ok := builtins[name]
	if !ok {
		panic(fmt.Sprintf("expr: unknown function %q", name))
	}
	if len(args) != b.arity {
		panic(fmt.Sprintf("expr: %s expects %d args, got %d", name, b.arity, len(args)))
	}
	return &fn{name: name, args: args, impl: b.impl}
}

func (f *fn) Eval(row relation.Row) relation.Value {
	vals := make([]relation.Value, len(f.args))
	for i, a := range f.args {
		vals[i] = a.Eval(row)
	}
	return f.impl(vals)
}

func (f *fn) Bind(s relation.Schema) (Expr, error) {
	out := make([]Expr, len(f.args))
	for i, a := range f.args {
		b, err := a.Bind(s)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return &fn{name: f.name, args: out, impl: f.impl}, nil
}

func (f *fn) Columns(dst []string) []string {
	for _, a := range f.args {
		dst = a.Columns(dst)
	}
	return dst
}

func (f *fn) String() string {
	parts := make([]string, len(f.args))
	for i, a := range f.args {
		parts[i] = a.String()
	}
	return f.name + "(" + strings.Join(parts, ",") + ")"
}

// MustBind binds e against s and panics on error. Intended for statically
// constructed plans in tests and generators.
func MustBind(e Expr, s relation.Schema) Expr {
	b, err := e.Bind(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Between returns lo <= col <= hi, the predicate shape used by the paper's
// generated queries ("countryCode > 50 and countryCode < 100").
func Between(col string, lo, hi relation.Value) Expr {
	return And(Ge(Col(col), Lit(lo)), Le(Col(col), Lit(hi)))
}

// InInts returns a disjunction col = v1 or col = v2 ... for integer sets.
func InInts(col string, vals []int64) Expr {
	args := make([]Expr, len(vals))
	for i, v := range vals {
		args[i] = Eq(Col(col), IntLit(v))
	}
	return Or(args...)
}

// True is a predicate that accepts every row.
func True() Expr { return Lit(relation.Bool(true)) }
