package svc_test

// Tests for the documented last-writer-wins semantics of overlapping
// StartBackgroundRefresh calls (see serve.go): the newest refresher is
// the view's current one, displaced refreshers are fully stopped with
// their counters frozen but readable, and Err stays per-refresher.

import (
	"sync"
	"testing"
	"time"

	svc "github.com/sampleclean/svc"
)

func refreshScenario(t *testing.T) (*svc.Database, *svc.Table, *svc.StaleView) {
	t.Helper()
	d := svc.NewDatabase()
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < 200; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 10))})
	}
	plan := svc.GroupByAgg(svc.Scan("Log", logT.Schema()),
		[]string{"videoId"}, svc.CountAs("visitCount"))
	sv, err := svc.New(d, svc.ViewDefinition{Name: "v", Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.Close() })
	return d, logT, sv
}

// TestRefresherLastWriterWins overlaps two StartBackgroundRefresh calls
// and checks the documented contract.
func TestRefresherLastWriterWins(t *testing.T) {
	_, logT, sv := refreshScenario(t)

	r1 := sv.StartBackgroundRefresh(time.Millisecond)
	if sv.Refresher() != r1 {
		t.Fatal("first refresher should be current")
	}
	r2 := sv.StartBackgroundRefresh(time.Millisecond)
	// Last writer wins: r2 is current, and by the time the call returned
	// r1 was fully stopped (Stop waits out in-flight cycles).
	if sv.Refresher() != r2 {
		t.Fatal("second refresher should displace the first")
	}
	if r1.InCycle() {
		t.Fatal("displaced refresher should not be mid-cycle after the displacement")
	}
	frozen := r1.Cycles()

	// Only r2 folds this staged update in.
	if err := logT.StageInsert(svc.Row{svc.Int(10_000), svc.Int(1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sv.Stale() {
		if time.Now().After(deadline) {
			t.Fatal("current refresher did not fold the update in")
		}
		time.Sleep(time.Millisecond)
	}
	waitCycles := time.Now().Add(5 * time.Second)
	for r2.Cycles() == 0 {
		if time.Now().After(waitCycles) {
			t.Fatal("current refresher completed no cycle")
		}
		time.Sleep(time.Millisecond)
	}
	if got := r1.Cycles(); got != frozen {
		t.Fatalf("displaced refresher ran %d extra cycles", got-frozen)
	}
	if err := r1.Err(); err != nil {
		t.Fatalf("displaced refresher recorded error: %v", err)
	}
	if err := r2.Err(); err != nil {
		t.Fatalf("current refresher recorded error: %v", err)
	}
	// Stopping the displaced refresher again is an idempotent no-op.
	r1.Stop()
}

// TestRefresherConcurrentRestarts hammers StartBackgroundRefresh from
// many goroutines (run with -race): afterwards exactly the last-installed
// refresher runs, every other one is stopped, and Close stops the winner.
func TestRefresherConcurrentRestarts(t *testing.T) {
	_, logT, sv := refreshScenario(t)

	const starters = 8
	refs := make([]*svc.Refresher, starters)
	var wg sync.WaitGroup
	for i := 0; i < starters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			refs[i] = sv.StartBackgroundRefresh(time.Millisecond)
		}(i)
	}
	wg.Wait()

	cur := sv.Refresher()
	found := false
	for _, r := range refs {
		if r == cur {
			found = true
		}
	}
	if !found {
		t.Fatal("current refresher is none of the started ones")
	}
	// The winner still drives maintenance.
	if err := logT.StageInsert(svc.Row{svc.Int(20_000), svc.Int(2)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sv.Stale() {
		if time.Now().After(deadline) {
			t.Fatal("winner refresher did not fold the update in")
		}
		time.Sleep(time.Millisecond)
	}
	// Every loser is stopped: their cycle counters are frozen.
	before := make([]uint64, starters)
	for i, r := range refs {
		if r != cur {
			before[i] = r.Cycles()
		}
	}
	if err := logT.StageInsert(svc.Row{svc.Int(20_001), svc.Int(3)}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for sv.Stale() {
		if time.Now().After(deadline) {
			t.Fatal("winner refresher did not fold the second update in")
		}
		time.Sleep(time.Millisecond)
	}
	for i, r := range refs {
		if r != cur && r.Cycles() != before[i] {
			t.Fatalf("displaced refresher %d still cycling", i)
		}
	}
	sv.Close()
	if cur.InCycle() {
		t.Fatal("refresher mid-cycle after Close")
	}
}
