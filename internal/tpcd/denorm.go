package tpcd

import (
	"math/rand"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

// Sales is the denormalized fact table's name. The paper's Section 7.1
// "denormalizes the database and treats the TPCD queries as views on this
// denormalized schema"; the Section 7.6.1 data cube experiments run on
// this layout, where the cube's dimension columns all live in one wide
// table and hash push-down reaches the single fact scan.
const Sales = "sales"

// SalesSchema is one wide row per lineitem with the joined order,
// customer, nation and region attributes, keyed like lineitem.
func SalesSchema() relation.Schema {
	return relation.NewSchema([]relation.Column{
		{Name: "l_orderkey", Type: relation.KindInt},
		{Name: "l_linenumber", Type: relation.KindInt},
		{Name: "l_partkey", Type: relation.KindInt},
		{Name: "l_quantity", Type: relation.KindFloat},
		{Name: "l_extendedprice", Type: relation.KindFloat},
		{Name: "l_discount", Type: relation.KindFloat},
		{Name: "o_orderdate", Type: relation.KindInt},
		{Name: "c_custkey", Type: relation.KindInt},
		{Name: "n_nationkey", Type: relation.KindInt},
		{Name: "r_regionkey", Type: relation.KindInt},
	}, "l_orderkey", "l_linenumber")
}

// DenormGenerator produces the denormalized sales table and its update
// stream, sharing the Config knobs with the normalized generator.
type DenormGenerator struct {
	inner      *Generator
	custNation []int64 // customer -> nation
}

// NewDenormGenerator prepares a denormalized-workload generator.
func NewDenormGenerator(cfg Config) *DenormGenerator {
	g := NewGenerator(cfg)
	dg := &DenormGenerator{inner: g}
	dg.custNation = make([]int64, g.cfg.Customers)
	for i := range dg.custNation {
		dg.custNation[i] = g.rng.Int63n(25)
	}
	return dg
}

// Config returns the effective configuration.
func (dg *DenormGenerator) Config() Config { return dg.inner.cfg }

// wideRows builds the denormalized rows of one new order.
func (dg *DenormGenerator) wideRows() []relation.Row {
	g := dg.inner
	order, lines := g.newOrderRow()
	cust := order[1].AsInt()
	nation := dg.custNation[cust]
	region := nation % 5
	rows := make([]relation.Row, 0, len(lines))
	for _, l := range lines {
		rows = append(rows, relation.Row{
			l[0], l[1], l[2], // l_orderkey, l_linenumber, l_partkey
			l[4], l[5], l[6], // l_quantity, l_extendedprice, l_discount
			order[4], // o_orderdate
			relation.Int(cust),
			relation.Int(nation),
			relation.Int(region),
		})
	}
	return rows
}

// Generate creates the database with the wide sales table.
func (dg *DenormGenerator) Generate() (*db.Database, error) {
	d := db.New()
	t, err := d.Create(Sales, SalesSchema())
	if err != nil {
		return nil, err
	}
	for i := 0; i < dg.inner.cfg.Orders; i++ {
		for _, row := range dg.wideRows() {
			if err := t.Insert(row); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// StageUpdates stages ≈frac·|sales| changes: 80% new orders' wide rows,
// 20% price/quantity updates to existing rows.
func (dg *DenormGenerator) StageUpdates(d *db.Database, frac float64) error {
	g := dg.inner
	t := d.Table(Sales)
	target := int(frac * float64(t.Len()))
	staged := 0
	for staged < target {
		if g.rng.Float64() < 0.8 {
			for _, row := range dg.wideRows() {
				if err := t.StageInsert(row); err != nil {
					return err
				}
				staged++
			}
		} else {
			row := t.Rows().Row(g.rng.Intn(t.Len())).Clone()
			row[3] = relation.Float(1 + float64(g.rng.Intn(50))) // l_quantity
			row[4] = relation.Float(g.price())                   // l_extendedprice
			if err := t.StageUpdate(row); err != nil {
				return err
			}
			staged++
		}
	}
	return nil
}

// DenormCubeView is the Section 7.6.1 base cube over the denormalized
// sales table: revenue and row counts grouped by the four dimensions. All
// group attributes live in the single fact table, so η pushes down to the
// scan and SVC samples the entire maintenance pipeline.
func DenormCubeView() view.Definition {
	return view.Definition{Name: "baseCube", Plan: algebra.MustGroupBy(
		algebra.Scan(Sales, SalesSchema()),
		[]string{"c_custkey", "n_nationkey", "r_regionkey", "l_partkey"},
		algebra.CountAs("cnt"),
		algebra.SumAs(Revenue(), "revenue"),
	)}
}

// DenormRollupQueryRand returns a random predicate over the cube for
// accuracy sweeps (a random customer-key range).
func DenormRollupQueryRand(rng *rand.Rand, cfg Config) expr.Expr {
	cfg = cfg.withDefaults()
	lo := rng.Int63n(int64(cfg.Customers))
	hi := lo + 1 + rng.Int63n(int64(cfg.Customers)-lo)
	return expr.And(
		expr.Ge(expr.Col("c_custkey"), expr.IntLit(lo)),
		expr.Le(expr.Col("c_custkey"), expr.IntLit(hi)),
	)
}
