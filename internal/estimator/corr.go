package estimator

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
)

// Corr computes the SVC+CORR estimate of q(S′) (paper Section 5.1): run
// the query on the full stale view (cheap — it is already materialized),
// estimate the staleness error c from the corresponding samples, and
// correct:
//
//	q(S′) ≈ q(S) + (s·q(Ŝ′) − s·q(Ŝ))
//
// For sum/count the CLT interval comes from the correspondence subtract −̇
// (Definition 4). For avg, whose correction is a difference of means over
// possibly different membership, the interval uses a bootstrap over the
// key-matched pairs. For median/percentile the interval uses the paper's
// Section 5.2.5 bootstrap of the difference. For min/max see CorrMinMax.
func Corr(staleView *relation.Relation, s *clean.Samples, q Query, confidence float64) (Estimate, error) {
	rStale, err := RunExact(staleView, q)
	if err != nil {
		return Estimate{}, err
	}
	switch q.Agg {
	case SumQ, CountQ:
		return corrCLT(rStale, s, q, confidence)
	case AvgQ:
		return corrAvg(rStale, s, q, confidence)
	case MedianQ, PercentileQ:
		return corrBootstrap(rStale, s, q, confidence)
	case MinQ:
		return CorrMinMax(staleView, s, q)
	case MaxQ:
		return CorrMinMax(staleView, s, q)
	default:
		return Estimate{}, fmt.Errorf("estimator: unsupported aggregate %v", q.Agg)
	}
}

func corrCLT(rStale float64, s *clean.Samples, q Query, confidence float64) (Estimate, error) {
	freshT, err := transTable(s.Fresh, q, s.Ratio)
	if err != nil {
		return Estimate{}, err
	}
	staleT, err := transTable(s.Stale, q, s.Ratio)
	if err != nil {
		return Estimate{}, err
	}
	diffs := correspondenceSubtract(freshT, staleT)
	k := len(diffs)
	if k == 0 {
		// No sampled rows at all: the correction is zero with no
		// evidence; fall back to the stale answer with a degenerate
		// interval.
		return Estimate{Value: rStale, Lo: rStale, Hi: rStale, Confidence: confidence, Method: "svc+corr"}, nil
	}
	c := stats.Sum(diffs)
	gamma := stats.GammaForConfidence(confidence)
	// Horvitz–Thompson variance for the Bernoulli-sampled correction:
	// each view key enters the diff table independently with probability
	// m, so Var̂(c) = (1−m)·Σ diff² (diffs already carry the 1/m scale).
	ss := 0.0
	for _, d := range diffs {
		ss += d * d
	}
	half := gamma * math.Sqrt((1-s.Ratio)*ss)
	value := rStale + c
	return Estimate{
		Value: value, Lo: value - half, Hi: value + half,
		Confidence: confidence, Method: "svc+corr", K: k,
	}, nil
}

func corrAvg(rStale float64, s *clean.Samples, q Query, confidence float64) (Estimate, error) {
	freshVals, err := q.matching(s.Fresh)
	if err != nil {
		return Estimate{}, err
	}
	staleVals, err := q.matching(s.Stale)
	if err != nil {
		return Estimate{}, err
	}
	if len(freshVals) == 0 {
		return Estimate{}, fmt.Errorf("estimator: no matching rows in clean sample")
	}
	c := stats.Mean(freshVals) - stats.Mean(staleVals)
	value := rStale + c
	// Bootstrap the difference of means, resampling each side
	// independently as in the paper's Section 5.2.5 procedure.
	alpha := (1 - confidence) / 2
	rng := rand.New(rand.NewSource(bootstrapSeed))
	cs := make([]float64, bootstrapIters)
	for i := range cs {
		cs[i] = resampleMean(rng, freshVals) - resampleMean(rng, staleVals)
	}
	lo := stats.Quantile(cs, alpha)
	hi := stats.Quantile(cs, 1-alpha)
	return Estimate{
		Value: value, Lo: rStale + lo, Hi: rStale + hi,
		Confidence: confidence, Method: "svc+corr", K: len(freshVals),
	}, nil
}

func corrBootstrap(rStale float64, s *clean.Samples, q Query, confidence float64) (Estimate, error) {
	freshVals, err := q.matching(s.Fresh)
	if err != nil {
		return Estimate{}, err
	}
	staleVals, err := q.matching(s.Stale)
	if err != nil {
		return Estimate{}, err
	}
	if len(freshVals) == 0 || len(staleVals) == 0 {
		return Estimate{}, fmt.Errorf("estimator: empty sample for bootstrap correction")
	}
	pct := 0.5
	if q.Agg == PercentileQ {
		pct = q.Pct
	}
	stat := func(xs []float64) float64 { return stats.Quantile(xs, pct) }
	c := stat(freshVals) - stat(staleVals)
	value := rStale + c

	// Paper Section 5.2.5 (SVC+CORR variant): repeatedly subsample both
	// samples with replacement, apply AQP to each, record the difference,
	// and take the percentiles of the empirical c distribution.
	alpha := (1 - confidence) / 2
	rng := rand.New(rand.NewSource(bootstrapSeed))
	cs := make([]float64, bootstrapIters)
	buf1 := make([]float64, len(freshVals))
	buf2 := make([]float64, len(staleVals))
	for i := range cs {
		for j := range buf1 {
			buf1[j] = freshVals[rng.Intn(len(freshVals))]
		}
		for j := range buf2 {
			buf2[j] = staleVals[rng.Intn(len(staleVals))]
		}
		cs[i] = stat(buf1) - stat(buf2)
	}
	lo := stats.Quantile(cs, alpha)
	hi := stats.Quantile(cs, 1-alpha)
	return Estimate{
		Value: value, Lo: rStale + lo, Hi: rStale + hi,
		Confidence: confidence, Method: "svc+corr", K: len(freshVals),
	}, nil
}

func resampleMean(rng *rand.Rand, xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s += xs[rng.Intn(len(xs))]
	}
	return s / float64(len(xs))
}

// CorrMinMax implements the Appendix 12.1.1 correction for min and max:
// compute the row-by-row difference of the aggregation attribute over
// key-matched sample rows, take its extreme as the correction c, and add
// it to the stale view's extreme. The returned TailProb is the Cantelli
// bound on the probability that the unsampled view holds a more extreme
// element.
func CorrMinMax(staleView *relation.Relation, s *clean.Samples, q Query) (Estimate, error) {
	if q.Agg != MinQ && q.Agg != MaxQ {
		return Estimate{}, fmt.Errorf("estimator: CorrMinMax needs min or max, got %v", q.Agg)
	}
	rStale, err := RunExact(staleView, q)
	if err != nil {
		return Estimate{}, err
	}
	// Row-by-row differences on key-matched rows.
	attrIdx := s.Fresh.Schema().ColIndex(q.Attr)
	if attrIdx < 0 {
		return Estimate{}, fmt.Errorf("estimator: attribute %q not in sample schema", q.Attr)
	}
	keyIdx := s.Fresh.Schema().Key()
	var diffs []float64
	for _, fr := range s.Fresh.Rows() {
		st, ok := s.Stale.GetByEncodedKey(fr.KeyOf(keyIdx))
		if !ok || fr[attrIdx].IsNull() || st[attrIdx].IsNull() {
			continue
		}
		diffs = append(diffs, fr[attrIdx].AsFloat()-st[attrIdx].AsFloat())
	}
	c := 0.0
	if len(diffs) > 0 {
		c = diffs[0]
		for _, d := range diffs {
			if (q.Agg == MaxQ && d > c) || (q.Agg == MinQ && d < c) {
				c = d
			}
		}
	}
	value := rStale + c
	// Sampled rows of S′ are hard evidence: any sampled value beats a
	// corrected extreme that it exceeds (covers missing rows, which the
	// key-matched diffs cannot see).
	if sampleExtreme, err := RunExact(s.Fresh, q); err == nil && !math.IsNaN(sampleExtreme) {
		if q.Agg == MaxQ && sampleExtreme > value {
			value = sampleExtreme
		}
		if q.Agg == MinQ && sampleExtreme < value {
			value = sampleExtreme
		}
	}

	// Cantelli: eps is the gap between the estimate and the sample mean
	// of the attribute (paper: "the difference between max value estimate
	// and the average value").
	freshVals, err := q.matching(s.Fresh)
	if err != nil {
		return Estimate{}, err
	}
	tail := 1.0
	if len(freshVals) > 0 {
		variance := stats.Variance(freshVals)
		eps := math.Abs(value - stats.Mean(freshVals))
		tail = stats.CantelliUpper(variance, eps)
	}
	est := Estimate{
		Value: value, Confidence: 0, TailProb: tail,
		Method: "svc+corr", K: len(diffs),
	}
	if q.Agg == MaxQ {
		est.Lo, est.Hi = math.Inf(-1), value
	} else {
		est.Lo, est.Hi = value, math.Inf(1)
	}
	return est, nil
}

// Advise reports which estimator the Section 5.2.2 break-even analysis
// prefers for a sum/count query, estimated from the corresponding
// samples: SVC+CORR has lower variance while var(stale) ≤ 2·cov(stale,
// fresh) over key-matched transformed rows. It returns "svc+corr" or
// "svc+aqp".
func Advise(s *clean.Samples, q Query) (string, error) {
	if q.Agg != SumQ && q.Agg != CountQ && q.Agg != AvgQ {
		return "svc+aqp", nil
	}
	freshT, err := transTable(s.Fresh, q, s.Ratio)
	if err != nil {
		return "", err
	}
	staleT, err := transTable(s.Stale, q, s.Ratio)
	if err != nil {
		return "", err
	}
	freshBy := make(map[string]float64, len(freshT))
	for _, r := range freshT {
		freshBy[r.key] = r.val
	}
	var xs, ys []float64 // stale, fresh on the union of keys (0 when absent)
	seen := map[string]bool{}
	for _, r := range staleT {
		xs = append(xs, r.val)
		ys = append(ys, freshBy[r.key])
		seen[r.key] = true
	}
	for _, r := range freshT {
		if !seen[r.key] {
			xs = append(xs, 0)
			ys = append(ys, r.val)
		}
	}
	if stats.Variance(xs) <= 2*stats.Covariance(xs, ys) {
		return "svc+corr", nil
	}
	return "svc+aqp", nil
}
