package svc_test

import (
	"math/rand"
	"testing"

	svc "github.com/sampleclean/svc"
)

// durableDataset loads the running-example base tables deterministically
// (same seed → same bytes), the contract AttachDurableLog's recovery
// relies on across restarts.
func durableDataset(t testing.TB, videos, visits int) *svc.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
		svc.Col("duration", svc.KindFloat),
	}, "videoId"))
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(10)), svc.Float(rng.Float64() * 3)})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(rng.Int63n(int64(videos)))})
	}
	return d
}

// TestWithDurableLog exercises the public durability surface end to end:
// svc.New attaches the log via the option, staging and MaintainNow are
// recorded, and a restart (same dataset load, new AttachDurableLog)
// resumes with exactly the acknowledged pending set and applied counter.
func TestWithDurableLog(t *testing.T) {
	dir := t.TempDir()
	d := durableDataset(t, 50, 1000)
	def := svc.ViewDefinition{Name: "visitView", Plan: svc.GroupByAgg(
		svc.Join(
			svc.Scan("Log", d.Table("Log").Schema()),
			svc.Scan("Video", d.Table("Video").Schema()),
			svc.JoinSpec{Type: svc.Inner, On: svc.On("videoId", "videoId"), Merge: true},
		),
		[]string{"videoId", "ownerId"},
		svc.CountAs("visitCount"),
	)}
	sv, err := svc.New(d, def, svc.WithDurableLog(dir))
	if err != nil {
		t.Fatal(err)
	}
	lg := svc.DurableLogOf(d)
	if lg == nil {
		t.Fatal("WithDurableLog did not attach a log")
	}
	// Second view over the same database: the option is idempotent.
	if _, err := svc.New(d, svc.ViewDefinition{Name: "v2", Plan: svc.Scan("Video", d.Table("Video").Schema())},
		svc.WithDurableLog(dir)); err != nil {
		t.Fatal(err)
	}
	if svc.DurableLogOf(d) != lg {
		t.Fatal("second WithDurableLog replaced the attached log")
	}

	logT := d.Table("Log")
	for i := 0; i < 20; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(10_000 + i)), svc.Int(int64(i % 50))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sv.MaintainNow(); err != nil {
		t.Fatal(err)
	}
	// Pending tail past the maintenance boundary.
	for i := 0; i < 5; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(20_000 + i)), svc.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := lg.Stats()
	if st.Appends < 25 || st.Boundaries < 1 {
		t.Fatalf("log stats = %+v, want ≥ 25 appends across ≥ 1 boundary", st)
	}
	wantApplied := d.Pin().AppliedSeq()
	lg.Kill() // crash-stop, no flush

	d2 := durableDataset(t, 50, 1000)
	lg2, rs, err := svc.AttachDurableLog(d2, dir, svc.DurableLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if rs.PendingRecords != 5 {
		t.Fatalf("recovery = %+v, want exactly the 5-record pending tail", rs)
	}
	if got := d2.Pin().AppliedSeq(); got != wantApplied {
		t.Fatalf("recovered applied seq %d, want %d", got, wantApplied)
	}
	if _, ok := d2.Table("Log").Rows().Get(svc.Int(10_005)); !ok {
		t.Fatal("maintained insert missing from recovered base table")
	}
	if _, ok := d2.Table("Log").Insertions().Get(svc.Int(20_003)); !ok {
		t.Fatal("pending insert missing from recovered ΔR")
	}
}
