package workload

import (
	"fmt"
	"math"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/view"
)

// CheckInvariants replays a scenario under one config and asserts the
// deterministic correctness properties every fixture and property test
// leans on:
//
//  1. every SVC estimate is internally sane (Lo ≤ Value ≤ Hi, width ≥ 0);
//  2. the maintained view equals the recompute truth row-for-row (float
//     sums compared with relative tolerance — incremental maintenance
//     accumulates in a different order than recomputation);
//  3. after maintenance + fold, the SVC+CORR estimate equals the exact
//     answer (a clean sample of a fresh view has zero correction).
//
// Unlike the matrix's coverage measurements these never depend on sample
// luck, which is what keeps frozen fixtures stably green in CI.
func CheckInvariants(spec Spec, cfg Config, confidence float64) error {
	g, err := NewGenerator(spec)
	if err != nil {
		return err
	}
	d := g.DB()
	d.SetParallelism(cfg.Parallel)
	d.SetColumnar(cfg.Columnar)
	v, err := view.Materialize(d, spec.Definition())
	if err != nil {
		return err
	}
	m, err := view.NewMaintainerWithStrategy(v, cfg.Strategy)
	if err != nil {
		return err
	}

	for r := 0; r < spec.Rounds; r++ {
		if err := g.StageRound(r); err != nil {
			return err
		}

		snap := d.Snapshot()
		if err := snap.ApplyDeltas(); err != nil {
			return err
		}
		tv, err := view.Materialize(snap, spec.Definition())
		if err != nil {
			return err
		}
		truthRel := tv.Data()

		cl, err := clean.New(m, spec.SampleRatio, nil)
		if err != nil {
			return err
		}
		samples, err := cl.Clean(d)
		if err != nil {
			return err
		}
		for qi, q := range spec.QueryMix(r) {
			for _, est := range []struct {
				name string
				f    func() (estimator.Estimate, error)
			}{
				{"svc+corr", func() (estimator.Estimate, error) {
					return estimator.Corr(v.Data(), samples, q, confidence)
				}},
				{"svc+aqp", func() (estimator.Estimate, error) {
					return estimator.AQP(samples, q, confidence)
				}},
			} {
				e, err := est.f()
				if err != nil {
					return fmt.Errorf("%s round %d query %d %s: %w", spec.Name, r, qi, est.name, err)
				}
				if err := saneEstimate(e); err != nil {
					return fmt.Errorf("%s round %d query %d %s: %w", spec.Name, r, qi, est.name, err)
				}
			}
		}

		pin := d.Pin()
		maintained, _, err := m.MaintainAt(pin, v.Data())
		if err != nil {
			return fmt.Errorf("%s round %d maintain: %w", spec.Name, r, err)
		}
		if err := sameRelationByKey(maintained, truthRel); err != nil {
			return fmt.Errorf("%s round %d maintained view != recompute truth: %w", spec.Name, r, err)
		}
		if err := d.ApplyVersion(pin, nil); err != nil {
			return err
		}
		if err := v.Replace(maintained); err != nil {
			return err
		}

		// Post-maintenance: the clean sample of a fresh view carries zero
		// correction, so SVC+CORR must equal the exact answer.
		fresh, err := clean.New(m, spec.SampleRatio, nil)
		if err != nil {
			return err
		}
		fs, err := fresh.Clean(d)
		if err != nil {
			return err
		}
		for qi, q := range spec.QueryMix(r) {
			exact, err := estimator.RunExact(v.Data(), q)
			if err != nil || math.IsNaN(exact) {
				continue
			}
			e, err := estimator.Corr(v.Data(), fs, q, confidence)
			if err != nil {
				return fmt.Errorf("%s round %d post-maintain query %d: %w", spec.Name, r, qi, err)
			}
			tol := 1e-6 * math.Max(1, math.Abs(exact))
			if math.Abs(e.Value-exact) > tol {
				return fmt.Errorf("%s round %d post-maintain query %d: svc+corr %.9g != exact %.9g",
					spec.Name, r, qi, e.Value, exact)
			}
		}
	}
	return nil
}

func saneEstimate(e estimator.Estimate) error {
	if math.IsNaN(e.Value) || math.IsNaN(e.Lo) || math.IsNaN(e.Hi) {
		return fmt.Errorf("estimate has NaN: value=%v lo=%v hi=%v", e.Value, e.Lo, e.Hi)
	}
	if e.Hi < e.Lo {
		return fmt.Errorf("negative CI width: lo=%v hi=%v", e.Lo, e.Hi)
	}
	const slack = 1e-9
	span := math.Max(1, math.Abs(e.Value))
	if e.Value < e.Lo-slack*span || e.Value > e.Hi+slack*span {
		return fmt.Errorf("point estimate %v outside CI [%v, %v]", e.Value, e.Lo, e.Hi)
	}
	return nil
}

// sameRelationByKey compares two keyed relations as multisets with float
// tolerance. Maintenance strategies are free to order output differently
// from a recompute, so positional comparison would be wrong.
func sameRelationByKey(got, want *relation.Relation) error {
	if got.Len() != want.Len() {
		return fmt.Errorf("row count %d != %d", got.Len(), want.Len())
	}
	keyIdx := want.Schema().Key()
	for i := 0; i < want.Len(); i++ {
		w := want.Row(i)
		g, ok := got.GetByEncodedKey(w.KeyOf(keyIdx))
		if !ok {
			return fmt.Errorf("missing row %v", w)
		}
		if !rowsAlmostEqual(g, w) {
			return fmt.Errorf("row mismatch: got %v want %v", g, w)
		}
	}
	return nil
}

func rowsAlmostEqual(a, b relation.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() == relation.KindFloat || b[i].Kind() == relation.KindFloat {
			x, y := a[i].AsFloat(), b[i].AsFloat()
			diff := math.Abs(x - y)
			scale := math.Max(math.Abs(x), math.Abs(y))
			if diff > 1e-9*math.Max(scale, 1) {
				return false
			}
			continue
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
