package algebra

import (
	"testing"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// These benchmarks contrast the engine's hash64 key pipeline with the
// string-key implementation it replaced (reconstructed inline as the
// "stringkey" variants): build and probe of the hash-join table, and the
// group-by table. allocs/op is the headline number — the string paths
// allocate per row, the hash64 paths only amortized table storage.

const (
	benchRows   = 10000
	benchGroups = 100
)

// benchRelation returns rows with an int key column (0..benchGroups-1
// repeating) and a payload column.
func benchRelation(n int) []relation.Row {
	rows := make([]relation.Row, n)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Int(int64(i % benchGroups)),
			relation.Int(int64(i)),
			relation.Float(float64(i%7) / 2),
		}
	}
	return rows
}

func BenchmarkHashJoinBuild(b *testing.B) {
	rows := benchRelation(benchRows)
	idx := []int{0}
	b.Run("stringkey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			build := make(map[string][]int, len(rows))
			for ri, r := range rows {
				if rowHasNullKey(r, idx) {
					continue
				}
				k := r.KeyOf(idx)
				build[k] = append(build[k], ri)
			}
		}
	})
	b.Run("hash64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = buildRowTable(rows, idx, true, 1)
		}
	})
}

func BenchmarkHashJoinProbe(b *testing.B) {
	buildRows := benchRelation(benchRows)
	probeRows := benchRelation(benchRows / 2)
	idx := []int{0}
	b.Run("stringkey", func(b *testing.B) {
		build := make(map[string][]int, len(buildRows))
		for ri, r := range buildRows {
			k := r.KeyOf(idx)
			build[k] = append(build[k], ri)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var matches int
		for i := 0; i < b.N; i++ {
			matches = 0
			for _, p := range probeRows {
				if rowHasNullKey(p, idx) {
					continue
				}
				for range build[p.KeyOf(idx)] {
					matches++
				}
			}
		}
		_ = matches
	})
	b.Run("hash64", func(b *testing.B) {
		tab := buildRowTable(buildRows, idx, true, 1)
		b.ReportAllocs()
		b.ResetTimer()
		var matches int
		for i := 0; i < b.N; i++ {
			matches = 0
			for _, p := range probeRows {
				h := joinHash(p, idx)
				for range tab.lookup(h, p, idx) {
					matches++
				}
			}
		}
		_ = matches
	})
}

func BenchmarkGroupBy(b *testing.B) {
	rows := benchRelation(benchRows)
	sch := relation.NewSchema([]relation.Column{
		{Name: "g", Type: relation.KindInt},
		{Name: "id", Type: relation.KindInt},
		{Name: "x", Type: relation.KindFloat},
	})
	rel := relation.New(sch)
	for _, r := range rows {
		rel.MustInsert(r)
	}
	gIdx := []int{0}
	aggs := []AggSpec{CountAs("n"), SumAs(expr.Col("x"), "sx")}
	node := MustGroupBy(Scan("T", sch), []string{"g"}, aggs...)
	bound := []expr.Expr{nil, mustBind(b, expr.Col("x"), sch)}

	// stringkey is the replaced Eval loop: map[string]*group with a KeyOf
	// string per input row, per-group accumulator slices, then the same
	// output() materialization the operator performs.
	b.Run("stringkey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			type group struct {
				rep  relation.Row
				accs []accumulator
			}
			groups := make(map[string]*group)
			var order []string
			for _, row := range rows {
				k := row.KeyOf(gIdx)
				g, ok := groups[k]
				if !ok {
					g = &group{rep: row, accs: make([]accumulator, len(aggs))}
					groups[k] = g
					order = append(order, k)
				}
				for ai, spec := range aggs {
					var v relation.Value
					if bound[ai] != nil {
						v = bound[ai].Eval(row)
					}
					g.accs[ai].add(spec.Func, v)
				}
			}
			outRows := make([]relation.Row, 0, len(order))
			for _, k := range order {
				g := groups[k]
				out := make(relation.Row, 1+len(aggs))
				out[0] = g.rep[0]
				for ai, spec := range aggs {
					out[1+ai] = g.accs[ai].result(spec.Func)
				}
				outRows = append(outRows, out)
			}
			ctx := NewContext(nil)
			if _, err := output(ctx, node.Schema(), outRows); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash64", func(b *testing.B) {
		ctx := NewContext(map[string]*relation.Relation{"T": rel})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := node.Eval(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHashJoinEval measures the whole operator (including output
// materialization) serially and at 4 workers.
func BenchmarkHashJoinEval(b *testing.B) {
	log, video := bigFixture(20000, 5000)
	plan := MustJoin(Scan("Log", logSchema()), Alias(Scan("Video", videoSchema()), "v"),
		JoinSpec{On: []EqPair{{Left: "videoId", Right: "v.videoId"}}})
	for _, par := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "parallel4"}[par], func(b *testing.B) {
			ctx := NewContext(map[string]*relation.Relation{"Log": log, "Video": video})
			ctx.Parallelism = par
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Eval(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustBind(tb testing.TB, e expr.Expr, sch relation.Schema) expr.Expr {
	tb.Helper()
	bound, err := e.Bind(sch)
	if err != nil {
		tb.Fatal(err)
	}
	return bound
}

// BenchmarkColumnarJoinDrain measures the hash join drained through the
// batched pipeline — the columnar build/probe (vecjoin.go) against the
// row-at-a-time join on the same plan, serially and at 4 workers. The
// derived (selected) sides drain into ColSets, so this exercises the
// vector build, the CSR-packed table, and the gather-based emission.
func BenchmarkColumnarJoinDrain(b *testing.B) {
	log, video := bigFixture(100000, 5000)
	rels := map[string]*relation.Relation{"Log": log, "Video": video}
	plan := MustJoin(
		MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(10))),
		MustSelect(Alias(Scan("Video", videoSchema()), "v"), expr.Gt(expr.Col("v.videoId"), expr.IntLit(-1))),
		JoinSpec{On: []EqPair{{Left: "videoId", Right: "v.videoId"}}})
	for _, par := range []int{1, 4} {
		for _, mode := range []string{"columnar", "row"} {
			b.Run(map[int]string{1: "serial", 4: "parallel4"}[par]+"/"+mode, func(b *testing.B) {
				ctx := NewContext(rels)
				ctx.Parallelism = par
				ctx.NoColumnar = mode == "row"
				b.ReportAllocs()
				total := 0
				for i := 0; i < b.N; i++ {
					it := NewIterator(plan)
					if err := it.Open(ctx); err != nil {
						b.Fatal(err)
					}
					for {
						batch, err := it.Next()
						if err != nil {
							b.Fatal(err)
						}
						if batch == nil {
							break
						}
						total += batch.Len()
						batch.Release()
					}
					it.Close()
				}
				if total == 0 {
					b.Fatal("no rows drained")
				}
			})
		}
	}
}

// BenchmarkColumnarChainDrain measures a fused σ+Π scan chain (predicate
// plus computed projection) drained transiently — the columnar batch
// path's home turf — against the row-at-a-time pipeline on the same
// plan. This is the micro-level row-vs-columnar A/B; the end-to-end one
// is svcbench -run pipeline.
func BenchmarkColumnarChainDrain(b *testing.B) {
	log, video := bigFixture(100000, 5000)
	rels := map[string]*relation.Relation{"Log": log, "Video": video}
	plan := PushDownScans(MustProject(
		MustSelect(Scan("Log", logSchema()),
			expr.And(expr.Gt(expr.Col("videoId"), expr.IntLit(10)), expr.Lt(expr.Col("videoId"), expr.IntLit(4000)))),
		[]Output{
			OutCol("sessionId"),
			Out("v2", expr.Mul(expr.Col("videoId"), expr.IntLit(2))),
			Out("odd", expr.Add(expr.Mul(expr.Col("videoId"), expr.IntLit(3)), expr.Col("sessionId"))),
		}))
	for _, mode := range []string{"columnar", "row"} {
		b.Run(mode, func(b *testing.B) {
			ctx := NewContext(rels)
			ctx.NoColumnar = mode == "row"
			b.ReportAllocs()
			total := 0
			for i := 0; i < b.N; i++ {
				it := NewIterator(plan)
				if err := it.Open(ctx); err != nil {
					b.Fatal(err)
				}
				for {
					batch, err := it.Next()
					if err != nil {
						b.Fatal(err)
					}
					if batch == nil {
						break
					}
					total += batch.Len()
					batch.Release()
				}
				it.Close()
			}
			if total == 0 {
				b.Fatal("no rows drained")
			}
		})
	}
}
