// Package estimator implements SVC's query result estimation (paper
// Section 5 and Appendix 12.1): answering aggregate queries over a stale
// materialized view from the pair of corresponding samples produced by
// package clean.
//
// Two estimators are provided, matching the paper:
//
//   - SVC+AQP: a direct estimate s·q(Ŝ′) from the clean sample, with CLT
//     confidence intervals for sum/count/avg (Section 5.2.1), bootstrap
//     intervals for median/percentile (Section 5.2.5), and Cantelli tail
//     bounds for min/max (Appendix 12.1.1).
//   - SVC+CORR: a correction estimate q(S) + (s·q(Ŝ′) − s·q(Ŝ)), which
//     exploits the correlation between the corresponding samples. Its CLT
//     interval comes from the correspondence-subtract operator −̇
//     (Definition 4): a full outer join of the per-row transformed values
//     on the view key with NULLs as zero.
//
// Which estimator is more accurate depends on staleness: CORR wins while
// σ²_S ≤ 2·cov(S, S′) (Section 5.2.2); the Advise helper evaluates that
// break-even empirically from the samples. Group-by queries (GroupAQP,
// GroupCorr), outlier-index merging (Section 6.3), and predicate-level
// cleaning of SELECT queries (Appendix 12.1.2) build on the same two.
//
// Concurrency contract: every estimator is a pure function of its inputs
// — it treats the passed relations and sample pairs as immutable and
// allocates its own scratch state — so any number of goroutines may
// estimate concurrently over shared (pinned) relations. Nothing in this
// package mutates a relation.
package estimator
