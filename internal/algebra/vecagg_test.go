package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// observePaths records which aggregation paths aggDrain chooses while f
// runs. Not parallel-safe (aggPathHook is package state); tests using it
// must not run concurrent aggregations.
func observePaths(f func()) []string {
	var paths []string
	aggPathHook = func(p string) { paths = append(paths, p) }
	defer func() { aggPathHook = nil }()
	f()
	return paths
}

// aggFixture returns rels with a FuzzIn relation of n rows: hostile group
// keys (NULLs, NaN, -0.0, dictionary-friendly strings) and numeric
// payload columns.
func aggFixture(n int) (map[string]*relation.Relation, relation.Schema) {
	rng := rand.New(rand.NewSource(0xA66))
	rel := fuzzRel(rng, []string{"k", "s", "f", "x"}, []string{"int", "str", "float", "int"}, n)
	return map[string]*relation.Relation{"FuzzIn": rel}, rel.Schema()
}

func fuzzAggPlan(sch relation.Schema) Node {
	// A vectorizable select keeps the chain columnar; the group-by spans a
	// dictionary-encodable string and aggregates cover every function.
	// PushDownScans fuses the select into the scan — the form production
	// callers (view.Materialize, MaintainAt) evaluate, and the one the
	// columnar gate sees.
	child := MustSelect(Scan("FuzzIn", sch), expr.Ne(expr.Col("x"), expr.IntLit(-1)))
	return PushDownScans(MustGroupBy(child, []string{"k", "s"},
		CountAs("n"), SumAs(expr.Col("f"), "sum"), AvgAs(expr.Col("f"), "avg"),
		MinAs(expr.Col("x"), "min"), MaxAs(expr.Col("x"), "max")))
}

// The parallel columnar fold must produce bit-identical output (exact
// float equality via canonical encodings) to the serial stream, the row
// path, and the materialized oracle — including over breaker-rooted
// children (aggregation over a columnar join).
func TestAggColumnarFoldMatchesAllPaths(t *testing.T) {
	rels, sch := aggFixture(30000)
	agg := fuzzAggPlan(sch)
	width := agg.Schema().NumCols()
	oracle, err := EvalMaterialized(agg, NewContext(rels))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 4, 7} {
		for _, noCol := range []bool{false, true} {
			ctx := NewContext(rels)
			ctx.Parallelism = par
			ctx.NoColumnar = noCol
			got := drainIter(t, ctx, agg)
			requireSameRows(t, fmt.Sprintf("par=%d noCol=%v", par, noCol),
				got, oracle.Rows(), width)
		}
	}
}

// Aggregation over a columnar join (GroupBy over Join over keyless
// derived inputs) must run the ColSet fold and match the oracle.
func TestAggOverColumnarJoinFold(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	left := fuzzRel(rng, []string{"k", "s", "f"}, []string{"int", "str", "float"}, 4000)
	right := fuzzRel(rng, []string{"rk", "w"}, []string{"int", "int"}, 3000)
	rels := map[string]*relation.Relation{"L": left, "R": right}
	join := MustJoin(
		MustSelect(Scan("L", left.Schema()), expr.Ne(expr.Col("k"), expr.IntLit(-1))),
		MustSelect(Scan("R", right.Schema()), expr.Ne(expr.Col("w"), expr.IntLit(-1))),
		JoinSpec{On: On("k", "rk")})
	agg := MustGroupBy(join, []string{"s"}, CountAs("n"), SumAs(expr.Col("w"), "wsum"))
	width := agg.Schema().NumCols()
	oracle, err := EvalMaterialized(agg, NewContext(rels))
	if err != nil {
		t.Fatal(err)
	}
	var got []relation.Row
	paths := observePaths(func() {
		ctx := NewContext(rels)
		ctx.Parallelism = 4
		got = drainIter(t, ctx, agg)
	})
	requireSameRows(t, "agg over join", got, oracle.Rows(), width)
	if len(paths) != 1 || paths[0] != "fold" {
		t.Fatalf("aggregation over a columnar join took paths %v, want [fold]", paths)
	}
}

// The columnar-vs-parallel gate is the EFFECTIVE worker count: a parallel
// pin over a small input must stay on the serial columnar stream instead
// of falling back to the row path, and a large input under the same pin
// must take the parallel fold.
func TestAggParallelPinSmallInputStaysColumnar(t *testing.T) {
	smallRels, smallSch := aggFixture(parallelMinRows / 2)
	bigRels, bigSch := aggFixture(parallelMinRows * 16)

	run := func(rels map[string]*relation.Relation, sch relation.Schema) []string {
		return observePaths(func() {
			ctx := NewContext(rels)
			ctx.Parallelism = 8
			drainIter(t, ctx, fuzzAggPlan(sch))
		})
	}
	if paths := run(smallRels, smallSch); len(paths) != 1 || paths[0] != "stream" {
		t.Fatalf("small input under Parallelism=8 took paths %v, want [stream]", paths)
	}
	if paths := run(bigRels, bigSch); len(paths) != 1 || paths[0] != "fold" {
		t.Fatalf("large input under Parallelism=8 took paths %v, want [fold]", paths)
	}
	// NoColumnar still forces the row path.
	paths := observePaths(func() {
		ctx := NewContext(bigRels)
		ctx.Parallelism = 8
		ctx.NoColumnar = true
		drainIter(t, ctx, fuzzAggPlan(bigSch))
	})
	if len(paths) != 1 || paths[0] != "rows" {
		t.Fatalf("NoColumnar took paths %v, want [rows]", paths)
	}
}

// RowsTouched accounting must agree between the columnar fold and the
// row path (the maintenance-cost experiments compare strategies by it).
func TestAggColumnarFoldRowsTouchedParity(t *testing.T) {
	rels, sch := aggFixture(20000)
	agg := fuzzAggPlan(sch)
	colCtx := NewContext(rels)
	colCtx.Parallelism = 4
	drainIter(t, colCtx, agg)
	rowCtx := NewContext(rels)
	rowCtx.Parallelism = 4
	rowCtx.NoColumnar = true
	drainIter(t, rowCtx, agg)
	if colCtx.RowsTouched != rowCtx.RowsTouched {
		t.Fatalf("columnar fold RowsTouched %d != row path %d", colCtx.RowsTouched, rowCtx.RowsTouched)
	}
}

// A grand aggregate (no group-by) over an empty columnar stream must
// yield the SQL one-row result on the fold path too. A breaker-rooted
// child (join) forces the ColSet fold even at zero rows.
func TestAggColumnarGrandAggregateEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(0xE0))
	left := fuzzRel(rng, []string{"k", "f"}, []string{"int", "float"}, 0)
	right := fuzzRel(rng, []string{"rk"}, []string{"int"}, 0)
	rels := map[string]*relation.Relation{"L": left, "R": right}
	join := MustJoin(
		MustSelect(Scan("L", left.Schema()), expr.Ne(expr.Col("k"), expr.IntLit(-1))),
		MustSelect(Scan("R", right.Schema()), expr.Ne(expr.Col("rk"), expr.IntLit(-1))),
		JoinSpec{On: On("k", "rk")})
	agg := MustGroupBy(join, nil, CountAs("n"), SumAs(expr.Col("f"), "sum"))
	ctx := NewContext(rels)
	var got []relation.Row
	paths := observePaths(func() { got = drainIter(t, ctx, agg) })
	if len(paths) != 1 || paths[0] != "fold" {
		t.Fatalf("breaker-rooted grand aggregate took paths %v, want [fold]", paths)
	}
	if len(got) != 1 {
		t.Fatalf("grand aggregate over empty input: %d rows, want 1", len(got))
	}
	if !got[0][0].Equal(relation.Int(0)) || !got[0][1].IsNull() {
		t.Fatalf("grand aggregate row = %v, want [0 NULL]", got[0])
	}
}
