package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func videoSchema() Schema {
	return NewSchema([]Column{
		{Name: "videoId", Type: KindInt},
		{Name: "ownerId", Type: KindInt},
		{Name: "duration", Type: KindFloat},
	}, "videoId")
}

func TestSchemaBasics(t *testing.T) {
	s := videoSchema()
	if s.NumCols() != 3 {
		t.Fatalf("NumCols = %d", s.NumCols())
	}
	if s.ColIndex("ownerId") != 1 {
		t.Errorf("ColIndex(ownerId) = %d", s.ColIndex("ownerId"))
	}
	if s.ColIndex("nope") != -1 {
		t.Errorf("ColIndex(nope) should be -1")
	}
	if got := s.KeyNames(); len(got) != 1 || got[0] != "videoId" {
		t.Errorf("KeyNames = %v", got)
	}
	if !s.HasKey() {
		t.Error("HasKey should be true")
	}
	if !strings.Contains(s.String(), "KEY(videoId)") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dup", func() {
		NewSchema([]Column{{Name: "a"}, {Name: "a"}})
	})
	mustPanic("badkey", func() {
		NewSchema([]Column{{Name: "a"}}, "b")
	})
	mustPanic("empty", func() {
		NewSchema([]Column{{Name: ""}})
	})
}

func TestSchemaRename(t *testing.T) {
	s := videoSchema().Rename(func(n string) string { return "v." + n })
	if s.ColIndex("v.videoId") != 0 {
		t.Errorf("renamed schema: %v", s.Names())
	}
	if got := s.KeyNames(); got[0] != "v.videoId" {
		t.Errorf("renamed key = %v", got)
	}
}

func TestInsertGetDelete(t *testing.T) {
	r := New(videoSchema())
	if err := r.Insert(Row{Int(1), Int(10), Float(1.5)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(Row{Int(2), Int(10), Float(0.5)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(Row{Int(1), Int(99), Float(9)}); err == nil {
		t.Fatal("duplicate key insert should fail")
	}
	row, ok := r.Get(Int(1))
	if !ok || !row[1].Equal(Int(10)) {
		t.Fatalf("Get(1) = %v, %v", row, ok)
	}
	if !r.Delete(Int(1)) {
		t.Fatal("Delete(1) should succeed")
	}
	if r.Delete(Int(1)) {
		t.Fatal("second Delete(1) should fail")
	}
	if _, ok := r.Get(Int(1)); ok {
		t.Fatal("Get(1) after delete should fail")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	// The swapped-in row must still be findable.
	if _, ok := r.Get(Int(2)); !ok {
		t.Fatal("Get(2) after swap-delete should succeed")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	r := New(videoSchema())
	if err := r.Insert(Row{Int(1), Int(2)}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := r.Insert(Row{String("x"), Int(2), Float(1)}); err == nil {
		t.Error("wrong type should fail")
	}
	// Int into float column is promoted.
	if err := r.Insert(Row{Int(1), Int(2), Int(3)}); err != nil {
		t.Errorf("int->float promotion failed: %v", err)
	}
	row, _ := r.Get(Int(1))
	if row[2].Kind() != KindFloat {
		t.Errorf("promoted kind = %v", row[2].Kind())
	}
	// NULL goes anywhere.
	if err := r.Insert(Row{Int(2), Null(), Null()}); err != nil {
		t.Errorf("NULL insert failed: %v", err)
	}
}

func TestUpsert(t *testing.T) {
	r := New(videoSchema())
	replaced, err := r.Upsert(Row{Int(1), Int(10), Float(1)})
	if err != nil || replaced {
		t.Fatalf("first upsert: %v %v", replaced, err)
	}
	replaced, err = r.Upsert(Row{Int(1), Int(20), Float(2)})
	if err != nil || !replaced {
		t.Fatalf("second upsert: %v %v", replaced, err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	row, _ := r.Get(Int(1))
	if !row[1].Equal(Int(20)) {
		t.Errorf("upsert did not replace: %v", row)
	}
}

func TestDeleteWhere(t *testing.T) {
	r := New(videoSchema())
	for i := 0; i < 10; i++ {
		r.MustInsert(Row{Int(int64(i)), Int(int64(i % 2)), Float(float64(i))})
	}
	n := r.DeleteWhere(func(row Row) bool { return row[1].AsInt() == 0 })
	if n != 5 || r.Len() != 5 {
		t.Fatalf("DeleteWhere removed %d, len %d", n, r.Len())
	}
	for _, row := range r.Rows() {
		if row[1].AsInt() == 0 {
			t.Fatalf("row %v should be gone", row)
		}
	}
	// Index still coherent after reindex.
	if _, ok := r.Get(Int(3)); !ok {
		t.Fatal("Get(3) should still work")
	}
}

func TestCloneIsolation(t *testing.T) {
	r := New(videoSchema())
	r.MustInsert(Row{Int(1), Int(1), Float(1)})
	c := r.Clone()
	c.MustInsert(Row{Int(2), Int(2), Float(2)})
	c.Delete(Int(1))
	if r.Len() != 1 {
		t.Fatalf("original mutated: len %d", r.Len())
	}
	if _, ok := r.Get(Int(1)); !ok {
		t.Fatal("original lost row 1")
	}
}

func TestEqualAndSort(t *testing.T) {
	a := New(videoSchema())
	b := New(videoSchema())
	for i := 0; i < 5; i++ {
		a.MustInsert(Row{Int(int64(i)), Int(1), Float(1)})
	}
	for i := 4; i >= 0; i-- {
		b.MustInsert(Row{Int(int64(i)), Int(1), Float(1)})
	}
	if !a.Equal(b) {
		t.Fatal("keyed relations with same rows should be Equal regardless of order")
	}
	b.SortByKey()
	if b.Row(0)[0].AsInt() != 0 {
		t.Fatalf("SortByKey order wrong: %v", b.Row(0))
	}
	b.Delete(Int(0))
	if a.Equal(b) {
		t.Fatal("relations of different size should differ")
	}
}

// Property: after any random sequence of insert/delete operations, the
// index agrees with a naive linear scan.
func TestIndexConsistencyQuick(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(NewSchema([]Column{{Name: "k", Type: KindInt}, {Name: "v", Type: KindInt}}, "k"))
		shadow := map[int64]int64{}
		for _, op := range opsRaw {
			k := int64(op % 32)
			switch {
			case op < 128:
				v := rng.Int63n(1000)
				r.Upsert(Row{Int(k), Int(v)})
				shadow[k] = v
			default:
				r.Delete(Int(k))
				delete(shadow, k)
			}
		}
		if r.Len() != len(shadow) {
			return false
		}
		for k, v := range shadow {
			row, ok := r.Get(Int(k))
			if !ok || row[1].AsInt() != v {
				return false
			}
		}
		// every physical row must be indexed at its own position
		for i, row := range r.Rows() {
			got, ok := r.GetByEncodedKey(row.KeyOf([]int{0}))
			if !ok || !got.Equal(row) {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSecondaryIndexes(t *testing.T) {
	r := New(videoSchema())
	for i := int64(0); i < 10; i++ {
		r.MustInsert(Row{Int(i), Int(i % 3), Float(float64(i))})
	}
	ownerCol := []int{1}
	if r.HasIndex(ownerCol) {
		t.Fatal("no index should exist yet")
	}
	// The primary key always answers HasIndex.
	if !r.HasIndex([]int{0}) {
		t.Fatal("primary key should count as an index")
	}
	if pos := r.Probe([]int{0}, Row{Int(4)}.KeyOf([]int{0})); len(pos) != 1 || r.Row(pos[0])[0].AsInt() != 4 {
		t.Fatalf("PK probe = %v", pos)
	}
	r.BuildIndex(ownerCol)
	if !r.HasIndex(ownerCol) {
		t.Fatal("secondary index should exist")
	}
	pos := r.Probe(ownerCol, Row{Int(1)}.KeyOf([]int{0}))
	if len(pos) != 3 { // owners cycle mod 3 over 10 rows: owner 1 has rows 1,4,7
		t.Fatalf("probe(owner=1) = %v", pos)
	}
	for _, p := range pos {
		if r.Row(p)[1].AsInt() != 1 {
			t.Fatalf("probe returned wrong row %v", r.Row(p))
		}
	}
	// Mutations invalidate secondary indexes.
	r.MustInsert(Row{Int(100), Int(1), Float(0)})
	if r.HasIndex(ownerCol) {
		t.Fatal("insert should invalidate secondary indexes")
	}
	r.BuildIndex(ownerCol)
	r.Delete(Int(100))
	if r.HasIndex(ownerCol) {
		t.Fatal("delete should invalidate secondary indexes")
	}
	// Probe on a missing value is empty, not a panic.
	r.BuildIndex(ownerCol)
	if got := r.Probe(ownerCol, Row{Int(99)}.KeyOf([]int{0})); len(got) != 0 {
		t.Fatalf("probe(missing) = %v", got)
	}
}
