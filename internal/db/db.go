// Package db implements the base-data substrate: a catalog of primary-keyed
// tables with foreign-key metadata and, crucially for SVC, *delta
// relations* — the paper's ∂D = {ΔR₁..ΔRₖ, ∇R₁..∇Rₖ} (Section 3.1).
//
// Updates are staged rather than applied: an insertion goes to ΔR, a
// deletion of an existing record goes to ∇R, and an update is modeled as a
// deletion followed by an insertion, exactly as the paper defines. A
// materialized view computed before the staged deltas are applied is stale;
// maintenance strategies and SVC's sampled cleaning both read the staged
// deltas. ApplyDeltas folds them into the base tables (the "maintenance
// period" boundary).
package db

import (
	"fmt"

	"github.com/sampleclean/svc/internal/algebra"
	"github.com/sampleclean/svc/internal/relation"
)

// InsOf returns the context binding name of table's insertion delta ΔR.
func InsOf(table string) string { return "Δ" + table }

// DelOf returns the context binding name of table's deletion delta ∇R.
func DelOf(table string) string { return "∇" + table }

// ForeignKey records that Table.Column references RefTable's primary key.
// The hash push-down's foreign-key special case consults this metadata.
type ForeignKey struct {
	Table, Column, RefTable string
}

// Table is one base relation plus its staged deltas.
type Table struct {
	name      string
	base      *relation.Relation
	ins       *relation.Relation // ΔR: staged insertions (keyed like base)
	del       *relation.Relation // ∇R: staged deletions (full old rows)
	indexCols [][]int            // registered secondary indexes (column sets)
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() relation.Schema { return t.base.Schema() }

// Rows returns the current (pre-delta) contents.
func (t *Table) Rows() *relation.Relation { return t.base }

// Len reports the number of base rows (staged deltas excluded).
func (t *Table) Len() int { return t.base.Len() }

// Insertions returns the staged insertion relation ΔR.
func (t *Table) Insertions() *relation.Relation { return t.ins }

// Deletions returns the staged deletion relation ∇R.
func (t *Table) Deletions() *relation.Relation { return t.del }

// Insert adds a row directly to the base table (initial load, before any
// view is materialized).
func (t *Table) Insert(row relation.Row) error { return t.base.Insert(row) }

// MustInsert is Insert, panicking on error (generators).
func (t *Table) MustInsert(row relation.Row) { t.base.MustInsert(row) }

// StageInsert stages a new record into ΔR. The key must not exist in the
// base table (use StageUpdate for updates).
func (t *Table) StageInsert(row relation.Row) error {
	if t.base.Schema().HasKey() {
		k := row.KeyOf(t.base.Schema().Key())
		if _, exists := t.base.GetByEncodedKey(k); exists {
			return fmt.Errorf("db: %s: staged insert of existing key; use StageUpdate", t.name)
		}
	}
	_, err := t.ins.Upsert(row)
	return err
}

// StageDelete stages the deletion of the base row with the given key. The
// full old row is recorded in ∇R so maintenance can subtract its
// contribution from aggregates.
func (t *Table) StageDelete(key ...relation.Value) error {
	k := relation.Row(key).KeyOf(intRange(len(key)))
	old, ok := t.base.GetByEncodedKey(k)
	if !ok {
		// Deleting a row staged for insertion just un-stages it.
		if t.ins.DeleteByEncodedKey(k) {
			return nil
		}
		return fmt.Errorf("db: %s: staged delete of unknown key", t.name)
	}
	// Keep the first recorded old row if the same key is touched twice.
	if _, exists := t.del.GetByEncodedKey(k); !exists {
		if err := t.del.Insert(old.Clone()); err != nil {
			return err
		}
	}
	// Deleting a row that also had a staged update cancels the pending
	// re-insertion.
	t.ins.DeleteByEncodedKey(k)
	return nil
}

// StageUpdate stages an update of an existing record: the paper models it
// as a deletion of the old row followed by an insertion of the new one.
func (t *Table) StageUpdate(row relation.Row) error {
	keyIdx := t.base.Schema().Key()
	k := row.KeyOf(keyIdx)
	old, ok := t.base.GetByEncodedKey(k)
	if !ok {
		return fmt.Errorf("db: %s: staged update of unknown key", t.name)
	}
	if _, exists := t.del.GetByEncodedKey(k); !exists {
		if err := t.del.Insert(old.Clone()); err != nil {
			return err
		}
	}
	_, err := t.ins.Upsert(row)
	return err
}

// PendingSize reports the number of staged insertions and deletions.
func (t *Table) PendingSize() (ins, del int) { return t.ins.Len(), t.del.Len() }

// clearDeltas resets the staged deltas.
func (t *Table) clearDeltas() {
	t.ins = relation.New(t.base.Schema())
	t.del = relation.New(t.base.Schema())
}

// Database is a catalog of tables with foreign keys.
type Database struct {
	tables      map[string]*Table
	order       []string
	fks         []ForeignKey
	parallelism int
}

// New creates an empty database.
func New() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Create adds a table with the given schema; the schema must declare a
// primary key (paper Section 3.1 assumes one, adding a synthetic sequence
// otherwise — callers can do the same with an extra column).
func (d *Database) Create(name string, schema relation.Schema) (*Table, error) {
	if _, dup := d.tables[name]; dup {
		return nil, fmt.Errorf("db: table %q already exists", name)
	}
	if !schema.HasKey() {
		return nil, fmt.Errorf("db: table %q needs a primary key", name)
	}
	t := &Table{name: name, base: relation.New(schema)}
	t.clearDeltas()
	d.tables[name] = t
	d.order = append(d.order, name)
	return t, nil
}

// MustCreate is Create, panicking on error.
func (d *Database) MustCreate(name string, schema relation.Schema) *Table {
	t, err := d.Create(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// SetParallelism sets the intra-operator worker count stamped onto every
// evaluation context this database hands out (view materialization,
// maintenance, sampled cleaning). 0 and 1 mean serial; parallel
// evaluation produces identical results (see package algebra).
func (d *Database) SetParallelism(n int) { d.parallelism = n }

// Parallelism returns the configured intra-operator worker count.
func (d *Database) Parallelism() int { return d.parallelism }

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table { return d.tables[name] }

// Tables returns the table names in creation order.
func (d *Database) Tables() []string { return append([]string(nil), d.order...) }

// AddForeignKey registers that table.column references refTable's key.
func (d *Database) AddForeignKey(table, column, refTable string) error {
	t, ok := d.tables[table]
	if !ok {
		return fmt.Errorf("db: unknown table %q", table)
	}
	if !t.Schema().HasCol(column) {
		return fmt.Errorf("db: table %q has no column %q", table, column)
	}
	if _, ok := d.tables[refTable]; !ok {
		return fmt.Errorf("db: unknown referenced table %q", refTable)
	}
	d.fks = append(d.fks, ForeignKey{Table: table, Column: column, RefTable: refTable})
	return nil
}

// ForeignKeys returns the registered constraints.
func (d *Database) ForeignKeys() []ForeignKey { return append([]ForeignKey(nil), d.fks...) }

// HasPending reports whether any table has staged deltas — i.e. whether
// views over this database are stale (paper: S is stale when some delta
// relation is non-empty).
func (d *Database) HasPending() bool {
	for _, t := range d.tables {
		if t.ins.Len() > 0 || t.del.Len() > 0 {
			return true
		}
	}
	return false
}

// ApplyDeltas folds all staged deltas into the base tables and clears
// them: deletions first, then insertions (an update's delete+insert pair
// lands as a replacement).
func (d *Database) ApplyDeltas() error {
	for _, name := range d.order {
		t := d.tables[name]
		keyIdx := t.base.Schema().Key()
		for _, row := range t.del.Rows() {
			t.base.DeleteByEncodedKey(row.KeyOf(keyIdx))
		}
		for _, row := range t.ins.Rows() {
			if _, err := t.base.Upsert(row); err != nil {
				return fmt.Errorf("db: apply deltas to %s: %w", name, err)
			}
		}
		t.clearDeltas()
		t.rebuildIndexes()
	}
	return nil
}

// Snapshot returns a deep copy of the database, including staged deltas.
// Experiments use snapshots to evaluate competing maintenance approaches
// on identical states.
func (d *Database) Snapshot() *Database {
	nd := New()
	for _, name := range d.order {
		t := d.tables[name]
		nt := &Table{name: name, base: t.base.Clone(), ins: t.ins.Clone(), del: t.del.Clone()}
		nt.indexCols = append(nt.indexCols, t.indexCols...)
		nt.rebuildIndexes()
		nd.tables[name] = nt
		nd.order = append(nd.order, name)
	}
	nd.fks = append(nd.fks, d.fks...)
	nd.parallelism = d.parallelism
	return nd
}

// Context returns an evaluation context binding every base table under its
// name and its staged deltas under InsOf/DelOf names. Extra relations
// (e.g. the stale view) can be bound afterwards.
func (d *Database) Context() *algebra.Context {
	rels := make(map[string]*relation.Relation, 3*len(d.order))
	for _, name := range d.order {
		t := d.tables[name]
		rels[name] = t.base
		rels[InsOf(name)] = t.ins
		rels[DelOf(name)] = t.del
	}
	ctx := algebra.NewContext(rels)
	ctx.Parallelism = d.parallelism
	return ctx
}

func intRange(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// EnsureIndex registers and builds a secondary index on the named columns
// of a base table. Joins probe it instead of scanning (package algebra);
// ApplyDeltas rebuilds registered indexes after folding updates in.
// Registering the same column set twice is a no-op.
func (d *Database) EnsureIndex(table string, cols ...string) error {
	t, ok := d.tables[table]
	if !ok {
		return fmt.Errorf("db: unknown table %q", table)
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := t.Schema().ColIndex(c)
		if j < 0 {
			return fmt.Errorf("db: table %q has no column %q", table, c)
		}
		idx[i] = j
	}
	if t.base.HasIndex(idx) {
		sig := fmt.Sprint(idx)
		for _, have := range t.indexCols {
			if fmt.Sprint(have) == sig {
				return nil
			}
		}
	}
	t.indexCols = append(t.indexCols, idx)
	t.base.BuildIndex(idx)
	return nil
}

// rebuildIndexes re-creates a table's registered secondary indexes (after
// mutations invalidated them).
func (t *Table) rebuildIndexes() {
	for _, cols := range t.indexCols {
		t.base.BuildIndex(cols)
	}
}
