// Package clean implements Stale View Cleaning proper — the paper's core
// contribution (Sections 3 and 4): materializing a pair of *corresponding
// samples* of a stale materialized view and its up-to-date counterpart for
// a fraction of the full maintenance cost.
//
// Following the paper's Problem 1, the cleaner keeps a materialized sample
// view Ŝ = η_{u,m}(S) (built once, maintained thereafter) and derives a
// cleaning expression
//
//	Ŝ′ = C(Ŝ, D, ∂D),   C = pushdown(η_{u,m}(M)) with η(S) replaced by Ŝ
//
// where u is the view's primary key (Definition 2), M is the maintenance
// strategy (package view) and pushdown applies the Definition 3 rules so
// that rows outside the sample are never materialized. Because the same
// deterministic hash selects both samples, (Ŝ, Ŝ′) satisfy the
// Correspondence property (Property 1 / Proposition 2): same sampled keys,
// superfluous rows removed, missing rows sampled at rate m, keys preserved
// for updated rows. Correspondence is what keeps the SVC+CORR estimator's
// difference variance small (Section 5.2.2).
//
// Concurrency contract: the read path — CleanAt against a pinned
// db.Version with explicitly passed view/sample relations — is safe for
// any number of concurrent callers; it treats its inputs as immutable and
// materializes fresh output relations. The owner-side mutators (Adopt,
// AdoptRelation, CoerceSample, Reset, SetParallelism, SetServingSource)
// are single-writer: the svc serving layer serializes them under its
// maintenance lock, and callers driving a Cleaner directly must do the
// same. Clean (the unpinned convenience form) routes through the
// registered serving source so it shares the serving layer's consistent
// (version, view, sample) pinning.
package clean
