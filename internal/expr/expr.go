package expr

import (
	"fmt"
	"strings"

	"github.com/sampleclean/svc/internal/relation"
)

// Expr is a scalar expression over a row.
type Expr interface {
	// Eval evaluates the bound expression against a row. Calling Eval on
	// an unbound column reference panics: binding errors are supposed to
	// be caught at plan-build time via Bind.
	Eval(row relation.Row) relation.Value
	// Bind resolves column names against the schema, returning a bound
	// copy of the expression.
	Bind(s relation.Schema) (Expr, error)
	// Columns appends the names of all referenced columns to dst.
	Columns(dst []string) []string
	// String renders the expression for plan debugging.
	String() string
}

// ---------------------------------------------------------------- columns

// colRef references a column by name; idx is -1 until bound.
type colRef struct {
	name string
	idx  int
}

// Col references the named column.
func Col(name string) Expr { return &colRef{name: name, idx: -1} }

func (c *colRef) Eval(row relation.Row) relation.Value {
	if c.idx < 0 {
		panic(fmt.Sprintf("expr: evaluating unbound column %q", c.name))
	}
	return row[c.idx]
}

func (c *colRef) Bind(s relation.Schema) (Expr, error) {
	i := s.ColIndex(c.name)
	if i < 0 {
		return nil, fmt.Errorf("expr: unknown column %q in schema [%s]", c.name, s)
	}
	return &colRef{name: c.name, idx: i}, nil
}

func (c *colRef) Columns(dst []string) []string { return append(dst, c.name) }
func (c *colRef) String() string                { return c.name }

// ---------------------------------------------------------------- consts

type constant struct{ v relation.Value }

// Lit returns a constant expression.
func Lit(v relation.Value) Expr { return constant{v} }

// IntLit is shorthand for Lit(relation.Int(v)).
func IntLit(v int64) Expr { return constant{relation.Int(v)} }

// FloatLit is shorthand for Lit(relation.Float(v)).
func FloatLit(v float64) Expr { return constant{relation.Float(v)} }

// StringLit is shorthand for Lit(relation.String(v)).
func StringLit(v string) Expr { return constant{relation.String(v)} }

func (c constant) Eval(relation.Row) relation.Value   { return c.v }
func (c constant) Bind(relation.Schema) (Expr, error) { return c, nil }
func (c constant) Columns(dst []string) []string      { return dst }
func (c constant) String() string                     { return c.v.String() }

// ---------------------------------------------------------------- binary

// BinOp enumerates arithmetic operators.
type BinOp uint8

// Arithmetic operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
)

func (o BinOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

type binary struct {
	op   BinOp
	l, r Expr
}

// Add returns l + r.
func Add(l, r Expr) Expr { return &binary{OpAdd, l, r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return &binary{OpSub, l, r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return &binary{OpMul, l, r} }

// Div returns l / r (float division; NULL on zero divisor).
func Div(l, r Expr) Expr { return &binary{OpDiv, l, r} }

func (b *binary) Eval(row relation.Row) relation.Value {
	l, r := b.l.Eval(row), b.r.Eval(row)
	switch b.op {
	case OpAdd:
		return l.Add(r)
	case OpSub:
		return l.Sub(r)
	case OpMul:
		return l.Mul(r)
	default:
		return l.Div(r)
	}
}

func (b *binary) Bind(s relation.Schema) (Expr, error) {
	l, err := b.l.Bind(s)
	if err != nil {
		return nil, err
	}
	r, err := b.r.Bind(s)
	if err != nil {
		return nil, err
	}
	return &binary{b.op, l, r}, nil
}

func (b *binary) Columns(dst []string) []string { return b.r.Columns(b.l.Columns(dst)) }
func (b *binary) String() string                { return fmt.Sprintf("(%s %s %s)", b.l, b.op, b.r) }

// ---------------------------------------------------------------- compare

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string { return [...]string{"=", "!=", "<", "<=", ">", ">="}[o] }

type compare struct {
	op   CmpOp
	l, r Expr
}

// Eq returns l = r. Comparisons involving NULL evaluate to false (the
// predicate simply does not select the row), matching SQL WHERE semantics.
func Eq(l, r Expr) Expr { return &compare{OpEq, l, r} }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return &compare{OpNe, l, r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return &compare{OpLt, l, r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return &compare{OpLe, l, r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return &compare{OpGt, l, r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return &compare{OpGe, l, r} }

func (c *compare) Eval(row relation.Row) relation.Value {
	l, r := c.l.Eval(row), c.r.Eval(row)
	if l.IsNull() || r.IsNull() {
		return relation.Bool(false)
	}
	cmp := l.Compare(r)
	var ok bool
	switch c.op {
	case OpEq:
		ok = cmp == 0
	case OpNe:
		ok = cmp != 0
	case OpLt:
		ok = cmp < 0
	case OpLe:
		ok = cmp <= 0
	case OpGt:
		ok = cmp > 0
	case OpGe:
		ok = cmp >= 0
	}
	return relation.Bool(ok)
}

func (c *compare) Bind(s relation.Schema) (Expr, error) {
	l, err := c.l.Bind(s)
	if err != nil {
		return nil, err
	}
	r, err := c.r.Bind(s)
	if err != nil {
		return nil, err
	}
	return &compare{c.op, l, r}, nil
}

func (c *compare) Columns(dst []string) []string { return c.r.Columns(c.l.Columns(dst)) }
func (c *compare) String() string                { return fmt.Sprintf("(%s %s %s)", c.l, c.op, c.r) }

// ---------------------------------------------------------------- logical

type nary struct {
	op   string // "and" | "or"
	args []Expr
}

// And returns the conjunction of the arguments (true when empty).
func And(args ...Expr) Expr { return &nary{"and", args} }

// Or returns the disjunction of the arguments (false when empty).
func Or(args ...Expr) Expr { return &nary{"or", args} }

func (n *nary) Eval(row relation.Row) relation.Value {
	if n.op == "and" {
		for _, a := range n.args {
			if !a.Eval(row).AsBool() {
				return relation.Bool(false)
			}
		}
		return relation.Bool(true)
	}
	for _, a := range n.args {
		if a.Eval(row).AsBool() {
			return relation.Bool(true)
		}
	}
	return relation.Bool(false)
}

func (n *nary) Bind(s relation.Schema) (Expr, error) {
	out := make([]Expr, len(n.args))
	for i, a := range n.args {
		b, err := a.Bind(s)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return &nary{n.op, out}, nil
}

func (n *nary) Columns(dst []string) []string {
	for _, a := range n.args {
		dst = a.Columns(dst)
	}
	return dst
}

func (n *nary) String() string {
	parts := make([]string, len(n.args))
	for i, a := range n.args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, " "+n.op+" ") + ")"
}

type not struct{ e Expr }

// Not returns the boolean negation of e.
func Not(e Expr) Expr { return &not{e} }

func (n *not) Eval(row relation.Row) relation.Value {
	return relation.Bool(!n.e.Eval(row).AsBool())
}

func (n *not) Bind(s relation.Schema) (Expr, error) {
	e, err := n.e.Bind(s)
	if err != nil {
		return nil, err
	}
	return &not{e}, nil
}

func (n *not) Columns(dst []string) []string { return n.e.Columns(dst) }
func (n *not) String() string                { return "(not " + n.e.String() + ")" }

// ---------------------------------------------------------------- null ops

type coalesce struct{ args []Expr }

// Coalesce returns the first non-NULL argument, or NULL. The change-table
// merge projection uses Coalesce(delta.count, 0) to treat missing join
// partners as zero, as in the paper's Example 1 step 3.
func Coalesce(args ...Expr) Expr { return &coalesce{args} }

func (c *coalesce) Eval(row relation.Row) relation.Value {
	for _, a := range c.args {
		if v := a.Eval(row); !v.IsNull() {
			return v
		}
	}
	return relation.Null()
}

func (c *coalesce) Bind(s relation.Schema) (Expr, error) {
	out := make([]Expr, len(c.args))
	for i, a := range c.args {
		b, err := a.Bind(s)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return &coalesce{out}, nil
}

func (c *coalesce) Columns(dst []string) []string {
	for _, a := range c.args {
		dst = a.Columns(dst)
	}
	return dst
}

func (c *coalesce) String() string {
	parts := make([]string, len(c.args))
	for i, a := range c.args {
		parts[i] = a.String()
	}
	return "coalesce(" + strings.Join(parts, ",") + ")"
}

type isNull struct{ e Expr }

// IsNull reports whether e evaluates to NULL.
func IsNull(e Expr) Expr { return &isNull{e} }

func (n *isNull) Eval(row relation.Row) relation.Value {
	return relation.Bool(n.e.Eval(row).IsNull())
}

func (n *isNull) Bind(s relation.Schema) (Expr, error) {
	e, err := n.e.Bind(s)
	if err != nil {
		return nil, err
	}
	return &isNull{e}, nil
}

func (n *isNull) Columns(dst []string) []string { return n.e.Columns(dst) }
func (n *isNull) String() string                { return "(" + n.e.String() + " is null)" }

type ifExpr struct{ cond, then, els Expr }

// If returns then when cond is true, otherwise els. The query-estimation
// trans-table rewriting (paper Section 5.2.1) uses If to move a predicate
// into the SELECT clause as a 0/1 indicator.
func If(cond, then, els Expr) Expr { return &ifExpr{cond, then, els} }

func (f *ifExpr) Eval(row relation.Row) relation.Value {
	if f.cond.Eval(row).AsBool() {
		return f.then.Eval(row)
	}
	return f.els.Eval(row)
}

func (f *ifExpr) Bind(s relation.Schema) (Expr, error) {
	c, err := f.cond.Bind(s)
	if err != nil {
		return nil, err
	}
	t, err := f.then.Bind(s)
	if err != nil {
		return nil, err
	}
	e, err := f.els.Bind(s)
	if err != nil {
		return nil, err
	}
	return &ifExpr{c, t, e}, nil
}

func (f *ifExpr) Columns(dst []string) []string {
	return f.els.Columns(f.then.Columns(f.cond.Columns(dst)))
}

func (f *ifExpr) String() string {
	return fmt.Sprintf("if(%s, %s, %s)", f.cond, f.then, f.els)
}

// ColumnName reports whether e is a plain column reference, and if so its
// referenced column name. Plan rewriters (key derivation through
// projections, hash push-down) use this to recognize pass-through columns.
func ColumnName(e Expr) (string, bool) {
	if c, ok := e.(*colRef); ok {
		return c.name, true
	}
	return "", false
}
