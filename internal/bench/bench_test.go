package bench

import (
	"strconv"
	"strings"
	"testing"
)

// testScale keeps every experiment fast in unit tests.
const testScale = Scale(0.12)

func TestRegistryComplete(t *testing.T) {
	// All 19 paper figures plus the ablations and the engine-level
	// parallel/allocation experiment must be registered.
	want := []string{
		"fig4a", "fig4a-par", "fig4b", "fig5", "fig6a", "fig6b", "fig7a", "fig7b",
		"fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b",
		"fig11", "fig12", "fig13", "fig14a", "fig14b", "fig15", "fig16",
		"ablate-hash", "ablate-pushdown", "ablate-advisor", "ablate-nonunique",
		"serve", "serve-http", "pipeline", "ingest", "refresh-sched",
		"matrix", "cluster",
	}
	have := map[string]bool{}
	for _, id := range List() {
		have[id] = true
		if Describe(id) == "" {
			t.Errorf("%s has no description", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(have), len(want), List())
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", 1); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow(1.23456, "zzz")
	tb.Notes = append(tb.Notes, "n1")
	out := tb.Render()
	for _, want := range []string{"== x: T ==", "a", "bb", "1.235", "zzz", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("CSV = %q", csv)
	}
}

// runAndCheck executes the experiment at test scale and does basic
// structural validation.
func runAndCheck(t *testing.T, id string, minRows int) *Table {
	t.Helper()
	tb, err := Run(id, testScale)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tb.ID != id {
		t.Errorf("%s: table ID %q", id, tb.ID)
	}
	if len(tb.Rows) < minRows {
		t.Fatalf("%s: %d rows, want ≥ %d\n%s", id, len(tb.Rows), minRows, tb.Render())
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("%s: ragged row %v", id, row)
		}
	}
	return tb
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig4aShape(t *testing.T) {
	tb := runAndCheck(t, "fig4a", 10)
	// Speedup at 10% sample must exceed 1 and be larger than at 100%.
	first := parse(t, tb.Rows[0][5])
	last := parse(t, tb.Rows[len(tb.Rows)-1][5])
	if first <= 1 {
		t.Errorf("SVC-10%% speedup %v should exceed 1\n%s", first, tb.Render())
	}
	if first <= last {
		t.Errorf("speedup should shrink as ratio → 1: %v vs %v", first, last)
	}
}

func TestFig4bShape(t *testing.T) {
	tb := runAndCheck(t, "fig4b", 8)
	for _, row := range tb.Rows {
		if v := parse(t, row[3]); v <= 1 {
			t.Errorf("speedup %v at %s%% updates should exceed 1", v, row[0])
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tb := runAndCheck(t, "fig5", 12)
	var stale, corr float64
	for _, row := range tb.Rows {
		stale += parse(t, row[1])
		corr += parse(t, row[3])
	}
	if corr >= stale {
		t.Errorf("CORR total error %v should beat stale %v\n%s", corr, stale, tb.Render())
	}
}

func TestFig6Shapes(t *testing.T) {
	runAndCheck(t, "fig6a", 3)
	tb := runAndCheck(t, "fig6b", 9)
	// CORR should win at the lowest staleness.
	if parse(t, tb.Rows[0][1]) >= parse(t, tb.Rows[0][2]) {
		t.Errorf("CORR should win at 3%% updates\n%s", tb.Render())
	}
}

func TestFig7Shapes(t *testing.T) {
	tb := runAndCheck(t, "fig7a", 10)
	// V3 (push-down friendly) must show a larger speedup than V21
	// (blocked).
	speed := map[string]float64{}
	for _, row := range tb.Rows {
		speed[row[0]] = parse(t, row[4])
	}
	if speed["V3"] <= speed["V21"] {
		t.Errorf("V3 speedup (%v) should exceed V21 (%v)\n%s", speed["V3"], speed["V21"], tb.Render())
	}
	runAndCheck(t, "fig7b", 8)
}

func TestFig8Shapes(t *testing.T) {
	tb := runAndCheck(t, "fig8a", 4)
	// Across the skew range, the outlier index should reduce AQP error
	// in aggregate (per-z values are noisy at test scale).
	var aqp, aqpOut float64
	for _, row := range tb.Rows {
		aqp += parse(t, row[2])
		aqpOut += parse(t, row[3])
	}
	if aqpOut >= aqp {
		t.Errorf("outlier index should reduce AQP error overall: %v vs %v\n%s", aqpOut, aqp, tb.Render())
	}
	runAndCheck(t, "fig8b", 12)
}

func TestFig9Shapes(t *testing.T) {
	tb := runAndCheck(t, "fig9a", 8)
	for _, row := range tb.Rows {
		if row[1] == "change-table" {
			if v := parse(t, row[4]); v <= 1 {
				t.Errorf("%s: change-table view should speed up, got %v", row[0], v)
			}
		}
	}
	tb = runAndCheck(t, "fig9b", 6)
	var stale, corr float64
	for _, row := range tb.Rows {
		stale += parse(t, row[1])
		corr += parse(t, row[3])
	}
	if corr >= stale {
		t.Errorf("Conviva CORR total %v should beat stale %v\n%s", corr, stale, tb.Render())
	}
}

func TestFig10To13Shapes(t *testing.T) {
	// The cube experiments need a larger base than the other tests: at
	// tiny scales the cube has only a few hundred rows and the
	// correction's sampling noise swamps the (small) staleness.
	runCube := func(id string, minRows int) *Table {
		tb, err := Run(id, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) < minRows {
			t.Fatalf("%s: %d rows, want ≥ %d", id, len(tb.Rows), minRows)
		}
		return tb
	}
	tb := runCube("fig10a", 10)
	if v := parse(t, tb.Rows[0][3]); v <= 1 {
		t.Errorf("cube SVC-10%% speedup %v should exceed 1", v)
	}
	runCube("fig10b", 8)
	tb = runCube("fig11", 13)
	var stale, corr float64
	for _, row := range tb.Rows {
		stale += parse(t, row[1])
		corr += parse(t, row[3])
	}
	if corr >= stale {
		t.Errorf("cube CORR total %v should beat stale %v\n%s", corr, stale, tb.Render())
	}
	tb = runCube("fig12", 13)
	_ = tb
	runCube("fig13", 10)
}

func TestFig14To16Shapes(t *testing.T) {
	tb := runAndCheck(t, "fig14a", 8)
	if parse(t, tb.Rows[0][1]) >= parse(t, tb.Rows[len(tb.Rows)-1][1]) {
		t.Errorf("throughput should grow with batch size\n%s", tb.Render())
	}
	tb = runAndCheck(t, "fig14b", 8)
	if parse(t, tb.Rows[0][3]) <= parse(t, tb.Rows[len(tb.Rows)-1][3]) {
		t.Errorf("two-thread reduction should shrink with batch size\n%s", tb.Render())
	}
	tb = runAndCheck(t, "fig15", 10)
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "V2 at 3%") && strings.Contains(n, "V5 at 6%") {
			found = true
		}
	}
	if !found {
		t.Errorf("fig15 optima drifted from the paper's 3%%/6%%: %v", tb.Notes)
	}
	runAndCheck(t, "fig16", 30)
}

func TestAblations(t *testing.T) {
	tb := runAndCheck(t, "ablate-hash", 3)
	// linear must be the least uniform.
	dev := map[string]float64{}
	for _, row := range tb.Rows {
		dev[row[0]] = parse(t, row[2])
	}
	if dev["linear"] <= dev["fnv64a"] {
		t.Errorf("linear (%v) should be less uniform than fnv (%v)", dev["linear"], dev["fnv64a"])
	}
	tb = runAndCheck(t, "ablate-pushdown", 3)
	for _, row := range tb.Rows {
		if parse(t, row[2]) >= parse(t, row[4]) {
			t.Errorf("push-down should touch fewer rows: %v vs %v", row[2], row[4])
		}
	}
	runAndCheck(t, "ablate-advisor", 5)
	tb = runAndCheck(t, "ablate-nonunique", 2)
	// Non-unique sampling must show the wider spread, and the formula
	// must be in the right ballpark for it.
	uniqueSD := parse(t, tb.Rows[0][2])
	nonUniqueSD := parse(t, tb.Rows[1][2])
	if nonUniqueSD <= uniqueSD {
		t.Errorf("non-unique stddev %v should exceed unique %v\n%s", nonUniqueSD, uniqueSD, tb.Render())
	}
	predicted := parse(t, tb.Rows[1][3])
	if nonUniqueSD > 3*predicted || predicted > 3*nonUniqueSD {
		t.Errorf("measured non-unique stddev %v far from predicted %v", nonUniqueSD, predicted)
	}
}

func TestServeShape(t *testing.T) {
	tb := runAndCheck(t, "serve", 4)
	var duringMaint float64
	for _, row := range tb.Rows {
		if parse(t, row[1]) <= 0 {
			t.Errorf("%s readers served no queries\n%s", row[0], tb.Render())
		}
		if parse(t, row[2]) <= 0 {
			t.Errorf("%s readers: non-positive qps\n%s", row[0], tb.Render())
		}
		if parse(t, row[3]) <= 0 {
			t.Errorf("%s readers: writer staged nothing\n%s", row[0], tb.Render())
		}
		if parse(t, row[4]) <= 0 {
			t.Errorf("%s readers: no refresh cycles completed\n%s", row[0], tb.Render())
		}
		duringMaint += parse(t, row[7])
	}
	// The non-blocking evidence: some queries must complete while a
	// maintenance cycle is mid-run (summed across reader counts to stay
	// robust at tiny test scales).
	if duringMaint <= 0 {
		t.Errorf("no query ever completed during a maintenance cycle — readers look blocked\n%s", tb.Render())
	}
}

func TestRefreshSchedShape(t *testing.T) {
	tb := runAndCheck(t, "refresh-sched", 8)
	m := map[string]float64{}
	for _, row := range tb.Rows {
		m[row[1]] = parse(t, row[2])
	}
	// Win 1: one group cycle over K views sharing a base table must not
	// touch more rows than K independent cycles, and the saving must come
	// from real cache hits.
	if m["shared_rows"] > m["independent_rows"] {
		t.Errorf("shared cycle touched %v rows, independent %v\n%s",
			m["shared_rows"], m["independent_rows"], tb.Render())
	}
	if m["shared_hits"] <= 0 || m["rows_saved"] <= 0 {
		t.Errorf("no subplan sharing happened (hits=%v saved=%v)\n%s",
			m["shared_hits"], m["rows_saved"], tb.Render())
	}
	// Win 2: at the same per-tick maintenance budget, the error-budget
	// scheduler must serve a mean CI width no wider than fixed-interval
	// round-robin under the skewed mix.
	if m["sched_mean_ci_width"] > m["fixed_mean_ci_width"] {
		t.Errorf("scheduler mean CI width %v wider than fixed-interval %v\n%s",
			m["sched_mean_ci_width"], m["fixed_mean_ci_width"], tb.Render())
	}
}
