package estimator

import (
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// Vectorized predicate evaluation for the estimator transforms. The
// trans-table construction (Section 5.2.1), the direct AQP value
// extraction, and the SELECT-cleaning stale pass all evaluate one bound
// predicate over every row of a relation; predMatches batches that into
// the columnar path — predicate columns are gathered chunk-wise into
// pooled vectors and the predicate evaluates column-at-a-time — instead
// of interpreting the expression tree once per row. Falls back to the
// scalar interpreter for predicates the vectorizer does not cover; the
// result is identical either way.

// predMatches returns match[i] == bound.Eval(rel.Row(i)).AsBool() for
// every row of rel. bound must be bound against rel's schema; a nil
// predicate returns all-true.
func predMatches(rel *relation.Relation, bound expr.Expr) []bool {
	n := rel.Len()
	match := make([]bool, n)
	if bound == nil {
		for i := range match {
			match[i] = true
		}
		return match
	}
	// Below ~a quarter batch the per-query gather overhead beats the
	// saved per-row dispatch; tiny relations stay scalar.
	if n < 256 || !expr.CanVec(bound) {
		for i, row := range rel.Rows() {
			match[i] = bound.Eval(row).AsBool()
		}
		return match
	}
	src := expr.NewGatherSource(rel.Schema(), bound)
	defer src.Release()
	out := relation.GetVec()
	defer relation.PutVec(out)
	rows := rel.Rows()
	for base := 0; base < n; base += relation.BatchCap {
		m := n - base
		if m > relation.BatchCap {
			m = relation.BatchCap
		}
		src.Gather(rows, base, base+m)
		expr.EvalVec(bound, src, nil, out)
		for i := 0; i < m; i++ {
			match[base+i] = out.Truthy(i)
		}
	}
	return match
}
