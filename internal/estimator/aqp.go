package estimator

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/stats"
)

// bootstrapIters is the number of resamples for bootstrap intervals
// (Section 5.2.5). 200 keeps intervals stable without dominating query
// time.
const bootstrapIters = 200

// bootstrapSeed keeps bootstrap intervals deterministic for a given
// sample; estimation must be reproducible run to run.
const bootstrapSeed = 0x5fc0ffee

// AQP computes the SVC+AQP direct estimate of q(S′) from the clean sample
// Ŝ′ (paper Section 5.1): apply the query to the sample and scale.
//
// Intervals: CLT for sum/count/avg; bootstrap percentiles for
// median/percentile; sample extremes for min/max (no scaling exists — see
// CorrMinMax for the bounded corrected variant).
func AQP(s *clean.Samples, q Query, confidence float64) (Estimate, error) {
	switch q.Agg {
	case SumQ, CountQ, AvgQ:
		return aqpCLT(s, q, confidence)
	case MedianQ, PercentileQ:
		return aqpBootstrap(s, q, confidence)
	case MinQ, MaxQ:
		v, err := RunExact(s.Fresh, q)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Value: v, Lo: v, Hi: v, Confidence: 0, Method: "svc+aqp", K: s.Fresh.Len()}, nil
	default:
		return Estimate{}, fmt.Errorf("estimator: unsupported aggregate %v", q.Agg)
	}
}

func aqpCLT(s *clean.Samples, q Query, confidence float64) (Estimate, error) {
	trans, err := transTable(s.Fresh, q, s.Ratio)
	if err != nil {
		return Estimate{}, err
	}
	k := len(trans)
	if k == 0 {
		if q.Agg == AvgQ {
			return Estimate{}, fmt.Errorf("estimator: no matching rows in sample for avg")
		}
		// An empty Bernoulli sample is a legitimate outcome for sum and
		// count: the Horvitz–Thompson estimate is 0. (This happens when
		// an outlier index absorbs every sampled row, leaving the
		// regular stratum empty.)
		return Estimate{Value: 0, Lo: 0, Hi: 0, Confidence: confidence, Method: "svc+aqp", K: 0}, nil
	}
	vals := values(trans)
	gamma := stats.GammaForConfidence(confidence)
	var value, half float64
	switch q.Agg {
	case AvgQ:
		value = stats.Mean(vals)
		half = gamma * stats.Stdev(vals) / math.Sqrt(float64(k))
	default:
		// sum/count: the estimate is the sum of the scaled trans values.
		// The hash sampler is a Bernoulli (Poisson) design — every row
		// joins the sample independently with probability m, so the
		// sample size itself is random. The Horvitz–Thompson plug-in
		// variance for that design is (1−m)·Σ trans², which (unlike the
		// fixed-k textbook formula) correctly reports zero variance at
		// m = 1 and nonzero variance even when all trans values are
		// equal.
		value = stats.Sum(vals)
		ss := 0.0
		for _, v := range vals {
			ss += v * v
		}
		half = gamma * math.Sqrt((1-s.Ratio)*ss)
	}
	return Estimate{
		Value: value, Lo: value - half, Hi: value + half,
		Confidence: confidence, Method: "svc+aqp", K: k,
	}, nil
}

func aqpBootstrap(s *clean.Samples, q Query, confidence float64) (Estimate, error) {
	vals, err := q.matching(s.Fresh)
	if err != nil {
		return Estimate{}, err
	}
	if len(vals) == 0 {
		return Estimate{}, fmt.Errorf("estimator: no matching rows in sample")
	}
	pct := 0.5
	if q.Agg == PercentileQ {
		pct = q.Pct
	}
	stat := func(xs []float64) float64 { return stats.Quantile(xs, pct) }
	value := stat(vals)
	alpha := (1 - confidence) / 2
	rng := rand.New(rand.NewSource(bootstrapSeed))
	lo, hi, err := stats.Bootstrap(rng, vals, bootstrapIters, stat, alpha, 1-alpha)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Value: value, Lo: lo, Hi: hi,
		Confidence: confidence, Method: "svc+aqp", K: len(vals),
	}, nil
}
