package server

import (
	"context"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	svc "github.com/sampleclean/svc"
	"github.com/sampleclean/svc/client"
	"github.com/sampleclean/svc/server/api"
)

// buildScenario creates the running-example database with a Log table of
// `visits` rows over `videos` videos and returns a started server with
// the visitView created from svcql text.
func buildScenario(t *testing.T, videos, visits int, cfg Config) (*Server, *svc.Database, *svc.Table) {
	t.Helper()
	d := svc.NewDatabase()
	video := d.MustCreate("Video", svc.NewSchema([]svc.Column{
		svc.Col("videoId", svc.KindInt),
		svc.Col("ownerId", svc.KindInt),
	}, "videoId"))
	for i := 0; i < videos; i++ {
		video.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % 10))})
	}
	logT := d.MustCreate("Log", svc.NewSchema([]svc.Column{
		svc.Col("sessionId", svc.KindInt),
		svc.Col("videoId", svc.KindInt),
	}, "sessionId"))
	for i := 0; i < visits; i++ {
		logT.MustInsert(svc.Row{svc.Int(int64(i)), svc.Int(int64(i % videos))})
	}
	cfg.Addr = "127.0.0.1:0"
	srv := New(d, cfg)
	if _, err := srv.CreateView(`CREATE VIEW visitView AS
SELECT videoId, ownerId, COUNT(1) AS visitCount
FROM Log JOIN Video ON Log.videoId = Video.videoId
GROUP BY videoId, ownerId`); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, d, logT
}

// TestServeConcurrentNoTornReads is the acceptance integration test: 8
// HTTP clients query the view while writers stage inserts and the
// background refresher publishes maintenance cycles every 2ms. Every
// answer must be internally consistent (CI brackets the estimate, epoch
// stamped and monotone per client) — a torn read (view from one
// publication, sample from another) would break bracketing or produce a
// value outside the plausible band. Afterwards, a full drain must account
// for every staged row.
func TestServeConcurrentNoTornReads(t *testing.T) {
	const (
		videos  = 50
		visits  = 2000
		clients = 8
		writers = 2
		ops     = 300
	)
	srv, _, logT := buildScenario(t, videos, visits, Config{MaxInFlight: 64})
	sv := srv.View("visitView")
	sv.StartBackgroundRefresh(2 * time.Millisecond)

	var inserted atomic.Int64
	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(visits + 100_000*(w+1))
			for i := 0; i < ops; i++ {
				if err := logT.StageInsert(svc.Row{svc.Int(base + int64(i)), svc.Int(int64(i % videos))}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				inserted.Add(1)
				if i%16 == 15 {
					time.Sleep(300 * time.Microsecond)
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(writersDone) }()

	var served, duringMaint atomic.Int64
	var rg sync.WaitGroup
	for g := 0; g < clients; g++ {
		rg.Add(1)
		go func(g int) {
			defer rg.Done()
			c := client.New(srv.Addr())
			var lastEpoch uint64
			for done := false; !done; {
				select {
				case <-writersDone:
					done = true // one final query after writers stop
				default:
				}
				sql := `SELECT SUM(visitCount) FROM visitView`
				if g%3 == 1 {
					sql = `SELECT ownerId, SUM(visitCount) FROM visitView GROUP BY ownerId`
				}
				r := sv.Refresher()
				inBefore, cyclesBefore := r.InCycle(), r.Cycles()
				resp, err := c.Query(sql)
				if err != nil {
					t.Errorf("client %d: %v", g, err)
					return
				}
				if inBefore && r.InCycle() && r.Cycles() == cyclesBefore {
					duringMaint.Add(1)
				}
				if resp.AsOfEpoch == 0 {
					t.Errorf("client %d: missing AsOfEpoch", g)
					return
				}
				if resp.AsOfEpoch < lastEpoch {
					t.Errorf("client %d: epoch went backwards %d -> %d", g, lastEpoch, resp.AsOfEpoch)
					return
				}
				lastEpoch = resp.AsOfEpoch
				if resp.Estimate != nil {
					e := resp.Estimate
					if math.IsNaN(e.Value) || e.Lo > e.Value || e.Value > e.Hi {
						t.Errorf("client %d: CI [%v,%v] does not bracket %v", g, e.Lo, e.Hi, e.Value)
						return
					}
					// Plausible band: between the initial load and the final
					// total; a torn read mixing publications can fall far out.
					lo, hi := 0.5*float64(visits), 1.5*float64(visits+writers*ops)
					if e.Value < lo || e.Value > hi {
						t.Errorf("client %d: estimate %v outside [%v,%v]", g, e.Value, lo, hi)
						return
					}
				}
				for _, ge := range resp.Groups {
					if math.IsNaN(ge.Value) || ge.Lo > ge.Value || ge.Value > ge.Hi {
						t.Errorf("client %d: group %q CI [%v,%v] does not bracket %v", g, ge.Key, ge.Lo, ge.Hi, ge.Value)
						return
					}
				}
				served.Add(1)
			}
		}(g)
	}
	rg.Wait()
	<-writersDone
	if t.Failed() {
		return
	}

	// Drain and account for every staged row.
	sv.Close()
	if err := sv.MaintainNow(); err != nil {
		t.Fatal(err)
	}
	got, err := sv.ExactQuery(svc.Sum("visitCount", nil))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(int64(visits) + inserted.Load())
	if got != want {
		t.Fatalf("final total %v != %v (lost updates)", got, want)
	}
	if sv.Refresher().Cycles() == 0 {
		t.Fatal("no refresh cycles ran during the test")
	}
	t.Logf("served %d HTTP queries over %d cycles (%d completed mid-cycle)",
		served.Load(), sv.Refresher().Cycles(), duringMaint.Load())
}

// TestAdmissionControl saturates MaxInFlight with held queries and checks
// the next request is rejected with 503 immediately, then released
// queries complete fine.
func TestAdmissionControl(t *testing.T) {
	srv, _, _ := buildScenario(t, 10, 200, Config{MaxInFlight: 2})
	release := make(chan struct{})
	var held atomic.Int64
	hold := func() { held.Add(1); <-release }
	srv.holdQuery.Store(&hold)

	c := client.New(srv.Addr())
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Query(`SELECT SUM(visitCount) FROM visitView`)
			results <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for held.Load() != 2 { // wait until both slots are held
		if time.Now().After(deadline) {
			t.Fatal("held queries never started")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := c.Query(`SELECT SUM(visitCount) FROM visitView`)
	if !client.IsOverloaded(err) {
		t.Fatalf("expected 503 overloaded, got %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 || st.InFlight != 2 || st.MaxInFlight != 2 {
		t.Fatalf("stats should show the rejection and the held slots: %+v", st)
	}
	close(release) // held queries resume; later queries pass the hold instantly
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("held query should complete: %v", err)
		}
	}
}

// TestQueryDeadline holds a query past its deadline and checks the
// request fails with 504 while the slot is released once the query
// finally finishes.
func TestQueryDeadline(t *testing.T) {
	srv, _, _ := buildScenario(t, 10, 200, Config{MaxInFlight: 4})
	release := make(chan struct{})
	hold := func() { <-release }
	srv.holdQuery.Store(&hold)
	c := client.New(srv.Addr())
	_, err := c.QueryDeadline(`SELECT SUM(visitCount) FROM visitView`, 30*time.Millisecond)
	if !client.IsDeadlineExceeded(err) {
		t.Fatalf("expected 504 deadline exceeded, got %v", err)
	}
	close(release)
	// The timed-out query still finishes in the background and frees its
	// admission slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.sem) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission slot never released after timeout")
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := c.Stats()
	if st.TimedOut == 0 {
		t.Fatalf("stats should count the timeout: %+v", st)
	}
}

// TestDeadlineForClampsOverflow pins the deadline arithmetic: a huge
// deadline_ms must clamp to MaxDeadline, not wrap negative past the cap
// into an instant 504.
func TestDeadlineForClampsOverflow(t *testing.T) {
	s := New(svc.NewDatabase(), Config{DefaultDeadline: time.Second, MaxDeadline: 10 * time.Second})
	for reqMillis, want := range map[int64]time.Duration{
		0:                   time.Second, // default
		250:                 250 * time.Millisecond,
		10_000:              10 * time.Second, // exactly the cap
		13_000_000_000_000:  10 * time.Second, // would overflow ms→ns
		(1 << 62) / 1000000: 10 * time.Second,
	} {
		if got := s.deadlineFor(reqMillis); got != want {
			t.Errorf("deadlineFor(%d) = %v, want %v", reqMillis, got, want)
		}
		if got := s.deadlineFor(reqMillis); got <= 0 {
			t.Errorf("deadlineFor(%d) = %v is not positive", reqMillis, got)
		}
	}
}

// TestGracefulShutdownDrains proves the shutdown ordering: a query in
// flight when Shutdown starts completes with a full answer, and only then
// do the background refreshers stop.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, _, _ := buildScenario(t, 10, 500, Config{MaxInFlight: 4})
	sv := srv.View("visitView")
	sv.StartBackgroundRefresh(time.Millisecond)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hold := func() { once.Do(func() { close(entered) }); <-release }
	srv.holdQuery.Store(&hold)

	c := client.New(srv.Addr())
	queryErr := make(chan error, 1)
	go func() {
		_, err := c.QueryDeadline(`SELECT SUM(visitCount) FROM visitView`, 5*time.Second)
		queryErr <- err
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must be blocked on the in-flight query.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) while a query was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-queryErr; err != nil {
		t.Fatalf("in-flight query should complete during graceful shutdown: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After Shutdown the refresher is stopped: no further cycles run.
	cycles := sv.Refresher().Cycles()
	time.Sleep(20 * time.Millisecond)
	if got := sv.Refresher().Cycles(); got != cycles {
		t.Fatalf("refresher still cycling after shutdown: %d -> %d", cycles, got)
	}
}

// TestQueryRouting covers the three statement routes and their errors.
func TestQueryRouting(t *testing.T) {
	srv, _, logT := buildScenario(t, 10, 300, Config{})
	c := client.New(srv.Addr())

	// Estimator route: aggregate against the served view.
	resp, err := c.Query(`SELECT COUNT(1) FROM visitView`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "estimate" || resp.Estimate == nil || resp.StaleValue == nil || resp.View != "visitView" {
		t.Fatalf("bad estimate response: %+v", resp)
	}
	if resp.AsOfEpoch == 0 {
		t.Fatal("estimate missing AsOfEpoch")
	}

	// Group route, sorted labels.
	resp, err = c.Query(`SELECT ownerId, SUM(visitCount) FROM visitView GROUP BY ownerId`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "groups" || len(resp.Groups) == 0 {
		t.Fatalf("bad groups response: %+v", resp)
	}
	for i := 1; i < len(resp.Groups); i++ {
		if resp.Groups[i-1].Key > resp.Groups[i].Key {
			t.Fatalf("groups not sorted: %q > %q", resp.Groups[i-1].Key, resp.Groups[i].Key)
		}
	}

	// Pipeline route: base-table SELECT, with truncation metadata, pinned
	// staleness fields.
	if err := logT.StageInsert(svc.Row{svc.Int(10_000), svc.Int(1)}); err != nil {
		t.Fatal(err)
	}
	resp, err = c.QueryRequest(&api.QueryRequest{SQL: `SELECT sessionId, videoId FROM Log WHERE videoId = 1`, MaxRows: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "rows" || len(resp.Rows) != 5 || !resp.Truncated || resp.RowCount <= 5 {
		t.Fatalf("bad rows response: kind=%s rows=%d truncated=%v count=%d",
			resp.Kind, len(resp.Rows), resp.Truncated, resp.RowCount)
	}
	if !resp.Pending {
		t.Fatal("rows response should report pending staged deltas")
	}
	if len(resp.Columns) != 2 || resp.Columns[0] != "sessionId" {
		t.Fatalf("bad columns: %v", resp.Columns)
	}

	// Errors: CREATE VIEW on /query; unknown relation; bad column.
	if _, err := c.Query(`CREATE VIEW v2 AS SELECT videoId FROM Video`); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("CREATE VIEW on /query should 400, got %v", err)
	}
	if _, err := c.Query(`SELECT x FROM nowhere`); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown relation should 404, got %v", err)
	}
	if _, err := c.Query(`SELECT SUM(nosuch) FROM visitView`); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("bad column should 400, got %v", err)
	}
}

// TestEmptyGroupResultIsEpochStamped pins the every-answer-is-stamped
// contract on the edge the per-group epochs can't cover: a GROUP BY
// against an empty view has zero groups, and the answer must still carry
// a non-zero AsOfEpoch (stamped from the current publication).
func TestEmptyGroupResultIsEpochStamped(t *testing.T) {
	srv, _, _ := buildScenario(t, 10, 300, Config{})
	c := client.New(srv.Addr())
	if _, err := c.CreateView(`CREATE VIEW empty AS
SELECT videoId, COUNT(1) AS n FROM Log WHERE sessionId < 0 GROUP BY videoId`, 1.0); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(`SELECT videoId, SUM(n) FROM empty GROUP BY videoId`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "groups" || len(resp.Groups) != 0 {
		t.Fatalf("expected an empty groups answer, got %+v", resp)
	}
	if resp.AsOfEpoch == 0 {
		t.Fatal("empty group answer must still be epoch-stamped")
	}
}

func isStatus(err error, code int) bool {
	ae, ok := err.(*client.APIError)
	return ok && ae.StatusCode == code
}

// TestCreateViewOverWire creates a second view through POST /views and
// queries it.
func TestCreateViewOverWire(t *testing.T) {
	srv, _, _ := buildScenario(t, 10, 300, Config{Refresh: 5 * time.Millisecond})
	c := client.New(srv.Addr())
	created, err := c.CreateView(`CREATE VIEW perVideo AS
SELECT videoId, COUNT(1) AS n FROM Log GROUP BY videoId`, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if created.View != "perVideo" || created.Rows != 10 {
		t.Fatalf("bad create response: %+v", created)
	}
	resp, err := c.Query(`SELECT SUM(n) FROM perVideo`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Estimate.Value != 300 {
		t.Fatalf("fresh view should answer exactly 300, got %v", resp.Estimate.Value)
	}
	// Duplicate names are rejected.
	if _, err := c.CreateView(`CREATE VIEW perVideo AS SELECT videoId, COUNT(1) AS n FROM Log GROUP BY videoId`, 0); err == nil {
		t.Fatal("duplicate view name should fail")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Views) != 2 {
		t.Fatalf("stats should list both views: %+v", st.Views)
	}
	// The batch/vector pool gauges must be live: this server has run
	// materializations and queries, so the batch pool has been hit, and
	// the hit rates must be well-formed fractions.
	if st.Pools.BatchGets == 0 {
		t.Fatalf("stats should gauge batch pool traffic: %+v", st.Pools)
	}
	for _, r := range []float64{st.Pools.BatchHitRate, st.Pools.VecHitRate} {
		if r < 0 || r > 1 {
			t.Fatalf("pool hit rate %v outside [0,1]: %+v", r, st.Pools)
		}
	}
}

// TestSchedulerStatsOverWire: a server configured with the error-budget
// scheduler exposes scheduler and shared-scan gauges in GET /stats, and
// the per-view refresher reports its deferred skips.
func TestSchedulerStatsOverWire(t *testing.T) {
	srv, _, logT := buildScenario(t, 30, 1000, Config{
		Refresh:       2 * time.Millisecond,
		SchedInterval: 2 * time.Millisecond,
		SchedBudget:   2,
	})
	if srv.Scheduler() == nil {
		t.Fatal("SchedInterval should construct a scheduler")
	}
	c := client.New("http://" + srv.Addr())
	// A second view sharing the Log table: the scheduler must maintain
	// both in one group cycle (shared-table closure) with subplan hits.
	if _, err := srv.CreateView(`CREATE VIEW sessionView AS
SELECT videoId, COUNT(1) AS sessions
FROM Log JOIN Video ON Log.videoId = Video.videoId
GROUP BY videoId`); err != nil {
		t.Fatal(err)
	}
	// Drive queries so the query-mix model has mass, then stage updates
	// and wait for the scheduler to run cycles.
	for i := 0; i < 5; i++ {
		if _, err := c.Query(`SELECT SUM(visitCount) FROM visitView`); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if err := logT.StageInsert(svc.Row{svc.Int(int64(100_000 + i)), svc.Int(int64(i % 30))}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Sched == nil {
			t.Fatal("stats response missing sched block")
		}
		if st.Sched.GroupCycles > 0 && st.Sched.SharedHits > 0 {
			if len(st.Sched.Views) != 2 {
				t.Fatalf("sched views=%d, want 2", len(st.Sched.Views))
			}
			for _, vs := range st.Views {
				if !vs.Scheduled {
					t.Fatalf("view %s not marked scheduled", vs.Name)
				}
				if vs.Name == "visitView" && vs.Queries == 0 {
					t.Fatal("query counter not surfaced")
				}
				// The refresher defers to the scheduler; its split must
				// sum to the total.
				if vs.Skips != vs.SkipsIdle+vs.SkipsDeferred {
					t.Fatalf("%s: skips=%d != idle %d + deferred %d",
						vs.Name, vs.Skips, vs.SkipsIdle, vs.SkipsDeferred)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler never ran a sharing cycle: %+v", st.Sched)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
