package algebra

import (
	"testing"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// pipelinePlans returns a table of plans covering every operator (and
// their compositions) over the Log/Video fixture.
func pipelinePlans(t *testing.T) map[string]Node {
	t.Helper()
	scanLog := func() Node { return Scan("Log", logSchema()) }
	scanVideo := func() Node { return Scan("Video", videoSchema()) }
	sel := MustSelect(scanLog(), expr.Eq(expr.Col("videoId"), expr.IntLit(1)))
	proj := MustProject(scanLog(), []Output{OutCol("sessionId"), Out("vid2", expr.Mul(expr.Col("videoId"), expr.IntLit(2)))})
	join := MustJoin(scanLog(), Alias(scanVideo(), "v"),
		JoinSpec{On: []EqPair{{Left: "videoId", Right: "v.videoId"}}})
	agg := MustGroupBy(scanLog(), []string{"videoId"}, CountAs("n"))
	hf := MustHashFilter(scanLog(), []string{"sessionId"}, 0.5, nil)
	fused := MustProject(
		MustSelect(scanLog(), expr.Gt(expr.Col("videoId"), expr.IntLit(1))),
		[]Output{OutCol("sessionId"), OutCol("videoId")})
	u, err := Union(sel, MustSelect(scanLog(), expr.Eq(expr.Col("videoId"), expr.IntLit(3))))
	if err != nil {
		t.Fatal(err)
	}
	diff, err := Difference(scanLog(), sel)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := Intersect(scanLog(), sel)
	if err != nil {
		t.Fatal(err)
	}
	aggOverJoin := MustGroupBy(join, []string{"v.ownerId"}, CountAs("visits"), SumAs(expr.Col("v.duration"), "dur"))
	return map[string]Node{
		"select":         sel,
		"project":        proj,
		"join":           join,
		"groupby":        agg,
		"hashfilter":     hf,
		"fused-chain":    fused,
		"union":          u,
		"difference":     diff,
		"intersect":      inter,
		"agg-over-join":  aggOverJoin,
		"select-on-join": MustSelect(join, expr.Gt(expr.Col("v.duration"), expr.FloatLit(0.6))),
	}
}

// The pipelined Eval must be row-for-row identical to the materialized
// evaluation for every operator shape, serially and in parallel.
func TestPipelinedMatchesMaterialized(t *testing.T) {
	for name, plan := range pipelinePlans(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := EvalMaterialized(plan, fixtureCtx())
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{0, 4} {
				ctx := fixtureCtx()
				ctx.Parallelism = par
				got := mustEval(t, plan, ctx)
				if !got.Schema().Equal(ref.Schema()) {
					t.Fatalf("parallel=%d: schema [%s] != [%s]", par, got.Schema(), ref.Schema())
				}
				if got.Len() != ref.Len() {
					t.Fatalf("parallel=%d: %d rows != %d rows", par, got.Len(), ref.Len())
				}
				for i := 0; i < ref.Len(); i++ {
					if !got.Row(i).Equal(ref.Row(i)) {
						t.Fatalf("parallel=%d: row %d differs: %v vs %v", par, i, got.Row(i), ref.Row(i))
					}
				}
			}
		})
	}
}

// Iterating the pipeline directly must yield the same rows as Eval, batch
// by batch.
func TestIteratorDrainMatchesEval(t *testing.T) {
	plan := MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(1)))
	ref := mustEval(t, plan, fixtureCtx())
	it := NewIterator(plan)
	if err := it.Open(fixtureCtx()); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var rows []relation.Row
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if b.Len() == 0 {
			t.Fatal("iterator returned an empty batch")
		}
		rows = append(rows, b.Rows()...)
		b.ReleaseUnlessOwned()
	}
	if len(rows) != ref.Len() {
		t.Fatalf("drained %d rows, Eval produced %d", len(rows), ref.Len())
	}
	for i, row := range rows {
		if !row.Equal(ref.Row(i)) {
			t.Fatalf("row %d: %v != %v", i, row, ref.Row(i))
		}
	}
}

// A morsel-parallel chain drain must produce exactly the serial row order.
func TestChainDrainParallelDeterministic(t *testing.T) {
	log, video := bigFixture(20000, 5000)
	rels := map[string]*relation.Relation{"Log": log, "Video": video}
	plan := MustProject(
		MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(100))),
		[]Output{OutCol("sessionId"), Out("v10", expr.Mul(expr.Col("videoId"), expr.IntLit(10)))})
	serialCtx := NewContext(rels)
	serial, err := drainRows(serialCtx, plan)
	if err != nil {
		t.Fatal(err)
	}
	parCtx := NewContext(rels)
	parCtx.Parallelism = 4
	par, ok, err := drainChainParallel(parCtx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("chain drain should apply to a fused select+project over a large scan")
	}
	if len(par) != len(serial) {
		t.Fatalf("parallel drained %d rows, serial %d", len(par), len(serial))
	}
	for i := range serial {
		if !par[i].Equal(serial[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, par[i], serial[i])
		}
	}
	if serialCtx.RowsTouched != parCtx.RowsTouched {
		t.Fatalf("RowsTouched differs: serial %d, parallel %d", serialCtx.RowsTouched, parCtx.RowsTouched)
	}
}

// The asserted-key uniqueness error of ProjectKeyed fires in the
// pipeline exactly like in the materialized engine — at the root, buried
// mid-chain under other operators, and at a breaker boundary.
func TestProjectKeyedCollapseStillErrors(t *testing.T) {
	// videoId is not unique in Log: asserting it as key must fail.
	mk := func() Node {
		p, err := ProjectKeyed(Scan("Log", logSchema()), []Output{OutCol("videoId")}, "videoId")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	plans := map[string]Node{
		"at-root":        mk(),
		"under-select":   MustSelect(mk(), expr.Gt(expr.Col("videoId"), expr.IntLit(0))),
		"under-breaker":  MustGroupBy(mk(), []string{"videoId"}, CountAs("n")),
		"under-parallel": MustSelect(mk(), expr.Gt(expr.Col("videoId"), expr.IntLit(0))),
	}
	for name, plan := range plans {
		ctx := fixtureCtx()
		if name == "under-parallel" {
			ctx.Parallelism = 4
		}
		if _, err := plan.Eval(ctx); err == nil {
			t.Errorf("%s: pipelined eval of a non-unique asserted key should fail", name)
		}
		if _, err := EvalMaterialized(plan, fixtureCtx()); err == nil {
			t.Errorf("%s: materialized eval should fail too", name)
		}
	}
}

// A plain scan whose declared schema differs from the bound one (but is
// Compatible) rebuilds under the declared schema in BOTH engines —
// including the duplicate-key error when the declared key is weaker.
func TestScanDeclaredSchemaRebuildInChain(t *testing.T) {
	// Bound: keyed by sessionId. Declared: keyed by videoId (not unique).
	declared := relation.NewSchema([]relation.Column{
		{Name: "sessionId", Type: relation.KindInt},
		{Name: "videoId", Type: relation.KindInt},
	}, "videoId")
	plan := MustSelect(Scan("Log", declared), expr.Gt(expr.Col("videoId"), expr.IntLit(0)))
	if _, err := plan.Eval(fixtureCtx()); err == nil {
		t.Error("pipelined eval should surface the rebuild's duplicate-key error")
	}
	if _, err := EvalMaterialized(plan, fixtureCtx()); err == nil {
		t.Error("materialized eval should fail identically")
	}
	// The same error must survive PushDownScans fusing the predicate into
	// the scan (the rebuild happens before filtering, in both engines).
	fused := PushDownScans(plan)
	if _, ok := fused.(*ScanNode); !ok {
		t.Fatalf("expected a fused scan, got %s", Format(fused))
	}
	if _, err := fused.Eval(fixtureCtx()); err == nil {
		t.Error("pipelined fused scan should surface the rebuild's duplicate-key error")
	}
	if _, err := EvalMaterialized(fused, fixtureCtx()); err == nil {
		t.Error("materialized fused scan should fail identically")
	}
	// And a VALID weaker declaration (keyless bag view of a keyed table)
	// must stream the same rows in both engines.
	bag := relation.NewSchema(logSchema().Cols())
	plan2 := MustSelect(Scan("Log", bag), expr.Gt(expr.Col("videoId"), expr.IntLit(1)))
	ref, err := EvalMaterialized(plan2, fixtureCtx())
	if err != nil {
		t.Fatal(err)
	}
	got := mustEval(t, plan2, fixtureCtx())
	if got.Len() != ref.Len() {
		t.Fatalf("bag-view rows: %d vs %d", got.Len(), ref.Len())
	}
	for i := 0; i < ref.Len(); i++ {
		if !got.Row(i).Equal(ref.Row(i)) {
			t.Fatalf("row %d differs: %v vs %v", i, got.Row(i), ref.Row(i))
		}
	}
}

// The fused scan→select→project pipeline must run with zero heap
// allocations per row in steady state (batches come from the pool, output
// rows from batch arenas). This is the regression guard CI runs.
func TestFusedPipelineZeroAllocsPerRow(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool; run without -race")
	}
	log, video := bigFixture(50000, 5000)
	rels := map[string]*relation.Relation{"Log": log, "Video": video}
	plan := MustProject(
		MustSelect(Scan("Log", logSchema()), expr.Gt(expr.Col("videoId"), expr.IntLit(10))),
		[]Output{OutCol("sessionId"), Out("v2", expr.Mul(expr.Col("videoId"), expr.IntLit(2)))})

	drain := func() int {
		ctx := NewContext(rels)
		it := NewIterator(plan)
		if err := it.Open(ctx); err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		n := 0
		for {
			b, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				return n
			}
			n += b.Len()
			b.Release() // transient consumption: rows are only counted
		}
	}
	// Warm the batch pool (first drain may allocate pool entries).
	rows := drain()
	if rows < 40000 {
		t.Fatalf("fixture too small: %d rows", rows)
	}
	allocs := testing.AllocsPerRun(5, func() { drain() })
	perRow := allocs / float64(rows)
	// A handful of per-drain allocations (iterator nodes, context header)
	// are fine; anything growing with the row count is not.
	if perRow >= 0.001 {
		t.Fatalf("fused pipeline allocates %.4f objects/row (%.1f per drain, %d rows); want 0",
			perRow, allocs, rows)
	}
}

// Fused scan pushdown composes with the pipeline: the rewritten plan's
// filtered, pruned scan produces the identical stream.
func TestFusedScanMatchesUnfused(t *testing.T) {
	plan := MustProject(
		MustSelect(Scan("Video", videoSchema()), expr.Eq(expr.Col("ownerId"), expr.IntLit(10))),
		[]Output{OutCol("videoId"), OutCol("duration")})
	fused := PushDownScans(plan)
	if Format(plan) == Format(fused) {
		t.Fatalf("PushDownScans should rewrite the plan:\n%s", Format(plan))
	}
	ref := mustEval(t, plan, fixtureCtx())
	got := mustEval(t, fused, fixtureCtx())
	if !got.Equal(ref) {
		t.Fatalf("fused scan changed the result:\n%v\nvs\n%v", got, ref)
	}
}
