module github.com/sampleclean/svc

go 1.24
