// Package wal is the durable maintenance log: an append-only, segmented,
// checksummed write-ahead record of every staged delta and maintenance
// boundary, with group commit, crash recovery, checkpoint compaction, and
// backpressure.
//
// # Paper correspondence
//
// The paper's estimators (Section 2.2) are defined over a maintenance
// log: the set of insert/update/delete records accumulated since the view
// was last refreshed, from which the sample-clean machinery computes how
// far the stale view has drifted. The in-memory reproduction keeps that
// log as the ΔR/∇R change tables of package db — which a process crash
// silently discards, turning every "stale + pending" answer served since
// the last refresh into a lie. This package makes the maintenance log a
// real log: each record is written (write-ahead, CRC-32C framed) and
// fsynced before the staging call acknowledges, each ApplyVersion
// (Section 2.1's refresh boundary) appends a boundary record marking the
// sequence cut it folded into the base tables, and recovery replays the
// un-retired suffix so the catalog resumes with exactly the pending set
// and applied counter it had acknowledged before dying.
//
// # Durability contract
//
// Acknowledged means durable: when StageInsert/StageUpdate/StageDelete
// returns nil, the record is on disk (its group-commit fsync completed
// and, for the first record of a segment, the directory entry was synced
// first). The converse window is explicitly weak — a mutation becomes
// visible to concurrent pins when the catalog writer lock releases,
// before its fsync returns — so a crash can lose the newest unacked
// records but never an acknowledged one, and never tears one (the framed
// CRC turns a torn tail into a clean end-of-log, and Open truncates the
// torn bytes away so a later restart cannot mistake them for mid-log
// corruption). Replay is exact for
// every acknowledged record: boundary records carry the cut their fold
// covered, so recovery folds precisely the records the live run folded,
// and re-stages the rest. The log starts recording at Attach; state
// created before Attach (the loaded dataset) is the caller's to recreate,
// or a checkpoint's to restore. A failed write or fsync poisons the log
// sticky-fashion: nothing later pretends to be durable.
//
// # Concurrency
//
// Writers buffer records under the catalog writer lock (log order =
// lock order = visibility order) and then wait, lock-free, on a single
// syncer goroutine that coalesces all records in a sync interval into
// one write+fsync (group commit). The syncer is the only goroutine that
// touches segment files; checkpoints serialize an immutable db.Version
// off every lock. Admit blocks producers — and Shed tells the HTTP
// ingest path to 503 — while unsynced or unapplied depth exceeds its
// bound, so sustained churn faster than the apply rate is throttled at
// the boundary instead of growing memory and replay time without limit.
package wal
