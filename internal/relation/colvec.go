package relation

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/sampleclean/svc/internal/hashing"
)

// ColVec is a typed column vector: the cells of one attribute across the
// rows of a columnar Batch, stored kind-major instead of row-major. A
// vector adopts the kind of its first non-NULL cell and keeps that kind's
// payloads in a flat typed slice (int64 for ints and bools, float64 for
// floats, string headers for strings) with NULLs recorded in a bitmap, so
// vectorized operators (expr.EvalVec) run tight loops over primitive
// slices instead of switching on a 40-byte Value per cell.
//
// Cells of a second kind demote the vector to the mixed representation —
// a plain []Value — which every accessor honors; typed fast paths check
// Mixed() first. The zero ColVec is an empty vector; Reset empties a
// vector while keeping every payload's capacity, which is what lets the
// batch pool recycle vectors across pipeline drains with no per-cycle
// allocations.
//
// A string vector may additionally be dictionary-encoded (EnableDict):
// its kind stays KindString but cells are stored as int64 codes into a
// shared Dict instead of string headers, so repeated values are stored
// once and same-dictionary equality is an integer comparison. The vector
// does not own the dictionary — see Dict for the lifetime rules.
//
// A ColVec is not safe for concurrent mutation; pipelines hand each
// batch (and its vectors) to one goroutine at a time.
type ColVec struct {
	kind    Kind // kind of non-null cells; KindNull until the first one
	n       int
	hasNull bool
	nulls   []uint64 // bitmap (1 = NULL); tracked only once hasNull
	ints    []int64  // KindInt / KindBool payloads; dict codes when dict != nil
	floats  []float64
	strs    []string
	dict    *Dict // non-nil = dictionary-encoded strings (kind == KindString)
	mixed   bool
	vals    []Value // mixed fallback; authoritative when mixed
}

// Reset empties the vector, keeping payload capacity for reuse. The
// dictionary reference is dropped, not recycled — the vector never owns
// it.
func (v *ColVec) Reset() {
	if poisonRecycled.Load() {
		for i := range v.strs {
			v.strs[i] = PoisonString
		}
		for i := range v.vals {
			if v.vals[i].kind == KindString {
				v.vals[i].s = PoisonString
			}
		}
	}
	v.kind = KindNull
	v.n = 0
	v.hasNull = false
	v.mixed = false
	v.dict = nil
	v.nulls = v.nulls[:0]
	v.ints = v.ints[:0]
	v.floats = v.floats[:0]
	v.strs = v.strs[:0]
	v.vals = v.vals[:0]
}

// Len reports the number of cells.
func (v *ColVec) Len() int { return v.n }

// Kind reports the adopted cell kind: KindNull while the vector is empty
// or all-NULL, otherwise the kind of its non-null cells. Meaningless when
// Mixed.
func (v *ColVec) Kind() Kind { return v.kind }

// Mixed reports whether the vector fell back to per-cell Values because
// it holds more than one non-null kind.
func (v *ColVec) Mixed() bool { return v.mixed }

// HasNulls reports whether any cell is NULL.
func (v *ColVec) HasNulls() bool {
	if v.mixed {
		for _, val := range v.vals {
			if val.IsNull() {
				return true
			}
		}
		return false
	}
	return v.hasNull || (v.kind == KindNull && v.n > 0)
}

// IsNull reports whether cell i is NULL.
func (v *ColVec) IsNull(i int) bool {
	if v.mixed {
		return v.vals[i].IsNull()
	}
	if v.kind == KindNull {
		return true
	}
	return v.hasNull && v.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// Int64s returns the int64 payload slice, valid when Kind is KindInt or
// KindBool and not Mixed; NULL slots hold zeroes (check IsNull).
func (v *ColVec) Int64s() []int64 { return v.ints }

// Float64s returns the float64 payload slice (Kind == KindFloat, not
// Mixed); NULL slots hold zeroes.
func (v *ColVec) Float64s() []float64 { return v.floats }

// Strings returns the string payload slice (Kind == KindString, not
// Mixed, not IsDict); NULL slots hold empty strings. Dict-encoded vectors
// keep codes, not headers — callers must check IsDict first (StringAt
// reads either representation).
func (v *ColVec) Strings() []string { return v.strs }

// IsDict reports whether the vector is dictionary-encoded.
func (v *ColVec) IsDict() bool { return v.dict != nil }

// Dict returns the shared dictionary of a dict-encoded vector (nil
// otherwise).
func (v *ColVec) Dict() *Dict { return v.dict }

// DictCodes returns the per-cell dictionary codes (IsDict only); NULL
// slots hold code 0.
func (v *ColVec) DictCodes() []int64 { return v.ints }

// StringAt returns cell i's string under either string representation
// (plain headers or dictionary codes). Valid when Kind is KindString, the
// vector is not Mixed, and the cell is non-NULL.
func (v *ColVec) StringAt(i int) string {
	if v.dict != nil {
		return v.dict.At(v.ints[i])
	}
	return v.strs[i]
}

// EnableDict turns an empty or all-NULL vector into a dict-encoded string
// vector interning into d. Cells appended afterwards (AppendValue with
// string values, AppendGather from string vectors) are stored as codes.
func (v *ColVec) EnableDict(d *Dict) {
	if v.mixed || (v.kind != KindNull && v.kind != KindString) || len(v.strs) > 0 {
		panic("relation: EnableDict on a non-empty non-string vector")
	}
	v.dict = d
	if v.kind == KindNull {
		// Adopt like adoptKind, but with code payloads.
		v.kind = KindString
		for i := 0; i < v.n; i++ {
			v.ints = append(v.ints, 0)
		}
		if v.n > 0 {
			v.hasNull = true
			v.nulls = v.nulls[:0]
			for w := 0; w*64 < v.n; w++ {
				v.nulls = append(v.nulls, 0)
			}
			for i := 0; i < v.n; i++ {
				v.nulls[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
}

// Value reconstructs cell i as a scalar Value — the codec between the
// columnar and the row representation. Round-tripping any Value through
// AppendValue and Value(i) is exact for every kind including NULL (the
// codec property test fuzzes this).
func (v *ColVec) Value(i int) Value {
	if v.mixed {
		return v.vals[i]
	}
	if v.kind == KindNull || (v.hasNull && v.nulls[i>>6]&(1<<(uint(i)&63)) != 0) {
		return Value{}
	}
	switch v.kind {
	case KindInt, KindBool:
		return Value{kind: v.kind, i: v.ints[i]}
	case KindFloat:
		return Value{kind: KindFloat, f: v.floats[i]}
	default: // KindString
		if v.dict != nil {
			return Value{kind: KindString, s: v.dict.At(v.ints[i])}
		}
		return Value{kind: KindString, s: v.strs[i]}
	}
}

// AppendValue appends one cell, adopting the vector's kind from the first
// non-null cell and demoting to mixed when kinds disagree.
func (v *ColVec) AppendValue(val Value) {
	if v.mixed {
		v.vals = append(v.vals, val)
		v.n++
		return
	}
	k := val.kind
	if k == KindNull {
		if v.kind == KindNull {
			v.n++ // still the all-NULL prefix: no payload storage yet
			return
		}
		v.appendTypedNull()
		return
	}
	if v.kind == KindNull {
		v.adoptKind(k)
	} else if k != v.kind {
		v.demoteMixed()
		v.vals = append(v.vals, val)
		v.n++
		return
	}
	switch k {
	case KindInt, KindBool:
		v.ints = append(v.ints, val.i)
	case KindFloat:
		v.floats = append(v.floats, val.f)
	default: // KindString
		if v.dict != nil {
			v.ints = append(v.ints, v.dict.Intern(val.s))
		} else {
			v.strs = append(v.strs, val.s)
		}
	}
	if v.hasNull {
		v.growNulls()
	}
	v.n++
}

// AppendNull appends a NULL cell.
func (v *ColVec) AppendNull() { v.AppendValue(Value{}) }

// AppendInt64 appends a non-null KindInt cell. The vector must be empty,
// all-NULL, or already of kind KindInt (vectorized producers guarantee
// this; AppendValue handles the general case).
func (v *ColVec) AppendInt64(x int64) {
	if v.mixed || (v.kind != KindNull && v.kind != KindInt) {
		v.AppendValue(Value{kind: KindInt, i: x})
		return
	}
	if v.kind == KindNull {
		v.adoptKind(KindInt)
	}
	v.ints = append(v.ints, x)
	if v.hasNull {
		v.growNulls()
	}
	v.n++
}

// AppendFloat64 appends a non-null KindFloat cell (see AppendInt64).
func (v *ColVec) AppendFloat64(x float64) {
	if v.mixed || (v.kind != KindNull && v.kind != KindFloat) {
		v.AppendValue(Value{kind: KindFloat, f: x})
		return
	}
	if v.kind == KindNull {
		v.adoptKind(KindFloat)
	}
	v.floats = append(v.floats, x)
	if v.hasNull {
		v.growNulls()
	}
	v.n++
}

// AppendBool appends a non-null KindBool cell (see AppendInt64).
func (v *ColVec) AppendBool(b bool) {
	var i int64
	if b {
		i = 1
	}
	if v.mixed || (v.kind != KindNull && v.kind != KindBool) {
		v.AppendValue(Value{kind: KindBool, i: i})
		return
	}
	if v.kind == KindNull {
		v.adoptKind(KindBool)
	}
	v.ints = append(v.ints, i)
	if v.hasNull {
		v.growNulls()
	}
	v.n++
}

// Truthy reports cell i's truthiness with Value.AsBool semantics (NULL is
// false) — the predicate-result read used by selection-vector filtering.
func (v *ColVec) Truthy(i int) bool {
	if v.mixed {
		return v.vals[i].AsBool()
	}
	if v.kind == KindNull || (v.hasNull && v.nulls[i>>6]&(1<<(uint(i)&63)) != 0) {
		return false
	}
	switch v.kind {
	case KindInt, KindBool:
		return v.ints[i] != 0
	case KindFloat:
		return v.floats[i] != 0
	default:
		return false
	}
}

// CopyFrom resets v and copies all of src's cells with typed bulk copies.
// A dict-encoded source is shared by pointer (codes copy, dictionary does
// not) — see Dict for the lifetime rules.
func (v *ColVec) CopyFrom(src *ColVec) {
	v.Reset()
	if src.mixed {
		v.mixed = true
		v.vals = append(v.vals, src.vals...)
		v.n = src.n
		return
	}
	v.kind = src.kind
	v.dict = src.dict
	v.n = src.n
	v.hasNull = src.hasNull
	v.nulls = append(v.nulls, src.nulls...)
	v.ints = append(v.ints, src.ints...)
	v.floats = append(v.floats, src.floats...)
	v.strs = append(v.strs, src.strs...)
}

// GatherFrom resets v and copies src's cells at the selected physical
// positions, producing a dense vector of len(sel) cells. Dict-encoded
// sources gather codes and share the dictionary by pointer.
func (v *ColVec) GatherFrom(src *ColVec, sel []int32) {
	v.Reset()
	if src.mixed {
		v.mixed = true
		for _, i := range sel {
			v.vals = append(v.vals, src.vals[int(i)])
		}
		v.n = len(sel)
		return
	}
	if src.kind == KindNull {
		v.n = len(sel)
		return
	}
	if src.dict != nil {
		v.kind = KindString
		v.dict = src.dict
		for _, i := range sel {
			v.ints = append(v.ints, src.ints[int(i)])
		}
		if src.hasNull {
			v.gatherNulls(src, sel)
		}
		v.n = len(sel)
		return
	}
	if !src.hasNull {
		v.kind = src.kind
		switch src.kind {
		case KindInt, KindBool:
			for _, i := range sel {
				v.ints = append(v.ints, src.ints[int(i)])
			}
		case KindFloat:
			for _, i := range sel {
				v.floats = append(v.floats, src.floats[int(i)])
			}
		default:
			for _, i := range sel {
				v.strs = append(v.strs, src.strs[int(i)])
			}
		}
		v.n = len(sel)
		return
	}
	for _, i := range sel {
		v.AppendValue(src.Value(int(i)))
	}
}

// gatherNulls rebuilds the null bitmap for a typed gather of sel from src.
// v.n must not yet include the gathered cells (bits are set at positions
// [0, len(sel))); callers gather payloads first, then call this, then set n.
func (v *ColVec) gatherNulls(src *ColVec, sel []int32) {
	hasAny := false
	for k, i := range sel {
		if src.nulls[int(i)>>6]&(1<<(uint(i)&63)) != 0 {
			if !hasAny {
				hasAny = true
				v.hasNull = true
				v.nulls = v.nulls[:0]
				for w := 0; w*64 < len(sel); w++ {
					v.nulls = append(v.nulls, 0)
				}
			}
			v.nulls[k>>6] |= 1 << (uint(k) & 63)
		}
	}
}

// appendEncoded appends the canonical encoding of cell i to dst (the same
// injective codec as Value.appendEncoded, so columnar key construction is
// byte-identical to the row pipeline's).
func (v *ColVec) appendEncoded(i int, dst []byte) []byte {
	return v.Value(i).appendEncoded(dst)
}

// AddHash64At folds cell i into a streaming 64-bit hash state, reading
// the typed payload directly. The fold is identical to Value.addHash64 on
// the reconstructed cell (dictionary cells hash their decoded string), so
// columnar key hashing matches Row.HashCols bit for bit.
func (v *ColVec) AddHash64At(i int, h uint64) uint64 {
	if v.mixed {
		return v.vals[i].addHash64(h)
	}
	if v.kind == KindNull || (v.hasNull && v.nulls[i>>6]&(1<<(uint(i)&63)) != 0) {
		return hashing.AddByte64(h, byte(KindNull))
	}
	h = hashing.AddByte64(h, byte(v.kind))
	switch v.kind {
	case KindInt, KindBool:
		return hashing.AddUint64(h, uint64(v.ints[i]))
	case KindFloat:
		return hashing.AddUint64(h, math.Float64bits(v.floats[i]))
	default: // KindString
		var s string
		if v.dict != nil {
			s = v.dict.At(v.ints[i])
		} else {
			s = v.strs[i]
		}
		h = hashing.AddUint64(h, uint64(len(s)))
		return hashing.AddString64(h, s)
	}
}

// KeyEqualAt reports encoding equality (Value.KeyEqual) of v's cell i and
// o's cell j. Cells of vectors sharing a dictionary compare by code —
// one integer comparison instead of a string compare.
func (v *ColVec) KeyEqualAt(i int, o *ColVec, j int) bool {
	if !v.mixed && !o.mixed && v.dict != nil && v.dict == o.dict {
		vn, on := v.IsNull(i), o.IsNull(j)
		if vn || on {
			return vn && on
		}
		return v.ints[i] == o.ints[j]
	}
	return v.Value(i).KeyEqual(o.Value(j))
}

// AppendGather appends src's cells at the selected physical positions
// (sel nil = all) — the append-mode counterpart of GatherFrom, used to
// accumulate many batches into one growing vector. A dict-encoded
// destination interns incoming strings (sharing codes when src uses the
// same dictionary); a plain destination receiving dict-encoded cells
// appends decoded string headers, so the result never aliases a
// dictionary it does not control.
func (v *ColVec) AppendGather(src *ColVec, sel []int32) {
	count := src.n
	if sel != nil {
		count = len(sel)
	}
	if count == 0 {
		return
	}
	if v.mixed || src.mixed || src.kind == KindNull || src.hasNull || v.hasNull ||
		(v.n > 0 && v.kind != src.kind) || (v.n == 0 && v.dict == nil && v.kind != KindNull && v.kind != src.kind) {
		v.appendGatherSlow(src, sel)
		return
	}
	switch {
	case v.dict != nil:
		if src.kind != KindString {
			v.appendGatherSlow(src, sel)
			return
		}
		switch {
		case src.dict == v.dict:
			if sel == nil {
				v.ints = append(v.ints, src.ints...)
			} else {
				for _, i := range sel {
					v.ints = append(v.ints, src.ints[int(i)])
				}
			}
		case src.dict != nil:
			if sel == nil {
				for i := 0; i < src.n; i++ {
					v.ints = append(v.ints, v.dict.Intern(src.dict.At(src.ints[i])))
				}
			} else {
				for _, i := range sel {
					v.ints = append(v.ints, v.dict.Intern(src.dict.At(src.ints[int(i)])))
				}
			}
		default:
			if sel == nil {
				for i := 0; i < src.n; i++ {
					v.ints = append(v.ints, v.dict.Intern(src.strs[i]))
				}
			} else {
				for _, i := range sel {
					v.ints = append(v.ints, v.dict.Intern(src.strs[int(i)]))
				}
			}
		}
	case src.dict != nil: // plain destination ← dict source: decode
		v.kind = KindString
		if sel == nil {
			for i := 0; i < src.n; i++ {
				v.strs = append(v.strs, src.dict.At(src.ints[i]))
			}
		} else {
			for _, i := range sel {
				v.strs = append(v.strs, src.dict.At(src.ints[int(i)]))
			}
		}
	default:
		v.kind = src.kind
		switch src.kind {
		case KindInt, KindBool:
			if sel == nil {
				v.ints = append(v.ints, src.ints...)
			} else {
				for _, i := range sel {
					v.ints = append(v.ints, src.ints[int(i)])
				}
			}
		case KindFloat:
			if sel == nil {
				v.floats = append(v.floats, src.floats...)
			} else {
				for _, i := range sel {
					v.floats = append(v.floats, src.floats[int(i)])
				}
			}
		default:
			if sel == nil {
				v.strs = append(v.strs, src.strs...)
			} else {
				for _, i := range sel {
					v.strs = append(v.strs, src.strs[int(i)])
				}
			}
		}
	}
	v.n += count
}

// appendGatherSlow is the per-cell fallback covering mixed sources, NULL
// bitmaps, kind clashes, and dictionary interning via AppendValue.
func (v *ColVec) appendGatherSlow(src *ColVec, sel []int32) {
	if sel == nil {
		for i := 0; i < src.n; i++ {
			v.AppendValue(src.Value(i))
		}
		return
	}
	for _, i := range sel {
		v.AppendValue(src.Value(int(i)))
	}
}

// appendTypedNull appends a NULL to a typed (non-empty-kind) vector.
func (v *ColVec) appendTypedNull() {
	if !v.hasNull {
		v.hasNull = true
		v.nulls = v.nulls[:0]
		for w := 0; w*64 < v.n; w++ {
			v.nulls = append(v.nulls, 0)
		}
	}
	switch v.kind {
	case KindInt, KindBool:
		v.ints = append(v.ints, 0)
	case KindFloat:
		v.floats = append(v.floats, 0)
	default:
		if v.dict != nil {
			v.ints = append(v.ints, 0)
		} else {
			v.strs = append(v.strs, "")
		}
	}
	v.growNulls()
	v.nulls[v.n>>6] |= 1 << (uint(v.n) & 63)
	v.n++
}

// adoptKind turns an empty or all-NULL vector into a typed one of kind k,
// backfilling payload zeroes and NULL bits for the existing prefix.
func (v *ColVec) adoptKind(k Kind) {
	v.kind = k
	for i := 0; i < v.n; i++ {
		switch k {
		case KindInt, KindBool:
			v.ints = append(v.ints, 0)
		case KindFloat:
			v.floats = append(v.floats, 0)
		default:
			v.strs = append(v.strs, "")
		}
	}
	if v.n > 0 {
		v.hasNull = true
		v.nulls = v.nulls[:0]
		for w := 0; w*64 < v.n; w++ {
			v.nulls = append(v.nulls, 0)
		}
		for i := 0; i < v.n; i++ {
			v.nulls[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// demoteMixed converts the vector to the per-cell Value representation
// (decoding dictionary cells — mixed vectors never carry codes).
func (v *ColVec) demoteMixed() {
	v.vals = v.vals[:0]
	for i := 0; i < v.n; i++ {
		v.vals = append(v.vals, v.Value(i))
	}
	v.mixed = true
	v.dict = nil
}

// growNulls keeps the bitmap covering n+1 cells (call before n++).
func (v *ColVec) growNulls() {
	if len(v.nulls)*64 < v.n+1 {
		v.nulls = append(v.nulls, 0)
	}
}

// ----------------------------------------------------------- scratch pool

// vecPool recycles scratch vectors used by vectorized expression
// evaluation (expr.EvalVec intermediates). Batch-owned vectors are pooled
// with their batch instead.
var vecPool = sync.Pool{New: func() any {
	poolCounters.vecNews.Add(1)
	return new(ColVec)
}}

// GetVec returns an empty scratch vector from the pool.
func GetVec() *ColVec {
	poolCounters.vecGets.Add(1)
	v := vecPool.Get().(*ColVec)
	v.Reset()
	return v
}

// PutVec returns a scratch vector to the pool. The caller must not use it
// afterwards.
func PutVec(v *ColVec) { vecPool.Put(v) }

// ----------------------------------------------------------- pool gauges

// poolCounters tracks pooling effectiveness for the serving /stats
// endpoint: a hit rate that decays means steady-state drains started
// allocating again (a pooling regression).
var poolCounters struct {
	batchGets atomic.Uint64
	batchNews atomic.Uint64
	vecGets   atomic.Uint64
	vecNews   atomic.Uint64
	dictGets  atomic.Uint64
	dictNews  atomic.Uint64
	setGets   atomic.Uint64
	setNews   atomic.Uint64
}

// PoolCounters is a snapshot of the batch/vector pool counters.
type PoolCounters struct {
	// BatchGets counts GetBatch calls; BatchNews counts the subset that
	// had to allocate a fresh Batch (pool miss). Hit rate = 1 - News/Gets.
	BatchGets, BatchNews uint64
	// VecGets/VecNews are the same for scratch column vectors (GetVec).
	VecGets, VecNews uint64
	// DictGets/DictNews are the same for string dictionaries (GetDict).
	DictGets, DictNews uint64
	// SetGets/SetNews are the same for columnar row stores (GetColSet).
	SetGets, SetNews uint64
}

// BatchHitRate returns the batch pool hit rate in [0, 1] (1 when idle).
func (p PoolCounters) BatchHitRate() float64 { return hitRate(p.BatchGets, p.BatchNews) }

// VecHitRate returns the scratch-vector pool hit rate in [0, 1].
func (p PoolCounters) VecHitRate() float64 { return hitRate(p.VecGets, p.VecNews) }

// DictHitRate returns the dictionary pool hit rate in [0, 1].
func (p PoolCounters) DictHitRate() float64 { return hitRate(p.DictGets, p.DictNews) }

// SetHitRate returns the ColSet pool hit rate in [0, 1].
func (p PoolCounters) SetHitRate() float64 { return hitRate(p.SetGets, p.SetNews) }

func hitRate(gets, news uint64) float64 {
	if gets == 0 {
		return 1
	}
	if news > gets {
		news = gets
	}
	return 1 - float64(news)/float64(gets)
}

// ReadPoolCounters returns a snapshot of the pool counters.
func ReadPoolCounters() PoolCounters {
	return PoolCounters{
		BatchGets: poolCounters.batchGets.Load(),
		BatchNews: poolCounters.batchNews.Load(),
		VecGets:   poolCounters.vecGets.Load(),
		VecNews:   poolCounters.vecNews.Load(),
		DictGets:  poolCounters.dictGets.Load(),
		DictNews:  poolCounters.dictNews.Load(),
		SetGets:   poolCounters.setGets.Load(),
		SetNews:   poolCounters.setNews.Load(),
	}
}
