package svc

import (
	"errors"

	"github.com/sampleclean/svc/internal/wal"
)

// This file is the public face of the durable maintenance log (package
// internal/wal): attach a write-ahead log to a Database and every
// StageInsert/StageUpdate/StageDelete is on disk before it acknowledges,
// every maintenance boundary (ApplyVersion) is recorded, and a restart
// replays the un-retired suffix so acknowledged-but-unmaintained deltas
// survive a crash.

type (
	// DurableLog is the write-ahead maintenance log. Obtain one with
	// AttachDurableLog (or svc.New + WithDurableLog) and close it after
	// the database's writers have quiesced.
	DurableLog = wal.Log
	// DurableLogOptions tunes group commit, segmentation, checkpointing,
	// and backpressure. The zero value is production-ready.
	DurableLogOptions = wal.Options
	// DurableLogStats is the log's gauge/counter snapshot (DurableLog.Stats).
	DurableLogStats = wal.Stats
	// RecoveryStats summarizes one crash-recovery replay.
	RecoveryStats = wal.RecoveryStats
)

// SyncEachCommit, as DurableLogOptions.SyncInterval, fsyncs every commit
// individually instead of group-committing on an interval.
const SyncEachCommit = wal.SyncEachCommit

// Durable-log sentinel errors, matchable with errors.Is on any error a
// staging call returns once a log is attached.
var (
	// ErrDurableLogClosed: the log was closed (orderly shutdown).
	ErrDurableLogClosed = wal.ErrClosed
	// ErrDurableLogFailed: a write, fsync, or checkpoint failure poisoned
	// the log; the wrapped cause is in the error chain.
	ErrDurableLogFailed = wal.ErrFailed
)

// IsDurabilityError reports whether err came from the durable log's
// write/sync machinery — closed, crash-stopped, or poisoned by an I/O
// failure — rather than from validating the mutation itself. HTTP servers
// use it to split client mistakes (400) from lost durability (500).
func IsDurabilityError(err error) bool {
	return errors.Is(err, wal.ErrClosed) || errors.Is(err, wal.ErrKilled) || errors.Is(err, wal.ErrFailed)
}

// AttachDurableLog opens (or creates) the write-ahead log in dir, replays
// its un-retired suffix into d — the catalog must already hold the same
// base dataset the previous run loaded, since table creation is not
// logged — and attaches it so every subsequent staging call and
// maintenance boundary is logged and fsynced before acknowledging.
//
// Call it after loading the dataset and before materializing views or
// accepting writes. The returned RecoveryStats say what the replay did
// (zero-valued on a fresh directory).
func AttachDurableLog(d *Database, dir string, opt DurableLogOptions) (*DurableLog, RecoveryStats, error) {
	l, err := wal.Open(dir, opt)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	rs, err := l.Recover(d)
	if err != nil {
		l.Close()
		return nil, rs, err
	}
	l.Attach(d)
	return l, rs, nil
}

// DurableLogOf returns the durable log attached to d, or nil.
func DurableLogOf(d *Database) *DurableLog {
	l, _ := d.DeltaLog().(*wal.Log)
	return l
}

// WithDurableLog attaches a write-ahead maintenance log in dir (default
// options) before the view is materialized, recovering any suffix a
// previous run left behind. A no-op when the database already has a log
// attached, so multiple views over one database can all pass it. The log
// is owned by the database, not the view: StaleView.Close leaves it
// running; close it with DurableLogOf(d).Close() at process shutdown.
func WithDurableLog(dir string) Option { return func(c *config) { c.durableDir = dir } }
