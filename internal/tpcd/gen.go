package tpcd

import (
	"fmt"
	"math/rand"

	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
)

// Config scales the generated database. Zero values take the defaults of
// DefaultConfig.
type Config struct {
	// Orders is the number of orders; lineitems are 1..MaxLines per
	// order.
	Orders   int
	MaxLines int
	// Customers, Suppliers, Parts size the dimension tables.
	Customers int
	Suppliers int
	Parts     int
	// Z is the TPCD-Skew Zipfian exponent (1 = plain TPCD; the paper
	// uses z ∈ {1,2,3,4} and defaults to 2).
	Z float64
	// Days is the o_orderdate/l_shipdate domain size.
	Days int
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig is a laptop-scale dataset with the paper's default skew.
func DefaultConfig() Config {
	return Config{
		Orders:    3000,
		MaxLines:  4,
		Customers: 300,
		Suppliers: 50,
		Parts:     200,
		Z:         2,
		Days:      365,
		Seed:      1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Orders == 0 {
		c.Orders = d.Orders
	}
	if c.MaxLines == 0 {
		c.MaxLines = d.MaxLines
	}
	if c.Customers == 0 {
		c.Customers = d.Customers
	}
	if c.Suppliers == 0 {
		c.Suppliers = d.Suppliers
	}
	if c.Parts == 0 {
		c.Parts = d.Parts
	}
	if c.Days == 0 {
		c.Days = d.Days
	}
	return c
}

// Generator owns the RNG state, the skew samplers and the key counters, so
// the base load and the update stream draw from the same distributions —
// the TPC-D refresh model.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	custZ   *stats.Zipf
	partZ   *stats.Zipf
	suppZ   *stats.Zipf
	priceZ  *stats.Zipf
	nextOrd int64
	lineSeq map[int64]int64 // per-order next line number
}

// NewGenerator prepares a generator for the config.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Generator{
		cfg:   cfg,
		rng:   rng,
		custZ: stats.NewZipf(cfg.Customers, cfg.Z),
		partZ: stats.NewZipf(cfg.Parts, cfg.Z),
		suppZ: stats.NewZipf(cfg.Suppliers, cfg.Z),
		// l_extendedprice magnitudes drawn from a Zipfian rank: rank 0
		// is the most common (cheap) price; higher ranks are the long
		// tail of expensive items. 1000 distinct magnitudes.
		priceZ:  stats.NewZipf(1000, cfg.Z),
		lineSeq: map[int64]int64{},
	}
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// Generate creates and loads the database.
func (g *Generator) Generate() (*db.Database, error) {
	d := db.New()
	region := d.MustCreate(Region, RegionSchema())
	nation := d.MustCreate(Nation, NationSchema())
	customer := d.MustCreate(Customer, CustomerSchema())
	supplier := d.MustCreate(Supplier, SupplierSchema())
	part := d.MustCreate(Part, PartSchema())
	d.MustCreate(Orders, OrdersSchema())
	d.MustCreate(Lineitem, LineitemSchema())

	regions := []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"}
	for i, name := range regions {
		region.MustInsert(relation.Row{relation.Int(int64(i)), relation.String(name)})
	}
	for i := 0; i < 25; i++ {
		nation.MustInsert(relation.Row{
			relation.Int(int64(i)),
			relation.String(fmt.Sprintf("NATION_%02d", i)),
			relation.Int(int64(i % len(regions))),
		})
	}
	for i := 0; i < g.cfg.Customers; i++ {
		customer.MustInsert(relation.Row{
			relation.Int(int64(i)),
			relation.Int(g.rng.Int63n(25)),
			relation.Float(float64(g.rng.Intn(10000)) / 10),
			relation.Int(g.rng.Int63n(5)),
			relation.String(fmt.Sprintf("%02d-%07d", 10+g.rng.Intn(25), g.rng.Intn(10000000))),
		})
	}
	for i := 0; i < g.cfg.Suppliers; i++ {
		supplier.MustInsert(relation.Row{
			relation.Int(int64(i)),
			relation.Int(g.rng.Int63n(25)),
			relation.Float(float64(g.rng.Intn(10000)) / 10),
		})
	}
	for i := 0; i < g.cfg.Parts; i++ {
		part.MustInsert(relation.Row{
			relation.Int(int64(i)),
			relation.Int(g.rng.Int63n(25)),
			relation.Float(900 + float64(g.rng.Intn(10000))/100),
		})
	}
	for i := 0; i < g.cfg.Orders; i++ {
		if err := g.insertOrder(d, false); err != nil {
			return nil, err
		}
	}
	for _, fk := range []struct{ t, c, ref string }{
		{Lineitem, "l_orderkey", Orders},
		{Lineitem, "l_partkey", Part},
		{Lineitem, "l_suppkey", Supplier},
		{Orders, "o_custkey", Customer},
		{Customer, "c_nationkey", Nation},
		{Supplier, "s_nationkey", Nation},
		{Nation, "n_regionkey", Region},
	} {
		if err := d.AddForeignKey(fk.t, fk.c, fk.ref); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// price draws a Zipf-skewed extended price: common cheap values with a
// long expensive tail whose weight grows with z.
func (g *Generator) price() float64 {
	rank := g.priceZ.Rank(g.rng)
	// Invert the rank so high ranks (rare) are expensive.
	return 100 + float64(rank)*float64(rank)/10
}

// newOrderRow builds an order row and its lineitem rows.
func (g *Generator) newOrderRow() (relation.Row, []relation.Row) {
	ok := g.nextOrd
	g.nextOrd++
	cust := int64(g.custZ.Rank(g.rng))
	date := int64(g.rng.Intn(g.cfg.Days))
	nLines := 1 + g.rng.Intn(g.cfg.MaxLines)
	total := 0.0
	lines := make([]relation.Row, 0, nLines)
	for ln := 0; ln < nLines; ln++ {
		price := g.price()
		qty := 1 + float64(g.rng.Intn(50))
		disc := float64(g.rng.Intn(10)) / 100
		total += price * qty * (1 - disc)
		lines = append(lines, relation.Row{
			relation.Int(ok),
			relation.Int(int64(ln)),
			relation.Int(int64(g.partZ.Rank(g.rng))),
			relation.Int(int64(g.suppZ.Rank(g.rng))),
			relation.Float(qty),
			relation.Float(price),
			relation.Float(disc),
			relation.Int(g.rng.Int63n(3)),
			relation.Int(date + g.rng.Int63n(30)),
		})
	}
	order := relation.Row{
		relation.Int(ok),
		relation.Int(cust),
		relation.Int(g.rng.Int63n(3)),
		relation.Float(total),
		relation.Int(date),
		relation.Int(1 + g.rng.Int63n(5)),
	}
	return order, lines
}

// insertOrder adds one order (+lineitems) to the base tables (staged =
// false) or the staged deltas (staged = true).
func (g *Generator) insertOrder(d *db.Database, staged bool) error {
	order, lines := g.newOrderRow()
	ot, lt := d.Table(Orders), d.Table(Lineitem)
	if staged {
		if err := ot.StageInsert(order); err != nil {
			return err
		}
		for _, l := range lines {
			if err := lt.StageInsert(l); err != nil {
				return err
			}
		}
		return nil
	}
	if err := ot.Insert(order); err != nil {
		return err
	}
	for _, l := range lines {
		if err := lt.Insert(l); err != nil {
			return err
		}
	}
	return nil
}

// StageUpdates stages approximately frac·|base| worth of changes: 80% new
// orders with their lineitems (insertions), 20% updates to existing
// lineitems (quantity/extendedprice changes, modeled per the paper as
// delete+insert). frac is relative to the lineitem count.
func (g *Generator) StageUpdates(d *db.Database, frac float64) error {
	lt := d.Table(Lineitem)
	ot := d.Table(Orders)
	target := int(frac * float64(lt.Len()))
	staged := 0
	for staged < target {
		if g.rng.Float64() < 0.8 {
			order, lines := g.newOrderRow()
			if err := ot.StageInsert(order); err != nil {
				return err
			}
			for _, l := range lines {
				if err := lt.StageInsert(l); err != nil {
					return err
				}
			}
			staged += len(lines)
		} else {
			// Update a random existing lineitem.
			if lt.Len() == 0 {
				continue
			}
			row := lt.Rows().Row(g.rng.Intn(lt.Len())).Clone()
			row[4] = relation.Float(1 + float64(g.rng.Intn(50))) // l_quantity
			row[5] = relation.Float(g.price())                   // l_extendedprice
			if err := lt.StageUpdate(row); err != nil {
				return err
			}
			staged++
		}
	}
	return nil
}
