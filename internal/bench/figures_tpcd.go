package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/db"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/outlier"
	"github.com/sampleclean/svc/internal/stats"
	"github.com/sampleclean/svc/internal/tpcd"
	"github.com/sampleclean/svc/internal/view"
)

// tpcdConfig scales the TPCD workload.
func tpcdConfig(s Scale, z float64, seed int64) tpcd.Config {
	f := float64(s)
	clamp := func(v int, lo int) int {
		if v < lo {
			return lo
		}
		return v
	}
	return tpcd.Config{
		Orders:    clamp(int(3000*f), 200),
		MaxLines:  4,
		Customers: clamp(int(300*f), 40),
		Suppliers: clamp(int(50*f), 10),
		Parts:     clamp(int(200*f), 30),
		Z:         z,
		Days:      365,
		Seed:      seed,
	}
}

// tpcdScenario is a generated database with one materialized view and its
// maintainer.
type tpcdScenario struct {
	gen *tpcd.Generator
	d   *db.Database
	v   *view.View
	m   *view.Maintainer
}

func newTPCDScenario(cfg tpcd.Config, def view.Definition) (*tpcdScenario, error) {
	gen := tpcd.NewGenerator(cfg)
	d, err := gen.Generate()
	if err != nil {
		return nil, err
	}
	d.SetParallelism(defaultParallelism)
	d.SetColumnar(defaultColumnar)
	v, err := view.Materialize(d, def)
	if err != nil {
		return nil, err
	}
	m, err := view.NewMaintainer(v)
	if err != nil {
		return nil, err
	}
	return &tpcdScenario{gen: gen, d: d, v: v, m: m}, nil
}

// truth recomputes S′ from a snapshot with the staged deltas applied.
func (sc *tpcdScenario) truth() (*view.View, error) {
	snap := sc.d.Snapshot()
	if err := snap.ApplyDeltas(); err != nil {
		return nil, err
	}
	return view.Materialize(snap, sc.v.Definition())
}

// timeIVM measures one full maintenance run without disturbing the
// scenario (it restores the stale view contents afterwards).
func (sc *tpcdScenario) timeIVM() (time.Duration, view.MaintainStats, error) {
	stale := sc.v.Data().Clone()
	var st view.MaintainStats
	dur, err := timeIt(func() error {
		var err error
		st, err = sc.m.Maintain(sc.d)
		return err
	})
	if err != nil {
		return 0, st, err
	}
	if err := sc.v.Replace(stale); err != nil {
		return 0, st, err
	}
	return dur, st, nil
}

func init() {
	register("fig4a", "join view: maintenance time vs sampling ratio (SVC) with the IVM line", fig4a)
	register("fig4a-par", "join view: cleaning and IVM ns/op + allocs/op, serial vs partitioned-parallel", fig4aPar)
	register("pipeline", "batch pipeline: full maintain+clean cycle ns/op + allocs/op + rows on the join view", pipelineCycle)
	register("fig4b", "join view: SVC-10% speedup over IVM as update size grows", fig4b)
	register("fig5", "join view: median relative error per TPCD query — Stale vs SVC+AQP-10% vs SVC+CORR-10%", fig5)
	register("fig6a", "join view: total time (maintenance + query) for IVM, SVC+CORR, SVC+AQP", fig6a)
	register("fig6b", "join view: SVC+CORR vs SVC+AQP accuracy as updates grow (break-even)", fig6b)
	register("fig7a", "complex views: maintenance time IVM vs SVC-10% (V21/V22 gain little)", fig7a)
	register("fig7b", "complex views: query accuracy — Stale vs SVC+AQP vs SVC+CORR", fig7b)
	register("fig8a", "outlier index: 75%-quartile error vs Zipf z on V3, with and without the index", fig8a)
	register("fig8b", "outlier index: maintenance overhead vs index size on V3/V5/V10/V15i", fig8b)
}

// fig4a: vary the sampling ratio at a fixed 10% update size.
func fig4a(s Scale) (*Table, error) {
	sc, err := newTPCDScenario(tpcdConfig(s, 2, 1), tpcd.JoinView())
	if err != nil {
		return nil, err
	}
	if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
		return nil, err
	}
	t := &Table{ID: "fig4a", Title: "Join view: maintenance time vs sampling ratio (10% updates)",
		Header: []string{"ratio", "svc_time", "svc_rows", "ivm_time", "ivm_rows", "speedup"}}
	ivmDur, ivmStats, err := sc.timeIVM()
	if err != nil {
		return nil, err
	}
	for _, ratio := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		c, err := clean.New(sc.m, ratio, nil)
		if err != nil {
			return nil, err
		}
		var samples *clean.Samples
		dur, err := timeIt(func() error {
			var err error
			samples, err = c.Clean(sc.d)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(ratio, dur, samples.Stats.RowsTouched, ivmDur, ivmStats.RowsTouched,
			float64(ivmDur)/float64(dur))
	}
	t.Notes = append(t.Notes, "paper Figure 4a: SVC time grows ~linearly with the ratio and stays below IVM")
	return t, nil
}

// fig4aPar: the Fig. 4a join-view maintenance workload measured with the
// engine-level metrics (ns/op and allocs/op) at worker counts 1 and 4 —
// the before/after of the zero-allocation key pipeline's parallel mode.
// Each cell is the best of three runs (allocs are run-invariant).
func fig4aPar(s Scale) (*Table, error) {
	t := &Table{ID: "fig4a-par", Title: "Join view (10% updates): cleaning and IVM, serial vs 4 workers",
		Header: []string{"workers", "svc_ns_op", "svc_allocs_op", "ivm_ns_op", "ivm_allocs_op", "ivm_speedup_vs_serial"}}
	var serialIVM time.Duration
	for _, workers := range []int{1, 4} {
		sc, err := newTPCDScenario(tpcdConfig(s, 2, 1), tpcd.JoinView())
		if err != nil {
			return nil, err
		}
		if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
			return nil, err
		}
		sc.d.SetParallelism(workers)
		c, err := clean.New(sc.m, 0.10, nil)
		if err != nil {
			return nil, err
		}
		c.SetParallelism(workers)
		bestRun := func(f func() error) (time.Duration, uint64, error) {
			var bestDur time.Duration
			var bestAllocs uint64
			for run := 0; run < 3; run++ {
				dur, allocs, err := measureIt(f)
				if err != nil {
					return 0, 0, err
				}
				if run == 0 || dur < bestDur {
					bestDur, bestAllocs = dur, allocs
				}
			}
			return bestDur, bestAllocs, nil
		}
		svcDur, svcAllocs, err := bestRun(func() error {
			_, err := c.Clean(sc.d)
			return err
		})
		if err != nil {
			return nil, err
		}
		// Measure Maintain alone; the view restore that resets the next
		// run's stale state happens outside the measured closure so its
		// clone cost never pollutes ivm_ns_op / ivm_allocs_op.
		stale := sc.v.Data().Clone()
		var ivmDur time.Duration
		var ivmAllocs uint64
		for run := 0; run < 3; run++ {
			dur, allocs, err := measureIt(func() error {
				_, err := sc.m.Maintain(sc.d)
				return err
			})
			if err != nil {
				return nil, err
			}
			if err := sc.v.Replace(stale.Clone()); err != nil {
				return nil, err
			}
			if run == 0 || dur < ivmDur {
				ivmDur, ivmAllocs = dur, allocs
			}
		}
		if workers == 1 {
			serialIVM = ivmDur
		}
		t.AddRow(workers, svcDur, svcAllocs, ivmDur, ivmAllocs, float64(serialIVM)/float64(ivmDur))
	}
	t.Notes = append(t.Notes,
		"allocs_op counts heap objects per full run; the hash64 key pipeline keeps it flat as workers grow",
		"parallel speedup requires free CPU cores; on a single-core host the 4-worker row measures overhead only")
	return t, nil
}

// fig4b: fixed 10% sample, growing update size.
func fig4b(s Scale) (*Table, error) {
	t := &Table{ID: "fig4b", Title: "Join view: SVC-10% speedup vs update size",
		Header: []string{"updates_pct", "svc_time", "ivm_time", "speedup", "rows_speedup"}}
	for _, frac := range []float64{0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20} {
		sc, err := newTPCDScenario(tpcdConfig(s, 2, 2), tpcd.JoinView())
		if err != nil {
			return nil, err
		}
		if err := sc.gen.StageUpdates(sc.d, frac); err != nil {
			return nil, err
		}
		c, err := clean.New(sc.m, 0.10, nil)
		if err != nil {
			return nil, err
		}
		var samples *clean.Samples
		svcDur, err := timeIt(func() error {
			var err error
			samples, err = c.Clean(sc.d)
			return err
		})
		if err != nil {
			return nil, err
		}
		ivmDur, ivmStats, err := sc.timeIVM()
		if err != nil {
			return nil, err
		}
		t.AddRow(100*frac, svcDur, ivmDur, float64(ivmDur)/float64(svcDur),
			float64(ivmStats.RowsTouched)/float64(samples.Stats.RowsTouched))
	}
	t.Notes = append(t.Notes, "paper Figure 4b: speedup grows with update size (6.5x at 2.5% to 10.1x at 20% on MySQL)")
	return t, nil
}

// fig5: per-query accuracy on the join view.
func fig5(s Scale) (*Table, error) {
	sc, err := newTPCDScenario(tpcdConfig(s, 2, 3), tpcd.JoinView())
	if err != nil {
		return nil, err
	}
	if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
		return nil, err
	}
	c, err := clean.New(sc.m, 0.10, nil)
	if err != nil {
		return nil, err
	}
	samples, err := c.Clean(sc.d)
	if err != nil {
		return nil, err
	}
	truthV, err := sc.truth()
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig5", Title: "Join view: median relative error per query (10% sample, 10% updates)",
		Header: []string{"query", "stale_err", "aqp_err", "corr_err"}}
	for _, jq := range tpcd.JoinViewQueries() {
		truth, _, err := estimator.GroupExact(truthV.Data(), jq.Query, jq.GroupBy)
		if err != nil {
			return nil, err
		}
		staleAns, _, err := estimator.GroupExact(sc.v.Data(), jq.Query, jq.GroupBy)
		if err != nil {
			return nil, err
		}
		aqp, err := estimator.GroupAQP(samples, jq.Query, jq.GroupBy, 0.95)
		if err != nil {
			return nil, err
		}
		corr, err := estimator.GroupCorr(sc.v.Data(), samples, jq.Query, jq.GroupBy, 0.95)
		if err != nil {
			return nil, err
		}
		staleMed, _ := estimator.GroupStaleErrorStats(staleAns, truth)
		aqpMed, _ := estimator.GroupErrorStats(aqp.Groups, truth)
		corrMed, _ := estimator.GroupErrorStats(corr.Groups, truth)
		t.AddRow(jq.Name, staleMed, aqpMed, corrMed)
	}
	t.Notes = append(t.Notes, "paper Figure 5: SVC+CORR ≈11.7x more accurate than stale, ≈3.1x more than SVC+AQP")
	return t, nil
}

// fig6a: total (maintenance + query) time decomposition.
func fig6a(s Scale) (*Table, error) {
	sc, err := newTPCDScenario(tpcdConfig(s, 2, 4), tpcd.JoinView())
	if err != nil {
		return nil, err
	}
	if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
		return nil, err
	}
	q := estimator.Sum("l_extendedprice", nil)

	t := &Table{ID: "fig6a", Title: "Join view: total time = maintenance + query (10% sample, 10% updates)",
		Header: []string{"method", "maintenance", "query", "total"}}

	// IVM: full maintenance, then an exact query on the view.
	ivmDur, _, err := sc.timeIVM()
	if err != nil {
		return nil, err
	}
	maintained := sc.v.Data() // restored stale; run query on stale size (same cardinality class)
	qDur, err := timeIt(func() error {
		_, err := estimator.RunExact(maintained, q)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("IVM", ivmDur, qDur, ivmDur+qDur)

	c, err := clean.New(sc.m, 0.10, nil)
	if err != nil {
		return nil, err
	}
	var samples *clean.Samples
	svcDur, err := timeIt(func() error {
		var err error
		samples, err = c.Clean(sc.d)
		return err
	})
	if err != nil {
		return nil, err
	}
	// SVC+CORR queries the full stale view plus both samples.
	corrQ, err := timeIt(func() error {
		_, err := estimator.Corr(sc.v.Data(), samples, q, 0.95)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("SVC+CORR-10%", svcDur, corrQ, svcDur+corrQ)
	// SVC+AQP queries only the clean sample.
	aqpQ, err := timeIt(func() error {
		_, err := estimator.AQP(samples, q, 0.95)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("SVC+AQP-10%", svcDur, aqpQ, svcDur+aqpQ)
	t.Notes = append(t.Notes, "paper Figure 6a: CORR shifts a little work to query time; both SVC variants win on total time")
	return t, nil
}

// fig6b: CORR vs AQP as staleness grows — the Section 5.2.2 break-even.
func fig6b(s Scale) (*Table, error) {
	t := &Table{ID: "fig6b", Title: "Join view: SVC+CORR vs SVC+AQP error vs update size (10% sample)",
		Header: []string{"updates_pct", "corr_err", "aqp_err", "advised"}}
	q := estimator.Sum("l_extendedprice", nil)
	crossover := ""
	for _, frac := range []float64{0.03, 0.08, 0.13, 0.18, 0.23, 0.28, 0.33, 0.38, 0.43} {
		var corrErr, aqpErr float64
		var advised string
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			sc, err := newTPCDScenario(tpcdConfig(s, 2, 5+int64(rep)), tpcd.JoinView())
			if err != nil {
				return nil, err
			}
			if err := sc.gen.StageUpdates(sc.d, frac); err != nil {
				return nil, err
			}
			c, err := clean.New(sc.m, 0.10, nil)
			if err != nil {
				return nil, err
			}
			samples, err := c.Clean(sc.d)
			if err != nil {
				return nil, err
			}
			truthV, err := sc.truth()
			if err != nil {
				return nil, err
			}
			truth, err := estimator.RunExact(truthV.Data(), q)
			if err != nil {
				return nil, err
			}
			corr, err := estimator.Corr(sc.v.Data(), samples, q, 0.95)
			if err != nil {
				return nil, err
			}
			aqp, err := estimator.AQP(samples, q, 0.95)
			if err != nil {
				return nil, err
			}
			corrErr += estimator.RelativeError(corr.Value, truth) / reps
			aqpErr += estimator.RelativeError(aqp.Value, truth) / reps
			advised, err = estimator.Advise(samples, q)
			if err != nil {
				return nil, err
			}
		}
		if crossover == "" && aqpErr < corrErr {
			crossover = fmt.Sprintf("first AQP win at %.0f%% updates", frac*100)
		}
		t.AddRow(100*frac, corrErr, aqpErr, advised)
	}
	if crossover != "" {
		t.Notes = append(t.Notes, crossover)
	}
	t.Notes = append(t.Notes, "paper Figure 6b: CORR wins until ≈32.5% updates, then AQP")
	return t, nil
}

// fig7a: complex views maintenance time.
func fig7a(s Scale) (*Table, error) {
	t := &Table{ID: "fig7a", Title: "Complex views: maintenance time IVM vs SVC-10% (10% updates)",
		Header: []string{"view", "strategy", "ivm_time", "svc_time", "speedup", "pushdown_blocked"}}
	for _, def := range tpcd.ComplexViews() {
		sc, err := newTPCDScenario(tpcdConfig(s, 2, 7), def)
		if err != nil {
			return nil, err
		}
		if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
			return nil, err
		}
		c, err := clean.New(sc.m, 0.10, nil)
		if err != nil {
			return nil, err
		}
		svcDur, err := timeIt(func() error {
			_, err := c.Clean(sc.d)
			return err
		})
		if err != nil {
			return nil, err
		}
		ivmDur, _, err := sc.timeIVM()
		if err != nil {
			return nil, err
		}
		t.AddRow(def.Name, sc.m.Kind().String(), ivmDur, svcDur,
			float64(ivmDur)/float64(svcDur), c.UsesFullView())
	}
	t.Notes = append(t.Notes, "paper Figure 7a: V21 and V22 gain little — nested structures block push-down")
	return t, nil
}

// fig7b: complex views accuracy with generated queries.
func fig7b(s Scale) (*Table, error) {
	t := &Table{ID: "fig7b", Title: "Complex views: median relative error (10% sample, 10% updates)",
		Header: []string{"view", "stale_err", "aqp_err", "corr_err", "queries"}}
	cfg := tpcdConfig(s, 2, 8)
	space := tpcd.ViewQuerySpace(cfg)
	rng := rand.New(rand.NewSource(42))
	for _, def := range tpcd.ComplexViews() {
		sc, err := newTPCDScenario(cfg, def)
		if err != nil {
			return nil, err
		}
		if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
			return nil, err
		}
		c, err := clean.New(sc.m, 0.10, nil)
		if err != nil {
			return nil, err
		}
		samples, err := c.Clean(sc.d)
		if err != nil {
			return nil, err
		}
		truthV, err := sc.truth()
		if err != nil {
			return nil, err
		}
		sp := space[def.Name]
		queries := tpcd.GenerateQueries(rng, 25, sp.Preds, sp.Aggs)
		if len(queries) == 0 {
			// V22's group key is a string; fall back to unpredicated sums.
			for _, a := range sp.Aggs {
				queries = append(queries, tpcd.GeneratedQuery{Desc: "sum " + a, Query: estimator.Sum(a, nil)})
			}
		}
		var staleErrs, aqpErrs, corrErrs []float64
		for _, gq := range queries {
			truth, err := estimator.RunExact(truthV.Data(), gq.Query)
			if err != nil || truth == 0 || truth != truth {
				continue
			}
			staleAns, err := estimator.RunExact(sc.v.Data(), gq.Query)
			if err != nil {
				continue
			}
			aqp, err1 := estimator.AQP(samples, gq.Query, 0.95)
			corr, err2 := estimator.Corr(sc.v.Data(), samples, gq.Query, 0.95)
			if err1 != nil || err2 != nil {
				continue
			}
			staleErrs = append(staleErrs, estimator.RelativeError(staleAns, truth))
			aqpErrs = append(aqpErrs, estimator.RelativeError(aqp.Value, truth))
			corrErrs = append(corrErrs, estimator.RelativeError(corr.Value, truth))
		}
		if len(staleErrs) == 0 {
			continue
		}
		t.AddRow(def.Name, stats.Median(staleErrs), stats.Median(aqpErrs), stats.Median(corrErrs), len(staleErrs))
	}
	t.Notes = append(t.Notes, "paper Figure 7b: SVC+CORR more accurate than SVC+AQP and No Maintenance across views")
	return t, nil
}

// fig8a: outlier index accuracy across skew.
func fig8a(s Scale) (*Table, error) {
	t := &Table{ID: "fig8a", Title: "V3 75%-quartile error vs Zipf z (k=100 outlier index, 10% sample)",
		Header: []string{"z", "stale", "aqp", "aqp+out", "corr", "corr+out"}}
	rng := rand.New(rand.NewSource(7))
	// The paper indexes the top-100 records; the index is deliberately
	// not scaled down (its whole point is to capture the tail, which at
	// high z is dominated by a handful of records).
	const kLimit = 100
	var v3 view.Definition
	for _, def := range tpcd.ComplexViews() {
		if def.Name == "V3" {
			v3 = def
		}
	}
	for _, z := range []float64{1, 2, 3, 4} {
		cfg := tpcdConfig(s, z, 9)
		sc, err := newTPCDScenario(cfg, v3)
		if err != nil {
			return nil, err
		}
		if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
			return nil, err
		}
		c, err := clean.New(sc.m, 0.10, nil)
		if err != nil {
			return nil, err
		}
		samples, err := c.Clean(sc.d)
		if err != nil {
			return nil, err
		}
		// Outlier index on lineitem.l_extendedprice with a top-k threshold.
		lt := sc.d.Table(tpcd.Lineitem)
		thr, err := outlier.TopKThreshold(lt, "l_extendedprice", kLimit)
		if err != nil {
			return nil, err
		}
		ix, err := outlier.NewIndex(tpcd.Lineitem, "l_extendedprice", tpcd.LineitemSchema(), thr, kLimit)
		if err != nil {
			return nil, err
		}
		if err := ix.BuildFromTable(lt); err != nil {
			return nil, err
		}
		if !outlier.Eligible(c, ix) {
			return nil, fmt.Errorf("fig8a: index unexpectedly ineligible")
		}
		mz, err := outlier.NewMaterializer(sc.v, ix)
		if err != nil {
			return nil, err
		}
		o, err := mz.Materialize(sc.d)
		if err != nil {
			return nil, err
		}
		truthV, err := sc.truth()
		if err != nil {
			return nil, err
		}
		// Predicate over the order-key domain *including* the new orders
		// staged by the update batch, so missing rows are queryable.
		preds := []tpcd.PredAttr{{Name: "l_orderkey", Lo: 0, Hi: int64(float64(cfg.Orders) * 1.12)}}
		var staleE, aqpE, aqpOutE, corrE, corrOutE []float64
		for _, gq := range tpcd.GenerateQueries(rng, 60, preds, []string{"revenue"}) {
			truth, err := estimator.RunExact(truthV.Data(), gq.Query)
			if err != nil || truth == 0 || truth != truth {
				continue
			}
			staleAns, _ := estimator.RunExact(sc.v.Data(), gq.Query)
			a1, e1 := estimator.AQP(samples, gq.Query, 0.95)
			a2, e2 := estimator.AQPWithOutliers(samples, o, gq.Query, 0.95)
			c1, e3 := estimator.Corr(sc.v.Data(), samples, gq.Query, 0.95)
			c2, e4 := estimator.CorrWithOutliers(sc.v.Data(), samples, o, gq.Query, 0.95)
			if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
				continue
			}
			staleE = append(staleE, estimator.RelativeError(staleAns, truth))
			aqpE = append(aqpE, estimator.RelativeError(a1.Value, truth))
			aqpOutE = append(aqpOutE, estimator.RelativeError(a2.Value, truth))
			corrE = append(corrE, estimator.RelativeError(c1.Value, truth))
			corrOutE = append(corrOutE, estimator.RelativeError(c2.Value, truth))
		}
		q75 := func(xs []float64) float64 { return stats.Quantile(xs, 0.75) }
		t.AddRow(z, q75(staleE), q75(aqpE), q75(aqpOutE), q75(corrE), q75(corrOutE))
	}
	t.Notes = append(t.Notes, "paper Figure 8a: at z=4 the outlier index halves the error")
	return t, nil
}

// fig8b: outlier index overhead.
func fig8b(s Scale) (*Table, error) {
	t := &Table{ID: "fig8b", Title: "Outlier index overhead (SVC-10% + index vs IVM)",
		Header: []string{"view", "k", "svc+index_time", "ivm_time"}}
	// The paper indexes l_extendedprice and uses V3/V5/V10/V15 on its
	// *denormalized* schema, where sampling the view key always samples
	// the one wide fact table. On the normalized schema, Definition 5's
	// eligibility rule (the indexed relation must be sampled) admits the
	// lineitem-keyed views: V3, V15i and V18.
	targets := map[string]bool{"V3": true, "V15i": true, "V18": true}
	for _, def := range tpcd.ComplexViews() {
		if !targets[def.Name] {
			continue
		}
		for _, k := range []int{0, 10, 100, 1000} {
			sc, err := newTPCDScenario(tpcdConfig(s, 2, 11), def)
			if err != nil {
				return nil, err
			}
			if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
				return nil, err
			}
			c, err := clean.New(sc.m, 0.10, nil)
			if err != nil {
				return nil, err
			}
			dur, err := timeIt(func() error {
				if _, err := c.Clean(sc.d); err != nil {
					return err
				}
				if k == 0 {
					return nil
				}
				lt := sc.d.Table(tpcd.Lineitem)
				thr, err := outlier.TopKThreshold(lt, "l_extendedprice", k)
				if err != nil {
					return err
				}
				ix, err := outlier.NewIndex(tpcd.Lineitem, "l_extendedprice", tpcd.LineitemSchema(), thr, k)
				if err != nil {
					return err
				}
				if err := ix.BuildFromTable(lt); err != nil {
					return err
				}
				mz, err := outlier.NewMaterializer(sc.v, ix)
				if err != nil {
					return err
				}
				_, err = mz.Materialize(sc.d)
				return err
			})
			if err != nil {
				return nil, err
			}
			ivmDur, _, err := sc.timeIVM()
			if err != nil {
				return nil, err
			}
			t.AddRow(def.Name, k, dur, ivmDur)
		}
	}
	t.Notes = append(t.Notes, "paper Figure 8b: the index adds overhead growing with k but stays below IVM")
	return t, nil
}

// pipelineCycle measures the full deferred-maintenance cycle on the
// Fig. 4a join-view workload with engine-level metrics: one op is
// clean (CleanAt) + sample coercion + full maintenance (MaintainAt)
// against one pinned version — exactly what svc.StaleView.MaintainNow
// evaluates before publishing. ns/op and allocs/op are best of five
// after one unmeasured warmup cycle (allocs are run-invariant);
// rows_touched is the machine-independent
// cost proxy. This is the batch-pipeline headline benchmark: its
// trajectory is recorded in BENCH_pipeline.json (svcbench -json).
func pipelineCycle(s Scale) (*Table, error) {
	t := &Table{ID: "pipeline", Title: "Batch pipeline: full maintain+clean cycle on the join view (10% updates)",
		Header: []string{"workers", "cycle_ns_op", "cycle_allocs_op", "clean_ns_op", "clean_allocs_op", "maint_ns_op", "maint_allocs_op", "rows_touched", "columnar"}}
	// The columnar A/B is built in: every worker count runs once through
	// the columnar batch path (the production default) and once through
	// the row-at-a-time pipeline (-columnar=off equivalent), so the
	// recorded JSON always carries the row-vs-columnar delta. The two
	// modes of a worker count run back to back so slow drift (thermal,
	// GC heap growth) cannot systematically favor whichever mode runs
	// first.
	// Process-level warmup: the first scenario in a fresh process pays
	// heap growth and GC ramp-up that would bias whichever (workers,
	// columnar) config runs first by ~20%; one throwaway cycle on a
	// small scenario absorbs it.
	if warm, err := newTPCDScenario(tpcdConfig(s/4, 2, 1), tpcd.JoinView()); err == nil {
		if err := warm.gen.StageUpdates(warm.d, 0.10); err == nil {
			if wc, err := clean.New(warm.m, 0.10, nil); err == nil {
				wpin := warm.d.Pin()
				if ws, err := wc.CleanAt(wpin, warm.v.Data(), wc.StaleSample()); err == nil {
					_, _ = wc.CoerceSample(ws)
				}
				_, _, _ = warm.m.MaintainAt(wpin, warm.v.Data())
			}
		}
	}
	for _, workers := range []int{1, 4} {
		for _, columnar := range []bool{true, false} {
			sc, err := newTPCDScenario(tpcdConfig(s, 2, 1), tpcd.JoinView())
			if err != nil {
				return nil, err
			}
			if err := sc.gen.StageUpdates(sc.d, 0.10); err != nil {
				return nil, err
			}
			sc.d.SetParallelism(workers)
			sc.d.SetColumnar(columnar)
			c, err := clean.New(sc.m, 0.10, nil)
			if err != nil {
				return nil, err
			}
			c.SetParallelism(workers)
			pin := sc.d.Pin()
			stale := sc.v.Data()
			sample := c.StaleSample()

			// One unmeasured warmup cycle: the first evaluation pays pool
			// fills, page faults, and index builds that best-of-3 would
			// otherwise attribute to whichever mode runs first.
			if s, err := c.CleanAt(pin, stale, sample); err != nil {
				return nil, err
			} else if _, err := c.CoerceSample(s); err != nil {
				return nil, err
			}
			if _, _, err := sc.m.MaintainAt(pin, stale); err != nil {
				return nil, err
			}

			var cleanDur, maintDur, cycleDur time.Duration
			var cleanAllocs, maintAllocs, cycleAllocs uint64
			var rowsTouched int64
			for run := 0; run < 5; run++ {
				var samples *clean.Samples
				cDur, cAllocs, err := measureIt(func() error {
					var err error
					samples, err = c.CleanAt(pin, stale, sample)
					if err != nil {
						return err
					}
					_, err = c.CoerceSample(samples)
					return err
				})
				if err != nil {
					return nil, err
				}
				var mStats view.MaintainStats
				mDur, mAllocs, err := measureIt(func() error {
					var err error
					_, mStats, err = sc.m.MaintainAt(pin, stale)
					return err
				})
				if err != nil {
					return nil, err
				}
				if run == 0 || cDur+mDur < cycleDur {
					cleanDur, cleanAllocs = cDur, cAllocs
					maintDur, maintAllocs = mDur, mAllocs
					cycleDur, cycleAllocs = cDur+mDur, cAllocs+mAllocs
					rowsTouched = samples.Stats.RowsTouched + mStats.RowsTouched
				}
			}
			mode := "on"
			if !columnar {
				mode = "off"
			}
			t.AddRow(workers, int64(cycleDur), cycleAllocs, int64(cleanDur), cleanAllocs,
				int64(maintDur), maintAllocs, rowsTouched, mode)
		}
	}
	t.Notes = append(t.Notes,
		"one op = CleanAt + CoerceSample + MaintainAt against one pinned version (MaintainNow's evaluation work)",
		"ns columns are raw nanoseconds (machine-readable); divide by 1e6 for ms",
		"columnar=on rows run the typed-vector batch path (default); columnar=off is the row-at-a-time A/B baseline")
	return t, nil
}
