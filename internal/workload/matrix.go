package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/hashing"
	"github.com/sampleclean/svc/internal/outlier"
	"github.com/sampleclean/svc/internal/relation"
	"github.com/sampleclean/svc/internal/stats"
	"github.com/sampleclean/svc/internal/view"
)

// Config is one engine configuration a scenario runs under: maintenance
// strategy × columnar mode × parallelism.
type Config struct {
	Strategy view.StrategyKind
	Columnar bool
	Parallel int
}

// Label renders the config for dashboards and fixture names.
func (c Config) Label() string {
	col := "row"
	if c.Columnar {
		col = "col"
	}
	par := "serial"
	if c.Parallel > 0 {
		par = fmt.Sprintf("p%d", c.Parallel)
	}
	return fmt.Sprintf("%s/%s/%s", c.Strategy, col, par)
}

// Configs returns the standard strategy matrix: both maintenance
// strategies × columnar on/off × serial vs parallel execution.
func Configs() []Config {
	out := make([]Config, 0, 8)
	for _, k := range []view.StrategyKind{view.ChangeTable, view.Recompute} {
		for _, col := range []bool{false, true} {
			for _, par := range []int{0, 4} {
				out = append(out, Config{Strategy: k, Columnar: col, Parallel: par})
			}
		}
	}
	return out
}

// Options configures a matrix run.
type Options struct {
	// Scale multiplies scenario row counts (ScaleTo floors apply).
	Scale float64
	// Trials is the number of independent salted sample draws per round.
	Trials int
	// Confidence is the nominal CI level.
	Confidence float64
	// Scenarios overrides the standard set (nil = Scenarios()).
	Scenarios []Spec
	// Configs overrides the strategy matrix (nil = Configs()).
	Configs []Config
	// FixtureDir, when non-empty, receives frozen regression fixtures
	// for every failure (after minimization).
	FixtureDir string
	// MaxFixtures caps fixtures written per run (0 = default 4).
	MaxFixtures int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Trials <= 0 {
		o.Trials = 6
	}
	if o.Confidence <= 0 {
		o.Confidence = 0.95
	}
	if o.Scenarios == nil {
		o.Scenarios = Scenarios()
	}
	if o.Configs == nil {
		o.Configs = Configs()
	}
	if o.MaxFixtures <= 0 {
		o.MaxFixtures = 4
	}
	return o
}

// Cell is one scenario × config × estimator measurement.
type Cell struct {
	Scenario     string   `json:"scenario"`
	Strategy     string   `json:"strategy"`
	Columnar     bool     `json:"columnar"`
	Parallel     int      `json:"parallel"`
	Estimator    string   `json:"estimator"`
	Nominal      float64  `json:"nominal"`
	CoverageHits int      `json:"coverage_hits"`
	CoverageN    int      `json:"coverage_n"`
	Coverage     *float64 `json:"coverage,omitempty"`
	MeanRelErr   float64  `json:"mean_rel_err"`
	MeanRelWidth float64  `json:"mean_rel_width,omitempty"`
	MeanK        float64  `json:"mean_k,omitempty"`
	CleanMS      float64  `json:"clean_ms"`
	MaintainMS   float64  `json:"maintain_ms"`
	QueryUS      float64  `json:"query_us,omitempty"`
	Errors       int      `json:"errors,omitempty"`
}

// Aggregate pools a scenario × estimator across every config. The jq CI
// gate keys on Gated rows: svc estimators measured in their CLT working
// regime (mean sample size ≥ gateMinK over ≥ gateMinN coverage trials).
type Aggregate struct {
	Scenario     string   `json:"scenario"`
	Estimator    string   `json:"estimator"`
	Nominal      float64  `json:"nominal"`
	CoverageHits int      `json:"coverage_hits"`
	CoverageN    int      `json:"coverage_n"`
	Coverage     *float64 `json:"coverage,omitempty"`
	CoverageLo   float64  `json:"coverage_lo,omitempty"`
	CoverageHi   float64  `json:"coverage_hi,omitempty"`
	MeanRelErr   float64  `json:"mean_rel_err"`
	MeanRelWidth float64  `json:"mean_rel_width,omitempty"`
	MeanK        float64  `json:"mean_k,omitempty"`
	Gated        bool     `json:"gated"`
}

// Failure is a matrix cell that tripped a regression trigger.
type Failure struct {
	Scenario  string  `json:"scenario"`
	Strategy  string  `json:"strategy"`
	Columnar  bool    `json:"columnar"`
	Parallel  int     `json:"parallel"`
	Estimator string  `json:"estimator"`
	Trigger   string  `json:"trigger"`
	Detail    string  `json:"detail"`
	Observed  float64 `json:"observed"`
	Bound     float64 `json:"bound"`
}

// Result is a full matrix run: the input grid plus every cell, pooled
// aggregates, triggered failures, and fixtures frozen from them.
type Result struct {
	Scale      float64     `json:"scale"`
	Trials     int         `json:"trials"`
	Confidence float64     `json:"confidence"`
	Scenarios  []Spec      `json:"scenarios"`
	Cells      []Cell      `json:"cells"`
	Aggregates []Aggregate `json:"aggregates"`
	Failures   []Failure   `json:"failures"`
	Fixtures   []string    `json:"fixtures,omitempty"`
}

// Gating thresholds: a pooled svc estimator is CI-gated only inside the
// CLT working regime. Triggers use the same floors so frozen fixtures
// never encode pure small-sample noise.
const (
	gateFraction = 0.9   // measured coverage must be ≥ gateFraction·nominal
	gateMinK     = 20    // mean cleaned-sample size
	gateMinN     = 40    // pooled coverage trials
	cellMinN     = 30    // per-cell coverage trials before a cell can trigger
	staleMargin  = 1.1   // svc+corr loses only if err > staleMargin·staleErr + staleFloor
	staleFloor   = 1e-3
	freezeZ      = 1.645 // one-sided z for "significantly under nominal" freezes
)

// Estimator display order (stable across runs — dashboards and fixture
// names depend on it).
var estimatorOrder = []string{
	"svc+corr", "svc+aqp", "svc+corr+out", "svc+aqp+out",
	"stale", "select-clean", "per-group",
}

// gatedEstimator says whether an estimator's CI coverage carries the
// paper's guarantee for this scenario — those are the rows the jq gate
// enforces. The guaranteed estimator is SVC+CORR; on scenarios that
// declare an outlier index the guarantee transfers to SVC+CORR+OUT
// (Section 6 exists precisely because plain CLT undercovers on heavy
// tails — the bare corr/aqp rows stay informational there). AQP rows are
// never gated: the paper's own claim is that direct AQP degrades under
// skew and staleness, and the dashboard is where that shows.
func gatedEstimator(spec Spec, name string) bool {
	if spec.OutlierK > 0 {
		return name == "svc+corr+out"
	}
	return name == "svc+corr"
}

// acc accumulates one estimator's measurements inside a cell.
type acc struct {
	hits, n        int // CI coverage bernoullis
	errSum         float64
	errN           int
	widthSum       float64
	widthN         int
	kSum           float64
	kN             int
	queryNS        int64
	calls          int
	errors         int
	staleErrPaired float64 // stale mean rel err over the same queries (for loss trigger)
}

func (a *acc) coverage() (float64, bool) {
	if a.n == 0 {
		return 0, false
	}
	return float64(a.hits) / float64(a.n), true
}

func (a *acc) meanErr() float64 {
	if a.errN == 0 {
		return 0
	}
	return a.errSum / float64(a.errN)
}

func (a *acc) meanWidth() float64 {
	if a.widthN == 0 {
		return 0
	}
	return a.widthSum / float64(a.widthN)
}

func (a *acc) meanK() float64 {
	if a.kN == 0 {
		return 0
	}
	return a.kSum / float64(a.kN)
}

// recordEstimate folds one CI estimate against the truth.
func (a *acc) recordEstimate(e estimator.Estimate, truth float64) {
	if e.Covers(truth) {
		a.hits++
	}
	a.n++
	a.errSum += estimator.RelativeError(e.Value, truth)
	a.errN++
	denom := math.Max(math.Abs(truth), 1e-9)
	a.widthSum += (e.Hi - e.Lo) / denom
	a.widthN++
}

// cellRun is runCell's raw output, keyed by estimator name.
type cellRun struct {
	accs       map[string]*acc
	cleanNS    int64
	cleanN     int
	maintainNS int64
	maintainN  int
}

func (cr *cellRun) acc(name string) *acc {
	a := cr.accs[name]
	if a == nil {
		a = &acc{}
		cr.accs[name] = a
	}
	return a
}

func saltFor(seed int64, round, trial int) uint64 {
	return uint64(seed)<<20 ^ uint64(round)<<10 ^ uint64(trial) ^ 0x5bd1e995
}

// cfgSalt decorrelates sample draws across engine configs. Without it
// every config would reuse the same Trials hash salts, so pooled coverage
// would count each draw len(Configs()) times — a bad draw then looks like
// a systematic failure.
func cfgSalt(cfg Config) uint64 {
	v := uint64(cfg.Strategy) << 9
	if cfg.Columnar {
		v |= 1 << 8
	}
	return (v | uint64(cfg.Parallel&0xff)) * 0x9E3779B9
}

// runCell executes one scenario under one config: per round it stages the
// generated deltas, snapshots the recompute truth, draws Trials
// independent salted samples, runs the full estimator suite against the
// truth, and finally maintains the view and folds the round — so later
// rounds measure the estimators on a freshly maintained view with new
// staleness, which is exactly the serving cycle of the paper.
func runCell(spec Spec, cfg Config, opts Options) (*cellRun, error) {
	g, err := NewGenerator(spec)
	if err != nil {
		return nil, err
	}
	d := g.DB()
	d.SetParallelism(cfg.Parallel)
	d.SetColumnar(cfg.Columnar)
	v, err := view.Materialize(d, spec.Definition())
	if err != nil {
		return nil, fmt.Errorf("workload: materialize %s: %w", spec.Name, err)
	}
	m, err := view.NewMaintainerWithStrategy(v, cfg.Strategy)
	if err != nil {
		return nil, fmt.Errorf("workload: maintainer %s: %w", spec.Name, err)
	}

	cr := &cellRun{accs: map[string]*acc{}}
	groupBy := []string{"grp"}

	for r := 0; r < spec.Rounds; r++ {
		if err := g.StageRound(r); err != nil {
			return nil, err
		}

		// Recompute truth: fold a snapshot's deltas and materialize fresh.
		snap := d.Snapshot()
		if err := snap.ApplyDeltas(); err != nil {
			return nil, fmt.Errorf("workload: %s truth fold: %w", spec.Name, err)
		}
		tv, err := view.Materialize(snap, spec.Definition())
		if err != nil {
			return nil, fmt.Errorf("workload: %s truth view: %w", spec.Name, err)
		}
		truthRel := tv.Data()

		// Heavy-tail scenarios: build the outlier index over the fact
		// table (Section 6) once per round; its partition is
		// deterministic, only the sampled remainder varies per trial.
		var oset *estimator.OutlierSet
		var ix *outlier.Index
		if spec.OutlierK > 0 && spec.View == Flat {
			thr, err := outlier.TopKThreshold(d.Table("Fact"), "val", spec.OutlierK)
			if err == nil {
				ix, err = outlier.NewIndex("Fact", "val", factSchema(), thr, spec.OutlierK)
				if err == nil {
					if err := ix.BuildFromTable(d.Table("Fact")); err == nil {
						if mz, err := outlier.NewMaterializer(v, ix); err == nil {
							oset, _ = mz.Materialize(d)
						}
					}
				}
			}
		}

		queries := spec.QueryMix(r)
		pred := spec.SelectPred()

		for trial := 0; trial < opts.Trials; trial++ {
			hasher := hashing.Salted{Salt: saltFor(spec.Seed, r, trial) ^ cfgSalt(cfg)}
			cl, err := clean.New(m, spec.SampleRatio, hasher)
			if err != nil {
				return nil, fmt.Errorf("workload: %s cleaner: %w", spec.Name, err)
			}
			t0 := time.Now()
			samples, err := cl.Clean(d)
			if err != nil {
				return nil, fmt.Errorf("workload: %s clean: %w", spec.Name, err)
			}
			cr.cleanNS += time.Since(t0).Nanoseconds()
			cr.cleanN++

			useOutliers := oset != nil && ix != nil && outlier.Eligible(cl, ix)
			k := float64(samples.Fresh.Len())

			for _, q := range queries {
				truth, err := estimator.RunExact(truthRel, q)
				if err != nil || math.IsNaN(truth) {
					continue
				}
				if trial == 0 {
					a := cr.acc("stale")
					tq := time.Now()
					staleVal, err := estimator.RunExact(v.Data(), q)
					a.queryNS += time.Since(tq).Nanoseconds()
					a.calls++
					if err == nil && !math.IsNaN(staleVal) {
						a.errSum += estimator.RelativeError(staleVal, truth)
						a.errN++
					}
				}
				staleVal, staleErr := estimator.RunExact(v.Data(), q)

				run := func(name string, f func() (estimator.Estimate, error)) {
					a := cr.acc(name)
					tq := time.Now()
					e, err := f()
					a.queryNS += time.Since(tq).Nanoseconds()
					a.calls++
					if err != nil {
						a.errors++
						return
					}
					a.recordEstimate(e, truth)
					a.kSum += k
					a.kN++
					if staleErr == nil && !math.IsNaN(staleVal) {
						a.staleErrPaired += estimator.RelativeError(staleVal, truth)
					}
				}
				run("svc+corr", func() (estimator.Estimate, error) {
					return estimator.Corr(v.Data(), samples, q, opts.Confidence)
				})
				run("svc+aqp", func() (estimator.Estimate, error) {
					return estimator.AQP(samples, q, opts.Confidence)
				})
				if useOutliers {
					run("svc+corr+out", func() (estimator.Estimate, error) {
						return estimator.CorrWithOutliers(v.Data(), samples, oset, q, opts.Confidence)
					})
					run("svc+aqp+out", func() (estimator.Estimate, error) {
						return estimator.AQPWithOutliers(samples, oset, q, opts.Confidence)
					})
				}
			}

			// Per-group answers: group the view by its dimension key and
			// compare each group's corrected estimate to the exact
			// recompute. Coverage here is informational (unsampled
			// changed groups are legitimately uncovered — the paper's
			// per-group guarantee is conditional on the group being hit).
			{
				a := cr.acc("per-group")
				q := estimator.Sum(spec.AggAttr(), nil)
				tq := time.Now()
				gr, err := estimator.GroupCorr(v.Data(), samples, q, groupBy, opts.Confidence)
				a.queryNS += time.Since(tq).Nanoseconds()
				a.calls++
				if err != nil {
					a.errors++
				} else if truthGroups, _, err := estimator.GroupExact(truthRel, q, groupBy); err == nil {
					covered, total := estimator.GroupCoverage(gr.Groups, truthGroups)
					a.hits += covered
					a.n += total
					med, _ := estimator.GroupErrorStats(gr.Groups, truthGroups)
					a.errSum += med
					a.errN++
					a.kSum += k
					a.kN++
				}
			}

			// Select-clean: corrected SELECT * WHERE pred, with CIs on the
			// updated/added/removed row counts (Appendix 12.1.2).
			{
				a := cr.acc("select-clean")
				tq := time.Now()
				res, err := estimator.CleanSelect(v.Data(), samples, pred, opts.Confidence)
				a.queryNS += time.Since(tq).Nanoseconds()
				a.calls++
				if err != nil {
					a.errors++
				} else if upd, add, rem, err := selectTruthCounts(v.Data(), truthRel, pred); err == nil {
					for _, pair := range []struct {
						e     estimator.Estimate
						truth int
					}{{res.Updated, upd}, {res.Added, add}, {res.Removed, rem}} {
						a.recordEstimate(pair.e, float64(pair.truth))
					}
					a.kSum += k
					a.kN++
				}
			}
		}

		// Maintain + fold: the next round's estimators run against the
		// freshly maintained view with brand-new staleness.
		t0 := time.Now()
		pin := d.Pin()
		maintained, _, err := m.MaintainAt(pin, v.Data())
		if err != nil {
			return nil, fmt.Errorf("workload: %s maintain: %w", spec.Name, err)
		}
		cr.maintainNS += time.Since(t0).Nanoseconds()
		cr.maintainN++
		if err := d.ApplyVersion(pin, nil); err != nil {
			return nil, fmt.Errorf("workload: %s fold: %w", spec.Name, err)
		}
		if err := v.Replace(maintained); err != nil {
			return nil, fmt.Errorf("workload: %s replace: %w", spec.Name, err)
		}
	}
	return cr, nil
}

// selectTruthCounts mirrors CleanSelect's updated/added/removed counting
// at sampling ratio 1: the ground truth the scaled estimates should cover.
func selectTruthCounts(stale, fresh *relation.Relation, pred expr.Expr) (updated, added, removed int, err error) {
	bs, err := pred.Bind(stale.Schema())
	if err != nil {
		return 0, 0, 0, err
	}
	bf, err := pred.Bind(fresh.Schema())
	if err != nil {
		return 0, 0, 0, err
	}
	keyIdx := stale.Schema().Key()
	for _, fr := range fresh.Rows() {
		k := fr.KeyOf(keyIdx)
		matches := bf.Eval(fr).AsBool()
		stRow, inStale := stale.GetByEncodedKey(k)
		switch {
		case matches && inStale:
			if !fr.Equal(stRow) {
				updated++
			}
			if !bs.Eval(stRow).AsBool() {
				added++ // entered the selection due to updated values
			}
		case matches && !inStale:
			added++
		case !matches && inStale:
			if bs.Eval(stRow).AsBool() {
				removed++
			}
		}
	}
	for _, st := range stale.Rows() {
		if !bs.Eval(st).AsBool() {
			continue
		}
		if _, inFresh := fresh.GetByEncodedKey(st.KeyOf(keyIdx)); !inFresh {
			removed++
		}
	}
	return updated, added, removed, nil
}

// RunMatrix executes every scenario × config cell, pools per-scenario
// aggregates, evaluates the regression triggers, and (when FixtureDir is
// set) minimizes and freezes each failure as a replayable fixture.
func RunMatrix(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	scaled := make([]Spec, len(opts.Scenarios))
	for i, s := range opts.Scenarios {
		scaled[i] = s.ScaleTo(opts.Scale)
	}

	res := &Result{
		Scale:      opts.Scale,
		Trials:     opts.Trials,
		Confidence: opts.Confidence,
		Scenarios:  scaled,
	}

	type aggKey struct{ scenario, estimator string }
	pool := map[aggKey]*acc{}
	var aggKeys []aggKey
	specOf := map[string]Spec{}
	for _, s := range scaled {
		specOf[s.Name] = s
	}

	for _, spec := range scaled {
		for _, cfg := range opts.Configs {
			cr, err := runCell(spec, cfg, opts)
			if err != nil {
				return nil, err
			}
			cleanMS := float64(cr.cleanNS) / 1e6 / math.Max(1, float64(cr.cleanN))
			maintainMS := float64(cr.maintainNS) / 1e6 / math.Max(1, float64(cr.maintainN))

			for _, name := range estimatorOrder {
				a, ok := cr.accs[name]
				if !ok {
					continue
				}
				cell := Cell{
					Scenario:  spec.Name,
					Strategy:  cfg.Strategy.String(),
					Columnar:  cfg.Columnar,
					Parallel:  cfg.Parallel,
					Estimator: name,
					Nominal:   opts.Confidence,

					CoverageHits: a.hits,
					CoverageN:    a.n,
					MeanRelErr:   a.meanErr(),
					MeanRelWidth: a.meanWidth(),
					MeanK:        a.meanK(),
					CleanMS:      cleanMS,
					MaintainMS:   maintainMS,
					Errors:       a.errors,
				}
				if cov, ok := a.coverage(); ok {
					c := cov
					cell.Coverage = &c
				}
				if a.calls > 0 {
					cell.QueryUS = float64(a.queryNS) / 1e3 / float64(a.calls)
				}
				res.Cells = append(res.Cells, cell)

				k := aggKey{spec.Name, name}
				p := pool[k]
				if p == nil {
					p = &acc{}
					pool[k] = p
					aggKeys = append(aggKeys, k)
				}
				p.hits += a.hits
				p.n += a.n
				p.errSum += a.errSum
				p.errN += a.errN
				p.widthSum += a.widthSum
				p.widthN += a.widthN
				p.kSum += a.kSum
				p.kN += a.kN
				p.errors += a.errors

				// Regression triggers are cell-level: a single config
				// regressing must not hide behind the pool.
				res.Failures = append(res.Failures, cellFailures(spec, cfg, name, a, opts)...)
			}
		}
	}

	for _, k := range aggKeys {
		p := pool[k]
		agg := Aggregate{
			Scenario:     k.scenario,
			Estimator:    k.estimator,
			Nominal:      opts.Confidence,
			CoverageHits: p.hits,
			CoverageN:    p.n,
			MeanRelErr:   p.meanErr(),
			MeanRelWidth: p.meanWidth(),
			MeanK:        p.meanK(),
		}
		if cov, ok := p.coverage(); ok {
			c := cov
			agg.Coverage = &c
			agg.CoverageLo, agg.CoverageHi = stats.BinomialCI(p.hits, p.n, opts.Confidence)
		}
		agg.Gated = gatedEstimator(specOf[k.scenario], k.estimator) && p.meanK() >= gateMinK && p.n >= gateMinN
		res.Aggregates = append(res.Aggregates, agg)
	}

	sortFailures(res.Failures)
	if opts.FixtureDir != "" && len(res.Failures) > 0 {
		frozen, err := FreezeFailures(res.Failures, scaled, opts)
		if err != nil {
			return nil, err
		}
		res.Fixtures = frozen
	}
	return res, nil
}

// cellFailures evaluates the regression triggers for one cell.
func cellFailures(spec Spec, cfg Config, name string, a *acc, opts Options) []Failure {
	var out []Failure
	mk := func(trigger, detail string, observed, bound float64) {
		out = append(out, Failure{
			Scenario:  spec.Name,
			Strategy:  cfg.Strategy.String(),
			Columnar:  cfg.Columnar,
			Parallel:  cfg.Parallel,
			Estimator: name,
			Trigger:   trigger,
			Detail:    detail,
			Observed:  observed,
			Bound:     bound,
		})
	}
	if gatedEstimator(spec, name) && a.meanK() >= gateMinK && a.n >= cellMinN {
		if cov, ok := a.coverage(); ok {
			// Freeze only statistically significant undercoverage: the
			// one-sided upper bound of the measured rate must clear the
			// nominal level. A raw `cov < nominal` would freeze half of
			// all well-behaved cells on sample luck.
			sd := math.Sqrt(math.Max(cov*(1-cov), 1e-4) / float64(a.n))
			if cov+freezeZ*sd < opts.Confidence {
				mk("coverage-below-nominal",
					fmt.Sprintf("measured CI coverage %.3f (+%.1fσ = %.3f) below nominal %.2f over %d trials",
						cov, freezeZ, cov+freezeZ*sd, opts.Confidence, a.n),
					cov, opts.Confidence)
			}
		}
	}
	if name == "svc+corr" && a.errN > 0 {
		svcErr := a.meanErr()
		staleErr := a.staleErrPaired / float64(a.errN)
		if bound := staleErr*staleMargin + staleFloor; svcErr > bound {
			mk("svc-loses-to-stale",
				fmt.Sprintf("mean rel err %.4f exceeds stale baseline %.4f (bound %.4f): cleaning noise outweighs staleness",
					svcErr, staleErr, bound),
				svcErr, bound)
		}
	}
	return out
}

// sortFailures orders failures deterministically: stale losses first (they
// freeze the paper's most interesting adversarial regime), then by
// scenario/estimator/config.
func sortFailures(fs []Failure) {
	rank := func(f Failure) int {
		if f.Trigger == "svc-loses-to-stale" {
			return 0
		}
		return 1
	}
	sort.SliceStable(fs, func(i, j int) bool {
		if rank(fs[i]) != rank(fs[j]) {
			return rank(fs[i]) < rank(fs[j])
		}
		if fs[i].Scenario != fs[j].Scenario {
			return fs[i].Scenario < fs[j].Scenario
		}
		if fs[i].Estimator != fs[j].Estimator {
			return fs[i].Estimator < fs[j].Estimator
		}
		if fs[i].Strategy != fs[j].Strategy {
			return fs[i].Strategy < fs[j].Strategy
		}
		if fs[i].Columnar != fs[j].Columnar {
			return !fs[i].Columnar
		}
		return fs[i].Parallel < fs[j].Parallel
	})
}
