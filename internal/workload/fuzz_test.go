package workload

import (
	"math"
	"testing"

	"github.com/sampleclean/svc/internal/clean"
	"github.com/sampleclean/svc/internal/estimator"
	"github.com/sampleclean/svc/internal/view"
)

// FuzzScenarioInvariants drives the generator across the scenario parameter
// space and asserts the estimator invariants that must hold for EVERY
// reachable workload, not just the committed matrix:
//
//   - every estimate's CI contains its point value and has non-negative
//     width (saneEstimate);
//   - per-group truth partitions the total exactly, and per-group sampled
//     sum estimates partition the total sum estimate (both are linear in
//     the same sample);
//   - the maintained view equals the recompute truth.
//
// CI runs this with a ~30s budget (-fuzz=FuzzScenarioInvariants
// -fuzztime=30s); the seed corpus alone runs in the regular test suite.
func FuzzScenarioInvariants(f *testing.F) {
	f.Add(int64(1), 0.0, 0.25, 20, 0.0, false)
	f.Add(int64(42), 2.0, 0.4, 5, 0.0, false)
	f.Add(int64(7), 1.2, 0.1, 50, 0.02, true)
	f.Add(int64(-3), 4.0, 0.9, 1, 0.1, true)
	f.Fuzz(func(t *testing.T, seed int64, skew, churn float64, groups int, outlierRate float64, flat bool) {
		// Clamp fuzzed parameters into the generator's domain instead of
		// rejecting: the interesting inputs are the extremes.
		if math.IsNaN(skew) || math.IsInf(skew, 0) || skew < 0 {
			skew = 0
		}
		if skew > 8 {
			skew = 8
		}
		if math.IsNaN(churn) || math.IsInf(churn, 0) || churn < 0 {
			churn = 0
		}
		if churn > 1 {
			churn = 1
		}
		if math.IsNaN(outlierRate) || math.IsInf(outlierRate, 0) || outlierRate < 0 {
			outlierRate = 0
		}
		if outlierRate > 0.5 {
			outlierRate = 0.5
		}
		if groups < 1 {
			groups = 1
		}
		if groups > 60 {
			groups = 60
		}
		spec := Spec{
			Name: "fuzz", Seed: seed,
			BaseRows: 600, DimRows: 60, Groups: groups,
			Rounds: 1, ChurnRate: churn, DeleteFrac: 0.2, UpdateFrac: 0.3,
			Skew: skew, OutlierRate: outlierRate, OutlierScale: 40,
			View: Grouped, SampleRatio: 0.3,
		}
		if flat {
			spec.View = Flat
		}

		g, err := NewGenerator(spec)
		if err != nil {
			t.Fatal(err)
		}
		d := g.DB()
		v, err := view.Materialize(d, spec.Definition())
		if err != nil {
			t.Fatal(err)
		}
		m, err := view.NewMaintainerWithStrategy(v, view.ChangeTable)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.StageRound(0); err != nil {
			t.Fatal(err)
		}

		snap := d.Snapshot()
		if err := snap.ApplyDeltas(); err != nil {
			t.Fatal(err)
		}
		tv, err := view.Materialize(snap, spec.Definition())
		if err != nil {
			t.Fatal(err)
		}
		truthRel := tv.Data()

		cl, err := clean.New(m, spec.SampleRatio, nil)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := cl.Clean(d)
		if err != nil {
			t.Fatal(err)
		}

		// Invariant 1: every estimate is internally sane.
		for qi, q := range spec.QueryMix(0) {
			if truth, err := estimator.RunExact(truthRel, q); err != nil || math.IsNaN(truth) {
				continue
			}
			for _, run := range []func() (estimator.Estimate, error){
				func() (estimator.Estimate, error) { return estimator.Corr(v.Data(), samples, q, 0.95) },
				func() (estimator.Estimate, error) { return estimator.AQP(samples, q, 0.95) },
			} {
				e, err := run()
				if err != nil {
					continue // degenerate sample (e.g. zero count) is allowed to refuse
				}
				if serr := saneEstimate(e); serr != nil {
					t.Fatalf("query %d: %v", qi, serr)
				}
			}
		}

		// Invariant 2: group answers partition the total — exactly for the
		// truth, and estimate-linearly for the sampled sums (GroupAQP per
		// group scales the same sample as the total AQP estimate).
		sumQ := estimator.Query{Agg: estimator.SumQ, Attr: spec.AggAttr()}
		truthGroups, _, err := estimator.GroupExact(truthRel, sumQ, []string{"grp"})
		if err != nil {
			t.Fatal(err)
		}
		truthTotal, err := estimator.RunExact(truthRel, sumQ)
		if err != nil {
			t.Fatal(err)
		}
		var gsum float64
		for _, v := range truthGroups {
			gsum += v
		}
		tol := 1e-9 * math.Max(1, math.Abs(truthTotal))
		if math.Abs(gsum-truthTotal) > tol {
			t.Fatalf("truth group sums %.9g do not partition total %.9g", gsum, truthTotal)
		}

		gres, err := estimator.GroupAQP(samples, sumQ, []string{"grp"}, 0.95)
		if err == nil {
			totalEst, terr := estimator.AQP(samples, sumQ, 0.95)
			if terr == nil {
				var esum float64
				for _, e := range gres.Groups {
					esum += e.Value
				}
				etol := 1e-6 * math.Max(1, math.Abs(totalEst.Value))
				if math.Abs(esum-totalEst.Value) > etol {
					t.Fatalf("group sum estimates %.9g do not partition total estimate %.9g", esum, totalEst.Value)
				}
				for k, e := range gres.Groups {
					if serr := saneEstimate(e); serr != nil {
						t.Fatalf("group %s: %v", k, serr)
					}
				}
			}
		}

		// Invariant 3: maintenance equals recompute.
		pin := d.Pin()
		maintained, _, err := m.MaintainAt(pin, v.Data())
		if err != nil {
			t.Fatal(err)
		}
		if err := sameRelationByKey(maintained, truthRel); err != nil {
			t.Fatalf("maintained view != recompute truth: %v", err)
		}
	})
}
