package hashing

// This file provides the seeded 64-bit streaming hash used by the engine's
// zero-allocation key pipeline (package relation's Row.HashCols and the
// hash tables in package algebra). It is FNV-1a with a SplitMix64
// finalizer — the same construction as the FNV Hasher above, but exposed
// as incremental primitives so callers can hash a row's key columns
// directly from their typed payloads without materializing the canonical
// byte encoding first.
//
// The contract callers rely on: two byte sequences fed through the same
// seed and the same Add* call sequence produce the same finished hash.
// Equal hashes do NOT imply equal keys — consumers must verify candidates
// against the full canonical encoding (relation.Row.KeyEqualCols), which
// is what makes the 64-bit fast path safe under collisions.

const (
	fnvOffset64 uint64 = 0xcbf29ce484222325
	fnvPrime64  uint64 = 0x100000001b3
)

// Init64 returns the initial state of a seeded 64-bit streaming hash.
// Different seeds yield statistically independent hash functions.
func Init64(seed uint64) uint64 {
	return AddUint64(fnvOffset64, seed)
}

// AddByte64 folds one byte into the state.
func AddByte64(h uint64, c byte) uint64 {
	return (h ^ uint64(c)) * fnvPrime64
}

// AddUint64 folds a 64-bit word into the state (little-endian byte order).
func AddUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// AddBytes64 folds a byte slice into the state.
func AddBytes64(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// AddString64 folds a string into the state without allocating.
func AddString64(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// Finish64 finalizes the state with a full-avalanche mix so that the high
// and low bits are both usable for partitioning and slot selection.
func Finish64(h uint64) uint64 { return Mix64(h) }

// Hash64 is the one-shot form: hash b under the given seed.
func Hash64(seed uint64, b []byte) uint64 {
	return Finish64(AddBytes64(Init64(seed), b))
}

// Mix64 is the SplitMix64 finalizer: a full-avalanche bijection. It is the
// exported form of the finalizer the FNV Hasher applies.
func Mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
