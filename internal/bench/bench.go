package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Table is one experiment's result: a title, the reproduced figure's
// series as rows, and free-form notes (e.g. which direction the paper's
// shape goes).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fms", float64(v.Microseconds())/1000)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// JSONReport is the machine-readable form of a benchmark run, written by
// svcbench -json. It seeds the bench trajectory: successive PRs append
// their numbers (ns/op, allocs/op, rows touched) so regressions are
// diffable instead of anecdotal.
type JSONReport struct {
	GeneratedAt string        `json:"generated_at"`
	Scale       float64       `json:"scale"`
	Parallel    int           `json:"parallel"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Experiments []*JSONResult `json:"experiments"`
}

// JSONResult is one experiment's table plus its wall-clock time.
type JSONResult struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

// JSONResultOf converts a rendered table.
func JSONResultOf(t *Table, elapsed time.Duration) *JSONResult {
	return &JSONResult{
		ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func WriteJSON(path string, report *JSONReport) error {
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Scale adjusts experiment sizes: 1.0 is the default CLI scale; tests use
// smaller values. It multiplies base-table row counts.
type Scale float64

// Runner produces one experiment's table.
type Runner func(s Scale) (*Table, error)

// registry maps experiment IDs to runners (populated by init functions in
// the figure files).
var registry = map[string]Runner{}

// descriptions holds one-line summaries for Listing.
var descriptions = map[string]string{}

// register adds an experiment runner.
func register(id, desc string, r Runner) {
	registry[id] = r
	descriptions[id] = desc
}

// Run executes the named experiment.
func Run(id string, s Scale) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (see List)", id)
	}
	return r(s)
}

// List returns all experiment IDs in sorted order.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string { return descriptions[id] }

// Known reports whether an experiment ID is registered.
func Known(id string) bool { _, ok := registry[id]; return ok }

// timeIt measures the wall-clock duration of f.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// defaultParallelism is the intra-operator worker count experiments stamp
// onto the databases they generate (cmd/svcbench -parallel). 0 = serial.
var defaultParallelism int

// defaultColumnar is whether scenario databases run the columnar batch
// path (the engine default). svcbench -columnar=off flips it for row-vs-
// columnar A/B runs.
var defaultColumnar = true

// SetDefaultColumnar sets whether scenario databases use the columnar
// batch path (svcbench -columnar).
func SetDefaultColumnar(on bool) { defaultColumnar = on }

// DefaultColumnar reports the configured columnar mode.
func DefaultColumnar() bool { return defaultColumnar }

// SetDefaultParallelism sets the worker count applied to every scenario
// database generated by subsequent experiment runs.
func SetDefaultParallelism(n int) { defaultParallelism = n }

// DefaultParallelism returns the configured worker count.
func DefaultParallelism() int { return defaultParallelism }

// measureIt measures the wall-clock duration and the heap allocation
// count of one run of f — the ns/op and allocs/op columns of the
// engine-level experiments. The allocation count includes everything f
// does (GC noise excluded: Mallocs counts objects, not collections).
func measureIt(f func() error) (time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := f()
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	return dur, after.Mallocs - before.Mallocs, err
}
