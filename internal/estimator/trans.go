package estimator

import (
	"fmt"

	"github.com/sampleclean/svc/internal/expr"
	"github.com/sampleclean/svc/internal/relation"
)

// transRow is one row of the paper's intermediate "trans" table (Section
// 5.2.1): the row's primary key and its transformed value — the predicate
// moved into the select clause as an indicator, with the AQP scaling
// folded in.
type transRow struct {
	key string
	val float64
}

// transTable computes the trans table of a sample for sum/count/avg:
//
//	sum:   1/m · attr · cond(*)
//	count: 1/m · cond(*)
//	avg:   attr where cond(*)   (no scaling; non-matching rows excluded)
//
// For avg, excluded rows are not emitted; for sum/count every sample row
// is emitted (the indicator handles selection), as in the paper's SQL.
func transTable(rel *relation.Relation, q Query, m float64) ([]transRow, error) {
	if q.Agg != SumQ && q.Agg != CountQ && q.Agg != AvgQ {
		return nil, fmt.Errorf("estimator: trans table only defined for sum/count/avg, got %v", q.Agg)
	}
	var pred expr.Expr
	if q.Pred != nil {
		bound, err := q.Pred.Bind(rel.Schema())
		if err != nil {
			return nil, err
		}
		pred = bound
	}
	attrIdx := -1
	if q.Agg != CountQ {
		attrIdx = rel.Schema().ColIndex(q.Attr)
		if attrIdx < 0 {
			return nil, fmt.Errorf("estimator: attribute %q not in schema [%s]", q.Attr, rel.Schema())
		}
	}
	keyIdx := rel.Schema().Key()
	if len(keyIdx) == 0 {
		return nil, fmt.Errorf("estimator: sample relation needs a primary key")
	}
	scale := 1 / m
	rows := make([]transRow, 0, rel.Len())
	matches := predMatches(rel, pred)
	for ri, row := range rel.Rows() {
		match := matches[ri]
		key := row.KeyOf(keyIdx)
		switch q.Agg {
		case CountQ:
			v := 0.0
			if match {
				v = scale
			}
			rows = append(rows, transRow{key: key, val: v})
		case SumQ:
			v := 0.0
			if match && !row[attrIdx].IsNull() {
				v = scale * row[attrIdx].AsFloat()
			}
			rows = append(rows, transRow{key: key, val: v})
		case AvgQ:
			if match && !row[attrIdx].IsNull() {
				rows = append(rows, transRow{key: key, val: row[attrIdx].AsFloat()})
			}
		}
	}
	return rows, nil
}

// values extracts the trans values.
func values(rows []transRow) []float64 {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = r.val
	}
	return vals
}

// correspondenceSubtract implements the −̇ operator (Definition 4): a full
// outer join of two trans tables on the primary key, subtracting values
// with NULL (absent side) treated as zero. It returns one difference per
// key in the union.
func correspondenceSubtract(fresh, stale []transRow) []float64 {
	staleBy := make(map[string]float64, len(stale))
	for _, r := range stale {
		staleBy[r.key] = r.val
	}
	diffs := make([]float64, 0, len(fresh))
	seen := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		diffs = append(diffs, r.val-staleBy[r.key])
		seen[r.key] = true
	}
	for _, r := range stale {
		if !seen[r.key] {
			diffs = append(diffs, -r.val) // superfluous row: 0 − stale
		}
	}
	return diffs
}
