// Package server implements svcd's serving core: an HTTP/JSON front door
// that accepts svcql text and answers it from the SVC engine — the
// network realization of the paper's premise (Krishnan et al., PVLDB
// 2015) that a system can serve fresh-enough answers from stale
// materialized views under load instead of blocking on maintenance.
//
// Three statement routes share POST /query:
//
//   - aggregate SELECTs whose FROM names a served view are answered by
//     the SVC estimators (Sections 5–6): an estimate, its confidence
//     interval, the stale baseline, and staleness metadata;
//   - GROUP BY aggregates against a served view return per-group
//     estimates;
//   - SELECTs over base tables run through the batched execution pipeline
//     against an explicitly pinned catalog version and return rows.
//
// Every request reads one publication epoch (the PR 2 Pin/AsOfEpoch
// machinery), so answers are internally consistent while writers stage
// updates and background Refreshers publish maintenance cycles. POST
// /views materializes new views from CREATE VIEW text; GET /stats exposes
// admission, refresh-cycle, and epoch-lag counters; see DESIGN.md
// ("Network serving layer") for the request lifecycle.
//
// Concurrency contract: a Server is safe for concurrent use in every
// exported method and handler. Admission control bounds concurrently
// executing queries (MaxInFlight, immediate 503 beyond it) and each query
// gets a deadline (504 on expiry; the query finishes in the background
// and holds its admission slot until it does). Shutdown drains: it stops
// accepting, waits for every in-flight query — including ones whose HTTP
// requests already timed out — and only then stops the views' background
// refreshers.
package server
