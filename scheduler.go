package svc

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Error-budget refresh scheduling: spend the maintenance budget where the
// expected query error is highest.
//
// The fixed-interval Refresher treats every view alike; under a skewed
// query mix most of its cycles refresh views nobody is asking about while
// the hot view accumulates staleness between its turns. The Scheduler
// instead ranks views by expected-error reduction per unit maintenance
// cost: a view's staleness (pending delta rows against its base tables ×
// time since its last maintenance) weighted by the probability the next
// query hits it, divided by the EWMA cost of maintaining it. The hit
// probability comes from a Markov model of the query mix — observed
// query-to-query transitions form a transition matrix whose stationary
// distribution (damped power iteration) predicts where queries go next;
// until enough transitions accumulate, observed query frequencies stand
// in. Each tick the top-scoring stale views (up to Budget, plus any view
// past the MaxAge starvation bound) are maintained together in ONE group
// cycle (MaintainViews), so views sharing delta subplans share their
// evaluation too.
type Scheduler struct {
	d   *Database
	cfg SchedulerConfig
	now func() time.Time

	mu       sync.Mutex
	views    map[string]*schedView
	trans    map[string]map[string]uint64 // query-mix transition counts
	transCnt uint64
	lastHit  string // previously queried view, the transition source

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool

	ticks       atomic.Uint64
	groupCycles atomic.Uint64
	maintained  atomic.Uint64
	deferred    atomic.Uint64
	sharedHits  atomic.Uint64
	sharedMiss  atomic.Uint64
	rowsSaved   atomic.Int64
	lastErr     atomic.Value // refreshErr
}

// schedView is the per-view scheduling state.
type schedView struct {
	sv           *StaleView
	baseTables   []string
	lastMaintain time.Time
	costEWMA     float64 // rows touched per maintenance cycle
	cycles       uint64
	deferred     uint64
}

// SchedulerConfig parameterizes a Scheduler.
type SchedulerConfig struct {
	// Interval is the tick period of the background goroutine (Start).
	// TickNow ignores it, so deterministic tests drive ticks directly.
	Interval time.Duration
	// Budget caps how many views one tick maintains (≤ 0 means 1). Views
	// forced by the starvation bound do not count against it.
	Budget int
	// MaxAge is the starvation bound: a stale view not maintained for
	// MaxAge is maintained on the next tick regardless of its score.
	// 0 defaults to 10×Interval (no bound when Interval is 0 too).
	MaxAge time.Duration
	// Now overrides the clock (tests use a fake clock for deterministic
	// staleness ages). nil means time.Now.
	Now func() time.Time
}

// NewScheduler creates a scheduler over the database's views. Register
// views with the WithScheduler option (or Register), then Start it or
// drive ticks explicitly with TickNow.
func NewScheduler(d *Database, cfg SchedulerConfig) *Scheduler {
	if cfg.Budget <= 0 {
		cfg.Budget = 1
	}
	if cfg.MaxAge == 0 && cfg.Interval > 0 {
		cfg.MaxAge = 10 * cfg.Interval
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Scheduler{
		d:     d,
		cfg:   cfg,
		now:   now,
		views: make(map[string]*schedView),
		trans: make(map[string]map[string]uint64),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Register places a view under this scheduler's control. The view's
// queries start feeding the scheduler's query-mix model, and background
// Refreshers on the view defer to the scheduler (Refresher.SkipsDeferred).
func (s *Scheduler) Register(sv *StaleView) error {
	if sv.db != s.d {
		return fmt.Errorf("svc: scheduler and view %q use different databases", sv.view.Name())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	name := sv.view.Name()
	if _, dup := s.views[name]; dup {
		return fmt.Errorf("svc: view %q already scheduled", name)
	}
	s.views[name] = &schedView{
		sv:           sv,
		baseTables:   sv.view.BaseTables(),
		lastMaintain: s.now(),
	}
	sv.sched.Store(s)
	return nil
}

// noteQuery records a query against the named view: a count and a
// transition from the previously queried view (the Markov edge).
func (s *Scheduler) noteQuery(name string) {
	s.mu.Lock()
	if s.lastHit != "" {
		row := s.trans[s.lastHit]
		if row == nil {
			row = make(map[string]uint64)
			s.trans[s.lastHit] = row
		}
		row[name]++
		s.transCnt++
	}
	s.lastHit = name
	s.mu.Unlock()
}

// hitProbsLocked returns each registered view's probability of receiving
// the next query. With enough observed transitions it is the stationary
// distribution of the query-mix transition matrix (damped power iteration,
// so reducible mixes still converge); before that, observed query
// frequencies; with no queries at all, uniform. Caller holds s.mu.
func (s *Scheduler) hitProbsLocked() map[string]float64 {
	names := make([]string, 0, len(s.views))
	for n := range s.views {
		names = append(names, n)
	}
	sort.Strings(names)
	probs := make(map[string]float64, len(names))
	n := len(names)
	if n == 0 {
		return probs
	}
	var totalQueries uint64
	counts := make(map[string]uint64, n)
	for _, name := range names {
		q := s.views[name].sv.queries.Load()
		counts[name] = q
		totalQueries += q
	}
	if s.transCnt < uint64(n) {
		// Too few transitions for a meaningful chain: frequency fallback.
		for _, name := range names {
			if totalQueries == 0 {
				probs[name] = 1 / float64(n)
			} else {
				probs[name] = float64(counts[name]) / float64(totalQueries)
			}
		}
		return probs
	}
	const damping = 0.85
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	idx := make(map[string]int, n)
	for i, name := range names {
		idx[name] = i
	}
	for iter := 0; iter < 64; iter++ {
		for j := range next {
			next[j] = (1 - damping) / float64(n)
		}
		for from, row := range s.trans {
			i, ok := idx[from]
			if !ok {
				continue
			}
			var out uint64
			for _, c := range row {
				out += c
			}
			if out == 0 {
				continue
			}
			for to, c := range row {
				if j, ok := idx[to]; ok {
					next[j] += damping * cur[i] * float64(c) / float64(out)
				}
			}
		}
		cur, next = next, cur
	}
	var sum float64
	for _, p := range cur {
		sum += p
	}
	for i, name := range names {
		probs[name] = cur[i] / sum
	}
	return probs
}

// TickNow runs one scheduling decision synchronously: score every stale
// view, maintain the top Budget of them (plus starvation-bound forces) in
// one group cycle, and count the rest as deferred. It returns the group
// cycle's stats (zero when nothing was stale). The background goroutine
// calls exactly this once per Interval.
func (s *Scheduler) TickNow() (GroupStats, error) {
	s.ticks.Add(1)
	now := s.now()
	pin := s.d.Pin()

	type scored struct {
		v      *schedView
		score  float64
		forced bool
	}
	s.mu.Lock()
	probs := s.hitProbsLocked()
	cands := make([]scored, 0, len(s.views))
	for name, v := range s.views {
		pending := pin.PendingRows(v.baseTables...)
		if pending == 0 {
			continue
		}
		age := now.Sub(v.lastMaintain)
		if age <= 0 {
			age = time.Millisecond
		}
		// Expected-error reduction per unit cost: staleness mass × hit
		// probability ÷ maintenance cost. The small probability floor keeps
		// never-queried views rankable (the MaxAge bound is the real
		// starvation guard; this just avoids hard zeros). The cost floor is
		// what a cycle must at least do — read the pending deltas and merge
		// the stale contents — so a never-maintained view's unknown EWMA
		// does not make it look artificially cheap.
		hp := probs[name]
		if hp < 1e-6 {
			hp = 1e-6
		}
		costFloor := float64(pending + v.sv.view.Data().Len())
		score := float64(pending) * age.Seconds() * hp / math.Max(v.costEWMA, costFloor)
		forced := s.cfg.MaxAge > 0 && age >= s.cfg.MaxAge
		cands = append(cands, scored{v: v, score: score, forced: forced})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].forced != cands[j].forced {
			return cands[i].forced
		}
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].v.sv.view.Name() < cands[j].v.sv.view.Name()
	})
	var group []*schedView
	inGroup := make(map[*schedView]bool)
	budgetUsed := 0
	for _, c := range cands {
		// Starvation-forced views ride along without consuming a budget
		// slot; the budget picks the top scorers among the rest.
		if c.forced {
			group = append(group, c.v)
			inGroup[c.v] = true
			continue
		}
		if budgetUsed < s.cfg.Budget {
			group = append(group, c.v)
			inGroup[c.v] = true
			budgetUsed++
		}
	}
	if len(group) > 0 {
		// Close the group over shared base tables. The group cycle folds
		// its members' tables, and folding a table retires its deltas for
		// EVERY view that reads it — so any registered view sharing a
		// table with the group must ride along (it shares the delta
		// subplans too, so the marginal cost is small) rather than have
		// its change set folded out from under it. Membership cannot
		// depend on the view being stale right now: deltas staged between
		// this tick's pin and the group cycle's own pin would still be
		// folded. Iterate to a fixpoint since each adoption can widen the
		// fold set.
		foldSet := make(map[string]bool)
		for _, v := range group {
			for _, t := range v.baseTables {
				foldSet[t] = true
			}
		}
		names := make([]string, 0, len(s.views))
		for n := range s.views {
			names = append(names, n)
		}
		sort.Strings(names)
		for changed := true; changed; {
			changed = false
			for _, name := range names {
				v := s.views[name]
				if inGroup[v] {
					continue
				}
				shares := false
				for _, t := range v.baseTables {
					if foldSet[t] {
						shares = true
						break
					}
				}
				if !shares {
					continue
				}
				group = append(group, v)
				inGroup[v] = true
				for _, t := range v.baseTables {
					foldSet[t] = true
				}
				changed = true
			}
		}
	}
	for _, c := range cands {
		if !inGroup[c.v] {
			c.v.deferred++
			s.deferred.Add(1)
		}
	}
	s.mu.Unlock()

	if len(group) == 0 {
		return GroupStats{}, nil
	}
	svs := make([]*StaleView, len(group))
	for i, v := range group {
		svs[i] = v.sv
	}
	stats, err := MaintainViews(svs...)
	if err != nil {
		s.lastErr.Store(refreshErr{err})
		return GroupStats{}, err
	}
	s.lastErr.Store(refreshErr{nil})
	s.groupCycles.Add(1)
	s.maintained.Add(uint64(len(group)))
	s.sharedHits.Add(stats.SharedHits)
	s.sharedMiss.Add(stats.SharedMisses)
	s.rowsSaved.Add(stats.RowsSaved)

	perView := float64(stats.RowsTouched) / float64(len(group))
	s.mu.Lock()
	for _, v := range group {
		v.lastMaintain = now
		v.cycles++
		// EWMA with α = 0.5: responsive to shifting delta volumes but not
		// jittery tick to tick.
		if v.costEWMA == 0 {
			v.costEWMA = perView
		} else {
			v.costEWMA = 0.5*v.costEWMA + 0.5*perView
		}
	}
	s.mu.Unlock()
	return stats, nil
}

// Start launches the background scheduling goroutine (one TickNow per
// Interval). It panics without a positive Interval and is idempotent per
// scheduler; stop it with Stop.
func (s *Scheduler) Start() {
	if s.cfg.Interval <= 0 {
		panic("svc: scheduler Start needs a positive Interval")
	}
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				_, _ = s.TickNow() // Err() keeps the last failure readable
			}
		}
	}()
}

// Stop halts the background goroutine and waits for an in-flight tick.
// Stop is idempotent and safe to call even if Start never ran.
func (s *Scheduler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
}

// Err returns the most recent group cycle's error, or nil — a later
// successful cycle clears it.
func (s *Scheduler) Err() error {
	if e, ok := s.lastErr.Load().(refreshErr); ok {
		return e.err
	}
	return nil
}

// SchedulerViewStat is the per-view slice of a scheduler snapshot.
type SchedulerViewStat struct {
	Name        string
	Queries     uint64  // queries answered by the view
	HitProb     float64 // modeled probability the next query hits it
	PendingRows int     // staged delta rows against its base tables
	AgeMillis   int64   // time since its last maintenance
	Cycles      uint64  // maintenance cycles the scheduler ran for it
	Deferred    uint64  // ticks it was stale but out-scored
}

// SchedulerStats is a point-in-time snapshot of the scheduler.
type SchedulerStats struct {
	Ticks       uint64
	GroupCycles uint64
	Maintained  uint64 // views maintained, summed over group cycles
	Deferred    uint64
	SharedHits  uint64
	SharedMiss  uint64
	RowsSaved   int64
	Views       []SchedulerViewStat // sorted by name
}

// Stats snapshots the scheduler's counters and per-view state.
func (s *Scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		Ticks:       s.ticks.Load(),
		GroupCycles: s.groupCycles.Load(),
		Maintained:  s.maintained.Load(),
		Deferred:    s.deferred.Load(),
		SharedHits:  s.sharedHits.Load(),
		SharedMiss:  s.sharedMiss.Load(),
		RowsSaved:   s.rowsSaved.Load(),
	}
	now := s.now()
	pin := s.d.Pin()
	s.mu.Lock()
	defer s.mu.Unlock()
	probs := s.hitProbsLocked()
	names := make([]string, 0, len(s.views))
	for n := range s.views {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		v := s.views[name]
		st.Views = append(st.Views, SchedulerViewStat{
			Name:        name,
			Queries:     v.sv.queries.Load(),
			HitProb:     probs[name],
			PendingRows: pin.PendingRows(v.baseTables...),
			AgeMillis:   now.Sub(v.lastMaintain).Milliseconds(),
			Cycles:      v.cycles,
			Deferred:    v.deferred,
		})
	}
	return st
}
