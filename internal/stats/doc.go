// Package stats provides the statistical machinery behind SVC's result
// estimation: moments, covariance, quantiles, normal confidence intervals
// (paper Section 5.2.1), the statistical bootstrap (Section 5.2.5),
// Cantelli tail bounds for min/max correction (Appendix 12.1.1), and the
// finite-domain Zipfian sampler used by the TPCD-Skew workload generator
// (Section 7.1).
//
// Concurrency contract: the numeric helpers are pure functions and safe
// for unrestricted concurrent use. The Zipf sampler holds RNG state and
// is NOT safe for concurrent use — give each goroutine its own.
package stats
